GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-codec

## check: the tier-1 gate — vet, build, and race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/frangibench -quick

## bench-smoke: fails if the observability stack goes dark — the
## obs-smoke experiment errors out when the metrics snapshot is empty
## or the Sync trace does not cover all four layers — or if the
## read-scaling experiment's in-experiment assertions (balanced reads
## >= 1.5x primary-only; ReadDirPlus <= 50% of the stat scan's read
## RPCs) fail.
## The codec-budget test additionally asserts the wire codec beats the
## gob baseline by >= 5x allocs/op and >= 2x ns/op on 1 MB WriteV/ReadV
## (encode must be 0 allocs/op), and codec-mux asserts >= 2 concurrent
## in-flight RPC streams share one TCP connection.
## forensics-smoke kills a lock holder mid-write and asserts the merged
## flight-recorder timeline shows expiry -> recovery -> replay in causal
## order; obs-overhead asserts the recorder and the per-principal
## account table each add <= 1% serial Sync latency. lock-scaling
## asserts contended acquire p99 improves >= 2x
## and throughput >= 1.5x from 1 to 4 lock-server shards, with the
## stale-map nack/refetch path and a mid-run shard handoff exercised.
## noisy-neighbor-obs pits a principal-tagged streaming writer against
## an interactive reader and asserts >= 95% of bytes and lock-wait are
## attributed, the writer ranks first by bytes, and the watcher's
## obs.noisyneighbor verdict lands in the merged forensics timeline.
## scale-sweep runs the big-N experiment (8/16/32 machines in -quick)
## and asserts read AND write throughput stay >= 0.7x linear from 8 to
## 32 servers, and that busy clerks sent ZERO standalone renew RPCs
## (lease renewal rides entirely on lock batches); on failure it dumps
## FORENSICS_scale-sweep.json. Its per-N curves are persisted to the
## trajectory as BENCH_scale_<utc-timestamp>.json.
## The final step persists this build's point on the perf
## trajectory as BENCH_<utc-timestamp>.json (schema frangipani-bench/v1).
bench-smoke:
	$(GO) run ./cmd/frangibench -quick -exp obs-smoke
	$(GO) run ./cmd/frangibench -quick -exp read-scaling
	CODEC_BUDGET=1 $(GO) test -run TestCodecBudget -count=1 ./internal/rpc/
	$(GO) run ./cmd/frangibench -quick -exp codec-mux
	$(GO) run ./cmd/frangibench -quick -exp forensics-smoke
	$(GO) run ./cmd/frangibench -quick -exp lock-scaling
	$(GO) run ./cmd/frangibench -quick -exp obs-overhead
	$(GO) run ./cmd/frangibench -quick -exp noisy-neighbor-obs
	$(GO) run ./cmd/frangibench -quick -exp scale-sweep -out BENCH_scale_$$(date -u +%Y%m%dT%H%M%SZ).json
	$(GO) run ./cmd/frangibench -out BENCH_$$(date -u +%Y%m%dT%H%M%SZ).json

## bench-codec: raw codec-vs-gob microbenchmarks with allocation counts.
bench-codec:
	$(GO) test -bench=Codec -benchmem -run '^$$' ./internal/rpc/...
	$(GO) test -bench=Gob -benchmem -run '^$$' ./internal/rpc/...
