GO ?= go

.PHONY: check vet build test race bench

## check: the tier-1 gate — vet, build, and race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/frangibench -quick
