GO ?= go

.PHONY: check vet build test race bench bench-smoke

## check: the tier-1 gate — vet, build, and race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/frangibench -quick

## bench-smoke: fails if the observability stack goes dark — the
## obs-smoke experiment errors out when the metrics snapshot is empty
## or the Sync trace does not cover all four layers — or if the
## read-scaling experiment's in-experiment assertions (balanced reads
## >= 1.5x primary-only; ReadDirPlus <= 50% of the stat scan's read
## RPCs) fail.
bench-smoke:
	$(GO) run ./cmd/frangibench -quick -exp obs-smoke
	$(GO) run ./cmd/frangibench -quick -exp read-scaling
