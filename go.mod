module frangipani

go 1.24
