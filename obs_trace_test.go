package frangipani_test

import (
	"strings"
	"testing"
	"time"

	"frangipani/internal/fs"
	"frangipani/internal/lockservice"
	"frangipani/internal/petal"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// TestSyncTraceCoversLayers checks the tentpole acceptance: a single
// Sync on a simulated cluster produces one trace whose spans cover
// the fs, wal, lockservice, and petal layers, and the renderer can
// print it.
func TestSyncTraceCoversLayers(t *testing.T) {
	c := newTestCluster(t)
	f, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/t"); err != nil {
		t.Fatal(err)
	}
	h, err := f.OpenFile("/t/a", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(make([]byte, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	reg := c.Obs()
	if reg == nil {
		t.Fatal("cluster has no registry")
	}
	tr := reg.Tracer()
	spans := tr.SpansFor(tr.LastRoot())
	if len(spans) == 0 {
		t.Fatal("no spans recorded for last root trace")
	}
	layers := map[string]bool{}
	ids := map[uint64]bool{}
	for _, sp := range spans {
		layers[sp.Layer] = true
		ids[sp.ID] = true
	}
	for _, want := range []string{"fs", "wal", "lockservice", "petal"} {
		if !layers[want] {
			t.Errorf("Sync trace missing layer %q (got %v)", want, layers)
		}
	}
	// Every span's parent must be inside the same trace (0 for the root).
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %s.%s has dangling parent %d", sp.Layer, sp.Op, sp.Parent)
		}
	}
	out := tr.RenderTrace(tr.LastRoot())
	for _, want := range []string{"fs.sync", "wal.flush", "petal."} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}

	// The registry saw the op end-to-end: fs latency histogram and
	// petal write counters are non-empty.
	snap := reg.Snapshot()
	if snap.Empty() {
		t.Fatal("registry snapshot empty after workload")
	}
	if h := snap.Histograms["fs.sync.latency#ws1"]; h.Count == 0 {
		t.Error("fs.sync.latency#ws1 histogram empty")
	}
	if snap.Counters["wal.flushes#ws1"] == 0 {
		t.Error("wal.flushes#ws1 counter zero")
	}
}

// TestTraceOverTCP runs the full stack — Petal servers, lock servers,
// and one Frangipani server — over real TCP sockets and checks that
// trace context propagates across the wire: the Sync span tree must
// include server-side petal spans, which can only appear if the
// envelope carried the trace and span IDs through the TCP codec.
func TestTraceOverTCP(t *testing.T) {
	carrier := rpc.NewTCPCarrier()
	defer carrier.Close()
	w := sim.NewWorld(1, 11) // real time: TCP is real
	defer w.Stop()

	pcfg := petal.DefaultServerConfig(256 << 20)
	pcfg.NumDisks = 2
	petalNames := []string{"tp0", "tp1", "tp2"}
	var petals []*petal.Server
	for _, n := range petalNames {
		petals = append(petals, petal.NewServerWithCarrier(w, n, petalNames, pcfg, carrier))
	}
	defer func() {
		for _, s := range petals {
			s.Close()
		}
	}()

	lcfg := lockservice.DefaultConfig()
	lcfg.HeartbeatEvery = 200 * time.Millisecond
	lcfg.SuspectAfter = 2 * time.Second
	lockNames := []string{"tl0", "tl1", "tl2"}
	var locks []*lockservice.Server
	for _, n := range lockNames {
		locks = append(locks, lockservice.NewServerWithCarrier(w, n, lockNames, lcfg, carrier))
	}
	defer func() {
		for _, s := range locks {
			s.Close()
		}
	}()

	admin := petal.NewClientWithCarrier(w, "tadmin", petalNames, carrier)
	defer admin.Close()
	if err := admin.CreateVDisk("tcpfs"); err != nil {
		t.Fatal(err)
	}
	lay := fs.DefaultLayout()
	if err := fs.Mkfs(admin, "tcpfs", lay); err != nil {
		t.Fatal(err)
	}

	fcfg := fs.DefaultConfig()
	fcfg.Lock = lcfg
	fcfg.Carrier = carrier
	pc := petal.NewClientWithCarrier(w, "tws1", petalNames, carrier)
	defer pc.Close()
	f, err := fs.Mount(w, "tws1", pc, "tcpfs", lockNames, lay, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Unmount()

	if err := f.Mkdir("/t"); err != nil {
		t.Fatal(err)
	}
	h, err := f.OpenFile("/t/a", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	tr := w.Obs.Tracer()
	spans := tr.SpansFor(tr.LastRoot())
	layers := map[string]bool{}
	serverSide := false
	for _, sp := range spans {
		layers[sp.Layer] = true
		if sp.Layer == "petal" && strings.HasPrefix(sp.Op, "server.") {
			serverSide = true
		}
	}
	for _, want := range []string{"fs", "wal", "lockservice", "petal"} {
		if !layers[want] {
			t.Errorf("TCP Sync trace missing layer %q (got %v)", want, layers)
		}
	}
	if !serverSide {
		t.Error("no server-side petal span: trace context did not cross the TCP wire")
	}
}
