package frangipani_test

import (
	"errors"
	"io"
	"testing"

	"frangipani"
	"frangipani/internal/obs"
)

func newTestCluster(t *testing.T) *frangipani.Cluster {
	t.Helper()
	cfg := frangipani.DefaultClusterConfig()
	cfg.GuardWrites = true
	c, err := frangipani.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterLifecycle(t *testing.T) {
	c := newTestCluster(t)
	ws1, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Server("ws1") != ws1 {
		t.Fatal("Server() lookup failed")
	}
	if _, err := c.AddServer("ws1"); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	if err := ws1.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer("ws1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer("ws1"); err == nil {
		t.Fatal("double remove accepted")
	}
	// State persists across the server's life.
	ws2, err := c.AddServer("ws2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws2.Stat("/a"); err != nil {
		t.Fatalf("state lost across server remove/add: %v", err)
	}
}

func TestClusterSharedNamespace(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	ws2, _ := c.AddServer("ws2")
	h, err := ws1.OpenFile("/data.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("written on machine one")
	if _, err := h.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	h2, err := ws2.Open("/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := h2.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("ws2 read %q", got)
	}
}

func TestClusterFsckOnIdle(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	for _, p := range []string{"/x", "/y", "/z"} {
		if err := ws1.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck problems: %+v", rep.Problems)
	}
	if rep.Files != 3 || rep.Dirs != 1 {
		t.Fatalf("fsck counts: %+v", rep)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.PetalServers = 0
	if _, err := frangipani.NewCluster(cfg); err == nil {
		t.Fatal("zero petal servers accepted")
	}
	for _, cap := range []int{0, -4096} {
		cfg := frangipani.DefaultClusterConfig()
		cfg.JournalCap = cap
		if _, err := frangipani.NewCluster(cfg); err == nil {
			t.Fatalf("JournalCap=%d accepted", cap)
		}
	}
}

// TestClusterJournalCap checks a custom flight-recorder ring size
// actually bounds the per-server journals.
func TestClusterJournalCap(t *testing.T) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.JournalCap = 8
	c, err := frangipani.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	jr := c.Obs().Journal("captest")
	for i := 0; i < 50; i++ {
		jr.Record("test", "fill", "ok", uint64(i), 0, "")
	}
	if n := jr.Len(); n != 8 {
		t.Fatalf("journal holds %d events, want ring cap 8", n)
	}
	evs := jr.Events()
	if first := evs[0].Key; first != 42 {
		t.Fatalf("oldest surviving event key %d, want 42 (ring of 8)", first)
	}
}

// TestClusterAccountingKnob checks NoAccounting suppresses the
// account table while plain clusters attribute bound work.
func TestClusterAccountingKnob(t *testing.T) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.NoAccounting = true
	off, err := frangipani.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(off.Close)
	if off.Accounts() != nil {
		t.Fatal("NoAccounting cluster still has an account table")
	}

	c := newTestCluster(t)
	ws1, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	h, err := ws1.OpenFile("/acct.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	obs.WithPrincipal("tenant-a", func() {
		if _, err := h.WriteAt(payload, 0); err != nil {
			t.Fatal(err)
		}
	})
	stats := c.Accounts().Snapshot()
	var got *obs.AccountStat
	for i := range stats {
		if stats[i].Principal == "tenant-a" {
			got = &stats[i]
		}
	}
	if got == nil {
		t.Fatalf("tenant-a missing from account table: %+v", stats)
	}
	if got.BytesIn != int64(len(payload)) {
		t.Fatalf("tenant-a BytesIn = %d, want %d", got.BytesIn, len(payload))
	}
	if got.Ops == 0 || got.WALBytes == 0 {
		t.Fatalf("tenant-a ops/WAL not attributed: %+v", *got)
	}
}

func TestErrorsSurfaceThroughFacade(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	if _, err := ws1.Stat("/missing"); !errors.Is(err, errNotExist(ws1)) {
		// fs.ErrNotExist is internal; just assert an error came back.
		if err == nil {
			t.Fatal("stat of missing path succeeded")
		}
	}
}

// errNotExist fishes the canonical not-exist error out via a probe.
func errNotExist(f *frangipani.FS) error {
	_, err := f.Stat("/definitely-not-here-either")
	return err
}
