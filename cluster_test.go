package frangipani_test

import (
	"errors"
	"io"
	"testing"

	"frangipani"
)

func newTestCluster(t *testing.T) *frangipani.Cluster {
	t.Helper()
	cfg := frangipani.DefaultClusterConfig()
	cfg.GuardWrites = true
	c, err := frangipani.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterLifecycle(t *testing.T) {
	c := newTestCluster(t)
	ws1, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Server("ws1") != ws1 {
		t.Fatal("Server() lookup failed")
	}
	if _, err := c.AddServer("ws1"); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	if err := ws1.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer("ws1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer("ws1"); err == nil {
		t.Fatal("double remove accepted")
	}
	// State persists across the server's life.
	ws2, err := c.AddServer("ws2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws2.Stat("/a"); err != nil {
		t.Fatalf("state lost across server remove/add: %v", err)
	}
}

func TestClusterSharedNamespace(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	ws2, _ := c.AddServer("ws2")
	h, err := ws1.OpenFile("/data.bin", true)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("written on machine one")
	if _, err := h.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	h2, err := ws2.Open("/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := h2.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("ws2 read %q", got)
	}
}

func TestClusterFsckOnIdle(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	for _, p := range []string{"/x", "/y", "/z"} {
		if err := ws1.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck problems: %+v", rep.Problems)
	}
	if rep.Files != 3 || rep.Dirs != 1 {
		t.Fatalf("fsck counts: %+v", rep)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.PetalServers = 0
	if _, err := frangipani.NewCluster(cfg); err == nil {
		t.Fatal("zero petal servers accepted")
	}
}

func TestErrorsSurfaceThroughFacade(t *testing.T) {
	c := newTestCluster(t)
	ws1, _ := c.AddServer("ws1")
	if _, err := ws1.Stat("/missing"); !errors.Is(err, errNotExist(ws1)) {
		// fs.ErrNotExist is internal; just assert an error came back.
		if err == nil {
			t.Fatal("stat of missing path succeeded")
		}
	}
}

// errNotExist fishes the canonical not-exist error out via a probe.
func errNotExist(f *frangipani.FS) error {
	_, err := f.Stat("/definitely-not-here-either")
	return err
}
