package frangipani_test

import (
	"testing"

	"frangipani/internal/bench"
)

// Each testing.B benchmark regenerates one table or figure of the
// paper's evaluation (§9). The measured quantity is simulated time,
// so b.N iterations simply repeat the experiment; the interesting
// output is the table itself, logged once per run. `go run
// ./cmd/frangibench` prints the full-size versions; these use the
// Quick sizing so `go test -bench=.` stays tractable.

func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Quick = true
	o.MaxMachines = 4
	o.PetalServers = 5
	return o
}

func runExperiment(b *testing.B, name string) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		tb, err := o.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
		}
	}
}

// BenchmarkTable1MAB regenerates Table 1: Modified Andrew Benchmark
// latencies for AdvFS and Frangipani, raw and NVRAM.
func BenchmarkTable1MAB(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Connectathon regenerates Table 2: the
// Connectathon-style operation suite.
func BenchmarkTable2Connectathon(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Throughput regenerates Table 3: large-file
// throughput and CPU utilization.
func BenchmarkTable3Throughput(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5ScalingMAB regenerates Figure 5: MAB latency vs
// machines.
func BenchmarkFig5ScalingMAB(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ReadScaling regenerates Figure 6: uncached read
// scaling.
func BenchmarkFig6ReadScaling(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7WriteScaling regenerates Figure 7: write scaling with
// replication.
func BenchmarkFig7WriteScaling(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig7NoReplication is the replication ablation of Figure 7.
func BenchmarkFig7NoReplication(b *testing.B) { runExperiment(b, "fig7-norepl") }

// BenchmarkFig8Contention regenerates Figure 8: reader/writer
// contention with and without read-ahead.
func BenchmarkFig8Contention(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9SharedSize regenerates Figure 9: contention vs shared
// region size.
func BenchmarkFig9SharedSize(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkWriteSharing regenerates the third §9.4 experiment:
// write/write sharing.
func BenchmarkWriteSharing(b *testing.B) { runExperiment(b, "wshare") }

// BenchmarkSmallReads regenerates §9.2's 30-process 8 KB read
// experiment.
func BenchmarkSmallReads(b *testing.B) { runExperiment(b, "smallreads") }

// BenchmarkAblationSyncLog measures §4's synchronous-logging option.
func BenchmarkAblationSyncLog(b *testing.B) { runExperiment(b, "ablation-synclog") }
