package fs

import (
	"io"
	"time"

	"frangipani/internal/lockservice"
	"frangipani/internal/petal"
)

// File is an open handle on a regular file.
type File struct {
	fs   *FS
	inum int64
}

// Open returns a handle for the regular file at path, following
// symlinks.
func (fs *FS) Open(path string) (*File, error) {
	if err := fs.usable(); err != nil {
		return nil, err
	}
	inum, err := fs.namei(path, true)
	if err != nil {
		return nil, err
	}
	info, err := fs.statInum(inum)
	if err != nil {
		return nil, err
	}
	if info.Type == TypeDir {
		return nil, ErrIsDir
	}
	return &File{fs: fs, inum: inum}, nil
}

// OpenFile opens path, creating it first if create is set and it
// does not exist.
func (fs *FS) OpenFile(path string, create bool) (*File, error) {
	f, err := fs.Open(path)
	if err == ErrNotExist && create {
		if err := fs.Create(path); err != nil && err != ErrExist {
			return nil, err
		}
		return fs.Open(path)
	}
	return f, err
}

func (fs *FS) statInum(inum int64) (Info, error) {
	var info Info
	err := fs.withLocks([]lockReq{{InodeLock(inum), lockservice.Shared}}, false, func(t *txn) error {
		_, in, err := fs.loadInode(inum)
		if err != nil {
			return err
		}
		info = Info{Inum: inum, Type: in.Type, Size: in.Size, Nlink: int(in.Nlink),
			Mtime: in.Mtime, Ctime: in.Ctime, Atime: in.Atime}
		fs.mu.Lock()
		if at, ok := fs.atimes[inum]; ok && at > info.Atime {
			info.Atime = at
		}
		fs.mu.Unlock()
		return nil
	})
	return info, err
}

// Inum returns the file's inode number.
func (f *File) Inum() int64 { return f.inum }

// Size returns the file's current size.
func (f *File) Size() (int64, error) {
	info, err := f.fs.statInum(f.inum)
	return info.Size, err
}

// filePageAddr maps a file byte offset to the Petal address of its
// 4 KB page and the offset within that page. ok is false when no
// block backs the offset (a hole).
func (fs *FS) filePageAddr(in Inode, off int64) (pageAddr, inPage int64, ok bool) {
	slot, inBlock := blockFor(off)
	if slot >= 0 {
		if in.Small[slot] == 0 {
			return 0, 0, false
		}
		return fs.lay.SmallAddr(in.Small[slot] - 1), inBlock, true
	}
	if in.Large == 0 || inBlock >= fs.lay.LargeBlockSize {
		return 0, 0, false
	}
	base := fs.lay.LargeAddr(in.Large - 1)
	return base + (inBlock &^ (BlockSize - 1)), inBlock & (BlockSize - 1), true
}

// ensureBlock allocates the block backing offset off. New small
// blocks are entered into the cache zero-filled and dirty so stale
// on-disk bytes from a previous owner never become visible; freed
// large blocks were decommitted, so Petal already reads them as
// zeros.
func (fs *FS) ensureBlock(t *txn, in *Inode, off int64, isDir bool) error {
	slot, _ := blockFor(off)
	if slot >= 0 {
		class := classDataSmall
		if isDir {
			class = classMetaSmall
		}
		idx, err := fs.allocObj(t, class)
		if err != nil {
			return err
		}
		in.Small[slot] = idx + 1
		if !isDir {
			addr := fs.lay.SmallAddr(idx)
			// Note: the inode lock id is derivable only by the caller;
			// data pages are owned by the file's inode lock.
			e := fs.data.Insert(addr, make([]byte, BlockSize), t.pageOwner)
			fs.data.MarkDirty(e, 0)
		}
		return nil
	}
	if in.Large == 0 {
		idx, err := fs.allocObj(t, classLarge)
		if err != nil {
			return err
		}
		in.Large = idx + 1
	}
	if _, inBlock := blockFor(off); inBlock >= fs.lay.LargeBlockSize {
		return ErrTooBig
	}
	return nil
}

// WriteAt writes p at byte offset off, allocating blocks as needed.
// Data is staged in the buffer cache (not logged); metadata changes
// (allocation, size, mtime) are logged.
func (f *File) WriteAt(p []byte, off int64) (n int, err error) {
	err = f.fs.traced("write", func() error {
		var e error
		n, e = f.writeAt(p, off)
		return e
	})
	return n, err
}

func (f *File) writeAt(p []byte, off int64) (int, error) {
	fs := f.fs
	if err := fs.usable(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, ErrInval
	}
	if off+int64(len(p)) > DirectBytes+fs.lay.LargeBlockSize {
		return 0, ErrTooBig
	}
	fs.chargeOp(len(p))
	fs.accountBytes(len(p), 0)
	lock := InodeLock(f.inum)
	err := fs.withLocks([]lockReq{{lock, lockservice.Exclusive}}, true, func(t *txn) error {
		t.pageOwner = lock
		e, in, err := fs.loadInode(f.inum)
		if err != nil {
			return err
		}
		if in.Type != TypeFile {
			return ErrIsDir
		}
		pos := 0
		for pos < len(p) {
			cur := off + int64(pos)
			if _, _, ok := fs.filePageAddr(in, cur); !ok {
				if err := fs.ensureBlock(t, &in, cur, false); err != nil {
					return err
				}
			}
			pageAddr, inPage, ok := fs.filePageAddr(in, cur)
			if !ok {
				return ErrTooBig
			}
			n := int(int64(BlockSize) - inPage)
			if n > len(p)-pos {
				n = len(p) - pos
			}
			// A page entirely overwritten needs no read from Petal.
			pe, cached := fs.data.Lookup(pageAddr)
			if !cached {
				if inPage == 0 && n == BlockSize {
					pe = fs.data.Insert(pageAddr, make([]byte, BlockSize), lock)
				} else {
					pe, err = fs.readData(pageAddr, lock)
					if err != nil {
						return err
					}
				}
			}
			fs.data.Mutate(func() { copy(pe.Data[inPage:], p[pos:pos+n]) })
			fs.data.MarkDirty(pe, 0)
			pos += n
		}
		if off+int64(len(p)) > in.Size {
			// Growing past EOF: bytes in [oldSize, off) within already
			// allocated blocks must read as zeros, not as stale data
			// left from before an earlier truncate.
			fs.zeroRange(in, in.Size, off, lock)
			in.Size = off + int64(len(p))
		}
		in.Mtime = int64(fs.w.Clock.Now())
		t.putInode(e, in)
		return nil
	})
	if err != nil {
		return 0, err
	}
	fs.writeBehind()
	return len(p), nil
}

// zeroRange clears [lo, hi) in every allocated page of the file
// (holes already read as zeros). Called under the file's exclusive
// lock when the size grows over a previously truncated region.
func (fs *FS) zeroRange(in Inode, lo, hi int64, lock uint64) {
	for cur := lo; cur < hi; {
		pageAddr, inPage, ok := fs.filePageAddr(in, cur)
		n := int64(BlockSize) - inPage
		if cur+n > hi {
			n = hi - cur
		}
		if ok {
			pe, cached := fs.data.Lookup(pageAddr)
			if !cached {
				var err error
				pe, err = fs.readData(pageAddr, lock)
				if err != nil {
					return
				}
			}
			fs.data.Mutate(func() { clear(pe.Data[inPage : inPage+n]) })
			fs.data.MarkDirty(pe, 0)
		}
		cur += n
	}
}

// ReadAt reads into p from byte offset off. Holes read as zeros;
// reads past EOF return io.EOF. Sequential reads trigger read-ahead
// when enabled.
func (f *File) ReadAt(p []byte, off int64) (n int, err error) {
	err = f.fs.traced("read", func() error {
		var e error
		n, e = f.readAt(p, off)
		return e
	})
	return n, err
}

func (f *File) readAt(p []byte, off int64) (int, error) {
	fs := f.fs
	if err := fs.usable(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, ErrInval
	}
	fs.chargeOp(len(p))
	fs.accountBytes(0, len(p))
	lock := InodeLock(f.inum)

	fs.raMu.Lock()
	sequential := fs.raNext[f.inum] == off && off > 0
	ra := fs.raPages
	fs.raMu.Unlock()

	// If our lock was revoked while a prefetch is still in flight, the
	// in-flight I/O is already wasted — and, as in the paper's UFS-
	// derived implementation, the reader cannot issue its next lock
	// request until that work completes ("the readers are doing extra
	// work, they cannot make lock requests at the same rate as the
	// writer", §9.4).
	if ra > 0 && fs.clerk.Held(lock) == lockservice.None {
		for {
			fs.raMu.Lock()
			busy := fs.raBusy[f.inum] > 0
			fs.raMu.Unlock()
			if !busy {
				break
			}
			fs.w.Clock.Sleep(time.Millisecond)
		}
	}

	n := 0
	var readErr error
	err := fs.withLocks([]lockReq{{lock, lockservice.Shared}}, false, func(t *txn) error {
		_, in, err := fs.loadInode(f.inum)
		if err != nil {
			return err
		}
		if in.Type == TypeDir {
			return ErrIsDir
		}
		if off >= in.Size {
			readErr = io.EOF
			return nil
		}
		want := int64(len(p))
		if off+want > in.Size {
			want = in.Size - off
			readErr = io.EOF
		}
		for int64(n) < want {
			cur := off + int64(n)
			pageAddr, inPage, ok := fs.filePageAddr(in, cur)
			chunk := int(int64(BlockSize) - inPage%BlockSize)
			if !ok {
				// Hole: zero fill up to the next page boundary.
				if int64(chunk) > want-int64(n) {
					chunk = int(want - int64(n))
				}
				clear(p[n : n+chunk])
				n += chunk
				continue
			}
			pe, cached := fs.data.Lookup(pageAddr)
			if !cached {
				// Cluster the miss: fetch as many contiguous missing
				// pages of this request as possible with one Petal
				// read (the mirror image of clustered write-back).
				run := int64(1)
				maxRun := (want - int64(n) + inPage + BlockSize - 1) / BlockSize
				for run < maxRun {
					a2, _, ok2 := fs.filePageAddr(in, cur-inPage+run*BlockSize)
					if !ok2 || a2 != pageAddr+run*BlockSize {
						break
					}
					if _, hit := fs.data.Lookup(a2); hit {
						break
					}
					run++
				}
				var err error
				pe, err = fs.readDataRun(pageAddr, int(run), lock)
				if err != nil {
					return err
				}
			}
			if int64(chunk) > want-int64(n) {
				chunk = int(want - int64(n))
			}
			copy(p[n:n+chunk], pe.Data[inPage:])
			n += chunk
		}
		// Approximate atime (§2.1): remembered in memory only and
		// folded into the inode the next time it is logged, "to avoid
		// doing a metadata write for every data read".
		fs.mu.Lock()
		fs.atimes[f.inum] = int64(fs.w.Clock.Now())
		fs.mu.Unlock()

		if sequential && ra > 0 {
			fs.maybePrefetch(f.inum, in, off+int64(n), ra)
		}
		return nil
	})
	fs.raMu.Lock()
	fs.raNext[f.inum] = off + int64(n)
	fs.raMu.Unlock()
	if err != nil {
		return n, err
	}
	return n, readErr
}

// maybePrefetch starts (at most one per inode) an asynchronous
// prefetch of the next window beyond the read-ahead high-water mark.
// This is the UFS-style read-ahead whose interaction with write
// contention the paper's Figure 8 measures: the prefetched pages are
// discarded when the lock is revoked, and the wasted work slows the
// reader's lock requests.
func (fs *FS) maybePrefetch(inum int64, in Inode, readPos int64, pages int) {
	end := readPos + int64(pages)*BlockSize
	if end > in.Size {
		end = in.Size
	}
	fs.raMu.Lock()
	from := fs.raHigh[inum]
	if from < readPos {
		from = readPos
	}
	// Half-window batches, two in flight: each prefetch read spans
	// several chunks (transferred chunk-parallel by the Petal driver)
	// and the second run overlaps the first, so the consumer rarely
	// stalls on disk latency.
	batch := int64(pages) * BlockSize / 2
	if batch < BlockSize {
		batch = BlockSize
	}
	to := from + batch
	if to > end {
		to = end
	}
	if fs.raBusy[inum] >= 2 || from >= end {
		fs.raMu.Unlock()
		return
	}
	fs.raBusy[inum]++
	fs.raHigh[inum] = to
	fs.raMu.Unlock()
	end = to

	lock := InodeLock(inum)
	go func() {
		defer func() {
			fs.raMu.Lock()
			fs.raBusy[inum]--
			fs.raMu.Unlock()
		}()
		// Collect the window's contiguous missing runs and fetch them
		// all with one scatter-gather read. The fetch itself runs
		// WITHOUT holding the lock — like the paper's UFS-derived
		// read-ahead — so if the lock is revoked meanwhile, the fetched
		// data "must be discarded, and the work to read it turns out to
		// have been wasted" (§9.4). The lock is only touched briefly at
		// insert time to guarantee no stale page ever enters the cache.
		var exts []petal.ReadExtent
		total := 0
		for off := from; off < end; {
			pageAddr, _, ok := fs.filePageAddr(in, off)
			if !ok {
				off += BlockSize
				continue
			}
			if _, cached := fs.data.Lookup(pageAddr); cached {
				off += BlockSize
				continue
			}
			run := int64(1)
			for off+run*BlockSize < end {
				a2, _, ok2 := fs.filePageAddr(in, off+run*BlockSize)
				if !ok2 || a2 != pageAddr+run*BlockSize {
					break
				}
				if _, hit := fs.data.Lookup(a2); hit {
					break
				}
				run++
			}
			exts = append(exts, petal.ReadExtent{Off: pageAddr, Dst: make([]byte, run*BlockSize)})
			total += int(run * BlockSize)
			off += run * BlockSize
		}
		if len(exts) == 0 {
			return
		}
		if err := fs.pc.ReadV(fs.vd, exts); err != nil {
			return
		}
		fs.m.bytesRead.Add(int64(total))
		// Validity gate: only while we still hold the lock may the
		// fetched pages enter the cache.
		if fs.clerk.TryLock(lock, lockservice.Shared) {
			for _, e := range exts {
				for i := int64(0); i < int64(len(e.Dst))/BlockSize; i++ {
					pa := e.Off + i*BlockSize
					if _, hit := fs.data.Lookup(pa); hit {
						continue
					}
					fs.data.Insert(pa, e.Dst[i*BlockSize:(i+1)*BlockSize], lock)
				}
			}
			fs.clerk.Unlock(lock)
			fs.m.raHits.Inc()
		} else {
			// Lock lost mid-prefetch: the data is discarded.
			fs.m.raWasted.Add(int64(total))
		}
	}()
}

// Truncate sets the file's size, freeing (and for the large block,
// decommitting) storage beyond it.
func (f *File) Truncate(size int64) error {
	return f.fs.traced("truncate", func() error { return f.truncate(size) })
}

func (f *File) truncate(size int64) error {
	fs := f.fs
	if err := fs.usable(); err != nil {
		return err
	}
	if size < 0 || size > DirectBytes+fs.lay.LargeBlockSize {
		return ErrInval
	}
	fs.chargeOp(0)
	lock := InodeLock(f.inum)
	return fs.withLocks([]lockReq{{lock, lockservice.Exclusive}}, true, func(t *txn) error {
		t.pageOwner = lock
		e, in, err := fs.loadInode(f.inum)
		if err != nil {
			return err
		}
		if in.Type != TypeFile {
			return ErrIsDir
		}
		if size >= in.Size {
			// Growing: any allocated bytes in the new region are stale
			// remnants and must read as zeros.
			fs.zeroRange(in, in.Size, size, lock)
			in.Size = size
			in.Mtime = int64(fs.w.Clock.Now())
			t.putInode(e, in)
			return nil
		}
		var frees []freeSpec
		for slot := 0; slot < NumDirect; slot++ {
			blockStart := int64(slot) * BlockSize
			if in.Small[slot] != 0 && blockStart >= size {
				frees = append(frees, freeSpec{classDataSmall, in.Small[slot] - 1})
				fs.data.Invalidate(fs.lay.SmallAddr(in.Small[slot] - 1))
				in.Small[slot] = 0
			}
		}
		freeLarge := in.Large != 0 && size <= DirectBytes
		var largeIdx int64 = -1
		if freeLarge {
			largeIdx = in.Large - 1
			frees = append(frees, freeSpec{classLarge, largeIdx})
			in.Large = 0
		}
		if len(frees) > 0 {
			if err := fs.freeObjs(t, frees); err != nil {
				return err
			}
		}
		// Zero the now-dead tail of the boundary page so future
		// extension reads zeros.
		if size%BlockSize != 0 {
			if pageAddr, inPage, ok := fs.filePageAddr(in, size); ok {
				if pe, err := fs.readData(pageAddr, lock); err == nil {
					fs.data.Mutate(func() { clear(pe.Data[inPage:]) })
					fs.data.MarkDirty(pe, 0)
				}
			}
		}
		in.Size = size
		in.Mtime = int64(fs.w.Clock.Now())
		t.putInode(e, in)
		if largeIdx >= 0 {
			_ = fs.pc.Decommit(fs.vd, fs.lay.LargeAddr(largeIdx), fs.lay.LargeBlockSize)
		}
		return nil
	})
}

// Sync is fsync: force the log and write back this file's dirty
// blocks ("a user can get better consistency semantics by calling
// fsync at suitable checkpoints", §4).
func (f *File) Sync() error {
	return f.fs.traced("fsync", f.fsync)
}

func (f *File) fsync() error {
	fs := f.fs
	if err := fs.usable(); err != nil {
		return err
	}
	if err := fs.log.Flush(); err != nil {
		return err
	}
	fs.mu.Lock()
	if fs.appended > fs.flushed {
		fs.flushed = fs.appended
	}
	fs.mu.Unlock()
	lock := InodeLock(f.inum)
	firstErr := fs.flushRuns(fs.meta, fs.meta.DirtyByOwner(lock))
	if err := fs.flushRuns(fs.data, fs.data.DirtyByOwner(lock)); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
