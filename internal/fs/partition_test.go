package fs

import (
	"bytes"
	"testing"
	"time"
)

// TestLockServerPartitionTolerated: a minority lock server partition
// must not interrupt file service (§6: "the lock service continues
// operation as long as a majority of lock servers are up and in
// communication").
func TestLockServerPartitionTolerated(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/before", []byte("pre-partition"))

	// Cut one lock server off entirely.
	for _, suffix := range []string{".lock", ".px", ".hb"} {
		tw.w.Net.Isolate("ls2" + suffix)
	}
	// Give the survivors time to notice and reassign ls2's groups.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := tw.locks[0].State()
		if !st.Alive["ls2"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Service continues: new files, reads, metadata.
	writeFile(t, f, "/during", []byte("mid-partition"))
	if got := readFile(t, f, "/during"); string(got) != "mid-partition" {
		t.Fatalf("read during partition: %q", got)
	}
	// Heal; the lock server rejoins transparently on restart-style
	// recovery driven by its own heartbeats.
	for _, suffix := range []string{".lock", ".px", ".hb"} {
		tw.w.Net.Heal("ls2" + suffix)
	}
	tw.locks[2].Restart()
	writeFile(t, f, "/after", []byte("post-heal"))
	if got := readFile(t, f, "/after"); string(got) != "post-heal" {
		t.Fatalf("read after heal: %q", got)
	}
}

// TestPetalServerLossDoesNotInterruptFS: one Petal server (of three)
// crashing is fully masked by replication at the FS level.
func TestPetalServerLossDoesNotInterruptFS(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	data := bytes.Repeat([]byte{3}, 128<<10)
	writeFile(t, f, "/replicated", data)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	tw.petals[2].Crash()
	// Wait for liveness to propagate so writes stop timing out on the
	// dead primary.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := tw.petals[0].State()
		if !st.Alive["p2"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := readFile(t, f, "/replicated"); !bytes.Equal(got, data) {
		t.Fatal("read with dead petal server returned wrong data")
	}
	writeFile(t, f, "/degraded-write", []byte("written degraded"))
	if got := readFile(t, f, "/degraded-write"); string(got) != "written degraded" {
		t.Fatalf("degraded write readback: %q", got)
	}
	// Restart: the server resyncs and the system is whole again.
	tw.petals[2].Restart()
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := tw.petals[0].State()
		if st.Alive["p2"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	writeFile(t, f, "/whole-again", []byte("ok"))
	if got := readFile(t, f, "/whole-again"); string(got) != "ok" {
		t.Fatalf("post-rejoin write: %q", got)
	}
}
