package fs

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestInodeCodecProperty round-trips random inodes through the
// on-disk sector format.
func TestInodeCodecProperty(t *testing.T) {
	f := func(typ uint8, nlink uint16, size, mtime, large int64, small [NumDirect]int64, sym string) bool {
		in := Inode{
			Type:  FileType(typ%3 + 1),
			Nlink: nlink,
			Size:  abs64(size),
			Mtime: abs64(mtime),
			Ctime: abs64(mtime) + 1,
			Atime: abs64(mtime) + 2,
			Large: abs64(large) % (1 << 40),
		}
		for i := range in.Small {
			in.Small[i] = abs64(small[i]) % (1 << 40)
		}
		if len(sym) > MaxSymlink {
			sym = sym[:MaxSymlink]
		}
		if in.Type == TypeSymlink {
			in.Symlink = sym
		}
		sec := make([]byte, SectorSize)
		encodeInode(in, sec)
		got, err := decodeInode(sec)
		if err != nil {
			return false
		}
		return got.Type == in.Type && got.Nlink == in.Nlink && got.Size == in.Size &&
			got.Mtime == in.Mtime && got.Large == in.Large &&
			got.Small == in.Small && got.Symlink == in.Symlink
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -v { // MinInt64
			return 0
		}
		return -v
	}
	return v
}

// TestDirSectorProperty: random add/remove sequences keep the sector
// parseable and searchable.
func TestDirSectorProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		sec := make([]byte, SectorSize)
		present := map[string]int64{}
		for _, op := range ops {
			name := fmt.Sprintf("n%d", op%37)
			if op%2 == 0 {
				if _, ok := present[name]; ok {
					continue
				}
				if dirSectorSpace(sec) < entryLen(name) {
					continue
				}
				dirSectorAppend(sec, DirEntry{Name: name, Inum: int64(op), Type: TypeFile})
				present[name] = int64(op)
			} else {
				if _, ok := present[name]; !ok {
					continue
				}
				_, pos, found := dirSectorFind(sec, name)
				if !found {
					return false
				}
				dirSectorRemove(sec, pos)
				delete(present, name)
			}
			// Invariants after every step.
			ents, err := dirSectorEntries(sec)
			if err != nil {
				return false
			}
			if len(ents) != len(present) {
				return false
			}
			for _, e := range ents {
				if present[e.Name] != e.Inum {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutBitMappingProperty: bitFor and objForBit are inverse over
// every class, and regions never overlap.
func TestLayoutBitMappingProperty(t *testing.T) {
	lay := DefaultLayout()
	f := func(rawIdx int64, classPick uint8) bool {
		classes := []allocClass{classInode, classMetaSmall, classDataSmall, classLarge}
		c := classes[int(classPick)%len(classes)]
		lo, hi := lay.classRange(c)
		span := hi - lo
		if span <= 0 {
			return false
		}
		bit := lo + abs64(rawIdx)%span
		gotClass, gotIdx := lay.objForBit(bit)
		if gotClass != c {
			return false
		}
		// Map back: the small classes share an index space.
		back := lay.bitFor(gotClass, gotIdx)
		return back == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Address regions are disjoint and ordered.
	if !(lay.ParamsBase < lay.LogBase && lay.LogBase < lay.BitmapBase &&
		lay.BitmapBase < lay.InodeBase && lay.InodeBase < lay.SmallBase &&
		lay.SmallBase < lay.LargeBase) {
		t.Fatal("layout regions out of order")
	}
	// Lock id spaces are distinct.
	if InodeLock(5) == SegLock(5) || SegLock(5) == LogLock(5) {
		t.Fatal("lock id namespaces collide")
	}
}

// TestBlockForProperty: every offset maps into exactly one block with
// consistent in-block offsets.
func TestBlockForProperty(t *testing.T) {
	f := func(off int64) bool {
		o := abs64(off) % (DirectBytes * 4)
		slot, inBlock := blockFor(o)
		if o < DirectBytes {
			return slot == int(o/BlockSize) && inBlock == o%BlockSize
		}
		return slot == -1 && inBlock == o-DirectBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSpanMergeProperty: mergeSpans yields sorted, non-overlapping
// spans covering at least the inputs.
func TestSpanMergeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var in []span
		for i := 0; i+1 < len(raw); i += 2 {
			lo := int(raw[i] % 400)
			hi := lo + 1 + int(raw[i+1]%100)
			in = append(in, span{lo, hi})
		}
		orig := append([]span(nil), in...)
		out := mergeSpans(in)
		for i := 1; i < len(out); i++ {
			if out[i].lo <= out[i-1].hi {
				return false // must be disjoint and ordered
			}
		}
		for _, s := range orig {
			covered := false
			for _, o := range out {
				if s.lo >= o.lo && s.hi <= o.hi {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParamsCodec pins the params sector format.
func TestParamsCodec(t *testing.T) {
	b := encodeParams(params{Magic: paramsMagic, Version: 3, Root: 7})
	p, err := decodeParams(b)
	if err != nil || p.Version != 3 || p.Root != 7 {
		t.Fatalf("roundtrip: %+v err=%v", p, err)
	}
	var junk [SectorSize]byte
	if _, err := decodeParams(junk[:]); err == nil {
		t.Fatal("junk accepted as params")
	}
}
