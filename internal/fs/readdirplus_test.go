package fs

import (
	"fmt"
	"testing"
)

// readRPCs is the machine's total Petal read round trips (single +
// scatter-gather batches).
func readRPCs(f *FS) int64 {
	st := f.PetalStats()
	return st.ReadRPCs + st.ReadVRPCs
}

// TestReadDirPlusMatchesStatScan: ReadDirPlus returns exactly what
// ReadDir + a Stat per entry would, index-aligned.
func TestReadDirPlusMatchesStatScan(t *testing.T) {
	tw := newTestWorld(t)
	ws1 := tw.mount(t, "ws1", nil)
	if err := ws1.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		writeFile(t, ws1, fmt.Sprintf("/d/f%02d", i), patternData(100*(i+1), byte(i)))
	}
	if err := ws1.Mkdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}

	ws2 := tw.mount(t, "ws2", nil)
	ents, infos, err := ws2.ReadDirPlus("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 13 || len(infos) != len(ents) {
		t.Fatalf("ReadDirPlus: %d entries, %d infos; want 13 of each", len(ents), len(infos))
	}
	for i, ent := range ents {
		want, err := ws2.Stat("/d/" + ent.Name)
		if err != nil {
			t.Fatalf("stat %s: %v", ent.Name, err)
		}
		if infos[i] != want {
			t.Fatalf("%s: ReadDirPlus info %+v != Stat %+v", ent.Name, infos[i], want)
		}
	}
}

// TestReadDirPlusBatchesColdReads is the fs-level half of the RPC
// acceptance criterion: a cold ReadDir+Stat-per-entry scan pays about
// one Petal read per inode sector, while ReadDirPlus fetches the
// directory and every inode with scatter-gather reads — at least 50%
// fewer read round trips.
func TestReadDirPlusBatchesColdReads(t *testing.T) {
	tw := newTestWorld(t)
	ws1 := tw.mount(t, "ws1", nil)
	const files = 40
	if err := ws1.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		writeFile(t, ws1, fmt.Sprintf("/d/f%02d", i), patternData(256, byte(i)))
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}

	// Baseline: a cold machine lists and stats entry by entry.
	cold1 := tw.mount(t, "cold1", nil)
	base0 := readRPCs(cold1)
	ents, err := cold1.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != files {
		t.Fatalf("ReadDir: %d entries, want %d", len(ents), files)
	}
	for _, ent := range ents {
		if _, err := cold1.Stat("/d/" + ent.Name); err != nil {
			t.Fatal(err)
		}
	}
	baseline := readRPCs(cold1) - base0

	// Batched: another cold machine uses ReadDirPlus.
	cold2 := tw.mount(t, "cold2", nil)
	b0 := readRPCs(cold2)
	ents2, infos, err := cold2.ReadDirPlus("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents2) != files || len(infos) != files {
		t.Fatalf("ReadDirPlus: %d entries, %d infos; want %d", len(ents2), len(infos), files)
	}
	batched := readRPCs(cold2) - b0

	if batched*2 > baseline {
		t.Fatalf("ReadDirPlus used %d read RPCs vs baseline %d; want <= 50%%", batched, baseline)
	}
	if st := cold2.Stats(); st.MetaBatchFetches == 0 || st.MetaBatchSectors < files {
		t.Fatalf("batched metadata fetch unused: %+v", st)
	}
}

// TestReadDirColdUsesBatchFetch: the plain ReadDir path also batches
// its directory-sector misses into one scatter-gather read.
func TestReadDirColdUsesBatchFetch(t *testing.T) {
	tw := newTestWorld(t)
	ws1 := tw.mount(t, "ws1", nil)
	if err := ws1.Mkdir("/big"); err != nil {
		t.Fatal(err)
	}
	// Enough entries to spread the directory over several sectors.
	for i := 0; i < 60; i++ {
		if err := ws1.Create(fmt.Sprintf("/big/file-with-a-longish-name-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}
	ws2 := tw.mount(t, "ws2", nil)
	before := ws2.Stats()
	ents, err := ws2.ReadDir("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 60 {
		t.Fatalf("got %d entries, want 60", len(ents))
	}
	after := ws2.Stats()
	if after.MetaBatchFetches == before.MetaBatchFetches {
		t.Fatal("cold ReadDir did not use the batched metadata fetch")
	}
}

func patternData(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*13)
	}
	return b
}
