package fs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"frangipani/internal/lockservice"
	"frangipani/internal/petal"
	"frangipani/internal/sim"
)

// testWorld assembles a full stack: Petal servers, lock servers, and
// an initialized virtual disk ready to mount.
type testWorld struct {
	w          *sim.World
	petals     []*petal.Server
	locks      []*lockservice.Server
	petalNames []string
	lockNames  []string
	lay        Layout
	vd         petal.VDiskID
	mounts     []*FS
}

func lockCfg() lockservice.Config {
	cfg := lockservice.DefaultConfig()
	cfg.HeartbeatEvery = 2 * time.Second
	cfg.SuspectAfter = 10 * time.Second
	return cfg
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	return newTestWorldLayout(t, DefaultLayout())
}

// newTestWorldLayout is newTestWorld with a caller-chosen layout, for
// tests that need small class ranges (e.g. inode exhaustion).
func newTestWorldLayout(t *testing.T, lay Layout) *testWorld {
	t.Helper()
	w := sim.NewWorld(100, 99)
	tw := &testWorld{w: w, lay: lay, vd: "shared"}

	pcfg := petal.DefaultServerConfig(256 << 20)
	pcfg.NumDisks = 3
	pcfg.HeartbeatEvery = 2 * time.Second
	pcfg.SuspectAfter = 10 * time.Second
	for i := 0; i < 3; i++ {
		tw.petalNames = append(tw.petalNames, fmt.Sprintf("p%d", i))
	}
	for _, n := range tw.petalNames {
		tw.petals = append(tw.petals, petal.NewServer(w, n, tw.petalNames, pcfg))
	}
	for i := 0; i < 3; i++ {
		tw.lockNames = append(tw.lockNames, fmt.Sprintf("ls%d", i))
	}
	for _, n := range tw.lockNames {
		tw.locks = append(tw.locks, lockservice.NewServer(w, n, tw.lockNames, lockCfg()))
	}
	adminPC := tw.client("admin")
	if err := adminPC.CreateVDisk(tw.vd); err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(adminPC, tw.vd, tw.lay); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, f := range tw.mounts {
			if !f.Poisoned() {
				_ = f.Unmount()
			}
		}
		for _, s := range tw.locks {
			s.Close()
		}
		for _, s := range tw.petals {
			s.Close()
		}
		w.Stop()
	})
	return tw
}

func (tw *testWorld) client(machine string) *petal.Client {
	return petal.NewClient(tw.w, machine, tw.petalNames)
}

func (tw *testWorld) mount(t *testing.T, machine string, mutate func(*Config)) *FS {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Lock = lockCfg()
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := Mount(tw.w, machine, tw.client(machine), tw.vd, tw.lockNames, tw.lay, cfg)
	if err != nil {
		t.Fatalf("mount %s: %v", machine, err)
	}
	tw.mounts = append(tw.mounts, f)
	return f
}

func writeFile(t *testing.T, f *FS, path string, data []byte) {
	t.Helper()
	h, err := f.OpenFile(path, true)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func readFile(t *testing.T, f *FS, path string) []byte {
	t.Helper()
	h, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	size, err := h.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	n, err := h.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("read %s: %v", path, err)
	}
	return buf[:n]
}

func TestCreateStatReadDir(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	if err := f.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/a.txt"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/dir/b.txt"); err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat("/a.txt")
	if err != nil || info.Type != TypeFile || info.Size != 0 || info.Nlink != 1 {
		t.Fatalf("stat a.txt: %+v err=%v", info, err)
	}
	info, err = f.Stat("/dir")
	if err != nil || info.Type != TypeDir || info.Nlink != 2 {
		t.Fatalf("stat dir: %+v err=%v", info, err)
	}
	ents, err := f.ReadDir("/")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir / = %v err=%v", ents, err)
	}
	if _, err := f.Stat("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat ghost: %v", err)
	}
	if _, err := f.ReadDir("/a.txt"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir on file: %v", err)
	}
}

func TestFileWriteReadRoundTrip(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	writeFile(t, f, "/f", data)
	got := readFile(t, f, "/f")
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Overwrite in the middle.
	h, _ := f.Open("/f")
	patch := []byte("PATCHED")
	if _, err := h.WriteAt(patch, 500); err != nil {
		t.Fatal(err)
	}
	copy(data[500:], patch)
	if got := readFile(t, f, "/f"); !bytes.Equal(got, data) {
		t.Fatal("patch mismatch")
	}
}

func TestLargeFileCrossesIntoLargeBlock(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	// 100 KB: 64 KB of small blocks plus 36 KB in the large block.
	data := make([]byte, 100<<10)
	for i := range data {
		data[i] = byte(i / 7)
	}
	writeFile(t, f, "/big", data)
	if got := readFile(t, f, "/big"); !bytes.Equal(got, data) {
		t.Fatal("large file round trip mismatch")
	}
	info, _ := f.Stat("/big")
	if info.Size != int64(len(data)) {
		t.Fatalf("size %d, want %d", info.Size, len(data))
	}
}

func TestSparseFileHolesReadZero(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	if err := f.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Open("/sparse")
	if _, err := h.WriteAt([]byte{0xFF}, 70<<10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := h.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// EOF semantics.
	if _, err := h.ReadAt(buf, (70<<10)+1); err != io.EOF {
		t.Fatalf("read past EOF: %v", err)
	}
}

func TestRemoveAndSpaceReuse(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/doomed", bytes.Repeat([]byte{1}, 8192))
	info, _ := f.Stat("/doomed")
	if err := f.Remove("/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/doomed"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat removed: %v", err)
	}
	// The inode bit must be clear again.
	if set, err := f.bitState(classInode, info.Inum); err != nil || set {
		t.Fatalf("inode bit still set after remove (err=%v)", err)
	}
	// Removing again fails.
	if err := f.Remove("/doomed"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := f.Remove("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("remove dir: %v", err)
	}
	if err := f.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	root, _ := f.Stat("/")
	if root.Nlink != 2 {
		t.Fatalf("root nlink %d after rmdir, want 2", root.Nlink)
	}
}

func TestRename(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/old", []byte("hello"))
	if err := f.Mkdir("/sub"); err != nil {
		t.Fatal(err)
	}
	// Same-dir rename.
	if err := f.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/new"); string(got) != "hello" {
		t.Fatalf("renamed content %q", got)
	}
	if _, err := f.Stat("/old"); !errors.Is(err, ErrNotExist) {
		t.Fatal("old name still present")
	}
	// Cross-dir rename.
	if err := f.Rename("/new", "/sub/moved"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/sub/moved"); string(got) != "hello" {
		t.Fatalf("moved content %q", got)
	}
	// Replacing rename.
	writeFile(t, f, "/victim", []byte("bye"))
	writeFile(t, f, "/attacker", []byte("won"))
	if err := f.Rename("/attacker", "/victim"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/victim"); string(got) != "won" {
		t.Fatalf("replace content %q", got)
	}
	// Directory into own subtree is rejected.
	if err := f.Mkdir("/sub/inner"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/sub", "/sub/inner/evil"); !errors.Is(err, ErrInval) {
		t.Fatalf("cycle rename: %v", err)
	}
	// Directory rename moves nlink accounting.
	if err := f.Rename("/sub/inner", "/top"); err != nil {
		t.Fatal(err)
	}
	sub, _ := f.Stat("/sub")
	if sub.Nlink != 2 {
		t.Fatalf("sub nlink %d, want 2", sub.Nlink)
	}
	root, _ := f.Stat("/")
	if root.Nlink != 4 { // ".", "..", sub, top
		t.Fatalf("root nlink %d, want 4", root.Nlink)
	}
}

func TestSymlinks(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/target", []byte("payload"))
	if err := f.Symlink("/target", "/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := f.Readlink("/ln")
	if err != nil || got != "/target" {
		t.Fatalf("readlink = %q err=%v", got, err)
	}
	// Opening through the symlink reaches the target.
	if got := readFile(t, f, "/ln"); string(got) != "payload" {
		t.Fatalf("read through symlink: %q", got)
	}
	// Relative symlink.
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("../target", "/d/rel"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/d/rel"); string(got) != "payload" {
		t.Fatalf("read through relative symlink: %q", got)
	}
	// Symlink loops terminate.
	if err := f.Symlink("/loop2", "/loop1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Symlink("/loop1", "/loop2"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("/loop1"); err == nil {
		t.Fatal("symlink loop resolved")
	}
}

func TestHardLinks(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/orig", []byte("shared bytes"))
	if err := f.Link("/orig", "/alias"); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat("/orig")
	if info.Nlink != 2 {
		t.Fatalf("nlink %d, want 2", info.Nlink)
	}
	if err := f.Remove("/orig"); err != nil {
		t.Fatal(err)
	}
	// Content survives through the other link.
	if got := readFile(t, f, "/alias"); string(got) != "shared bytes" {
		t.Fatalf("alias content %q", got)
	}
	info, _ = f.Stat("/alias")
	if info.Nlink != 1 {
		t.Fatalf("nlink %d after remove, want 1", info.Nlink)
	}
}

func TestTruncate(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	data := bytes.Repeat([]byte{7}, 80<<10) // into the large block
	writeFile(t, f, "/t", data)
	h, _ := f.Open("/t")
	if err := h.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/t")
	if len(got) != 5000 || !bytes.Equal(got, data[:5000]) {
		t.Fatalf("truncated content wrong (len %d)", len(got))
	}
	// Extend: the re-grown region must read zeros, not stale bytes.
	if err := h.Truncate(9000); err != nil {
		t.Fatal(err)
	}
	got = readFile(t, f, "/t")
	for _, b := range got[5000:] {
		if b != 0 {
			t.Fatal("extended region not zero")
		}
	}
}

func TestCoherentSharingAcrossServers(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	f2 := tw.mount(t, "ws2", nil)
	// "changes made to a file or directory on one machine are
	// immediately visible on all others" (§2.1).
	writeFile(t, f1, "/shared", []byte("from ws1"))
	if got := readFile(t, f2, "/shared"); string(got) != "from ws1" {
		t.Fatalf("ws2 sees %q", got)
	}
	// And back: ws2 updates, ws1 must see it.
	h2, _ := f2.Open("/shared")
	if _, err := h2.WriteAt([]byte("from ws2!"), 0); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f1, "/shared"); string(got) != "from ws2!" {
		t.Fatalf("ws1 sees %q", got)
	}
	// Namespace coherence.
	if err := f1.Mkdir("/made-on-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Stat("/made-on-1"); err != nil {
		t.Fatalf("ws2 cannot see new dir: %v", err)
	}
	if err := f2.Remove("/shared"); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Stat("/shared"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ws1 still sees removed file: %v", err)
	}
}

func TestConcurrentCreatesDistinctServers(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	f2 := tw.mount(t, "ws2", nil)
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 8; i++ {
			if err := f1.Create(fmt.Sprintf("/a%d", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 8; i++ {
			if err := f2.Create(fmt.Sprintf("/b%d", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	ents, err := f1.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 16 {
		t.Fatalf("%d entries, want 16", len(ents))
	}
	seen := make(map[int64]bool)
	for _, e := range ents {
		if seen[e.Inum] {
			t.Fatalf("inode %d allocated twice", e.Inum)
		}
		seen[e.Inum] = true
	}
}

func TestCrashRecoveryReplaysLog(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", func(c *Config) {
		c.SyncLog = true        // log reaches Petal
		c.SyncEvery = time.Hour // but metadata write-back never runs
	})
	f2 := tw.mount(t, "ws2", nil)

	// ws1 creates files; the updates are in its log but NOT in the
	// permanent locations.
	for i := 0; i < 5; i++ {
		if err := f1.Create(fmt.Sprintf("/crash%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	f1.Crash()

	// ws2 forces the conflict: its operations need ws1's locks, which
	// the lock service releases only after recovery replays ws1's log.
	deadline := time.Now().Add(60 * time.Second)
	var ents []DirEntry
	for time.Now().Before(deadline) {
		var err error
		ents, err = f2.ReadDir("/")
		if err == nil && len(ents) == 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(ents) != 5 {
		t.Fatalf("after recovery ws2 sees %d entries, want 5", len(ents))
	}
	for i := 0; i < 5; i++ {
		if _, err := f2.Stat(fmt.Sprintf("/crash%d", i)); err != nil {
			t.Fatalf("crash%d missing after recovery: %v", i, err)
		}
	}
	if f2.Stats().Recoveries == 0 {
		t.Fatal("no recovery ran on ws2")
	}
	// The recovered state passes the consistency check.
	rep, err := Check(tw.client("checker"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s: %s", p.Kind, p.Msg)
	}
}

func TestLeaseLossPoisonsDirtyServer(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", func(c *Config) {
		c.SyncEvery = time.Hour // keep data dirty
	})
	writeFile(t, f1, "/dirty", []byte("unsaved"))
	// Partition ws1's clerk from the lock service.
	tw.w.Net.Isolate(lockservice.ClerkAddr("ws1"))
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && !f1.Poisoned() {
		time.Sleep(5 * time.Millisecond)
	}
	if !f1.Poisoned() {
		t.Fatal("server with dirty cache not poisoned after lease loss")
	}
	if err := f1.Create("/nope"); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("op on poisoned fs: %v", err)
	}
}

func TestServerAdditionIsTransparent(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	writeFile(t, f1, "/pre", []byte("before"))
	// §7: "The new server need only be told which Petal virtual disk
	// to use and where to find the lock service."
	f3 := tw.mount(t, "ws3", nil)
	if got := readFile(t, f3, "/pre"); string(got) != "before" {
		t.Fatalf("new server reads %q", got)
	}
	writeFile(t, f3, "/post", []byte("after"))
	if got := readFile(t, f1, "/post"); string(got) != "after" {
		t.Fatalf("old server reads %q", got)
	}
	if f1.LogSlot() == f3.LogSlot() {
		t.Fatal("two live servers share a log slot")
	}
}

func TestBackupBarrierSnapshotAndRestore(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", func(c *Config) {
		c.SyncEvery = time.Hour // force the barrier to do the cleaning
	})
	f2 := tw.mount(t, "ws2", func(c *Config) {
		c.SyncEvery = time.Hour
	})
	writeFile(t, f1, "/a", []byte("alpha"))
	writeFile(t, f2, "/b", []byte("beta"))

	if err := f1.SnapshotWithBarrier("snap1"); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot writes must not appear in the snapshot.
	writeFile(t, f1, "/c", []byte("gamma"))

	// Restore the snapshot to a new disk and verify it without any
	// recovery (the barrier made it FS-level consistent).
	adminPC := tw.client("restorer")
	if err := Restore(adminPC, "snap1", "restored", tw.lay); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(adminPC, "restored", tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck on restored: %s: %s", p.Kind, p.Msg)
	}
	fr, err := Mount(tw.w, "ws9", tw.client("ws9"), "restored", tw.lockNames, tw.lay, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Unmount()
	if got := readFile(t, fr, "/a"); string(got) != "alpha" {
		t.Fatalf("restored /a = %q", got)
	}
	if got := readFile(t, fr, "/b"); string(got) != "beta" {
		t.Fatalf("restored /b = %q", got)
	}
	if _, err := fr.Stat("/c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("post-snapshot file leaked into snapshot: %v", err)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/x", []byte("data"))
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	pc := tw.client("corruptor")
	rep, err := Check(pc, tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, p := range rep.Problems {
			t.Logf("pre-corruption: %s %s", p.Kind, p.Msg)
		}
		t.Fatal("clean fs reported problems")
	}
	// Corrupt: clear the nlink of /x's inode behind the FS's back.
	info, _ := f.Stat("/x")
	sec := make([]byte, SectorSize)
	if err := pc.Read(tw.vd, tw.lay.InodeAddr(info.Inum), sec); err != nil {
		t.Fatal(err)
	}
	sec[offNlink] = 9
	if err := pc.Write(tw.vd, tw.lay.InodeAddr(info.Inum), sec); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(pc, tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if p.Kind == "nlink" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck missed the nlink corruption: %+v", rep.Problems)
	}
}

func TestLogReclaimUnderLoad(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", func(c *Config) {
		c.SyncEvery = time.Hour // only reclaim pressure flushes
	})
	// The 128 KB log fills after ~1000-1600 metadata ops (§4); do
	// enough creates to wrap it several times.
	for i := 0; i < 600; i++ {
		if err := f.Create(fmt.Sprintf("/f%03d", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if i%3 == 0 {
			if err := f.Remove(fmt.Sprintf("/f%03d", i)); err != nil {
				t.Fatalf("remove %d: %v", i, err)
			}
		}
	}
	ents, err := f.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 400 {
		t.Fatalf("%d entries, want 400", len(ents))
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(tw.client("checker"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck after reclaim: %s: %s", p.Kind, p.Msg)
	}
}

func TestWriteSharingAlternatingWriters(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	f2 := tw.mount(t, "ws2", nil)
	writeFile(t, f1, "/pingpong", make([]byte, 4096))
	h1, _ := f1.Open("/pingpong")
	h2, _ := f2.Open("/pingpong")
	for round := 0; round < 4; round++ {
		tag1 := []byte(fmt.Sprintf("ws1-round-%d", round))
		if _, err := h1.WriteAt(tag1, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(tag1))
		if _, err := h2.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, tag1) {
			t.Fatalf("round %d: ws2 read %q, want %q", round, buf, tag1)
		}
		tag2 := []byte(fmt.Sprintf("WS2-ROUND-%d", round))
		if _, err := h2.WriteAt(tag2, 100); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.ReadAt(buf, 100); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, tag2[:len(buf)]) {
			t.Fatalf("round %d: ws1 read %q, want %q", round, buf, tag2)
		}
	}
}

func TestDirectoryGrowsAcrossSectorsAndBlocks(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	// Enough entries to need several sectors (and more than one 4 KB
	// metadata block for the directory).
	const n = 400
	for i := 0; i < n; i++ {
		if err := f.Create(fmt.Sprintf("/file-with-a-rather-long-name-%04d", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, err := f.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("%d entries, want %d", len(ents), n)
	}
	// Spot-check lookups.
	for _, i := range []int{0, n / 2, n - 1} {
		if _, err := f.Stat(fmt.Sprintf("/file-with-a-rather-long-name-%04d", i)); err != nil {
			t.Fatalf("stat %d: %v", i, err)
		}
	}
	root, _ := f.Stat("/")
	if root.Size <= SectorSize {
		t.Fatalf("root dir size %d; expected growth", root.Size)
	}
}

func TestFsyncDurability(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", func(c *Config) {
		c.SyncEvery = time.Hour
	})
	writeFile(t, f1, "/durable", []byte("must survive"))
	h, _ := f1.Open("/durable")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	// After fsync the data is in Petal: a direct (uncached) read of a
	// fresh client must see it once metadata is recovered/replayed.
	// Simpler check here: a second server reads it (its cache is
	// cold, so the bytes must come from Petal).
	f2 := tw.mount(t, "ws2", nil)
	if got := readFile(t, f2, "/durable"); string(got) != "must survive" {
		t.Fatalf("after fsync, ws2 reads %q", got)
	}
}
