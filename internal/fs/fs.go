package fs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"frangipani/internal/bufpool"
	"frangipani/internal/cache"
	"frangipani/internal/lockservice"
	"frangipani/internal/obs"
	"frangipani/internal/petal"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
	"frangipani/internal/wal"
)

// Errors surfaced by file system operations.
var (
	ErrPoisoned = errors.New("fs: lease lost with dirty data; file system must be unmounted")
	ErrClosed   = errors.New("fs: unmounted")
	ErrNotExist = errors.New("fs: no such file or directory")
	ErrExist    = errors.New("fs: file exists")
	ErrNotDir   = errors.New("fs: not a directory")
	ErrIsDir    = errors.New("fs: is a directory")
	ErrNotEmpty = errors.New("fs: directory not empty")
	ErrRetry    = errors.New("fs: conflict, retry") // internal
	ErrTooBig   = errors.New("fs: file size exceeds 64 KB + one large block")
	ErrNoSpace  = errors.New("fs: no space")
	ErrInval    = errors.New("fs: invalid argument")
)

// Config tunes one Frangipani server.
type Config struct {
	// SyncEvery is the update-demon period; the paper's permanent
	// locations are updated "roughly every 30 seconds".
	SyncEvery sim.Duration
	// SyncLog forces the log to Petal on every metadata operation
	// ("optionally, we allow the log records to be written
	// synchronously", §4).
	SyncLog bool
	// LeaseMargin is checked before every Petal write (§6, 15 s).
	LeaseMargin sim.Duration
	// ReadAhead is the number of 4 KB pages prefetched on sequential
	// reads; 0 disables it (the Figure 8 experiment).
	ReadAhead int
	// FlushParallelism bounds concurrent write-back dispatches in the
	// sync demon and lock-revocation flushes. Values <= 1 select the
	// serial path: one synchronous Petal RPC per coalesced run. Higher
	// values enable the write-back pipeline: runs are packed into
	// scatter-gather WriteV batches and dispatched through a bounded
	// worker pool, overlapping Petal transfers.
	FlushParallelism int
	// Cache capacities, in blocks.
	MetaCacheCap int
	DataCacheCap int
	// CPU cost model for the server code path.
	CPUPerOp sim.Duration
	CPUPerKB sim.Duration
	// Lock carries the lock service timing shared with the clerk.
	Lock lockservice.Config
	// Carrier selects the message transport for this server's lock
	// clerk; nil uses the world's simulated network. Daemon
	// deployments pass the rpc.TCPCarrier shared with the Petal
	// client.
	Carrier rpc.Carrier
	// Trace, when set, receives debug events from the server and its
	// clerk.
	Trace func(format string, args ...any)
}

// DefaultConfig returns paper-flavored settings.
func DefaultConfig() Config {
	return Config{
		SyncEvery:        30 * time.Second,
		LeaseMargin:      lockservice.DefaultLeaseMargin,
		ReadAhead:        64,    // 256 KB window: four chunk-parallel Petal reads in flight
		FlushParallelism: 8,     // pipelined write-back, 8 batches in flight
		MetaCacheCap:     16384, // 8 MB of sectors
		DataCacheCap:     8192,  // 32 MB of pages
		CPUPerOp:         150 * time.Microsecond,
		CPUPerKB:         25 * time.Microsecond,
		Lock:             lockservice.DefaultConfig(),
	}
}

// trace emits a debug event when Config.Trace is set.
func (fs *FS) trace(format string, args ...any) {
	if fs.cfg.Trace != nil {
		fs.cfg.Trace(format, args...)
	}
}

// Counters aggregates per-server statistics for the benchmarks.
type Counters struct {
	Ops             int64
	BytesRead       int64
	BytesWritten    int64
	Retries         int64
	Recoveries      int64
	ReadAheadHits   int64
	ReadAheadWasted int64 // prefetched bytes discarded after revocation

	// Write-back pipeline statistics.
	FlushBatches      int64 // scatter-gather batches dispatched
	FlushRuns         int64 // coalesced runs written back
	FlushPages        int64 // blocks written back
	FlushPeakInFlight int64 // max concurrent write-back dispatches seen

	// Read-path batching statistics.
	MetaBatchFetches int64 // scatter-gather metadata fetches issued
	MetaBatchSectors int64 // sectors carried by those fetches
}

// fsMetrics is the registry-backed home of the server's counters
// (standalone collectors when observability is unwired). The old
// Counters accessor reads these, so benchmarks keep working.
type fsMetrics struct {
	ops, bytesRead, bytesWritten *obs.Counter
	retries, recoveries          *obs.Counter
	raHits, raWasted             *obs.Counter
	allocSticky, allocResume     *obs.Counter
	allocRescan, allocSkipFull   *obs.Counter
	flushBatches, flushRuns      *obs.Counter
	flushPages                   *obs.Counter
	metaBatch, metaBatchSectors  *obs.Counter
	flushPeak                    *obs.Gauge
	opLat                        map[string]*obs.Histogram
}

// fsOps are the traced operations, each with an
// "fs.<op>.latency#machine" histogram.
var fsOps = []string{
	"stat", "readdir", "readdirplus", "create", "remove", "rename",
	"link", "read", "write", "truncate", "fsync", "sync", "lookup",
}

func newFSMetrics(reg *obs.Registry, machine string) fsMetrics {
	c := func(name string) *obs.Counter {
		if reg == nil {
			return obs.NewCounter()
		}
		return reg.Counter("fs." + name + "#" + machine)
	}
	m := fsMetrics{
		ops:              c("ops.count"),
		bytesRead:        c("read.bytes"),
		bytesWritten:     c("write.bytes"),
		retries:          c("retry.count"),
		recoveries:       c("recovery.count"),
		raHits:           c("readahead.hits"),
		raWasted:         c("readahead.wasted"),
		allocSticky:      c("alloc.sticky.hits"),
		allocResume:      c("alloc.resume.hits"),
		allocRescan:      c("alloc.rescan"),
		allocSkipFull:    c("alloc.skip.full"),
		flushBatches:     c("flush.batches"),
		flushRuns:        c("flush.runs"),
		flushPages:       c("flush.pages"),
		metaBatch:        c("meta.batch.fetches"),
		metaBatchSectors: c("meta.batch.sectors"),
		flushPeak:        obs.NewGauge(),
	}
	if reg != nil {
		m.flushPeak = reg.Gauge("fs.flush.peak#" + machine)
		m.opLat = make(map[string]*obs.Histogram, len(fsOps))
		for _, op := range fsOps {
			m.opLat[op] = reg.Histogram("fs." + op + ".latency#" + machine)
		}
	}
	return m
}

// FS is one Frangipani file server instance.
type FS struct {
	w       *sim.World
	machine string
	pc      *petal.Client
	vd      petal.VDiskID
	lay     Layout
	cfg     Config
	clerk   *lockservice.Clerk
	log     *wal.Log
	meta    *cache.Pool
	data    *cache.Pool
	cpu     *sim.CPU

	mu       sync.Mutex
	owned    map[allocClass][]int64
	probeOff map[allocClass]int64
	// Allocator scan hints (all under mu). They are advisory: hints
	// only skip work that a scan of the authoritative bitmap (read
	// under the segment lock) would repeat, and every path that can
	// clear a bit — a local free, a remote steal revoking the segment
	// lock, lease loss — invalidates them.
	stickySeg map[allocClass]int64 // last segment that allocated; -1/absent = none
	segResume map[segKey]int64     // next bit segScan resumes from
	segFull   map[segKey]bool      // segments known full for a class
	appended int64 // highest log seq appended
	flushed  int64 // log seq known flushed
	poisoned bool
	closed   bool
	logSlot  int

	raMu    sync.Mutex
	raNext  map[int64]int64 // inum -> expected next sequential offset
	raHigh  map[int64]int64 // inum -> read-ahead high-water mark
	raBusy  map[int64]int   // inum -> prefetch runs in flight
	raPages int             // current read-ahead setting

	fetchMu  sync.Mutex
	inflight map[int64]chan struct{} // single-flight page fetches

	wbMu   sync.Mutex
	wbBusy bool // write-behind flush in flight

	flushInFlight int64 // current write-back dispatches (guarded by mu)

	// atimes holds in-memory approximate access times (§2.1), folded
	// into inodes when they are next logged. Guarded by mu.
	atimes map[int64]int64

	// Observability; set once in Mount.
	m    fsMetrics
	now  obs.NowFunc
	tr   *obs.Tracer
	jr   *obs.Journal      // flight recorder (nil-safe)
	acct *obs.AccountTable // per-principal accounting (nil-safe)

	syncCancel func()
}

// Mkfs initializes a Frangipani file system on an (empty) Petal
// virtual disk: the params sector, the root directory inode, and its
// allocation bit. It runs without locks; the disk must not be
// mounted anywhere.
func Mkfs(pc *petal.Client, vd petal.VDiskID, lay Layout) error {
	if err := lay.Validate(); err != nil {
		return err
	}
	if err := pc.Write(vd, lay.ParamsBase, encodeParams(params{
		Magic:   paramsMagic,
		Version: 1,
		Root:    RootInum,
	})); err != nil {
		return err
	}
	// Root inode.
	sec := make([]byte, SectorSize)
	encodeInode(Inode{Type: TypeDir, Nlink: 2}, sec)
	wal.SetBlockVersion(sec, 1)
	if err := pc.Write(vd, lay.InodeAddr(RootInum), sec); err != nil {
		return err
	}
	// Allocation bit for the root inode.
	bit := lay.bitFor(classInode, RootInum)
	addr, byteOff, mask := lay.bitLoc(bit)
	bsec := make([]byte, SectorSize)
	if err := pc.Read(vd, addr, bsec); err != nil {
		return err
	}
	bsec[byteOff] |= mask
	wal.SetBlockVersion(bsec, 1)
	return pc.Write(vd, addr, bsec)
}

// Mount attaches a new Frangipani server to a shared virtual disk.
// machine is this server's identity; lockServers lists the lock
// service members.
func Mount(w *sim.World, machine string, pc *petal.Client, vd petal.VDiskID,
	lockServers []string, lay Layout, cfg Config) (*FS, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	psec := make([]byte, SectorSize)
	if err := pc.Read(vd, lay.ParamsBase, psec); err != nil {
		return nil, fmt.Errorf("fs: reading params: %w", err)
	}
	if _, err := decodeParams(psec); err != nil {
		return nil, err
	}
	fs := &FS{
		w:        w,
		machine:  machine,
		pc:       pc,
		vd:       vd,
		lay:      lay,
		cfg:      cfg,
		cpu:      w.CPU(machine),
		meta:     cache.NewPool(SectorSize, cfg.MetaCacheCap),
		data:     cache.NewPool(BlockSize, cfg.DataCacheCap),
		owned:     make(map[allocClass][]int64),
		probeOff:  make(map[allocClass]int64),
		stickySeg: make(map[allocClass]int64),
		segResume: make(map[segKey]int64),
		segFull:   make(map[segKey]bool),
		raNext:   make(map[int64]int64),
		raHigh:   make(map[int64]int64),
		raBusy:   make(map[int64]int),
		atimes:   make(map[int64]int64),
		inflight: make(map[int64]chan struct{}),
		raPages:  cfg.ReadAhead,
	}
	fs.m = newFSMetrics(w.Obs, machine)
	if w.Obs != nil {
		fs.now = w.Obs.Now
		fs.tr = w.Obs.Tracer()
		fs.jr = w.Obs.Journal(machine)
		fs.acct = w.Obs.Accounts()
		// Hot-lock table entries decode to human-readable lock names
		// ("inode/7") in snapshots and exposition.
		w.Obs.Resources("lockservice.locks").SetNamer(LockName)
	}
	fs.meta.SetObs(w.Obs, machine+".meta")
	fs.data.SetObs(w.Obs, machine+".data")
	fs.meta.SetFlusher(func(e *cache.Entry) error { return fs.flushEntry(fs.meta, e) })
	fs.data.SetFlusher(func(e *cache.Entry) error { return fs.flushEntry(fs.data, e) })

	carrier := cfg.Carrier
	if carrier == nil {
		carrier = rpc.SimCarrier{Net: w.Net}
	}
	fs.clerk = lockservice.NewClerkWithCarrier(w, machine, string(vd), lockServers, cfg.Lock, carrier)
	fs.clerk.Trace = cfg.Trace
	fs.clerk.SetCallbacks(fs.onRevoke, fs.onRecover, fs.onLeaseLost)
	if err := fs.clerk.Open(); err != nil {
		return nil, err
	}
	fs.logSlot = fs.clerk.LogSlot()
	if fs.logSlot >= lay.LogSlots {
		fs.clerk.Close()
		return nil, fmt.Errorf("fs: out of log slots (%d servers max)", lay.LogSlots)
	}
	// Stamp Petal writes with our lease so guarded Petal servers can
	// reject expired writers (§6 hazard fix).
	pc.SetLeaseInfo(func() (int64, uint64) {
		return fs.clerk.ExpiresAt() - int64(cfg.LeaseMargin), fs.clerk.LeaseID()
	})

	// A fresh mount starts with an empty log: zero the slot so stale
	// records from a previous tenancy (already recovered or cleanly
	// closed) cannot be replayed.
	zero := make([]byte, lay.LogSize)
	if err := fs.petalWrite(lay.LogSlotBase(fs.logSlot), zero); err != nil {
		fs.clerk.Close()
		return nil, err
	}
	fs.log = wal.New(&logRegion{fs: fs, base: fs.lay.LogSlotBase(fs.logSlot)}, lay.LogSize)
	fs.log.SetObs(w.Obs, machine)
	fs.log.SetReclaim(fs.reclaimLog)

	fs.syncCancel = w.Clock.Tick(cfg.SyncEvery, func() { _ = fs.Sync() })
	return fs, nil
}

// Machine returns the server's machine name.
func (fs *FS) Machine() string { return fs.machine }

// LogSlot returns the server's private log slot.
func (fs *FS) LogSlot() int { return fs.logSlot }

// Clerk exposes the lock clerk (tests and the backup tool use it).
func (fs *FS) Clerk() *lockservice.Clerk { return fs.clerk }

// PetalStats snapshots the underlying Petal driver's write-path RPC
// counters (benchmarks compare serial vs scatter-gather write-back).
func (fs *FS) PetalStats() petal.ClientStats { return fs.pc.Stats() }

// Stats returns a snapshot of the server's counters (a compatibility
// view over the registry-backed metrics; each field is individually
// race-safe).
func (fs *FS) Stats() Counters {
	return Counters{
		Ops:               fs.m.ops.Value(),
		BytesRead:         fs.m.bytesRead.Value(),
		BytesWritten:      fs.m.bytesWritten.Value(),
		Retries:           fs.m.retries.Value(),
		Recoveries:        fs.m.recoveries.Value(),
		ReadAheadHits:     fs.m.raHits.Value(),
		ReadAheadWasted:   fs.m.raWasted.Value(),
		FlushBatches:      fs.m.flushBatches.Value(),
		FlushRuns:         fs.m.flushRuns.Value(),
		FlushPages:        fs.m.flushPages.Value(),
		FlushPeakInFlight: fs.m.flushPeak.Value(),
		MetaBatchFetches:  fs.m.metaBatch.Value(),
		MetaBatchSectors:  fs.m.metaBatchSectors.Value(),
	}
}

// HealthInfo aggregates one server's live health signals for the
// cluster health probes.
type HealthInfo struct {
	// LeaseExpiresAt is when the lock-service lease lapses (ns,
	// simulated clock); Poisoned means it already has.
	LeaseExpiresAt int64
	Poisoned       bool
	// WALBacklogBytes is the log stream appended but not yet durable;
	// WALLastFlush is the timestamp of the last successful flush (0
	// before the first).
	WALBacklogBytes int64
	WALLastFlush    int64
	// Cache occupancy, per pool.
	MetaResident, MetaDirty, MetaCapacity int
	DataResident, DataDirty, DataCapacity int
}

// Health snapshots the server's health signals.
func (fs *FS) Health() HealthInfo {
	var hi HealthInfo
	hi.LeaseExpiresAt = fs.clerk.ExpiresAt()
	hi.Poisoned = fs.Poisoned()
	hi.WALBacklogBytes, hi.WALLastFlush = fs.log.FlushHealth()
	hi.MetaResident, hi.MetaDirty = fs.meta.Usage()
	hi.MetaCapacity = fs.meta.Capacity()
	hi.DataResident, hi.DataDirty = fs.data.Usage()
	hi.DataCapacity = fs.data.Capacity()
	return hi
}

// traced wraps one public operation in a root span (joining the
// caller's trace if the goroutine is already bound to one) and the
// operation's latency histogram.
func (fs *FS) traced(op string, fn func() error) error {
	sp := fs.tr.Start("fs", op)
	if sp == nil {
		return fn()
	}
	var err error
	obs.With(sp, func() { err = fn() })
	sp.Done()
	if h := fs.m.opLat[op]; h != nil {
		h.Record(sp.Duration())
	}
	// Attribute the completed op (and its latency) to the caller's
	// principal; unbound callers land in the unknown account.
	fs.acct.Op(obs.CurrentPrincipal(), sp.Duration())
	return err
}

// accountBytes charges user-level bytes moved (in = written, out =
// read) to the calling goroutine's principal. Charged at the File API
// boundary, not the Petal boundary: background write-back and
// prefetch run on flusher goroutines with no binding and would
// otherwise dilute attribution into unknown.
func (fs *FS) accountBytes(in, out int) {
	fs.acct.Bytes(obs.CurrentPrincipal(), int64(in), int64(out))
}

// lat returns a deferred-latency recorder for hot internal paths
// that want a histogram without span overhead.
func (fs *FS) lat(op string) func() {
	if fs.now == nil {
		return func() {}
	}
	h := fs.m.opLat[op]
	start := fs.now()
	return func() { h.Record(fs.now() - start) }
}

// SetReadAhead adjusts the read-ahead window at runtime (Figure 8's
// experiment toggles it).
func (fs *FS) SetReadAhead(pages int) {
	fs.raMu.Lock()
	fs.raPages = pages
	fs.raMu.Unlock()
}

// Unmount cleanly detaches: flush everything, close the lock table.
func (fs *FS) Unmount() error {
	err := fs.Sync()
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	if fs.syncCancel != nil {
		fs.syncCancel()
	}
	fs.clerk.Close()
	return err
}

// Crash simulates this Frangipani server failing abruptly: the sync
// demon stops, operations fail, and the clerk goes silent without
// closing its session — so the lock service will expire the lease and
// run recovery on this server's log from another machine (§7:
// "Removing a Frangipani server ... It is adequate to simply shut
// the server off").
func (fs *FS) Crash() {
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	fs.jr.Record("fs", "crash", "induced", 0, int64(fs.logSlot), "")
	if fs.syncCancel != nil {
		fs.syncCancel()
	}
	fs.clerk.Abandon()
}

// Poisoned reports whether the server has shut itself off after
// losing its lease with dirty data.
func (fs *FS) Poisoned() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.poisoned
}

func (fs *FS) usable() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.poisoned {
		return ErrPoisoned
	}
	if fs.closed {
		return ErrClosed
	}
	return nil
}

func (fs *FS) chargeOp(bytes int) {
	fs.cpu.Use(fs.cfg.CPUPerOp + sim.Duration(bytes/1024)*fs.cfg.CPUPerKB)
	fs.m.ops.Inc()
}

// petalWrite guards every write with the lease check of §6: "A
// Frangipani server checks that its lease is still valid (and will
// still be valid for margin seconds) before attempting any write to
// Petal." A lease that is merely *near* expiry (renewals delayed) is
// indeterminate: the write waits for the next renewal round rather
// than failing, because callers on the revoke path would otherwise
// silently drop dirty data that the next lock holder depends on.
// Only a definitively lost lease fails the write.
func (fs *FS) petalWrite(addr int64, p []byte) error {
	if err := fs.waitLeaseForWrite(); err != nil {
		return err
	}
	return fs.pc.Write(fs.vd, addr, p)
}

// petalWriteV is the scatter-gather variant of petalWrite: one lease
// check covers the whole batch, which the Petal driver splits by
// chunk and dispatches with bounded parallelism.
func (fs *FS) petalWriteV(exts []petal.Extent) error {
	if err := fs.waitLeaseForWrite(); err != nil {
		return err
	}
	return fs.pc.WriteV(fs.vd, exts)
}

func (fs *FS) waitLeaseForWrite() error {
	if sp := fs.tr.Child("lockservice", "lease-check"); sp != nil {
		defer sp.Done()
	}
	deadline := fs.w.Clock.Now() + sim.Time(2*fs.cfg.Lock.LeaseDuration)
	for !fs.clerk.LeaseValid(fs.cfg.LeaseMargin) {
		if fs.clerk.LeaseLost() || fs.w.Clock.Now() >= deadline {
			return lockservice.ErrLeaseLost
		}
		fs.w.Clock.Sleep(fs.cfg.Lock.LeaseDuration / 10)
	}
	return nil
}

// logRegion adapts a log slot window to the WAL's BlockRegion.
type logRegion struct {
	fs   *FS
	base int64
}

func (r *logRegion) ReadAt(p []byte, off int64) error {
	return r.fs.pc.Read(r.fs.vd, r.base+off, p)
}

func (r *logRegion) WriteAt(p []byte, off int64) error {
	return r.fs.petalWrite(r.base+off, p)
}

// directDev adapts the whole virtual disk for WAL replay during
// recovery.
type directDev struct{ fs *FS }

func (d *directDev) ReadAt(p []byte, off int64) error {
	return d.fs.pc.Read(d.fs.vd, off, p)
}

func (d *directDev) WriteAt(p []byte, off int64) error {
	return d.fs.petalWrite(off, p)
}

// ---- cached block I/O ----

// readMeta returns the cached metadata sector at addr, loading it
// from Petal on a miss. owner is the covering lock.
func (fs *FS) readMeta(addr int64, owner uint64) (*cache.Entry, error) {
	if e, ok := fs.meta.Lookup(addr); ok {
		return e, nil
	}
	sp := fs.tr.Child("cache", "fill")
	defer sp.Done()
	var entry *cache.Entry
	var err error
	obs.With(sp, func() {
		// Pooled scratch: Insert copies into the cache's own page, so
		// the fill buffer recycles immediately.
		bufp := bufpool.Get(SectorSize)
		defer bufpool.Put(bufp)
		buf := *bufp
		if err = fs.pc.Read(fs.vd, addr, buf); err == nil {
			entry = fs.meta.Insert(addr, buf, owner)
		}
	})
	return entry, err
}

// metaFill names one metadata sector and the lock that covers it.
type metaFill struct {
	addr  int64
	owner uint64
}

// readMetaBatch warms the metadata cache for every named sector with
// one scatter-gather read: the sectors still missing are fetched in a
// single petal ReadV and inserted. Directory scans and batched stat
// paths collect their sector addresses up front and call this, so a
// cold scan costs one round trip instead of one per sector. Callers
// then go through readMeta for the decoded entries; after a
// successful batch those are hits.
func (fs *FS) readMetaBatch(fills []metaFill) error {
	var miss []metaFill
	for _, f := range fills {
		if _, ok := fs.meta.Lookup(f.addr); !ok {
			miss = append(miss, f)
		}
	}
	if len(miss) == 0 {
		return nil
	}
	sp := fs.tr.Child("cache", "fillv")
	defer sp.Done()
	var err error
	obs.With(sp, func() {
		bufsp := bufpool.Get(len(miss) * SectorSize)
		defer bufpool.Put(bufsp)
		bufs := *bufsp
		exts := make([]petal.ReadExtent, len(miss))
		for i := range miss {
			exts[i] = petal.ReadExtent{Off: miss[i].addr, Dst: bufs[i*SectorSize : (i+1)*SectorSize]}
		}
		if err = fs.pc.ReadV(fs.vd, exts); err != nil {
			return
		}
		fs.m.metaBatch.Inc()
		fs.m.metaBatchSectors.Add(int64(len(miss)))
		for i, f := range miss {
			// A concurrent reader may have raced the sector in — or a
			// writer may have dirtied it; keep theirs.
			if _, hit := fs.meta.Lookup(f.addr); hit {
				continue
			}
			fs.meta.Insert(f.addr, bufs[i*SectorSize:(i+1)*SectorSize], f.owner)
		}
	})
	return err
}

// readData returns the cached 4 KB data page at addr.
func (fs *FS) readData(addr int64, owner uint64) (*cache.Entry, error) {
	if e, ok := fs.data.Lookup(addr); ok {
		return e, nil
	}
	return fs.readDataRun(addr, 1, owner)
}

// readDataRun fetches count contiguous pages from Petal in one read
// and inserts them all, returning the first. Clustering misses keeps
// large sequential reads at one RPC per 64 KB chunk instead of one
// per page; single-flight claiming stops the foreground read and the
// prefetcher from fetching the same pages twice.
func (fs *FS) readDataRun(addr int64, count int, owner uint64) (*cache.Entry, error) {
	for {
		fs.fetchMu.Lock()
		if ch, busy := fs.inflight[addr]; busy {
			fs.fetchMu.Unlock()
			<-ch // someone else is fetching this page
			if e, ok := fs.data.Lookup(addr); ok {
				return e, nil
			}
			continue // their fetch failed; try ourselves
		}
		n := 0
		for n < count {
			if _, busy := fs.inflight[addr+int64(n)*BlockSize]; busy {
				break
			}
			n++
		}
		ch := make(chan struct{})
		for i := 0; i < n; i++ {
			fs.inflight[addr+int64(i)*BlockSize] = ch
		}
		fs.fetchMu.Unlock()

		var first *cache.Entry
		var err error
		sp := fs.tr.Child("cache", "fill")
		obs.With(sp, func() {
			bufp := bufpool.Get(n * BlockSize)
			defer bufpool.Put(bufp)
			buf := *bufp
			err = fs.pc.Read(fs.vd, addr, buf)
			if err == nil {
				fs.m.bytesRead.Add(int64(len(buf)))
				first = fs.data.Insert(addr, buf[:BlockSize], owner)
				for i := 1; i < n; i++ {
					// A concurrent writer may have raced a page in; keep
					// theirs.
					pageAddr := addr + int64(i)*BlockSize
					if _, hit := fs.data.Lookup(pageAddr); hit {
						continue
					}
					fs.data.Insert(pageAddr, buf[i*BlockSize:(i+1)*BlockSize], owner)
				}
			}
		})
		sp.Done()
		fs.fetchMu.Lock()
		for i := 0; i < n; i++ {
			delete(fs.inflight, addr+int64(i)*BlockSize)
		}
		fs.fetchMu.Unlock()
		close(ch)
		return first, err
	}
}

// ensureLogFlushed enforces write-ahead order: before a block dirtied
// by the record at seq may be written to Petal, the log must be
// durable through seq. Concurrent callers group-commit inside the
// WAL, so redundant calls are cheap.
func (fs *FS) ensureLogFlushed(seq int64) error {
	if seq == 0 {
		return nil
	}
	fs.mu.Lock()
	need := seq > fs.flushed
	target := fs.appended
	fs.mu.Unlock()
	if !need {
		return nil
	}
	if err := fs.log.Flush(); err != nil {
		return err
	}
	fs.mu.Lock()
	if target > fs.flushed {
		fs.flushed = target
	}
	fs.mu.Unlock()
	return nil
}

// flushEntry makes one dirty entry durable, honoring write-ahead
// order: the log is forced through the entry's sequence first.
func (fs *FS) flushEntry(pool *cache.Pool, e *cache.Entry) error {
	if err := fs.ensureLogFlushed(pool.EntrySeq(e)); err != nil {
		return err
	}
	buf := make([]byte, pool.BlockSize())
	gens := pool.SnapshotBatch([]*cache.Entry{e}, buf)
	if err := fs.petalWrite(e.Addr, buf); err != nil {
		return err
	}
	fs.m.bytesWritten.Add(int64(len(buf)))
	pool.MarkCleanIf(e, gens[0])
	return nil
}

// ---- transactions ----

// lockExtraMode is the mode for mid-operation extra locks.
const lockExtraMode = lockservice.Exclusive

// span is a modified byte range within a sector.
type span struct{ lo, hi int }

// txn accumulates one operation's metadata changes; commit turns
// them into a single log record (so the whole operation replays
// atomically per block) and marks the touched cache entries dirty.
type txn struct {
	fs      *FS
	touched []*cache.Entry
	spans   map[*cache.Entry][]span
	segs    []uint64 // bitmap segment locks acquired by the allocator
	// pageOwner is the inode lock that owns data pages created by
	// this transaction (set by operations that allocate blocks).
	pageOwner uint64
}

func (fs *FS) begin() *txn {
	return &txn{fs: fs, spans: make(map[*cache.Entry][]span)}
}

// update writes newBytes at off into the entry, recording the
// changed runs (diffed, so records stay small — the paper's are
// 80-128 bytes).
func (t *txn) update(e *cache.Entry, off int, newBytes []byte) {
	old := e.Data[off : off+len(newBytes)]
	runStart := -1
	for i := 0; i <= len(newBytes); i++ {
		changed := i < len(newBytes) && old[i] != newBytes[i]
		if changed && runStart < 0 {
			runStart = i
		}
		if !changed && runStart >= 0 {
			t.spans[e] = append(t.spans[e], span{off + runStart, off + i})
			runStart = -1
		}
	}
	t.fs.meta.Mutate(func() { copy(old, newBytes) })
	if _, seen := t.spans[e]; seen {
		t.addTouched(e)
	}
}

// forceUpdate records a span even if bytes compare equal (used when
// the semantic state must be re-logged, e.g. allocation bits).
func (t *txn) forceUpdate(e *cache.Entry, off int, newBytes []byte) {
	t.fs.meta.Mutate(func() { copy(e.Data[off:], newBytes) })
	t.spans[e] = append(t.spans[e], span{off, off + len(newBytes)})
	t.addTouched(e)
}

func (t *txn) addTouched(e *cache.Entry) {
	for _, x := range t.touched {
		if x == e {
			return
		}
	}
	t.touched = append(t.touched, e)
}

// mergeSpans coalesces overlapping/adjacent spans (gap <= 8 bytes is
// cheaper to log as one run).
func mergeSpans(in []span) []span {
	if len(in) <= 1 {
		return in
	}
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].lo < in[j-1].lo; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
	out := in[:1]
	for _, s := range in[1:] {
		last := &out[len(out)-1]
		if s.lo <= last.hi+8 {
			if s.hi > last.hi {
				last.hi = s.hi
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// commit appends the log record and dirties the touched entries.
// The caller still holds all covering locks.
func (t *txn) commit() error {
	if len(t.touched) == 0 {
		return nil
	}
	var ups []wal.Update
	for _, e := range t.touched {
		spans := mergeSpans(t.spans[e])
		if len(spans) == 0 {
			continue
		}
		ver := wal.BlockVersion(e.Data) + 1
		t.fs.meta.Mutate(func() { wal.SetBlockVersion(e.Data, ver) })
		for _, s := range spans {
			ups = append(ups, wal.Update{
				Addr: e.Addr,
				Off:  s.lo,
				Data: append([]byte(nil), e.Data[s.lo:s.hi]...),
				Ver:  ver,
			})
		}
	}
	if len(ups) == 0 {
		return nil
	}
	seq, err := t.fs.log.Append(ups)
	if err != nil {
		return err
	}
	for _, e := range t.touched {
		t.fs.meta.MarkDirty(e, seq)
	}
	t.fs.mu.Lock()
	if seq > t.fs.appended {
		t.fs.appended = seq
	}
	t.fs.mu.Unlock()
	if t.fs.cfg.SyncLog {
		if err := t.fs.log.Flush(); err != nil {
			return err
		}
		t.fs.mu.Lock()
		if seq > t.fs.flushed {
			t.fs.flushed = seq
		}
		t.fs.mu.Unlock()
	}
	return nil
}

// lockExtra acquires an additional exclusive lock that is held until
// the transaction's locks are released (used for locks discovered
// mid-operation, like a freshly allocated inode's).
func (t *txn) lockExtra(id uint64) error {
	if err := t.fs.clerk.Lock(id, lockExtraMode); err != nil {
		return err
	}
	t.segs = append(t.segs, id)
	return nil
}

// releaseSegs unlocks the bitmap segments (and extra locks) the
// transaction acquired mid-flight (sticky: the grants stay cached at
// the clerk).
func (t *txn) releaseSegs() {
	for _, id := range t.segs {
		t.fs.clerk.Unlock(id)
	}
	t.segs = nil
}

// ---- sync demon and write-back ----

// Sync is the update demon body: force the log, write back all dirty
// blocks, then let the log reclaim the records ("the permanent
// locations are updated periodically (roughly every 30 seconds) by
// the update demon", §4). With FlushParallelism > 1 metadata and data
// write-back proceed concurrently through the pipelined path; each
// batch still honors the per-entry log-before-data rule.
func (fs *FS) Sync() error {
	return fs.traced("sync", fs.sync)
}

func (fs *FS) sync() error {
	fs.mu.Lock()
	if fs.closed && fs.poisoned {
		fs.mu.Unlock()
		return ErrPoisoned
	}
	target := fs.appended
	fs.mu.Unlock()

	if err := fs.log.Flush(); err != nil {
		return err
	}
	fs.mu.Lock()
	if target > fs.flushed {
		fs.flushed = target
	}
	fs.mu.Unlock()

	var metaErr, dataErr error
	if fs.cfg.FlushParallelism > 1 {
		cur := obs.Current()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			obs.With(cur, func() { metaErr = fs.flushRuns(fs.meta, fs.meta.AllDirty()) })
		}()
		go func() {
			defer wg.Done()
			obs.With(cur, func() { dataErr = fs.flushRuns(fs.data, fs.data.AllDirty()) })
		}()
		wg.Wait()
	} else {
		metaErr = fs.flushRuns(fs.meta, fs.meta.AllDirty())
		dataErr = fs.flushRuns(fs.data, fs.data.AllDirty())
	}
	firstErr := metaErr
	if firstErr == nil {
		firstErr = dataErr
	}
	if firstErr == nil {
		fs.log.Release(target)
	}
	return firstErr
}

// writeBehind starts (at most one) background flush of dirty data
// pages once enough accumulate, overlapping Petal transfers with the
// application's writes the way the paper's kernel write-behind does.
func (fs *FS) writeBehind() {
	const threshold = 512 // pages (2 MB)
	fs.wbMu.Lock()
	if fs.wbBusy {
		fs.wbMu.Unlock()
		return
	}
	dirty := fs.data.AllDirty()
	if len(dirty) < threshold {
		fs.wbMu.Unlock()
		return
	}
	fs.wbBusy = true
	fs.wbMu.Unlock()
	go func() {
		_ = fs.flushDataBatch(dirty)
		fs.wbMu.Lock()
		fs.wbBusy = false
		fs.wbMu.Unlock()
	}()
}

// flushDataBatch writes back dirty data pages, coalescing adjacent
// pages into large runs — the paper's "clustering writes to Petal
// into naturally aligned 64 KB blocks" — which the Petal driver
// transfers chunk-parallel.
func (fs *FS) flushDataBatch(dirty []*cache.Entry) error {
	return fs.flushRuns(fs.data, dirty)
}

// flushRun is one coalesced write-back unit: contiguous dirty blocks
// snapshotted into a single buffer with their dirty generations.
type flushRun struct {
	addr    int64
	buf     []byte
	entries []*cache.Entry
	gens    []int64
}

// maxRunBytes caps one coalesced run (matches Petal's large-transfer
// sweet spot without starving concurrency).
const maxRunBytes = 1 << 20

// coalesceRuns sorts dirty entries by address and groups adjacent
// blocks into runs, snapshotting generations and data. Generations
// are taken before the copy so a concurrent re-dirty keeps the entry
// dirty (MarkCleanIfBatch will skip it).
func coalesceRuns(pool *cache.Pool, dirty []*cache.Entry) []flushRun {
	blockSize := pool.BlockSize()
	sort.Slice(dirty, func(a, b int) bool { return dirty[a].Addr < dirty[b].Addr })
	var runs []flushRun
	i := 0
	for i < len(dirty) {
		j := i + 1
		for j < len(dirty) && dirty[j].Addr == dirty[j-1].Addr+int64(blockSize) &&
			(dirty[j].Addr-dirty[i].Addr) < maxRunBytes {
			j++
		}
		run := dirty[i:j]
		r := flushRun{
			addr:    run[0].Addr,
			buf:     make([]byte, len(run)*blockSize),
			entries: run,
		}
		r.gens = pool.SnapshotBatch(run, r.buf)
		runs = append(runs, r)
		i = j
	}
	return runs
}

// maxBatchBytes caps one scatter-gather dispatch; the Petal driver
// further splits batches by replica server.
const maxBatchBytes = 1 << 20

// flushRuns writes back a set of dirty entries from one pool,
// log-first. Serial mode (FlushParallelism <= 1) issues one Petal
// write per coalesced run; pipelined mode packs runs into
// scatter-gather batches and dispatches them through a bounded worker
// pool, so one cache-sync round trip carries many runs and transfers
// overlap.
func (fs *FS) flushRuns(pool *cache.Pool, dirty []*cache.Entry) error {
	if len(dirty) == 0 {
		return nil
	}
	// Log-before-data: force the log through the newest record
	// covering any of these blocks before writing them in place.
	if err := fs.ensureLogFlushed(pool.MaxSeq(dirty)); err != nil {
		return err
	}
	runs := coalesceRuns(pool, dirty)
	if fs.cfg.FlushParallelism <= 1 {
		var firstErr error
		for _, r := range runs {
			if err := fs.writeRun(pool, r); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	// Pack runs into batches and dispatch through the worker pool.
	var batches [][]flushRun
	var cur []flushRun
	bytes := 0
	for _, r := range runs {
		if len(cur) > 0 && bytes+len(r.buf) > maxBatchBytes {
			batches = append(batches, cur)
			cur, bytes = nil, 0
		}
		cur = append(cur, r)
		bytes += len(r.buf)
	}
	batches = append(batches, cur)
	return fs.flushWorkers(len(batches), func(i int) error {
		return fs.writeRunBatch(pool, batches[i])
	})
}

// writeRun writes one coalesced run synchronously (serial path).
func (fs *FS) writeRun(pool *cache.Pool, r flushRun) error {
	if err := fs.petalWrite(r.addr, r.buf); err != nil {
		return err
	}
	pool.MarkCleanIfBatch(r.entries, r.gens)
	fs.m.bytesWritten.Add(int64(len(r.buf)))
	fs.m.flushRuns.Inc()
	fs.m.flushPages.Add(int64(len(r.entries)))
	return nil
}

// writeRunBatch sends one batch of runs as a single scatter-gather
// write and marks the covered entries clean on success.
func (fs *FS) writeRunBatch(pool *cache.Pool, batch []flushRun) error {
	exts := make([]petal.Extent, len(batch))
	total := 0
	for i, r := range batch {
		exts[i] = petal.Extent{Off: r.addr, Data: r.buf}
		total += len(r.buf)
	}
	if err := fs.petalWriteV(exts); err != nil {
		return err
	}
	fs.m.bytesWritten.Add(int64(total))
	fs.m.flushBatches.Inc()
	fs.m.flushRuns.Add(int64(len(batch)))
	for _, r := range batch {
		pool.MarkCleanIfBatch(r.entries, r.gens)
		fs.m.flushPages.Add(int64(len(r.entries)))
	}
	return nil
}

// flushWorkers runs fn(i) for every i in [0, n) on up to
// FlushParallelism workers, tracking the in-flight peak. All n run
// regardless of failures; the first error is returned.
func (fs *FS) flushWorkers(n int, fn func(int) error) error {
	par := fs.cfg.FlushParallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			fs.noteFlushInFlight(1)
			err := fn(i)
			fs.noteFlushInFlight(-1)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	sem := make(chan struct{}, par)
	errCh := make(chan error, n)
	cur := obs.Current()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			fs.noteFlushInFlight(1)
			obs.With(cur, func() { errCh <- fn(i) })
			fs.noteFlushInFlight(-1)
			<-sem
		}(i)
	}
	wg.Wait()
	close(errCh)
	var firstErr error
	for err := range errCh {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (fs *FS) noteFlushInFlight(d int64) {
	fs.mu.Lock()
	fs.flushInFlight += d
	cur := fs.flushInFlight
	fs.mu.Unlock()
	fs.m.flushPeak.SetMax(cur)
}

// reclaimLog is the WAL's space-pressure callback: make records
// through seq durable so their space can be reused.
func (fs *FS) reclaimLog(through int64) {
	_ = fs.log.Flush()
	fs.mu.Lock()
	if fs.appended > fs.flushed {
		fs.flushed = fs.appended
	}
	fs.mu.Unlock()
	var old []*cache.Entry
	for _, e := range fs.meta.AllDirty() {
		if fs.meta.EntrySeq(e) <= through {
			old = append(old, e)
		}
	}
	if err := fs.flushRuns(fs.meta, old); err == nil {
		fs.log.Release(through)
	}
}

// ---- lock service callbacks ----

// onRevoke implements §5's coherence actions when another server
// wants a conflicting lock.
func (fs *FS) onRevoke(lock uint64, to lockservice.Mode) {
	fs.trace("onRevoke lock=%x to=%v dirtyMeta=%d dirtyData=%d", lock, to,
		len(fs.meta.DirtyByOwner(lock)), len(fs.data.DirtyByOwner(lock)))
	switch lock & (0xff << 56) {
	case lockTagInode:
		fs.flushOwner(lock)
		if to == lockservice.None {
			fs.meta.InvalidateByOwner(lock)
			fs.data.InvalidateByOwner(lock)
			// The prefetch window is void with the cache.
			inum := int64(lock &^ (0xff << 56))
			fs.raMu.Lock()
			delete(fs.raHigh, inum)
			fs.raMu.Unlock()
		}
	case lockTagBitmap:
		fs.flushOwner(lock)
		fs.dropSegment(lock)
		if to == lockservice.None {
			fs.meta.InvalidateByOwner(lock)
		}
	case LockBarrier:
		// Backup barrier: clean everything before letting the backup
		// program take the exclusive lock (§8).
		_ = fs.Sync()
	}
}

// flushOwner forces the log and writes back the dirty blocks covered
// by one lock: "a write lock that covers dirty data can change owners
// only after the dirty data has been written to Petal" (§4). That
// rule is absolute — a transient Petal failure must delay the lock
// handoff, not drop the data — so this retries until everything is
// clean or the lease is definitively lost (in which case the lock
// service runs recovery from our log instead).
func (fs *FS) flushOwner(lock uint64) {
	for {
		dirtyMeta := fs.meta.DirtyByOwner(lock)
		dirtyData := fs.data.DirtyByOwner(lock)
		if len(dirtyMeta)+len(dirtyData) == 0 {
			return
		}
		ok := true
		if err := fs.flushRuns(fs.meta, dirtyMeta); err != nil {
			ok = false
		}
		if err := fs.flushRuns(fs.data, dirtyData); err != nil {
			ok = false
		}
		if ok {
			continue // re-check: all clean now exits above
		}
		if fs.clerk.LeaseLost() {
			return // poison path owns the data-loss accounting
		}
		fs.w.Clock.Sleep(500 * time.Millisecond)
	}
}

// dropSegment forgets an owned allocation segment when its lock is
// revoked (another server is stealing it). The scan hints covering
// the segment go with it: once the lock is gone the thief may free
// bits below our resume point or refill a segment we marked full, so
// the hints are only trustworthy while the lock is held.
func (fs *FS) dropSegment(lock uint64) {
	seg := int64(lock &^ (0xff << 56))
	fs.mu.Lock()
	for c, segs := range fs.owned {
		for i, s := range segs {
			if s == seg {
				fs.owned[c] = append(segs[:i], segs[i+1:]...)
				break
			}
		}
	}
	fs.dropSegHintsLocked(seg)
	fs.mu.Unlock()
}

// dropSegHintsLocked invalidates every allocator hint touching seg.
// Caller holds fs.mu.
func (fs *FS) dropSegHintsLocked(seg int64) {
	for c, s := range fs.stickySeg {
		if s == seg {
			delete(fs.stickySeg, c)
		}
	}
	for k := range fs.segResume {
		if k.seg == seg {
			delete(fs.segResume, k)
		}
	}
	for k := range fs.segFull {
		if k.seg == seg {
			delete(fs.segFull, k)
		}
	}
}

// onRecover is the recovery demon (§4): replay the dead server's log
// against the shared disk. The lock service has granted us exclusive
// ownership of the dead server's log and locks.
func (fs *FS) onRecover(dead string, deadSlot int) error {
	fs.jr.Record("fs", "recover", "start", 0, int64(deadSlot), dead)
	region := &logRegion{fs: fs, base: fs.lay.LogSlotBase(deadSlot)}
	recs, err := wal.Scan(region, fs.lay.LogSize)
	if err != nil {
		fs.jr.Record("fs", "recover", "fail", 0, int64(deadSlot), "scan: "+err.Error())
		return err
	}
	fs.jr.Record("fs", "recover", "scanned", 0, int64(len(recs)), dead)
	applied, err := wal.Replay(recs, &directDev{fs: fs})
	if err != nil {
		fs.jr.Record("fs", "recover", "fail", 0, int64(deadSlot), "replay: "+err.Error())
		return err
	}
	fs.jr.Record("fs", "recover", "replayed", 0, int64(applied), dead)
	fs.m.recoveries.Inc()
	return nil
}

// onLeaseLost implements §6: discard all cached data; if any of it
// was dirty, poison the file system so every subsequent request
// fails until unmount.
func (fs *FS) onLeaseLost() {
	dirty := fs.meta.HasDirty() || fs.data.HasDirty()
	if dirty {
		fs.jr.Record("fs", "poison", "lease-lost", 0, 1, "dirty cache discarded; server shut off")
	} else {
		fs.jr.Record("fs", "lease", "lost-clean", 0, 0, "caches invalidated")
	}
	fs.meta.InvalidateAll()
	fs.data.InvalidateAll()
	fs.mu.Lock()
	if dirty {
		fs.poisoned = true
	}
	fs.owned = make(map[allocClass][]int64)
	fs.stickySeg = make(map[allocClass]int64)
	fs.segResume = make(map[segKey]int64)
	fs.segFull = make(map[segKey]bool)
	fs.mu.Unlock()
}
