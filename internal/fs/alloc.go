package fs

import (
	"hash/fnv"
	"sort"

	"frangipani/internal/lockservice"
)

// The allocator implements §3's scheme: "Each Frangipani server locks
// a portion of the bitmap space for its exclusive use. When a
// server's bitmap space fills up, it finds and locks another unused
// portion." A portion is a segment of SegBits bits; its lock is held
// sticky, so allocation is normally local. Freeing an object owned
// by another server's segment briefly steals that segment's lock,
// which the paper's rules permit ("a data block or inode that is not
// currently allocated is protected by the lock on the segment of the
// allocation bitmap that holds the bit marking it as free").
//
// Deadlock safety: operations acquire inode locks first (sorted),
// then bitmap segment locks in ascending order. Class ranges are
// ordered in the bitmap, and each operation allocates in class order
// (inode, then metadata blocks, then data blocks, then large), so
// segment acquisitions are naturally ascending.

// segKey names one (class, segment) scan range: segments can straddle
// class boundaries, so fullness and resume hints are per class, not
// per segment.
type segKey struct {
	c   allocClass
	seg int64
}

// segScan scans a segment's bitmap sectors for a clear bit in the
// class range, under the segment lock (already held). It returns the
// bit index, or -1.
//
// The scan is hinted: it resumes from the bit after the last
// successful claim (segResume) instead of rescanning the class floor
// on every allocation — without hints, a filling segment costs
// O(allocated bits) per allocation, which is what made big clusters
// spend their time re-reading full bitmap prefixes. The hint is
// advisory: a miss from a nonzero resume point falls back to ONE full
// scan from the clamped floor before the segment is declared full
// (bits below the hint can be legitimately free after a local free or
// an aborted transaction), so "full" verdicts stay exact.
func (fs *FS) segScan(t *txn, seg int64, c allocClass) (int64, error) {
	lockID := SegLock(seg)
	clo, chi := fs.lay.classRange(c)
	lo := seg * fs.lay.SegBits
	hi := lo + fs.lay.SegBits
	if lo < clo {
		lo = clo
	}
	if hi > chi {
		hi = chi
	}
	key := segKey{c, seg}
	fs.mu.Lock()
	start := lo
	if r, ok := fs.segResume[key]; ok && r > lo && r < hi {
		start = r
		fs.m.allocResume.Inc()
	}
	fs.mu.Unlock()
	bit, err := fs.segScanRange(t, lockID, start, hi)
	if err != nil {
		return -1, err
	}
	if bit < 0 && start > lo {
		// Hint miss: rescan the skipped prefix once before giving up.
		fs.m.allocRescan.Inc()
		bit, err = fs.segScanRange(t, lockID, lo, start)
		if err != nil {
			return -1, err
		}
	}
	fs.mu.Lock()
	if bit >= 0 {
		fs.segResume[key] = bit + 1
		delete(fs.segFull, key)
	} else {
		fs.segFull[key] = true
		delete(fs.segResume, key)
	}
	fs.mu.Unlock()
	return bit, nil
}

// segScanRange scans bitmap bits [lo, hi) for a clear bit, claiming
// the first one found inside the transaction.
func (fs *FS) segScanRange(t *txn, lockID uint64, lo, hi int64) (int64, error) {
	for b := lo; b < hi; {
		addr, _, _ := fs.lay.bitLoc(b)
		e, err := fs.readMeta(addr, lockID)
		if err != nil {
			return -1, err
		}
		for ; b < hi; b++ {
			a2, byteOff2, mask := fs.lay.bitLoc(b)
			if a2 != addr {
				break // next sector
			}
			if e.Data[byteOff2]&mask == 0 {
				// Claim it.
				nb := []byte{e.Data[byteOff2] | mask}
				t.forceUpdate(e, byteOff2, nb)
				return b, nil
			}
		}
	}
	return -1, nil
}

// lockSeg acquires a segment lock for the duration of the
// transaction, remembering it for release at operation end.
func (t *txn) lockSeg(seg int64) error {
	id := SegLock(seg)
	for _, held := range t.segs {
		if held == id {
			return nil
		}
	}
	if err := t.fs.clerk.Lock(id, lockservice.Exclusive); err != nil {
		return err
	}
	t.segs = append(t.segs, id)
	return nil
}

// allocObj allocates one object of the class, setting its bitmap bit
// inside the transaction. The paper assigns servers distinct
// portions; we pick a starting probe position by hashing the machine
// name so servers naturally spread out.
func (fs *FS) allocObj(t *txn, c allocClass) (int64, error) {
	// Sticky fast path: the segment that satisfied the last
	// allocation of this class almost certainly has room for the
	// next one, and with the resume hint the claim is O(1). This is
	// what keeps per-allocation cost independent of how many
	// segments the server has filled and abandoned over its life.
	fs.mu.Lock()
	sticky, hasSticky := fs.stickySeg[c]
	if hasSticky && fs.segFull[segKey{c, sticky}] {
		hasSticky = false
	}
	fs.mu.Unlock()
	if hasSticky {
		if err := t.lockSeg(sticky); err != nil {
			return -1, err
		}
		bit, err := fs.segScan(t, sticky, c)
		if err != nil {
			return -1, err
		}
		if bit >= 0 {
			fs.m.allocSticky.Inc()
			_, idx := fs.lay.objForBit(bit)
			return idx, nil
		}
	}
	// Then try segments we already own, skipping known-full ones.
	fs.mu.Lock()
	segs := make([]int64, 0, len(fs.owned[c]))
	for _, seg := range fs.owned[c] {
		if seg == sticky && hasSticky {
			continue // just tried
		}
		if fs.segFull[segKey{c, seg}] {
			fs.m.allocSkipFull.Inc()
			continue
		}
		segs = append(segs, seg)
	}
	fs.mu.Unlock()
	for _, seg := range segs {
		if err := t.lockSeg(seg); err != nil {
			return -1, err
		}
		bit, err := fs.segScan(t, seg, c)
		if err != nil {
			return -1, err
		}
		if bit >= 0 {
			fs.mu.Lock()
			fs.stickySeg[c] = seg
			fs.mu.Unlock()
			_, idx := fs.lay.objForBit(bit)
			return idx, nil
		}
	}
	// Probe for another portion.
	lo, hi := fs.lay.segRange(c)
	n := hi - lo
	fs.mu.Lock()
	off, ok := fs.probeOff[c]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(fs.machine))
		h.Write([]byte{byte(c)})
		off = int64(h.Sum64() % uint64(n))
	}
	fs.mu.Unlock()
	for i := int64(0); i < n; i++ {
		seg := lo + (off+i)%n
		if fs.ownsSeg(c, seg) {
			continue
		}
		// Skip segments this server already probed and found full;
		// without this every probe pass rescans the same exhausted
		// prefix of the class range (O(filled segments) per probe).
		fs.mu.Lock()
		full := fs.segFull[segKey{c, seg}]
		fs.mu.Unlock()
		if full {
			fs.m.allocSkipFull.Inc()
			continue
		}
		if err := t.lockSeg(seg); err != nil {
			return -1, err
		}
		bit, err := fs.segScan(t, seg, c)
		if err != nil {
			return -1, err
		}
		if bit >= 0 {
			fs.mu.Lock()
			fs.owned[c] = insertSorted(fs.owned[c], seg)
			fs.probeOff[c] = (off + i) % n
			fs.stickySeg[c] = seg
			fs.mu.Unlock()
			_, idx := fs.lay.objForBit(bit)
			return idx, nil
		}
		// Full segment (segScan marked it): not worth keeping. Resume
		// the class probe after it next time instead of from the same
		// start, so repeated probes do not re-walk the filled prefix.
		fs.mu.Lock()
		fs.probeOff[c] = (off + i + 1) % n
		fs.mu.Unlock()
	}
	return -1, ErrNoSpace
}

func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (fs *FS) ownsSeg(c allocClass, seg int64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.owned[c] {
		if s == seg {
			return true
		}
	}
	return false
}

// freeSpec names one object to free.
type freeSpec struct {
	class allocClass
	idx   int64
}

// freeObjs clears the bitmap bits of the given objects inside the
// transaction, acquiring the needed segment locks in ascending order
// (deadlock discipline).
func (fs *FS) freeObjs(t *txn, items []freeSpec) error {
	type bitSpec struct {
		bit   int64
		seg   int64
		class allocClass
	}
	bits := make([]bitSpec, 0, len(items))
	for _, it := range items {
		b := fs.lay.bitFor(it.class, it.idx)
		bits = append(bits, bitSpec{bit: b, seg: b / fs.lay.SegBits, class: it.class})
	}
	sort.Slice(bits, func(a, b int) bool { return bits[a].bit < bits[b].bit })
	for _, bs := range bits {
		if err := t.lockSeg(bs.seg); err != nil {
			return err
		}
		addr, byteOff, mask := fs.lay.bitLoc(bs.bit)
		e, err := fs.readMeta(addr, SegLock(bs.seg))
		if err != nil {
			return err
		}
		nb := []byte{e.Data[byteOff] &^ mask}
		t.forceUpdate(e, byteOff, nb)
		// A freed bit un-fulls its segment and must pull the scan
		// resume point back below it, or the next scan would skip it.
		key := segKey{bs.class, bs.seg}
		fs.mu.Lock()
		delete(fs.segFull, key)
		if r, ok := fs.segResume[key]; ok && r > bs.bit {
			fs.segResume[key] = bs.bit
		}
		fs.mu.Unlock()
	}
	return nil
}

// bitState reports whether an object's allocation bit is set (used
// by the consistency checker and tests). It takes the segment lock
// shared.
func (fs *FS) bitState(c allocClass, idx int64) (bool, error) {
	b := fs.lay.bitFor(c, idx)
	seg := b / fs.lay.SegBits
	if err := fs.clerk.Lock(SegLock(seg), lockservice.Shared); err != nil {
		return false, err
	}
	defer fs.clerk.Unlock(SegLock(seg))
	addr, byteOff, mask := fs.lay.bitLoc(b)
	e, err := fs.readMeta(addr, SegLock(seg))
	if err != nil {
		return false, err
	}
	return e.Data[byteOff]&mask != 0, nil
}
