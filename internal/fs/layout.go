// Package fs implements the Frangipani file server: the paper's
// primary contribution. Multiple FS instances (one per machine) run
// the same code against one shared Petal virtual disk, coordinating
// through the distributed lock service, each logging its metadata
// updates to a private write-ahead log kept inside Petal.
package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Sizes.
const (
	// SectorSize is the metadata coherence unit: "we ensure that a
	// single disk sector does not hold more than one data structure
	// that could be shared" (§5).
	SectorSize = 512
	// BlockSize is the small-block size (§3: "small data blocks, each
	// 4 KB").
	BlockSize = 4096
	// InodeSize: "we have made inodes 512 bytes long, the size of a
	// disk block, thereby avoiding ... false sharing" (§3).
	InodeSize = 512
	// NumDirect is the number of small blocks per file: "The first
	// 64 KB (16 blocks) of a file are stored in small blocks" (§3).
	NumDirect = 16
	// DirectBytes is the byte range covered by small blocks.
	DirectBytes = NumDirect * BlockSize

	tb = int64(1) << 40
)

// Layout places the six regions of §3 in Petal's sparse address
// space. All constants are the paper's; only LargeBlockSize is
// configurable (1 TB in the paper — any power-of-two multiple of
// BlockSize works, and benchmarks use the real value because Petal
// address space is free).
type Layout struct {
	// ParamsBase holds shared configuration (region 0, 1 TB).
	ParamsBase int64
	// LogBase starts the log region (region 1, 1 TB, 256 slots).
	LogBase  int64
	LogSlots int
	LogSize  int64
	logStep  int64
	// BitmapBase starts the allocation bitmaps (region 2, 3 TB).
	BitmapBase int64
	// InodeBase starts the inodes (region 3, 1 TB, 2^31 inodes).
	InodeBase int64
	MaxInodes int64
	// SmallBase starts the 4 KB blocks (region 4, 2^47 bytes).
	SmallBase   int64
	SmallBlocks int64
	// MetaSmallBoundary splits the small-block space: blocks below it
	// are only ever used for metadata (directories), those above only
	// for user data. This enforces the paper's rule that "freed
	// metadata blocks are reused only to hold new metadata" without
	// needing a persistent taint list.
	MetaSmallBoundary int64
	// LargeBase starts the large blocks (region 5, one per file past
	// 64 KB).
	LargeBase      int64
	LargeBlockSize int64
	LargeBlocks    int64

	// SegBits is the size of one lockable allocation-bitmap segment,
	// in bits.
	SegBits int64
}

// DefaultLayout returns the paper's §3 layout. Large blocks are the
// paper's full 1 TB: Petal commits physical space only on write, so
// the sparseness costs nothing.
func DefaultLayout() Layout {
	l := Layout{
		ParamsBase:        0,
		LogBase:           1 * tb,
		LogSlots:          256,
		LogSize:           128 << 10,
		BitmapBase:        2 * tb,
		InodeBase:         5 * tb,
		MaxInodes:         1 << 31,
		SmallBase:         6 * tb,
		SmallBlocks:       1 << 35,
		MetaSmallBoundary: 1 << 34,
		LargeBase:         134 * tb,
		LargeBlockSize:    1 * tb,
		SegBits:           8 * bitsPerSector, // 8 bitmap sectors per segment
	}
	l.logStep = tb / int64(l.LogSlots)
	// Cap the address space at 2^62 to stay far from int64 overflow.
	l.LargeBlocks = ((int64(1) << 62) - l.LargeBase) / l.LargeBlockSize
	return l
}

// Validate checks internal consistency.
func (l *Layout) Validate() error {
	if l.SegBits%bitsPerSector != 0 {
		return errors.New("fs: segment size must be whole bitmap sectors")
	}
	if l.LargeBlockSize%BlockSize != 0 {
		return errors.New("fs: large block size must be a multiple of 4 KB")
	}
	if l.LogSize > l.logStep {
		return errors.New("fs: log size exceeds slot stride")
	}
	return nil
}

// Region address helpers.

// LogSlotBase returns the Petal address of a server's private log.
func (l *Layout) LogSlotBase(slot int) int64 {
	return l.LogBase + int64(slot)*l.logStep
}

// InodeAddr returns the Petal address of inode i.
func (l *Layout) InodeAddr(i int64) int64 { return l.InodeBase + i*InodeSize }

// SmallAddr returns the Petal address of small block j.
func (l *Layout) SmallAddr(j int64) int64 { return l.SmallBase + j*BlockSize }

// LargeAddr returns the Petal address of large block k.
func (l *Layout) LargeAddr(k int64) int64 { return l.LargeBase + k*l.LargeBlockSize }

// bitsPerSector is the number of allocation bits per bitmap sector:
// the last 8 bytes of every metadata sector hold its version trailer,
// leaving 504 usable bytes.
const bitsPerSector = 504 * 8

// bitLoc locates allocation bit b: the Petal address of its bitmap
// sector, the byte offset within the sector, and the bit mask.
func (l *Layout) bitLoc(b int64) (sectorAddr int64, byteOff int, mask byte) {
	sector := b / bitsPerSector
	rem := b % bitsPerSector
	return l.BitmapBase + sector*SectorSize, int(rem / 8), 1 << (rem % 8)
}

// BitmapAddr returns the Petal sector address holding bit b.
func (l *Layout) BitmapAddr(b int64) int64 {
	addr, _, _ := l.bitLoc(b)
	return addr
}

// Allocation classes. The bitmap maps bits to objects with a fixed
// rule (§3: "The mapping between bits in the allocation bitmap and
// inodes is fixed").
type allocClass int

const (
	classInode allocClass = iota
	classMetaSmall
	classDataSmall
	classLarge
	numClasses
)

func (c allocClass) String() string {
	switch c {
	case classInode:
		return "inode"
	case classMetaSmall:
		return "meta-small"
	case classDataSmall:
		return "data-small"
	case classLarge:
		return "large"
	}
	return "invalid"
}

// classRange returns the bitmap bit range [lo, hi) of a class.
func (l *Layout) classRange(c allocClass) (lo, hi int64) {
	switch c {
	case classInode:
		return 0, l.MaxInodes
	case classMetaSmall:
		return l.MaxInodes, l.MaxInodes + l.MetaSmallBoundary
	case classDataSmall:
		return l.MaxInodes + l.MetaSmallBoundary, l.MaxInodes + l.SmallBlocks
	case classLarge:
		return l.MaxInodes + l.SmallBlocks, l.MaxInodes + l.SmallBlocks + l.LargeBlocks
	}
	panic("fs: bad alloc class")
}

// bitFor maps an object index of a class to its bitmap bit. The two
// small-block classes share one index space — the split only directs
// which segments allocations come from.
func (l *Layout) bitFor(c allocClass, idx int64) int64 {
	var b int64
	switch c {
	case classInode:
		b = idx
	case classMetaSmall, classDataSmall:
		b = l.MaxInodes + idx
	case classLarge:
		b = l.MaxInodes + l.SmallBlocks + idx
	default:
		panic("fs: bad alloc class")
	}
	if idx < 0 {
		panic(fmt.Sprintf("fs: bit out of range: class %v idx %d", c, idx))
	}
	return b
}

// objForBit maps a bitmap bit back to (class, object index). Small
// blocks use a single index space regardless of the meta/data split.
func (l *Layout) objForBit(b int64) (allocClass, int64) {
	switch {
	case b < l.MaxInodes:
		return classInode, b
	case b < l.MaxInodes+l.MetaSmallBoundary:
		return classMetaSmall, b - l.MaxInodes
	case b < l.MaxInodes+l.SmallBlocks:
		return classDataSmall, b - l.MaxInodes
	default:
		return classLarge, b - l.MaxInodes - l.SmallBlocks
	}
}

// segRange returns the segment index range [lo, hi) covering a
// class.
func (l *Layout) segRange(c allocClass) (lo, hi int64) {
	blo, bhi := l.classRange(c)
	return blo / l.SegBits, (bhi + l.SegBits - 1) / l.SegBits
}

// Lock identifiers. The high byte tags the lock's kind; sorted
// acquisition (ascending ids) therefore orders inode locks before
// bitmap-segment locks, which is the deadlock-avoidance order every
// operation uses.
const (
	lockTagInode  = uint64(1) << 56
	lockTagBitmap = uint64(2) << 56
	lockTagLog    = uint64(3) << 56
	// LockBarrier is the single global lock used by the backup
	// barrier (§8): servers hold it shared for every modification,
	// the backup program requests it exclusive.
	LockBarrier = uint64(4) << 56
)

// InodeLock returns the lock covering inode i and all its data.
func InodeLock(i int64) uint64 { return lockTagInode | uint64(i) }

// SegLock returns the lock covering allocation-bitmap segment s.
func SegLock(s int64) uint64 { return lockTagBitmap | uint64(s) }

// LogLock returns the lock covering log slot s (held exclusively by
// a recovery demon while it replays that log).
func LogLock(slot int) uint64 { return lockTagLog | uint64(slot) }

// LockName decodes a lock id into a human-readable name for the
// hot-lock contention table ("inode/7", "bitmap-seg/3", ...).
func LockName(id uint64) string {
	n := id & (uint64(1)<<56 - 1)
	switch id &^ (uint64(1)<<56 - 1) {
	case lockTagInode:
		return fmt.Sprintf("inode/%d", n)
	case lockTagBitmap:
		return fmt.Sprintf("bitmap-seg/%d", n)
	case lockTagLog:
		return fmt.Sprintf("log-slot/%d", n)
	case LockBarrier:
		return "backup-barrier"
	}
	return fmt.Sprintf("%#x", id)
}

// ParseLockName is the inverse of LockName: it accepts the rendered
// forms ("inode/7", "bitmap-seg/3", "log-slot/0", "backup-barrier")
// as well as a raw decimal or 0x-hex lock id.
func ParseLockName(s string) (uint64, bool) {
	if s == "backup-barrier" {
		return LockBarrier, true
	}
	for _, p := range []struct {
		prefix string
		tag    uint64
	}{
		{"inode/", lockTagInode},
		{"bitmap-seg/", lockTagBitmap},
		{"log-slot/", lockTagLog},
	} {
		if strings.HasPrefix(s, p.prefix) {
			n, err := strconv.ParseUint(s[len(p.prefix):], 10, 64)
			if err != nil {
				return 0, false
			}
			return p.tag | n, true
		}
	}
	base := 10
	if strings.HasPrefix(s, "0x") {
		s, base = s[2:], 16
	}
	n, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Params sector (one sector at ParamsBase).
const paramsMagic = 0x46524749 // "FRGI"

type params struct {
	Magic   uint32
	Version uint32
	Root    int64
}

func encodeParams(p params) []byte {
	b := make([]byte, SectorSize)
	binary.LittleEndian.PutUint32(b[0:4], p.Magic)
	binary.LittleEndian.PutUint32(b[4:8], p.Version)
	binary.LittleEndian.PutUint64(b[8:16], uint64(p.Root))
	return b
}

func decodeParams(b []byte) (params, error) {
	p := params{
		Magic:   binary.LittleEndian.Uint32(b[0:4]),
		Version: binary.LittleEndian.Uint32(b[4:8]),
		Root:    int64(binary.LittleEndian.Uint64(b[8:16])),
	}
	if p.Magic != paramsMagic {
		return p, errors.New("fs: not a Frangipani file system (bad magic)")
	}
	return p, nil
}

// RootInum is the inode number of the root directory.
const RootInum = 0
