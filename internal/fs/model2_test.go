package fs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// TestRandomOpsTwoServersAgainstModel drives TWO servers with an
// interleaved random operation stream, checking every result against
// a shared in-memory model under one mutex. Because the model is
// updated atomically with each operation's completion, any coherence
// violation — a server acting on stale metadata or data — shows up as
// a model divergence. This is the paper's §2.1 guarantee ("changes
// made to a file or directory on one machine are immediately visible
// on all others") tested mechanically.
func TestRandomOpsTwoServersAgainstModel(t *testing.T) {
	tw := newTestWorld(t)
	servers := []*FS{tw.mount(t, "ws1", nil), tw.mount(t, "ws2", nil)}
	rng := rand.New(rand.NewSource(777))

	var mu sync.Mutex // serializes ops so the model stays exact
	files := map[string][]byte{}

	const ops = 160
	for i := 0; i < ops; i++ {
		f := servers[rng.Intn(len(servers))]
		mu.Lock()
		var names []string
		for p := range files {
			names = append(names, p)
		}
		op := rng.Intn(8)
		switch {
		case op < 2 || len(names) == 0: // create
			p := fmt.Sprintf("/x%03d", i)
			if _, ok := files[p]; !ok {
				if err := f.Create(p); err != nil {
					t.Fatalf("op %d create %s on %s: %v", i, p, f.Machine(), err)
				}
				files[p] = nil
			}
		case op < 5: // write
			p := names[rng.Intn(len(names))]
			h, err := f.Open(p)
			if err != nil {
				t.Fatalf("op %d open %s on %s: %v", i, p, f.Machine(), err)
			}
			off := rng.Int63n(32 << 10)
			data := make([]byte, rng.Intn(8<<10)+1)
			rng.Read(data)
			if _, err := h.WriteAt(data, off); err != nil {
				t.Fatalf("op %d write %s on %s: %v", i, p, f.Machine(), err)
			}
			cur := files[p]
			if int64(len(cur)) < off+int64(len(data)) {
				grown := make([]byte, off+int64(len(data)))
				copy(grown, cur)
				cur = grown
			}
			copy(cur[off:], data)
			files[p] = cur
		case op < 6: // remove
			p := names[rng.Intn(len(names))]
			if err := f.Remove(p); err != nil {
				t.Fatalf("op %d remove %s on %s: %v", i, p, f.Machine(), err)
			}
			delete(files, p)
		default: // verify from the OTHER server
			p := names[rng.Intn(len(names))]
			other := servers[rng.Intn(len(servers))]
			want := files[p]
			h, err := other.Open(p)
			if err != nil {
				t.Fatalf("op %d verify-open %s on %s: %v", i, p, other.Machine(), err)
			}
			got := make([]byte, len(want))
			if len(got) > 0 {
				if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("op %d verify-read %s on %s: %v", i, p, other.Machine(), err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: %s sees stale content for %s", i, other.Machine(), p)
			}
		}
		mu.Unlock()
	}

	// Every file verified from every server at the end.
	for p, want := range files {
		for _, f := range servers {
			h, err := f.Open(p)
			if err != nil {
				t.Fatalf("final open %s on %s: %v", p, f.Machine(), err)
			}
			got := make([]byte, len(want))
			if len(got) > 0 {
				if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("final read %s on %s: %v", p, f.Machine(), err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("final: %s sees stale content for %s", f.Machine(), p)
			}
		}
	}
	for _, f := range servers {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Check(tw.client("model2-check"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s %s", p.Kind, p.Msg)
	}
	if rep.Files != len(files) {
		t.Fatalf("fsck sees %d files, model has %d", rep.Files, len(files))
	}
}
