package fs

import (
	"encoding/binary"
	"errors"
)

// Directory content is a sequence of independent 512-byte sectors
// (each carrying its own version trailer, since "metadata such as
// directories, which span multiple blocks, have multiple version
// numbers", §4). Entries never cross sectors. Sector layout:
//
//	[0:2)     used bytes (within the entry area)
//	[2:504)   packed entries
//	[504:512) version trailer
//
// One entry: inum(8) nameLen(1) ftype(1) name(nameLen).
const (
	dirHdr       = 2
	dirDataEnd   = 504
	dirEntryArea = dirDataEnd - dirHdr
	// MaxName is the longest file name; an entry must fit one sector.
	MaxName = 255
)

// DirEntry is one decoded directory entry.
type DirEntry struct {
	Name string
	Inum int64
	Type FileType
}

// Errors.
var (
	ErrNameTooLong = errors.New("fs: file name too long")
	ErrBadDir      = errors.New("fs: corrupt directory sector")
)

func entryLen(name string) int { return 10 + len(name) }

// dirSectorEntries decodes the entries in one directory sector.
func dirSectorEntries(sec []byte) ([]DirEntry, error) {
	used := int(binary.LittleEndian.Uint16(sec[0:2]))
	if used > dirEntryArea {
		return nil, ErrBadDir
	}
	var out []DirEntry
	pos := dirHdr
	end := dirHdr + used
	for pos < end {
		if pos+10 > end {
			return nil, ErrBadDir
		}
		inum := int64(binary.LittleEndian.Uint64(sec[pos : pos+8]))
		nlen := int(sec[pos+8])
		ftype := FileType(sec[pos+9])
		if pos+10+nlen > end {
			return nil, ErrBadDir
		}
		out = append(out, DirEntry{
			Name: string(sec[pos+10 : pos+10+nlen]),
			Inum: inum,
			Type: ftype,
		})
		pos += 10 + nlen
	}
	return out, nil
}

// dirSectorFind locates name in a sector, returning the entry and
// its byte position, or ok=false.
func dirSectorFind(sec []byte, name string) (e DirEntry, pos int, ok bool) {
	used := int(binary.LittleEndian.Uint16(sec[0:2]))
	p := dirHdr
	end := dirHdr + used
	for p < end {
		if p+10 > end {
			return DirEntry{}, 0, false
		}
		nlen := int(sec[p+8])
		if p+10+nlen > end {
			return DirEntry{}, 0, false
		}
		if nlen == len(name) && string(sec[p+10:p+10+nlen]) == name {
			return DirEntry{
				Name: name,
				Inum: int64(binary.LittleEndian.Uint64(sec[p : p+8])),
				Type: FileType(sec[p+9]),
			}, p, true
		}
		p += 10 + nlen
	}
	return DirEntry{}, 0, false
}

// dirSectorSpace returns the free bytes in a sector's entry area.
func dirSectorSpace(sec []byte) int {
	used := int(binary.LittleEndian.Uint16(sec[0:2]))
	return dirEntryArea - used
}

// dirSectorAppend adds an entry in place; the caller must have
// checked space. It returns the byte range [from, to) modified.
func dirSectorAppend(sec []byte, e DirEntry) (from, to int) {
	used := int(binary.LittleEndian.Uint16(sec[0:2]))
	pos := dirHdr + used
	binary.LittleEndian.PutUint64(sec[pos:pos+8], uint64(e.Inum))
	sec[pos+8] = byte(len(e.Name))
	sec[pos+9] = byte(e.Type)
	copy(sec[pos+10:], e.Name)
	binary.LittleEndian.PutUint16(sec[0:2], uint16(used+entryLen(e.Name)))
	return 0, pos + entryLen(e.Name)
}

// dirSectorRemove deletes the entry at byte position pos (as returned
// by dirSectorFind), compacting the rest. It returns the modified
// byte range.
func dirSectorRemove(sec []byte, pos int) (from, to int) {
	used := int(binary.LittleEndian.Uint16(sec[0:2]))
	end := dirHdr + used
	nlen := int(sec[pos+8])
	el := 10 + nlen
	copy(sec[pos:], sec[pos+el:end])
	for i := end - el; i < end; i++ {
		sec[i] = 0
	}
	binary.LittleEndian.PutUint16(sec[0:2], uint16(used-el))
	return 0, end
}

// dirSectorCount returns the number of entries in a sector.
func dirSectorCount(sec []byte) int {
	es, err := dirSectorEntries(sec)
	if err != nil {
		return 0
	}
	return len(es)
}
