package fs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// tinyInodeLayout shrinks the inode class far below one bitmap
// segment (SegBits = 32256 bits), so segment 0 straddles the inode
// ceiling and the meta-small floor. Every inode scan must clamp its
// range to [0, MaxInodes) and every directory-block scan in the same
// segment must clamp to [MaxInodes, ...) — a claim crossing either
// boundary hands out an object of the wrong class.
func tinyInodeLayout() Layout {
	lay := DefaultLayout()
	lay.MaxInodes = 600
	return lay
}

// TestSegScanClassBoundary exhausts a 600-inode class whose range is
// a strict prefix of segment 0 and checks the allocator's verdicts
// stay exact at the boundary: exactly MaxInodes-1 creatable objects
// (the root holds inode 0), freed bits become allocatable again
// despite resume hints pointing past them, and re-exhaustion fails at
// exactly the freed count.
func TestSegScanClassBoundary(t *testing.T) {
	tw := newTestWorldLayout(t, tinyInodeLayout())
	f := tw.mount(t, "ws1", nil)

	const dirs = 4
	for d := 0; d < dirs; d++ {
		if err := f.Mkdir(fmt.Sprintf("/d%d", d)); err != nil {
			t.Fatal(err)
		}
	}
	created := 0
	for {
		err := f.Create(fmt.Sprintf("/d%d/f%d", created%dirs, created))
		if errors.Is(err, ErrNoSpace) {
			break
		}
		if err != nil {
			t.Fatalf("create %d: %v", created, err)
		}
		created++
	}
	// Inode capacity: MaxInodes minus the root, minus the dirs. If
	// the inode scan ever claimed a bit past the class ceiling (the
	// meta-small floor shares segment 0), this count would overshoot.
	want := int(tw.lay.MaxInodes) - 1 - dirs
	if created != want {
		t.Fatalf("created %d files before ErrNoSpace, want exactly %d", created, want)
	}

	// The scan hints must have been doing their job on the way up:
	// sticky-segment hits and resume hits, not O(bits) rescans.
	cnt := func(name string) int64 {
		return tw.w.Obs.Counter("fs." + name + "#ws1").Value()
	}
	if cnt("alloc.sticky.hits") == 0 {
		t.Fatal("no sticky-segment hits during fill")
	}
	if cnt("alloc.resume.hits") == 0 {
		t.Fatal("no resume-hint hits during fill")
	}

	// Free a scattered handful. Their bits sit below the resume hint,
	// so only the hint pull-back on free makes them findable again.
	const freed = 9
	for i := 0; i < freed; i++ {
		if err := f.Remove(fmt.Sprintf("/d%d/f%d", (i*31)%dirs, i*31)); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	for i := 0; i < freed; i++ {
		if err := f.Create(fmt.Sprintf("/d0/g%d", i)); err != nil {
			t.Fatalf("recreate %d after free: %v", i, err)
		}
	}
	if err := f.Create("/d0/overflow"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("create beyond refilled capacity: got %v, want ErrNoSpace", err)
	}
	// The overflow scan resumed above the class floor (the hint sits
	// past the highest refilled bit), so its "full" verdict required
	// exactly the one full-prefix rescan the hint contract promises.
	if cnt("alloc.rescan") == 0 {
		t.Fatal("segment declared full without a full-prefix rescan")
	}

	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(tw.client("chk"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("consistency check after boundary exhaustion: %v", rep.Problems)
	}
}

// TestSegmentStealAcrossServers runs the paper's bitmap-steal path
// under race: ws2 removes files ws1 created (clearing bits inside
// segments ws1's allocator considers its own, which briefly steals
// the segment locks) while ws1 keeps allocating from those segments.
func TestSegmentStealAcrossServers(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	f2 := tw.mount(t, "ws2", nil)

	const n = 30
	if err := f1.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		writeFile(t, f1, fmt.Sprintf("/d/f%d", i), []byte("steal me"))
	}
	if err := f1.Sync(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := f2.Remove(fmt.Sprintf("/d/f%d", i)); err != nil {
				errc <- fmt.Errorf("ws2 remove f%d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		writeFile(t, f1, fmt.Sprintf("/d/g%d", i), []byte("fresh"))
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	if err := f1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f2, "/d/g7"); string(got) != "fresh" {
		t.Fatalf("cross-server read after steal: %q", got)
	}
	rep, err := Check(tw.client("chk"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("consistency check after steals: %v", rep.Problems)
	}
	if rep.Files != n {
		t.Fatalf("checker found %d files, want %d", rep.Files, n)
	}
}
