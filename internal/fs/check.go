package fs

import (
	"fmt"

	"frangipani/internal/petal"
)

// Check is the offline metadata consistency checker — the fsck-like
// "metadata consistency check and repair tool" the paper names as
// unimplemented future work (§4). It walks the namespace from the
// root over a quiesced (or snapshotted) virtual disk and verifies:
//
//   - directory entries reference allocated inodes of matching type;
//   - link counts match the namespace;
//   - no data block or inode is referenced twice;
//   - referenced blocks and inodes have their allocation bits set;
//   - allocation bits within the visited bitmap sectors that no
//     walked object accounts for are reported as leaks.
//
// It reads Petal directly, without locks: run it only against a
// snapshot or an unmounted file system.

// Problem is one inconsistency found by Check.
type Problem struct {
	Kind string
	Msg  string
}

// Report summarizes a Check run.
type Report struct {
	Inodes   int
	Dirs     int
	Files    int
	Symlinks int
	Blocks   int
	Problems []Problem
}

// OK reports whether no problems were found.
func (r *Report) OK() bool { return len(r.Problems) == 0 }

func (r *Report) addf(kind, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// checker carries the walk state.
type checker struct {
	pc  *petal.Client
	vd  petal.VDiskID
	lay Layout
	rep *Report

	nlinks   map[int64]int  // inum -> links found in namespace
	seenIno  map[int64]bool // inodes visited
	blockRef map[int64]string
	bits     map[int64]bool // allocation bits that must be set
}

// Check verifies the file system on vd.
func Check(pc *petal.Client, vd petal.VDiskID, lay Layout) (*Report, error) {
	c := &checker{
		pc: pc, vd: vd, lay: lay,
		rep:      &Report{},
		nlinks:   make(map[int64]int),
		seenIno:  make(map[int64]bool),
		blockRef: make(map[int64]string),
		bits:     make(map[int64]bool),
	}
	psec := make([]byte, SectorSize)
	if err := pc.Read(vd, lay.ParamsBase, psec); err != nil {
		return nil, err
	}
	if _, err := decodeParams(psec); err != nil {
		return nil, err
	}
	c.nlinks[RootInum] = 2 // root references itself
	if err := c.walkDir(RootInum, "/"); err != nil {
		return nil, err
	}
	// Link counts.
	for inum, want := range c.nlinks {
		in, err := c.readInode(inum)
		if err != nil {
			continue
		}
		if int(in.Nlink) != want {
			c.rep.addf("nlink", "inode %d: nlink=%d, namespace says %d", inum, in.Nlink, want)
		}
	}
	// Allocation bits: everything referenced must be marked.
	visited := make(map[int64][]byte) // bitmap sector addr -> data
	for bit := range c.bits {
		addr, byteOff, mask := c.lay.bitLoc(bit)
		sec, ok := visited[addr]
		if !ok {
			sec = make([]byte, SectorSize)
			if err := pc.Read(vd, addr, sec); err != nil {
				return nil, err
			}
			visited[addr] = sec
		}
		if sec[byteOff]&mask == 0 {
			c.rep.addf("bitmap", "bit %d clear but object referenced", bit)
		}
	}
	// Leaks: set bits in visited sectors that nothing references.
	for addr, sec := range visited {
		sectorIdx := (addr - c.lay.BitmapBase) / SectorSize
		base := sectorIdx * bitsPerSector
		for i := int64(0); i < bitsPerSector; i++ {
			byteOff, mask := int(i/8), byte(1)<<(i%8)
			if sec[byteOff]&mask != 0 && !c.bits[base+i] {
				class, idx := c.lay.objForBit(base + i)
				c.rep.addf("leak", "bit %d set but unreferenced (%v %d)", base+i, class, idx)
			}
		}
	}
	return c.rep, nil
}

func (c *checker) readInode(inum int64) (Inode, error) {
	sec := make([]byte, SectorSize)
	if err := c.pc.Read(c.vd, c.lay.InodeAddr(inum), sec); err != nil {
		return Inode{}, err
	}
	return decodeInode(sec)
}

// claimBlocks registers an inode's block pointers, reporting
// double-references.
func (c *checker) claimBlocks(inum int64, in Inode, path string) {
	claim := func(key int64, bit int64, what string) {
		if prev, dup := c.blockRef[key]; dup {
			c.rep.addf("dup-block", "%s of inode %d (%s) also referenced by %s", what, inum, path, prev)
			return
		}
		c.blockRef[key] = path
		c.bits[bit] = true
		c.rep.Blocks++
	}
	class := classDataSmall
	if in.Type == TypeDir {
		class = classMetaSmall
	}
	for slot, ptr := range in.Small {
		if ptr != 0 {
			claim(c.lay.SmallAddr(ptr-1), c.lay.bitFor(class, ptr-1),
				fmt.Sprintf("small[%d]", slot))
		}
	}
	if in.Large != 0 {
		claim(c.lay.LargeAddr(in.Large-1), c.lay.bitFor(classLarge, in.Large-1), "large")
	}
}

func (c *checker) walkDir(inum int64, path string) error {
	if c.seenIno[inum] {
		c.rep.addf("dir-loop", "directory %d (%s) reached twice", inum, path)
		return nil
	}
	c.seenIno[inum] = true
	c.bits[c.lay.bitFor(classInode, inum)] = true
	in, err := c.readInode(inum)
	if err != nil {
		c.rep.addf("inode", "directory inode %d (%s): %v", inum, path, err)
		return nil
	}
	if in.Type != TypeDir {
		c.rep.addf("type", "%s: inode %d is %v, expected dir", path, inum, in.Type)
		return nil
	}
	c.rep.Inodes++
	c.rep.Dirs++
	c.claimBlocks(inum, in, path)

	// Read the directory content directly.
	for off := int64(0); off < in.Size; off += SectorSize {
		pageAddr, inPage, ok := pageAddrFor(c.lay, in, off)
		if !ok {
			c.rep.addf("dir-hole", "%s: directory offset %d has no block", path, off)
			continue
		}
		sec := make([]byte, SectorSize)
		if err := c.pc.Read(c.vd, pageAddr+(inPage&^(SectorSize-1)), sec); err != nil {
			return err
		}
		ents, err := dirSectorEntries(sec)
		if err != nil {
			c.rep.addf("dir-sector", "%s: offset %d: %v", path, off, err)
			continue
		}
		for _, ent := range ents {
			child := path + ent.Name
			cin, err := c.readInode(ent.Inum)
			if err != nil {
				c.rep.addf("entry", "%s: unreadable inode %d: %v", child, ent.Inum, err)
				continue
			}
			if cin.Type != ent.Type {
				c.rep.addf("type", "%s: entry says %v, inode %d says %v", child, ent.Type, ent.Inum, cin.Type)
			}
			if cin.Type == TypeFree {
				c.rep.addf("entry", "%s: references free inode %d", child, ent.Inum)
				continue
			}
			switch cin.Type {
			case TypeDir:
				c.nlinks[ent.Inum] += 2 // entry + self
				c.nlinks[inum]++        // child's parent reference
				if err := c.walkDir(ent.Inum, child+"/"); err != nil {
					return err
				}
			default:
				c.nlinks[ent.Inum]++
				if !c.seenIno[ent.Inum] {
					c.seenIno[ent.Inum] = true
					c.bits[c.lay.bitFor(classInode, ent.Inum)] = true
					c.rep.Inodes++
					if cin.Type == TypeSymlink {
						c.rep.Symlinks++
					} else {
						c.rep.Files++
					}
					c.claimBlocks(ent.Inum, cin, child)
				}
			}
		}
	}
	return nil
}

// pageAddrFor is filePageAddr without an FS instance.
func pageAddrFor(lay Layout, in Inode, off int64) (int64, int64, bool) {
	slot, inBlock := blockFor(off)
	if slot >= 0 {
		if in.Small[slot] == 0 {
			return 0, 0, false
		}
		return lay.SmallAddr(in.Small[slot] - 1), inBlock, true
	}
	if in.Large == 0 || inBlock >= lay.LargeBlockSize {
		return 0, 0, false
	}
	base := lay.LargeAddr(in.Large - 1)
	return base + (inBlock &^ (BlockSize - 1)), inBlock & (BlockSize - 1), true
}
