package fs

import (
	"encoding/binary"
	"errors"
)

// FileType distinguishes the objects an inode can describe. "In this
// section the word file includes directories, symbolic links, and
// the like" (§3).
type FileType uint16

// File types.
const (
	TypeFree FileType = iota
	TypeFile
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	}
	return "invalid"
}

// MaxSymlink is the longest symlink target, stored inline: "Symbolic
// links store their data directly in the inode" (§3).
const MaxSymlink = 320

// Inode is the decoded form of one 512-byte on-disk inode. Block
// pointers hold the object index + 1, so zero means unallocated.
//
// On-disk layout (little endian):
//
//	[0:2)    type
//	[2:4)    nlink
//	[4:12)   size
//	[12:20)  mtime (simulated ns)
//	[20:28)  ctime
//	[28:36)  atime (maintained approximately, §2.1)
//	[36:164) 16 small-block pointers
//	[164:172) large-block pointer
//	[172:174) symlink target length
//	[174:174+MaxSymlink) symlink target
//	[504:512) version trailer (managed by the WAL layer)
type Inode struct {
	Type    FileType
	Nlink   uint16
	Size    int64
	Mtime   int64
	Ctime   int64
	Atime   int64
	Small   [NumDirect]int64 // index+1
	Large   int64            // index+1
	Symlink string
}

// Field offsets within the sector.
const (
	offType    = 0
	offNlink   = 2
	offSize    = 4
	offMtime   = 12
	offCtime   = 20
	offAtime   = 28
	offSmall   = 36
	offLarge   = offSmall + NumDirect*8 // 164
	offSymLen  = offLarge + 8           // 172
	offSymData = offSymLen + 2          // 174
)

// ErrBadInode reports a corrupt on-disk inode.
var ErrBadInode = errors.New("fs: corrupt inode")

// decodeInode parses an inode sector (excluding the version trailer,
// which the WAL layer owns).
func decodeInode(b []byte) (Inode, error) {
	var in Inode
	in.Type = FileType(binary.LittleEndian.Uint16(b[offType:]))
	if in.Type > TypeSymlink {
		return in, ErrBadInode
	}
	in.Nlink = binary.LittleEndian.Uint16(b[offNlink:])
	in.Size = int64(binary.LittleEndian.Uint64(b[offSize:]))
	in.Mtime = int64(binary.LittleEndian.Uint64(b[offMtime:]))
	in.Ctime = int64(binary.LittleEndian.Uint64(b[offCtime:]))
	in.Atime = int64(binary.LittleEndian.Uint64(b[offAtime:]))
	for i := 0; i < NumDirect; i++ {
		in.Small[i] = int64(binary.LittleEndian.Uint64(b[offSmall+i*8:]))
	}
	in.Large = int64(binary.LittleEndian.Uint64(b[offLarge:]))
	slen := int(binary.LittleEndian.Uint16(b[offSymLen:]))
	if slen > MaxSymlink {
		return in, ErrBadInode
	}
	if slen > 0 {
		in.Symlink = string(b[offSymData : offSymData+slen])
	}
	return in, nil
}

// encodeInode serializes an inode into the first 504 bytes of a
// sector buffer (the version trailer is left untouched).
func encodeInode(in Inode, b []byte) {
	for i := 0; i < offSymData; i++ {
		b[i] = 0
	}
	binary.LittleEndian.PutUint16(b[offType:], uint16(in.Type))
	binary.LittleEndian.PutUint16(b[offNlink:], in.Nlink)
	binary.LittleEndian.PutUint64(b[offSize:], uint64(in.Size))
	binary.LittleEndian.PutUint64(b[offMtime:], uint64(in.Mtime))
	binary.LittleEndian.PutUint64(b[offCtime:], uint64(in.Ctime))
	binary.LittleEndian.PutUint64(b[offAtime:], uint64(in.Atime))
	for i := 0; i < NumDirect; i++ {
		binary.LittleEndian.PutUint64(b[offSmall+i*8:], uint64(in.Small[i]))
	}
	binary.LittleEndian.PutUint64(b[offLarge:], uint64(in.Large))
	binary.LittleEndian.PutUint16(b[offSymLen:], uint16(len(in.Symlink)))
	copy(b[offSymData:], in.Symlink)
	for i := offSymData + len(in.Symlink); i < offSymData+MaxSymlink; i++ {
		b[i] = 0
	}
}

// blockFor maps a byte offset within a file to its storage: which
// small block slot (or the large block) and the offset within it.
// It returns slot == -1 for the large block.
func blockFor(off int64) (slot int, inBlock int64) {
	if off < DirectBytes {
		return int(off / BlockSize), off % BlockSize
	}
	return -1, off - DirectBytes
}
