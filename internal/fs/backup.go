package fs

import (
	"fmt"

	"frangipani/internal/lockservice"
	"frangipani/internal/petal"
	"frangipani/internal/wal"
)

// Backup implements §8. Two flavors:
//
//   - SnapshotCrashConsistent takes a plain Petal snapshot. It is
//     "crash-consistent": restoring it is "the same problem as
//     recovering from a system-wide power failure" — the logs are in
//     the snapshot and must be replayed.
//
//   - SnapshotWithBarrier implements the improved scheme: the backup
//     holder acquires the global barrier lock in exclusive mode;
//     every Frangipani server holds it shared for each modification,
//     and its revoke callback cleans all dirty state before
//     releasing. The resulting snapshot is consistent at the file
//     system level and needs no recovery.

// SnapshotCrashConsistent takes a Petal snapshot without quiescing
// the servers.
func (fs *FS) SnapshotCrashConsistent(snap petal.VDiskID) error {
	if err := fs.usable(); err != nil {
		return err
	}
	return fs.pc.Snapshot(fs.vd, snap)
}

// SnapshotWithBarrier quiesces all servers via the barrier lock,
// then snapshots. The snapshot can be mounted read-only directly.
func (fs *FS) SnapshotWithBarrier(snap petal.VDiskID) error {
	if err := fs.usable(); err != nil {
		return err
	}
	// Clean our own state first: our shared barrier hold upgrades in
	// place, so our revoke callback will not fire.
	if err := fs.Sync(); err != nil {
		return err
	}
	if err := fs.clerk.Lock(LockBarrier, lockservice.Exclusive); err != nil {
		return err
	}
	defer fs.clerk.Unlock(LockBarrier)
	if err := fs.Sync(); err != nil {
		return err
	}
	return fs.pc.Snapshot(fs.vd, snap)
}

// Restore copies a snapshot onto a fresh virtual disk and replays
// every log found in it, producing a writable disk equal to the
// snapshot's post-recovery state ("it can be restored by copying it
// back to a new Petal virtual disk and running recovery on each
// log", §8).
func Restore(pc *petal.Client, snap, dest petal.VDiskID, lay Layout) error {
	if err := pc.CreateVDisk(dest); err != nil {
		return err
	}
	chunks, err := pc.ListChunks(snap)
	if err != nil {
		return err
	}
	buf := make([]byte, petal.ChunkSize)
	for _, ch := range chunks {
		off := ch * petal.ChunkSize
		if err := pc.Read(snap, off, buf); err != nil {
			return fmt.Errorf("fs: restore read chunk %d: %w", ch, err)
		}
		if err := pc.Write(dest, off, buf); err != nil {
			return fmt.Errorf("fs: restore write chunk %d: %w", ch, err)
		}
	}
	// Run recovery on every log slot.
	dev := &clientDev{pc: pc, vd: dest}
	for slot := 0; slot < lay.LogSlots; slot++ {
		region := &clientRegion{pc: pc, vd: dest, base: lay.LogSlotBase(slot)}
		recs, err := wal.Scan(region, lay.LogSize)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			continue
		}
		if _, err := wal.Replay(recs, dev); err != nil {
			return err
		}
		// Clear the replayed log so a future mount of this slot starts
		// clean.
		if err := pc.Write(dest, lay.LogSlotBase(slot), make([]byte, lay.LogSize)); err != nil {
			return err
		}
	}
	return nil
}

// clientRegion and clientDev adapt a raw Petal client to the WAL
// interfaces (no lease guard: restore targets a fresh private disk).
type clientRegion struct {
	pc   *petal.Client
	vd   petal.VDiskID
	base int64
}

func (r *clientRegion) ReadAt(p []byte, off int64) error { return r.pc.Read(r.vd, r.base+off, p) }
func (r *clientRegion) WriteAt(p []byte, off int64) error {
	return r.pc.Write(r.vd, r.base+off, p)
}

type clientDev struct {
	pc *petal.Client
	vd petal.VDiskID
}

func (d *clientDev) ReadAt(p []byte, off int64) error  { return d.pc.Read(d.vd, off, p) }
func (d *clientDev) WriteAt(p []byte, off int64) error { return d.pc.Write(d.vd, off, p) }
