package fs

import (
	"errors"
	"sort"
	"strings"

	"frangipani/internal/cache"
	"frangipani/internal/lockservice"
)

// maxRetries bounds the §5 retry loop ("it releases the locks and
// loops back to repeat phase one").
const maxRetries = 16

// maxSymlinkDepth bounds symlink chains during resolution.
const maxSymlinkDepth = 8

// Info describes a file for Stat.
type Info struct {
	Inum  int64
	Type  FileType
	Size  int64
	Nlink int
	Mtime int64
	Ctime int64
	Atime int64
}

// lockReq is one lock an operation needs.
type lockReq struct {
	id   uint64
	mode lockservice.Mode
}

// withLocks implements §5's deadlock-avoidance protocol: the caller
// has determined (phase one) which locks it needs; withLocks sorts
// them, acquires each in turn, runs fn (which must re-validate what
// phase one read and may return ErrRetry), commits the transaction,
// and releases everything. Mutating operations additionally hold the
// global backup barrier lock in shared mode (§8).
func (fs *FS) withLocks(reqs []lockReq, mutating bool, fn func(t *txn) error) error {
	if mutating {
		reqs = append(reqs, lockReq{LockBarrier, lockservice.Shared})
	}
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].id < reqs[b].id })
	// Deduplicate, keeping the strongest mode.
	dedup := reqs[:0]
	for _, r := range reqs {
		if len(dedup) > 0 && dedup[len(dedup)-1].id == r.id {
			if r.mode > dedup[len(dedup)-1].mode {
				dedup[len(dedup)-1].mode = r.mode
			}
			continue
		}
		dedup = append(dedup, r)
	}
	var held []uint64
	for _, r := range dedup {
		if err := fs.clerk.Lock(r.id, r.mode); err != nil {
			for i := len(held) - 1; i >= 0; i-- {
				fs.clerk.Unlock(held[i])
			}
			return err
		}
		held = append(held, r.id)
	}
	t := fs.begin()
	err := fn(t)
	if err == nil {
		err = t.commit()
	}
	t.releaseSegs()
	for i := len(held) - 1; i >= 0; i-- {
		fs.clerk.Unlock(held[i])
	}
	return err
}

// retrying runs fn until it stops returning ErrRetry.
func (fs *FS) retrying(fn func() error) error {
	for i := 0; i < maxRetries; i++ {
		err := fn()
		if !errors.Is(err, ErrRetry) {
			return err
		}
		fs.m.retries.Inc()
	}
	return ErrRetry
}

// ---- inode access ----

// loadInode reads and decodes an inode under its (already held)
// lock.
func (fs *FS) loadInode(inum int64) (*cache.Entry, Inode, error) {
	e, err := fs.readMeta(fs.lay.InodeAddr(inum), InodeLock(inum))
	if err != nil {
		return nil, Inode{}, err
	}
	in, err := decodeInode(e.Data)
	return e, in, err
}

// putInode writes the inode back through the transaction, folding in
// any pending approximate atime.
func (t *txn) putInode(e *cache.Entry, in Inode) {
	inum := (e.Addr - t.fs.lay.InodeBase) / InodeSize
	t.fs.mu.Lock()
	if at, ok := t.fs.atimes[inum]; ok {
		if at > in.Atime {
			in.Atime = at
		}
		delete(t.fs.atimes, inum)
	}
	t.fs.mu.Unlock()
	tmp := make([]byte, offSymData+MaxSymlink)
	copy(tmp, e.Data[:len(tmp)])
	encodeInode(in, tmp)
	t.update(e, 0, tmp)
}

// ---- path resolution (phase one) ----

func splitPath(path string) ([]string, error) {
	if path == "" {
		return nil, ErrInval
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(parts) == 0 {
				return nil, ErrInval
			}
			parts = parts[:len(parts)-1]
		default:
			if len(p) > MaxName {
				return nil, ErrNameTooLong
			}
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// lookupOnce finds name in directory inum with a shared lock held
// only for the lookup (phase-one style).
func (fs *FS) lookupOnce(dir int64, name string) (DirEntry, error) {
	defer fs.lat("lookup")()
	var out DirEntry
	err := fs.withLocks([]lockReq{{InodeLock(dir), lockservice.Shared}}, false, func(t *txn) error {
		_, in, err := fs.loadInode(dir)
		if err != nil {
			return err
		}
		if in.Type != TypeDir {
			return ErrNotDir
		}
		e, _, _, err := fs.dirFind(dir, in, name)
		if err != nil {
			return err
		}
		out = e
		return nil
	})
	return out, err
}

// namei resolves a path to an inode number, following symlinks.
func (fs *FS) namei(path string, followLast bool) (int64, error) {
	return fs.nameiDepth(path, followLast, 0)
}

func (fs *FS) nameiDepth(path string, followLast bool, depth int) (int64, error) {
	if depth > maxSymlinkDepth {
		return -1, ErrInval
	}
	parts, err := splitPath(path)
	if err != nil {
		return -1, err
	}
	cur := int64(RootInum)
	for i, name := range parts {
		ent, err := fs.lookupOnce(cur, name)
		if err != nil {
			return -1, err
		}
		last := i == len(parts)-1
		if ent.Type == TypeSymlink && (!last || followLast) {
			target, err := fs.readlinkInum(ent.Inum)
			if err != nil {
				return -1, err
			}
			rest := strings.Join(parts[i+1:], "/")
			var next string
			if strings.HasPrefix(target, "/") {
				next = target + "/" + rest
			} else {
				next = strings.Join(parts[:i], "/") + "/" + target + "/" + rest
			}
			return fs.nameiDepth(next, followLast, depth+1)
		}
		cur = ent.Inum
	}
	return cur, nil
}

// nameiParent resolves all but the last component, returning the
// parent directory inode and the final name.
func (fs *FS) nameiParent(path string) (int64, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return -1, "", err
	}
	if len(parts) == 0 {
		return -1, "", ErrInval
	}
	dirPath := strings.Join(parts[:len(parts)-1], "/")
	dir, err := fs.namei("/"+dirPath, true)
	if err != nil {
		return -1, "", err
	}
	return dir, parts[len(parts)-1], nil
}

func (fs *FS) readlinkInum(inum int64) (string, error) {
	var target string
	err := fs.withLocks([]lockReq{{InodeLock(inum), lockservice.Shared}}, false, func(t *txn) error {
		_, in, err := fs.loadInode(inum)
		if err != nil {
			return err
		}
		if in.Type != TypeSymlink {
			return ErrInval
		}
		target = in.Symlink
		return nil
	})
	return target, err
}

// ---- directory content helpers (run under the dir's lock) ----

// dirSectorAddr maps directory byte offset (sector-aligned) to the
// Petal sector address.
func (fs *FS) dirSectorAddr(in Inode, off int64) (int64, bool) {
	pageAddr, inPage, ok := fs.filePageAddr(in, off)
	if !ok {
		return 0, false
	}
	return pageAddr + (inPage &^ (SectorSize - 1)), true
}

// dirFind scans a directory for name. dirInum's lock must be held;
// the content sectors are cached under it so revocation flushes and
// invalidates them with the directory.
func (fs *FS) dirFind(dirInum int64, in Inode, name string) (DirEntry, int64, int, error) {
	for off := int64(0); off < in.Size; off += SectorSize {
		addr, ok := fs.dirSectorAddr(in, off)
		if !ok {
			return DirEntry{}, 0, 0, ErrBadDir
		}
		e, err := fs.readMeta(addr, InodeLock(dirInum))
		if err != nil {
			return DirEntry{}, 0, 0, err
		}
		if ent, pos, found := dirSectorFind(e.Data, name); found {
			return ent, addr, pos, nil
		}
	}
	return DirEntry{}, 0, 0, ErrNotExist
}

// dirEntries lists a directory's entries (dir lock held). The content
// sector addresses are collected up front and any misses fetched with
// one scatter-gather read, so a cold scan costs one Petal round trip
// instead of one per sector.
func (fs *FS) dirEntries(dirInum int64, in Inode) ([]DirEntry, error) {
	lockID := InodeLock(dirInum)
	var fills []metaFill
	for off := int64(0); off < in.Size; off += SectorSize {
		addr, ok := fs.dirSectorAddr(in, off)
		if !ok {
			return nil, ErrBadDir
		}
		fills = append(fills, metaFill{addr: addr, owner: lockID})
	}
	if err := fs.readMetaBatch(fills); err != nil {
		return nil, err
	}
	var out []DirEntry
	for _, f := range fills {
		e, err := fs.readMeta(f.addr, lockID)
		if err != nil {
			return nil, err
		}
		es, err := dirSectorEntries(e.Data)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	return out, nil
}

// dirAdd inserts an entry, extending the directory by a sector (and
// allocating metadata blocks) as needed. dirInum's lock is held
// exclusive; inodeE is the dir's inode cache entry.
func (fs *FS) dirAdd(t *txn, dirInum int64, inodeE *cache.Entry, in *Inode, ent DirEntry) error {
	need := entryLen(ent.Name)
	lockID := InodeLock(dirInum)
	// Try existing sectors.
	for off := int64(0); off < in.Size; off += SectorSize {
		addr, ok := fs.dirSectorAddr(*in, off)
		if !ok {
			return ErrBadDir
		}
		e, err := fs.readMeta(addr, lockID)
		if err != nil {
			return err
		}
		if dirSectorSpace(e.Data) >= need {
			tmp := append([]byte(nil), e.Data[:dirDataEnd]...)
			dirSectorAppend(tmp, ent)
			t.update(e, 0, tmp)
			return nil
		}
	}
	// Extend by one sector, allocating a block when crossing a 4 KB
	// boundary.
	off := in.Size
	if _, _, ok := fs.filePageAddr(*in, off); !ok {
		if err := fs.ensureBlock(t, in, off, true); err != nil {
			return err
		}
	}
	addr, ok := fs.dirSectorAddr(*in, off)
	if !ok {
		return ErrBadDir
	}
	e, err := fs.readMeta(addr, lockID)
	if err != nil {
		return err
	}
	// Initialize the fresh sector (it may hold stale metadata from a
	// previous life) and append.
	tmp := make([]byte, dirDataEnd)
	dirSectorAppend(tmp, ent)
	t.update(e, 0, tmp)
	in.Size = off + SectorSize
	in.Mtime = int64(fs.w.Clock.Now())
	t.putInode(inodeE, *in)
	return nil
}

// dirRemove deletes name from the directory (lock held exclusive).
func (fs *FS) dirRemove(t *txn, dirInum int64, in Inode, name string) error {
	addr := int64(0)
	pos := 0
	found := false
	lockID := InodeLock(dirInum)
	for off := int64(0); off < in.Size; off += SectorSize {
		a, ok := fs.dirSectorAddr(in, off)
		if !ok {
			return ErrBadDir
		}
		e, err := fs.readMeta(a, lockID)
		if err != nil {
			return err
		}
		if _, p, f := dirSectorFind(e.Data, name); f {
			addr, pos, found = a, p, true
			break
		}
	}
	if !found {
		return ErrNotExist
	}
	e, err := fs.readMeta(addr, lockID)
	if err != nil {
		return err
	}
	tmp := append([]byte(nil), e.Data[:dirDataEnd]...)
	dirSectorRemove(tmp, pos)
	t.update(e, 0, tmp)
	return nil
}

// dirEmpty reports whether a directory has no entries.
func (fs *FS) dirEmpty(dirInum int64, in Inode) (bool, error) {
	es, err := fs.dirEntries(dirInum, in)
	return len(es) == 0, err
}

// ---- operations ----

// Stat returns metadata for the object at path.
func (fs *FS) Stat(path string) (Info, error) {
	if err := fs.usable(); err != nil {
		return Info{}, err
	}
	fs.chargeOp(0)
	var info Info
	do := func() error {
		inum, err := fs.namei(path, true)
		if err != nil {
			return err
		}
		return fs.withLocks([]lockReq{{InodeLock(inum), lockservice.Shared}}, false, func(t *txn) error {
			_, in, err := fs.loadInode(inum)
			if err != nil {
				return err
			}
			if in.Type == TypeFree {
				return ErrRetry // removed between phases
			}
			info = Info{
				Inum: inum, Type: in.Type, Size: in.Size,
				Nlink: int(in.Nlink), Mtime: in.Mtime, Ctime: in.Ctime, Atime: in.Atime,
			}
			return nil
		})
	}
	err := fs.traced("stat", func() error { return fs.retrying(do) })
	return info, err
}

// ReadDir lists the entries of the directory at path.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	if err := fs.usable(); err != nil {
		return nil, err
	}
	fs.chargeOp(0)
	var out []DirEntry
	do := func() error {
		inum, err := fs.namei(path, true)
		if err != nil {
			return err
		}
		return fs.withLocks([]lockReq{{InodeLock(inum), lockservice.Shared}}, false, func(t *txn) error {
			_, in, err := fs.loadInode(inum)
			if err != nil {
				return err
			}
			if in.Type != TypeDir {
				return ErrNotDir
			}
			out, err = fs.dirEntries(inum, in)
			return err
		})
	}
	err := fs.traced("readdir", func() error { return fs.retrying(do) })
	return out, err
}

// ReadDirPlus lists the directory at path and stats every entry in
// one pass. A ReadDir followed by a Stat per entry costs one lock
// round and — on a cold cache — one Petal read per inode sector;
// ReadDirPlus acquires the directory and all entry locks in a single
// sorted pass (§5's deadlock-avoidance protocol) and fetches every
// missing inode sector with one scatter-gather ReadV. Infos align
// index-for-index with the returned entries.
func (fs *FS) ReadDirPlus(path string) ([]DirEntry, []Info, error) {
	if err := fs.usable(); err != nil {
		return nil, nil, err
	}
	fs.chargeOp(0)
	var ents []DirEntry
	var infos []Info
	do := func() error {
		inum, err := fs.namei(path, true)
		if err != nil {
			return err
		}
		// Phase one: list under the directory lock alone to learn which
		// inode locks the stat pass needs.
		var listed []DirEntry
		err = fs.withLocks([]lockReq{{InodeLock(inum), lockservice.Shared}}, false, func(t *txn) error {
			_, in, err := fs.loadInode(inum)
			if err != nil {
				return err
			}
			if in.Type != TypeDir {
				return ErrNotDir
			}
			listed, err = fs.dirEntries(inum, in)
			return err
		})
		if err != nil {
			return err
		}
		// Phase two: the directory plus every entry lock, then
		// re-validate the listing (it may have changed between phases)
		// and batch-fetch the inodes.
		reqs := make([]lockReq, 0, len(listed)+1)
		reqs = append(reqs, lockReq{InodeLock(inum), lockservice.Shared})
		for _, ent := range listed {
			reqs = append(reqs, lockReq{InodeLock(ent.Inum), lockservice.Shared})
		}
		return fs.withLocks(reqs, false, func(t *txn) error {
			_, in, err := fs.loadInode(inum)
			if err != nil {
				return err
			}
			if in.Type != TypeDir {
				return ErrNotDir
			}
			ents, err = fs.dirEntries(inum, in)
			if err != nil {
				return err
			}
			if !sameEntries(ents, listed) {
				return ErrRetry // directory changed; lock set is stale
			}
			fills := make([]metaFill, len(ents))
			for i, ent := range ents {
				fills[i] = metaFill{addr: fs.lay.InodeAddr(ent.Inum), owner: InodeLock(ent.Inum)}
			}
			if err := fs.readMetaBatch(fills); err != nil {
				return err
			}
			infos = infos[:0]
			for _, ent := range ents {
				_, ein, err := fs.loadInode(ent.Inum)
				if err != nil {
					return err
				}
				if ein.Type == TypeFree {
					return ErrRetry // entry freed under a raced rename/remove
				}
				infos = append(infos, Info{
					Inum: ent.Inum, Type: ein.Type, Size: ein.Size,
					Nlink: int(ein.Nlink), Mtime: ein.Mtime, Ctime: ein.Ctime, Atime: ein.Atime,
				})
			}
			return nil
		})
	}
	err := fs.traced("readdirplus", func() error { return fs.retrying(do) })
	if err != nil {
		return nil, nil, err
	}
	return ents, infos, nil
}

// sameEntries reports whether two listings name the same entries in
// the same order.
func sameEntries(a, b []DirEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Inum != b[i].Inum || a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

// create is the shared implementation of Create, Mkdir, and Symlink.
func (fs *FS) create(path string, ftype FileType, symTarget string) (int64, error) {
	if err := fs.usable(); err != nil {
		return -1, err
	}
	fs.chargeOp(0)
	var newInum int64 = -1
	do := func() error {
		dir, name, err := fs.nameiParent(path)
		if err != nil {
			return err
		}
		return fs.withLocks([]lockReq{{InodeLock(dir), lockservice.Exclusive}}, true, func(t *txn) error {
			dirE, din, err := fs.loadInode(dir)
			if err != nil {
				return err
			}
			if din.Type == TypeFree {
				return ErrRetry // parent removed since phase one
			}
			if din.Type != TypeDir {
				return ErrNotDir
			}
			if _, _, _, err := fs.dirFind(dir, din, name); err == nil {
				return ErrExist
			} else if !errors.Is(err, ErrNotExist) {
				return err
			}
			inum, err := fs.allocObj(t, classInode)
			if err != nil {
				return err
			}
			// The new inode's lock cannot be contended (the inode was
			// free, protected by our segment lock), so acquiring it
			// out of order is safe. It is held until after commit.
			if err := t.lockExtra(InodeLock(inum)); err != nil {
				return err
			}
			now := int64(fs.w.Clock.Now())
			nin := Inode{
				Type: ftype, Nlink: 1,
				Mtime: now, Ctime: now, Atime: now,
				Symlink: symTarget,
			}
			if ftype == TypeDir {
				nin.Nlink = 2
			}
			ie, err := fs.readMeta(fs.lay.InodeAddr(inum), InodeLock(inum))
			if err != nil {
				return err
			}
			t.putInode(ie, nin)
			if err := fs.dirAdd(t, dir, dirE, &din, DirEntry{Name: name, Inum: inum, Type: ftype}); err != nil {
				return err
			}
			if ftype == TypeDir {
				din.Nlink++
				din.Mtime = now
				t.putInode(dirE, din)
			}
			newInum = inum
			return nil
		})
	}
	err := fs.traced("create", func() error { return fs.retrying(do) })
	return newInum, err
}

// Create makes an empty regular file.
func (fs *FS) Create(path string) error {
	_, err := fs.create(path, TypeFile, "")
	return err
}

// Mkdir makes an empty directory.
func (fs *FS) Mkdir(path string) error {
	_, err := fs.create(path, TypeDir, "")
	return err
}

// Symlink creates a symbolic link at path pointing to target. The
// target is stored inline in the inode (§3).
func (fs *FS) Symlink(target, path string) error {
	if len(target) > MaxSymlink {
		return ErrNameTooLong
	}
	_, err := fs.create(path, TypeSymlink, target)
	return err
}

// Readlink returns a symlink's target.
func (fs *FS) Readlink(path string) (string, error) {
	if err := fs.usable(); err != nil {
		return "", err
	}
	fs.chargeOp(0)
	inum, err := fs.namei(path, false)
	if err != nil {
		return "", err
	}
	return fs.readlinkInum(inum)
}

// Remove unlinks a file or symlink; Rmdir removes an empty
// directory.
func (fs *FS) Remove(path string) error { return fs.remove(path, false) }

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error { return fs.remove(path, true) }

func (fs *FS) remove(path string, wantDir bool) error {
	if err := fs.usable(); err != nil {
		return err
	}
	fs.chargeOp(0)
	do := func() error {
		dir, name, err := fs.nameiParent(path)
		if err != nil {
			return err
		}
		ent, err := fs.lookupOnce(dir, name)
		if err != nil {
			return err
		}
		locks := []lockReq{
			{InodeLock(dir), lockservice.Exclusive},
			{InodeLock(ent.Inum), lockservice.Exclusive},
		}
		return fs.withLocks(locks, true, func(t *txn) error {
			dirE, din, err := fs.loadInode(dir)
			if err != nil {
				return err
			}
			if din.Type == TypeFree {
				return ErrRetry
			}
			if din.Type != TypeDir {
				return ErrNotDir
			}
			cur, _, _, err := fs.dirFind(dir, din, name)
			if err != nil {
				if errors.Is(err, ErrNotExist) {
					return ErrRetry // changed since phase one
				}
				return err
			}
			if cur.Inum != ent.Inum {
				return ErrRetry
			}
			tgtE, tin, err := fs.loadInode(ent.Inum)
			if err != nil {
				return err
			}
			if wantDir {
				if tin.Type != TypeDir {
					return ErrNotDir
				}
				empty, err := fs.dirEmpty(ent.Inum, tin)
				if err != nil {
					return err
				}
				if !empty {
					return ErrNotEmpty
				}
			} else if tin.Type == TypeDir {
				return ErrIsDir
			}
			if err := fs.dirRemove(t, dir, din, name); err != nil {
				return err
			}
			now := int64(fs.w.Clock.Now())
			din.Mtime = now
			links := int(tin.Nlink) - 1
			if tin.Type == TypeDir {
				links-- // the removed dir's self-count
				din.Nlink--
			}
			t.putInode(dirE, din)
			if links > 0 {
				tin.Nlink = uint16(links)
				tin.Ctime = now
				t.putInode(tgtE, tin)
				return nil
			}
			return fs.destroyInode(t, ent.Inum, tgtE, tin)
		})
	}
	return fs.traced("remove", func() error { return fs.retrying(do) })
}

// destroyInode frees an inode and all its blocks (lock held
// exclusive), and decommits the Petal space backing the large block.
func (fs *FS) destroyInode(t *txn, inum int64, e *cache.Entry, in Inode) error {
	items := []freeSpec{{classInode, inum}}
	blockClass := classDataSmall
	if in.Type == TypeDir {
		blockClass = classMetaSmall
	}
	for _, s := range in.Small {
		if s != 0 {
			items = append(items, freeSpec{blockClass, s - 1})
		}
	}
	var largeIdx int64 = -1
	if in.Large != 0 {
		largeIdx = in.Large - 1
		items = append(items, freeSpec{classLarge, largeIdx})
	}
	if err := fs.freeObjs(t, items); err != nil {
		return err
	}
	t.putInode(e, Inode{Type: TypeFree})
	// Drop cached data pages; their contents are dead.
	fs.data.InvalidateByOwner(InodeLock(inum))
	if largeIdx >= 0 {
		// Release the physical space behind the large block (§3's
		// decommit primitive).
		_ = fs.pc.Decommit(fs.vd, fs.lay.LargeAddr(largeIdx), fs.lay.LargeBlockSize)
	}
	return nil
}

// Rename moves src to dst, replacing a compatible existing dst.
func (fs *FS) Rename(src, dst string) error {
	if err := fs.usable(); err != nil {
		return err
	}
	fs.chargeOp(0)
	// Reject moving a directory into its own subtree (we keep no
	// parent pointers, so the check is lexical).
	if strings.HasPrefix(strings.Trim(dst, "/")+"/", strings.Trim(src, "/")+"/") {
		return ErrInval
	}
	do := func() error {
		sdir, sname, err := fs.nameiParent(src)
		if err != nil {
			return err
		}
		sent, err := fs.lookupOnce(sdir, sname)
		if err != nil {
			return err
		}
		ddir, dname, err := fs.nameiParent(dst)
		if err != nil {
			return err
		}
		dent, derr := fs.lookupOnce(ddir, dname)
		locks := []lockReq{
			{InodeLock(sdir), lockservice.Exclusive},
			{InodeLock(ddir), lockservice.Exclusive},
			{InodeLock(sent.Inum), lockservice.Exclusive},
		}
		if derr == nil {
			locks = append(locks, lockReq{InodeLock(dent.Inum), lockservice.Exclusive})
		}
		return fs.withLocks(locks, true, func(t *txn) error {
			sdE, sdin, err := fs.loadInode(sdir)
			if err != nil {
				return err
			}
			// When source and destination directories coincide, all
			// mutations must go through ONE inode value.
			dd, ddE := &sdin, sdE
			var ddinStore Inode
			if sdir != ddir {
				var e2 *cache.Entry
				e2, ddinStore, err = fs.loadInode(ddir)
				if err != nil {
					return err
				}
				dd, ddE = &ddinStore, e2
			}
			if sdin.Type == TypeFree || dd.Type == TypeFree {
				return ErrRetry
			}
			if sdin.Type != TypeDir || dd.Type != TypeDir {
				return ErrNotDir
			}
			curS, _, _, err := fs.dirFind(sdir, sdin, sname)
			if err != nil || curS.Inum != sent.Inum {
				return ErrRetry
			}
			curD, _, _, derrNow := fs.dirFind(ddir, *dd, dname)
			if (derr == nil) != (derrNow == nil) {
				return ErrRetry
			}
			if derrNow == nil && curD.Inum != dent.Inum {
				return ErrRetry
			}
			_, sin, err := fs.loadInode(sent.Inum)
			if err != nil {
				return err
			}
			now := int64(fs.w.Clock.Now())
			// Replace an existing destination.
			if derrNow == nil {
				dtE, dtin, err := fs.loadInode(dent.Inum)
				if err != nil {
					return err
				}
				if dtin.Type == TypeDir {
					if sin.Type != TypeDir {
						return ErrIsDir
					}
					empty, err := fs.dirEmpty(dent.Inum, dtin)
					if err != nil {
						return err
					}
					if !empty {
						return ErrNotEmpty
					}
				} else if sin.Type == TypeDir {
					return ErrNotDir
				}
				if err := fs.dirRemove(t, ddir, *dd, dname); err != nil {
					return err
				}
				if dtin.Type == TypeDir {
					dd.Nlink--
				}
				if err := fs.destroyInode(t, dent.Inum, dtE, dtin); err != nil {
					return err
				}
			}
			if err := fs.dirRemove(t, sdir, sdin, sname); err != nil {
				return err
			}
			if err := fs.dirAdd(t, ddir, ddE, dd, DirEntry{Name: dname, Inum: sent.Inum, Type: sin.Type}); err != nil {
				return err
			}
			if sin.Type == TypeDir && sdir != ddir {
				sdin.Nlink--
				dd.Nlink++
			}
			sdin.Mtime = now
			dd.Mtime = now
			t.putInode(sdE, sdin)
			if sdir != ddir {
				t.putInode(ddE, *dd)
			}
			return nil
		})
	}
	return fs.traced("rename", func() error { return fs.retrying(do) })
}

// Link creates a hard link to an existing file (not directories).
func (fs *FS) Link(existing, newpath string) error {
	if err := fs.usable(); err != nil {
		return err
	}
	fs.chargeOp(0)
	do := func() error {
		inum, err := fs.namei(existing, true)
		if err != nil {
			return err
		}
		dir, name, err := fs.nameiParent(newpath)
		if err != nil {
			return err
		}
		locks := []lockReq{
			{InodeLock(dir), lockservice.Exclusive},
			{InodeLock(inum), lockservice.Exclusive},
		}
		return fs.withLocks(locks, true, func(t *txn) error {
			dirE, din, err := fs.loadInode(dir)
			if err != nil {
				return err
			}
			if din.Type == TypeFree {
				return ErrRetry
			}
			if din.Type != TypeDir {
				return ErrNotDir
			}
			tE, tin, err := fs.loadInode(inum)
			if err != nil {
				return err
			}
			if tin.Type == TypeDir {
				return ErrIsDir
			}
			if tin.Type == TypeFree {
				return ErrRetry
			}
			if _, _, _, err := fs.dirFind(dir, din, name); err == nil {
				return ErrExist
			} else if !errors.Is(err, ErrNotExist) {
				return err
			}
			if err := fs.dirAdd(t, dir, dirE, &din, DirEntry{Name: name, Inum: inum, Type: tin.Type}); err != nil {
				return err
			}
			tin.Nlink++
			tin.Ctime = int64(fs.w.Clock.Now())
			t.putInode(tE, tin)
			return nil
		})
	}
	return fs.traced("link", func() error { return fs.retrying(do) })
}
