package fs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
)

// TestRandomOpsAgainstModel drives one server with a random operation
// sequence and checks every observable result against a trivial
// in-memory model, then runs the offline checker. This catches whole
// classes of bookkeeping bugs (sizes, directory membership, content)
// that targeted tests miss.
func TestRandomOpsAgainstModel(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	rng := rand.New(rand.NewSource(12345))

	type mfile struct {
		data []byte
	}
	files := map[string]*mfile{} // path -> content (files only)
	dirs := map[string]bool{"": true}

	dirList := func() []string {
		out := make([]string, 0, len(dirs))
		for d := range dirs {
			out = append(out, d)
		}
		sort.Strings(out)
		return out
	}
	fileList := func() []string {
		out := make([]string, 0, len(files))
		for p := range files {
			out = append(out, p)
		}
		sort.Strings(out)
		return out
	}
	pick := func(list []string) string { return list[rng.Intn(len(list))] }

	const ops = 250
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 3: // create a file
			d := pick(dirList())
			p := fmt.Sprintf("%s/f%03d", d, i)
			err := f.Create(p)
			if files[p] == nil && err != nil {
				t.Fatalf("op %d create %s: %v", i, p, err)
			}
			if files[p] == nil {
				files[p] = &mfile{}
			}
		case op < 4: // mkdir
			d := pick(dirList())
			p := fmt.Sprintf("%s/d%03d", d, i)
			if err := f.Mkdir(p); err != nil {
				t.Fatalf("op %d mkdir %s: %v", i, p, err)
			}
			dirs[p] = true
		case op < 6: // write a random span
			if len(files) == 0 {
				continue
			}
			p := pick(fileList())
			h, err := f.Open(p)
			if err != nil {
				t.Fatalf("op %d open %s: %v", i, p, err)
			}
			off := rng.Int63n(96 << 10)
			n := rng.Intn(16<<10) + 1
			data := make([]byte, n)
			rng.Read(data)
			if _, err := h.WriteAt(data, off); err != nil {
				t.Fatalf("op %d write %s: %v", i, p, err)
			}
			m := files[p]
			if int64(len(m.data)) < off+int64(n) {
				grown := make([]byte, off+int64(n))
				copy(grown, m.data)
				m.data = grown
			}
			copy(m.data[off:], data)
		case op < 7: // truncate
			if len(files) == 0 {
				continue
			}
			p := pick(fileList())
			h, err := f.Open(p)
			if err != nil {
				t.Fatalf("op %d open %s: %v", i, p, err)
			}
			m := files[p]
			size := int64(0)
			if len(m.data) > 0 {
				size = rng.Int63n(int64(len(m.data)) + 1)
			}
			if err := h.Truncate(size); err != nil {
				t.Fatalf("op %d truncate %s: %v", i, p, err)
			}
			m.data = append([]byte(nil), m.data[:size]...)
		case op < 8: // remove a file
			if len(files) == 0 {
				continue
			}
			p := pick(fileList())
			if err := f.Remove(p); err != nil {
				t.Fatalf("op %d remove %s: %v", i, p, err)
			}
			delete(files, p)
		case op < 9: // rename a file into a random dir
			if len(files) == 0 {
				continue
			}
			src := pick(fileList())
			dst := fmt.Sprintf("%s/r%03d", pick(dirList()), i)
			if err := f.Rename(src, dst); err != nil {
				t.Fatalf("op %d rename %s %s: %v", i, src, dst, err)
			}
			files[dst] = files[src]
			delete(files, src)
		default: // verify a random file fully
			if len(files) == 0 {
				continue
			}
			p := pick(fileList())
			m := files[p]
			h, err := f.Open(p)
			if err != nil {
				t.Fatalf("op %d open %s: %v", i, p, err)
			}
			size, err := h.Size()
			if err != nil || size != int64(len(m.data)) {
				t.Fatalf("op %d size %s = %d want %d (err %v)", i, p, size, len(m.data), err)
			}
			got := make([]byte, size)
			if size > 0 {
				if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("op %d read %s: %v", i, p, err)
				}
			}
			if !bytes.Equal(got, m.data) {
				t.Fatalf("op %d content mismatch on %s", i, p)
			}
		}
	}

	// Final verification of everything.
	for p, m := range files {
		h, err := f.Open(p)
		if err != nil {
			t.Fatalf("final open %s: %v", p, err)
		}
		got := make([]byte, len(m.data))
		if len(got) > 0 {
			if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatalf("final read %s: %v", p, err)
			}
		}
		if !bytes.Equal(got, m.data) {
			t.Fatalf("final content mismatch on %s", p)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(tw.client("model-check"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s %s", p.Kind, p.Msg)
	}
	if rep.Files != len(files) || rep.Dirs != len(dirs) {
		t.Fatalf("fsck sees %d files/%d dirs, model has %d/%d",
			rep.Files, rep.Dirs, len(files), len(dirs))
	}
}
