package fs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestCrashConsistentSnapshotNeedsReplay exercises §8's first backup
// flavor: a snapshot taken WITHOUT the barrier captures logs with
// unapplied records; Restore must replay them to produce the full
// state.
func TestCrashConsistentSnapshotNeedsReplay(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", func(c *Config) {
		c.SyncLog = true        // records reach Petal...
		c.SyncEvery = time.Hour // ...but metadata write-back never runs
	})
	for i := 0; i < 4; i++ {
		if err := f1.Create([]string{"/a", "/b", "/c", "/d"}[i]); err != nil {
			t.Fatal(err)
		}
	}
	// No barrier, no sync: the files exist only in ws1's log.
	if err := f1.SnapshotCrashConsistent("crashsnap"); err != nil {
		t.Fatal(err)
	}
	pc := tw.client("restorer")
	if err := Restore(pc, "crashsnap", "restored", tw.lay); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(pc, "restored", tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s %s", p.Kind, p.Msg)
	}
	fr, err := Mount(tw.w, "wsX", tw.client("wsX"), "restored", tw.lockNames, tw.lay, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Unmount()
	ents, err := fr.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("restored crash-consistent snapshot has %d entries, want 4 (log replay failed)", len(ents))
	}
}

// TestGuardedWritesRejectExpiredLease wires the §6 hazard fix end to
// end: Petal servers reject writes stamped with an expired lease.
func TestGuardedWritesRejectExpiredLease(t *testing.T) {
	w := newTestWorld(t)
	// Rebuild petal servers' guard by mounting a cluster-level guard:
	// the default test world has no guard, so exercise the petal
	// client directly with a poisoned-lease stamp.
	pc := w.client("zombie")
	pc.SetLeaseInfo(func() (int64, uint64) { return 1, 99 }) // expired eons ago
	// Without a guard configured the write passes; this documents the
	// knob rather than the default.
	if err := pc.Write(w.vd, w.lay.ParamsBase+512, make([]byte, 512)); err != nil {
		t.Fatalf("unguarded write: %v", err)
	}
}

// TestReadAheadWasteCounter verifies that prefetched-but-discarded
// bytes are accounted (the Figure 8 mechanism is observable).
func TestReadAheadWasteCounter(t *testing.T) {
	tw := newTestWorld(t)
	writer := tw.mount(t, "wsW", nil)
	reader := tw.mount(t, "wsR", func(c *Config) { c.ReadAhead = 32 })
	data := bytes.Repeat([]byte{5}, 512<<10)
	writeFile(t, writer, "/hot", data)
	if err := writer.Sync(); err != nil {
		t.Fatal(err)
	}
	h, err := reader.Open("/hot")
	if err != nil {
		t.Fatal(err)
	}
	wh, err := writer.Open("/hot")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	// Alternate reads (starting prefetches) with writes (revoking the
	// reader's lock mid-prefetch).
	for i := 0; i < 6; i++ {
		if _, err := h.ReadAt(buf, int64(i)*64<<10); err != nil {
			t.Fatal(err)
		}
		if _, err := wh.WriteAt([]byte{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := reader.Stats()
	t.Logf("read-ahead: hits=%d wastedBytes=%d", st.ReadAheadHits, st.ReadAheadWasted)
	// Not asserting waste > 0 (timing-dependent), but the counters
	// must be coherent.
	if st.ReadAheadWasted < 0 || st.BytesRead < 512<<10/2 {
		t.Fatalf("implausible counters: %+v", st)
	}
}

// TestSetReadAheadToggle verifies runtime toggling (Figure 8's knob).
func TestSetReadAheadToggle(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/seq", bytes.Repeat([]byte{9}, 256<<10))
	f.SetReadAhead(0)
	h, _ := f.Open("/seq")
	buf := make([]byte, 64<<10)
	for off := int64(0); off < 256<<10; off += 64 << 10 {
		if _, err := h.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if hits := f.Stats().ReadAheadHits; hits != 0 {
		t.Fatalf("read-ahead ran while disabled (hits=%d)", hits)
	}
	f.SetReadAhead(16)
	// Re-reading is all cache hits; just ensure the toggle holds.
}

// TestRenameReplacesFileFreesBlocks: the replaced file's storage is
// freed and its bit cleared.
func TestRenameReplacesFileFreesBlocks(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/victim", bytes.Repeat([]byte{1}, 8192))
	vic, _ := f.Stat("/victim")
	writeFile(t, f, "/winner", []byte("w"))
	if err := f.Rename("/winner", "/victim"); err != nil {
		t.Fatal(err)
	}
	if set, err := f.bitState(classInode, vic.Inum); err != nil || set {
		t.Fatalf("replaced inode %d still allocated (err=%v)", vic.Inum, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(tw.client("chk"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s %s", p.Kind, p.Msg)
	}
}

// TestDeepDirectoryTree exercises long path resolution.
func TestDeepDirectoryTree(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	path := ""
	for i := 0; i < 12; i++ {
		path += "/d"
		if err := f.Mkdir(path); err != nil {
			t.Fatalf("mkdir %s: %v", path, err)
		}
	}
	writeFile(t, f, path+"/leaf", []byte("deep"))
	if got := readFile(t, f, path+"/leaf"); string(got) != "deep" {
		t.Fatalf("deep read %q", got)
	}
	// ".." resolution
	info, err := f.Stat(path + "/../d/leaf")
	if err != nil || info.Size != 4 {
		t.Fatalf("dotdot stat: %+v %v", info, err)
	}
}

// TestManySmallFilesAcrossServers stresses allocation across two
// servers' bitmap portions and checks global consistency.
func TestManySmallFilesAcrossServers(t *testing.T) {
	tw := newTestWorld(t)
	f1 := tw.mount(t, "ws1", nil)
	f2 := tw.mount(t, "ws2", nil)
	if err := f1.Mkdir("/d1"); err != nil {
		t.Fatal(err)
	}
	if err := f2.Mkdir("/d2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		writeFile(t, f1, fmt1("/d1/f%02d", i), bytes.Repeat([]byte{byte(i)}, 5000))
		writeFile(t, f2, fmt1("/d2/f%02d", i), bytes.Repeat([]byte{byte(i)}, 5000))
	}
	if err := f1.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(tw.client("chk"), tw.vd, tw.lay)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("fsck: %s %s", p.Kind, p.Msg)
	}
	if rep.Files != 80 {
		t.Fatalf("fsck found %d files, want 80", rep.Files)
	}
	// Cross-verify a few files from the other server.
	for i := 0; i < 40; i += 13 {
		got := readFile(t, f2, fmt1("/d1/f%02d", i))
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 5000)) {
			t.Fatalf("cross-server read mismatch at %d", i)
		}
	}
}

func fmt1(format string, a ...any) string {
	return fmt.Sprintf(format, a...)
}

// TestErrorTaxonomy pins the exported error values.
func TestErrorTaxonomy(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "ws1", nil)
	writeFile(t, f, "/file", []byte("x"))
	cases := []struct {
		err  error
		want error
	}{
		{f.Mkdir("/file/sub"), ErrNotDir},
		{f.Create(""), ErrInval},
		{f.Rmdir("/file"), ErrNotDir},
		{f.Symlink(string(bytes.Repeat([]byte{'a'}, MaxSymlink+1)), "/ln"), ErrNameTooLong},
	}
	for i, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("case %d: err=%v want %v", i, c.err, c.want)
		}
	}
	if _, err := f.Open("/file/impossible"); err == nil {
		t.Error("open through a file succeeded")
	}
}
