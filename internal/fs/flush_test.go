package fs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSyncConcurrentWithWrites drives the update demon path by hand
// while foreground writers keep dirtying pages, exercising the
// pipelined write-back (snapshot generations, scatter-gather
// dispatch, MarkCleanIfBatch) under the race detector. Every byte
// written must be readable afterwards, from this server and — after
// an unmount — from a fresh one.
func TestSyncConcurrentWithWrites(t *testing.T) {
	tw := newTestWorld(t)
	f := tw.mount(t, "m0", func(c *Config) {
		c.FlushParallelism = 8
		c.SyncEvery = time.Hour // we drive Sync ourselves
	})

	// One foreground writer (the FS serializes ops per server through
	// its lock clerk; cross-goroutine op concurrency is a non-goal) —
	// the interesting concurrency is writer vs. the sync demon.
	const (
		writers  = 1
		files    = 10
		fileSize = 48 << 10
	)
	var syncWG, writeWG sync.WaitGroup
	stop := make(chan struct{})
	syncWG.Add(1)
	go func() {
		defer syncWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.Sync(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	content := func(w, i int) []byte {
		return bytes.Repeat([]byte{byte(0x11*w + i + 1)}, fileSize)
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("/w%d-%d", w, i)
				h, err := f.OpenFile(path, true)
				if err != nil {
					t.Errorf("open %s: %v", path, err)
					return
				}
				data := content(w, i)
				// Write in page-sized strides so the sync demon keeps
				// catching the file half-dirty.
				for off := 0; off < len(data); off += BlockSize {
					end := off + BlockSize
					if end > len(data) {
						end = len(data)
					}
					if _, err := h.WriteAt(data[off:end], int64(off)); err != nil {
						t.Errorf("write %s: %v", path, err)
						return
					}
				}
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	syncWG.Wait()

	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < files; i++ {
			path := fmt.Sprintf("/w%d-%d", w, i)
			if got := readFile(t, f, path); !bytes.Equal(got, content(w, i)) {
				t.Fatalf("%s corrupted after concurrent sync", path)
			}
		}
	}
	st := f.Stats()
	if st.FlushRuns == 0 || st.FlushPages == 0 {
		t.Fatalf("pipeline counters empty: %+v", st)
	}
	t.Logf("batches=%d runs=%d pages=%d peak=%d",
		st.FlushBatches, st.FlushRuns, st.FlushPages, st.FlushPeakInFlight)

	// A fresh server must see the same bytes (write-back actually
	// reached Petal, not just the cache).
	if err := f.Unmount(); err != nil {
		t.Fatal(err)
	}
	f2 := tw.mount(t, "m1", nil)
	for w := 0; w < writers; w++ {
		for i := 0; i < files; i++ {
			path := fmt.Sprintf("/w%d-%d", w, i)
			if got := readFile(t, f2, path); !bytes.Equal(got, content(w, i)) {
				t.Fatalf("%s wrong on fresh mount", path)
			}
		}
	}
}

// TestFlushParallelismEquivalence writes the same tree through the
// serial (FlushParallelism=1) and pipelined paths and checks both
// come back bit-identical on a fresh mount.
func TestFlushParallelismEquivalence(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			tw := newTestWorld(t)
			f := tw.mount(t, "m0", func(c *Config) { c.FlushParallelism = par })
			var want [][]byte
			for i := 0; i < 6; i++ {
				data := bytes.Repeat([]byte{byte(i + 1)}, (i+1)*17*1024)
				writeFile(t, f, fmt.Sprintf("/f%d", i), data)
				want = append(want, data)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if par > 1 && f.Stats().FlushBatches == 0 {
				t.Fatal("pipelined path never dispatched a batch")
			}
			if err := f.Unmount(); err != nil {
				t.Fatal(err)
			}
			f2 := tw.mount(t, "m1", nil)
			for i, data := range want {
				if got := readFile(t, f2, fmt.Sprintf("/f%d", i)); !bytes.Equal(got, data) {
					t.Fatalf("file %d differs (par=%d)", i, par)
				}
			}
		})
	}
}
