// Package paxos implements Lamport's Paxos algorithm as a
// multi-instance replicated log driving a state machine. The paper
// uses Paxos (via an implementation "originally written for Petal") to
// consistently replicate the small, rarely-changing global state of
// both Petal and the lock service: server membership, lock-group
// assignment, and the set of open lock tables. This package plays the
// same role here.
//
// Each log instance decides one command by classic single-decree
// Paxos (prepare/promise, accept/accepted, decide). Decided commands
// are applied to the caller's state machine strictly in instance
// order on every node. Submit retries until the caller's own command
// has been applied, so callers get linearizable command submission.
//
// The acceptor group is fixed at cluster creation; members may crash
// and recover (with their acceptor state intact, as if persisted) but
// the group itself does not grow. Higher layers reassign work across
// a changing set of *their* servers by deciding commands through this
// fixed group, which is how the paper's lock service reassigns lock
// groups.
package paxos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// Command is an application command carried in the replicated log.
// Commands must be plain values (no shared pointers) because they are
// delivered to every node.
type Command any

// Applier is called with each decided command, in strict instance
// order, exactly once per node. It runs on the node's apply goroutine
// and must not call back into the Node.
type Applier func(seq int64, cmd Command)

// ErrNotDecided is returned by Submit when the command could not be
// driven to a decision before the deadline (e.g. no quorum reachable).
var ErrNotDecided = errors.New("paxos: command not decided (no quorum?)")

// entry wraps a command with a cluster-unique id so Submit can detect
// that its own command (not a competitor's) was applied.
type entry struct {
	ID   string
	Cmd  Command
	Noop bool
}

// Message types. Exported fields only; these cross the transport.
type (
	// PrepareReq is phase-1a.
	PrepareReq struct {
		Seq    int64
		Ballot int64
	}
	// PrepareResp is phase-1b.
	PrepareResp struct {
		OK       bool
		Promised int64 // highest ballot promised (on reject)
		Accepted int64 // ballot of accepted value, 0 if none
		Value    entry
		Decided  bool
		DecidedV entry
	}
	// AcceptReq is phase-2a.
	AcceptReq struct {
		Seq    int64
		Ballot int64
		Value  entry
	}
	// AcceptResp is phase-2b.
	AcceptResp struct {
		OK       bool
		Promised int64
	}
	// DecideMsg announces a chosen value.
	DecideMsg struct {
		Seq   int64
		Value entry
	}
	// LearnReq asks a peer for a decided instance (gap fill).
	LearnReq struct{ Seq int64 }
	// LearnResp answers a LearnReq.
	LearnResp struct {
		Known bool
		Value entry
	}
	// Heartbeat announces liveness; also carries the sender's applied
	// frontier so laggards can catch up.
	Heartbeat struct {
		From    string
		Applied int64
	}
)

type instance struct {
	promised int64 // highest ballot promised (np)
	accepted int64 // ballot of accepted value (na)
	value    entry // accepted value (va)
	decided  bool
	chosen   entry
}

// Node is one Paxos replica.
type Node struct {
	id    string
	peers []string // includes self
	ep    *rpc.Endpoint
	clock *sim.Clock
	apply Applier

	mu        sync.Mutex
	cond      *sync.Cond
	instances map[int64]*instance
	applied   int64 // next instance to apply
	appliedID map[string]bool
	maxSeen   int64 // highest instance seen anywhere
	ballotGen int64
	idx       int // our index in peers, for unique ballots
	crashed   bool
	closed    bool
}

// Wire-type registration so paxos runs over TCP carriers.
func init() {
	for _, v := range []any{
		PrepareReq{}, PrepareResp{}, AcceptReq{}, AcceptResp{},
		DecideMsg{}, LearnReq{}, LearnResp{}, Heartbeat{}, entry{},
	} {
		rpc.RegisterType(v)
	}
}

// callTimeout bounds each phase RPC, in simulated time.
const callTimeout = 1 * time.Second

// NewNode creates a replica named id among peers (which must include
// id) on the given carrier. apply receives decided commands in order.
func NewNode(id string, peers []string, carrier rpc.Carrier, clock *sim.Clock, apply Applier) *Node {
	n := &Node{
		id:        id,
		peers:     peers,
		clock:     clock,
		apply:     apply,
		instances: make(map[int64]*instance),
		appliedID: make(map[string]bool),
	}
	n.cond = sync.NewCond(&n.mu)
	for i, p := range peers {
		if p == id {
			n.idx = i
		}
	}
	n.ep = rpc.NewEndpoint(id+".px", carrier, clock, n.handle)
	go n.applyLoop()
	return n
}

// Quorum returns the majority size of the group.
func (n *Node) Quorum() int { return len(n.peers)/2 + 1 }

// ID returns the node's name.
func (n *Node) ID() string { return n.id }

// Crash makes the node stop responding to and sending messages,
// simulating a process crash. Its acceptor state is retained, as if
// durably stored, so Recover models a restart.
func (n *Node) Crash() {
	n.mu.Lock()
	n.crashed = true
	n.mu.Unlock()
}

// Recover brings a crashed node back.
func (n *Node) Recover() {
	n.mu.Lock()
	n.crashed = false
	n.mu.Unlock()
}

// Close shuts the node down permanently.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.crashed = true
	n.mu.Unlock()
	n.cond.Broadcast()
	n.ep.Close()
}

func (n *Node) down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed
}

func (n *Node) inst(seq int64) *instance {
	in := n.instances[seq]
	if in == nil {
		in = &instance{}
		n.instances[seq] = in
	}
	if seq > n.maxSeen {
		n.maxSeen = seq
	}
	return in
}

// handle serves all incoming paxos messages.
func (n *Node) handle(from string, body any) any {
	if n.down() {
		return nil
	}
	switch m := body.(type) {
	case PrepareReq:
		return n.onPrepare(m)
	case AcceptReq:
		return n.onAccept(m)
	case DecideMsg:
		n.onDecide(m.Seq, m.Value)
		return nil
	case LearnReq:
		n.mu.Lock()
		defer n.mu.Unlock()
		if in, ok := n.instances[m.Seq]; ok && in.decided {
			return LearnResp{Known: true, Value: in.chosen}
		}
		return LearnResp{Known: false}
	}
	return nil
}

func (n *Node) onPrepare(m PrepareReq) PrepareResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := n.inst(m.Seq)
	if in.decided {
		return PrepareResp{OK: false, Decided: true, DecidedV: in.chosen}
	}
	if m.Ballot > in.promised {
		in.promised = m.Ballot
		return PrepareResp{OK: true, Accepted: in.accepted, Value: in.value}
	}
	return PrepareResp{OK: false, Promised: in.promised}
}

func (n *Node) onAccept(m AcceptReq) AcceptResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	in := n.inst(m.Seq)
	if m.Ballot >= in.promised {
		in.promised = m.Ballot
		in.accepted = m.Ballot
		in.value = m.Value
		return AcceptResp{OK: true}
	}
	return AcceptResp{OK: false, Promised: in.promised}
}

func (n *Node) onDecide(seq int64, v entry) {
	n.mu.Lock()
	in := n.inst(seq)
	if !in.decided {
		in.decided = true
		in.chosen = v
		n.cond.Broadcast()
	}
	n.mu.Unlock()
}

// applyLoop delivers decided commands in order. On a gap that stays
// open, it asks peers, then drives a no-op proposal to flush out any
// chosen-but-unlearned value.
func (n *Node) applyLoop() {
	for {
		n.mu.Lock()
		for !n.closed {
			in, ok := n.instances[n.applied]
			if ok && in.decided {
				break
			}
			if n.maxSeen > n.applied {
				// Gap: a later instance is known; fill this one.
				seq := n.applied
				n.mu.Unlock()
				n.fillGap(seq)
				n.mu.Lock()
				continue
			}
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		seq := n.applied
		in := n.instances[seq]
		v := in.chosen
		n.applied++
		// A command retried by its submitter can be chosen in more than
		// one instance; apply only its first occurrence. The check is
		// deterministic across nodes because the log is identical.
		dup := n.appliedID[v.ID]
		n.appliedID[v.ID] = true
		n.cond.Broadcast()
		n.mu.Unlock()
		if !dup && !v.Noop && n.apply != nil {
			n.apply(seq, v.Cmd)
		}
	}
}

// fillGap learns or decides instance seq.
func (n *Node) fillGap(seq int64) {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		resp, err := n.ep.Call(p+".px", LearnReq{Seq: seq}, callTimeout)
		if err != nil {
			continue
		}
		if lr, ok := resp.(LearnResp); ok && lr.Known {
			n.onDecide(seq, lr.Value)
			return
		}
	}
	// Nobody has it decided: drive a no-op through.
	n.proposeAt(seq, entry{ID: fmt.Sprintf("%s-noop-%d", n.id, seq), Noop: true})
	n.mu.Lock()
	stillOpen := !n.instances[seq].decided
	n.mu.Unlock()
	if stillOpen {
		// No quorum right now; back off before the apply loop retries.
		n.clock.Sleep(50 * time.Millisecond)
	}
}

// Submit proposes cmd and blocks until it has been applied on this
// node or the deadline (simulated) passes.
func (n *Node) Submit(cmd Command, deadline time.Duration) error {
	n.mu.Lock()
	n.ballotGen++
	id := fmt.Sprintf("%s-%d", n.id, n.ballotGen)
	n.mu.Unlock()
	e := entry{ID: id, Cmd: cmd}

	done := make(chan struct{})
	cancelled := false
	go func() {
		n.mu.Lock()
		for !n.appliedID[id] && !n.closed && !cancelled {
			n.cond.Wait()
		}
		applied := n.appliedID[id]
		n.mu.Unlock()
		if applied {
			close(done)
		}
	}()
	cancel := func() {
		n.mu.Lock()
		cancelled = true
		n.mu.Unlock()
		n.cond.Broadcast()
	}

	timeout := n.clock.After(deadline)
	for attempt := 0; ; attempt++ {
		n.mu.Lock()
		if n.appliedID[id] {
			n.mu.Unlock()
			cancel()
			return nil
		}
		seq := n.applied
		// Target the first instance we do not know to be decided.
		for {
			in, ok := n.instances[seq]
			if !ok || !in.decided {
				break
			}
			seq++
		}
		n.mu.Unlock()

		n.proposeAt(seq, e)

		select {
		case <-done:
			return nil
		case <-timeout:
			cancel()
			return ErrNotDecided
		default:
		}
		// Randomized exponential backoff so duelling proposers
		// desynchronize; the global-state command rate is tiny, so
		// latency here is uncritical.
		max := 20 << min(attempt, 5)
		n.clock.Sleep(time.Duration(5+rand.Intn(max)) * time.Millisecond)
	}
}

// proposeAt runs one round of single-decree Paxos for instance seq
// with value e. It returns once a value (possibly a competitor's) is
// known decided at seq, or the round fails.
func (n *Node) proposeAt(seq int64, e entry) {
	if n.down() {
		return
	}
	n.mu.Lock()
	in := n.inst(seq)
	if in.decided {
		n.mu.Unlock()
		return
	}
	n.ballotGen++
	ballot := n.ballotGen*int64(len(n.peers)+1) + int64(n.idx) + 1
	if in.promised >= ballot {
		n.ballotGen = in.promised/int64(len(n.peers)+1) + 1
		ballot = n.ballotGen*int64(len(n.peers)+1) + int64(n.idx) + 1
	}
	n.mu.Unlock()

	// Phase 1: prepare, in parallel to all acceptors.
	promises := 0
	var best entry
	bestBallot := int64(0)
	hasBest := false
	for resp := range n.broadcast(PrepareReq{Seq: seq, Ballot: ballot}) {
		pr, ok := resp.(PrepareResp)
		if !ok {
			continue
		}
		if pr.Decided {
			n.broadcastDecide(seq, pr.DecidedV)
			return
		}
		if !pr.OK {
			n.bumpBallot(pr.Promised)
			continue
		}
		promises++
		if pr.Accepted > bestBallot {
			bestBallot = pr.Accepted
			best = pr.Value
			hasBest = true
		}
	}
	if promises < n.Quorum() {
		return
	}
	v := e
	if hasBest {
		v = best
	}

	// Phase 2: accept, in parallel.
	accepts := 0
	for resp := range n.broadcast(AcceptReq{Seq: seq, Ballot: ballot, Value: v}) {
		ar, ok := resp.(AcceptResp)
		if !ok {
			continue
		}
		if ar.OK {
			accepts++
		} else {
			n.bumpBallot(ar.Promised)
		}
	}
	if accepts < n.Quorum() {
		return
	}
	n.broadcastDecide(seq, v)
}

// broadcast sends req to every peer concurrently and returns a channel
// yielding each response (nil responses from dead peers included) that
// closes once all peers have answered or timed out.
func (n *Node) broadcast(req any) <-chan any {
	out := make(chan any, len(n.peers))
	var wg sync.WaitGroup
	for _, p := range n.peers {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			out <- n.rpcTo(p, req)
		}(p)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

func (n *Node) bumpBallot(promised int64) {
	n.mu.Lock()
	if g := promised / int64(len(n.peers)+1); g >= n.ballotGen {
		n.ballotGen = g + 1
	}
	n.mu.Unlock()
}

// rpcTo sends a phase message; loopback is served directly to avoid a
// network round trip to ourselves.
func (n *Node) rpcTo(peer string, req any) any {
	if peer == n.id {
		return n.handle(n.id, req)
	}
	resp, err := n.ep.Call(peer+".px", req, callTimeout)
	if err != nil {
		return nil
	}
	return resp
}

func (n *Node) broadcastDecide(seq int64, v entry) {
	n.onDecide(seq, v)
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		_ = n.ep.Cast(p+".px", DecideMsg{Seq: seq, Value: v})
	}
}

// AppliedThrough returns the number of commands applied so far.
func (n *Node) AppliedThrough() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applied
}

// WaitApplied blocks until at least count commands have been applied
// or the deadline passes; it reports whether the target was reached.
func (n *Node) WaitApplied(count int64, deadline time.Duration) bool {
	limit := n.clock.After(deadline)
	for {
		n.mu.Lock()
		ok := n.applied >= count
		n.mu.Unlock()
		if ok {
			return true
		}
		select {
		case <-limit:
			return false
		default:
			n.clock.Sleep(5 * time.Millisecond)
		}
	}
}
