package paxos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// cluster is a test harness: n paxos nodes on a simulated network,
// each applying commands into its own ordered slice.
type cluster struct {
	w     *sim.World
	nodes []*Node
	mu    sync.Mutex
	logs  map[string][]Command
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	w := sim.NewWorld(200, 11)
	c := &cluster{w: w, logs: make(map[string][]Command)}
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	carrier := rpc.SimCarrier{Net: w.Net}
	for _, name := range names {
		w.AddMachine(name+".px", sim.DefaultLinkParams())
		name := name
		node := NewNode(name, names, carrier, w.Clock, func(seq int64, cmd Command) {
			c.mu.Lock()
			c.logs[name] = append(c.logs[name], cmd)
			c.mu.Unlock()
		})
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Close()
		}
	})
	return c
}

func (c *cluster) log(name string) []Command {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Command, len(c.logs[name]))
	copy(out, c.logs[name])
	return out
}

// waitLogs waits until every live node has applied want commands.
func (c *cluster) waitLogs(t *testing.T, want int, skip map[int]bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		c.mu.Lock()
		for i, n := range c.nodes {
			if skip[i] {
				continue
			}
			if len(c.logs[n.id]) < want {
				ok = false
			}
		}
		c.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d applied commands", want)
}

func TestSingleProposerDecides(t *testing.T) {
	c := newCluster(t, 3)
	if err := c.nodes[0].Submit("cmd-a", 120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.waitLogs(t, 1, nil)
	for _, n := range c.nodes {
		if got := c.log(n.id); len(got) != 1 || got[0] != "cmd-a" {
			t.Fatalf("node %s log = %v", n.id, got)
		}
	}
}

func TestAllNodesAgreeOnOrder(t *testing.T) {
	c := newCluster(t, 5)
	const cmds = 10
	var wg sync.WaitGroup
	for i := 0; i < cmds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := c.nodes[i%len(c.nodes)]
			if err := node.Submit(fmt.Sprintf("cmd-%d", i), 300*time.Second); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.waitLogs(t, cmds, nil)
	ref := c.log(c.nodes[0].id)
	if len(ref) < cmds {
		t.Fatalf("node 0 applied %d commands, want >= %d", len(ref), cmds)
	}
	for _, n := range c.nodes[1:] {
		got := c.log(n.id)
		if len(got) != len(ref) {
			t.Fatalf("node %s applied %d, node n0 applied %d", n.id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order divergence at %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
	// Every submitted command appears exactly once.
	seen := make(map[Command]int)
	for _, cmd := range ref {
		seen[cmd]++
	}
	for i := 0; i < cmds; i++ {
		if seen[fmt.Sprintf("cmd-%d", i)] != 1 {
			t.Fatalf("cmd-%d applied %d times", i, seen[fmt.Sprintf("cmd-%d", i)])
		}
	}
}

func TestSurvivesMinorityCrash(t *testing.T) {
	c := newCluster(t, 5)
	if err := c.nodes[0].Submit("before", 120*time.Second); err != nil {
		t.Fatal(err)
	}
	c.nodes[3].Crash()
	c.nodes[4].Crash()
	if err := c.nodes[1].Submit("during", 240*time.Second); err != nil {
		t.Fatalf("submit with minority down: %v", err)
	}
	c.waitLogs(t, 2, map[int]bool{3: true, 4: true})
	// Recovered nodes catch up.
	c.nodes[3].Recover()
	c.nodes[4].Recover()
	if err := c.nodes[0].Submit("after", 240*time.Second); err != nil {
		t.Fatal(err)
	}
	c.waitLogs(t, 3, nil)
	got := c.log("n3")
	want := []Command{"before", "during", "after"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n3 log = %v, want %v", got, want)
		}
	}
}

func TestNoQuorumBlocks(t *testing.T) {
	c := newCluster(t, 3)
	c.nodes[1].Crash()
	c.nodes[2].Crash()
	err := c.nodes[0].Submit("lonely", 2*time.Second)
	if !errors.Is(err, ErrNotDecided) {
		t.Fatalf("submit without quorum: err = %v, want ErrNotDecided", err)
	}
	// Quorum restored: progress resumes, and the earlier command may or
	// may not land (it was never decided), but new ones must.
	c.nodes[1].Recover()
	c.nodes[2].Recover()
	if err := c.nodes[0].Submit("revived", 240*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedMinorityCannotDecide(t *testing.T) {
	c := newCluster(t, 3)
	// Isolate node 0 from both peers (paxos endpoints live on *.px hosts).
	c.w.Net.CutBoth("n0.px", "n1.px")
	c.w.Net.CutBoth("n0.px", "n2.px")
	if err := c.nodes[0].Submit("minority", 2*time.Second); !errors.Is(err, ErrNotDecided) {
		t.Fatalf("minority side decided: err = %v", err)
	}
	// Majority side still works.
	if err := c.nodes[1].Submit("majority", 240*time.Second); err != nil {
		t.Fatal(err)
	}
	// Heal; node 0 must converge to the majority's log.
	c.w.Net.Reconnect("n0.px", "n1.px")
	c.w.Net.Reconnect("n0.px", "n2.px")
	if err := c.nodes[0].Submit("healed", 240*time.Second); err != nil {
		t.Fatal(err)
	}
	c.waitLogs(t, 2, nil)
	got := c.log("n0")
	if got[0] != "majority" {
		t.Fatalf("n0 log starts with %v, want majority-side command first", got[0])
	}
}

func TestDetectorSeesCrash(t *testing.T) {
	w := sim.NewWorld(100, 5)
	carrier := rpc.SimCarrier{Net: w.Net}
	names := []string{"a", "b", "c"}
	var mu sync.Mutex
	events := make(map[string][]bool)
	var dets []*Detector
	for _, n := range names {
		n := n
		d := NewDetector(n, names, carrier, w.Clock,
			100*time.Millisecond, 2*time.Second,
			func(peer string, alive bool) {
				mu.Lock()
				events[n+"/"+peer] = append(events[n+"/"+peer], alive)
				mu.Unlock()
			})
		dets = append(dets, d)
	}
	defer func() {
		for _, d := range dets {
			d.Stop()
		}
	}()
	w.Clock.Sleep(3 * time.Second)
	if !dets[0].Alive("b") || !dets[0].QuorumAlive() {
		t.Fatal("healthy cluster not seen alive")
	}
	// Kill c's heartbeats by isolating its hb endpoint.
	w.Net.Isolate("c.hb")
	waitCond(t, 10*time.Second, func() bool { return !dets[0].Alive("c") })
	if dets[0].AliveCount() != 2 || !dets[0].QuorumAlive() {
		t.Fatalf("alive count = %d, want 2 with quorum", dets[0].AliveCount())
	}
	// c itself sees the others gone and loses quorum.
	waitCond(t, 10*time.Second, func() bool { return !dets[2].QuorumAlive() })
	// Heal: c comes back.
	w.Net.Heal("c.hb")
	waitCond(t, 10*time.Second, func() bool { return dets[0].Alive("c") && dets[2].QuorumAlive() })
	mu.Lock()
	defer mu.Unlock()
	if got := events["a/c"]; len(got) < 2 || got[0] != false || got[len(got)-1] != true {
		t.Fatalf("a's transitions for c = %v, want dead then alive", got)
	}
}

func waitCond(t *testing.T, d time.Duration, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
