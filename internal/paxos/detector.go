package paxos

import (
	"sync"

	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// Detector is the fault-tolerant distributed failure-detection
// mechanism described in §6 of the paper: "based on the timely
// exchange of heartbeat messages between sets of servers", using
// "majority consensus to tolerate network partitions". Each member
// broadcasts heartbeats; a peer unheard-from for the suspect interval
// is suspected. QuorumAlive reports whether this member can currently
// hear a majority of the group (itself included), which is the
// condition under which Petal and the lock service are allowed to act.
type Detector struct {
	id       string
	peers    []string
	ep       *rpc.Endpoint
	clock    *sim.Clock
	interval sim.Duration
	suspect  sim.Duration

	mu        sync.Mutex
	lastHeard map[string]sim.Time
	onChange  func(peer string, alive bool)
	alive     map[string]bool
	stopped   bool
	crashed   bool
	cancel    func()
}

// beat is the heartbeat wire message.
type beat struct{ From string }

func init() { rpc.RegisterType(beat{}) }

// NewDetector starts a failure detector for id among peers. interval
// is the heartbeat period; a peer is suspected after suspect without
// a beat (the paper's lease machinery uses 30s leases; detectors run
// much faster). onChange, if non-nil, is invoked on every liveness
// transition (never concurrently).
func NewDetector(id string, peers []string, carrier rpc.Carrier, clock *sim.Clock,
	interval, suspect sim.Duration, onChange func(peer string, alive bool)) *Detector {
	d := &Detector{
		id:        id,
		peers:     peers,
		clock:     clock,
		interval:  interval,
		suspect:   suspect,
		lastHeard: make(map[string]sim.Time),
		alive:     make(map[string]bool),
		onChange:  onChange,
	}
	now := clock.Now()
	for _, p := range peers {
		d.lastHeard[p] = now
		d.alive[p] = true
	}
	d.ep = rpc.NewEndpoint(id+".hb", carrier, clock, d.handle)
	d.cancel = clock.Tick(interval, d.tick)
	return d
}

func (d *Detector) handle(from string, body any) any {
	b, ok := body.(beat)
	if !ok {
		return nil
	}
	d.mu.Lock()
	if d.stopped || d.crashed {
		d.mu.Unlock()
		return nil
	}
	d.lastHeard[b.From] = d.clock.Now()
	wasDead := !d.alive[b.From]
	d.alive[b.From] = true
	cb := d.onChange
	d.mu.Unlock()
	if wasDead && cb != nil {
		cb(b.From, true)
	}
	return nil
}

// tick broadcasts our heartbeat and sweeps for newly-suspected peers.
func (d *Detector) tick() {
	d.mu.Lock()
	if d.stopped || d.crashed {
		d.mu.Unlock()
		return
	}
	now := d.clock.Now()
	d.lastHeard[d.id] = now
	var died []string
	for _, p := range d.peers {
		if p == d.id {
			continue
		}
		if d.alive[p] && sim.Duration(now-d.lastHeard[p]) > d.suspect {
			d.alive[p] = false
			died = append(died, p)
		}
	}
	cb := d.onChange
	d.mu.Unlock()
	for _, p := range died {
		if cb != nil {
			cb(p, false)
		}
	}
	for _, p := range d.peers {
		if p != d.id {
			_ = d.ep.Cast(p+".hb", beat{From: d.id})
		}
	}
}

// Alive reports whether peer is currently believed alive.
func (d *Detector) Alive(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alive[peer]
}

// AliveCount returns how many group members (including self) are
// currently believed alive.
func (d *Detector) AliveCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, p := range d.peers {
		if d.alive[p] {
			n++
		}
	}
	return n
}

// QuorumAlive reports whether a majority of the group is believed
// alive from this member's vantage point.
func (d *Detector) QuorumAlive() bool {
	return d.AliveCount() >= len(d.peers)/2+1
}

// Members returns the fixed group membership.
func (d *Detector) Members() []string { return d.peers }

// Crash silences the detector (no beats sent or accepted), simulating
// the host being down. Peer liveness views are left to decay normally.
func (d *Detector) Crash() {
	d.mu.Lock()
	d.crashed = true
	d.mu.Unlock()
}

// Recover resumes a crashed detector, resetting its view so peers are
// given a fresh suspect window.
func (d *Detector) Recover() {
	d.mu.Lock()
	d.crashed = false
	now := d.clock.Now()
	for _, p := range d.peers {
		d.lastHeard[p] = now
		d.alive[p] = true
	}
	d.mu.Unlock()
}

// Stop halts heartbeats and sweeps.
func (d *Detector) Stop() {
	d.mu.Lock()
	d.stopped = true
	d.mu.Unlock()
	d.cancel()
	d.ep.Close()
}
