package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"frangipani"
	"frangipani/internal/fs"
	"frangipani/internal/obs"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

// scaleSweepArtifact is where ScaleSweep dumps the lockservice
// timeline when its assertions fail, so CI preserves the evidence.
const scaleSweepArtifact = "FORENSICS_scale-sweep.json"

// scaleRes is one measured point of the big-N sweep.
type scaleRes struct {
	n          int
	streams    int          // client streams driving this point
	elapsed    sim.Duration // measured window
	readBytes  int64
	writeBytes int64
	creates    int64
	readP50    sim.Duration // per 64 KB record
	readP99    sim.Duration
	createP50  sim.Duration // per create+write
	createP99  sim.Duration
	renewStd   int64 // standalone RenewMsg calls sent in the window
	renewPig   int64 // renewals piggybacked on batches in the window
	renewElid  int64 // standalone calls elided at renewal ticks
	events     []obs.Event
}

func (r *scaleRes) readMBps() float64  { return mbps(r.readBytes, r.elapsed) }
func (r *scaleRes) writeMBps() float64 { return mbps(r.writeBytes, r.elapsed) }

// ScaleSweep measures how aggregate read and write throughput scale
// as Frangipani machines are added far past the paper's 8-machine
// testbed: 8/16/32 machines (plus 64 and 128 in full mode), each
// running its own directory tree of read streams (uncached, Figure
// 6's shape) and file-creating write streams (Figure 7's shape, kept
// creating so lock traffic never goes quiescent) — about two thousand
// client streams across the full sweep. Petal servers scale with the
// machines (N/2); lock servers stay fixed at 4, which is exactly the
// point: per-server lease-renewal load must be O(1) in N because busy
// clerks piggyback renewals on their batch traffic instead of sending
// standalone RenewMsg RPCs.
//
// Gates (checked 8 -> 32, both present in quick and full mode):
//   - aggregate read throughput scales >= 0.7x linear;
//   - aggregate write throughput scales >= 0.7x linear;
//   - in every run's measured window the busy clerks send ZERO
//     standalone renewal RPCs while piggybacking > 0 renewals —
//     standalone renewal load per lock server per second is 0,
//     independent of N.
//
// Run by `make bench-smoke` in quick mode (8/16/32).
func (o Options) ScaleSweep() (*Table, error) {
	ns := []int{8, 16, 32, 64, 128}
	if o.Quick {
		ns = []int{8, 16, 32}
	}
	t := &Table{
		ID:    "Scale sweep",
		Title: "Read/write throughput and renewal load vs. Frangipani machines (big N)",
		Header: []string{"Machines", "Streams", "Read MB/s", "Read eff", "Write MB/s", "Write eff",
			"Read p99 (ms)", "Create p99 (ms)", "Renew std/srv/s", "Piggyback"},
		Notes: "Gates: read and write throughput >= 0.7x linear 8->32; busy clerks send 0 standalone renewal RPCs (100% piggybacked on batches).",
	}
	var results []*scaleRes
	for _, n := range ns {
		r, err := o.scaleRun(n)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}

	base := results[0]
	var r32 *scaleRes
	for _, r := range results {
		lin := float64(r.n) / float64(base.n)
		readEff := r.readMBps() / (base.readMBps() * lin)
		writeEff := r.writeMBps() / (base.writeMBps() * lin)
		stdRate := float64(r.renewStd) / 4 / r.elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.n),
			fmt.Sprint(r.streams),
			fmt.Sprintf("%.1f", r.readMBps()),
			fmt.Sprintf("%.0f%%", readEff*100),
			fmt.Sprintf("%.2f", r.writeMBps()),
			fmt.Sprintf("%.0f%%", writeEff*100),
			ms(r.readP99),
			ms(r.createP99),
			fmt.Sprintf("%.2f", stdRate),
			fmt.Sprint(r.renewPig),
		})
		if r.n == 32 {
			r32 = r
		}
	}

	for _, r := range results {
		if r.renewStd != 0 {
			return nil, o.scaleSweepFail(r, fmt.Errorf(
				"scale-sweep: %d standalone renewal RPCs at N=%d — busy clerks must piggyback 100%% of renewals (piggybacked=%d elided=%d)",
				r.renewStd, r.n, r.renewPig, r.renewElid))
		}
		if r.renewPig == 0 {
			return nil, o.scaleSweepFail(r, fmt.Errorf(
				"scale-sweep: no piggybacked renewals at N=%d — the batch piggyback path never fired", r.n))
		}
	}
	if r32 == nil {
		return nil, fmt.Errorf("scale-sweep: no 32-machine point measured")
	}
	readEff := r32.readMBps() / (base.readMBps() * 4)
	if readEff < 0.7 {
		return nil, o.scaleSweepFail(r32, fmt.Errorf(
			"scale-sweep: read throughput scaled only %.0f%% of linear from 8 to 32 machines (want >= 70%%): %.1f -> %.1f MB/s",
			readEff*100, base.readMBps(), r32.readMBps()))
	}
	writeEff := r32.writeMBps() / (base.writeMBps() * 4)
	if writeEff < 0.7 {
		return nil, o.scaleSweepFail(r32, fmt.Errorf(
			"scale-sweep: write throughput scaled only %.0f%% of linear from 8 to 32 machines (want >= 70%%): %.2f -> %.2f MB/s",
			writeEff*100, base.writeMBps(), r32.writeMBps()))
	}
	return t, nil
}

// scaleRun measures one sweep point: n machines, each with its own
// directory tree of read and write streams, on a fresh cluster whose
// Petal tier scales with n and whose lock tier is fixed at 4 servers.
func (o Options) scaleRun(n int) (*scaleRes, error) {
	const (
		// A shortened lease makes renewal ticks (LeaseDuration/3)
		// land several times inside the measured window, so elision
		// is actually exercised; the margin shrinks with it (the
		// default 15 s margin would exceed the whole lease).
		lease  = 12 * time.Second
		margin = 3 * time.Second
		// Each read stream re-reads its private file; the data cache
		// below is smaller than the per-machine read working set, so
		// every pass misses to Petal (Figure 6's uncached shape).
		readFileBytes = int64(256 << 10)
		recSize       = 64 << 10
		// Write streams create a NEW file each iteration: creation
		// acquires fresh inode locks, which is what keeps batch
		// traffic flowing for renewals to ride on (steady-state
		// rewrites of sticky-locked files generate no lock traffic
		// at all). The gap bounds file count and host load while
		// leaving op latency a visible fraction of the period.
		payloadBytes = 4096
		createGap    = 25 * time.Millisecond
		lockServers  = 4
	)
	readStreams, writeStreams := 4, 4
	warmup := 3 * time.Second
	window := 10 * time.Second
	if o.Quick {
		readStreams, writeStreams = 2, 2
		window = 8 * time.Second
	}

	// Dilate the clock in proportion to N: aggregate simulated work
	// grows linearly with the machines, so a fixed compression would
	// saturate the host at the big points (CI runs this on a single
	// core) and host stalls would masquerade as simulated latency.
	// Scaling compression as 1/N keeps host work per real second
	// roughly constant across the sweep.
	comp := o.ScalingCompression
	if comp <= 0 {
		comp = o.Compression
	}
	if n > 8 {
		comp = comp * 8 / float64(n)
	}
	opts := o
	opts.Compression = comp

	c, err := opts.newCluster(true, func(cfg *frangipani.ClusterConfig) {
		cfg.LockServers = lockServers
		cfg.PetalServers = n / 2
		if cfg.PetalServers < 4 {
			cfg.PetalServers = 4
		}
		cfg.DisksPerServer = 2
		cfg.Seed = int64(31 + n)
		cfg.FSConfig.Lock.LeaseDuration = lease
		cfg.FSConfig.LeaseMargin = margin
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	w := c.World

	servers, err := mountN(c, n, func(cfg *frangipani.Config) {
		cfg.Lock.LeaseDuration = lease
		cfg.LeaseMargin = margin
		cfg.DataCacheCap = 64 // 256 KB: thrashed by the read streams
		cfg.ReadAhead = 8
	})
	if err != nil {
		return nil, err
	}
	// One directory per stream: directory updates are serialized
	// ACROSS machines by the directory's exclusive lock, but a clerk
	// grants its cached exclusive lock to any number of local users
	// (the paper's deployment leaves same-machine serialization to
	// the kernel), so concurrent streams must not mutate one
	// directory.
	dir := func(i int) string { return fmt.Sprintf("/ws%d", i+1) }
	readPath := func(i, k int) string { return fmt.Sprintf("%s/r%d/data", dir(i), k) }
	writeDir := func(i, k int) string { return fmt.Sprintf("%s/w%d", dir(i), k) }
	// Pre-create each machine's directory tree and read set in
	// parallel: private trees, so only the allocator and Petal are
	// shared.
	setup := make(chan error, n)
	for i, f := range servers {
		go func(i int, f *fs.FS) {
			if err := f.Mkdir(dir(i)); err != nil {
				setup <- err
				return
			}
			for k := 0; k < writeStreams; k++ {
				if err := f.Mkdir(writeDir(i, k)); err != nil {
					setup <- err
					return
				}
			}
			for k := 0; k < readStreams; k++ {
				if err := f.Mkdir(fmt.Sprintf("%s/r%d", dir(i), k)); err != nil {
					setup <- err
					return
				}
				if _, err := workload.SeqWrite(workload.Frangipani{FS: f}, w.Clock, readPath(i, k), readFileBytes, recSize); err != nil {
					setup <- err
					return
				}
			}
			setup <- f.Sync()
		}(i, f)
	}
	for range servers {
		if err := <-setup; err != nil {
			return nil, err
		}
	}

	var (
		measuring, stopped             atomic.Bool
		readBytes, writeBytes, creates atomic.Int64
		workerErr                      atomic.Value
		latMu                          sync.Mutex
		readLats, createLats           []sim.Duration
		wg                             sync.WaitGroup
	)
	for i, f := range servers {
		for k := 0; k < readStreams; k++ {
			wg.Add(1)
			go func(i, k int, f *fs.FS) {
				defer wg.Done()
				h, err := f.Open(readPath(i, k))
				if err != nil {
					workerErr.Store(fmt.Errorf("reader ws%d.%d: %v", i+1, k, err))
					return
				}
				buf := make([]byte, recSize)
				var local []sim.Duration
				for !stopped.Load() {
					for off := int64(0); off < readFileBytes && !stopped.Load(); off += int64(recSize) {
						counted := measuring.Load()
						t0 := w.Clock.Now()
						m, err := h.ReadAt(buf, off)
						if err != nil && err != io.EOF {
							workerErr.Store(fmt.Errorf("reader ws%d.%d off %d: %v", i+1, k, off, err))
							return
						}
						if counted && measuring.Load() {
							readBytes.Add(int64(m))
							local = append(local, sim.Duration(w.Clock.Now()-t0))
						}
					}
				}
				latMu.Lock()
				readLats = append(readLats, local...)
				latMu.Unlock()
			}(i, k, f)
		}
		for k := 0; k < writeStreams; k++ {
			wg.Add(1)
			go func(i, k int, f *fs.FS) {
				defer wg.Done()
				data := make([]byte, payloadBytes)
				var local []sim.Duration
				for seq := 0; !stopped.Load(); seq++ {
					path := fmt.Sprintf("%s/f%d", writeDir(i, k), seq)
					counted := measuring.Load()
					t0 := w.Clock.Now()
					h, err := f.OpenFile(path, true)
					if err == nil {
						_, err = h.WriteAt(data, 0)
					}
					if err != nil {
						workerErr.Store(fmt.Errorf("writer ws%d.%d seq %d: %v", i+1, k, seq, err))
						break
					}
					if counted && measuring.Load() {
						creates.Add(1)
						writeBytes.Add(int64(len(data)))
						local = append(local, sim.Duration(w.Clock.Now()-t0))
					}
					w.Clock.Sleep(createGap)
				}
				latMu.Lock()
				createLats = append(createLats, local...)
				latMu.Unlock()
			}(i, k, f)
		}
	}

	snap := func() (std, pig, elid int64) {
		for i := range servers {
			m := fmt.Sprintf("ws%d", i+1)
			std += w.Obs.Counter("lockservice.renew.standalone#" + m).Value()
			pig += w.Obs.Counter("lockservice.renew.piggyback#" + m).Value()
			elid += w.Obs.Counter("lockservice.renew.elided#" + m).Value()
		}
		return
	}

	// Warm up (caches primed, sticky locks settled, first renewal
	// ticks absorbed), then measure.
	w.Clock.Sleep(warmup)
	std0, pig0, elid0 := snap()
	measuring.Store(true)
	t0 := w.Clock.Now()
	w.Clock.Sleep(window)
	measuring.Store(false)
	elapsed := sim.Duration(w.Clock.Now() - t0)
	std1, pig1, elid1 := snap()
	stopped.Store(true)
	wg.Wait()

	res := &scaleRes{
		n:          n,
		streams:    n * (readStreams + writeStreams),
		elapsed:    elapsed,
		readBytes:  readBytes.Load(),
		writeBytes: writeBytes.Load(),
		creates:    creates.Load(),
		renewStd:   std1 - std0,
		renewPig:   pig1 - pig0,
		renewElid:  elid1 - elid0,
		events:     obs.MergeTimeline(w.Obs.Journals(), obs.Filter{Layer: "lockservice"}),
	}
	if err, _ := workerErr.Load().(error); err != nil {
		return nil, o.scaleSweepFail(res, fmt.Errorf("scale-sweep: %w", err))
	}
	if res.readBytes == 0 || res.creates == 0 {
		return nil, o.scaleSweepFail(res, fmt.Errorf("scale-sweep: idle measured window at N=%d (read %d B, %d creates)", n, res.readBytes, res.creates))
	}
	pct := func(lats []sim.Duration, p int) sim.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[len(lats)*p/100]
	}
	sort.Slice(readLats, func(i, j int) bool { return readLats[i] < readLats[j] })
	sort.Slice(createLats, func(i, j int) bool { return createLats[i] < createLats[j] })
	res.readP50, res.readP99 = pct(readLats, 50), pct(readLats, 99)
	res.createP50, res.createP99 = pct(createLats, 50), pct(createLats, 99)
	return res, nil
}

// scaleSweepFail dumps the lockservice timeline to scaleSweepArtifact
// so a failed CI run leaves the evidence behind, then returns err.
func (o Options) scaleSweepFail(r *scaleRes, err error) error {
	dump := obs.ForensicsDump{
		Schema:    obs.ForensicsSchema,
		TakenAtNs: time.Now().UnixNano(),
		Reason:    "scale-sweep: " + err.Error(),
		Events:    r.events,
	}
	if werr := os.WriteFile(scaleSweepArtifact, []byte(dump.JSON()), 0o644); werr == nil {
		return fmt.Errorf("%w (timeline dumped to %s)", err, scaleSweepArtifact)
	}
	return err
}
