package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frangipani/internal/petal"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// CodecMux exercises the TCP carrier's multiplexed framing under
// load and asserts the mux actually multiplexes: one (from, to) pair
// carries many concurrent Petal-shaped RPCs, and the receiver must
// observe at least two streams open at once (no head-of-line
// blocking behind one bulk transfer). It runs over real sockets, so
// it also smoke-tests the fast codec end to end: the payloads must
// round-trip bit-exact through encode, frame interleaving,
// reassembly, and zero-copy decode.
func (o Options) CodecMux() (*Table, error) {
	t := &Table{
		ID:     "Codec mux",
		Title:  "Multiplexed TCP transport under concurrent 1 MB WriteV load",
		Header: []string{"Metric", "Value"},
		Notes:  "streams peak >= 2 proves concurrent in-flight RPCs share one connection.",
	}
	carrier := rpc.NewTCPCarrier()
	defer carrier.Close()
	clock := sim.NewClock(1)

	// The server verifies payload integrity and tracks how many
	// requests are being served at once.
	var inflight, inflightPeak atomic.Int64
	var badPayloads atomic.Int64
	srv := rpc.NewEndpoint("codec-srv", carrier, clock, func(from string, body any) any {
		m, ok := body.(petal.WriteVReq)
		if !ok {
			return nil
		}
		n := inflight.Add(1)
		for {
			p := inflightPeak.Load()
			if n <= p || inflightPeak.CompareAndSwap(p, n) {
				break
			}
		}
		for _, e := range m.Extents {
			for j, b := range e.Data {
				if b != byte(int(e.Chunk)+j) {
					badPayloads.Add(1)
					break
				}
			}
		}
		// Hold the request briefly so concurrent calls overlap at the
		// server, then recycle its pooled receive buffer.
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		rpc.Release(m)
		return petal.WriteVResp{OK: true}
	})
	defer srv.Close()
	cli := rpc.NewEndpoint("codec-cli", carrier, clock, nil)
	defer cli.Close()

	// Each worker sends 1 MB as 16 chunk-sized extents — the cache
	// flusher's batch shape — all through the single codec-cli ->
	// codec-srv connection.
	const (
		workers  = 8
		rounds   = 4
		extents  = 16
		extBytes = petal.ChunkSize
	)
	reqs := make([]petal.WriteVReq, workers)
	for w := range reqs {
		exts := make([]petal.WriteVExtent, extents)
		for i := range exts {
			chunk := int64(w*extents + i)
			data := make([]byte, extBytes)
			for j := range data {
				data[j] = byte(int(chunk) + j)
			}
			exts[i] = petal.WriteVExtent{Chunk: chunk, Data: data}
		}
		reqs[w] = petal.WriteVReq{VDisk: "bench", Extents: exts}
	}
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := cli.Call("codec-srv", reqs[w], 30*time.Second)
				if err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", w, r, err)
					return
				}
				if wr, ok := resp.(petal.WriteVResp); !ok || !wr.OK {
					errCh <- fmt.Errorf("worker %d round %d: bad reply %#v", w, r, resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	if n := badPayloads.Load(); n > 0 {
		return nil, fmt.Errorf("codec-mux: %d payloads corrupted in transit", n)
	}
	stats := carrier.Stats()
	if stats.StreamsPeak < 2 {
		return nil, fmt.Errorf("codec-mux: streams peak %d, want >= 2 (no multiplexing observed)", stats.StreamsPeak)
	}
	if stats.MsgsFast == 0 {
		return nil, fmt.Errorf("codec-mux: no messages took the fast codec path")
	}
	if stats.DecodeErrs > 0 {
		return nil, fmt.Errorf("codec-mux: %d decode errors on the wire", stats.DecodeErrs)
	}
	payload := int64(workers) * rounds * extents * extBytes
	t.Rows = append(t.Rows,
		[]string{"concurrent RPC peak (server)", fmt.Sprintf("%d", inflightPeak.Load())},
		[]string{"inbound streams peak (one conn)", fmt.Sprintf("%d", stats.StreamsPeak)},
		[]string{"messages fast codec", fmt.Sprintf("%d", stats.MsgsFast)},
		[]string{"messages gob fallback", fmt.Sprintf("%d", stats.MsgsGob)},
		[]string{"frames sent", fmt.Sprintf("%d", stats.FramesSent)},
		[]string{"payload MB", fmt.Sprintf("%.1f", float64(payload)/(1<<20))},
		[]string{"wire MB sent", fmt.Sprintf("%.1f", float64(stats.BytesSent)/(1<<20))},
		[]string{"framing overhead", fmt.Sprintf("%.2f%%", (float64(stats.BytesSent)-float64(payload))/float64(payload)*100)},
		[]string{"throughput MB/s", fmt.Sprintf("%.0f", float64(payload)/(1<<20)/elapsed.Seconds())},
	)
	return t, nil
}
