// Package bench regenerates every table and figure of the paper's
// evaluation (§9) on the simulated testbed. Each experiment builds a
// fresh cluster sized like the paper's (Petal servers with NVRAM
// options, lock servers, N Frangipani machines), runs the §9 workload,
// and reports the same rows/series the paper does. Absolute numbers
// come from the simulation's calibrated hardware model; the shapes —
// who wins, by what factor, where saturation sets in — are the object
// of comparison (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"
	"time"

	"frangipani"
	"frangipani/internal/fs"
	"frangipani/internal/localfs"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

// Options control the simulated testbed.
type Options struct {
	// Compression is simulated seconds per real second. Benchmarks
	// default lower than tests so scheduling noise stays far below
	// modelled costs.
	Compression float64
	// PetalServers, DisksPerServer: the paper used 7 servers with 9
	// disks each.
	PetalServers   int
	DisksPerServer int
	// MaxMachines bounds the scaling sweeps (the paper went to 6-8).
	MaxMachines int
	// ScalingCompression, when > 0, replaces Compression for the
	// multi-machine sweeps (Figures 5-7): running N concurrent
	// simulated machines at compression 1 can saturate the host CPU,
	// and host stalls would masquerade as simulated latency. Values
	// below 1 dilate time, giving the host headroom.
	ScalingCompression float64
	// Quick shrinks workload sizes for smoke runs.
	Quick bool
}

// DefaultOptions mirrors the paper's testbed scale.
func DefaultOptions() Options {
	return Options{
		Compression:        1,
		PetalServers:       7,
		DisksPerServer:     4,
		MaxMachines:        5,
		ScalingCompression: 0.5,
	}
}

// Table is one reproduced table or figure, as printable rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

func ms(d sim.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/1e6)
}

func mbps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// scaled returns options for the concurrent multi-machine sweeps.
func (o Options) scaled() Options {
	if o.ScalingCompression > 0 {
		o.Compression = o.ScalingCompression
	}
	return o
}

// newCluster builds a Frangipani testbed.
func (o Options) newCluster(nvram bool, mutate func(*frangipani.ClusterConfig)) (*frangipani.Cluster, error) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.Compression = o.Compression
	cfg.PetalServers = o.PetalServers
	cfg.DisksPerServer = o.DisksPerServer
	cfg.DiskCapacity = 2 << 30
	cfg.GuardWrites = true
	if nvram {
		cfg.NVRAM = 8 << 20 // PrestoServe card size
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return frangipani.NewCluster(cfg)
}

// newLocal builds the AdvFS-like baseline on its own simulated
// machine.
func (o Options) newLocal(nvram bool) (*sim.World, *localfs.FS) {
	w := sim.NewWorld(o.Compression, 7)
	cfg := localfs.DefaultConfig()
	if nvram {
		cfg.NVRAM = 8 << 20
	}
	return w, localfs.New(w, "advfs", cfg)
}

// mountN mounts n Frangipani servers named ws1..wsN.
func mountN(c *frangipani.Cluster, n int, mutate func(*frangipani.Config)) ([]*fs.FS, error) {
	var out []*fs.FS
	for i := 1; i <= n; i++ {
		cfg := frangipani.DefaultFSConfig()
		cfg.Lock.HeartbeatEvery = 2 * time.Second
		cfg.Lock.SuspectAfter = 10 * time.Second
		if mutate != nil {
			mutate(&cfg)
		}
		f, err := c.AddServerWithConfig(fmt.Sprintf("ws%d", i), cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func (o Options) mabSize() workload.MAB {
	m := workload.DefaultMAB()
	m.Dirs, m.FilesPerDir = 8, 5
	if o.Quick {
		m.Dirs, m.FilesPerDir = 4, 3
	}
	return m
}

func (o Options) connSize() workload.Connectathon {
	c := workload.DefaultConnectathon()
	if o.Quick {
		c.Files = 20
	}
	return c
}

func (o Options) seqBytes() int64 {
	if o.Quick {
		return 2 << 20
	}
	return 6 << 20
}
