package bench

import (
	"fmt"
	"os"
	"time"

	"frangipani"
	"frangipani/internal/obs"
)

// forensicsArtifact is where ForensicsSmoke dumps the merged timeline
// when its assertions fail, so CI preserves the evidence.
const forensicsArtifact = "FORENSICS_forensics-smoke.json"

// forensicsWant is the causal chain a lease-expiry recovery must leave
// in the flight recorder, in order: the dead server's lease expires,
// the lock service assigns its log to a survivor, the survivor's
// recovery demon replays it, and the lock service closes the session.
var forensicsWant = []struct {
	layer, op, kind string
}{
	{"lockservice", "lease", "expire"},
	{"lockservice", "recovery", "assign"},
	{"fs", "recover", "start"},
	{"fs", "recover", "replayed"},
	{"lockservice", "recovery", "closed"},
}

// ForensicsSmoke kills a lock holder mid-write and asserts the merged
// cross-server timeline tells the recovery story in causal order (§4,
// §7): this is the CI gate that the flight recorder actually records
// the events forensics depend on. Run by `make bench-smoke`.
func (o Options) ForensicsSmoke() (*Table, error) {
	t := &Table{
		ID:     "Forensics smoke",
		Title:  "Flight-recorder timeline of an induced lease-expiry recovery",
		Header: []string{"Event", "t (sim ms)", "server", "detail"},
		Notes:  "Asserted order: lease expire -> recovery assign -> replay start -> records replayed -> session closed.",
	}
	// The 30 s lease must expire in real time: compress the clock so
	// the wait is ~0.3 s regardless of the bench-wide compression.
	c, err := o.newCluster(true, func(cc *frangipani.ClusterConfig) { cc.Compression = 100 })
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// ws1 logs synchronously but never writes metadata back: every
	// update it makes lives only in its WAL, so its crash forces a
	// real replay on the survivor.
	fss, err := mountN(c, 2, func(fc *frangipani.Config) {
		fc.SyncLog = true
		fc.SyncEvery = time.Hour
	})
	if err != nil {
		return nil, err
	}
	ws1, ws2 := fss[0], fss[1]
	const files = 5
	for i := 0; i < files; i++ {
		if err := ws1.Create(fmt.Sprintf("/doc%d", i)); err != nil {
			return nil, err
		}
	}
	ws1.Crash()
	// ws2's ReadDir needs ws1's locks; it unblocks only after lease
	// expiry + log replay hand them over.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ents, err := ws2.ReadDir("/")
		if err == nil && len(ents) == files {
			break
		}
		if time.Now().After(deadline) {
			return nil, o.forensicsFail(c, fmt.Errorf("recovery did not complete: ws2 sees %d/%d files (err %v)", len(ents), files, err))
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := ws2.Stats().Recoveries; got < 1 {
		return nil, o.forensicsFail(c, fmt.Errorf("ws2 replayed no logs (Recoveries=%d)", got))
	}
	// Assert the merged timeline contains the recovery chain in order.
	events := obs.MergeTimeline(c.Obs().Journals(), obs.Filter{})
	idx := 0
	for _, want := range forensicsWant {
		found := -1
		for i := idx; i < len(events); i++ {
			e := events[i]
			if e.Layer == want.layer && e.Op == want.op && e.Kind == want.kind {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, o.forensicsFail(c, fmt.Errorf("timeline missing %s.%s %s after index %d (%d events total)",
				want.layer, want.op, want.kind, idx, len(events)))
		}
		e := events[found]
		if want.kind == "replayed" && e.Arg < 1 {
			return nil, o.forensicsFail(c, fmt.Errorf("replay applied %d records, want >= 1", e.Arg))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s.%s %s", e.Layer, e.Op, e.Kind),
			fmt.Sprintf("%.1f", float64(e.T)/1e6),
			e.Server,
			e.Detail,
		})
		idx = found + 1
	}
	return t, nil
}

// forensicsFail dumps the merged timeline to forensicsArtifact so a
// failed CI run leaves the evidence behind, then returns err.
func (o Options) forensicsFail(c *frangipani.Cluster, err error) error {
	dump := c.Forensics("forensics-smoke: " + err.Error())
	if werr := os.WriteFile(forensicsArtifact, []byte(dump.JSON()), 0o644); werr == nil {
		return fmt.Errorf("%w (timeline dumped to %s)", err, forensicsArtifact)
	}
	return err
}
