package bench

import (
	"fmt"

	"frangipani/internal/fs"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

// Table1MAB reproduces Table 1: Modified Andrew Benchmark phase
// latencies for AdvFS and Frangipani, each with and without NVRAM.
func (o Options) Table1MAB() (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Modified Andrew Benchmark phase times (ms, simulated)",
		Header: []string{"Phase", "AdvFS Raw", "AdvFS NVR", "Frangipani Raw", "Frangipani NVR"},
		Notes:  "Paper's shape: Frangipani within a small factor of AdvFS on every phase; NVRAM narrows write-heavy phases.",
	}
	var cols [4][5]sim.Duration

	for i, nvram := range []bool{false, true} {
		w, lf := o.newLocal(nvram)
		phases, err := o.mabSize().Run(workload.Local{FS: lf}, w.Clock, "/mab")
		lf.Close()
		w.Stop()
		if err != nil {
			return nil, fmt.Errorf("advfs mab (nvram=%v): %w", nvram, err)
		}
		cols[i] = phases
	}
	for i, nvram := range []bool{false, true} {
		c, err := o.newCluster(nvram, nil)
		if err != nil {
			return nil, err
		}
		fss, err := mountN(c, 1, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		phases, err := o.mabSize().Run(workload.Frangipani{FS: fss[0]}, c.World.Clock, "/mab")
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("frangipani mab (nvram=%v): %w", nvram, err)
		}
		cols[2+i] = phases
	}
	for p, name := range workload.MABPhases {
		t.Rows = append(t.Rows, []string{
			name, ms(cols[0][p]), ms(cols[1][p]), ms(cols[2][p]), ms(cols[3][p]),
		})
	}
	var totals []string
	totals = append(totals, "TOTAL")
	for c := 0; c < 4; c++ {
		var sum sim.Duration
		for p := 0; p < 5; p++ {
			sum += cols[c][p]
		}
		totals = append(totals, ms(sum))
	}
	t.Rows = append(t.Rows, totals)
	return t, nil
}

// Table2Connectathon reproduces Table 2: the Connectathon-style
// operation suite under the same four configurations.
func (o Options) Table2Connectathon() (*Table, error) {
	t := &Table{
		ID:     "Table 2",
		Title:  "Connectathon-style suite times (ms, simulated)",
		Header: []string{"Test", "AdvFS Raw", "AdvFS NVR", "Frangipani Raw", "Frangipani NVR"},
		Notes:  "Paper's shape: comparable latency; Frangipani pays lock-service round trips only on first touch (sticky locks).",
	}
	var cols [4][9]sim.Duration
	for i, nvram := range []bool{false, true} {
		w, lf := o.newLocal(nvram)
		times, err := o.connSize().Run(workload.Local{FS: lf}, w.Clock, "/cthon")
		lf.Close()
		w.Stop()
		if err != nil {
			return nil, fmt.Errorf("advfs cthon: %w", err)
		}
		cols[i] = times
	}
	for i, nvram := range []bool{false, true} {
		c, err := o.newCluster(nvram, nil)
		if err != nil {
			return nil, err
		}
		fss, err := mountN(c, 1, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		times, err := o.connSize().Run(workload.Frangipani{FS: fss[0]}, c.World.Clock, "/cthon")
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("frangipani cthon: %w", err)
		}
		cols[2+i] = times
	}
	for p, name := range workload.ConnectathonTests {
		t.Rows = append(t.Rows, []string{
			name, ms(cols[0][p]), ms(cols[1][p]), ms(cols[2][p]), ms(cols[3][p]),
		})
	}
	return t, nil
}

// Table3Throughput reproduces Table 3: single-machine large-file
// write/read throughput and CPU utilization for both systems.
func (o Options) Table3Throughput() (*Table, error) {
	t := &Table{
		ID:     "Table 3",
		Title:  "Large-file throughput and server CPU utilization",
		Header: []string{"System", "Write MB/s", "Write CPU%", "Read MB/s", "Read CPU%"},
		Notes:  "Paper: Frangipani W 15.3 @42%, R 10.3 @25%; AdvFS W 13.3 @80%, R 13.2 @50%. Shape: Frangipani ≥ AdvFS on writes at lower CPU; reads a bit below AdvFS.",
	}
	total := o.seqBytes()

	// Frangipani.
	c, err := o.newCluster(true, nil)
	if err != nil {
		return nil, err
	}
	fss, err := mountN(c, 1, nil)
	if err != nil {
		c.Close()
		return nil, err
	}
	wfs := workload.Frangipani{FS: fss[0]}
	cpu := c.World.CPU("ws1")
	busy0 := cpu.BusyTime()
	wdur, err := workload.SeqWrite(wfs, c.World.Clock, "/big", total, 64<<10)
	if err != nil {
		c.Close()
		return nil, err
	}
	wcpu := cpuFrac(float64(cpu.BusyTime()-busy0)/float64(wdur), 0)
	// Read from a second, cold-cached machine.
	f2, err := c.AddServer("wsR")
	if err != nil {
		c.Close()
		return nil, err
	}
	cpu2 := c.World.CPU("wsR")
	busy0 = cpu2.BusyTime()
	rbytes, rdur, err := workload.SeqRead(workload.Frangipani{FS: f2}, c.World.Clock, "/big", 64<<10)
	rcpu := cpuFrac(float64(cpu2.BusyTime()-busy0)/float64(rdur), 0)
	c.Close()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"Frangipani",
		fmt.Sprintf("%.1f", mbps(total, wdur)), fmt.Sprintf("%.0f%%", wcpu*100),
		fmt.Sprintf("%.1f", mbps(rbytes, rdur)), fmt.Sprintf("%.0f%%", rcpu*100),
	})

	// AdvFS: write, drop the cache by reopening... the baseline cache
	// is per-FS; emulate a cold read with a fresh FS? The paper reads
	// through the same machine; our baseline's cache holds the file,
	// so bound the cache below the file size for a disk-bound read.
	w, lf := o.newLocal(true)
	lfw := workload.Local{FS: lf}
	lcpu := w.CPU("advfs")
	lbusy := lcpu.BusyTime()
	wdur, err = workload.SeqWrite(lfw, w.Clock, "/big", total, 64<<10)
	if err != nil {
		w.Stop()
		return nil, err
	}
	awcpu := cpuFrac(float64(lcpu.BusyTime()-lbusy)/float64(wdur), 0)
	lbusy = lcpu.BusyTime()
	rbytes, rdur, err = workload.SeqRead(lfw, w.Clock, "/big", 64<<10)
	arcpu := cpuFrac(float64(lcpu.BusyTime()-lbusy)/float64(rdur), 0)
	lf.Close()
	w.Stop()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"AdvFS",
		fmt.Sprintf("%.1f", mbps(total, wdur)), fmt.Sprintf("%.0f%%", awcpu*100),
		fmt.Sprintf("%.1f", mbps(rbytes, rdur)), fmt.Sprintf("%.0f%%", arcpu*100),
	})
	return t, nil
}

// cpuFrac re-normalizes a utilization sample (utilization is measured
// since ResetStats, which may predate the measured window slightly).
func cpuFrac(u float64, _ sim.Time) float64 {
	if u > 1 {
		return 1
	}
	return u
}

// Fig5ScalingMAB reproduces Figure 5: average MAB elapsed time as
// machines are added, each running on its own data set.
func (o Options) Fig5ScalingMAB() (*Table, error) {
	t := &Table{
		ID:     "Figure 5",
		Title:  "MAB elapsed time vs. Frangipani machines (independent trees)",
		Header: []string{"Machines", "Avg elapsed (ms)", "vs 1 machine"},
		Notes:  "Paper: latency nearly flat (+8% from 1 to 6 machines).",
	}
	var base float64
	os := o.scaled()
	for n := 1; n <= o.MaxMachines; n++ {
		c, err := os.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		fss, err := mountN(c, n, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		type res struct {
			d   sim.Duration
			err error
		}
		ch := make(chan res, n)
		for i := range fss {
			go func(i int, f *fs.FS) {
				phases, err := o.mabSize().Run(workload.Frangipani{FS: f}, c.World.Clock, fmt.Sprintf("/mab%d", i))
				var sum sim.Duration
				for _, p := range phases {
					sum += p
				}
				ch <- res{sum, err}
			}(i, fss[i])
		}
		var total float64
		for range fss {
			r := <-ch
			if r.err != nil {
				c.Close()
				return nil, r.err
			}
			total += float64(r.d)
		}
		c.Close()
		avg := total / float64(n)
		if n == 1 {
			base = avg
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprintf("%.1f", avg/1e6), fmt.Sprintf("%+.0f%%", (avg/base-1)*100),
		})
	}
	return t, nil
}
