package bench

import (
	"fmt"
	"time"

	"frangipani/internal/fs"
	"frangipani/internal/obs"
	"frangipani/internal/workload"
)

// ContentionProfile validates the trace-analytics layer on a workload
// with a known answer: N servers rewriting one shared file, so the
// file's inode lock is by construction the hottest lock in the
// cluster and most of each write's latency is coherence traffic. The
// experiment fails if the critical-path profile attributes less than
// 90% of the dominant root op's latency to named layer.op buckets, if
// the hot-lock table is empty, or if the shared file's inode lock is
// not ranked first.
func (o Options) ContentionProfile() (*Table, error) {
	t := &Table{
		ID:     "Contention profile",
		Title:  "Critical-path attribution and hot-lock ranking under write sharing",
		Header: []string{"Metric", "Value"},
		Notes:  "Checks: >= 90% of the dominant op attributed to layer.op buckets; the shared file's inode lock ranked hottest.",
	}
	c, err := o.newCluster(true, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	setup, err := c.AddServer("setup")
	if err != nil {
		return nil, err
	}
	if _, err := workload.SeqWrite(workload.Frangipani{FS: setup}, c.World.Clock, "/hot", 64<<10, 64<<10); err != nil {
		return nil, err
	}
	if err := setup.Sync(); err != nil {
		return nil, err
	}
	info, err := setup.Stat("/hot")
	if err != nil {
		return nil, err
	}
	writers := 3
	dur := 4 * time.Second
	if o.Quick {
		writers = 2
		dur = 2 * time.Second
	}
	var wfs []workload.FS
	for i := 0; i < writers; i++ {
		w, err := c.AddServerWithConfig(fmt.Sprintf("wr%d", i), contentionFSConfig(0))
		if err != nil {
			return nil, err
		}
		wfs = append(wfs, workload.Frangipani{FS: w})
	}
	res, err := workload.WriteSharing(c.World.Clock, wfs, "/hot", 16<<10, dur)
	if err != nil {
		return nil, err
	}

	reg := c.Obs()
	cp := obs.NewCritPath()
	cp.AddTracer(reg.Tracer(), 0)
	ops := cp.RootOps()
	if len(ops) == 0 {
		return nil, fmt.Errorf("contention-profile: no completed traces in the ring")
	}
	dom := ops[0]
	cov := cp.Coverage(dom)
	if cov < 0.90 {
		return nil, fmt.Errorf("contention-profile: only %.1f%% of %s attributed (want >= 90%%)", cov*100, dom)
	}

	top := reg.Resources("lockservice.locks").TopK(5)
	if len(top) == 0 {
		return nil, fmt.Errorf("contention-profile: hot-lock table is empty")
	}
	want := fs.InodeLock(info.Inum)
	if top[0].ID != want {
		return nil, fmt.Errorf("contention-profile: hottest lock is %s, want %s",
			fs.LockName(top[0].ID), fs.LockName(want))
	}

	t.Rows = append(t.Rows,
		[]string{"writers", fmt.Sprint(writers)},
		[]string{"write ops completed", fmt.Sprint(res.WriterOps)},
		[]string{"dominant root op", fmt.Sprintf("%s (%d traces, mean %.1fms)",
			dom, cp.Count(dom), float64(cp.MeanNs(dom))/1e6)},
		[]string{"latency attributed", fmt.Sprintf("%.1f%%", cov*100)},
	)
	for i, e := range cp.Profile(dom) {
		if i == 3 {
			break
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("  layer #%d", i+1),
			fmt.Sprintf("%-24s %5.1f%% (%.1fms)", e.Name, e.Percent, float64(e.SelfNs)/1e6),
		})
	}
	t.Rows = append(t.Rows, []string{"hottest lock", fmt.Sprintf(
		"%s — %.1fms waited, %d acquires, %d revokes",
		fs.LockName(top[0].ID), float64(top[0].WaitNs)/1e6, top[0].Acquires, top[0].Events)})
	return t, nil
}
