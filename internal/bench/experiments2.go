package bench

import (
	"fmt"
	"time"

	"frangipani"
	"frangipani/internal/fs"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

// Fig6ReadScaling reproduces Figure 6: aggregate uncached-read
// throughput as machines are added, each reading the same file set
// (cold caches), against the linear-speedup reference.
func (o Options) Fig6ReadScaling() (*Table, error) {
	t := &Table{
		ID:     "Figure 6",
		Title:  "Uncached read throughput vs. Frangipani machines",
		Header: []string{"Machines", "Aggregate MB/s", "Linear ref", "Efficiency"},
		Notes:  "Paper: near-linear scaling until the Petal servers' links saturate.",
	}
	perMachine := o.seqBytes()
	var base float64
	os := o.scaled()
	for n := 1; n <= o.MaxMachines; n++ {
		c, err := os.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		// A writer machine creates the shared file set, then n fresh
		// readers (cold caches) stream it simultaneously.
		wf, err := c.AddServer("writer")
		if err != nil {
			c.Close()
			return nil, err
		}
		path := "/shared.dat"
		if _, err := workload.SeqWrite(workload.Frangipani{FS: wf}, c.World.Clock, path, perMachine, 64<<10); err != nil {
			c.Close()
			return nil, err
		}
		if err := wf.Sync(); err != nil {
			c.Close()
			return nil, err
		}
		readers, err := mountN(c, n, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		type res struct {
			bytes int64
			err   error
		}
		ch := make(chan res, n)
		start := c.World.Clock.Now()
		for _, r := range readers {
			go func(r *fs.FS) {
				bytes, _, err := workload.SeqRead(workload.Frangipani{FS: r}, c.World.Clock, path, 64<<10)
				ch <- res{bytes, err}
			}(r)
		}
		var total int64
		for range readers {
			r := <-ch
			if r.err != nil {
				c.Close()
				return nil, r.err
			}
			total += r.bytes
		}
		elapsed := sim.Duration(c.World.Clock.Now() - start)
		c.Close()
		agg := mbps(total, elapsed)
		if n == 1 {
			base = agg
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", agg),
			fmt.Sprintf("%.1f", base*float64(n)),
			fmt.Sprintf("%.0f%%", agg/(base*float64(n))*100),
		})
	}
	return t, nil
}

// Fig7WriteScaling reproduces Figure 7: aggregate write throughput,
// each machine writing a private large file. With replication every
// client write becomes two Petal writes, so saturation arrives at
// roughly half the read ceiling; the noReplicate ablation shows the
// difference.
func (o Options) Fig7WriteScaling(noReplicate bool) (*Table, error) {
	id := "Figure 7"
	if noReplicate {
		id = "Figure 7 (ablation: replication off)"
	}
	t := &Table{
		ID:     id,
		Title:  "Write throughput vs. Frangipani machines (private files)",
		Header: []string{"Machines", "Aggregate MB/s", "Linear ref", "Efficiency"},
		Notes:  "Paper: scales until the Petal servers' ATM links saturate; replication doubles the Petal-side write load.",
	}
	perMachine := o.seqBytes()
	var base float64
	os := o.scaled()
	for n := 1; n <= o.MaxMachines; n++ {
		c, err := os.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		if noReplicate {
			// Rebuild with the ablation knob.
			c.Close()
			c, err = os.newClusterNoReplicate()
			if err != nil {
				return nil, err
			}
		}
		writers, err := mountN(c, n, nil)
		if err != nil {
			c.Close()
			return nil, err
		}
		// Pre-create the files so the measured window holds only
		// steady-state writing, not the root-directory create dance.
		for i, w := range writers {
			if err := w.Create(fmt.Sprintf("/private%d.dat", i)); err != nil {
				c.Close()
				return nil, err
			}
		}
		ch := make(chan error, n)
		start := c.World.Clock.Now()
		for i, w := range writers {
			go func(i int, w *fs.FS) {
				_, err := workload.SeqWrite(workload.Frangipani{FS: w}, c.World.Clock,
					fmt.Sprintf("/private%d.dat", i), perMachine, 64<<10)
				ch <- err
			}(i, w)
		}
		for range writers {
			if err := <-ch; err != nil {
				c.Close()
				return nil, err
			}
		}
		elapsed := sim.Duration(c.World.Clock.Now() - start)
		c.Close()
		agg := mbps(perMachine*int64(n), elapsed)
		if n == 1 {
			base = agg
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", agg),
			fmt.Sprintf("%.1f", base*float64(n)),
			fmt.Sprintf("%.0f%%", agg/(base*float64(n))*100),
		})
	}
	return t, nil
}

func (o Options) newClusterNoReplicate() (*frangipani.Cluster, error) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.Compression = o.Compression
	cfg.PetalServers = o.PetalServers
	cfg.DisksPerServer = o.DisksPerServer
	cfg.DiskCapacity = 2 << 30
	cfg.NVRAM = 8 << 20
	cfg.NoReplicate = true
	return frangipani.NewCluster(cfg)
}

// Fig8Contention reproduces Figure 8: read throughput of N readers
// against one writer on a shared file, with and without read-ahead.
func (o Options) Fig8Contention() (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Reader/writer contention: aggregate read MB/s",
		Header: []string{"Readers", "No read-ahead", "With read-ahead"},
		Notes:  "Paper: WITH read-ahead throughput flattens near 2 MB/s (prefetched data is invalidated before delivery); WITHOUT read-ahead it scales.",
	}
	maxReaders := o.MaxMachines
	if maxReaders > 6 {
		maxReaders = 6
	}
	for n := 1; n <= maxReaders; n++ {
		var cols [2]float64
		for mode, ra := range []int{0, 8} {
			v, err := o.contentionRun(n, ra, 64<<10)
			if err != nil {
				return nil, err
			}
			cols[mode] = v
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", cols[0]),
			fmt.Sprintf("%.2f", cols[1]),
		})
	}
	return t, nil
}

// contentionRun measures aggregate reader throughput for one
// configuration of the Figure 8/9 rig.
func (o Options) contentionRun(readers, readAhead, writeBytes int) (float64, error) {
	c, err := o.newCluster(true, nil)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	writer, err := c.AddServerWithConfig("writer", contentionFSConfig(readAhead))
	if err != nil {
		return 0, err
	}
	fileSize := int64(1 << 20)
	if _, err := workload.SeqWrite(workload.Frangipani{FS: writer}, c.World.Clock, "/hot", fileSize, 64<<10); err != nil {
		return 0, err
	}
	if err := writer.Sync(); err != nil {
		return 0, err
	}
	var rfs []workload.FS
	for i := 0; i < readers; i++ {
		r, err := c.AddServerWithConfig(fmt.Sprintf("rd%d", i), contentionFSConfig(readAhead))
		if err != nil {
			return 0, err
		}
		rfs = append(rfs, workload.Frangipani{FS: r})
	}
	dur := 8 * time.Second
	if o.Quick {
		dur = 4 * time.Second
	}
	res, err := workload.ReaderWriterContention(c.World.Clock, workload.Frangipani{FS: writer},
		rfs, "/hot", fileSize, writeBytes, dur)
	if err != nil {
		return 0, err
	}
	return res.ReadMBps(), nil
}

func contentionFSConfig(readAhead int) frangipani.Config {
	cfg := frangipani.DefaultFSConfig()
	cfg.ReadAhead = readAhead
	cfg.Lock.HeartbeatEvery = 2 * time.Second
	cfg.Lock.SuspectAfter = 10 * time.Second
	// Faster revoke turnaround keeps the rig in the lock-handoff
	// regime the paper measures rather than waiting on retry ticks.
	cfg.Lock.RevokeRetry = 500 * time.Millisecond
	return cfg
}

// Fig9SharedSize reproduces Figure 9: reader throughput (read-ahead
// off) as the writer's shared region shrinks — less data to flush on
// each downgrade means faster lock handoffs.
func (o Options) Fig9SharedSize() (*Table, error) {
	t := &Table{
		ID:     "Figure 9",
		Title:  "Reader/writer contention vs. writer working-set size (read-ahead off)",
		Header: []string{"Readers", "8 KB", "16 KB", "64 KB"},
		Notes:  "Paper: smaller shared regions give higher reader throughput.",
	}
	sizes := []int{8 << 10, 16 << 10, 64 << 10}
	maxReaders := 4
	if o.Quick {
		maxReaders = 2
	}
	for n := 1; n <= maxReaders; n++ {
		row := []string{fmt.Sprint(n)}
		for _, sz := range sizes {
			v, err := o.contentionRun(n, 0, sz)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WriteSharing reproduces the third §9.4 experiment: N servers all
// rewriting the same file; the exclusive lock ping-pongs and each
// handoff flushes, so per-server rates collapse as writers are added.
func (o Options) WriteSharing() (*Table, error) {
	t := &Table{
		ID:     "Experiment W/W",
		Title:  "Write/write sharing: one file rewritten by N servers",
		Header: []string{"Writers", "Total writes/s", "Per-writer writes/s"},
		Notes:  "Paper's shape: aggregate ops collapse versus a single writer once the write lock ping-pongs.",
	}
	maxWriters := 4
	if o.Quick {
		maxWriters = 2
	}
	for n := 1; n <= maxWriters; n++ {
		c, err := o.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		setup, err := c.AddServer("setup")
		if err != nil {
			c.Close()
			return nil, err
		}
		if _, err := workload.SeqWrite(workload.Frangipani{FS: setup}, c.World.Clock, "/ww", 64<<10, 64<<10); err != nil {
			c.Close()
			return nil, err
		}
		if err := setup.Sync(); err != nil {
			c.Close()
			return nil, err
		}
		var wfs []workload.FS
		for i := 0; i < n; i++ {
			w, err := c.AddServerWithConfig(fmt.Sprintf("wr%d", i), contentionFSConfig(0))
			if err != nil {
				c.Close()
				return nil, err
			}
			wfs = append(wfs, workload.Frangipani{FS: w})
		}
		dur := 8 * time.Second
		if o.Quick {
			dur = 4 * time.Second
		}
		res, err := workload.WriteSharing(c.World.Clock, wfs, "/ww", 16<<10, dur)
		c.Close()
		if err != nil {
			return nil, err
		}
		rate := float64(res.WriterOps) / res.Elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f", rate/float64(n)),
		})
	}
	return t, nil
}

// AblationSyncLog measures the latency cost of synchronous log
// writes (§4's optional mode) on the create-heavy Connectathon test.
func (o Options) AblationSyncLog() (*Table, error) {
	t := &Table{
		ID:     "Ablation: sync log",
		Title:  "Metadata latency with asynchronous vs synchronous logging",
		Header: []string{"Mode", "create/remove (ms)", "mkdir/rmdir (ms)", "write small (ms)"},
		Notes:  "§4: synchronous logging 'offers slightly better failure semantics at the cost of increased latency'; NVRAM absorbs much of it.",
	}
	for _, mode := range []struct {
		name string
		sync bool
	}{{"async (default)", false}, {"sync log", true}} {
		c, err := o.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		fss, err := mountN(c, 1, func(fc *frangipani.Config) { fc.SyncLog = mode.sync })
		if err != nil {
			c.Close()
			return nil, err
		}
		times, err := o.connSize().Run(workload.Frangipani{FS: fss[0]}, c.World.Clock, "/abl")
		c.Close()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{mode.name, ms(times[0]), ms(times[1]), ms(times[5])})
	}
	return t, nil
}

// WritebackPipeline measures the pipelined write-back path: the same
// dirty-page workload is flushed once through the serial path
// (FlushParallelism=1, one Petal write per coalesced run) and once
// through the pipelined path (scatter-gather WriteV batches dispatched
// by a worker pool), comparing update-demon Sync latency and Petal
// write-RPC counts.
func (o Options) WritebackPipeline() (*Table, error) {
	t := &Table{
		ID:     "Write-back pipeline",
		Title:  "Sync latency and Petal write RPCs: serial vs pipelined write-back",
		Header: []string{"Mode", "Sync (ms)", "write RPCs", "of which WriteV", "flush runs"},
		Notes:  "Same dirty set both rows; WriteV carries many coalesced runs per RPC and runs flush concurrently, so both latency and RPC count drop.",
	}
	files := 24
	if o.Quick {
		files = 12
	}
	for _, mode := range []struct {
		name string
		par  int
	}{
		{"serial (par=1)", 1},
		{"pipelined (par=8)", 8},
	} {
		c, err := o.newCluster(true, nil)
		if err != nil {
			return nil, err
		}
		fss, err := mountN(c, 1, func(fc *frangipani.Config) { fc.FlushParallelism = mode.par })
		if err != nil {
			c.Close()
			return nil, err
		}
		f := fss[0]
		if err := f.Mkdir("/wb"); err != nil {
			c.Close()
			return nil, err
		}
		buf := make([]byte, 32<<10)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		for i := 0; i < files; i++ {
			h, err := f.OpenFile(fmt.Sprintf("/wb/f%d", i), true)
			if err != nil {
				c.Close()
				return nil, err
			}
			if _, err := h.WriteAt(buf, 0); err != nil {
				c.Close()
				return nil, err
			}
		}
		before := f.PetalStats()
		start := c.World.Clock.Now()
		if err := f.Sync(); err != nil {
			c.Close()
			return nil, err
		}
		dur := sim.Duration(c.World.Clock.Now() - start)
		after := f.PetalStats()
		st := f.Stats()
		c.Close()
		rpcs := (after.WriteRPCs + after.WriteVRPCs) - (before.WriteRPCs + before.WriteVRPCs)
		t.Rows = append(t.Rows, []string{
			mode.name,
			ms(dur),
			fmt.Sprintf("%d", rpcs),
			fmt.Sprintf("%d", after.WriteVRPCs-before.WriteVRPCs),
			fmt.Sprintf("%d", st.FlushRuns),
		})
	}
	return t, nil
}

// SmallReads reproduces the §9.2 small-file experiment: 30 readers of
// separate 8 KB files on one machine, cold cache (CPU-bound in the
// paper at 6.3 of 8 MB/s).
func (o Options) SmallReads() (*Table, error) {
	t := &Table{
		ID:     "Exp §9.2 small reads",
		Title:  "30 concurrent 8 KB file reads on one machine, cold cache",
		Header: []string{"System", "Aggregate MB/s"},
		Notes:  "Paper: Frangipani 6.3 MB/s, CPU-bound, ~80% of the raw-Petal 8 MB/s ceiling.",
	}
	readers := 30
	if o.Quick {
		readers = 10
	}
	c, err := o.newCluster(true, nil)
	if err != nil {
		return nil, err
	}
	prep, err := c.AddServer("prep")
	if err != nil {
		c.Close()
		return nil, err
	}
	reader, err := c.AddServer("reader")
	if err != nil {
		c.Close()
		return nil, err
	}
	bytes, dur, err := workload.SmallReadSwarm(workload.Frangipani{FS: prep},
		workload.Frangipani{FS: reader}, c.World.Clock, "/small", readers, 8<<10)
	c.Close()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Frangipani", fmt.Sprintf("%.2f", mbps(bytes, dur))})
	return t, nil
}

// All runs every experiment in order.
func (o Options) All() ([]*Table, error) {
	type exp struct {
		name string
		fn   func() (*Table, error)
	}
	exps := []exp{
		{"table1", o.Table1MAB},
		{"table2", o.Table2Connectathon},
		{"table3", o.Table3Throughput},
		{"fig5", o.Fig5ScalingMAB},
		{"fig6", o.Fig6ReadScaling},
		{"fig7", func() (*Table, error) { return o.Fig7WriteScaling(false) }},
		{"fig7-norepl", func() (*Table, error) { return o.Fig7WriteScaling(true) }},
		{"fig8", o.Fig8Contention},
		{"fig9", o.Fig9SharedSize},
		{"wshare", o.WriteSharing},
		{"smallreads", o.SmallReads},
		{"ablation-synclog", o.AblationSyncLog},
		{"writeback-pipeline", o.WritebackPipeline},
		{"read-scaling", o.ReadScaling},
		{"obs-overhead", o.ObsOverhead},
		{"obs-smoke", o.ObsSmoke},
		{"codec-mux", o.CodecMux},
		{"lock-scaling", o.LockScaling},
		{"scale-sweep", o.ScaleSweep},
		{"forensics-smoke", o.ForensicsSmoke},
		{"noisy-neighbor-obs", o.NoisyNeighborObs},
	}
	var out []*Table
	for _, e := range exps {
		tb, err := e.fn()
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, tb)
	}
	return out, nil
}

// ByName runs one experiment by its short name.
func (o Options) ByName(name string) (*Table, error) {
	switch name {
	case "table1":
		return o.Table1MAB()
	case "table2":
		return o.Table2Connectathon()
	case "table3":
		return o.Table3Throughput()
	case "fig5":
		return o.Fig5ScalingMAB()
	case "fig6":
		return o.Fig6ReadScaling()
	case "fig7":
		return o.Fig7WriteScaling(false)
	case "fig7-norepl":
		return o.Fig7WriteScaling(true)
	case "fig8":
		return o.Fig8Contention()
	case "fig9":
		return o.Fig9SharedSize()
	case "wshare":
		return o.WriteSharing()
	case "smallreads":
		return o.SmallReads()
	case "ablation-synclog":
		return o.AblationSyncLog()
	case "writeback-pipeline":
		return o.WritebackPipeline()
	case "read-scaling":
		return o.ReadScaling()
	case "obs-overhead":
		return o.ObsOverhead()
	case "obs-smoke":
		return o.ObsSmoke()
	case "contention-profile":
		return o.ContentionProfile()
	case "codec-mux":
		return o.CodecMux()
	case "lock-scaling":
		return o.LockScaling()
	case "scale-sweep":
		return o.ScaleSweep()
	case "forensics-smoke":
		return o.ForensicsSmoke()
	case "noisy-neighbor-obs":
		return o.NoisyNeighborObs()
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", name)
}
