package bench

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"frangipani/internal/lockservice"
	"frangipani/internal/obs"
	"frangipani/internal/sim"
)

// lockScaleArtifact is where LockScaling dumps the lockservice
// timeline when its assertions fail, so CI preserves the evidence.
const lockScaleArtifact = "FORENSICS_lock-scaling.json"

// lockScaleRes is one measured lock-scaling run.
type lockScaleRes struct {
	servers    int
	ops        int64        // acquires completed in the measured window
	opsPerSec  float64      // simulated throughput
	p50, p99   sim.Duration // acquire latency percentiles
	batches    int64        // AcquireBatch/ReleaseBatch messages sent
	batchedOps int64        // lock ops carried inside those batches
	wrongShard int64        // wrong-shard nacks across all servers
	handoffs   int          // handoff begin events journaled
	epochs     int          // shard-map epoch-change events journaled
	events     []obs.Event  // lockservice timeline (for failure dumps)
}

// LockScaling measures the lock service's capacity wall: the same
// contended acquire/release workload against 1 lock-server shard and
// against 4, with a crash/restart shard handoff driven through the
// middle of the 4-server run. The experiment fails unless contended
// acquire p99 improves at least 2x and throughput scales at least
// 1.5x from 1 to 4 servers, AND the hard paths actually fired:
// wrong-shard nacks (stale shard maps healed by refetch) and a
// journaled handoff begin/end pair. Run by `make bench-smoke`.
func (o Options) LockScaling() (*Table, error) {
	t := &Table{
		ID:     "Lock scaling",
		Title:  "Contended lock throughput and acquire p99 vs lock-server shard count",
		Header: []string{"Servers", "Ops", "Ops/s", "p50 (ms)", "p99 (ms)", "Batched ops/msg", "WrongShard", "Handoffs"},
		Notes:  "Gates: p99(1)/p99(4) >= 2, ops/s(4)/ops/s(1) >= 1.5; 4-server run must nack stale routes and complete a mid-run handoff.",
	}
	r1, err := o.lockScaleRun(1, false)
	if err != nil {
		return nil, err
	}
	r4, err := o.lockScaleRun(4, true)
	if err != nil {
		return nil, err
	}
	for _, r := range []*lockScaleRes{r1, r4} {
		perMsg := 0.0
		if r.batches > 0 {
			perMsg = float64(r.batchedOps) / float64(r.batches)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.servers),
			fmt.Sprint(r.ops),
			fmt.Sprintf("%.0f", r.opsPerSec),
			ms(r.p50), ms(r.p99),
			fmt.Sprintf("%.1f", perMsg),
			fmt.Sprint(r.wrongShard),
			fmt.Sprint(r.handoffs),
		})
	}

	p99Ratio := float64(r1.p99) / float64(r4.p99)
	tputRatio := r4.opsPerSec / r1.opsPerSec
	t.Rows = append(t.Rows, []string{"ratio 1->4", "", fmt.Sprintf("%.2fx", tputRatio),
		"", fmt.Sprintf("%.2fx", p99Ratio), "", "", ""})

	fail := func(err error) error { return o.lockScaleFail(r4, err) }
	if r4.wrongShard == 0 {
		return nil, fail(fmt.Errorf("lock-scaling: no wrong-shard nacks — the stale-epoch retry path never fired"))
	}
	if r4.handoffs == 0 {
		return nil, fail(fmt.Errorf("lock-scaling: no handoff begin/end journaled despite crash/restart"))
	}
	if r4.epochs == 0 {
		return nil, fail(fmt.Errorf("lock-scaling: no shard-map epoch changes journaled"))
	}
	if p99Ratio < 2.0 {
		return nil, fail(fmt.Errorf("lock-scaling: p99 improved only %.2fx from 1 to 4 servers (want >= 2x): p99(1)=%s p99(4)=%s",
			p99Ratio, ms(r1.p99), ms(r4.p99)))
	}
	if tputRatio < 1.5 {
		return nil, fail(fmt.Errorf("lock-scaling: throughput scaled only %.2fx from 1 to 4 servers (want >= 1.5x): %.0f -> %.0f ops/s",
			tputRatio, r1.opsPerSec, r4.opsPerSec))
	}
	return t, nil
}

// lockScaleRun drives the contended workload against nServers lock
// servers. With handoff set, one shard owner is crashed and restarted
// while traffic still flows (after the measured window, so the gates
// compare steady states; safety across the handoff is asserted by the
// workers finishing without error and by the journaled evidence).
func (o Options) lockScaleRun(nServers int, handoff bool) (*lockScaleRes, error) {
	// The workload is sized to straddle the modelled capacity wall.
	// The per-message CPU cost is scaled up (1 ms/msg) so the wall sits
	// near 1k messages/s — low enough that even a 1-core CI host
	// simulates the whole run faithfully — and the clock is DILATED
	// (compression 0.4) so the host's timer overshoot, a fixed real-
	// time tax of a few ms per message hop, shrinks in simulated terms
	// instead of swamping the model. Ten workers stride-walking 256
	// locks make nearly every acquire a cross-clerk revoke handover of
	// an idle sticky grant — a short message chain, not a wait behind
	// an active critical section — so aggregate demand (~2 messages
	// per handover) exceeds one server's capacity while four servers
	// keep headroom.
	const (
		nClerks  = 5
		nWorkers = 2 // per clerk
		nLocks   = 256
		holdFor  = 200 * time.Microsecond
		comp     = 0.4
	)
	measureFor := 10 * time.Second
	if o.Quick {
		measureFor = 5 * time.Second
	}

	w := sim.NewWorld(comp, 23)
	defer w.Stop()
	cfg := lockservice.DefaultConfig()
	cfg.Shards = lockservice.DefaultShards
	cfg.CPUPerMsg = time.Millisecond
	cfg.CPUPerOp = 100 * time.Microsecond
	// Fast failure detection so the handoff fits the run: suspect in
	// 3 s, retry revokes and renew (map-epoch piggyback) every 500 ms.
	cfg.HeartbeatEvery = 500 * time.Millisecond
	cfg.SuspectAfter = 3 * time.Second
	cfg.RevokeRetry = 500 * time.Millisecond

	names := make([]string, nServers)
	for i := range names {
		names[i] = fmt.Sprintf("ls%d", i)
	}
	servers := make([]*lockservice.Server, nServers)
	for i, n := range names {
		servers[i] = lockservice.NewServer(w, n, names, cfg)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	clerks := make([]*lockservice.Clerk, nClerks)
	for i := range clerks {
		c := lockservice.NewClerk(w, fmt.Sprintf("lw%d", i), "scale", names, cfg)
		c.SetCallbacks(func(lock uint64, to lockservice.Mode) {}, nil, nil)
		if err := c.Open(); err != nil {
			return nil, fmt.Errorf("lock-scaling: open clerk %d: %v", i, err)
		}
		defer c.Close()
		clerks[i] = c
	}

	var (
		measuring, stopped atomic.Bool
		measuredOps        atomic.Int64
		workerErr          atomic.Value
		latMu              sync.Mutex
		lats               []sim.Duration
		wg                 sync.WaitGroup
	)
	// Every worker walks all the locks with its own stride (odd, so
	// coprime with the power-of-two lock count), making nearly every
	// acquire a cross-clerk handover (request, revoke, release, grant)
	// rather than a free sticky re-grant.
	strides := []uint64{3, 5, 7, 9, 11, 13, 15, 17, 19, 21}
	for ci, c := range clerks {
		for wk := 0; wk < nWorkers; wk++ {
			wg.Add(1)
			go func(c *lockservice.Clerk, ci, wk int) {
				defer wg.Done()
				stride := strides[(ci*nWorkers+wk)%len(strides)]
				cursor := uint64(ci*nWorkers + wk)
				var local []sim.Duration
				for !stopped.Load() {
					cursor += stride
					lock := cursor % nLocks
					counted := measuring.Load()
					t0 := w.Clock.Now()
					if err := c.Lock(lock, lockservice.Exclusive); err != nil {
						workerErr.Store(fmt.Errorf("worker %d.%d lock %d: %v", ci, wk, lock, err))
						return
					}
					if counted && measuring.Load() {
						local = append(local, sim.Duration(w.Clock.Now()-t0))
						measuredOps.Add(1)
					}
					w.Clock.Sleep(holdFor)
					c.Unlock(lock)
				}
				latMu.Lock()
				lats = append(lats, local...)
				latMu.Unlock()
			}(c, ci, wk)
		}
	}

	// Warm up (sessions open, sticky grants in motion), then measure.
	w.Clock.Sleep(2 * time.Second)
	measuring.Store(true)
	t0 := w.Clock.Now()
	w.Clock.Sleep(measureFor)
	measuring.Store(false)
	elapsed := sim.Duration(w.Clock.Now() - t0)

	res := &lockScaleRes{servers: nServers}
	if handoff {
		handoffs, epochs, err := o.lockScaleHandoff(w, servers, clerks, names)
		if err != nil {
			stopped.Store(true)
			wg.Wait()
			res.events = obs.MergeTimeline(w.Obs.Journals(), obs.Filter{Layer: "lockservice"})
			return nil, o.lockScaleFail(res, err)
		}
		res.handoffs, res.epochs = handoffs, epochs
	}
	stopped.Store(true)
	wg.Wait()
	if err, _ := workerErr.Load().(error); err != nil {
		res.events = obs.MergeTimeline(w.Obs.Journals(), obs.Filter{Layer: "lockservice"})
		return nil, o.lockScaleFail(res, fmt.Errorf("lock-scaling: %w", err))
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return nil, fmt.Errorf("lock-scaling: no acquires completed in the measured window")
	}
	res.ops = measuredOps.Load()
	res.opsPerSec = float64(res.ops) / elapsed.Seconds()
	res.p50 = lats[len(lats)/2]
	res.p99 = lats[len(lats)*99/100]
	for _, n := range names {
		res.wrongShard += w.Obs.Counter("lockservice.server.wrongshard#" + n).Value()
	}
	for i := range clerks {
		m := fmt.Sprintf("lw%d", i)
		res.batches += w.Obs.Counter("lockservice.clerk.batches#" + m).Value()
		res.batchedOps += w.Obs.Counter("lockservice.clerk.batched_ops#" + m).Value()
	}
	res.events = obs.MergeTimeline(w.Obs.Journals(), obs.Filter{Layer: "lockservice"})
	return res, nil
}

// lockScaleHandoff crashes one shard owner under load, waits for its
// shards to move to the survivors, brings it back (moving them again),
// then deliberately stales every clerk's shard map so the wrong-shard
// nack/refetch path fires deterministically under load. (A real
// reassignment heals clerks almost immediately — the new owner's sync
// request triggers a map refetch — so racing one only nacks by luck.)
// It returns the handoff-begin and shard-map epoch-change counts read
// from the journals right away, before the run's grant/revoke chatter
// can evict those rare events from the bounded rings.
func (o Options) lockScaleHandoff(w *sim.World, servers []*lockservice.Server, clerks []*lockservice.Clerk, names []string) (handoffs, epochs int, err error) {
	until := func(what string, f func() bool) error {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if f() {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("lock-scaling: %s never happened", what)
	}
	victim := names[1]
	servers[1].Crash()
	if err := until("crashed server's shards reassigned", func() bool {
		st := servers[0].State()
		if st.Alive[victim] {
			return false
		}
		for _, s := range st.Assignment {
			if s == victim {
				return false
			}
		}
		return true
	}); err != nil {
		return 0, 0, err
	}
	servers[1].Restart()
	if err := until("restarted server re-owns shards", func() bool {
		st := servers[0].State()
		if !st.Alive[victim] {
			return false
		}
		for _, s := range st.Assignment {
			if s == victim {
				return true
			}
		}
		return false
	}); err != nil {
		return 0, 0, err
	}
	for _, e := range obs.MergeTimeline(w.Obs.Journals(), obs.Filter{Layer: "lockservice"}) {
		switch {
		case e.Op == "handoff" && e.Kind == "begin":
			handoffs++
		case e.Op == "shardmap" && e.Kind == "epoch":
			epochs++
		}
	}
	// Stale every clerk's map: their next batches are misrouted, the
	// live non-owners nack, and the clerks refetch and retry. The
	// restart above leaves refetches in flight (each clerk relearns
	// routing when the new owner syncs), and one of those can land
	// after the injection and repair the map before a batch went out —
	// so keep re-staling until a nack proves a misroute really
	// happened.
	if err := until("wrong-shard nacks recorded", func() bool {
		var nacks int64
		for _, n := range names {
			nacks += w.Obs.Counter("lockservice.server.wrongshard#" + n).Value()
		}
		if nacks > 0 {
			return true
		}
		for _, c := range clerks {
			c.InjectStaleShardMap()
		}
		return false
	}); err != nil {
		return handoffs, epochs, err
	}
	return handoffs, epochs, nil
}

// lockScaleFail dumps the lockservice timeline to lockScaleArtifact so
// a failed CI run leaves the evidence behind, then returns err.
func (o Options) lockScaleFail(r *lockScaleRes, err error) error {
	dump := obs.ForensicsDump{
		Schema:    obs.ForensicsSchema,
		TakenAtNs: time.Now().UnixNano(),
		Reason:    "lock-scaling: " + err.Error(),
		Events:    r.events,
	}
	if werr := os.WriteFile(lockScaleArtifact, []byte(dump.JSON()), 0o644); werr == nil {
		return fmt.Errorf("%w (timeline dumped to %s)", err, lockScaleArtifact)
	}
	return err
}
