package bench

import (
	"fmt"
	"sort"
	"strings"

	"frangipani"
	"frangipani/internal/sim"
)

// wbSyncLatency runs the write-back pipeline workload (the PR 1
// benchmark: 24 files x 32 KB dirtied, then one update-demon Sync)
// and returns the Sync latency. noObs disables the metrics registry
// and tracer so the difference between the two runs is pure
// instrumentation overhead; noJournal keeps metrics and tracing but
// turns off just the flight recorder, isolating the recorder's cost;
// noAcct likewise isolates the per-principal account table.
func (o Options) wbSyncLatency(par int, noObs, noJournal, noAcct bool) (sim.Duration, error) {
	c, err := o.newCluster(true, func(cc *frangipani.ClusterConfig) {
		cc.NoObs = noObs
		cc.NoAccounting = noAcct
	})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if noJournal {
		c.Obs().SetJournal(false)
	}
	fss, err := mountN(c, 1, func(fc *frangipani.Config) { fc.FlushParallelism = par })
	if err != nil {
		return 0, err
	}
	f := fss[0]
	if err := f.Mkdir("/wb"); err != nil {
		return 0, err
	}
	files := 24
	if o.Quick {
		files = 12
	}
	buf := make([]byte, 32<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	for i := 0; i < files; i++ {
		h, err := f.OpenFile(fmt.Sprintf("/wb/f%d", i), true)
		if err != nil {
			return 0, err
		}
		if _, err := h.WriteAt(buf, 0); err != nil {
			return 0, err
		}
	}
	start := c.World.Clock.Now()
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return sim.Duration(c.World.Clock.Now() - start), nil
}

// ObsOverhead measures the cost of the observability layer: the
// write-back pipeline workload run with the full metrics registry and
// tracer enabled versus the NoObs ablation, for both the serial and
// pipelined flush paths. The acceptance budget is <= 5% added Sync
// latency. A third row isolates the flight recorder (obs on, journal
// on vs off) and FAILS the experiment if the recorder alone adds more
// than 1% to the serial path — the PR 7 overhead budget, enforced in
// CI.
func (o Options) ObsOverhead() (*Table, error) {
	t := &Table{
		ID:     "Observability overhead",
		Title:  "Sync latency with and without metrics/tracing instrumentation",
		Header: []string{"Mode", "obs on (ms)", "obs off (ms)", "overhead"},
		Notes:  "Latencies are simulated time; instrumentation runs on the host, so overhead only shows up when host-side work delays simulated events. Budget: <= 5% for the full obs stack, <= 1% for the flight recorder alone (serial).",
	}
	trials := 3
	if o.Quick {
		trials = 1
	}
	// Host scheduling noise leaks into simulated latency; the minimum
	// over trials isolates the intrinsic cost of the instrumentation.
	best := func(par, trials int, noObs, noJournal bool) (sim.Duration, error) {
		var min sim.Duration
		for i := 0; i < trials; i++ {
			d, err := o.wbSyncLatency(par, noObs, noJournal, false)
			if err != nil {
				return 0, err
			}
			if i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	for _, mode := range []struct {
		name string
		par  int
	}{
		{"serial (par=1)", 1},
		{"pipelined (par=8)", 8},
	} {
		on, err := best(mode.par, trials, false, false)
		if err != nil {
			return nil, err
		}
		off, err := best(mode.par, trials, true, false)
		if err != nil {
			return nil, err
		}
		overhead := 0.0
		if off > 0 {
			overhead = (float64(on) - float64(off)) / float64(off) * 100
		}
		t.Rows = append(t.Rows, []string{
			mode.name, ms(on), ms(off), fmt.Sprintf("%+.1f%%", overhead),
		})
	}
	// Recorder ablation: same workload, metrics and tracing on in both
	// runs, only the journal differs. This row is a CI gate, so it
	// gets full noise isolation regardless of -quick: the full (24
	// file) workload with the clock dilated 2x — host stalls then
	// count half in simulated time against a 2x larger baseline,
	// pushing the noise floor well under the 1% budget — and five
	// trials, interleaved with/without pairs so slow host drift hits
	// both cells equally, minima compared.
	oj := o
	oj.Quick = false
	if oj.Compression > 0.5 {
		oj.Compression = 0.5
	}
	// gated measures one ablation row against the 1% budget: five
	// interleaved with/without pairs, minima compared. If the first
	// round misses the budget it runs one more round with minima kept
	// across rounds — a transient host stall that contaminated the
	// first round's minimum gets replaced by a cleaner sample, while a
	// genuine systematic overhead persists and still fails.
	gated := func(with, without func() (sim.Duration, error)) (on, off sim.Duration, overhead float64, err error) {
		first := true
		for round := 0; round < 2; round++ {
			for i := 0; i < 5; i++ {
				var w, n sim.Duration
				if w, err = with(); err != nil {
					return
				}
				if n, err = without(); err != nil {
					return
				}
				if first || w < on {
					on = w
				}
				if first || n < off {
					off = n
				}
				first = false
			}
			overhead = 0.0
			if off > 0 {
				overhead = (float64(on) - float64(off)) / float64(off) * 100
			}
			if overhead <= 1.0 {
				break
			}
		}
		return
	}
	withJr, noJr, jrOverhead, err := gated(
		func() (sim.Duration, error) { return oj.wbSyncLatency(1, false, false, false) },
		func() (sim.Duration, error) { return oj.wbSyncLatency(1, false, true, false) },
	)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"serial, recorder only", ms(withJr), ms(noJr), fmt.Sprintf("%+.1f%%", jrOverhead),
	})
	if jrOverhead > 1.0 {
		return nil, fmt.Errorf("obs-overhead: flight recorder adds %.1f%% to serial Sync latency (budget 1%%)", jrOverhead)
	}
	// Accounting ablation: metrics, tracing, and journal identical in
	// both runs, only the per-principal account table differs (this
	// workload is unbound, so the cost measured is the hot-path
	// charge-to-"unknown" work). Same CI gate and noise isolation as
	// the recorder row.
	withAcct, noAcct, acctOverhead, err := gated(
		func() (sim.Duration, error) { return oj.wbSyncLatency(1, false, false, false) },
		func() (sim.Duration, error) { return oj.wbSyncLatency(1, false, false, true) },
	)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"serial, accounting only", ms(withAcct), ms(noAcct), fmt.Sprintf("%+.1f%%", acctOverhead),
	})
	if acctOverhead > 1.0 {
		return nil, fmt.Errorf("obs-overhead: accounting adds %.1f%% to serial Sync latency (budget 1%%)", acctOverhead)
	}
	return t, nil
}

// ObsSmoke exercises the observability stack end to end on a tiny
// workload and fails if it is dark: the registry snapshot must be
// non-empty and the span tree of a Sync must cover the fs, wal,
// lockservice, and petal layers. Run by `make bench-smoke` in CI.
func (o Options) ObsSmoke() (*Table, error) {
	t := &Table{
		ID:     "Observability smoke",
		Title:  "Metrics snapshot and cross-layer trace after a small workload",
		Header: []string{"Check", "Result"},
	}
	c, err := o.newCluster(true, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	fss, err := mountN(c, 1, nil)
	if err != nil {
		return nil, err
	}
	f := fss[0]
	if err := f.Mkdir("/smoke"); err != nil {
		return nil, err
	}
	h, err := f.OpenFile("/smoke/a", true)
	if err != nil {
		return nil, err
	}
	if _, err := h.WriteAt(make([]byte, 8<<10), 0); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	reg := c.Obs()
	snap := reg.Snapshot()
	if snap.Empty() {
		return nil, fmt.Errorf("obs-smoke: metrics snapshot is empty after workload")
	}
	tr := reg.Tracer()
	layers := map[string]bool{}
	for _, sp := range tr.SpansFor(tr.LastRoot()) {
		layers[sp.Layer] = true
	}
	for _, want := range []string{"fs", "wal", "lockservice", "petal"} {
		if !layers[want] {
			return nil, fmt.Errorf("obs-smoke: Sync trace has no %q span (got %v)", want, layers)
		}
	}
	var names []string
	for l := range layers {
		names = append(names, l)
	}
	sort.Strings(names)
	t.Rows = append(t.Rows, []string{"counters", fmt.Sprintf("%d", len(snap.Counters))})
	t.Rows = append(t.Rows, []string{"histograms", fmt.Sprintf("%d", len(snap.Histograms))})
	t.Rows = append(t.Rows, []string{"sync trace layers", strings.Join(names, " ")})
	return t, nil
}
