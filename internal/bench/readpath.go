package bench

import (
	"fmt"

	"frangipani"
	"frangipani/internal/fs"
	"frangipani/internal/petal"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

// ReadScaling exercises the scatter-gather read path end to end and
// asserts the two properties the path exists for:
//
//  1. streaming: N machines each reading a private file, cold caches —
//     aggregate throughput should grow near-linearly (the replica
//     balancer spreads chunk reads over both copies, so no single
//     Petal server's link is the ceiling);
//  2. hot-primary: several machines hammering a chunk set that all
//     shares ONE primary server. Primary-only routing bottlenecks on
//     that server's link; balanced routing splits each chunk between
//     its two replicas. ASSERTED: balanced >= 1.5x primary-only.
//  3. readdir: a cold machine enumerating a directory. A per-entry
//     stat scan pays one Petal read per inode sector; ReadDirPlus
//     batches them into scatter-gather ReadV RPCs. ASSERTED: the
//     batched scan issues <= 50% of the stat scan's read RPCs.
func (o Options) ReadScaling() (*Table, error) {
	t := &Table{
		ID:     "Read scaling",
		Title:  "Scatter-gather read path: streaming, replica balance, batched metadata",
		Header: []string{"Workload", "Mode", "Result", "Ratio"},
		Notes:  "Asserted in-experiment: balanced >= 1.5x primary-only on a hot-primary chunk set; ReadDirPlus <= 50% of the stat scan's Petal read RPCs.",
	}
	if err := o.readStreamRows(t); err != nil {
		return nil, err
	}
	if err := o.readBalanceRows(t); err != nil {
		return nil, err
	}
	if err := o.readDirRows(t); err != nil {
		return nil, err
	}
	return t, nil
}

// readStreamRows: N machines stream disjoint files with cold caches.
func (o Options) readStreamRows(t *Table) error {
	perMachine := o.seqBytes()
	os := o.scaled()
	maxN := o.MaxMachines
	if o.Quick && maxN > 4 {
		maxN = 4
	}
	for n := 1; n <= maxN; n++ {
		c, err := os.newCluster(true, nil)
		if err != nil {
			return err
		}
		writer, err := c.AddServer("writer")
		if err != nil {
			c.Close()
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := workload.SeqWrite(workload.Frangipani{FS: writer}, c.World.Clock,
				fmt.Sprintf("/stream%d.dat", i), perMachine, 64<<10); err != nil {
				c.Close()
				return err
			}
		}
		if err := writer.Sync(); err != nil {
			c.Close()
			return err
		}
		readers, err := mountN(c, n, nil)
		if err != nil {
			c.Close()
			return err
		}
		ch := make(chan error, n)
		start := c.World.Clock.Now()
		for i, r := range readers {
			go func(i int, r *fs.FS) {
				_, _, err := workload.SeqRead(workload.Frangipani{FS: r}, c.World.Clock,
					fmt.Sprintf("/stream%d.dat", i), 64<<10)
				ch <- err
			}(i, r)
		}
		for range readers {
			if err := <-ch; err != nil {
				c.Close()
				return err
			}
		}
		elapsed := sim.Duration(c.World.Clock.Now() - start)
		c.Close()
		agg := mbps(perMachine*int64(n), elapsed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("stream N=%d", n),
			"balanced",
			fmt.Sprintf("%.1f MB/s", agg),
			fmt.Sprintf("%.1f MB/s per machine", agg/float64(n)),
		})
	}
	return nil
}

// readBalanceRows: the asserted >= 1.5x, on the 3-server 2-way
// replicated cluster. Using the placement function, pick a chunk set
// whose primaries all land on one Petal server, then have several
// client machines stream it — once with reads pinned to the primary
// (that server's link is the ceiling), once with the replica balancer
// splitting every client's extents across both copies.
func (o Options) readBalanceRows(t *Table) error {
	const chunks, passes = 16, 2
	readers := 6
	if o.Quick {
		readers = 4
	}
	os := o.scaled()
	var base float64
	for _, mode := range []struct {
		name    string
		balance bool
	}{
		{"primary-only", false},
		{"balanced", true},
	} {
		c, err := os.newCluster(true, func(cc *frangipani.ClusterConfig) {
			// The acceptance rig: 3 Petal servers, 2-way replication.
			// Enough disks that the hot server's network link, not its
			// arms, is the bottleneck the balancer relieves.
			cc.PetalServers = 3
			cc.DisksPerServer = 6
		})
		if err != nil {
			return err
		}
		pc := c.Client("prep")
		const v = petal.VDiskID("hot")
		if err := pc.CreateVDisk(v); err != nil {
			c.Close()
			return err
		}
		st, err := pc.State()
		if err != nil {
			c.Close()
			return err
		}
		hot := c.PetalServerNames()[0]
		var hotChunks []int64
		for ch := int64(0); len(hotChunks) < chunks && ch < 8192; ch++ {
			if p, _ := st.Replicas(v, ch); p == hot {
				hotChunks = append(hotChunks, ch)
			}
		}
		if len(hotChunks) < chunks {
			c.Close()
			return fmt.Errorf("read-scaling: only %d/%d chunks place their primary on %s", len(hotChunks), chunks, hot)
		}
		buf := make([]byte, petal.ChunkSize)
		for i := range buf {
			buf[i] = byte(i * 131)
		}
		for _, chk := range hotChunks {
			if err := pc.Write(v, chk*petal.ChunkSize, buf); err != nil {
				c.Close()
				return err
			}
		}
		clients := make([]*petal.Client, readers)
		for i := range clients {
			clients[i] = c.Client(fmt.Sprintf("rd%d", i))
			clients[i].SetReadBalance(mode.balance)
		}
		errs := make(chan error, readers)
		start := c.World.Clock.Now()
		for _, rc := range clients {
			go func(rc *petal.Client) {
				// Each client streams the whole hot set `passes` times
				// as 8 concurrent scatter-gather reads, keeping the
				// pipeline full the way the fs prefetcher does.
				n := len(hotChunks) * passes
				dst := make([]byte, petal.ChunkSize*int64(n))
				exts := make([]petal.ReadExtent, n)
				for j := 0; j < n; j++ {
					chk := hotChunks[j%len(hotChunks)]
					exts[j] = petal.ReadExtent{
						Off: chk * petal.ChunkSize,
						Dst: dst[int64(j)*petal.ChunkSize : int64(j+1)*petal.ChunkSize],
					}
				}
				const g = 8
				sub := make(chan error, g)
				per := (n + g - 1) / g
				calls := 0
				for s := 0; s < n; s += per {
					e := s + per
					if e > n {
						e = n
					}
					calls++
					go func(part []petal.ReadExtent) { sub <- rc.ReadV(v, part) }(exts[s:e])
				}
				var first error
				for i := 0; i < calls; i++ {
					if err := <-sub; err != nil && first == nil {
						first = err
					}
				}
				errs <- first
			}(rc)
		}
		for range clients {
			if err := <-errs; err != nil {
				c.Close()
				return err
			}
		}
		elapsed := sim.Duration(c.World.Clock.Now() - start)
		var backup int64
		for _, rc := range clients {
			backup += rc.Stats().ReadBackup
		}
		c.Close()
		total := int64(readers) * int64(passes) * int64(len(hotChunks)) * petal.ChunkSize
		agg := mbps(total, elapsed)
		ratio := "1.00x (baseline)"
		if mode.balance {
			r := agg / base
			ratio = fmt.Sprintf("%.2fx (assert >= 1.5x)", r)
			if r < 1.5 {
				return fmt.Errorf("read-scaling: balanced %.1f MB/s vs primary-only %.1f MB/s = %.2fx; want >= 1.5x", agg, base, r)
			}
			if backup == 0 {
				return fmt.Errorf("read-scaling: balanced mode never routed a read to a backup replica")
			}
		} else {
			base = agg
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("hot-primary %d rd x %d chunks", readers, len(hotChunks)),
			mode.name,
			fmt.Sprintf("%.1f MB/s", agg),
			ratio,
		})
	}
	return nil
}

// readDirRows: the asserted <= 50% RPC reduction. Two cold machines
// enumerate the same directory: one with ReadDir plus a Stat per
// entry, one with ReadDirPlus.
func (o Options) readDirRows(t *Table) error {
	files := 60
	if o.Quick {
		files = 30
	}
	c, err := o.newCluster(true, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	setup, err := c.AddServer("setup")
	if err != nil {
		return err
	}
	if err := setup.Mkdir("/dir"); err != nil {
		return err
	}
	small := make([]byte, 256)
	for i := range small {
		small[i] = byte(i * 7)
	}
	for i := 0; i < files; i++ {
		h, err := setup.OpenFile(fmt.Sprintf("/dir/f%03d", i), true)
		if err != nil {
			return err
		}
		if _, err := h.WriteAt(small, 0); err != nil {
			return err
		}
	}
	if err := setup.Sync(); err != nil {
		return err
	}

	scan, err := c.AddServer("scan")
	if err != nil {
		return err
	}
	s0 := scan.PetalStats().ReadRPCTotal()
	ents, err := scan.ReadDir("/dir")
	if err != nil {
		return err
	}
	if len(ents) != files {
		return fmt.Errorf("read-scaling: stat scan listed %d entries, want %d", len(ents), files)
	}
	for _, ent := range ents {
		if _, err := scan.Stat("/dir/" + ent.Name); err != nil {
			return err
		}
	}
	baseline := scan.PetalStats().ReadRPCTotal() - s0

	plus, err := c.AddServer("plus")
	if err != nil {
		return err
	}
	p0 := plus.PetalStats().ReadRPCTotal()
	ents2, infos, err := plus.ReadDirPlus("/dir")
	if err != nil {
		return err
	}
	if len(ents2) != files || len(infos) != files {
		return fmt.Errorf("read-scaling: ReadDirPlus returned %d entries, %d infos; want %d", len(ents2), len(infos), files)
	}
	batched := plus.PetalStats().ReadRPCTotal() - p0

	if batched*2 > baseline {
		return fmt.Errorf("read-scaling: ReadDirPlus used %d Petal read RPCs vs stat scan's %d; want <= 50%%", batched, baseline)
	}
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("readdir %d files, cold", files), "stat scan", fmt.Sprintf("%d read RPCs", baseline), "1.00x (baseline)"},
		[]string{fmt.Sprintf("readdir %d files, cold", files), "ReadDirPlus", fmt.Sprintf("%d read RPCs", batched), fmt.Sprintf("%.2fx (assert <= 0.5x)", float64(batched)/float64(baseline))},
	)
	return nil
}
