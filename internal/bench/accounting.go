package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"frangipani"
	"frangipani/internal/obs"
)

// Failure artifacts for the noisy-neighbor gate: CI uploads both so a
// red run leaves the account table and the merged timeline behind.
const (
	nnForensicsArtifact = "FORENSICS_noisy-neighbor-obs.json"
	nnAccountsArtifact  = "ACCOUNTS_noisy-neighbor-obs.json"
)

// NoisyNeighborObs is the per-principal accounting gate (run by `make
// bench-smoke`): a streaming writer and an interactive reader share
// one file from different servers, each tagged with
// obs.WithPrincipal. After a few quiet baseline windows the streamer
// floods the file, revoking the reader's locks on every access. The
// experiment asserts the accounting layer saw all of it:
//
//   - >= 95% of bytes and lock-wait nanoseconds are attributed to a
//     named principal (unattributed work lands in a visible "unknown"
//     row, never dropped);
//   - the streamer ranks first by bytes in the account table;
//   - the anomaly watcher fires a noisy-neighbor verdict naming the
//     streamer as hog and the reader as victim, and the verdict is
//     present in the merged forensics timeline.
func (o Options) NoisyNeighborObs() (*Table, error) {
	t := &Table{
		ID:     "Noisy neighbor",
		Title:  "Per-principal accounting under streaming-writer / interactive-reader interference",
		Header: []string{"principal", "wr MB", "rd MB", "rpcs", "lockwait ms", "p99 ms"},
		Notes:  "Gate: >= 95% byte and lock-wait attribution; streamer first by bytes; obs.noisyneighbor event journaled.",
	}
	c, err := o.newCluster(true, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	fss, err := mountN(c, 2, nil)
	if err != nil {
		return nil, err
	}
	ws1, ws2 := fss[0], fss[1]
	acct := c.Accounts()
	if acct == nil {
		return nil, fmt.Errorf("noisy-neighbor-obs: cluster has no account table")
	}
	// A dedicated watcher with a short warm-up; it journals into the
	// cluster journal, which MergeTimeline folds into the forensics
	// timeline.
	watcher := obs.NewAnomalyWatcher(c.Obs().Journal("cluster"), obs.AnomalyConfig{
		BaselineWindows: 3,
	})

	const (
		streamer = "streamer"
		reader   = "reader"
	)
	chunk := make([]byte, 256<<10)
	for i := range chunk {
		chunk[i] = byte(i * 17)
	}
	small := make([]byte, 4<<10)

	// Setup, attributed to the streamer: create the shared file and
	// lay down the region the reader will poll.
	var serr error
	obs.WithPrincipal(streamer, func() {
		var h *frangipani.File
		if h, serr = ws1.OpenFile("/hot", true); serr != nil {
			return
		}
		_, serr = h.WriteAt(chunk, 0)
	})
	if serr != nil {
		return nil, serr
	}
	var rh *frangipani.File
	var rerr error
	obs.WithPrincipal(reader, func() { rh, rerr = ws2.Open("/hot") })
	if rerr != nil {
		return nil, rerr
	}
	readN := func(n int) error {
		var rerr error
		obs.WithPrincipal(reader, func() {
			for i := 0; i < n && rerr == nil; i++ {
				_, rerr = rh.ReadAt(small, int64(i%32)*int64(len(small)))
			}
		})
		return rerr
	}
	// Warm read outside the judged windows: pull the data (and the
	// read lock) over to ws2 so the baseline windows measure the
	// steady cached-read latency, not the one-time migration.
	if err := readN(4); err != nil {
		return nil, err
	}
	closeWindow := func() []obs.NoisyNeighbor {
		acct.Advance()
		return watcher.ObserveAccounts(acct.Snapshot(), c.NowNs())
	}
	// Baseline: the reader alone, fast cached reads. These windows
	// are the watcher's warm-up; nothing may fire.
	for w := 0; w < 3; w++ {
		if err := readN(16); err != nil {
			return nil, err
		}
		if v := closeWindow(); len(v) != 0 {
			return nil, o.nnFail(c, acct, fmt.Errorf("verdict fired during warm-up window %d: %+v", w, v))
		}
	}
	// One deliberately unattributed op: it must surface as a visible
	// "unknown" principal, not vanish.
	if _, err := rh.ReadAt(small, 0); err != nil {
		return nil, err
	}
	// Spike: the streamer floods the shared file, revoking the
	// reader's cached locks; interleaved reads stall on reacquire.
	var verdicts []obs.NoisyNeighbor
	for w := 0; w < 3; w++ {
		for i := 0; i < 8; i++ {
			obs.WithPrincipal(streamer, func() {
				var h *frangipani.File
				if h, serr = ws1.OpenFile("/hot", true); serr != nil {
					return
				}
				_, serr = h.WriteAt(chunk, int64(i)*int64(len(chunk)))
			})
			if serr != nil {
				return nil, serr
			}
			if i%2 == 1 {
				if err := readN(2); err != nil {
					return nil, err
				}
			}
		}
		verdicts = append(verdicts, closeWindow()...)
	}

	stats := acct.Snapshot()
	var attrBytes, totBytes, attrWait, totWait int64
	seen := map[string]bool{}
	for _, st := range stats {
		seen[st.Principal] = true
		totBytes += st.Bytes()
		totWait += st.LockWaitNs
		if st.Principal != obs.UnknownPrincipal {
			attrBytes += st.Bytes()
			attrWait += st.LockWaitNs
		}
		t.Rows = append(t.Rows, []string{
			st.Principal,
			fmt.Sprintf("%.2f", float64(st.BytesIn)/(1<<20)),
			fmt.Sprintf("%.2f", float64(st.BytesOut)/(1<<20)),
			fmt.Sprintf("%d", st.RPCs),
			fmt.Sprintf("%.1f", float64(st.LockWaitNs)/1e6),
			fmt.Sprintf("%.2f", float64(st.OpP99Ns)/1e6),
		})
	}
	if !seen[obs.UnknownPrincipal] {
		return nil, o.nnFail(c, acct, fmt.Errorf("unattributed work did not surface as %q", obs.UnknownPrincipal))
	}
	byteFrac := frac(attrBytes, totBytes)
	waitFrac := frac(attrWait, totWait)
	if byteFrac < 0.95 {
		return nil, o.nnFail(c, acct, fmt.Errorf("only %.1f%% of %d bytes attributed (need 95%%)", byteFrac*100, totBytes))
	}
	if waitFrac < 0.95 {
		return nil, o.nnFail(c, acct, fmt.Errorf("only %.1f%% of %.1fms lock-wait attributed (need 95%%)", waitFrac*100, float64(totWait)/1e6))
	}
	if len(stats) == 0 || stats[0].Principal != streamer {
		return nil, o.nnFail(c, acct, fmt.Errorf("streamer not first by bytes (table order: %v)", principals(stats)))
	}
	hogged := false
	for _, v := range verdicts {
		if v.Hog == streamer && v.Victim == reader {
			hogged = true
		}
	}
	if !hogged {
		return nil, o.nnFail(c, acct, fmt.Errorf("no noisy-neighbor verdict naming hog=%s victim=%s (got %+v)", streamer, reader, verdicts))
	}
	inTimeline := false
	for _, e := range c.Timeline(obs.Filter{Layer: "obs"}) {
		if e.Op == "noisyneighbor" {
			inTimeline = true
		}
	}
	if !inTimeline {
		return nil, o.nnFail(c, acct, fmt.Errorf("obs.noisyneighbor event missing from merged timeline"))
	}
	t.Rows = append(t.Rows, []string{"-- attributed", fmt.Sprintf("%.1f%%", byteFrac*100), "", "", fmt.Sprintf("%.1f%%", waitFrac*100), ""})
	return t, nil
}

// nnFail dumps the account table and the merged forensics timeline so
// a red CI run keeps the evidence, then returns err.
func (o Options) nnFail(c *frangipani.Cluster, acct *obs.AccountTable, err error) error {
	var kept []string
	if b, merr := json.MarshalIndent(acct.Snapshot(), "", "  "); merr == nil {
		if werr := os.WriteFile(nnAccountsArtifact, b, 0o644); werr == nil {
			kept = append(kept, nnAccountsArtifact)
		}
	}
	dump := c.Forensics("noisy-neighbor-obs: " + err.Error())
	if werr := os.WriteFile(nnForensicsArtifact, []byte(dump.JSON()), 0o644); werr == nil {
		kept = append(kept, nnForensicsArtifact)
	}
	if len(kept) > 0 {
		return fmt.Errorf("%w (evidence dumped to %v)", err, kept)
	}
	return err
}

func frac(part, whole int64) float64 {
	if whole == 0 {
		return 1
	}
	return float64(part) / float64(whole)
}

func principals(stats []obs.AccountStat) []string {
	out := make([]string, len(stats))
	for i, st := range stats {
		out[i] = st.Principal
	}
	return out
}
