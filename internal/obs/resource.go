package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ResourceTable tracks contention per individual resource (a lock, a
// queue, ...) keyed by a caller-chosen uint64 id. Unlike named
// metrics, resource ids are unbounded in principle, so the table is
// capacity-bounded: when full, the coldest entry (least accumulated
// wait, then fewest acquires) is evicted to admit a new one. Hot
// resources, by construction, survive.
type ResourceTable struct {
	mu    sync.Mutex
	m     map[uint64]*resEntry
	namer func(id uint64) string
}

// maxResourceEntries bounds one table's memory (~40 B per entry).
const maxResourceEntries = 4096

type resEntry struct {
	acquires int64
	waitNs   int64
	events   int64
}

// ResourceStat is the exported per-resource summary.
type ResourceStat struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name,omitempty"`
	Acquires int64  `json:"acquires"`
	WaitNs   int64  `json:"wait_ns"`
	Events   int64  `json:"events"` // e.g. revokes for locks
}

func newResourceTable() *ResourceTable {
	return &ResourceTable{m: make(map[uint64]*resEntry)}
}

// SetNamer installs a function rendering resource ids for reports
// (e.g. decoding a lock id into "inode 7"). Safe to call any time.
func (t *ResourceTable) SetNamer(f func(id uint64) string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.namer = f
	t.mu.Unlock()
}

// Acquire records one acquisition of the resource and the time spent
// waiting for it (0 for an uncontended fast path).
func (t *ResourceTable) Acquire(id uint64, waitNs int64) {
	if t == nil {
		return
	}
	if waitNs < 0 {
		waitNs = 0
	}
	t.mu.Lock()
	e := t.entryLocked(id)
	e.acquires++
	e.waitNs += waitNs
	t.mu.Unlock()
}

// Event records one contention event against the resource (for locks:
// a revoke forced by a conflicting requester).
func (t *ResourceTable) Event(id uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.entryLocked(id).events++
	t.mu.Unlock()
}

func (t *ResourceTable) entryLocked(id uint64) *resEntry {
	e := t.m[id]
	if e == nil {
		if len(t.m) >= maxResourceEntries {
			t.evictColdestLocked()
		}
		e = &resEntry{}
		t.m[id] = e
	}
	return e
}

func (t *ResourceTable) evictColdestLocked() {
	var victim uint64
	first := true
	var vw, va int64
	for id, e := range t.m {
		if first || e.waitNs < vw || (e.waitNs == vw && e.acquires < va) {
			victim, vw, va, first = id, e.waitNs, e.acquires, false
		}
	}
	if !first {
		delete(t.m, victim)
	}
}

// TopK returns the k hottest resources, ordered by accumulated wait
// time (ties: events, then acquires, then id for determinism).
func (t *ResourceTable) TopK(k int) []ResourceStat {
	if t == nil || k <= 0 {
		return nil
	}
	t.mu.Lock()
	out := make([]ResourceStat, 0, len(t.m))
	for id, e := range t.m {
		st := ResourceStat{ID: id, Acquires: e.acquires, WaitNs: e.waitNs, Events: e.events}
		if t.namer != nil {
			st.Name = t.namer(id)
		}
		out = append(out, st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.WaitNs != b.WaitNs {
			return a.WaitNs > b.WaitNs
		}
		if a.Events != b.Events {
			return a.Events > b.Events
		}
		if a.Acquires != b.Acquires {
			return a.Acquires > b.Acquires
		}
		return a.ID < b.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Len returns the number of tracked resources.
func (t *ResourceTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// RenderResources renders a top-K table ("hot locks" style), wait in
// milliseconds.
func RenderResources(title string, stats []ResourceStat) string {
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n  %-28s %10s %12s %8s\n", title, "resource", "acquires", "wait (ms)", "events")
	for _, st := range stats {
		name := st.Name
		if name == "" {
			name = fmt.Sprintf("%#x", st.ID)
		}
		fmt.Fprintf(&b, "  %-28s %10d %12.3f %8d\n",
			name, st.Acquires, float64(st.WaitNs)/1e6, st.Events)
	}
	return b.String()
}
