package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestJournalWraparound drives a small ring far past capacity from
// concurrent writers (run under -race) and checks the retained tail
// is a consistent, ordered window of the full history.
func TestJournalWraparound(t *testing.T) {
	const capacity = 64
	const writers = 8
	const perWriter = 500
	j := NewJournal("ws1", capacity, nil)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record("lockservice", "acquire", "wait", uint64(w), int64(i), "t")
			}
		}(w)
	}
	wg.Wait()

	if got, want := j.Seq(), uint64(writers*perWriter); got != want {
		t.Fatalf("seq = %d, want %d", got, want)
	}
	if got := j.Len(); got != capacity {
		t.Fatalf("len = %d, want %d (full ring)", got, capacity)
	}
	evs := j.Events()
	if len(evs) != capacity {
		t.Fatalf("events = %d, want %d", len(evs), capacity)
	}
	// The retained window is the last `capacity` records: seqs are
	// distinct, strictly increasing, and end at the global max.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i].T < evs[i-1].T {
			t.Fatalf("time went backwards at %d", i)
		}
	}
	if evs[len(evs)-1].Seq != uint64(writers*perWriter) {
		t.Fatalf("tail seq = %d, want %d", evs[len(evs)-1].Seq, writers*perWriter)
	}
	if evs[0].Seq != uint64(writers*perWriter-capacity+1) {
		t.Fatalf("head seq = %d, want %d", evs[0].Seq, writers*perWriter-capacity+1)
	}
	if evs[0].Server != "ws1" || evs[0].Layer != "lockservice" {
		t.Fatalf("record fields lost: %+v", evs[0])
	}
}

// TestJournalConcurrentReaders interleaves Events snapshots with
// writers; under -race this proves snapshotting is safe, and each
// snapshot must be internally ordered.
func TestJournalConcurrentReaders(t *testing.T) {
	j := NewJournal("ws1", 32, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				j.Record("wal", "append", "ok", uint64(i), 0, "")
			}
		}
	}()
	for r := 0; r < 50; r++ {
		evs := j.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				t.Fatalf("snapshot not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("a", "b", "c", 1, 2, "d")
	if j.Len() != 0 || j.Events() != nil || j.Seq() != 0 || j.Server() != "" {
		t.Fatal("nil journal must be inert")
	}
	var r *Registry
	if r.Journal("ws1") != nil || r.Journals() != nil {
		t.Fatal("nil registry must hand out nil journals")
	}
}

func TestRegistryJournalReuse(t *testing.T) {
	r := NewRegistry(nil)
	a := r.Journal("ws1")
	if a == nil || a != r.Journal("ws1") {
		t.Fatal("Journal must create once and reuse")
	}
	r.Journal("ws2").Record("fs", "crash", "induced", 0, 0, "")
	js := r.Journals()
	if len(js) != 2 || js[0].Server() != "ws1" || js[1].Server() != "ws2" {
		t.Fatalf("Journals() = %v", js)
	}
}

// TestMergeTimelineSkewedClocks merges journals whose clocks disagree
// and checks both properties of the merge: global ordering by
// timestamp where that is consistent, and per-server program order
// preserved even where skew makes timestamps lie.
func TestMergeTimelineSkewedClocks(t *testing.T) {
	// ws1's clock runs 100 units ahead of ws2's.
	var t1, t2 atomic.Int64
	t1.Store(100)
	j1 := NewJournal("ws1", 16, func() int64 { return t1.Add(10) })
	j2 := NewJournal("ws2", 16, func() int64 { return t2.Add(10) })

	// Interleaved causal history: ws1 revokes, ws2 releases, ws1
	// grants — but ws2's timestamps are all far "earlier".
	j1.Record("lockservice", "revoke", "sent", 5, 0, "")   // T=110
	j2.Record("lockservice", "revoke", "recv", 5, 0, "")   // T=10
	j2.Record("lockservice", "release", "sent", 5, 0, "")  // T=20
	j1.Record("lockservice", "grant", "sent", 5, 0, "")    // T=120
	j1.Record("lockservice", "lease", "renew", 0, 0, "ok") // T=130

	evs := MergeTimeline([]*Journal{j1, j2}, Filter{})
	if len(evs) != 5 {
		t.Fatalf("merged %d events, want 5", len(evs))
	}
	// Per-server order must be program order despite skew.
	var ws1, ws2 []uint64
	for _, e := range evs {
		switch e.Server {
		case "ws1":
			ws1 = append(ws1, e.Seq)
		case "ws2":
			ws2 = append(ws2, e.Seq)
		}
	}
	for i := 1; i < len(ws1); i++ {
		if ws1[i] <= ws1[i-1] {
			t.Fatalf("ws1 order broken: %v", ws1)
		}
	}
	for i := 1; i < len(ws2); i++ {
		if ws2[i] <= ws2[i-1] {
			t.Fatalf("ws2 order broken: %v", ws2)
		}
	}
	// With skew this large the merge sorts ws2's early-stamped events
	// first — that is the documented timestamp ordering.
	if evs[0].Server != "ws2" || evs[len(evs)-1].Server != "ws1" {
		t.Fatalf("unexpected global order: first=%s last=%s", evs[0].Server, evs[len(evs)-1].Server)
	}
	// Equal timestamps break ties by server name, deterministically.
	j3 := NewJournal("a", 4, func() int64 { return 50 })
	j4 := NewJournal("b", 4, func() int64 { return 50 })
	j4.Record("fs", "x", "k", 0, 0, "")
	j3.Record("fs", "x", "k", 0, 0, "")
	tie := MergeTimeline([]*Journal{j4, j3}, Filter{})
	if tie[0].Server != "a" || tie[1].Server != "b" {
		t.Fatalf("tie-break order: %s then %s", tie[0].Server, tie[1].Server)
	}
}

func TestMergeTimelineFilter(t *testing.T) {
	r := NewRegistry(nil)
	j := r.Journal("ws1")
	j.Record("lockservice", "acquire", "wait", 7, 1, "")
	j.Record("wal", "flush", "ok", 9, 2, "")
	r.Journal("ws2").Record("lockservice", "grant", "sent", 7, 3, "")

	byKey := MergeTimeline(r.Journals(), Filter{Key: 7})
	if len(byKey) != 2 {
		t.Fatalf("key filter: %d events, want 2", len(byKey))
	}
	byLayer := MergeTimeline(r.Journals(), Filter{Layer: "wal"})
	if len(byLayer) != 1 || byLayer[0].Op != "flush" {
		t.Fatalf("layer filter: %+v", byLayer)
	}
	byServer := MergeTimeline(r.Journals(), Filter{Server: "ws2"})
	if len(byServer) != 1 || byServer[0].Server != "ws2" {
		t.Fatalf("server filter: %+v", byServer)
	}
	cut := byKey[1].T
	since := MergeTimeline(r.Journals(), Filter{Since: cut})
	for _, e := range since {
		if e.T < cut {
			t.Fatalf("since filter leaked event at %d < %d", e.T, cut)
		}
	}
}

// TestMergeTimelineCombinedFilter checks that predicates compose as a
// conjunction: an event must satisfy key AND since AND layer at once,
// and each predicate alone would admit more.
func TestMergeTimelineCombinedFilter(t *testing.T) {
	var clock atomic.Int64
	r := NewRegistry(func() int64 { return clock.Add(10) })
	j1, j2 := r.Journal("ws1"), r.Journal("ws2")

	j1.Record("lockservice", "acquire", "wait", 7, 0, "") // T=10: right key+layer, too early
	j1.Record("wal", "flush", "ok", 7, 0, "")             // T=20: right key, wrong layer
	j2.Record("lockservice", "grant", "sent", 9, 0, "")   // T=30: wrong key
	j2.Record("lockservice", "revoke", "sent", 7, 0, "")  // T=40: matches all three
	j1.Record("lockservice", "release", "recv", 7, 0, "") // T=50: matches all three

	f := Filter{Key: 7, Since: 25, Layer: "lockservice"}
	got := MergeTimeline(r.Journals(), f)
	if len(got) != 2 {
		t.Fatalf("combined filter kept %d events, want 2: %+v", len(got), got)
	}
	if got[0].Op != "revoke" || got[1].Op != "release" {
		t.Fatalf("combined filter order: %+v", got)
	}
	for _, e := range got {
		if e.Key != 7 || e.T < 25 || e.Layer != "lockservice" {
			t.Fatalf("combined filter leaked %+v", e)
		}
	}
	// Each predicate alone is strictly weaker — the conjunction is
	// doing real work, not shadowed by a single clause.
	for name, weak := range map[string]Filter{
		"key":   {Key: 7},
		"since": {Since: 25},
		"layer": {Layer: "lockservice"},
	} {
		if n := len(MergeTimeline(r.Journals(), weak)); n <= 2 {
			t.Fatalf("%s-only filter kept %d, expected more than combined", name, n)
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	if !strings.Contains(RenderTimeline(nil, nil), "no events") {
		t.Fatal("empty timeline must say so")
	}
	j := NewJournal("ws1", 4, nil)
	j.Record("lockservice", "lease", "expire", 42, 0, "session ws1")
	out := RenderTimeline(j.Events(), func(layer string, key uint64) string {
		if layer == "lockservice" && key == 42 {
			return "inode/42"
		}
		return "?"
	})
	for _, want := range []string{"ws1", "lockservice.lease", "expire", "inode/42", "session ws1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}
