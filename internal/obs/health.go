package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ProbeStatus grades one health probe's finding.
type ProbeStatus int

const (
	StatusOK ProbeStatus = iota
	StatusWarn
	StatusCrit
)

// String renders the status for reports and JSON.
func (s ProbeStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusWarn:
		return "warn"
	default:
		return "crit"
	}
}

// MarshalJSON encodes the status as its string form.
func (s ProbeStatus) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the string form back.
func (s *ProbeStatus) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "ok":
		*s = StatusOK
	case "warn":
		*s = StatusWarn
	case "crit":
		*s = StatusCrit
	default:
		return fmt.Errorf("obs: unknown probe status %s", b)
	}
	return nil
}

// ProbeResult is one probe's evaluated finding.
type ProbeResult struct {
	Name   string      `json:"name"`
	Status ProbeStatus `json:"status"`
	Detail string      `json:"detail,omitempty"`
}

// HealthReport is the aggregate of all probes: the verdict is the
// worst individual status, so a cluster is only "ok" when every
// probe is.
type HealthReport struct {
	Verdict ProbeStatus   `json:"verdict"`
	Probes  []ProbeResult `json:"probes"`
}

// Text renders the report, worst probes first.
func (r HealthReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: %s\n", r.Verdict)
	for _, p := range r.Probes {
		fmt.Fprintf(&b, "  [%-4s] %-32s %s\n", p.Status, p.Name, p.Detail)
	}
	return b.String()
}

// Health is a registry of named probes evaluated on demand. Probes
// are closures over live system state (a clerk's lease clock, a WAL's
// backlog), so every Evaluate sees current conditions.
type Health struct {
	mu     sync.Mutex
	probes []healthProbe
}

type healthProbe struct {
	name  string
	check func() (ProbeStatus, string)
}

// NewHealth returns an empty probe set.
func NewHealth() *Health { return &Health{} }

// Register adds a probe. check returns the current status and a
// human-readable detail line. Re-registering a name replaces the
// previous probe (servers remount, probes follow).
func (h *Health) Register(name string, check func() (ProbeStatus, string)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.probes {
		if h.probes[i].name == name {
			h.probes[i].check = check
			return
		}
	}
	h.probes = append(h.probes, healthProbe{name, check})
}

// Unregister removes a probe (e.g. when a server is removed).
func (h *Health) Unregister(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.probes {
		if h.probes[i].name == name {
			h.probes = append(h.probes[:i], h.probes[i+1:]...)
			return
		}
	}
}

// Evaluate runs every probe and aggregates the verdict. Results are
// ordered worst first, then by name, so the top line of the report is
// always the most urgent finding.
func (h *Health) Evaluate() HealthReport {
	var rep HealthReport
	if h == nil {
		return rep
	}
	h.mu.Lock()
	probes := append([]healthProbe(nil), h.probes...)
	h.mu.Unlock()
	for _, p := range probes {
		st, detail := p.check()
		rep.Probes = append(rep.Probes, ProbeResult{Name: p.name, Status: st, Detail: detail})
		if st > rep.Verdict {
			rep.Verdict = st
		}
	}
	sort.Slice(rep.Probes, func(i, j int) bool {
		if rep.Probes[i].Status != rep.Probes[j].Status {
			return rep.Probes[i].Status > rep.Probes[j].Status
		}
		return rep.Probes[i].Name < rep.Probes[j].Name
	})
	return rep
}
