package obs

import (
	"sync"
	"time"
)

func wallNow() int64 { return time.Now().UnixNano() }

// Event is one fixed-size flight-recorder record. Events are written
// into a per-server Journal ring at points the metrics layer cannot
// explain after the fact: lease expiry, revoke stalls, log replay,
// Petal failover, connection churn. The struct holds only scalars and
// string headers; callers pass static or pre-formatted strings so a
// Record call does not allocate.
type Event struct {
	Seq    uint64 `json:"seq"`              // per-journal sequence number
	T      int64  `json:"t_ns"`             // ns on the deployment clock (sim or wall)
	Server string `json:"server"`           // journal owner ("ws1", "petal0", "cluster")
	Layer  string `json:"layer"`            // "lockservice", "wal", "petal", "rpc", "fs", "obs"
	Op     string `json:"op"`               // "acquire", "lease", "flush", "conn", ...
	Kind   string `json:"kind"`             // "wait", "expire", "retry", "crit", ...
	Key    uint64 `json:"key,omitempty"`    // entity: lock id, inode, WAL seq, chunk
	Arg    int64  `json:"arg,omitempty"`    // small numeric payload: ns, bytes, count, slot
	Trace  uint64 `json:"trace,omitempty"`  // trace ID if recorded inside a span
	Detail string `json:"detail,omitempty"` // short free text ("ws1->petal2", error)
}

// DefaultJournalCap is the per-server ring size used by
// Registry.Journal. At ~100 B/record a server's journal is bounded at
// a few hundred KB and holds the trailing few thousand events — hours
// of failure-relevant history, minutes of hot-path history.
const DefaultJournalCap = 4096

// Journal is one server's bounded flight-recorder ring. Writers
// overwrite the oldest record once the ring is full; readers get a
// snapshot copy. All methods are nil-safe no-ops, matching the rest
// of the obs package, so unwired components cost nothing.
type Journal struct {
	server string
	now    NowFunc

	mu   sync.Mutex
	ring []Event
	pos  int // next write slot
	size int // occupied slots, <= len(ring)
	seq  uint64
}

// NewJournal returns a standalone journal (see NewCounter for the
// standalone-collector idiom). A nil now means wall time; capacity
// < 1 falls back to DefaultJournalCap.
func NewJournal(server string, capacity int, now NowFunc) *Journal {
	if capacity < 1 {
		capacity = DefaultJournalCap
	}
	if now == nil {
		now = wallNow
	}
	return &Journal{
		server: server,
		now:    now,
		ring:   make([]Event, capacity),
	}
}

// Server returns the journal owner's name.
func (j *Journal) Server() string {
	if j == nil {
		return ""
	}
	return j.server
}

// Record appends one event, stamping the clock and — when called
// inside an obs.With span — the current trace ID, so timelines can be
// joined with traces. Copy-in to a preallocated slot: no allocation
// beyond the strings the caller already holds.
func (j *Journal) Record(layer, op, kind string, key uint64, arg int64, detail string) {
	if j == nil {
		return
	}
	var trace uint64
	if sp := Current(); sp != nil {
		trace = sp.TraceID
	}
	j.mu.Lock()
	// Stamp inside the lock: ring order and timestamp order agree,
	// so a journal's events are non-decreasing in T.
	t := j.now()
	j.seq++
	j.ring[j.pos] = Event{
		Seq:    j.seq,
		T:      t,
		Server: j.server,
		Layer:  layer,
		Op:     op,
		Kind:   kind,
		Key:    key,
		Arg:    arg,
		Trace:  trace,
		Detail: detail,
	}
	j.pos = (j.pos + 1) % len(j.ring)
	if j.size < len(j.ring) {
		j.size++
	}
	j.mu.Unlock()
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Seq returns the total number of events ever recorded, including
// those the ring has since overwritten.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns a snapshot of the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.size)
	start := j.pos - j.size
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < j.size; i++ {
		out = append(out, j.ring[(start+i)%len(j.ring)])
	}
	return out
}

// SetJournalCap sets the ring capacity used for journals created
// after the call (existing rings keep their size — components capture
// the journal pointer once at construction, so set the cap before
// wiring). Values < 1 reset to DefaultJournalCap.
func (r *Registry) SetJournalCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 0
	}
	r.mu.Lock()
	r.journalCap = n
	r.mu.Unlock()
}

// SetJournal enables or disables flight-recorder journals on this
// registry. Disabling makes Journal return nil, and since every
// Journal method is nil-safe the recorder then costs nothing — the
// knob the obs-overhead ablation uses to isolate recorder cost.
// Call before components are wired: they capture the pointer once.
func (r *Registry) SetJournal(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.journalOff = !on
	r.mu.Unlock()
}

// Journal returns the named server's flight-recorder journal,
// creating it on first use on the registry's clock.
func (r *Registry) Journal(server string) *Journal {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	j, off := r.journals[server], r.journalOff
	r.mu.RUnlock()
	if off {
		return nil
	}
	if j != nil {
		return j
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if j = r.journals[server]; j == nil {
		j = NewJournal(server, r.journalCap, r.now)
		r.journals[server] = j
	}
	return j
}

// Journals returns every journal in the registry, sorted by server
// name — the input to timeline reconstruction.
func (r *Registry) Journals() []*Journal {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Journal, 0, len(r.journals))
	for _, name := range sortedKeys(r.journals) {
		out = append(out, r.journals[name])
	}
	return out
}
