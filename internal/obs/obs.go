// Package obs is a zero-dependency metrics and tracing layer shared
// by every Frangipani subsystem.
//
// It provides a Registry of race-safe named counters, gauges, and
// log-bucketed latency histograms, plus a Tracer whose spans are
// propagated through rpc message headers so a single file-system
// operation can be followed fs -> wal -> lockservice -> petal across
// machines. The registry is clock-agnostic: simulated runs plug in
// sim.Clock time, TCP deployments use wall time.
//
// Metric names follow the convention "layer.op.metric", with a
// "#instance" suffix when several servers share one registry, e.g.
// "fs.sync.latency#ws1" or "cache.hits#ws1.meta".
//
// All methods are nil-safe: a nil *Registry hands out nil collectors
// and a nil *Tracer hands out nil spans, all of whose methods are
// no-ops, so instrumented code never needs to branch on whether
// observability is wired up.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NowFunc returns the current time in nanoseconds on whatever clock
// the deployment runs on (simulated or wall).
type NowFunc func() int64

// Counter is a monotonically increasing race-safe counter.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any
// registry. Components that may run unwired (unit tests, bare
// constructors) start with standalone collectors and swap in
// registry-backed ones when observability is attached.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a race-safe instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge (see NewCounter).
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n is larger (high-water mark).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds all named metrics for one deployment (one sim
// World, or one process in a TCP deployment) plus its Tracer.
type Registry struct {
	now NowFunc
	tr  *Tracer

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	restabs    map[string]*ResourceTable
	journals   map[string]*Journal
	journalOff bool
	journalCap int
	accounts   *AccountTable
	acctOff    bool
}

// NewRegistry builds a registry on the given clock. A nil now means
// wall time.
func NewRegistry(now NowFunc) *Registry {
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Registry{
		now:      now,
		tr:       newTracer(now),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		restabs:  make(map[string]*ResourceTable),
		journals: make(map[string]*Journal),
	}
}

// Now returns the registry's notion of current time in nanoseconds.
// On a nil registry it falls back to wall time.
func (r *Registry) Now() int64 {
	if r == nil {
		return time.Now().UnixNano()
	}
	return r.now()
}

// Tracer returns the registry's span tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Resources returns the named per-resource contention table, creating
// it on first use (e.g. "lockservice.locks" for the hot-lock table).
func (r *Registry) Resources(name string) *ResourceTable {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.restabs[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.restabs[name]; t == nil {
		t = newResourceTable()
		r.restabs[name] = t
	}
	return t
}

// Accounts returns the registry's per-principal account table,
// creating it on first use on the registry's clock. Returns nil when
// accounting is disabled (SetAccounting) — every AccountTable method
// is nil-safe, so the ablation knob costs callers nothing.
func (r *Registry) Accounts() *AccountTable {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t, off := r.accounts, r.acctOff
	r.mu.RUnlock()
	if off {
		return nil
	}
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.accounts == nil {
		r.accounts = NewAccountTable(r.now)
	}
	return r.accounts
}

// SetAccounting enables or disables per-principal accounting.
// Disabling makes Accounts return nil. Call before components are
// wired: they capture the pointer once at construction.
func (r *Registry) SetAccounting(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.acctOff = !on
	r.mu.Unlock()
}

// names returns the sorted metric names of one kind, for snapshots.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
