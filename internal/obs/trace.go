package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a trace. A root span has ID ==
// TraceID; children share the root's TraceID and point at their
// parent's ID. Spans created by Remote carry context received over
// the wire and are never recorded themselves — they only parent the
// receiver's own spans.
type Span struct {
	TraceID uint64
	ID      uint64
	Parent  uint64
	Layer   string
	Op      string
	Start   int64 // ns on the tracer's clock
	End     int64 // ns; 0 until Done

	tr *Tracer
}

// Duration is End-Start; valid after Done.
func (sp *Span) Duration() int64 {
	if sp == nil {
		return 0
	}
	return sp.End - sp.Start
}

// Done stamps the end time and records the span into the tracer's
// ring. If the span is a trace root and the whole trace took at
// least the slow-op threshold, a rendered dump of the tree is kept.
func (sp *Span) Done() {
	if sp == nil || sp.tr == nil {
		return
	}
	t := sp.tr
	sp.End = t.now()
	t.mu.Lock()
	t.ring[t.pos] = *sp
	t.pos = (t.pos + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	if sp.ID == sp.TraceID {
		t.lastRoot = sp.TraceID
		if thr := t.slow.Load(); thr > 0 && sp.Duration() >= thr {
			dump := t.renderLocked(sp.TraceID)
			// Bound each retained dump: a pathological trace can have
			// thousands of ring-resident spans, and maxSlowDumps of
			// those must not pin megabytes.
			if len(dump) > maxDumpBytes {
				dump = dump[:maxDumpBytes] + "\n  ... (dump truncated)\n"
			}
			t.dumps = append(t.dumps, dump)
			if len(t.dumps) > maxSlowDumps {
				t.dumps = t.dumps[len(t.dumps)-maxSlowDumps:]
			}
		}
	}
	t.mu.Unlock()
}

const (
	ringSpans    = 8192
	maxSlowDumps = 16
	maxDumpBytes = 16 << 10 // per-dump cap; total dump memory <= 16*16 KB
)

// Tracer allocates span IDs and collects completed spans in a ring
// buffer for rendering.
type Tracer struct {
	now  NowFunc
	ids  atomic.Uint64
	slow atomic.Int64 // ns threshold for slow-op dumps; 0 = off

	mu       sync.Mutex
	ring     []Span
	pos      int
	size     int
	lastRoot uint64
	dumps    []string
}

func newTracer(now NowFunc) *Tracer {
	return &Tracer{now: now, ring: make([]Span, ringSpans)}
}

// SetSlowThreshold enables slow-op dumps for root spans lasting at
// least d (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slow.Store(int64(d))
	}
}

// Start begins a new span. If the calling goroutine has a bound span
// (see With), the new span joins that trace as a child; otherwise it
// roots a fresh trace.
func (t *Tracer) Start(layer, op string) *Span {
	if t == nil {
		return nil
	}
	id := t.ids.Add(1)
	sp := &Span{ID: id, Layer: layer, Op: op, Start: t.now(), tr: t}
	if p := Current(); p != nil {
		sp.TraceID = p.TraceID
		sp.Parent = p.ID
	} else {
		sp.TraceID = id
	}
	return sp
}

// Child is like Start but returns nil when the calling goroutine has
// no bound span: sub-layer operations (wal flushes, petal RPCs,
// lease checks) only produce spans inside a traced operation, so
// background write-behind traffic does not flood the ring with
// single-span root traces.
func (t *Tracer) Child(layer, op string) *Span {
	if t == nil || Current() == nil {
		return nil
	}
	return t.Start(layer, op)
}

// Remote reconstructs a parent span stub from trace context received
// over the wire. The stub is never recorded; bind it with With so
// spans started on the receiving side join the sender's trace.
func Remote(traceID, spanID uint64) *Span {
	if traceID == 0 {
		return nil
	}
	return &Span{TraceID: traceID, ID: spanID}
}

// LastRoot returns the trace ID of the most recently completed root
// span, or 0.
func (t *Tracer) LastRoot() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastRoot
}

// SpansFor returns copies of all ring-resident spans of one trace.
func (t *Tracer) SpansFor(traceID uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for i := 0; i < t.size; i++ {
		if t.ring[i].TraceID == traceID {
			out = append(out, t.ring[i])
		}
	}
	return out
}

// Roots returns the trace IDs of completed root spans resident in
// the ring, most recent first, at most max of them (0 means all).
// It feeds the critical-path analyzer: every returned trace has its
// root's full interval available for attribution.
func (t *Tracer) Roots(max int) []uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []uint64
	// Walk the ring newest to oldest: pos-1 is the most recent write.
	for i := 0; i < t.size; i++ {
		idx := (t.pos - 1 - i + len(t.ring)) % len(t.ring)
		sp := t.ring[idx]
		if sp.ID == sp.TraceID && sp.ID != 0 {
			out = append(out, sp.TraceID)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

// SlowDumps returns the retained slow-op trace dumps, oldest first.
func (t *Tracer) SlowDumps() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.dumps...)
}

// RenderTrace renders one trace's span tree as indented text:
//
//	trace 42 (total 12.3ms)
//	  fs.sync             +0.000ms  12.300ms
//	    wal.flush         +0.100ms   2.000ms
//
// Columns are offset from the trace root's start and span duration.
func (t *Tracer) RenderTrace(traceID uint64) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.renderLocked(traceID)
}

func (t *Tracer) renderLocked(traceID uint64) string {
	var spans []Span
	for i := 0; i < t.size; i++ {
		if t.ring[i].TraceID == traceID {
			spans = append(spans, t.ring[i])
		}
	}
	if len(spans) == 0 {
		return fmt.Sprintf("trace %d: no spans\n", traceID)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	present := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		present[sp.ID] = true
	}
	children := make(map[uint64][]Span)
	var roots []Span
	base := spans[0].Start
	var total int64
	for _, sp := range spans {
		if sp.Start < base {
			base = sp.Start
		}
		if sp.End-base > total {
			total = sp.End - base
		}
		// A span whose parent is missing from the ring (evicted, or
		// a wire-level stub) renders as a top-level subtree.
		if sp.Parent != 0 && present[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (total %.3fms, %d spans)\n",
		traceID, float64(total)/1e6, len(spans))
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		name := sp.Layer + "." + sp.Op
		fmt.Fprintf(&b, "  %s%-*s +%.3fms  %.3fms\n",
			strings.Repeat("  ", depth), 28-2*depth, name,
			float64(sp.Start-base)/1e6, float64(sp.Duration())/1e6)
		for _, ch := range children[sp.ID] {
			walk(ch, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// ---- goroutine-local span binding -------------------------------

// Span context follows the goroutine: With binds a span for the
// duration of fn, Current reads the binding. The map is sharded by
// goroutine ID, and a global bound-count lets Current bail with a
// single atomic load when no spans are bound anywhere — so constant
// background traffic (heartbeats, lease renewals) pays nearly
// nothing when nothing is being traced.
type glShard struct {
	mu sync.Mutex
	m  map[uint64]*Span
}

const glShards = 64

var (
	glTab   [glShards]glShard
	glBound atomic.Int64
)

func init() {
	for i := range glTab {
		glTab[i].m = make(map[uint64]*Span)
	}
}

// goid parses the current goroutine's ID from its stack header
// ("goroutine N [...]"). Go offers no public accessor; this is the
// standard portable fallback and costs ~1µs.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// skip "goroutine "
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Current returns the span bound to this goroutine, or nil.
func Current() *Span {
	if glBound.Load() == 0 {
		return nil
	}
	g := goid()
	s := &glTab[g%glShards]
	s.mu.Lock()
	sp := s.m[g]
	s.mu.Unlock()
	return sp
}

// BoundSpans returns the number of live goroutine->span bindings
// across all shards. After every traced operation has returned, the
// table must drain to zero — each With removes (or restores) exactly
// the entry it installed via defer, which runs on normal return,
// early return, and panic alike. Used by the leak regression test
// and safe to call anytime.
func BoundSpans() int {
	n := 0
	for i := range glTab {
		s := &glTab[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// With binds sp to the calling goroutine while fn runs, restoring
// any previous binding afterwards. A nil sp just runs fn.
//
// Leak audit: the binding is removed in a defer registered before fn
// runs, so a panic inside fn (or any early return) still unwinds the
// table; nothing between installing the binding and registering the
// defer can fail. Goroutine IDs are never reused by the runtime, so
// an exited goroutine cannot alias a stale entry even if one leaked.
// The glBound counter pairs the same Add(1)/Add(-1) in the same
// scopes, keeping the Current fast path consistent.
func With(sp *Span, fn func()) {
	if sp == nil {
		fn()
		return
	}
	g := goid()
	s := &glTab[g%glShards]
	s.mu.Lock()
	prev, had := s.m[g]
	s.m[g] = sp
	s.mu.Unlock()
	glBound.Add(1)
	defer func() {
		s.mu.Lock()
		if had {
			s.m[g] = prev
		} else {
			delete(s.m, g)
		}
		s.mu.Unlock()
		glBound.Add(-1)
	}()
	fn()
}
