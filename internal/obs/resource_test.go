package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestResourceTopKOrdering(t *testing.T) {
	reg := NewRegistry(nil)
	tab := reg.Resources("locks")
	tab.Acquire(1, 100)
	tab.Acquire(2, 500)
	tab.Acquire(2, 500)
	tab.Acquire(3, 200)
	tab.Event(3)

	top := tab.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d entries", len(top))
	}
	if top[0].ID != 2 || top[0].WaitNs != 1000 || top[0].Acquires != 2 {
		t.Fatalf("hottest = %+v, want id 2", top[0])
	}
	if top[1].ID != 3 || top[1].Events != 1 {
		t.Fatalf("second = %+v, want id 3", top[1])
	}
	if all := tab.TopK(10); len(all) != 3 {
		t.Fatalf("TopK(10) = %d entries, want all 3", len(all))
	}
	if tab.TopK(0) != nil {
		t.Fatal("TopK(0) must return nil")
	}
}

func TestResourceNamerAndRender(t *testing.T) {
	reg := NewRegistry(nil)
	tab := reg.Resources("locks")
	tab.SetNamer(func(id uint64) string { return fmt.Sprintf("inode/%d", id) })
	tab.Acquire(7, 3e6)
	top := tab.TopK(1)
	if top[0].Name != "inode/7" {
		t.Fatalf("name = %q", top[0].Name)
	}
	out := RenderResources("hot locks", top)
	for _, want := range []string{"hot locks", "inode/7", "3.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// The table is bounded: cold entries are evicted, hot entries
// survive arbitrary cardinality.
func TestResourceEvictionKeepsHot(t *testing.T) {
	reg := NewRegistry(nil)
	tab := reg.Resources("locks")
	const hot = uint64(42)
	tab.Acquire(hot, 1e9)
	for id := uint64(1000); id < 1000+maxResourceEntries+100; id++ {
		tab.Acquire(id, 1)
	}
	if n := tab.Len(); n > maxResourceEntries {
		t.Fatalf("table grew to %d entries (cap %d)", n, maxResourceEntries)
	}
	top := tab.TopK(1)
	if len(top) == 0 || top[0].ID != hot {
		t.Fatalf("hot entry evicted: top = %+v", top)
	}
}

func TestResourceNilAndClamp(t *testing.T) {
	var tab *ResourceTable
	tab.Acquire(1, 10)
	tab.Event(1)
	tab.SetNamer(nil)
	if tab.TopK(5) != nil || tab.Len() != 0 {
		t.Fatal("nil table must be inert")
	}
	reg := NewRegistry(nil)
	tb := reg.Resources("x")
	tb.Acquire(1, -50) // negative wait clamps to zero
	if top := tb.TopK(1); top[0].WaitNs != 0 || top[0].Acquires != 1 {
		t.Fatalf("clamp failed: %+v", top[0])
	}
	if reg.Resources("x") != tb {
		t.Fatal("Resources must return the same table per name")
	}
}
