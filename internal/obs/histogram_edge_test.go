package obs

import (
	"math"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Max() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram()
	const v = int64(1e6)
	h.Record(v)
	for _, q := range []float64{-0.5, 0, 0.001, 0.5, 0.99, 1, 7, math.NaN()} {
		got := h.Quantile(q)
		if got <= 0 || got > v {
			t.Fatalf("single-sample Quantile(%v) = %d, want in (0, %d]", q, got, v)
		}
		if float64(got) < float64(v)*0.87 {
			t.Fatalf("single-sample Quantile(%v) = %d, too far below %d", q, got, v)
		}
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(int64(i))
	}
	lo, hi := h.Quantile(-3), h.Quantile(42)
	if lo != h.Quantile(0) {
		t.Fatalf("q<0 (%d) must clamp to q=0 (%d)", lo, h.Quantile(0))
	}
	if hi != h.Quantile(1) {
		t.Fatalf("q>1 (%d) must clamp to q=1 (%d)", hi, h.Quantile(1))
	}
	if nan := h.Quantile(math.NaN()); nan != lo {
		t.Fatalf("NaN quantile = %d, want %d", nan, lo)
	}
	if hi > h.Max() {
		t.Fatalf("quantile %d exceeds max %d", hi, h.Max())
	}
}

func TestQuantileOfZeroTotal(t *testing.T) {
	var counts [numBuckets]int64
	if got := quantileOf(counts[:], 0, 0.5, 100); got != 0 {
		t.Fatalf("quantileOf(total=0) = %d", got)
	}
	if got := quantileOf(counts[:], -5, 0.5, 100); got != 0 {
		t.Fatalf("quantileOf(total<0) = %d", got)
	}
}
