package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Every bucket must cover a contiguous, non-overlapping range, and
// bucketFor must be the inverse of BucketBounds.
func TestBucketBoundaries(t *testing.T) {
	prevHi := int64(0)
	for i := 0; i < numBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi && hi > 0 {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lo, hi)
		}
		if i > 0 && lo != prevHi {
			t.Fatalf("bucket %d: gap/overlap: prev hi %d, lo %d", i, prevHi, lo)
		}
		prevHi = hi
		if hi < 0 { // overflowed past int64 range; later buckets unused
			break
		}
		if got := bucketFor(lo); got != i {
			t.Fatalf("bucketFor(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketFor(hi - 1); got != i {
			t.Fatalf("bucketFor(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
	}
	// Spot-check the continuity points of the scheme.
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{0, 0}, {7, 7}, {8, 8}, {15, 15}, {16, 16}, {17, 16},
		{1 << 62, (62-subBits)*subBuckets + subBuckets},
		{math.MaxInt64, 487},
	} {
		if got := bucketFor(tc.v); got != tc.want {
			t.Errorf("bucketFor(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if bucketFor(math.MaxInt64) >= numBuckets {
		t.Fatalf("max value overflows bucket array")
	}
	if bucketFor(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// Quantile estimates must stay within the scheme's 1/16 relative
// error bound (plus a small absolute slack for tiny values).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~9 decades, like real latencies.
		v := int64(math.Exp(rng.Float64() * 20))
		vals = append(vals, v)
		h.Record(v)
	}
	exact := append([]int64(nil), vals...)
	sortInt64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		rank := int(q*float64(len(exact))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		want := exact[rank]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 1.0/16+1e-9 && math.Abs(float64(got-want)) > 1 {
			t.Errorf("q=%v: got %d want %d relErr %.4f > 6.25%%", q, got, want, relErr)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("p100 %d != max %d", h.Quantile(1.0), h.Max())
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(5)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 of constant 5s = %d, want exactly 5", got)
	}
	if h.Count() != 100 || h.Sum() != 500 || h.Max() != 5 {
		t.Errorf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	var sum int64
	for i := 0; i < numBuckets; i++ {
		sum += h.buckets[i].Load()
	}
	if sum != workers*per {
		t.Fatalf("bucket sum %d, want %d", sum, workers*per)
	}
}

func TestNilCollectors(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(3)
	r.Histogram("x").Record(9)
	if r.Counter("x").Value() != 0 || r.Histogram("x").Quantile(0.5) != 0 {
		t.Fatal("nil collectors must read zero")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
	r.Tracer().Start("a", "b").Done() // must not panic
}
