package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func goldenRegistry() *Registry {
	reg := NewRegistry((&fakeClock{}).now)
	// Insert deliberately out of order: rendering must sort.
	reg.Counter("b.ops#w").Add(2)
	reg.Counter("a.ops#w").Inc()
	reg.Gauge("g.depth#w").Set(3)
	reg.Histogram("z.lat#w").Record(0)
	reg.Histogram("z.lat#w").Record(0)
	tab := reg.Resources("locks")
	tab.SetNamer(func(id uint64) string { return fmt.Sprintf("inode/%d", id) })
	tab.Acquire(7, 2e6)
	tab.Acquire(3, 1e6)
	return reg
}

// The golden shape of Snapshot.Text(): sections in a fixed order,
// names sorted within each section, resources by heat — and the whole
// rendering byte-identical across calls (no map-iteration jitter).
func TestSnapshotTextGolden(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	out := snap.Text()
	want := []string{
		"counters:",
		"a.ops#w",
		"b.ops#w",
		"gauges:",
		"g.depth#w",
		"histograms (ms):",
		"z.lat#w",
		"hot resources (locks):",
		"inode/7", // hotter first
		"inode/3",
	}
	pos := -1
	for _, s := range want {
		i := strings.Index(out, s)
		if i < 0 {
			t.Fatalf("text missing %q:\n%s", s, out)
		}
		if i <= pos {
			t.Fatalf("%q out of order:\n%s", s, out)
		}
		pos = i
	}
	for i := 0; i < 5; i++ {
		if again := snap.Text(); again != out {
			t.Fatal("Text() is not deterministic across calls")
		}
	}
}

func TestSnapshotJSONGolden(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	out := snap.JSON()
	for i := 0; i < 5; i++ {
		if again := snap.JSON(); again != out {
			t.Fatal("JSON() is not deterministic across calls")
		}
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.ops#w"] != 1 || back.Counters["b.ops#w"] != 2 {
		t.Fatalf("counters lost: %+v", back.Counters)
	}
	if back.Histograms["z.lat#w"].Count != 2 {
		t.Fatalf("histograms lost: %+v", back.Histograms)
	}
	rs := back.Resources["locks"]
	if len(rs) != 2 || rs[0].Name != "inode/7" || rs[0].WaitNs != 2e6 {
		t.Fatalf("resources lost or reordered: %+v", rs)
	}
	// Keys inside each JSON object are sorted (encoding/json maps).
	if strings.Index(out, `"a.ops#w"`) > strings.Index(out, `"b.ops#w"`) {
		t.Fatal("JSON counter keys not sorted")
	}
}
