package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Filter selects a slice of the merged timeline. Zero values match
// everything, so Filter{} is "the whole record".
type Filter struct {
	Key    uint64 // entity key (lock id, inode, chunk); 0 = any
	Trace  uint64 // trace ID; 0 = any
	Since  int64  // only events with T >= Since; 0 = any
	Layer  string // "lockservice", "wal", ...; "" = any
	Server string // journal owner; "" = any
}

func (f Filter) match(e Event) bool {
	if f.Key != 0 && e.Key != f.Key {
		return false
	}
	if f.Trace != 0 && e.Trace != f.Trace {
		return false
	}
	if f.Since != 0 && e.T < f.Since {
		return false
	}
	if f.Layer != "" && e.Layer != f.Layer {
		return false
	}
	if f.Server != "" && e.Server != f.Server {
		return false
	}
	return true
}

// MergeTimeline reconstructs one cross-server timeline from the given
// journals. The merge orders events by timestamp but NEVER reorders
// two events from the same journal: each step takes the earliest
// journal head, so per-server program order — the only causal
// guarantee we have when per-server clocks are skewed — is preserved
// even where timestamps disagree with it.
func MergeTimeline(journals []*Journal, f Filter) []Event {
	heads := make([][]Event, 0, len(journals))
	total := 0
	for _, j := range journals {
		evs := j.Events()
		// Filter per journal before merging: dropping events cannot
		// break per-journal order.
		kept := evs[:0]
		for _, e := range evs {
			if f.match(e) {
				kept = append(kept, e)
			}
		}
		if len(kept) > 0 {
			heads = append(heads, kept)
			total += len(kept)
		}
	}
	out := make([]Event, 0, total)
	for len(heads) > 0 {
		best := 0
		for i := 1; i < len(heads); i++ {
			hi, hb := heads[i][0], heads[best][0]
			if hi.T < hb.T || (hi.T == hb.T && hi.Server < hb.Server) {
				best = i
			}
		}
		out = append(out, heads[best][0])
		heads[best] = heads[best][1:]
		if len(heads[best]) == 0 {
			heads = append(heads[:best], heads[best+1:]...)
		}
	}
	return out
}

// Namer renders an entity key for humans (e.g. fs.LockName for the
// lockservice layer). May be nil.
type Namer func(layer string, key uint64) string

// RenderTimeline formats a merged timeline as one annotated line per
// event, timestamps relative to the first event shown.
func RenderTimeline(events []Event, namer Namer) string {
	if len(events) == 0 {
		return "(no events recorded)\n"
	}
	base := events[0].T
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-24s %-10s %-18s %s\n",
		"t(+ms)", "server", "layer.op", "kind", "entity", "detail")
	for _, e := range events {
		ent := ""
		if e.Key != 0 {
			if namer != nil {
				ent = namer(e.Layer, e.Key)
			} else {
				ent = fmt.Sprintf("%#x", e.Key)
			}
		}
		detail := e.Detail
		if e.Arg != 0 {
			if detail != "" {
				detail = fmt.Sprintf("%s arg=%d", detail, e.Arg)
			} else {
				detail = fmt.Sprintf("arg=%d", e.Arg)
			}
		}
		if e.Trace != 0 {
			detail = fmt.Sprintf("%s [trace %x]", detail, e.Trace)
		}
		fmt.Fprintf(&b, "%+12.3f %-8s %-24s %-10s %-18s %s\n",
			float64(e.T-base)/1e6, e.Server, e.Layer+"."+e.Op, e.Kind,
			ent, strings.TrimSpace(detail))
	}
	return b.String()
}

// ForensicsDump is the JSON artifact written on failure (health crit,
// failed experiment assertion, explicit Cluster.DumpForensics): the
// merged timeline plus whatever state the caller attaches. Schema is
// versioned so CI consumers can evolve.
type ForensicsDump struct {
	Schema    string        `json:"schema"` // "frangipani-forensics/v1"
	TakenAtNs int64         `json:"taken_at_ns"`
	Reason    string        `json:"reason,omitempty"`
	Servers   []string      `json:"servers,omitempty"`
	Events    []Event       `json:"events"`
	Health    *HealthReport `json:"health,omitempty"`
	Anomalies []Anomaly     `json:"anomalies,omitempty"`
}

// ForensicsSchema is the current ForensicsDump schema tag.
const ForensicsSchema = "frangipani-forensics/v1"

// JSON renders the dump with stable indentation.
func (d ForensicsDump) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b) + "\n"
}
