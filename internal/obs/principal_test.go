package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestPrincipalBinding(t *testing.T) {
	if got := CurrentPrincipal(); got != "" {
		t.Fatalf("unbound goroutine reports %q", got)
	}
	WithPrincipal("alice", func() {
		if got := CurrentPrincipal(); got != "alice" {
			t.Fatalf("bound = %q, want alice", got)
		}
		// Nested bindings shadow and restore.
		WithPrincipal("bob", func() {
			if got := CurrentPrincipal(); got != "bob" {
				t.Fatalf("nested = %q, want bob", got)
			}
		})
		if got := CurrentPrincipal(); got != "alice" {
			t.Fatalf("after nested = %q, want alice", got)
		}
		// A spawned goroutine does NOT inherit the binding — the tag
		// must be carried explicitly (boundedPar, rpc envelope).
		done := make(chan string, 1)
		go func() { done <- CurrentPrincipal() }()
		if got := <-done; got != "" {
			t.Fatalf("spawned goroutine inherited %q", got)
		}
	})
	if got := CurrentPrincipal(); got != "" {
		t.Fatalf("binding leaked: %q", got)
	}
}

func TestPrincipalBindingDrains(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			WithPrincipal(fmt.Sprintf("p%d", i), func() {
				WithPrincipal("inner", func() {})
			})
		}(i)
	}
	wg.Wait()
	if n := BoundPrincipals(); n != 0 {
		t.Fatalf("%d bindings leaked", n)
	}
}

func TestPrincipalBindingPanicUnwinds(t *testing.T) {
	func() {
		defer func() { recover() }()
		WithPrincipal("doomed", func() { panic("boom") })
	}()
	if got := CurrentPrincipal(); got != "" {
		t.Fatalf("panic leaked binding %q", got)
	}
	if n := BoundPrincipals(); n != 0 {
		t.Fatalf("%d bindings leaked after panic", n)
	}
}

func TestAccountTableUnknownPolicy(t *testing.T) {
	tab := NewAccountTable((&fakeClock{}).now)
	// Work recorded outside any binding lands in the visible unknown
	// account, never dropped.
	tab.Bytes("", 100, 50)
	tab.Op("", 1e6)
	stats := tab.Snapshot()
	if len(stats) != 1 || stats[0].Principal != UnknownPrincipal {
		t.Fatalf("unbound work did not land in unknown: %+v", stats)
	}
	if stats[0].BytesIn != 100 || stats[0].BytesOut != 50 || stats[0].Ops != 1 {
		t.Fatalf("unknown totals wrong: %+v", stats[0])
	}
}

func TestAccountTableCountersAndSort(t *testing.T) {
	tab := NewAccountTable((&fakeClock{}).now)
	tab.Bytes("streamer", 1<<20, 0)
	tab.Op("streamer", 2e6)
	tab.RPC("streamer", 5)
	tab.WAL("streamer", 4096)
	tab.Bytes("reader", 0, 1<<10)
	tab.Op("reader", 1e6)
	tab.LockWait("reader", 7e6)
	tab.CacheMiss("reader", 3)
	tab.ServerOp("reader")

	stats := tab.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("got %d accounts", len(stats))
	}
	// Sorted by total bytes desc: streamer first.
	if stats[0].Principal != "streamer" || stats[1].Principal != "reader" {
		t.Fatalf("sort order: %s, %s", stats[0].Principal, stats[1].Principal)
	}
	s, r := stats[0], stats[1]
	if s.BytesIn != 1<<20 || s.RPCs != 5 || s.WALBytes != 4096 || s.Ops != 1 {
		t.Fatalf("streamer stat: %+v", s)
	}
	if r.LockWaitNs != 7e6 || r.CacheMisses != 3 || r.ServerOps != 1 || r.BytesOut != 1<<10 {
		t.Fatalf("reader stat: %+v", r)
	}
	if s.OpP99Ns <= 0 || r.OpP50Ns <= 0 {
		t.Fatalf("latency quantiles missing: %+v %+v", s, r)
	}
	out := RenderAccounts(stats)
	for _, want := range []string{"streamer", "reader", "principals (2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAccountTableFoldsColdest fills the table past capacity and
// checks the coldest identity is folded into "other" — bounded table,
// exact totals.
func TestAccountTableFoldsColdest(t *testing.T) {
	tab := NewAccountTable((&fakeClock{}).now)
	tab.Bytes(UnknownPrincipal, 1, 0) // reserved, never folded
	for i := 0; i < maxAccounts-1; i++ {
		tab.Bytes(fmt.Sprintf("p%03d", i), int64(1000+i), 0)
		tab.Op(fmt.Sprintf("p%03d", i), 1e6)
	}
	if tab.Len() != maxAccounts {
		t.Fatalf("len = %d, want %d", tab.Len(), maxAccounts)
	}
	var before int64
	for _, st := range tab.Snapshot() {
		before += st.Bytes() + st.Ops
	}
	// One more principal forces folds of the coldest: the first fold
	// creates "other" (no slot freed), the second frees p001's slot.
	tab.Bytes("newcomer", 5000, 0)
	if tab.Len() != maxAccounts {
		t.Fatalf("table grew past cap: %d", tab.Len())
	}
	stats := tab.Snapshot()
	var after int64
	var other *AccountStat
	for i, st := range stats {
		after += st.Bytes() + st.Ops
		if st.Principal == "p000" || st.Principal == "p001" {
			t.Fatalf("coldest principal %s not folded", st.Principal)
		}
		if st.Principal == OtherPrincipal {
			other = &stats[i]
		}
	}
	if after != before+5000 {
		t.Fatalf("fold lost totals: before %d + 5000 != after %d", before, after)
	}
	if other == nil || other.BytesIn != 1000+1001 || other.Ops != 2 {
		t.Fatalf("other did not absorb victims: %+v", other)
	}
	if other.OpP99Ns <= 0 {
		t.Fatal("other lost victims' latency distribution")
	}
}

func TestAccountTableAdvanceWindows(t *testing.T) {
	clk := &fakeClock{}
	tab := NewAccountTable(clk.now)
	tab.Bytes("w", 1000, 0)
	tab.Op("w", 5e6)
	tab.LockWait("w", 2e6)
	tab.Advance()
	stats := tab.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("accounts: %d", len(stats))
	}
	st := stats[0]
	if st.WinBytesIn != 1000 || st.WinOps != 1 || st.WinLockWaitNs != 2e6 {
		t.Fatalf("first window deltas: %+v", st)
	}
	if st.WinSeconds <= 0 {
		t.Fatalf("window seconds: %v", st.WinSeconds)
	}
	if st.WinOpP99Ns <= 0 {
		t.Fatalf("window p99 missing: %+v", st)
	}
	// Second window sees only the new activity, cumulative keeps all.
	tab.Bytes("w", 500, 0)
	tab.Advance()
	st = tab.Snapshot()[0]
	if st.WinBytesIn != 500 || st.WinOps != 0 {
		t.Fatalf("second window deltas: %+v", st)
	}
	if st.BytesIn != 1500 {
		t.Fatalf("cumulative lost: %+v", st)
	}
	// An idle window reports zero p99, not the stale one.
	tab.Advance()
	if st = tab.Snapshot()[0]; st.WinOpP99Ns != 0 || st.WinBytesIn != 0 {
		t.Fatalf("idle window not zeroed: %+v", st)
	}
}

func TestAccountTableNilSafe(t *testing.T) {
	var tab *AccountTable
	tab.Op("x", 1)
	tab.Bytes("x", 1, 1)
	tab.WAL("x", 1)
	tab.RPC("x", 1)
	tab.ServerOp("x")
	tab.LockWait("x", 1)
	tab.CacheMiss("x", 1)
	tab.Advance()
	if tab.Snapshot() != nil || tab.Len() != 0 {
		t.Fatal("nil table must be inert")
	}
	var r *Registry
	if r.Accounts() != nil {
		t.Fatal("nil registry must hand out nil accounts")
	}
	r.SetAccounting(false)
}

func TestRegistryAccountingKnob(t *testing.T) {
	r := NewRegistry(nil)
	r.SetAccounting(false)
	if r.Accounts() != nil {
		t.Fatal("accounting off must hand out nil")
	}
	r.SetAccounting(true)
	a := r.Accounts()
	if a == nil || a != r.Accounts() {
		t.Fatal("Accounts must create once and reuse")
	}
	a.Bytes("tenant", 10, 0)
	snap := r.Snapshot()
	if len(snap.Accounts) != 1 || snap.Accounts[0].Principal != "tenant" {
		t.Fatalf("snapshot accounts: %+v", snap.Accounts)
	}
	if !strings.Contains(snap.Text(), "tenant") {
		t.Fatal("snapshot text missing principal table")
	}
}

func TestAccountTableConcurrent(t *testing.T) {
	tab := NewAccountTable(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := fmt.Sprintf("p%d", w%3)
			for i := 0; i < 200; i++ {
				tab.Op(p, int64(i))
				tab.Bytes(p, 10, 5)
				tab.LockWait(p, 1)
				if i%50 == 0 {
					tab.Advance()
					tab.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, st := range tab.Snapshot() {
		total += st.BytesIn
	}
	if total != 8*200*10 {
		t.Fatalf("lost bytes under concurrency: %d", total)
	}
}
