package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// HistStat is the exported summary of one histogram.
type HistStat struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50_ns"`
	P90   int64 `json:"p90_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
	Sum   int64 `json:"sum_ns"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// renderable as JSON or text.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistStat       `json:"histograms,omitempty"`
	Resources  map[string][]ResourceStat `json:"resources,omitempty"`
	Accounts   []AccountStat             `json:"accounts,omitempty"`
	SlowOps    []string                  `json:"slow_ops,omitempty"`
}

// snapshotTopK bounds the per-resource entries carried in a snapshot.
const snapshotTopK = 10

// Snapshot captures the current value of every registered metric
// plus any retained slow-op dumps.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistStat, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = HistStat{
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Max(),
			Sum:   h.Sum(),
		}
	}
	if len(r.restabs) > 0 {
		s.Resources = make(map[string][]ResourceStat, len(r.restabs))
		for name, t := range r.restabs {
			if top := t.TopK(snapshotTopK); len(top) > 0 {
				s.Resources[name] = top
			}
		}
	}
	accounts := r.accounts
	r.mu.RUnlock()
	s.Accounts = accounts.Snapshot()
	s.SlowOps = r.tr.SlowDumps()
	return s
}

// Empty reports whether the snapshot recorded no activity at all:
// every counter zero and every histogram empty.
func (s Snapshot) Empty() bool {
	for _, v := range s.Counters {
		if v != 0 {
			return false
		}
	}
	for _, h := range s.Histograms {
		if h.Count != 0 {
			return false
		}
	}
	return true
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Text renders the snapshot as aligned tables, histograms in
// milliseconds.
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %12d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms (ms):\n")
		fmt.Fprintf(&b, "  %-44s %8s %9s %9s %9s %9s\n",
			"name", "count", "p50", "p90", "p99", "max")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-44s %8d %9.3f %9.3f %9.3f %9.3f\n",
				name, h.Count,
				float64(h.P50)/1e6, float64(h.P90)/1e6,
				float64(h.P99)/1e6, float64(h.Max)/1e6)
		}
	}
	for _, name := range sortedKeys(s.Resources) {
		b.WriteString(RenderResources("hot resources ("+name+")", s.Resources[name]))
	}
	b.WriteString(RenderAccounts(s.Accounts))
	if len(s.SlowOps) > 0 {
		fmt.Fprintf(&b, "slow ops (%d):\n", len(s.SlowOps))
		for _, d := range s.SlowOps {
			b.WriteString(d)
		}
	}
	return b.String()
}
