package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Window is one interval's worth of activity, computed as the delta
// between two registry snapshots: counter rates instead of cumulative
// totals, and per-window histogram stats (the p99 of the last second,
// not of all time).
type Window struct {
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Rates holds counter deltas per second of the window.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Hists holds per-window histogram stats. Max is approximate (the
	// upper bound of the window's highest occupied bucket, clamped to
	// the cumulative max).
	Hists map[string]HistStat `json:"histograms,omitempty"`
	// Gauges are instantaneous values at the window's end.
	Gauges map[string]int64 `json:"gauges,omitempty"`
}

// Seconds returns the window length in seconds.
func (w Window) Seconds() float64 { return float64(w.End-w.Start) / 1e9 }

// histCounts is the raw state of one histogram at a point in time.
type histCounts struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
}

// WindowRing turns a registry's cumulative metrics into a bounded
// ring of interval windows. Call Advance at the cadence you want
// (1 s for a live watch, one tick per benchmark phase, ...); each
// call closes the interval since the previous one. The ring keeps
// the newest capacity windows.
type WindowRing struct {
	reg *Registry
	cap int

	mu    sync.Mutex
	prevT int64
	prevC map[string]int64
	prevH map[string]histCounts
	wins  []Window
}

// NewWindowRing starts a ring over reg holding up to capacity
// windows. The interval clock starts now; the first Advance closes
// the first window.
func NewWindowRing(reg *Registry, capacity int) *WindowRing {
	if capacity < 1 {
		capacity = 1
	}
	w := &WindowRing{reg: reg, cap: capacity}
	w.mu.Lock()
	w.prevT, w.prevC, w.prevH = w.captureLocked()
	w.mu.Unlock()
	return w
}

func (w *WindowRing) captureLocked() (int64, map[string]int64, map[string]histCounts) {
	now := w.reg.Now()
	cs := make(map[string]int64)
	hs := make(map[string]histCounts)
	if w.reg != nil {
		w.reg.mu.RLock()
		for name, c := range w.reg.counters {
			cs[name] = c.Value()
		}
		for name, h := range w.reg.hists {
			var hc histCounts
			hc.buckets, hc.count, hc.sum = h.counts()
			hs[name] = hc
		}
		w.reg.mu.RUnlock()
	}
	return now, cs, hs
}

// Advance closes the interval since the previous Advance (or since
// construction), appends the resulting window to the ring, and
// returns it. Zero-length intervals yield zero rates rather than
// dividing by zero.
func (w *WindowRing) Advance() Window {
	if w == nil {
		return Window{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	now, cs, hs := w.captureLocked()
	win := Window{Start: w.prevT, End: now}
	secs := win.Seconds()
	win.Rates = make(map[string]float64)
	for name, v := range cs {
		d := v - w.prevC[name]
		if d < 0 {
			d = 0 // counter recreated; treat as fresh
		}
		if secs > 0 {
			win.Rates[name] = float64(d) / secs
		} else {
			win.Rates[name] = 0
		}
	}
	win.Hists = make(map[string]HistStat)
	for name, cur := range hs {
		prev := w.prevH[name]
		dcount := cur.count - prev.count
		if dcount <= 0 {
			continue
		}
		var delta [numBuckets]int64
		var maxB int
		for i := range cur.buckets {
			d := cur.buckets[i] - prev.buckets[i]
			if d > 0 {
				delta[i] = d
				maxB = i
			}
		}
		_, hi := BucketBounds(maxB)
		wmax := hi - 1
		if cm := w.reg.Histogram(name).Max(); wmax > cm {
			wmax = cm
		}
		win.Hists[name] = HistStat{
			Count: dcount,
			P50:   quantileOf(delta[:], dcount, 0.50, wmax),
			P90:   quantileOf(delta[:], dcount, 0.90, wmax),
			P99:   quantileOf(delta[:], dcount, 0.99, wmax),
			Max:   wmax,
			Sum:   cur.sum - prev.sum,
		}
	}
	win.Gauges = make(map[string]int64)
	if w.reg != nil {
		w.reg.mu.RLock()
		for name, g := range w.reg.gauges {
			win.Gauges[name] = g.Value()
		}
		w.reg.mu.RUnlock()
	}
	w.prevT, w.prevC, w.prevH = now, cs, hs
	w.wins = append(w.wins, win)
	if len(w.wins) > w.cap {
		w.wins = w.wins[len(w.wins)-w.cap:]
	}
	return win
}

// Last returns the most recently closed window.
func (w *WindowRing) Last() (Window, bool) {
	if w == nil {
		return Window{}, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.wins) == 0 {
		return Window{}, false
	}
	return w.wins[len(w.wins)-1], true
}

// Windows returns the retained windows, oldest first.
func (w *WindowRing) Windows() []Window {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Window(nil), w.wins...)
}

// Text renders one window as aligned rate/latency tables, skipping
// idle metrics so a live watch shows only what is moving.
func (win Window) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %.2fs\n", win.Seconds())
	var active []string
	for name, r := range win.Rates {
		if r > 0 {
			active = append(active, name)
		}
	}
	if len(active) > 0 {
		sort.Strings(active)
		b.WriteString("rates (/s):\n")
		for _, name := range active {
			fmt.Fprintf(&b, "  %-44s %12.1f\n", name, win.Rates[name])
		}
	}
	if len(win.Hists) > 0 {
		b.WriteString("latencies this window (ms):\n")
		fmt.Fprintf(&b, "  %-44s %8s %9s %9s %9s\n", "name", "count", "p50", "p99", "max")
		for _, name := range sortedKeys(win.Hists) {
			h := win.Hists[name]
			fmt.Fprintf(&b, "  %-44s %8d %9.3f %9.3f %9.3f\n",
				name, h.Count,
				float64(h.P50)/1e6, float64(h.P99)/1e6, float64(h.Max)/1e6)
		}
	}
	return b.String()
}
