package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a race-safe log-bucketed latency histogram in the
// style of HDR histograms: values below 8 land in exact unit-wide
// buckets; above that each power-of-two range is split into 8
// sub-buckets, bounding the relative quantile-estimation error at
// 1/16 (6.25%) when a bucket's midpoint is reported. Values are
// nanoseconds by convention but the math is unit-agnostic.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

const (
	subBits    = 3
	subBuckets = 1 << subBits // 8 sub-buckets per power of two
	// 8 exact buckets + 8 sub-buckets for each exponent 3..62; the
	// highest int64 value lands in index 487, so 512 is roomy.
	numBuckets = 512
)

// NewHistogram returns a standalone histogram (see NewCounter).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor maps a non-negative value to its bucket index.
func bucketFor(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // largest e with 2^e <= u
	sub := (u >> (uint(exp) - subBits)) - subBuckets
	return (exp-subBits)*subBuckets + int(sub) + subBuckets
}

// BucketBounds returns the half-open value range [lo, hi) covered by
// bucket index i.
func BucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	exp := (i-subBuckets)/subBuckets + subBits
	sub := (i - subBuckets) % subBuckets
	width := int64(1) << (uint(exp) - subBits)
	lo = (subBuckets + int64(sub)) * width
	return lo, lo + width
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the midpoint
// of the bucket holding that rank, clamped to the observed maximum.
// Returns 0 when nothing has been recorded; q outside (0, 1] (and
// NaN) clamps to the nearest valid quantile. A single-sample
// histogram answers that sample's bucket for every q.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	var counts [numBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return quantileOf(counts[:], total, q, h.max.Load())
}

// quantileOf is the shared rank-walk over a bucket-count slice, used
// by both cumulative histograms and windowed deltas. max bounds the
// reported midpoint (pass the largest value known to be in counts).
func quantileOf(counts []int64, total int64, q float64, max int64) int64 {
	if total <= 0 {
		return 0
	}
	if !(q > 0) { // also catches NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			lo, hi := BucketBounds(i)
			mid := lo + (hi-lo)/2
			if mid > max {
				mid = max
			}
			return mid
		}
	}
	return max
}

// counts copies the raw bucket occupancy plus count and sum, for
// windowed delta math. The copy is not atomic across buckets; windows
// tolerate the resulting off-by-a-few between concurrent recorders.
func (h *Histogram) counts() (buckets [numBuckets]int64, count, sum int64) {
	if h == nil {
		return
	}
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sum.Load()
}
