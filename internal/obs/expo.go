package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
)

// This file implements live exposition for TCP deployments: the
// Prometheus text format (version 0.0.4) rendering of a Snapshot and
// a small HTTP server offering it alongside JSON snapshots and the
// health verdict. Everything is stdlib-only.

// promName mangles "fs.sync.latency#ws1" into a metric family name
// ("frangipani_fs_sync_latency") and an instance label ("ws1").
func promName(name string) (family, instance string) {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		name, instance = name[:i], name[i+1:]
	}
	var b strings.Builder
	b.WriteString("frangipani_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), instance
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func promLabels(pairs ...string) string {
	var parts []string
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i+1] != "" {
			parts = append(parts, fmt.Sprintf(`%s="%s"`, pairs[i], promEscape(pairs[i+1])))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges one family per metric name, histograms
// as summaries (quantile series plus _count and _sum). Families are
// emitted in sorted order with a single TYPE header each, so the
// output is deterministic and parser-friendly.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	type series struct{ labels, value string }
	emit := func(byFam map[string][]series, typ string, suffix string) {
		for _, fam := range sortedKeys(byFam) {
			fmt.Fprintf(&b, "# TYPE %s%s %s\n", fam, suffix, typ)
			rows := byFam[fam]
			sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
			for _, r := range rows {
				fmt.Fprintf(&b, "%s%s%s %s\n", fam, suffix, r.labels, r.value)
			}
		}
	}

	cf := make(map[string][]series)
	for name, v := range s.Counters {
		fam, inst := promName(name)
		cf[fam] = append(cf[fam], series{promLabels("instance", inst), fmt.Sprintf("%d", v)})
	}
	emit(cf, "counter", "_total")

	gf := make(map[string][]series)
	for name, v := range s.Gauges {
		fam, inst := promName(name)
		gf[fam] = append(gf[fam], series{promLabels("instance", inst), fmt.Sprintf("%d", v)})
	}
	emit(gf, "gauge", "")

	// Histograms render as summaries in nanoseconds.
	hfam := make(map[string]map[string]HistStat) // family -> instance -> stat
	for name, h := range s.Histograms {
		fam, inst := promName(name)
		if hfam[fam] == nil {
			hfam[fam] = make(map[string]HistStat)
		}
		hfam[fam][inst] = h
	}
	for _, fam := range sortedKeys(hfam) {
		fmt.Fprintf(&b, "# TYPE %s_ns summary\n", fam)
		for _, inst := range sortedKeys(hfam[fam]) {
			h := hfam[fam][inst]
			for _, q := range []struct {
				q string
				v int64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
				fmt.Fprintf(&b, "%s_ns%s %d\n", fam,
					promLabels("instance", inst, "quantile", q.q), q.v)
			}
			fmt.Fprintf(&b, "%s_ns_count%s %d\n", fam, promLabels("instance", inst), h.Count)
			fmt.Fprintf(&b, "%s_ns_sum%s %d\n", fam, promLabels("instance", inst), h.Sum)
		}
	}

	// Resource tables: top-K entries as labeled gauges. Each family's
	// samples stay grouped under its own TYPE line, as the exposition
	// format requires.
	if len(s.Resources) > 0 {
		for _, fam := range []struct {
			name string
			get  func(ResourceStat) int64
		}{
			{"frangipani_resource_wait_ns", func(st ResourceStat) int64 { return st.WaitNs }},
			{"frangipani_resource_acquires", func(st ResourceStat) int64 { return st.Acquires }},
			{"frangipani_resource_events", func(st ResourceStat) int64 { return st.Events }},
		} {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", fam.name)
			for _, table := range sortedKeys(s.Resources) {
				for _, st := range s.Resources[table] {
					name := st.Name
					if name == "" {
						name = fmt.Sprintf("%#x", st.ID)
					}
					lb := promLabels("table", table, "resource", name)
					fmt.Fprintf(&b, "%s%s %d\n", fam.name, lb, fam.get(st))
				}
			}
		}
	}

	// Per-principal accounting rollups: one family per resource kind,
	// labeled by principal, so a scrape can answer "who is using the
	// cluster" without per-principal metric-name explosion.
	if len(s.Accounts) > 0 {
		for _, fam := range []struct {
			name string
			typ  string
			get  func(AccountStat) int64
		}{
			{"frangipani_principal_ops_total", "counter", func(st AccountStat) int64 { return st.Ops }},
			{"frangipani_principal_bytes_in_total", "counter", func(st AccountStat) int64 { return st.BytesIn }},
			{"frangipani_principal_bytes_out_total", "counter", func(st AccountStat) int64 { return st.BytesOut }},
			{"frangipani_principal_wal_bytes_total", "counter", func(st AccountStat) int64 { return st.WALBytes }},
			{"frangipani_principal_rpcs_total", "counter", func(st AccountStat) int64 { return st.RPCs }},
			{"frangipani_principal_server_ops_total", "counter", func(st AccountStat) int64 { return st.ServerOps }},
			{"frangipani_principal_lock_wait_ns_total", "counter", func(st AccountStat) int64 { return st.LockWaitNs }},
			{"frangipani_principal_cache_misses_total", "counter", func(st AccountStat) int64 { return st.CacheMisses }},
			{"frangipani_principal_op_p99_ns", "gauge", func(st AccountStat) int64 { return st.OpP99Ns }},
		} {
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
			rows := make([]string, 0, len(s.Accounts))
			for _, st := range s.Accounts {
				rows = append(rows, fmt.Sprintf("%s%s %d",
					fam.name, promLabels("principal", st.Principal), fam.get(st)))
			}
			sort.Strings(rows)
			for _, r := range rows {
				b.WriteString(r)
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// HealthFunc supplies the current health report to the endpoint.
type HealthFunc func() HealthReport

// Handler returns an http.Handler exposing the registry:
//
//	/metrics        Prometheus text exposition
//	/snapshot.json  full snapshot as JSON
//	/health         health report as JSON (503 when the verdict is crit)
//
// health may be nil, in which case /health always reports ok with no
// probes.
func Handler(reg *Registry, health HealthFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.Snapshot().Prometheus())
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, reg.Snapshot().JSON())
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		var rep HealthReport
		if health != nil {
			rep = health()
		}
		w.Header().Set("Content-Type", "application/json")
		if rep.Verdict == StatusCrit {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	return mux
}

// MetricsServer is a running exposition endpoint.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts the exposition endpoint on addr (e.g. ":9100" or
// "127.0.0.1:0") and serves until Close.
func Serve(addr string, reg *Registry, health HealthFunc) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg, health)}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{ln: ln, srv: srv}, nil
}
