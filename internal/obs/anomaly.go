package obs

import (
	"fmt"
	"sync"
)

// AnomalyConfig tunes the watcher. Zero fields take defaults.
type AnomalyConfig struct {
	// Factor is the multiple of the trailing baseline that fires an
	// anomaly (default 4: a rate or p99 4x its recent self).
	Factor float64
	// BaselineWindows is how many trailing windows form the baseline
	// (default 8) and, doubling as warm-up, how many must be observed
	// before a metric is judged at all (min 2) — the first window of a
	// fresh cluster is never an anomaly, it is the baseline being born.
	BaselineWindows int
	// MinRate suppresses rate anomalies below this many events/s
	// (default 10): a counter going 0 -> 2/s is noise, not a spike,
	// and flat-zero metrics must not fire on their first blip.
	MinRate float64
	// MinP99Ns suppresses latency anomalies below this p99 (default
	// 1ms): microsecond jitter on an idle histogram is not a spike.
	MinP99Ns int64
	// NoisyShare is the fraction of a window's total bytes (or
	// lock-wait) one principal must exceed to qualify as a hog in
	// ObserveAccounts (default 0.5). Values outside (0, 1) take the
	// default.
	NoisyShare float64
	// MinNoisyBytes suppresses noisy-neighbor verdicts on windows
	// moving fewer total bytes than this (default 1 MB): dominating a
	// near-idle window is not hogging anything.
	MinNoisyBytes int64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Factor <= 1 {
		c.Factor = 4
	}
	if c.BaselineWindows < 2 {
		if c.BaselineWindows == 0 {
			c.BaselineWindows = 8
		} else {
			c.BaselineWindows = 2
		}
	}
	if c.MinRate <= 0 {
		c.MinRate = 10
	}
	if c.MinP99Ns <= 0 {
		c.MinP99Ns = int64(1e6)
	}
	if c.NoisyShare <= 0 || c.NoisyShare >= 1 {
		c.NoisyShare = 0.5
	}
	if c.MinNoisyBytes <= 0 {
		c.MinNoisyBytes = 1 << 20
	}
	return c
}

// Anomaly is one fired annotation: a metric whose current window
// value exceeded Factor x its trailing baseline.
type Anomaly struct {
	Metric   string  `json:"metric"`
	Kind     string  `json:"kind"` // "rate" or "p99"
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	AtNs     int64   `json:"at_ns"`
}

// trail is one metric's trailing baseline: a small ring of recent
// window values plus a firing latch so a sustained spike annotates
// the journal once, on the crossing, not once per window.
type trail struct {
	vals   []float64
	pos    int
	n      int
	firing bool
}

func (t *trail) mean() float64 {
	if t.n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < t.n; i++ {
		s += t.vals[i]
	}
	return s / float64(t.n)
}

func (t *trail) push(v float64) {
	t.vals[t.pos] = v
	t.pos = (t.pos + 1) % len(t.vals)
	if t.n < len(t.vals) {
		t.n++
	}
}

// AnomalyWatcher observes closed WindowRing windows and self-marks
// spikes in the flight record: when a counter's rate or a histogram's
// per-window p99 exceeds a configurable multiple of its own trailing
// baseline, it records an "obs.anomaly" journal event, so the merged
// timeline shows *when the metrics went strange* in between the
// discrete protocol events.
type AnomalyWatcher struct {
	cfg AnomalyConfig
	jr  *Journal

	mu     sync.Mutex
	trails map[string]*trail
}

// NewAnomalyWatcher builds a watcher that annotates jr (may be nil
// for a watcher that only returns anomalies).
func NewAnomalyWatcher(jr *Journal, cfg AnomalyConfig) *AnomalyWatcher {
	return &AnomalyWatcher{
		cfg:    cfg.withDefaults(),
		jr:     jr,
		trails: make(map[string]*trail),
	}
}

// Observe judges one closed window against each metric's trailing
// baseline, updates the baselines, and returns (and journals) any
// anomalies. Call it after WindowRing.Advance with the window it
// returned. An empty window (no rates, no histograms) is a no-op:
// it neither fires nor disturbs the baselines.
func (w *AnomalyWatcher) Observe(win Window) []Anomaly {
	if w == nil || (len(win.Rates) == 0 && len(win.Hists) == 0) {
		return nil
	}
	var out []Anomaly
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, name := range sortedKeys(win.Rates) {
		if a, ok := w.judgeLocked("rate:"+name, win.Rates[name], w.cfg.MinRate); ok {
			out = append(out, Anomaly{Metric: name, Kind: "rate",
				Value: a.v, Baseline: a.base, AtNs: win.End})
		}
	}
	for _, name := range sortedKeys(win.Hists) {
		p99 := float64(win.Hists[name].P99)
		if a, ok := w.judgeLocked("p99:"+name, p99, float64(w.cfg.MinP99Ns)); ok {
			out = append(out, Anomaly{Metric: name, Kind: "p99",
				Value: a.v, Baseline: a.base, AtNs: win.End})
		}
	}
	for _, a := range out {
		w.jr.Record("obs", "anomaly", a.Kind, 0, int64(a.Value),
			fmt.Sprintf("%s %.1f vs baseline %.1f", a.Metric, a.Value, a.Baseline))
	}
	return out
}

type verdict struct{ v, base float64 }

// judgeLocked compares one value against its trailing baseline and
// pushes it into the trail. Warm-up (fewer than BaselineWindows prior
// observations) and sub-floor values never fire; a zero baseline
// (flat-zero history) fires only above the floor — the floor IS the
// baseline for a metric that has never moved.
func (w *AnomalyWatcher) judgeLocked(key string, v, floor float64) (verdict, bool) {
	t := w.trails[key]
	if t == nil {
		t = &trail{vals: make([]float64, w.cfg.BaselineWindows)}
		w.trails[key] = t
	}
	base := t.mean()
	warm := t.n >= w.cfg.BaselineWindows
	t.push(v)
	if !warm || v < floor {
		t.firing = false
		return verdict{}, false
	}
	threshold := base * w.cfg.Factor
	if threshold < floor {
		threshold = floor
	}
	if v < threshold {
		t.firing = false
		return verdict{}, false
	}
	if t.firing {
		return verdict{}, false // still the same sustained spike
	}
	t.firing = true
	return verdict{v: v, base: base}, true
}

// NoisyNeighbor is one fired noisy-neighbor verdict: the hog held
// more than NoisyShare of the window's bytes or lock-wait while the
// victim's per-window op p99 spiked above its own trailing baseline.
type NoisyNeighbor struct {
	Kind        string  `json:"kind"` // "bytes" or "lockwait"
	Hog         string  `json:"hog"`
	Share       float64 `json:"share"`
	Victim      string  `json:"victim"`
	VictimP99Ns int64   `json:"victim_p99_ns"`
	AtNs        int64   `json:"at_ns"`
}

// ObserveAccounts judges one closed accounting window (the Win*
// fields of an AccountTable snapshot taken after Advance) for
// noisy-neighbor interference: correlation of a dominant principal
// with another principal's latency excursion. The victim's p99 is
// judged against its own trailing baseline with the same
// factor/warm-up machinery as metric anomalies, so a reader that is
// always slow never indicts a writer that is always busy — only the
// *change* does. Fired verdicts are journaled as "obs.noisyneighbor"
// events so they land in the merged forensics timeline.
func (w *AnomalyWatcher) ObserveAccounts(stats []AccountStat, atNs int64) []NoisyNeighbor {
	if w == nil || len(stats) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// Judge every principal's windowed p99 first (baselines must
	// advance every window, spike or not).
	excursions := make(map[string]int64)
	var totBytes, totWait int64
	for _, st := range stats {
		if _, ok := w.judgeLocked("acct-p99:"+st.Principal,
			float64(st.WinOpP99Ns), float64(w.cfg.MinP99Ns)); ok {
			excursions[st.Principal] = st.WinOpP99Ns
		}
		totBytes += st.WinBytes()
		totWait += st.WinLockWaitNs
	}
	if len(excursions) == 0 {
		return nil
	}
	var out []NoisyNeighbor
	for _, st := range stats {
		var hogs []NoisyNeighbor
		if totBytes >= w.cfg.MinNoisyBytes {
			if share := float64(st.WinBytes()) / float64(totBytes); share > w.cfg.NoisyShare {
				hogs = append(hogs, NoisyNeighbor{Kind: "bytes", Hog: st.Principal, Share: share})
			}
		}
		if totWait > 0 {
			if share := float64(st.WinLockWaitNs) / float64(totWait); share > w.cfg.NoisyShare {
				hogs = append(hogs, NoisyNeighbor{Kind: "lockwait", Hog: st.Principal, Share: share})
			}
		}
		for _, hog := range hogs {
			for _, victim := range sortedKeys(excursions) {
				if victim == hog.Hog {
					continue
				}
				nn := hog
				nn.Victim = victim
				nn.VictimP99Ns = excursions[victim]
				nn.AtNs = atNs
				out = append(out, nn)
			}
		}
	}
	for _, nn := range out {
		w.jr.Record("obs", "noisyneighbor", nn.Kind, 0, int64(nn.Share*100),
			fmt.Sprintf("hog %s holds %.0f%% of %s; victim %s p99 %.1fms",
				nn.Hog, nn.Share*100, nn.Kind, nn.Victim, float64(nn.VictimP99Ns)/1e6))
	}
	return out
}
