package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Per-principal resource accounting: every byte moved, RPC issued,
// lock-wait nanosecond, and cache miss is attributed to the client or
// tenant ("principal") on whose behalf the work ran. The principal tag
// follows the goroutine exactly like span bindings (trace.go) and
// rides the rpc envelope across machines, so server-side work done for
// a remote client is charged to that client, not to the server.
//
// Work that runs outside any binding — background flushers, lease
// renewals, recovery — lands in the reserved UnknownPrincipal account
// rather than being dropped: unattributed load stays visible, and the
// attribution-coverage gate in the noisy-neighbor experiment measures
// exactly how much of the cluster's work the tags explain.

const (
	// UnknownPrincipal absorbs work recorded outside any binding.
	UnknownPrincipal = "unknown"
	// OtherPrincipal absorbs accounts folded out of a full table, so
	// totals are never lost to eviction.
	OtherPrincipal = "other"
)

// ---- goroutine-local principal binding --------------------------

// The binding table mirrors the span table in trace.go: sharded by
// goroutine ID, with a global bound-count so CurrentPrincipal bails
// with one atomic load when nothing is bound anywhere.
type plShard struct {
	mu sync.Mutex
	m  map[uint64]string
}

var (
	plTab   [glShards]plShard
	plBound atomic.Int64
)

func init() {
	for i := range plTab {
		plTab[i].m = make(map[uint64]string)
	}
}

// CurrentPrincipal returns the principal bound to this goroutine, or
// "" when none is bound.
func CurrentPrincipal() string {
	if plBound.Load() == 0 {
		return ""
	}
	g := goid()
	s := &plTab[g%glShards]
	s.mu.Lock()
	p := s.m[g]
	s.mu.Unlock()
	return p
}

// BoundPrincipals returns the number of live goroutine->principal
// bindings across all shards — the leak-audit counterpart of
// BoundSpans, expected to drain to zero once every bound operation
// has returned.
func BoundPrincipals() int {
	n := 0
	for i := range plTab {
		s := &plTab[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// WithPrincipal binds principal p to the calling goroutine while fn
// runs, restoring any previous binding afterwards (same defer-restore
// discipline as With, so panics and early returns unwind the table).
// An empty p just runs fn.
func WithPrincipal(p string, fn func()) {
	if p == "" {
		fn()
		return
	}
	g := goid()
	s := &plTab[g%glShards]
	s.mu.Lock()
	prev, had := s.m[g]
	s.m[g] = p
	s.mu.Unlock()
	plBound.Add(1)
	defer func() {
		s.mu.Lock()
		if had {
			s.m[g] = prev
		} else {
			delete(s.m, g)
		}
		s.mu.Unlock()
		plBound.Add(-1)
	}()
	fn()
}

// ---- account table ----------------------------------------------

// maxAccounts bounds one table's principal count. When a new
// principal would exceed it, the coldest evictable account is folded
// into OtherPrincipal (counters summed, latency histogram merged), so
// the table is bounded but cluster totals stay exact.
const maxAccounts = 64

type account struct {
	ops         atomic.Int64
	bytesIn     atomic.Int64 // written by the principal
	bytesOut    atomic.Int64 // read by the principal
	walBytes    atomic.Int64
	rpcs        atomic.Int64
	serverOps   atomic.Int64
	lockWaitNs  atomic.Int64
	cacheMisses atomic.Int64
	lat         *Histogram
}

func (a *account) total() int64 {
	return a.bytesIn.Load() + a.bytesOut.Load() + a.ops.Load()
}

// idle reports whether nothing has ever been charged to the account.
// Only the pre-created unknown account can be idle: every other
// account exists because some charge created it.
func (a *account) idle() bool {
	return a.ops.Load() == 0 && a.bytesIn.Load() == 0 && a.bytesOut.Load() == 0 &&
		a.walBytes.Load() == 0 && a.rpcs.Load() == 0 && a.serverOps.Load() == 0 &&
		a.lockWaitNs.Load() == 0 && a.cacheMisses.Load() == 0
}

// AccountStat is the exported per-principal summary: cumulative
// totals plus, after an Advance, the last closed window's deltas (the
// "right now" view a top display wants).
type AccountStat struct {
	Principal   string `json:"principal"`
	Ops         int64  `json:"ops"`
	BytesIn     int64  `json:"bytes_in"`
	BytesOut    int64  `json:"bytes_out"`
	WALBytes    int64  `json:"wal_bytes"`
	RPCs        int64  `json:"rpcs"`
	ServerOps   int64  `json:"server_ops"`
	LockWaitNs  int64  `json:"lock_wait_ns"`
	CacheMisses int64  `json:"cache_misses"`
	OpP50Ns     int64  `json:"op_p50_ns"`
	OpP99Ns     int64  `json:"op_p99_ns"`

	// Last closed window (zero until the first Advance).
	WinSeconds    float64 `json:"win_seconds,omitempty"`
	WinOps        int64   `json:"win_ops,omitempty"`
	WinBytesIn    int64   `json:"win_bytes_in,omitempty"`
	WinBytesOut   int64   `json:"win_bytes_out,omitempty"`
	WinLockWaitNs int64   `json:"win_lock_wait_ns,omitempty"`
	WinOpP99Ns    int64   `json:"win_op_p99_ns,omitempty"`
}

// Bytes returns the cumulative bytes moved either direction.
func (st AccountStat) Bytes() int64 { return st.BytesIn + st.BytesOut }

// WinBytes returns the last window's bytes moved either direction.
func (st AccountStat) WinBytes() int64 { return st.WinBytesIn + st.WinBytesOut }

// acctMark is one account's counter state at a window boundary.
type acctMark struct {
	ops, bytesIn, bytesOut, lockWaitNs int64
	hist                               histCounts
}

type acctWin struct {
	seconds                            float64
	ops, bytesIn, bytesOut, lockWaitNs int64
	p99                                int64
}

// AccountTable is the bounded per-principal accounting table. All
// recording methods are nil-safe no-ops (the ablation knob hands out
// a nil table), normalize an empty principal to UnknownPrincipal, and
// take only a short read lock on the hot path.
type AccountTable struct {
	now NowFunc

	// unknown is the reserved account for unattributed work. It is
	// never folded, so the pointer is stable for the table's lifetime;
	// caching it lets the common unbound charge skip the lock and map
	// lookup entirely.
	unknown *account

	mu    sync.RWMutex
	m     map[string]*account
	prevT int64
	prev  map[string]acctMark
	wins  map[string]acctWin
}

// NewAccountTable returns a standalone table (see NewCounter for the
// standalone-collector idiom). A nil now means wall time.
func NewAccountTable(now NowFunc) *AccountTable {
	if now == nil {
		now = wallNow
	}
	t := &AccountTable{
		now:     now,
		unknown: &account{lat: NewHistogram()},
		m:       make(map[string]*account),
		prev:    make(map[string]acctMark),
		wins:    make(map[string]acctWin),
	}
	t.m[UnknownPrincipal] = t.unknown
	t.prevT = now()
	return t
}

// get returns the principal's account, creating (and if necessary
// evicting) under the write lock.
func (t *AccountTable) get(p string) *account {
	if p == "" || p == UnknownPrincipal {
		return t.unknown
	}
	t.mu.RLock()
	a := t.m[p]
	t.mu.RUnlock()
	if a != nil {
		return a
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if a = t.m[p]; a != nil {
		return a
	}
	// Folding into a fresh other account does not shrink the table on
	// the first pass (one removed, one added), so loop until a slot is
	// actually free or nothing evictable remains.
	for len(t.m) >= maxAccounts && t.foldColdestLocked() {
	}
	a = &account{lat: NewHistogram()}
	t.m[p] = a
	return a
}

// foldColdestLocked folds the least active evictable account into
// OtherPrincipal: counters are summed and the latency histogram
// merged, so nothing the cluster did disappears from the totals —
// only its fine-grained identity is given up. The reserved unknown
// and other accounts are never folded.
func (t *AccountTable) foldColdestLocked() bool {
	var victim string
	var va *account
	for p, a := range t.m {
		if p == UnknownPrincipal || p == OtherPrincipal {
			continue
		}
		if va == nil || a.total() < va.total() {
			victim, va = p, a
		}
	}
	if va == nil {
		return false
	}
	other := t.m[OtherPrincipal]
	if other == nil {
		other = &account{lat: NewHistogram()}
		t.m[OtherPrincipal] = other
	}
	other.ops.Add(va.ops.Load())
	other.bytesIn.Add(va.bytesIn.Load())
	other.bytesOut.Add(va.bytesOut.Load())
	other.walBytes.Add(va.walBytes.Load())
	other.rpcs.Add(va.rpcs.Load())
	other.serverOps.Add(va.serverOps.Load())
	other.lockWaitNs.Add(va.lockWaitNs.Load())
	other.cacheMisses.Add(va.cacheMisses.Load())
	other.lat.absorb(va.lat)
	delete(t.m, victim)
	delete(t.prev, victim)
	delete(t.wins, victim)
	return true
}

// absorb adds src's observations into h (bucket-wise), for folding an
// evicted account's latency distribution into the other account.
func (h *Histogram) absorb(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if v := src.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	for {
		m, cur := src.max.Load(), h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Op records one completed operation and its duration for principal p.
func (t *AccountTable) Op(p string, durNs int64) {
	if t == nil {
		return
	}
	a := t.get(p)
	a.ops.Add(1)
	a.lat.Record(durNs)
}

// Bytes records bytes written (in) and read (out) by principal p.
func (t *AccountTable) Bytes(p string, in, out int64) {
	if t == nil || (in <= 0 && out <= 0) {
		return
	}
	a := t.get(p)
	if in > 0 {
		a.bytesIn.Add(in)
	}
	if out > 0 {
		a.bytesOut.Add(out)
	}
}

// WAL records n log bytes appended on behalf of principal p.
func (t *AccountTable) WAL(p string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.get(p).walBytes.Add(n)
}

// RPC records n RPCs issued on behalf of principal p.
func (t *AccountTable) RPC(p string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.get(p).rpcs.Add(n)
}

// ServerOp records one server-side request handled for principal p
// (the principal arrives in the rpc envelope).
func (t *AccountTable) ServerOp(p string) {
	if t == nil {
		return
	}
	t.get(p).serverOps.Add(1)
}

// LockWait records ns spent waiting for a lock on behalf of p.
func (t *AccountTable) LockWait(p string, ns int64) {
	if t == nil || ns <= 0 {
		return
	}
	t.get(p).lockWaitNs.Add(ns)
}

// CacheMiss records n cache misses charged to principal p.
func (t *AccountTable) CacheMiss(p string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.get(p).cacheMisses.Add(n)
}

// Len returns the number of tracked principals.
func (t *AccountTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// Advance closes the window since the previous Advance (or since
// construction): per-principal deltas and a per-window op p99 via
// histogram bucket deltas, the same math WindowRing applies to named
// metrics. The results ride the next Snapshot's Win* fields.
func (t *AccountTable) Advance() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	secs := float64(now-t.prevT) / 1e9
	for p, a := range t.m {
		var cur acctMark
		cur.ops = a.ops.Load()
		cur.bytesIn = a.bytesIn.Load()
		cur.bytesOut = a.bytesOut.Load()
		cur.lockWaitNs = a.lockWaitNs.Load()
		cur.hist.buckets, cur.hist.count, cur.hist.sum = a.lat.counts()
		prev := t.prev[p]
		win := acctWin{
			seconds:    secs,
			ops:        cur.ops - prev.ops,
			bytesIn:    cur.bytesIn - prev.bytesIn,
			bytesOut:   cur.bytesOut - prev.bytesOut,
			lockWaitNs: cur.lockWaitNs - prev.lockWaitNs,
		}
		if dcount := cur.hist.count - prev.hist.count; dcount > 0 {
			var delta [numBuckets]int64
			var maxB int
			for i := range cur.hist.buckets {
				if d := cur.hist.buckets[i] - prev.hist.buckets[i]; d > 0 {
					delta[i] = d
					maxB = i
				}
			}
			_, hi := BucketBounds(maxB)
			wmax := hi - 1
			if cm := a.lat.Max(); wmax > cm {
				wmax = cm
			}
			win.p99 = quantileOf(delta[:], dcount, 0.99, wmax)
		}
		t.prev[p] = cur
		t.wins[p] = win
	}
	t.prevT = now
}

// Snapshot returns every account's cumulative totals plus the last
// closed window, sorted by total bytes moved (desc), ties by ops then
// principal name for determinism.
func (t *AccountTable) Snapshot() []AccountStat {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	out := make([]AccountStat, 0, len(t.m))
	for p, a := range t.m {
		if a.idle() {
			continue
		}
		st := AccountStat{
			Principal:   p,
			Ops:         a.ops.Load(),
			BytesIn:     a.bytesIn.Load(),
			BytesOut:    a.bytesOut.Load(),
			WALBytes:    a.walBytes.Load(),
			RPCs:        a.rpcs.Load(),
			ServerOps:   a.serverOps.Load(),
			LockWaitNs:  a.lockWaitNs.Load(),
			CacheMisses: a.cacheMisses.Load(),
			OpP50Ns:     a.lat.Quantile(0.50),
			OpP99Ns:     a.lat.Quantile(0.99),
		}
		if w, ok := t.wins[p]; ok {
			st.WinSeconds = w.seconds
			st.WinOps = w.ops
			st.WinBytesIn = w.bytesIn
			st.WinBytesOut = w.bytesOut
			st.WinLockWaitNs = w.lockWaitNs
			st.WinOpP99Ns = w.p99
		}
		out = append(out, st)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bytes() != b.Bytes() {
			return a.Bytes() > b.Bytes()
		}
		if a.Ops != b.Ops {
			return a.Ops > b.Ops
		}
		return a.Principal < b.Principal
	})
	return out
}

// RenderAccounts renders the per-principal table, top style: one row
// per principal, cumulative totals with the last window's rates when
// a window has been closed.
func RenderAccounts(stats []AccountStat) string {
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "principals (%d):\n  %-16s %10s %12s %12s %10s %12s %9s %9s %12s\n",
		len(stats), "principal", "ops", "wr MB", "rd MB", "rpcs",
		"lockwait ms", "p99 ms", "misses", "now MB/s")
	for _, st := range stats {
		rate := "-"
		if st.WinSeconds > 0 {
			rate = fmt.Sprintf("%.2f", float64(st.WinBytes())/1e6/st.WinSeconds)
		}
		fmt.Fprintf(&b, "  %-16s %10d %12.2f %12.2f %10d %12.3f %9.3f %9d %12s\n",
			st.Principal, st.Ops,
			float64(st.BytesIn)/1e6, float64(st.BytesOut)/1e6,
			st.RPCs, float64(st.LockWaitNs)/1e6,
			float64(st.OpP99Ns)/1e6, st.CacheMisses, rate)
	}
	return b.String()
}
