package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func expoRegistry() *Registry {
	reg := NewRegistry((&fakeClock{}).now)
	reg.Counter("fs.ops.count#ws1").Inc()
	reg.Counter("fs.ops.count#ws2").Add(3)
	reg.Gauge("petal.server.inflight#petal0").Set(2)
	h := reg.Histogram("fs.sync.latency#ws1")
	for i := 0; i < 20; i++ {
		h.Record(int64(i+1) * 1e6)
	}
	tab := reg.Resources("lockservice.locks")
	tab.SetNamer(func(id uint64) string { return fmt.Sprintf("inode/%d", id) })
	tab.Acquire(7, 5e6)
	tab.Event(7)
	return reg
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9]+$`)

// TestPrometheusParses validates the exposition text line by line:
// every sample line is well formed, every family has exactly one TYPE
// header, and all of a family's samples sit contiguously under it —
// the grouping the format requires.
func TestPrometheusParses(t *testing.T) {
	out := expoRegistry().Snapshot().Prometheus()
	if out == "" {
		t.Fatal("empty exposition")
	}
	seenType := map[string]bool{}
	family := ""
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			fam, typ := parts[2], parts[3]
			if seenType[fam] {
				t.Fatalf("family %s has two TYPE lines", fam)
			}
			seenType[fam] = true
			switch typ {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("unknown type %q in %q", typ, line)
			}
			family = fam
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if family == "" || !strings.HasPrefix(name, family) {
			t.Fatalf("sample %q not grouped under its family (current %q)", line, family)
		}
	}
	for _, want := range []string{
		"# TYPE frangipani_fs_ops_count_total counter",
		`frangipani_fs_ops_count_total{instance="ws2"} 3`,
		"# TYPE frangipani_fs_sync_latency_ns summary",
		`quantile="0.99"`,
		"frangipani_fs_sync_latency_ns_count",
		`frangipani_resource_wait_ns{table="lockservice.locks",resource="inode/7"} 5000000`,
		`frangipani_resource_events{table="lockservice.locks",resource="inode/7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusPrincipalSeries is the golden test for the labeled
// per-principal rollups: exact lines, one family per resource kind,
// principal as the label, escaping applied.
func TestPrometheusPrincipalSeries(t *testing.T) {
	reg := NewRegistry((&fakeClock{}).now)
	acc := reg.Accounts()
	acc.Op("tenant-a", 2e6)
	acc.Bytes("tenant-a", 1048576, 4096)
	acc.WAL("tenant-a", 512)
	acc.RPC("tenant-a", 7)
	acc.ServerOp("tenant-a")
	acc.LockWait("tenant-a", 3e6)
	acc.CacheMiss("tenant-a", 2)
	acc.Bytes("", 100, 0) // unbound work: visible as "unknown"
	acc.Bytes(`quo"te`, 10, 0)

	out := reg.Snapshot().Prometheus()
	for _, want := range []string{
		"# TYPE frangipani_principal_ops_total counter",
		`frangipani_principal_ops_total{principal="tenant-a"} 1`,
		`frangipani_principal_bytes_in_total{principal="tenant-a"} 1048576`,
		`frangipani_principal_bytes_out_total{principal="tenant-a"} 4096`,
		`frangipani_principal_wal_bytes_total{principal="tenant-a"} 512`,
		`frangipani_principal_rpcs_total{principal="tenant-a"} 7`,
		`frangipani_principal_server_ops_total{principal="tenant-a"} 1`,
		`frangipani_principal_lock_wait_ns_total{principal="tenant-a"} 3000000`,
		`frangipani_principal_cache_misses_total{principal="tenant-a"} 2`,
		"# TYPE frangipani_principal_op_p99_ns gauge",
		`frangipani_principal_bytes_in_total{principal="unknown"} 100`,
		`frangipani_principal_bytes_in_total{principal="quo\"te"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The generic well-formedness walk must still pass with principal
	// series present: each family one TYPE line, samples contiguous.
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if seenType[fam] {
				t.Fatalf("family %s has two TYPE lines", fam)
			}
			seenType[fam] = true
		}
	}
}

func TestPromNameMangling(t *testing.T) {
	fam, inst := promName("fs.sync.latency#ws1")
	if fam != "frangipani_fs_sync_latency" || inst != "ws1" {
		t.Fatalf("got %q, %q", fam, inst)
	}
	fam, inst = promName("plain")
	if fam != "frangipani_plain" || inst != "" {
		t.Fatalf("got %q, %q", fam, inst)
	}
	if got := promEscape("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escape = %q", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := expoRegistry()
	verdict := StatusOK
	srv := httptest.NewServer(Handler(reg, func() HealthReport {
		return HealthReport{Verdict: verdict, Probes: []ProbeResult{{Name: "p", Status: verdict}}}
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "frangipani_fs_ops_count_total") {
		t.Fatal("metrics body missing counter family")
	}

	resp, err = http.Get(srv.URL + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot.json does not decode: %v", err)
	}
	resp.Body.Close()
	if snap.Counters["fs.ops.count#ws2"] != 3 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}

	resp, err = http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/health ok verdict returned %d", resp.StatusCode)
	}
	verdict = StatusCrit
	resp, err = http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rep.Verdict != StatusCrit {
		t.Fatalf("/health crit: code %d, report %+v", resp.StatusCode, rep)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := expoRegistry()
	ms, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + ms.Addr() + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil health func must report ok, got %d", resp.StatusCode)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/health"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
