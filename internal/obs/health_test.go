package obs

import (
	"strings"
	"testing"
)

func TestHealthVerdictIsWorstProbe(t *testing.T) {
	h := NewHealth()
	h.Register("b-ok", func() (ProbeStatus, string) { return StatusOK, "fine" })
	h.Register("a-warn", func() (ProbeStatus, string) { return StatusWarn, "close to limit" })
	rep := h.Evaluate()
	if rep.Verdict != StatusWarn {
		t.Fatalf("verdict = %v, want warn", rep.Verdict)
	}
	h.Register("c-crit", func() (ProbeStatus, string) { return StatusCrit, "expired" })
	rep = h.Evaluate()
	if rep.Verdict != StatusCrit {
		t.Fatalf("verdict = %v, want crit", rep.Verdict)
	}
	// Worst first, then by name.
	order := []string{"c-crit", "a-warn", "b-ok"}
	for i, p := range rep.Probes {
		if p.Name != order[i] {
			t.Fatalf("probe order = %+v, want %v", rep.Probes, order)
		}
	}
	out := rep.Text()
	if !strings.Contains(out, "health: crit") || !strings.Contains(out, "expired") {
		t.Fatalf("report text:\n%s", out)
	}
}

func TestHealthReplaceAndUnregister(t *testing.T) {
	h := NewHealth()
	h.Register("lease", func() (ProbeStatus, string) { return StatusCrit, "" })
	h.Register("lease", func() (ProbeStatus, string) { return StatusOK, "renewed" })
	rep := h.Evaluate()
	if rep.Verdict != StatusOK || len(rep.Probes) != 1 {
		t.Fatalf("replace failed: %+v", rep)
	}
	h.Unregister("lease")
	if rep := h.Evaluate(); len(rep.Probes) != 0 || rep.Verdict != StatusOK {
		t.Fatalf("unregister failed: %+v", rep)
	}
}

func TestHealthNil(t *testing.T) {
	var h *Health
	h.Register("x", nil)
	h.Unregister("x")
	if rep := h.Evaluate(); rep.Verdict != StatusOK {
		t.Fatal("nil Health must evaluate ok")
	}
}

func TestProbeStatusJSON(t *testing.T) {
	for st, want := range map[ProbeStatus]string{
		StatusOK:   `"ok"`,
		StatusWarn: `"warn"`,
		StatusCrit: `"crit"`,
	} {
		b, err := st.MarshalJSON()
		if err != nil || string(b) != want {
			t.Fatalf("MarshalJSON(%v) = %s, %v", st, b, err)
		}
	}
}
