package obs

import (
	"strings"
	"sync"
	"testing"
)

// manualClock only moves when told to, so window lengths are exact.
type manualClock struct {
	mu sync.Mutex
	t  int64
}

func (c *manualClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d int64) {
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

func TestWindowRatesAndQuantiles(t *testing.T) {
	clk := &manualClock{}
	reg := NewRegistry(clk.now)
	ring := NewWindowRing(reg, 4)

	c := reg.Counter("fs.ops.count#ws1")
	h := reg.Histogram("fs.write.latency#ws1")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	for i := 0; i < 9; i++ {
		h.Record(1e6) // 1ms
	}
	h.Record(100e6) // one 100ms outlier
	clk.advance(2e9)
	win := ring.Advance()

	if win.Seconds() != 2 {
		t.Fatalf("window length = %v, want 2s", win.Seconds())
	}
	if got := win.Rates["fs.ops.count#ws1"]; got != 5 {
		t.Fatalf("rate = %v, want 5/s", got)
	}
	hs, ok := win.Hists["fs.write.latency#ws1"]
	if !ok || hs.Count != 10 {
		t.Fatalf("window hist = %+v", hs)
	}
	if hs.P50 < 8e5 || hs.P50 > 13e5 {
		t.Fatalf("window p50 = %d, want ~1ms", hs.P50)
	}
	if hs.P99 < 80e6 || hs.P99 > 100e6 {
		t.Fatalf("window p99 = %d, want ~100ms", hs.P99)
	}
	if hs.Max > 100e6 {
		t.Fatalf("window max %d exceeds cumulative max", hs.Max)
	}
	if hs.Sum != 9*1e6+100e6 {
		t.Fatalf("window sum = %d", hs.Sum)
	}

	// An idle window: rates zero, no histogram rows.
	clk.advance(1e9)
	idle := ring.Advance()
	if got := idle.Rates["fs.ops.count#ws1"]; got != 0 {
		t.Fatalf("idle rate = %v, want 0", got)
	}
	if len(idle.Hists) != 0 {
		t.Fatalf("idle window has hist rows: %+v", idle.Hists)
	}

	// The *window* p99 reflects only the window's samples, not the
	// cumulative distribution: a third window with only fast samples
	// must not show the old outlier.
	for i := 0; i < 10; i++ {
		h.Record(1e6)
	}
	clk.advance(1e9)
	w3 := ring.Advance()
	if hs := w3.Hists["fs.write.latency#ws1"]; hs.P99 > 2e6 {
		t.Fatalf("window p99 = %d includes stale outlier", hs.P99)
	}
}

func TestWindowRingCapacity(t *testing.T) {
	clk := &manualClock{}
	reg := NewRegistry(clk.now)
	ring := NewWindowRing(reg, 3)
	for i := 0; i < 7; i++ {
		clk.advance(1e9)
		ring.Advance()
	}
	wins := ring.Windows()
	if len(wins) != 3 {
		t.Fatalf("retained %d windows, want 3", len(wins))
	}
	// Oldest first, contiguous.
	for i := 1; i < len(wins); i++ {
		if wins[i].Start != wins[i-1].End {
			t.Fatalf("windows not contiguous: %+v", wins)
		}
	}
	last, ok := ring.Last()
	if !ok || last.Start != wins[2].Start || last.End != wins[2].End {
		t.Fatal("Last() disagrees with Windows()")
	}
}

func TestWindowText(t *testing.T) {
	clk := &manualClock{}
	reg := NewRegistry(clk.now)
	ring := NewWindowRing(reg, 2)
	reg.Counter("fs.ops.count#ws1").Inc()
	reg.Counter("idle.counter#ws1") // zero: must be skipped
	reg.Histogram("fs.sync.latency#ws1").Record(5e6)
	clk.advance(1e9)
	out := ring.Advance().Text()
	for _, want := range []string{"rates (/s)", "fs.ops.count#ws1", "latencies this window", "fs.sync.latency#ws1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("window text missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "idle.counter") {
		t.Fatalf("idle counter rendered:\n%s", out)
	}
}

// Concurrent recording while the ring advances must be race-free
// (run under -race) and lose no counts overall.
func TestWindowRingConcurrent(t *testing.T) {
	clk := &manualClock{}
	reg := NewRegistry(clk.now)
	ring := NewWindowRing(reg, 8)
	c := reg.Counter("ops#x")
	h := reg.Histogram("lat#x")

	const workers, per = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Record(int64(i%100) * 1e4)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		default:
			clk.advance(1e7)
			ring.Advance()
			continue
		}
		break
	}
	clk.advance(1e9)
	final := ring.Advance()
	if c.Value() != workers*per {
		t.Fatalf("lost counts: %d", c.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("lost samples: %d", h.Count())
	}
	_ = final
	var nilRing *WindowRing
	nilRing.Advance()
	if _, ok := nilRing.Last(); ok {
		t.Fatal("nil ring must be inert")
	}
}
