package obs

import (
	"fmt"
	"sort"
	"strings"
)

// CritPath aggregates completed span trees into a critical-path
// profile: for every root operation ("fs.sync", "fs.write", ...) it
// attributes the root's wall time to per-"layer.op" self-time — the
// part of a span's duration not covered by its children. Overlap
// between concurrent siblings (pipelined flush workers) is attributed
// to the earliest-starting sibling, so self-time partitions each tree
// exactly: the attributed total equals the root duration, answering
// "where does a Sync go" without double counting parallel work.
type CritPath struct {
	roots map[string]*rootProfile
}

type rootProfile struct {
	count    int64
	totalNs  int64
	attrNs   int64
	self     map[string]*Histogram // per "layer.op" self-time per trace
	selfTot  map[string]int64
	selfOnce map[string]int64 // scratch: self-time within the current trace
}

// NewCritPath returns an empty profile.
func NewCritPath() *CritPath {
	return &CritPath{roots: make(map[string]*rootProfile)}
}

// PathEntry is one row of a profile: a layer.op and its share of the
// root operation's latency.
type PathEntry struct {
	Name    string  `json:"name"`
	SelfNs  int64   `json:"self_ns"`
	Percent float64 `json:"percent"`
	P50     int64   `json:"p50_ns"`
	P99     int64   `json:"p99_ns"`
}

// AddTracer feeds the profile from the tracer's ring: the up-to-max
// most recently completed root traces (0 means all resident).
func (cp *CritPath) AddTracer(tr *Tracer, max int) {
	for _, id := range tr.Roots(max) {
		cp.AddTrace(tr.SpansFor(id))
	}
}

// AddTrace attributes one completed trace. Spans whose parent is
// absent from the slice (evicted from the ring, or a remote stub
// whose local twin was evicted) are skipped: without the parent they
// would double-count time the parent's own spans already cover.
func (cp *CritPath) AddTrace(spans []Span) {
	if cp == nil || len(spans) == 0 {
		return
	}
	var root *Span
	byParent := make(map[uint64][]*Span)
	for i := range spans {
		sp := &spans[i]
		if sp.ID == sp.TraceID {
			root = sp
		} else {
			byParent[sp.Parent] = append(byParent[sp.Parent], sp)
		}
	}
	if root == nil || root.End < root.Start {
		return
	}
	rootOp := root.Layer + "." + root.Op
	rp := cp.roots[rootOp]
	if rp == nil {
		rp = &rootProfile{
			self:    make(map[string]*Histogram),
			selfTot: make(map[string]int64),
		}
		cp.roots[rootOp] = rp
	}
	rp.count++
	rp.totalNs += root.Duration()
	rp.selfOnce = make(map[string]int64)

	var walk func(sp *Span, lo, hi int64)
	walk = func(sp *Span, lo, hi int64) {
		// Clip the span to its parent's window so time outside the
		// parent (a child outliving a background-completed parent)
		// never inflates attribution past the root's duration.
		s, e := sp.Start, sp.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e <= s {
			return
		}
		kids := byParent[sp.ID]
		// Sort children by start and attribute each instant covered by
		// several concurrent siblings to the earliest-starting one: each
		// child's effective window begins where its predecessors' claims
		// end. A child fully shadowed by an earlier sibling contributes
		// nothing (its time is already that sibling's).
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].End < kids[j].End
		})
		covered := int64(0)
		claimed := s // high-water mark of sibling claims
		for _, k := range kids {
			ks, ke := k.Start, k.End
			if ks < s {
				ks = s
			}
			if ke > e {
				ke = e
			}
			if ks < claimed {
				ks = claimed
			}
			if ke <= ks {
				continue
			}
			covered += ke - ks
			claimed = ke
			walk(k, ks, ke)
		}
		self := (e - s) - covered
		if self > 0 {
			rp.selfOnce[sp.Layer+"."+sp.Op] += self
			rp.attrNs += self
		}
	}
	walk(root, root.Start, root.End)

	for name, ns := range rp.selfOnce {
		rp.selfTot[name] += ns
		h := rp.self[name]
		if h == nil {
			h = NewHistogram()
			rp.self[name] = h
		}
		h.Record(ns)
	}
	rp.selfOnce = nil
}

// RootOps returns the root operations seen, sorted by accumulated
// wall time, largest first.
func (cp *CritPath) RootOps() []string {
	if cp == nil {
		return nil
	}
	ops := make([]string, 0, len(cp.roots))
	for op := range cp.roots {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		a, b := cp.roots[ops[i]], cp.roots[ops[j]]
		if a.totalNs != b.totalNs {
			return a.totalNs > b.totalNs
		}
		return ops[i] < ops[j]
	})
	return ops
}

// Profile returns the per-layer.op breakdown of one root operation,
// largest self-time first. Percentages are of the root's total wall
// time.
func (cp *CritPath) Profile(rootOp string) []PathEntry {
	if cp == nil {
		return nil
	}
	rp := cp.roots[rootOp]
	if rp == nil {
		return nil
	}
	out := make([]PathEntry, 0, len(rp.selfTot))
	for name, ns := range rp.selfTot {
		e := PathEntry{Name: name, SelfNs: ns}
		if rp.totalNs > 0 {
			e.Percent = float64(ns) / float64(rp.totalNs) * 100
		}
		if h := rp.self[name]; h != nil {
			e.P50 = h.Quantile(0.5)
			e.P99 = h.Quantile(0.99)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Coverage reports the fraction (0..1) of the root op's accumulated
// wall time attributed to named layer.op buckets. Anything below 1.0
// is ring eviction (partial traces) — the decomposition itself is
// exact.
func (cp *CritPath) Coverage(rootOp string) float64 {
	if cp == nil {
		return 0
	}
	rp := cp.roots[rootOp]
	if rp == nil || rp.totalNs == 0 {
		return 0
	}
	return float64(rp.attrNs) / float64(rp.totalNs)
}

// Count returns how many traces of the root op were aggregated.
func (cp *CritPath) Count(rootOp string) int64 {
	if cp == nil || cp.roots[rootOp] == nil {
		return 0
	}
	return cp.roots[rootOp].count
}

// MeanNs returns the mean root latency of the root op.
func (cp *CritPath) MeanNs(rootOp string) int64 {
	if cp == nil {
		return 0
	}
	rp := cp.roots[rootOp]
	if rp == nil || rp.count == 0 {
		return 0
	}
	return rp.totalNs / rp.count
}

// Report renders the whole profile — the "where does a Sync go"
// answer — one section per root op:
//
//	fs.sync — 12 ops, mean 38.1ms, 99.8% attributed
//	  wal.flush                 41.2%    15.7ms   p50 1.2ms  p99 2.9ms
//	  petal.write               33.0%    12.6ms   p50 0.9ms  p99 2.1ms
//	  ...
func (cp *CritPath) Report() string {
	if cp == nil {
		return ""
	}
	var b strings.Builder
	for _, op := range cp.RootOps() {
		rp := cp.roots[op]
		fmt.Fprintf(&b, "%s — %d ops, mean %.3fms, %.1f%% attributed\n",
			op, rp.count, float64(cp.MeanNs(op))/1e6, cp.Coverage(op)*100)
		for _, e := range cp.Profile(op) {
			fmt.Fprintf(&b, "  %-28s %6.1f%% %10.3fms   p50 %.3fms  p99 %.3fms\n",
				e.Name, e.Percent, float64(e.SelfNs)/1e6,
				float64(e.P50)/1e6, float64(e.P99)/1e6)
		}
	}
	return b.String()
}
