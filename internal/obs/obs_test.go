package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry(nil)
	c1 := r.Counter("fs.ops.count#ws1")
	c2 := r.Counter("fs.ops.count#ws1")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Add(3)
	c1.Inc()
	if c2.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c2.Value())
	}
	g := r.Gauge("fs.flush.peak#ws1")
	g.Set(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered gauge to %d", g.Value())
	}
	g.SetMax(9)
	g.Add(-2)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").SetMax(int64(i))
				r.Histogram("h").Record(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	clock := &fakeClock{}
	r := NewRegistry(clock.now)
	r.Counter("cache.hits#ws1").Add(10)
	r.Gauge("lockservice.server.locks#ls").Set(4)
	r.Histogram("fs.sync.latency#ws1").Record(2_000_000)

	s := r.Snapshot()
	if s.Empty() {
		t.Fatal("snapshot with activity must not be Empty")
	}
	if s.Counters["cache.hits#ws1"] != 10 {
		t.Fatalf("counters: %v", s.Counters)
	}
	if s.Histograms["fs.sync.latency#ws1"].Count != 1 {
		t.Fatalf("histograms: %v", s.Histograms)
	}

	var back Snapshot
	if err := json.Unmarshal([]byte(s.JSON()), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Counters["cache.hits#ws1"] != 10 {
		t.Fatalf("JSON lost counter: %v", back.Counters)
	}

	txt := s.Text()
	for _, want := range []string{"cache.hits#ws1", "fs.sync.latency#ws1", "p99"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, txt)
		}
	}

	if !NewRegistry(nil).Snapshot().Empty() {
		t.Fatal("fresh registry must snapshot as Empty")
	}
}

func TestRegistryClock(t *testing.T) {
	clock := &fakeClock{}
	r := NewRegistry(clock.now)
	a := r.Now()
	b := r.Now()
	if b <= a {
		t.Fatal("registry must use the injected clock")
	}
	var nilReg *Registry
	if nilReg.Now() == 0 {
		t.Fatal("nil registry must fall back to wall time")
	}
}
