package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic NowFunc for trace tests.
type fakeClock struct {
	mu sync.Mutex
	t  int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += 1e6 // 1ms per observation
	return c.t
}

func TestSpanTreeStructure(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()

	root := tr.Start("fs", "sync")
	if root.TraceID != root.ID || root.Parent != 0 {
		t.Fatalf("root span malformed: %+v", root)
	}
	With(root, func() {
		child := tr.Start("wal", "flush")
		if child.TraceID != root.TraceID || child.Parent != root.ID {
			t.Fatalf("child not parented: %+v", child)
		}
		With(child, func() {
			g := tr.Start("petal", "write")
			if g.Parent != child.ID {
				t.Fatalf("grandchild not parented: %+v", g)
			}
			g.Done()
		})
		child.Done()
		// After the inner With returns, the binding must be restored.
		if Current() != root {
			t.Fatal("binding not restored after nested With")
		}
	})
	if Current() != nil {
		t.Fatal("binding must be cleared after With")
	}
	root.Done()

	spans := tr.SpansFor(root.TraceID)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	out := tr.RenderTrace(root.TraceID)
	for _, want := range []string{"fs.sync", "wal.flush", "petal.write"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// petal.write must be indented deeper than wal.flush.
	if strings.Index(out, "    wal.flush") < 0 || strings.Index(out, "      petal.write") < 0 {
		t.Errorf("tree indentation wrong:\n%s", out)
	}
}

func TestChildRequiresBinding(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	if sp := tr.Child("wal", "flush"); sp != nil {
		t.Fatal("Child outside any trace must return nil")
	}
	root := tr.Start("fs", "write")
	With(root, func() {
		if sp := tr.Child("wal", "flush"); sp == nil {
			t.Fatal("Child inside a trace must return a span")
		} else {
			sp.Done()
		}
	})
	root.Done()
}

func TestRemoteParenting(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	// Simulate the receive side of an rpc carrying trace context.
	stub := Remote(42, 7)
	var sp *Span
	With(stub, func() {
		sp = tr.Start("petal", "server.write")
	})
	sp.Done()
	if sp.TraceID != 42 || sp.Parent != 7 {
		t.Fatalf("remote-parented span: %+v", sp)
	}
	if Remote(0, 9) != nil {
		t.Fatal("Remote with zero trace ID must be nil")
	}
}

func TestSlowDumps(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	tr.SetSlowThreshold(500 * time.Microsecond) // every op is "slow" on the fake clock
	sp := tr.Start("fs", "create")
	sp.Done()
	dumps := tr.SlowDumps()
	if len(dumps) != 1 || !strings.Contains(dumps[0], "fs.create") {
		t.Fatalf("slow dump not captured: %q", dumps)
	}
	if tr.LastRoot() != sp.TraceID {
		t.Fatalf("LastRoot %d, want %d", tr.LastRoot(), sp.TraceID)
	}
	// Dumps ring must stay bounded.
	for i := 0; i < 3*maxSlowDumps; i++ {
		s := tr.Start("fs", "create")
		s.Done()
	}
	if n := len(tr.SlowDumps()); n > maxSlowDumps {
		t.Fatalf("%d dumps retained, cap is %d", n, maxSlowDumps)
	}
}

func TestConcurrentTracing(t *testing.T) {
	r := NewRegistry(nil) // wall clock
	tr := r.Tracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				root := tr.Start("fs", "op")
				With(root, func() {
					c := tr.Child("wal", "append")
					c.Done()
					if Current() != root {
						t.Error("cross-goroutine binding leak")
					}
				})
				root.Done()
			}
		}()
	}
	wg.Wait()
	if Current() != nil {
		t.Fatal("stale binding after concurrent load")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	first := tr.Start("fs", "op")
	first.Done()
	for i := 0; i < ringSpans+10; i++ {
		sp := tr.Start("fs", "op")
		sp.Done()
	}
	if got := tr.SpansFor(first.TraceID); len(got) != 0 {
		t.Fatalf("evicted span still visible: %v", got)
	}
}
