package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// The goroutine-local binding table must drain to zero after every
// traced operation returns — including operations that panic out of
// With or return early from nested bindings. A leaked binding would
// misparent every later span started on a recycled goroutine and
// grow the table without bound.
func TestBindingTableDrains(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Start("fs", "op")
			switch i % 3 {
			case 0: // normal nested completion
				With(sp, func() {
					child := tr.Start("wal", "x")
					With(child, func() {})
					child.Done()
				})
			case 1: // panic from the innermost With
				func() {
					defer func() { _ = recover() }()
					With(sp, func() {
						With(tr.Start("wal", "x"), func() {
							panic("boom")
						})
					})
				}()
			case 2: // early return out of With
				With(sp, func() {
					if i > 0 {
						return
					}
					tr.Start("wal", "x").Done()
				})
			}
			sp.Done()
		}(i)
	}
	wg.Wait()
	if n := BoundSpans(); n != 0 {
		t.Fatalf("glTab leaked %d bindings after all operations returned", n)
	}
	if Current() != nil {
		t.Fatal("main goroutine has a stale binding")
	}
}

// Slow-op dumps are individually size-bounded so maxSlowDumps of them
// cannot pin megabytes of rendered traces.
func TestSlowDumpTruncated(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	tr.SetSlowThreshold(time.Nanosecond)
	root := tr.Start("fs", "sync")
	With(root, func() {
		for i := 0; i < 2000; i++ {
			tr.Start("petal", "write-with-a-rather-long-operation-name").Done()
		}
	})
	root.Done()
	dumps := tr.SlowDumps()
	if len(dumps) == 0 {
		t.Fatal("no slow dump captured")
	}
	d := dumps[len(dumps)-1]
	if len(d) > maxDumpBytes+64 {
		t.Fatalf("dump is %d bytes, cap is %d", len(d), maxDumpBytes)
	}
	if !strings.Contains(d, "truncated") {
		t.Fatal("oversized dump not marked truncated")
	}
}
