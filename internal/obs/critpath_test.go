package obs

import (
	"strings"
	"testing"
)

func mkSpan(trace, id, parent uint64, layer, op string, start, end int64) Span {
	return Span{TraceID: trace, ID: id, Parent: parent, Layer: layer, Op: op, Start: start, End: end}
}

// Overlapping concurrent siblings must partition, not double count:
// the overlap goes to the earlier-starting span and the attributed
// total equals the root duration exactly.
func TestCritPathPartitionsOverlappingSiblings(t *testing.T) {
	cp := NewCritPath()
	cp.AddTrace([]Span{
		mkSpan(1, 1, 0, "fs", "sync", 0, 100),
		mkSpan(1, 2, 1, "wal", "flush", 10, 40),
		mkSpan(1, 3, 1, "petal", "write", 30, 80),
	})
	if got := cp.Coverage("fs.sync"); got != 1 {
		t.Fatalf("coverage = %v, want exactly 1", got)
	}
	want := map[string]int64{
		"wal.flush":   30, // [10,40)
		"petal.write": 40, // [40,80): overlap [30,40) went to wal.flush
		"fs.sync":     30, // 100 - 70 covered
	}
	for _, e := range cp.Profile("fs.sync") {
		if e.SelfNs != want[e.Name] {
			t.Errorf("%s self = %d, want %d", e.Name, e.SelfNs, want[e.Name])
		}
		delete(want, e.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing entries: %v", want)
	}
}

// A child outliving its parent window (background completion) is
// clipped; a sibling fully shadowed by an earlier one contributes
// nothing.
func TestCritPathClipsAndShadows(t *testing.T) {
	cp := NewCritPath()
	cp.AddTrace([]Span{
		mkSpan(7, 7, 0, "fs", "write", 0, 100),
		mkSpan(7, 8, 7, "petal", "write", 90, 150), // clipped to [90,100)
		mkSpan(7, 9, 7, "wal", "append", 92, 98),   // fully shadowed by sibling 8
	})
	if got := cp.Coverage("fs.write"); got != 1 {
		t.Fatalf("coverage = %v, want 1", got)
	}
	prof := cp.Profile("fs.write")
	self := map[string]int64{}
	for _, e := range prof {
		self[e.Name] = e.SelfNs
	}
	if self["fs.write"] != 90 || self["petal.write"] != 10 {
		t.Fatalf("bad attribution: %+v", self)
	}
	if _, ok := self["wal.append"]; ok {
		t.Fatal("shadowed sibling must contribute nothing")
	}
}

// Grandchildren subtract from their parent, not the root.
func TestCritPathNesting(t *testing.T) {
	cp := NewCritPath()
	cp.AddTrace([]Span{
		mkSpan(3, 3, 0, "fs", "sync", 0, 100),
		mkSpan(3, 4, 3, "wal", "flush", 20, 80),
		mkSpan(3, 5, 4, "petal", "write", 30, 60),
	})
	self := map[string]int64{}
	for _, e := range cp.Profile("fs.sync") {
		self[e.Name] = e.SelfNs
	}
	if self["fs.sync"] != 40 || self["wal.flush"] != 30 || self["petal.write"] != 30 {
		t.Fatalf("bad attribution: %+v", self)
	}
}

// Spans whose parent was evicted from the ring are skipped entirely
// so coverage never exceeds 1.
func TestCritPathSkipsOrphans(t *testing.T) {
	cp := NewCritPath()
	cp.AddTrace([]Span{
		mkSpan(5, 5, 0, "fs", "read", 0, 50),
		mkSpan(5, 6, 999, "petal", "read", 0, 50), // parent not in slice
	})
	if got := cp.Coverage("fs.read"); got != 1 {
		t.Fatalf("coverage = %v, want 1", got)
	}
	if prof := cp.Profile("fs.read"); len(prof) != 1 || prof[0].Name != "fs.read" {
		t.Fatalf("orphan leaked into profile: %+v", prof)
	}
}

func TestCritPathFromTracer(t *testing.T) {
	r := NewRegistry((&fakeClock{}).now)
	tr := r.Tracer()
	for i := 0; i < 3; i++ {
		root := tr.Start("fs", "sync")
		With(root, func() {
			child := tr.Start("wal", "flush")
			child.Done()
		})
		root.Done()
	}
	cp := NewCritPath()
	cp.AddTracer(tr, 0)
	if got := cp.Count("fs.sync"); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	ops := cp.RootOps()
	if len(ops) != 1 || ops[0] != "fs.sync" {
		t.Fatalf("RootOps = %v", ops)
	}
	if cov := cp.Coverage("fs.sync"); cov < 0.99 || cov > 1.01 {
		t.Fatalf("coverage = %v", cov)
	}
	if cp.MeanNs("fs.sync") <= 0 {
		t.Fatal("mean must be positive")
	}
	rep := cp.Report()
	for _, want := range []string{"fs.sync", "wal.flush", "attributed"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCritPathNilAndEmpty(t *testing.T) {
	var cp *CritPath
	cp.AddTrace(nil)
	if cp.Report() != "" || cp.RootOps() != nil || cp.Coverage("x") != 0 {
		t.Fatal("nil CritPath must be inert")
	}
	cp2 := NewCritPath()
	cp2.AddTrace([]Span{mkSpan(1, 2, 1, "fs", "x", 0, 10)}) // no root
	if len(cp2.RootOps()) != 0 {
		t.Fatal("rootless trace must be ignored")
	}
}
