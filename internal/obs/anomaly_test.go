package obs

import "testing"

func rateWin(end int64, name string, rate float64) Window {
	return Window{Start: end - 1e9, End: end, Rates: map[string]float64{name: rate}}
}

func TestAnomalyEmptyWindowNoop(t *testing.T) {
	w := NewAnomalyWatcher(nil, AnomalyConfig{BaselineWindows: 2})
	if got := w.Observe(Window{Start: 0, End: 1e9}); got != nil {
		t.Fatalf("empty window fired %v", got)
	}
	// An empty window must not count toward warm-up either.
	w.Observe(rateWin(2e9, "fs.write#ws1", 100))
	w.Observe(rateWin(3e9, "fs.write#ws1", 100))
	w.Observe(Window{Start: 3e9, End: 4e9}) // empty: ignored
	got := w.Observe(rateWin(5e9, "fs.write#ws1", 1000))
	if len(got) != 1 {
		t.Fatalf("warm metric should fire after 2 real windows, got %v", got)
	}
}

func TestAnomalyFirstWindowSeedsBaseline(t *testing.T) {
	w := NewAnomalyWatcher(nil, AnomalyConfig{BaselineWindows: 3})
	// A fresh cluster's first windows establish the baseline; even a
	// huge first value is not judged against anything.
	for i := 0; i < 3; i++ {
		if got := w.Observe(rateWin(int64(i+1)*1e9, "fs.write#ws1", 5000)); got != nil {
			t.Fatalf("warm-up window %d fired %v", i, got)
		}
	}
	// Now warmed at ~5000/s; staying flat must not fire...
	if got := w.Observe(rateWin(4e9, "fs.write#ws1", 5200)); got != nil {
		t.Fatalf("flat traffic fired %v", got)
	}
	// ...but 4x does, once, with the latch holding on sustain.
	got := w.Observe(rateWin(5e9, "fs.write#ws1", 25000))
	if len(got) != 1 || got[0].Kind != "rate" || got[0].Metric != "fs.write#ws1" {
		t.Fatalf("spike: got %v", got)
	}
	if got := w.Observe(rateWin(6e9, "fs.write#ws1", 26000)); got != nil {
		t.Fatalf("sustained spike re-fired: %v", got)
	}
}

func TestAnomalyFlatZeroRate(t *testing.T) {
	w := NewAnomalyWatcher(nil, AnomalyConfig{BaselineWindows: 2, MinRate: 10})
	// Flat-zero history: idle metric, zero baseline, no divide-by-zero.
	for i := 0; i < 5; i++ {
		if got := w.Observe(rateWin(int64(i+1)*1e9, "petal.retries#ws1", 0)); got != nil {
			t.Fatalf("flat zero fired %v", got)
		}
	}
	// A blip under the MinRate floor stays quiet...
	if got := w.Observe(rateWin(6e9, "petal.retries#ws1", 3)); got != nil {
		t.Fatalf("sub-floor blip fired %v", got)
	}
	// ...a real burst above the floor fires against baseline 0.
	got := w.Observe(rateWin(7e9, "petal.retries#ws1", 50))
	if len(got) != 1 || got[0].Baseline >= 10 {
		t.Fatalf("zero-baseline burst: got %v", got)
	}
}

func TestAnomalyP99AndJournal(t *testing.T) {
	j := NewJournal("cluster", 16, nil)
	w := NewAnomalyWatcher(j, AnomalyConfig{BaselineWindows: 2, MinP99Ns: 1e6})
	h := func(end int64, p99 int64) Window {
		return Window{Start: end - 1e9, End: end,
			Hists: map[string]HistStat{"fs.sync.latency#ws1": {Count: 10, P99: p99}}}
	}
	w.Observe(h(1e9, 2e6))
	w.Observe(h(2e9, 2e6))
	got := w.Observe(h(3e9, 40e6)) // 20x p99 spike
	if len(got) != 1 || got[0].Kind != "p99" {
		t.Fatalf("p99 spike: got %v", got)
	}
	evs := j.Events()
	if len(evs) != 1 || evs[0].Layer != "obs" || evs[0].Op != "anomaly" || evs[0].Kind != "p99" {
		t.Fatalf("journal annotation missing: %v", evs)
	}
	// Recovery then a second spike fires again (latch resets).
	w.Observe(h(4e9, 2e6))
	w.Observe(h(5e9, 2e6))
	w.Observe(h(6e9, 2e6))
	if got := w.Observe(h(7e9, 60e6)); len(got) != 1 {
		t.Fatalf("second spike after recovery: got %v", got)
	}
}

// acctWinStats builds one accounting window: a streamer moving most
// of the bytes and a reader whose p99 is the parameter.
func acctWinStats(streamBytes, readerWait int64, readerP99 int64) []AccountStat {
	return []AccountStat{
		{Principal: "streamer", WinBytesIn: streamBytes, WinOpP99Ns: 5e5,
			WinLockWaitNs: 20e6},
		{Principal: "reader", WinBytesOut: 4 << 10, WinOpP99Ns: readerP99,
			WinLockWaitNs: readerWait},
	}
}

func TestNoisyNeighborFires(t *testing.T) {
	j := NewJournal("cluster", 16, nil)
	w := NewAnomalyWatcher(j, AnomalyConfig{BaselineWindows: 2, MinP99Ns: 1e6})
	// Warm up: streamer busy, reader healthy. No verdicts.
	for i := 0; i < 3; i++ {
		if got := w.ObserveAccounts(acctWinStats(8<<20, 1e6, 2e6), int64(i+1)*1e9); got != nil {
			t.Fatalf("warm-up window %d fired %v", i, got)
		}
	}
	// Reader's p99 spikes 20x while the streamer holds >50% of bytes
	// and lock-wait: both kinds fire, naming hog and victim.
	got := w.ObserveAccounts(acctWinStats(8<<20, 1e6, 40e6), 4e9)
	if len(got) != 2 {
		t.Fatalf("expected bytes+lockwait verdicts, got %v", got)
	}
	for _, nn := range got {
		if nn.Hog != "streamer" || nn.Victim != "reader" || nn.Share <= 0.5 {
			t.Fatalf("verdict misattributed: %+v", nn)
		}
		if nn.Kind != "bytes" && nn.Kind != "lockwait" {
			t.Fatalf("unknown kind: %+v", nn)
		}
	}
	found := false
	for _, e := range j.Events() {
		if e.Layer == "obs" && e.Op == "noisyneighbor" {
			found = true
		}
	}
	if !found {
		t.Fatal("noisyneighbor event not journaled")
	}
	// Sustained spike: the p99 latch holds, so no re-fire.
	if got := w.ObserveAccounts(acctWinStats(8<<20, 1e6, 45e6), 5e9); got != nil {
		t.Fatalf("sustained spike re-fired: %v", got)
	}
}

func TestNoisyNeighborNeedsBothSignals(t *testing.T) {
	w := NewAnomalyWatcher(nil, AnomalyConfig{BaselineWindows: 2, MinP99Ns: 1e6})
	// Victim spikes but nobody dominates: total bytes split evenly and
	// below MinNoisyBytes — no verdict even though the excursion fires.
	even := func(p99 int64) []AccountStat {
		return []AccountStat{
			{Principal: "a", WinBytesIn: 100, WinOpP99Ns: 5e5},
			{Principal: "b", WinBytesOut: 100, WinOpP99Ns: p99},
		}
	}
	w.ObserveAccounts(even(2e6), 1e9)
	w.ObserveAccounts(even(2e6), 2e9)
	if got := w.ObserveAccounts(even(40e6), 3e9); got != nil {
		t.Fatalf("no hog but fired: %v", got)
	}
	// A hog without any victim excursion is just a busy tenant.
	w2 := NewAnomalyWatcher(nil, AnomalyConfig{BaselineWindows: 2, MinP99Ns: 1e6})
	for i := 0; i < 4; i++ {
		if got := w2.ObserveAccounts(acctWinStats(8<<20, 1e6, 2e6), int64(i+1)*1e9); got != nil {
			t.Fatalf("hog without victim fired: %v", got)
		}
	}
}
