package cache

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLookupInsert(t *testing.T) {
	p := NewPool(512, 16)
	if _, ok := p.Lookup(0); ok {
		t.Fatal("lookup hit on empty pool")
	}
	data := make([]byte, 512)
	data[0] = 42
	e := p.Insert(1024, data, 7)
	got, ok := p.Lookup(1024)
	if !ok || got != e || got.Data[0] != 42 {
		t.Fatal("insert/lookup mismatch")
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestLRUEvictionPrefersOld(t *testing.T) {
	p := NewPool(512, 4)
	buf := make([]byte, 512)
	for i := int64(0); i < 4; i++ {
		p.Insert(i*512, buf, 1)
	}
	p.Lookup(0) // freshen addr 0
	p.Insert(4*512, buf, 1)
	if _, ok := p.Lookup(0); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := p.Lookup(512); ok {
		t.Fatal("LRU entry survived over-capacity insert")
	}
	if p.Len() != 4 {
		t.Fatalf("len=%d, want 4", p.Len())
	}
}

func TestDirtyEvictionFlushes(t *testing.T) {
	p := NewPool(512, 2)
	var mu sync.Mutex
	var flushed []int64
	p.SetFlusher(func(e *Entry) error {
		mu.Lock()
		flushed = append(flushed, e.Addr)
		mu.Unlock()
		return nil
	})
	buf := make([]byte, 512)
	e0 := p.Insert(0, buf, 1)
	p.MarkDirty(e0, 5)
	p.Insert(512, buf, 1)
	p.Insert(1024, buf, 1) // evicts addr 0, which is dirty
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != 1 || flushed[0] != 0 {
		t.Fatalf("flushed = %v, want [0]", flushed)
	}
}

func TestOwnerIndex(t *testing.T) {
	p := NewPool(512, 64)
	buf := make([]byte, 512)
	for i := int64(0); i < 6; i++ {
		owner := uint64(i % 2)
		e := p.Insert(i*512, buf, owner)
		if i%3 == 0 {
			p.MarkDirty(e, i)
		}
	}
	d0 := p.DirtyByOwner(0) // addrs 0 (i=0) dirty? i=0 owner 0 dirty; i=3 owner 1 dirty
	if len(d0) != 1 || d0[0].Addr != 0 {
		t.Fatalf("owner 0 dirty = %v", d0)
	}
	d1 := p.DirtyByOwner(1)
	if len(d1) != 1 || d1[0].Addr != 3*512 {
		t.Fatalf("owner 1 dirty = %v", d1)
	}
	p.InvalidateByOwner(0)
	for i := int64(0); i < 6; i += 2 {
		if _, ok := p.Lookup(i * 512); ok {
			t.Fatalf("owner-0 entry %d survived invalidation", i)
		}
	}
	if _, ok := p.Lookup(512); !ok {
		t.Fatal("owner-1 entry wrongly invalidated")
	}
}

func TestMarkCleanAndSeq(t *testing.T) {
	p := NewPool(512, 4)
	e := p.Insert(0, make([]byte, 512), 1)
	p.MarkDirty(e, 10)
	p.MarkDirty(e, 7) // lower seq must not regress
	if e.Seq != 10 {
		t.Fatalf("seq = %d, want 10", e.Seq)
	}
	if !p.HasDirty() {
		t.Fatal("HasDirty false with dirty entry")
	}
	p.MarkClean(e)
	if p.HasDirty() {
		t.Fatal("HasDirty true after clean")
	}
}

func TestInvalidateAll(t *testing.T) {
	p := NewPool(512, 16)
	for i := int64(0); i < 8; i++ {
		p.Insert(i*512, make([]byte, 512), uint64(i))
	}
	p.InvalidateAll()
	if p.Len() != 0 {
		t.Fatalf("len=%d after InvalidateAll", p.Len())
	}
	// Pool still usable.
	p.Insert(0, make([]byte, 512), 1)
	if p.Len() != 1 {
		t.Fatal("pool unusable after InvalidateAll")
	}
}

func TestReInsertChangesOwner(t *testing.T) {
	p := NewPool(512, 8)
	p.Insert(0, make([]byte, 512), 1)
	p.Insert(0, make([]byte, 512), 2)
	if got := p.DirtyByOwner(1); len(got) != 0 {
		t.Fatal("old owner still indexed")
	}
	e, _ := p.Lookup(0)
	p.MarkDirty(e, 1)
	if got := p.DirtyByOwner(2); len(got) != 1 {
		t.Fatal("new owner not indexed")
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPool(64, 8)
		buf := make([]byte, 64)
		for _, op := range ops {
			addr := int64(op%32) * 64
			switch op % 3 {
			case 0, 1:
				p.Insert(addr, buf, uint64(op%4))
			case 2:
				if e, ok := p.Lookup(addr); ok {
					p.MarkDirty(e, int64(op))
				}
			}
			if p.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
