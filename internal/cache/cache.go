// Package cache implements the buffer cache used by each Frangipani
// server (standing in for the kernel's unified buffer cache). Every
// entry records the lock that covers it and the write-ahead-log
// sequence number of the latest logged update that dirtied it, so the
// file system can implement the paper's coherence rules:
//
//   - release a read lock  => invalidate the covered entries;
//   - downgrade a write lock => flush the covered dirty entries,
//     keep them cached;
//   - release a write lock => flush and invalidate.
//
// The pool evicts clean entries LRU-first; dirty victims are handed
// to the registered flusher (which must write the log record before
// the block, per the WAL rule).
package cache

import (
	"container/list"
	"sync"

	"frangipani/internal/obs"
)

// Entry is one cached block. Data is mutated in place by the owner
// while it holds the covering lock; in-place writes go through
// Pool.Mutate so background flushers (which snapshot via
// SnapshotBatch) never observe a torn block.
type Entry struct {
	Addr  int64
	Data  []byte
	Dirty bool
	// Seq is the log sequence of the latest record describing this
	// block's pending update; the log must be flushed through Seq
	// before Data may be written to Petal.
	Seq int64
	// Owner is the lock id covering this block.
	Owner uint64

	gen  int64 // bumped on every MarkDirty; guards MarkCleanIf
	elem *list.Element
}

// Flusher writes a dirty entry to stable storage (log first, then
// block). It is called with the pool lock NOT held.
type Flusher func(*Entry) error

// Pool is a fixed-capacity block cache.
type Pool struct {
	blockSize int
	capacity  int
	flusher   Flusher

	mu      sync.Mutex
	entries map[int64]*Entry
	lru     *list.List // front = most recent
	byOwner map[uint64]map[int64]*Entry

	hits, misses, evictions *obs.Counter
	acct                    *obs.AccountTable // per-principal miss attribution
}

// NewPool creates a cache holding up to capacity blocks of blockSize
// bytes. Counters start standalone; SetObs repoints them at a
// registry.
func NewPool(blockSize, capacity int) *Pool {
	return &Pool{
		blockSize: blockSize,
		capacity:  capacity,
		entries:   make(map[int64]*Entry),
		lru:       list.New(),
		byOwner:   make(map[uint64]map[int64]*Entry),
		hits:      obs.NewCounter(),
		misses:    obs.NewCounter(),
		evictions: obs.NewCounter(),
	}
}

// SetObs attaches the pool's counters to a registry under
// "cache.<metric>#<instance>". Call before concurrent use; a nil
// registry keeps the standalone counters.
func (p *Pool) SetObs(reg *obs.Registry, instance string) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	p.hits = reg.Counter("cache.hits#" + instance)
	p.misses = reg.Counter("cache.misses#" + instance)
	p.evictions = reg.Counter("cache.evictions#" + instance)
	p.acct = reg.Accounts()
	p.mu.Unlock()
}

// SetFlusher installs the dirty-eviction callback.
func (p *Pool) SetFlusher(f Flusher) {
	p.mu.Lock()
	p.flusher = f
	p.mu.Unlock()
}

// BlockSize returns the pool's block size.
func (p *Pool) BlockSize() int { return p.blockSize }

// Capacity returns the pool's entry capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Usage reports occupancy for health probing: resident entries and
// how many of them are dirty.
func (p *Pool) Usage() (resident, dirty int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.Dirty {
			dirty++
		}
	}
	return len(p.entries), dirty
}

// Lookup returns the cached entry for addr, if present, bumping LRU.
func (p *Pool) Lookup(addr int64) (*Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[addr]
	if ok {
		p.lru.MoveToFront(e.elem)
		p.hits.Inc()
	} else {
		p.misses.Inc()
		// Misses force a backing read; charge the principal whose
		// operation took the fault.
		p.acct.CacheMiss(obs.CurrentPrincipal(), 1)
	}
	return e, ok
}

// Insert adds (or replaces) the entry for addr with the given data
// and owner, evicting if needed. It returns the entry.
func (p *Pool) Insert(addr int64, data []byte, owner uint64) *Entry {
	p.mu.Lock()
	if e, ok := p.entries[addr]; ok {
		copy(e.Data, data)
		p.setOwnerLocked(e, owner)
		p.lru.MoveToFront(e.elem)
		p.mu.Unlock()
		return e
	}
	e := &Entry{Addr: addr, Data: make([]byte, p.blockSize), Owner: owner}
	copy(e.Data, data)
	p.entries[addr] = e
	e.elem = p.lru.PushFront(e)
	p.addOwnerLocked(e)
	victims := p.collectVictimsLocked()
	p.mu.Unlock()
	p.flushVictims(victims)
	return e
}

func (p *Pool) setOwnerLocked(e *Entry, owner uint64) {
	if e.Owner == owner {
		return
	}
	p.removeOwnerLocked(e)
	e.Owner = owner
	p.addOwnerLocked(e)
}

func (p *Pool) addOwnerLocked(e *Entry) {
	m := p.byOwner[e.Owner]
	if m == nil {
		m = make(map[int64]*Entry)
		p.byOwner[e.Owner] = m
	}
	m[e.Addr] = e
}

func (p *Pool) removeOwnerLocked(e *Entry) {
	if m := p.byOwner[e.Owner]; m != nil {
		delete(m, e.Addr)
		if len(m) == 0 {
			delete(p.byOwner, e.Owner)
		}
	}
}

// collectVictimsLocked trims over-capacity entries, removing clean
// ones immediately and returning dirty ones for flushing.
func (p *Pool) collectVictimsLocked() []*Entry {
	var dirty []*Entry
	for len(p.entries) > p.capacity {
		elem := p.lru.Back()
		if elem == nil {
			break
		}
		e := elem.Value.(*Entry)
		p.lru.Remove(elem)
		delete(p.entries, e.Addr)
		p.removeOwnerLocked(e)
		p.evictions.Inc()
		if e.Dirty {
			dirty = append(dirty, e)
		}
	}
	return dirty
}

func (p *Pool) flushVictims(victims []*Entry) {
	if len(victims) == 0 {
		return
	}
	p.mu.Lock()
	f := p.flusher
	p.mu.Unlock()
	for _, e := range victims {
		if f != nil {
			_ = f(e)
		}
	}
}

// MarkDirty flags the entry and records the covering log sequence.
func (p *Pool) MarkDirty(e *Entry, seq int64) {
	p.mu.Lock()
	e.Dirty = true
	e.gen++
	if seq > e.Seq {
		e.Seq = seq
	}
	p.mu.Unlock()
}

// Gen returns the entry's dirty generation; a flusher snapshots it
// before copying the data out.
func (p *Pool) Gen(e *Entry) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return e.gen
}

// GenBatch snapshots the dirty generations of a set of entries with
// one lock acquisition; batch flushers snapshot before copying data
// out, then clear with MarkCleanIfBatch.
func (p *Pool) GenBatch(es []*Entry) []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.gen
	}
	return out
}

// SnapshotBatch copies each entry's block into buf (which must hold
// len(es) blocks) and returns the dirty generations, all under one
// lock acquisition. Owners mutate Data through Mutate, so a flusher
// snapshot never observes a torn concurrent update.
func (p *Pool) SnapshotBatch(es []*Entry, buf []byte) []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	gens := make([]int64, len(es))
	for i, e := range es {
		gens[i] = e.gen
		copy(buf[i*p.blockSize:], e.Data)
	}
	return gens
}

// Mutate runs fn under the pool lock. Owners use it for in-place
// Data writes so flusher snapshots are properly ordered with respect
// to them; fn must not call back into the pool.
func (p *Pool) Mutate(fn func()) {
	p.mu.Lock()
	fn()
	p.mu.Unlock()
}

// MarkCleanIfBatch clears the dirty flag of every entry whose
// generation still matches the flusher's snapshot, with one lock
// acquisition. Entries re-dirtied since keep their flag.
func (p *Pool) MarkCleanIfBatch(es []*Entry, gens []int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range es {
		if e.gen == gens[i] {
			e.Dirty = false
		}
	}
}

// MarkClean clears the dirty flag (after a successful write-back).
func (p *Pool) MarkClean(e *Entry) {
	p.mu.Lock()
	e.Dirty = false
	p.mu.Unlock()
}

// MarkCleanIf clears the dirty flag only if the entry has not been
// re-dirtied since the flusher snapshotted generation gen — otherwise
// the newer update would silently lose its write-back.
func (p *Pool) MarkCleanIf(e *Entry, gen int64) {
	p.mu.Lock()
	if e.gen == gen {
		e.Dirty = false
	}
	p.mu.Unlock()
}

// DirtyByOwner returns the dirty entries covered by a lock.
func (p *Pool) DirtyByOwner(owner uint64) []*Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Entry
	for _, e := range p.byOwner[owner] {
		if e.Dirty {
			out = append(out, e)
		}
	}
	return out
}

// AllDirty returns every dirty entry (sync demon sweep).
func (p *Pool) AllDirty() []*Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Entry
	for _, e := range p.entries {
		if e.Dirty {
			out = append(out, e)
		}
	}
	return out
}

// InvalidateByOwner drops all entries covered by a lock (which must
// have been flushed already if they were dirty).
func (p *Pool) InvalidateByOwner(owner uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.byOwner[owner] {
		delete(p.entries, e.Addr)
		p.lru.Remove(e.elem)
	}
	delete(p.byOwner, owner)
}

// Invalidate drops one entry by address, regardless of dirtiness.
func (p *Pool) Invalidate(addr int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[addr]; ok {
		delete(p.entries, addr)
		p.lru.Remove(e.elem)
		p.removeOwnerLocked(e)
	}
}

// InvalidateAll empties the cache (lease loss: "the server discards
// all its locks and the data in its cache").
func (p *Pool) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[int64]*Entry)
	p.byOwner = make(map[uint64]map[int64]*Entry)
	p.lru.Init()
}

// HasDirty reports whether any entry is dirty.
func (p *Pool) HasDirty() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.Dirty {
			return true
		}
	}
	return false
}

// Len returns the number of cached entries.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Stats reports hit/miss counters.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits.Value(), p.misses.Value()
}

// Evictions reports the number of capacity evictions.
func (p *Pool) Evictions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions.Value()
}

// EntrySeq reads the entry's covering log sequence under the pool
// lock (Seq is written under it by MarkDirty, so unsynchronized
// reads would race).
func (p *Pool) EntrySeq(e *Entry) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return e.Seq
}

// MaxSeq returns the highest covering log sequence across the
// entries, read with one lock acquisition.
func (p *Pool) MaxSeq(es []*Entry) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var max int64
	for _, e := range es {
		if e.Seq > max {
			max = e.Seq
		}
	}
	return max
}
