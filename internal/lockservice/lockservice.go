// Package lockservice implements Frangipani's distributed lock
// service (paper §6): multiple-reader/single-writer locks organized
// into tables named by ASCII strings, with individual locks named by
// 64-bit integers. Locks are sticky — a clerk retains a lock until
// another clerk needs a conflicting one. Client failure is handled
// with leases; lock server failure is handled by reassigning lock
// shards across the surviving servers (via a Paxos-replicated,
// epoch-numbered shard map) and recovering lock state from the
// clerks.
//
// The lock table is partitioned into shards by hash(lockID); the
// shard map (shard -> owning server) is part of the replicated global
// state and carries an epoch that advances on every reassignment. A
// clerk routing with a stale map is rejected with a WrongShard nack
// carrying the server's epoch, refetches the map, and retries against
// the new owner — so no server ever serves a lock it does not own.
//
// Clerks and lock servers communicate via asynchronous messages
// (request, grant, revoke, release) rather than RPC, exactly as the
// paper prescribes; every handler is idempotent so the protocol
// tolerates message loss. The clerk->server direction is vectored:
// per-shard-server AcquireBatch/ReleaseBatch messages carry many lock
// operations in one network message, and lease renewal is one
// RenewMsg per server (never per lock) with the shard-map epoch
// piggybacked both ways. Busy clerks go further: renewals ride on the
// batches themselves (AcquireBatch/ReleaseBatch.Renew), so a clerk
// with traffic in flight sends zero standalone RenewMsg RPCs and the
// per-server renewal load stays O(1) as the cluster grows.
package lockservice

import (
	"errors"
	"time"

	"frangipani/internal/rpc"
)

// Wire-type registration so the protocol runs over TCP carriers.
func init() {
	for _, v := range []any{
		ReqMsg{}, RelMsg{}, GrantMsg{}, RevokeMsg{},
		AcquireBatch{}, ReleaseBatch{}, WrongShard{}, BatchReq{}, BatchRel{},
		OpenReq{}, OpenResp{}, CloseReq{},
		RenewMsg{}, RenewAck{}, RenewalsReq{}, RenewalsResp{},
		StateReq{}, StateResp{}, SyncReq{}, SyncResp{}, HeldLock{},
		RecoverReq{}, RecoveryDone{},
		CmdOpenSession{}, CmdCloseSession{}, CmdMarkDead{}, CmdSetAlive{},
		GState{}, Session{},
	} {
		rpc.RegisterType(v)
	}
}

// Mode is a lock mode. Modes are ordered: None < Shared < Exclusive.
type Mode int

// Lock modes.
const (
	None Mode = iota
	Shared
	Exclusive
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	}
	return "invalid"
}

// DefaultShards is the default number of lock-table shards: "locks
// are partitioned into about one hundred distinct lock groups, and
// are assigned to servers by group, not individually" (§6). The count
// is configurable per deployment via Config.Shards.
const DefaultShards = 100

// ShardOf maps a lock id to its shard by hash. Frangipani lock ids
// are structured (inode numbers, bitmap segments), so a plain modulus
// would skew entire id ranges onto a few shards; the splitmix64
// finalizer spreads them uniformly.
func ShardOf(lock uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := lock + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// Timing defaults, in simulated time. The paper's lease is 30 s with
// a 15 s safety margin.
const (
	DefaultLeaseDuration = 30 * time.Second
	DefaultLeaseMargin   = 15 * time.Second
	// DefaultIdleDiscard matches §6: "to avoid consuming too much
	// memory because of sticky locks, clerks discard locks that have
	// not been used for a long time (1 hour)".
	DefaultIdleDiscard = time.Hour
)

// Errors returned by clerk operations.
var (
	ErrLeaseLost = errors.New("lockservice: lease lost")
	ErrClosed    = errors.New("lockservice: clerk closed")
	ErrNoServer  = errors.New("lockservice: no lock server reachable")
)

// Per-lock memory cost constants from the paper, used only for the
// stats the service reports: "the server allocates a block of 112
// bytes per lock, in addition to 104 bytes per clerk that has an
// outstanding or granted lock request. Each client uses up 232 bytes
// per lock."
const (
	ServerBytesPerLock  = 112
	ServerBytesPerClerk = 104
	ClerkBytesPerLock   = 232
)

// Wire messages. Clerk -> server: AcquireBatch, ReleaseBatch (and
// their single-op forms ReqMsg, RelMsg), OpenReq, CloseReq, RenewMsg,
// SyncResp, RecoveryDone. Server -> clerk: GrantMsg, RevokeMsg,
// WrongShard, RenewAck, SyncReq, RecoverReq.
type (
	// ReqMsg asks for a lock in the given mode. Clerks retransmit it
	// until granted. Epoch is the clerk's per-lock request epoch: it
	// advances every time the clerk releases or downgrades, so a
	// grant answering an old (retransmitted) request cannot be
	// mistaken for a grant of the current request after the clerk has
	// since given the lock up.
	ReqMsg struct {
		Clerk string
		Table string
		Lock  uint64
		Mode  Mode
		Epoch int64
	}
	// RelMsg releases (NewMode=None) or downgrades (NewMode=Shared) a
	// held lock.
	RelMsg struct {
		Clerk   string
		Table   string
		Lock    uint64
		NewMode Mode
	}
	// BatchReq is one lock request inside an AcquireBatch; fields
	// mirror ReqMsg.
	BatchReq struct {
		Lock  uint64
		Mode  Mode
		Epoch int64
	}
	// AcquireBatch carries every pending lock request a clerk has for
	// one shard server in a single message: the clerk's sender demon
	// drains its queue and groups requests per owning server, so a
	// burst of N acquires costs one network message, not N. MapEpoch
	// is the shard-map epoch the clerk routed with.
	AcquireBatch struct {
		Clerk    string
		Table    string
		MapEpoch int64
		Reqs     []BatchReq
		// Renew, when set, doubles the batch as a lease renewal for
		// LeaseID: a busy clerk rides its renewals on batch traffic it
		// is sending anyway, so its standalone RenewMsg rate is O(1)
		// in cluster size (zero while traffic flows). The server
		// answers with a rate-limited RenewAck cast.
		Renew   bool
		LeaseID uint64
	}
	// BatchRel is one release/downgrade inside a ReleaseBatch; fields
	// mirror RelMsg.
	BatchRel struct {
		Lock    uint64
		NewMode Mode
	}
	// ReleaseBatch is the vectored form of RelMsg, grouped per shard
	// server like AcquireBatch.
	ReleaseBatch struct {
		Clerk    string
		Table    string
		MapEpoch int64
		Rels     []BatchRel
		// Renew/LeaseID piggyback a lease renewal; see AcquireBatch.
		Renew   bool
		LeaseID uint64
	}
	// WrongShard rejects operations on locks the receiving server does
	// not own: the clerk routed with a stale shard map. Epoch is the
	// server's current map epoch; a clerk behind it refetches the map
	// and retries the listed locks against the new owners. Lost nacks
	// are harmless: acquires are retransmitted by the clerk's retry
	// ticker and releases are re-asked-for by the server's revoke
	// retry.
	WrongShard struct {
		Server string
		Table  string
		Epoch  int64
		Locks  []uint64
	}
	// GrantMsg tells a clerk it now holds the lock in Mode. Ver is
	// the granting server's global-state version; clerks reject
	// grants older than the version at which the lock's shard was
	// last synced to a new server, fencing grants from a deposed
	// server that has not yet applied the reassignment.
	GrantMsg struct {
		Table string
		Lock  uint64
		Mode  Mode
		Ver   int64
		Epoch int64 // echo of the granted request's epoch
	}
	// RevokeMsg asks a holder to reduce its hold to NewMode (None or
	// Shared). Servers retransmit while the conflict persists.
	RevokeMsg struct {
		Table   string
		Lock    uint64
		NewMode Mode
	}
	// OpenReq opens a lock table and establishes a lease (a Call).
	OpenReq struct {
		Clerk string
		Table string
	}
	// OpenResp returns the lease identifier and the log slot assigned
	// to this session; Frangipani uses the slot to pick its private
	// log ("determines which portion of the log space to use from the
	// lease identifier", §7).
	OpenResp struct {
		OK      bool
		Err     string
		LeaseID uint64
		LogSlot int
	}
	// CloseReq closes a session cleanly (unmount).
	CloseReq struct {
		Clerk string
		Table string
	}
	// RenewMsg renews a lease; one per lock server (never per lock),
	// with the clerk's shard-map epoch piggybacked so the renewal
	// round doubles as a map-staleness probe.
	RenewMsg struct {
		Clerk    string
		LeaseID  uint64
		MapEpoch int64
	}
	// RenewAck confirms a renewal from one server. Valid is false
	// when the server knows of no live session with that lease — the
	// session expired and was recovered — so a zombie clerk that was
	// stalled past its lease learns its fate at the next renewal
	// instead of continuing on stale locks. MapEpoch is the server's
	// shard-map epoch; a clerk behind it refetches the map without
	// waiting to be nacked.
	RenewAck struct {
		Server   string
		LeaseID  uint64
		Valid    bool
		MapEpoch int64
	}
	// RenewalsReq asks a lock server for its lease-renewal table (a
	// Call). The coordinator's expiry sweep aggregates these so that
	// a session is expired only when a MAJORITY of lock servers has
	// not heard from the clerk — the same rule the clerk itself uses
	// to judge its lease, so the two views cannot diverge under
	// asymmetric message loss.
	RenewalsReq struct{}
	// RenewalsResp carries clerk -> last-renewal simulated time (ns).
	RenewalsResp struct {
		OK    bool
		Times map[string]int64
	}
	// StateReq asks a lock server for the current global state (a
	// Call); clerks use it to learn the shard map.
	StateReq struct{}
	// StateResp carries the global state.
	StateResp struct {
		OK    bool
		State GState
	}
	// SyncReq asks a clerk to report its held locks in the given
	// shards so a server taking over those shards can rebuild state.
	// NumShards lets the clerk evaluate shard membership even before
	// it has refetched the new map.
	SyncReq struct {
		Server    string
		Table     string
		Shards    []int
		NumShards int
		Seq       uint64
		Ver       int64 // state version of the gaining server (fencing floor)
	}
	// SyncResp reports held locks (mode > None only).
	SyncResp struct {
		Clerk string
		Seq   uint64
		Locks []HeldLock
	}
	// HeldLock is one (lock, mode) pair in a SyncResp.
	HeldLock struct {
		Lock uint64
		Mode Mode
	}
	// RecoverReq asks a live clerk to run crash recovery for a dead
	// one. The receiving clerk is implicitly granted ownership of the
	// dead clerk's log and locks for the duration.
	RecoverReq struct {
		Server   string
		Table    string
		Dead     string
		DeadSlot int
		Seq      uint64
	}
	// RecoveryDone reports that log replay finished; the lock service
	// may release the dead clerk's locks.
	RecoveryDone struct {
		Clerk string
		Table string
		Dead  string
		Seq   uint64
	}
)

// Global-state commands, decided through Paxos.
type (
	// CmdOpenSession registers a clerk's open table and assigns a
	// lease id and log slot deterministically.
	CmdOpenSession struct {
		Clerk string
		Table string
	}
	// CmdCloseSession removes a session (clean close, or after
	// recovery of a dead clerk completes).
	CmdCloseSession struct {
		Clerk string
		Table string
	}
	// CmdMarkDead flags a session as expired; its locks stay frozen
	// until recovery completes and CmdCloseSession is applied.
	CmdMarkDead struct {
		Clerk string
		Table string
	}
	// CmdSetAlive records a lock server liveness transition and
	// reassigns shards: "the locks are always reassigned such that
	// the number of locks served by each server is balanced, the
	// number of reassignments is minimized, and each lock is served
	// by exactly one lock server" (§6). Every reassignment advances
	// the shard-map epoch.
	CmdSetAlive struct {
		Server string
		Alive  bool
	}
)

// Session is one open (clerk, table) pair.
type Session struct {
	Clerk   string
	Table   string
	LeaseID uint64
	LogSlot int
	Dead    bool // lease expired; recovery in progress
}

// GState is the lock service's Paxos-replicated global state: "a list
// of lock servers, a list of locks that each is responsible for
// serving, and a list of clerks that have opened but not yet closed
// each lock table" (§6). The lock list takes the form of an
// epoch-numbered shard map.
type GState struct {
	Servers    []string
	Alive      map[string]bool
	Shards     int
	Assignment []string // shard -> lock server
	// Epoch advances on every change to Assignment and fences
	// routing: servers nack operations on shards they do not own,
	// quoting their epoch, and clerks refetch when behind.
	Epoch     int64
	Sessions  map[string]Session // key: clerk+"/"+table
	NextLease uint64
	Version   int64
}

func sessionKey(clerk, table string) string { return clerk + "/" + table }

// NewGState builds the initial state with all servers alive and
// shards balanced across them. shards <= 0 selects DefaultShards.
func NewGState(servers []string, shards int) GState {
	if shards <= 0 {
		shards = DefaultShards
	}
	g := GState{
		Servers:    append([]string(nil), servers...),
		Alive:      make(map[string]bool, len(servers)),
		Shards:     shards,
		Assignment: make([]string, shards),
		Sessions:   make(map[string]Session),
		NextLease:  1,
	}
	for _, s := range servers {
		g.Alive[s] = true
	}
	g.reassign()
	return g
}

// Clone returns a deep copy.
func (g GState) Clone() GState {
	out := g
	out.Servers = append([]string(nil), g.Servers...)
	out.Assignment = append([]string(nil), g.Assignment...)
	out.Alive = make(map[string]bool, len(g.Alive))
	for k, v := range g.Alive {
		out.Alive[k] = v
	}
	out.Sessions = make(map[string]Session, len(g.Sessions))
	for k, v := range g.Sessions {
		out.Sessions[k] = v
	}
	return out
}

// Apply executes one command deterministically.
func (g *GState) Apply(cmd any) {
	g.Version++
	switch c := cmd.(type) {
	case CmdOpenSession:
		key := sessionKey(c.Clerk, c.Table)
		if _, ok := g.Sessions[key]; ok {
			return // idempotent re-open keeps the existing lease
		}
		g.Sessions[key] = Session{
			Clerk:   c.Clerk,
			Table:   c.Table,
			LeaseID: g.NextLease,
			LogSlot: g.freeSlot(c.Table),
		}
		g.NextLease++
	case CmdCloseSession:
		delete(g.Sessions, sessionKey(c.Clerk, c.Table))
	case CmdMarkDead:
		key := sessionKey(c.Clerk, c.Table)
		if s, ok := g.Sessions[key]; ok {
			s.Dead = true
			g.Sessions[key] = s
		}
	case CmdSetAlive:
		if _, ok := g.Alive[c.Server]; ok {
			g.Alive[c.Server] = c.Alive
			g.reassign()
		}
	}
}

// freeSlot returns the lowest log slot unused by open sessions of a
// table.
func (g *GState) freeSlot(table string) int {
	used := make(map[int]bool)
	for _, s := range g.Sessions {
		if s.Table == table {
			used[s.LogSlot] = true
		}
	}
	for i := 0; ; i++ {
		if !used[i] {
			return i
		}
	}
}

// reassign rebalances shards over the alive servers with minimal
// movement: shards whose server is still alive stay put; orphaned
// shards go to the least-loaded alive servers. Any actual movement
// advances the map epoch.
func (g *GState) reassign() {
	var alive []string
	for _, s := range g.Servers {
		if g.Alive[s] {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		return // total outage: keep the old map; nobody is serving anyway
	}
	changed := false
	load := make(map[string]int, len(alive))
	for _, s := range alive {
		load[s] = 0
	}
	var orphans []int
	for i, s := range g.Assignment {
		if _, ok := load[s]; ok {
			load[s]++
		} else {
			orphans = append(orphans, i)
		}
	}
	for _, i := range orphans {
		best := alive[0]
		for _, s := range alive[1:] {
			if load[s] < load[best] {
				best = s
			}
		}
		g.Assignment[i] = best
		load[best]++
		changed = true
	}
	// Rebalance from overloaded to underloaded servers to keep counts
	// within one of each other.
	target := g.Shards / len(alive)
	for _, under := range alive {
		for load[under] < target {
			moved := false
			for i, s := range g.Assignment {
				if s != under && load[s] > target {
					g.Assignment[i] = under
					load[s]--
					load[under]++
					moved = true
					changed = true
					if load[under] >= target {
						break
					}
				}
			}
			if !moved {
				break
			}
		}
	}
	if changed {
		g.Epoch++
	}
}

// ShardOf returns the shard a lock belongs to under this map.
func (g *GState) ShardOf(lock uint64) int { return ShardOf(lock, g.Shards) }

// ServerFor returns the lock server assigned to a lock.
func (g *GState) ServerFor(lock uint64) string { return g.Assignment[g.ShardOf(lock)] }
