// Package lockservice implements Frangipani's distributed lock
// service (paper §6): multiple-reader/single-writer locks organized
// into tables named by ASCII strings, with individual locks named by
// 64-bit integers. Locks are sticky — a clerk retains a lock until
// another clerk needs a conflicting one. Client failure is handled
// with leases; lock server failure is handled by reassigning lock
// groups across the surviving servers (via Paxos-replicated global
// state) and recovering lock state from the clerks.
//
// Clerks and lock servers communicate via asynchronous messages
// (request, grant, revoke, release) rather than RPC, exactly as the
// paper prescribes; every handler is idempotent so the protocol
// tolerates message loss.
package lockservice

import (
	"errors"
	"time"

	"frangipani/internal/rpc"
)

// Wire-type registration so the protocol runs over TCP carriers.
func init() {
	for _, v := range []any{
		ReqMsg{}, RelMsg{}, GrantMsg{}, RevokeMsg{},
		OpenReq{}, OpenResp{}, CloseReq{},
		RenewMsg{}, RenewAck{}, RenewalsReq{}, RenewalsResp{},
		StateReq{}, StateResp{}, SyncReq{}, SyncResp{}, HeldLock{},
		RecoverReq{}, RecoveryDone{},
		CmdOpenSession{}, CmdCloseSession{}, CmdMarkDead{}, CmdSetAlive{},
		GState{}, Session{},
	} {
		rpc.RegisterType(v)
	}
}

// Mode is a lock mode. Modes are ordered: None < Shared < Exclusive.
type Mode int

// Lock modes.
const (
	None Mode = iota
	Shared
	Exclusive
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	}
	return "invalid"
}

// NumGroups is the number of lock groups: "locks are partitioned into
// about one hundred distinct lock groups, and are assigned to servers
// by group, not individually" (§6).
const NumGroups = 100

// Group maps a lock id to its group.
func Group(lock uint64) int { return int(lock % NumGroups) }

// Timing defaults, in simulated time. The paper's lease is 30 s with
// a 15 s safety margin.
const (
	DefaultLeaseDuration = 30 * time.Second
	DefaultLeaseMargin   = 15 * time.Second
	// DefaultIdleDiscard matches §6: "to avoid consuming too much
	// memory because of sticky locks, clerks discard locks that have
	// not been used for a long time (1 hour)".
	DefaultIdleDiscard = time.Hour
)

// Errors returned by clerk operations.
var (
	ErrLeaseLost = errors.New("lockservice: lease lost")
	ErrClosed    = errors.New("lockservice: clerk closed")
	ErrNoServer  = errors.New("lockservice: no lock server reachable")
)

// Per-lock memory cost constants from the paper, used only for the
// stats the service reports: "the server allocates a block of 112
// bytes per lock, in addition to 104 bytes per clerk that has an
// outstanding or granted lock request. Each client uses up 232 bytes
// per lock."
const (
	ServerBytesPerLock  = 112
	ServerBytesPerClerk = 104
	ClerkBytesPerLock   = 232
)

// Wire messages. Clerk -> server: ReqMsg, RelMsg, OpenReq, CloseReq,
// RenewMsg, SyncResp, RecoveryDone. Server -> clerk: GrantMsg,
// RevokeMsg, RenewAck, SyncReq, RecoverReq.
type (
	// ReqMsg asks for a lock in the given mode. Clerks retransmit it
	// until granted. Epoch is the clerk's per-lock request epoch: it
	// advances every time the clerk releases or downgrades, so a
	// grant answering an old (retransmitted) request cannot be
	// mistaken for a grant of the current request after the clerk has
	// since given the lock up.
	ReqMsg struct {
		Clerk string
		Table string
		Lock  uint64
		Mode  Mode
		Epoch int64
	}
	// RelMsg releases (NewMode=None) or downgrades (NewMode=Shared) a
	// held lock.
	RelMsg struct {
		Clerk   string
		Table   string
		Lock    uint64
		NewMode Mode
	}
	// GrantMsg tells a clerk it now holds the lock in Mode. Ver is
	// the granting server's global-state version; clerks reject
	// grants older than the version at which the lock's group was
	// last synced to a new server, fencing grants from a deposed
	// server that has not yet applied the reassignment.
	GrantMsg struct {
		Table string
		Lock  uint64
		Mode  Mode
		Ver   int64
		Epoch int64 // echo of the granted request's epoch
	}
	// RevokeMsg asks a holder to reduce its hold to NewMode (None or
	// Shared). Servers retransmit while the conflict persists.
	RevokeMsg struct {
		Table   string
		Lock    uint64
		NewMode Mode
	}
	// OpenReq opens a lock table and establishes a lease (a Call).
	OpenReq struct {
		Clerk string
		Table string
	}
	// OpenResp returns the lease identifier and the log slot assigned
	// to this session; Frangipani uses the slot to pick its private
	// log ("determines which portion of the log space to use from the
	// lease identifier", §7).
	OpenResp struct {
		OK      bool
		Err     string
		LeaseID uint64
		LogSlot int
	}
	// CloseReq closes a session cleanly (unmount).
	CloseReq struct {
		Clerk string
		Table string
	}
	// RenewMsg renews a lease; broadcast by clerks to all servers.
	RenewMsg struct {
		Clerk   string
		LeaseID uint64
	}
	// RenewAck confirms a renewal from one server. Valid is false
	// when the server knows of no live session with that lease — the
	// session expired and was recovered — so a zombie clerk that was
	// stalled past its lease learns its fate at the next renewal
	// instead of continuing on stale locks.
	RenewAck struct {
		Server  string
		LeaseID uint64
		Valid   bool
	}
	// RenewalsReq asks a lock server for its lease-renewal table (a
	// Call). The coordinator's expiry sweep aggregates these so that
	// a session is expired only when a MAJORITY of lock servers has
	// not heard from the clerk — the same rule the clerk itself uses
	// to judge its lease, so the two views cannot diverge under
	// asymmetric message loss.
	RenewalsReq struct{}
	// RenewalsResp carries clerk -> last-renewal simulated time (ns).
	RenewalsResp struct {
		OK    bool
		Times map[string]int64
	}
	// StateReq asks a lock server for the current global state (a
	// Call); clerks use it to learn group assignments.
	StateReq struct{}
	// StateResp carries the global state.
	StateResp struct {
		OK    bool
		State GState
	}
	// SyncReq asks a clerk to report its held locks in the given
	// groups so a server taking over those groups can rebuild state.
	SyncReq struct {
		Server string
		Table  string
		Groups []int
		Seq    uint64
		Ver    int64 // state version of the gaining server (fencing floor)
	}
	// SyncResp reports held locks (mode > None only).
	SyncResp struct {
		Clerk string
		Seq   uint64
		Locks []HeldLock
	}
	// HeldLock is one (lock, mode) pair in a SyncResp.
	HeldLock struct {
		Lock uint64
		Mode Mode
	}
	// RecoverReq asks a live clerk to run crash recovery for a dead
	// one. The receiving clerk is implicitly granted ownership of the
	// dead clerk's log and locks for the duration.
	RecoverReq struct {
		Server   string
		Table    string
		Dead     string
		DeadSlot int
		Seq      uint64
	}
	// RecoveryDone reports that log replay finished; the lock service
	// may release the dead clerk's locks.
	RecoveryDone struct {
		Clerk string
		Table string
		Dead  string
		Seq   uint64
	}
)

// Global-state commands, decided through Paxos.
type (
	// CmdOpenSession registers a clerk's open table and assigns a
	// lease id and log slot deterministically.
	CmdOpenSession struct {
		Clerk string
		Table string
	}
	// CmdCloseSession removes a session (clean close, or after
	// recovery of a dead clerk completes).
	CmdCloseSession struct {
		Clerk string
		Table string
	}
	// CmdMarkDead flags a session as expired; its locks stay frozen
	// until recovery completes and CmdCloseSession is applied.
	CmdMarkDead struct {
		Clerk string
		Table string
	}
	// CmdSetAlive records a lock server liveness transition and
	// reassigns groups: "the locks are always reassigned such that
	// the number of locks served by each server is balanced, the
	// number of reassignments is minimized, and each lock is served
	// by exactly one lock server" (§6).
	CmdSetAlive struct {
		Server string
		Alive  bool
	}
)

// Session is one open (clerk, table) pair.
type Session struct {
	Clerk   string
	Table   string
	LeaseID uint64
	LogSlot int
	Dead    bool // lease expired; recovery in progress
}

// GState is the lock service's Paxos-replicated global state: "a list
// of lock servers, a list of locks that each is responsible for
// serving, and a list of clerks that have opened but not yet closed
// each lock table" (§6).
type GState struct {
	Servers    []string
	Alive      map[string]bool
	Assignment [NumGroups]string  // group -> lock server
	Sessions   map[string]Session // key: clerk+"/"+table
	NextLease  uint64
	Version    int64
}

func sessionKey(clerk, table string) string { return clerk + "/" + table }

// NewGState builds the initial state with all servers alive and
// groups balanced across them.
func NewGState(servers []string) GState {
	g := GState{
		Servers:   append([]string(nil), servers...),
		Alive:     make(map[string]bool, len(servers)),
		Sessions:  make(map[string]Session),
		NextLease: 1,
	}
	for _, s := range servers {
		g.Alive[s] = true
	}
	g.reassign()
	return g
}

// Clone returns a deep copy.
func (g GState) Clone() GState {
	out := g
	out.Servers = append([]string(nil), g.Servers...)
	out.Alive = make(map[string]bool, len(g.Alive))
	for k, v := range g.Alive {
		out.Alive[k] = v
	}
	out.Sessions = make(map[string]Session, len(g.Sessions))
	for k, v := range g.Sessions {
		out.Sessions[k] = v
	}
	return out
}

// Apply executes one command deterministically.
func (g *GState) Apply(cmd any) {
	g.Version++
	switch c := cmd.(type) {
	case CmdOpenSession:
		key := sessionKey(c.Clerk, c.Table)
		if _, ok := g.Sessions[key]; ok {
			return // idempotent re-open keeps the existing lease
		}
		g.Sessions[key] = Session{
			Clerk:   c.Clerk,
			Table:   c.Table,
			LeaseID: g.NextLease,
			LogSlot: g.freeSlot(c.Table),
		}
		g.NextLease++
	case CmdCloseSession:
		delete(g.Sessions, sessionKey(c.Clerk, c.Table))
	case CmdMarkDead:
		key := sessionKey(c.Clerk, c.Table)
		if s, ok := g.Sessions[key]; ok {
			s.Dead = true
			g.Sessions[key] = s
		}
	case CmdSetAlive:
		if _, ok := g.Alive[c.Server]; ok {
			g.Alive[c.Server] = c.Alive
			g.reassign()
		}
	}
}

// freeSlot returns the lowest log slot unused by open sessions of a
// table.
func (g *GState) freeSlot(table string) int {
	used := make(map[int]bool)
	for _, s := range g.Sessions {
		if s.Table == table {
			used[s.LogSlot] = true
		}
	}
	for i := 0; ; i++ {
		if !used[i] {
			return i
		}
	}
}

// reassign rebalances groups over the alive servers with minimal
// movement: groups whose server is still alive stay put; orphaned
// groups go to the least-loaded alive servers.
func (g *GState) reassign() {
	var alive []string
	for _, s := range g.Servers {
		if g.Alive[s] {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		return // total outage: keep the old map; nobody is serving anyway
	}
	load := make(map[string]int, len(alive))
	for _, s := range alive {
		load[s] = 0
	}
	var orphans []int
	for i, s := range g.Assignment {
		if _, ok := load[s]; ok {
			load[s]++
		} else {
			orphans = append(orphans, i)
		}
	}
	for _, i := range orphans {
		best := alive[0]
		for _, s := range alive[1:] {
			if load[s] < load[best] {
				best = s
			}
		}
		g.Assignment[i] = best
		load[best]++
	}
	// Rebalance from overloaded to underloaded servers to keep counts
	// within one of each other.
	target := NumGroups / len(alive)
	for _, under := range alive {
		for load[under] < target {
			moved := false
			for i, s := range g.Assignment {
				if s != under && load[s] > target {
					g.Assignment[i] = under
					load[s]--
					load[under]++
					moved = true
					if load[under] >= target {
						break
					}
				}
			}
			if !moved {
				break
			}
		}
	}
}

// ServerFor returns the lock server assigned to a lock.
func (g *GState) ServerFor(lock uint64) string { return g.Assignment[Group(lock)] }
