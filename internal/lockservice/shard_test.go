package lockservice

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMidRebalanceConcurrencySafety drives concurrent acquire /
// revoke / release traffic through a mid-stream shard rebalance (a
// server crash and restart) and asserts the two safety properties of
// the handoff protocol: no lock is ever granted to two clerks at
// once, and no acknowledged release is lost (every lock is still
// acquirable afterwards). Run under -race by the full suite.
func TestMidRebalanceConcurrencySafety(t *testing.T) {
	ls := newTestLS(t, 3)
	const nClerks, nWorkers, nLocks, iters = 3, 2, 12, 25

	clerks := make([]*Clerk, nClerks)
	for i := range clerks {
		clerks[i] = ls.clerk(t, fmt.Sprintf("wsr%d", i))
	}

	// Workers of the SAME clerk use disjoint lock ranges: a clerk's
	// sticky grant is legitimately shared by its local users (the FS
	// layer serializes within one machine, §4), so only cross-clerk
	// exclusion is asserted. Workers with the same index on DIFFERENT
	// clerks contend for the same locks.
	const locksPerWorker = nLocks / nWorkers
	var inside [nLocks]int32
	var violations int32
	var ops int64
	var wg sync.WaitGroup
	for ci, c := range clerks {
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(c *Clerk, worker, seed int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					lock := uint64(worker*locksPerWorker + (seed*7+i)%locksPerWorker)
					if err := c.Lock(lock, Exclusive); err != nil {
						t.Errorf("lock %d: %v", lock, err)
						return
					}
					if atomic.AddInt32(&inside[lock], 1) != 1 {
						atomic.AddInt32(&violations, 1)
					}
					ls.w.Clock.Sleep(10 * time.Millisecond)
					atomic.AddInt32(&inside[lock], -1)
					c.Unlock(lock)
					atomic.AddInt64(&ops, 1)
				}
			}(c, w, ci)
		}
	}

	// Mid-stream rebalance: crash a shard owner once traffic is
	// flowing, let its shards move, then bring it back so they move
	// again — both handoff directions happen under load.
	waitUntil(t, func() bool { return atomic.LoadInt64(&ops) > 10 })
	ls.servers[1].Crash()
	waitUntil(t, func() bool {
		st := ls.servers[0].State()
		if st.Alive["ls1"] {
			return false
		}
		for _, s := range st.Assignment {
			if s == "ls1" {
				return false
			}
		}
		return true
	})
	ls.servers[1].Restart()
	waitUntil(t, func() bool { return ls.servers[0].State().Alive["ls1"] })

	wg.Wait()
	if v := atomic.LoadInt32(&violations); v != 0 {
		t.Fatalf("%d mutual-exclusion violations across the rebalance", v)
	}
	// No lost acknowledged release: a fresh clerk must be able to take
	// every lock exclusively, which requires each prior release to
	// have reached whichever server owns the shard now.
	fresh := ls.clerk(t, "wsrF")
	for lock := uint64(0); lock < nLocks; lock++ {
		if err := fresh.Lock(lock, Exclusive); err != nil {
			t.Fatalf("post-rebalance acquire of %d: %v", lock, err)
		}
		fresh.Unlock(lock)
	}
}

// TestWrongShardNack forces a clerk to route with a doctored (stale)
// shard map and asserts the wrong-shard path heals it: the misrouted
// server nacks, the clerk refetches the map, retries against the
// right owner, and the acquire still succeeds.
func TestWrongShardNack(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsW")

	// Doctor the clerk's map: every shard rotated to the NEXT server,
	// so its first transmission is guaranteed misrouted. The hook also
	// lowers Version so the refetch (which only adopts strictly newer
	// state) can replace the doctored map.
	c.InjectStaleShardMap()

	done := make(chan error, 1)
	go func() { done <- c.Lock(5, Exclusive) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("acquire with stale shard map never recovered")
	}
	c.Unlock(5)

	nacks := int64(0)
	for _, n := range ls.names {
		nacks += ls.w.Obs.Counter("lockservice.server.wrongshard#" + n).Value()
	}
	if nacks == 0 {
		t.Fatal("no wrong-shard nacks recorded despite stale routing")
	}
}

// TestRenewTickSkipsWhenInFlight asserts the renewal loop coalesces:
// a tick that fires while its predecessor is still waiting on a slow
// server is skipped and journaled, never stacked.
func TestRenewTickSkipsWhenInFlight(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsS")

	c.mu.Lock()
	c.renewing = true // simulate a predecessor stuck on a slow server
	c.mu.Unlock()
	c.renew()
	c.mu.Lock()
	c.renewing = false
	c.mu.Unlock()

	if got := ls.w.Obs.Counter("lockservice.renew.skipped#wsS").Value(); got != 1 {
		t.Fatalf("renew.skipped counter = %d, want 1", got)
	}
	found := false
	for _, e := range ls.w.Obs.Journal("wsS").Events() {
		if e.Op == "lease" && e.Kind == "renew.skipped" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no lease renew.skipped journal event recorded")
	}
	// A normal tick still renews.
	c.renew()
	if got := ls.w.Obs.Counter("lockservice.renew.skipped#wsS").Value(); got != 1 {
		t.Fatalf("unblocked renew was skipped (counter = %d)", got)
	}
}

// TestBatchingCoalescesRequests asserts the sender demon actually
// vectors: a burst of acquires enqueued together reaches the servers
// as one AcquireBatch per owning server, not one message per lock.
func TestBatchingCoalescesRequests(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsB")
	const n = 40
	// Enqueue the whole burst while holding the clerk mutex: the
	// sender demon cannot start draining mid-burst, so the drain sees
	// all n wants at once and must group them per shard server.
	c.mu.Lock()
	for id := uint64(0); id < n; id++ {
		l := c.lockLocked(id)
		l.want = Exclusive
		c.requestLocked(id, l)
	}
	c.mu.Unlock()
	waitUntil(t, func() bool {
		for id := uint64(0); id < n; id++ {
			if c.Held(id) != Exclusive {
				return false
			}
		}
		return true
	})
	batches := ls.w.Obs.Counter("lockservice.clerk.batches#wsB").Value()
	batchOps := ls.w.Obs.Counter("lockservice.clerk.batched_ops#wsB").Value()
	if batchOps < n {
		t.Fatalf("batched_ops = %d, want >= %d", batchOps, n)
	}
	// One drain = at most one AcquireBatch per server; allow one
	// retry-ticker round of slack so a slow CI machine cannot flake.
	if batches > 2*int64(len(ls.names)) {
		t.Fatalf("no coalescing: %d batches for %d ops across %d servers", batches, batchOps, len(ls.names))
	}
}
