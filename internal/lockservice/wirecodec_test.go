package lockservice

import (
	"reflect"
	"testing"

	"frangipani/internal/rpc"
)

func roundTrip(t *testing.T, body any) any {
	t.Helper()
	data, err := rpc.AppendMessage(nil, rpc.Envelope{ID: 42, Trace: 7, Span: 9, Body: body})
	if err != nil {
		t.Fatalf("encode %T: %v", body, err)
	}
	if data[0] == rpc.TagGob {
		t.Fatalf("%T fell back to gob", body)
	}
	out, _, err := rpc.DecodeMessage(data, nil)
	if err != nil {
		t.Fatalf("decode %T: %v", body, err)
	}
	env, ok := out.(rpc.Envelope)
	if !ok {
		t.Fatalf("decode returned %T, want Envelope", out)
	}
	if env.ID != 42 || env.Trace != 7 || env.Span != 9 {
		t.Fatalf("envelope fields lost: %+v", env)
	}
	return env.Body
}

func TestWireCodecAcquireBatch(t *testing.T) {
	for _, m := range []AcquireBatch{
		{Clerk: "ws1", Table: "fs", MapEpoch: 3, Reqs: []BatchReq{
			{Lock: 7, Mode: Exclusive, Epoch: 12},
			{Lock: 1 << 60, Mode: Shared, Epoch: -4},
		}},
		{Clerk: "", Table: "", MapEpoch: 0},
	} {
		got := roundTrip(t, m).(AcquireBatch)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestWireCodecReleaseBatch(t *testing.T) {
	for _, m := range []ReleaseBatch{
		{Clerk: "ws2", Table: "fs", MapEpoch: 9, Rels: []BatchRel{
			{Lock: 1, NewMode: None},
			{Lock: 2, NewMode: Shared},
		}},
		{Clerk: "c", Table: "t"},
	} {
		got := roundTrip(t, m).(ReleaseBatch)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestWireCodecWrongShard(t *testing.T) {
	for _, m := range []WrongShard{
		{Server: "ls0", Table: "fs", Epoch: 5, Locks: []uint64{3, 1 << 50, 0}},
		{Server: "ls1", Table: "fs", Epoch: 1},
	} {
		got := roundTrip(t, m).(WrongShard)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

// TestWireCodecTruncation asserts decoders reject (never panic on)
// truncated messages.
func TestWireCodecTruncation(t *testing.T) {
	m := AcquireBatch{Clerk: "ws1", Table: "fs", MapEpoch: 3, Reqs: []BatchReq{{Lock: 7, Mode: Exclusive, Epoch: 12}}}
	data, err := rpc.AppendMessage(nil, rpc.Envelope{Body: m})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := rpc.DecodeMessage(data[:n], nil); err == nil {
			// Some prefixes decode as a shorter valid message only if
			// the header length still matches; any non-error must at
			// least not panic, which reaching here proves.
			continue
		}
	}
}

// TestWireSizeTracksEncoding keeps the Sizer estimate honest: the
// network cost model must charge batches roughly their real bytes.
func TestWireSizeTracksEncoding(t *testing.T) {
	reqs := make([]BatchReq, 64)
	for i := range reqs {
		reqs[i] = BatchReq{Lock: uint64(i * 997), Mode: Exclusive, Epoch: int64(i)}
	}
	m := AcquireBatch{Clerk: "ws1", Table: "fs", MapEpoch: 2, Reqs: reqs}
	data, err := rpc.AppendMessage(nil, rpc.Envelope{Body: m})
	if err != nil {
		t.Fatal(err)
	}
	est := m.WireSize()
	if est < len(data)/2 || est > len(data)*2 {
		t.Fatalf("WireSize %d vs encoded %d: off by more than 2x", est, len(data))
	}
}
