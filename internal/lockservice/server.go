package lockservice

import (
	"fmt"
	"sync"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/paxos"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// Config tunes a lock server.
type Config struct {
	LeaseDuration  sim.Duration
	HeartbeatEvery sim.Duration
	SuspectAfter   sim.Duration
	RevokeRetry    sim.Duration // retransmit interval for revokes
	SweepEvery     sim.Duration // lease-expiry sweep period
	SyncTimeout    sim.Duration // clerk state recovery deadline
	// IdleDiscard is how long a clerk keeps an unused sticky grant
	// before releasing it to bound lock memory (§6; 1 hour). Zero
	// uses the default.
	IdleDiscard sim.Duration
	// Shards is the number of lock-table shards (0 = DefaultShards).
	// Every server and clerk of one deployment must agree on it.
	Shards int
	// CPUPerMsg and CPUPerOp override the modelled protocol-processing
	// cost per inbound message / per lock operation carried (0 = the
	// package defaults). Experiments scale them up to move the
	// capacity wall down to op rates the host simulates faithfully.
	CPUPerMsg sim.Duration
	CPUPerOp  sim.Duration
}

// DefaultConfig returns paper-flavored timing (30 s leases).
func DefaultConfig() Config {
	return Config{
		LeaseDuration:  DefaultLeaseDuration,
		HeartbeatEvery: 2 * time.Second,
		SuspectAfter:   10 * time.Second,
		RevokeRetry:    2 * time.Second,
		SweepEvery:     5 * time.Second,
		SyncTimeout:    20 * time.Second,
		IdleDiscard:    DefaultIdleDiscard,
	}
}

// Modelled lock-server CPU cost, charged against a per-server
// sim.Resource: ~60 µs of protocol processing per message plus ~5 µs
// per lock operation carried. One server therefore saturates around
// 16 k messages/s — the capacity wall the lock-scaling experiment
// measures — and vectored batches amortize the per-message cost.
const (
	cpuPerMsg = 60 * time.Microsecond
	cpuPerOp  = 5 * time.Microsecond
)

// lockKey names one lock.
type lockKey struct {
	Table string
	Lock  uint64
}

type waiter struct {
	clerk string
	mode  Mode
	epoch int64
}

// lockState is the volatile per-lock state on its serving lock
// server. It is reconstructed from clerks after reassignment.
type lockState struct {
	holders    map[string]Mode // clerk -> Shared/Exclusive
	waiters    []waiter
	lastRevoke sim.Time
}

// shardSync tracks reconstruction of one shard's state from clerks.
// A shard stays pending until EVERY live clerk has reported its held
// locks: granting from partial knowledge could hand out a lock some
// silent clerk still holds. Clerks whose sessions die are pruned (the
// recovery path releases their locks).
type shardSync struct {
	seq     uint64
	shards  []int
	waiting map[string]bool // clerks not yet heard from
}

// recoveryJob tracks crash recovery of one dead clerk.
type recoveryJob struct {
	dead      string
	table     string
	slot      int
	recoverer string
	seq       uint64
	lastSent  sim.Time
}

// Server is one lock server.
type Server struct {
	name string
	w    *sim.World
	cfg  Config
	ep   *rpc.Endpoint
	px   *paxos.Node
	det  *paxos.Detector
	cpu  *sim.Resource // modelled protocol-processing capacity

	mu         sync.Mutex
	state      GState
	locks      map[lockKey]*lockState
	pendingGrp map[int]*shardSync // shard -> in-progress handoff sync
	renewals   map[string]sim.Time
	// ackCast is the last time a piggyback RenewAck was cast to each
	// clerk; acks are rate-limited so a clerk streaming batches gets
	// O(1) ack traffic per lease window, not one ack per batch.
	ackCast map[string]sim.Time
	recoveries map[string]*recoveryJob // session key -> job
	nextSeq    uint64
	crashed    bool
	closed     bool
	cancels    []func()

	reqC             *obs.Counter
	revC             *obs.Counter
	wrongC           *obs.Counter
	renewPigC        *obs.Counter // piggybacked renewals accepted
	renewStdC        *obs.Counter // standalone RenewMsg served
	locksG, memBytes *obs.Gauge
	shardC           []*obs.Counter    // lazy per-shard op counters
	acct             *obs.AccountTable // per-principal server-op attribution
	jr               *obs.Journal      // flight recorder (nil-safe)

	// Trace, when set, receives debug events.
	Trace func(format string, args ...any)
}

func (s *Server) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(format, args...)
	}
}

// Addr returns the network name of a lock server's endpoint.
func Addr(name string) string { return name + ".lock" }

// ClerkAddr returns the network name of a clerk's endpoint.
func ClerkAddr(machine string) string { return machine + ".clerk" }

// NewServer creates one lock server among the fixed peer set, on the
// world's simulated network.
func NewServer(w *sim.World, name string, peers []string, cfg Config) *Server {
	return NewServerWithCarrier(w, name, peers, cfg, rpc.SimCarrier{Net: w.Net})
}

// NewServerWithCarrier creates a lock server on an arbitrary message
// carrier (e.g. rpc.NewTCPCarrier() for real cross-process
// deployment).
func NewServerWithCarrier(w *sim.World, name string, peers []string, cfg Config, carrier rpc.Carrier) *Server {
	s := &Server{
		name:       name,
		w:          w,
		cfg:        cfg,
		state:      NewGState(peers, cfg.Shards),
		locks:      make(map[lockKey]*lockState),
		pendingGrp: make(map[int]*shardSync),
		renewals:   make(map[string]sim.Time),
		ackCast:    make(map[string]sim.Time),
		recoveries: make(map[string]*recoveryJob),
		cpu:        sim.NewResource(w.Clock, name+".lockcpu"),
	}
	s.shardC = make([]*obs.Counter, s.state.Shards)
	if reg := w.Obs; reg != nil {
		s.reqC = reg.Counter("lockservice.server.requests#" + name)
		s.revC = reg.Counter("lockservice.server.revokes#" + name)
		s.wrongC = reg.Counter("lockservice.server.wrongshard#" + name)
		s.renewPigC = reg.Counter("lockservice.server.renew.piggyback#" + name)
		s.renewStdC = reg.Counter("lockservice.server.renew.standalone#" + name)
		s.locksG = reg.Gauge("lockservice.server.locks#" + name)
		s.memBytes = reg.Gauge("lockservice.server.bytes#" + name)
		s.acct = reg.Accounts()
		s.jr = reg.Journal(name)
	}
	s.px = paxos.NewNode(name, peers, carrier, w.Clock, s.applyCmd)
	s.det = paxos.NewDetector(name, peers, carrier, w.Clock,
		cfg.HeartbeatEvery, cfg.SuspectAfter, s.onLiveness)
	s.ep = rpc.NewEndpoint(Addr(name), carrier, w.Clock, s.handle)
	s.cancels = append(s.cancels,
		w.Clock.Tick(cfg.SweepEvery, s.sweep),
		w.Clock.Tick(cfg.RevokeRetry, s.retryRevokes),
		w.Clock.Tick(cfg.SyncTimeout, s.syncRetry),
	)
	return s
}

// shardCounter returns the shared per-shard operation counter,
// creating it lazily so untouched shards do not pollute snapshots.
// Counters are named by shard (not by server), so after a handoff the
// new owner keeps incrementing the same series. Called with s.mu held.
func (s *Server) shardCounter(shard int) *obs.Counter {
	if shard < 0 || shard >= len(s.shardC) || s.w.Obs == nil {
		return nil
	}
	if s.shardC[shard] == nil {
		s.shardC[shard] = s.w.Obs.Counter(fmt.Sprintf("lockservice.shard.ops#s%03d", shard))
	}
	return s.shardC[shard]
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// State returns a copy of this server's view of the global state.
func (s *Server) State() GState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone()
}

func (s *Server) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed || s.closed
}

// Crash silences the server; its volatile lock state is lost.
func (s *Server) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.locks = make(map[lockKey]*lockState) // volatile state dies
	s.pendingGrp = make(map[int]*shardSync)
	s.mu.Unlock()
	s.px.Crash()
	s.det.Crash()
}

// Restart revives a crashed server. It proposes itself alive; the
// resulting reassignment hands it shards, whose state it then
// recovers from the clerks.
func (s *Server) Restart() {
	s.mu.Lock()
	s.crashed = false
	// A fresh renewal table would read as "silence evidence" to the
	// coordinator's majority expiry rule; grant every known session a
	// fresh window instead.
	s.renewals = make(map[string]sim.Time)
	now := s.w.Clock.Now()
	for _, sess := range s.state.Sessions {
		s.renewals[sess.Clerk] = now
	}
	s.mu.Unlock()
	s.px.Recover()
	s.det.Recover()
	go func() {
		_ = s.px.Submit(CmdSetAlive{Server: s.name, Alive: true}, 120*time.Second)
	}()
}

// Close shuts the server down permanently.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for _, c := range s.cancels {
		c()
	}
	s.det.Stop()
	s.px.Close()
	s.ep.Close()
}

// onLiveness: coordinator proposes death transitions; rejoiners
// propose their own return (see Restart).
func (s *Server) onLiveness(peer string, alive bool) {
	if s.isDown() || alive {
		return
	}
	s.mu.Lock()
	already := !s.state.Alive[peer]
	s.mu.Unlock()
	if already || !s.amCoordinator() {
		return
	}
	go func() {
		_ = s.px.Submit(CmdSetAlive{Server: peer, Alive: false}, 120*time.Second)
	}()
}

// amCoordinator reports whether this server is the lowest-named one
// it believes alive; the coordinator runs lease sweeps and liveness
// proposals.
func (s *Server) amCoordinator() bool {
	for _, p := range s.det.Members() {
		if p == s.name {
			return true
		}
		if s.det.Alive(p) {
			return false
		}
	}
	return true
}

// applyCmd applies a decided command and reacts to shard-map changes:
// shards lost are discarded immediately (phase one of the paper's
// reassignment), shards gained enter recovery from clerks (phase
// two). Epoch changes are journaled so forensics can replay who owned
// a shard when.
func (s *Server) applyCmd(seq int64, cmd paxos.Command) {
	s.mu.Lock()
	oldAssign := append([]string(nil), s.state.Assignment...)
	oldEpoch := s.state.Epoch
	s.state.Apply(cmd)
	newAssign := s.state.Assignment

	var gained, lost []int
	for sh := range newAssign {
		if oldAssign[sh] == newAssign[sh] {
			continue
		}
		if oldAssign[sh] == s.name {
			// Phase one: discard state for shards we lost.
			for k := range s.locks {
				if s.state.ShardOf(k.Lock) == sh {
					delete(s.locks, k)
				}
			}
			delete(s.pendingGrp, sh)
			lost = append(lost, sh)
		}
		if newAssign[sh] == s.name {
			gained = append(gained, sh)
		}
	}
	if s.state.Epoch != oldEpoch {
		moved := 0
		for sh := range newAssign {
			if oldAssign[sh] != newAssign[sh] {
				moved++
			}
		}
		s.jr.Record("lockservice", "shardmap", "epoch", 0, s.state.Epoch,
			fmt.Sprintf("%d shards reassigned (+%d/-%d here)", moved, len(gained), len(lost)))
	}
	if len(lost) > 0 {
		s.jr.Record("lockservice", "handoff", "dropped", 0, int64(len(lost)),
			fmt.Sprintf("shards %v surrendered", lost))
	}
	if c, ok := cmd.(CmdCloseSession); ok {
		s.dropClerkLocked(c.Clerk, c.Table)
		delete(s.recoveries, sessionKey(c.Clerk, c.Table))
	}
	if c, ok := cmd.(CmdOpenSession); ok {
		// Fresh sessions start with a full lease locally.
		if _, ok := s.renewals[c.Clerk]; !ok {
			s.renewals[c.Clerk] = s.w.Clock.Now()
		}
	}
	s.mu.Unlock()

	if len(gained) > 0 && !s.isDown() {
		go s.syncShards(gained)
	}
}

// dropClerkLocked removes a clerk from all lock state (it is dead and
// recovered, or cleanly closed) and regrants what it held.
func (s *Server) dropClerkLocked(clerk, table string) {
	var outs []outMsg
	for k, ls := range s.locks {
		if k.Table != table {
			continue
		}
		changed := false
		if _, ok := ls.holders[clerk]; ok {
			delete(ls.holders, clerk)
			changed = true
		}
		var nw []waiter
		for _, w := range ls.waiters {
			if w.clerk != clerk {
				nw = append(nw, w)
			} else {
				changed = true
			}
		}
		ls.waiters = nw
		if changed {
			outs = append(outs, s.tryGrantLocked(k, ls)...)
		}
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(s.locks, k)
		}
	}
	go s.send(outs)
}

// outMsg is a message to transmit once the state lock is dropped.
type outMsg struct {
	to   string
	body any
}

func (s *Server) send(outs []outMsg) {
	for _, o := range outs {
		_ = s.ep.Cast(o.to, o.body)
	}
}

// cpuCost models the protocol-processing time of one inbound message:
// a fixed per-message cost plus a per-lock-operation cost for the
// vectored types (which is what makes batching pay).
func (s *Server) cpuCost(body any) sim.Duration {
	ops := 0
	switch m := body.(type) {
	case AcquireBatch:
		ops = len(m.Reqs)
	case ReleaseBatch:
		ops = len(m.Rels)
	case ReqMsg, RelMsg:
		ops = 1
	case SyncResp:
		ops = len(m.Locks)
	}
	perMsg, perOp := s.cfg.CPUPerMsg, s.cfg.CPUPerOp
	if perMsg == 0 {
		perMsg = cpuPerMsg
	}
	if perOp == 0 {
		perOp = cpuPerOp
	}
	return perMsg + sim.Duration(ops)*perOp
}

// handle serves the lock protocol.
func (s *Server) handle(from string, body any) any {
	if s.isDown() {
		return nil
	}
	s.cpu.Use(s.cpuCost(body))
	s.reqC.Inc()
	// The rpc layer rebinds the sender's principal around handlers, so
	// server-side work is charged to the originating client.
	s.acct.ServerOp(obs.CurrentPrincipal())
	switch m := body.(type) {
	case ReqMsg:
		s.onAcquireBatch(m.Clerk, m.Table, 0, []BatchReq{{Lock: m.Lock, Mode: m.Mode, Epoch: m.Epoch}})
	case RelMsg:
		s.onReleaseBatch(m.Clerk, m.Table, 0, []BatchRel{{Lock: m.Lock, NewMode: m.NewMode}})
	case AcquireBatch:
		if m.Renew {
			s.piggyRenew(m.Clerk, m.LeaseID)
		}
		s.onAcquireBatch(m.Clerk, m.Table, m.MapEpoch, m.Reqs)
	case ReleaseBatch:
		if m.Renew {
			s.piggyRenew(m.Clerk, m.LeaseID)
		}
		s.onReleaseBatch(m.Clerk, m.Table, m.MapEpoch, m.Rels)
	case RenewMsg:
		s.renewStdC.Inc()
		s.mu.Lock()
		s.renewals[m.Clerk] = s.w.Clock.Now()
		valid := false
		for _, sess := range s.state.Sessions {
			if sess.Clerk == m.Clerk && sess.LeaseID == m.LeaseID && !sess.Dead {
				valid = true
				break
			}
		}
		epoch := s.state.Epoch
		s.mu.Unlock()
		return RenewAck{Server: s.name, LeaseID: m.LeaseID, Valid: valid, MapEpoch: epoch}
	case RenewalsReq:
		s.mu.Lock()
		times := make(map[string]int64, len(s.renewals))
		for c, t := range s.renewals {
			times[c] = int64(t)
		}
		s.mu.Unlock()
		return RenewalsResp{OK: true, Times: times}
	case OpenReq:
		return s.onOpen(m)
	case CloseReq:
		s.onClose(m)
	case StateReq:
		s.mu.Lock()
		st := s.state.Clone()
		s.mu.Unlock()
		return StateResp{OK: true, State: st}
	case SyncResp:
		s.onSyncResp(m)
	case RecoveryDone:
		s.onRecoveryDone(m)
	}
	return nil
}

func (s *Server) lock(k lockKey) *lockState {
	ls := s.locks[k]
	if ls == nil {
		ls = &lockState{holders: make(map[string]Mode)}
		s.locks[k] = ls
	}
	return ls
}

// piggyRenew serves a lease renewal riding on a batch message: record
// the renewal exactly as a standalone RenewMsg would, then cast a
// RenewAck back — rate-limited per clerk, so a clerk streaming
// batches costs O(1) ack messages per lease window instead of one
// per batch. An invalid session (expired and recovered while the
// clerk was stalled) is acked immediately and with Valid=false so the
// zombie learns its fate without waiting out the limiter.
func (s *Server) piggyRenew(clerk string, leaseID uint64) {
	now := s.w.Clock.Now()
	s.mu.Lock()
	s.renewals[clerk] = now
	valid := false
	for _, sess := range s.state.Sessions {
		if sess.Clerk == clerk && sess.LeaseID == leaseID && !sess.Dead {
			valid = true
			break
		}
	}
	limit := s.cfg.LeaseDuration / 6
	if limit <= 0 {
		limit = DefaultLeaseDuration / 6
	}
	ack := !valid || sim.Duration(now-s.ackCast[clerk]) >= limit
	if ack {
		s.ackCast[clerk] = now
	}
	epoch := s.state.Epoch
	s.mu.Unlock()
	s.renewPigC.Inc()
	if ack {
		_ = s.ep.Cast(ClerkAddr(clerk), RenewAck{Server: s.name, LeaseID: leaseID, Valid: valid, MapEpoch: epoch})
	}
}

// onAcquireBatch serves a vectored lock request: every lock we own is
// processed under one state-lock acquisition; locks we do NOT own are
// nacked back in a single WrongShard carrying our map epoch, so a
// clerk that routed with a stale shard map refetches and retries
// against the new owner instead of waiting forever on a silent drop.
func (s *Server) onAcquireBatch(clerk, table string, mapEpoch int64, reqs []BatchReq) {
	var outs []outMsg
	var wrong []uint64
	s.mu.Lock()
	epoch := s.state.Epoch
	for _, r := range reqs {
		if s.state.ServerFor(r.Lock) != s.name {
			wrong = append(wrong, r.Lock)
			continue
		}
		if ctr := s.shardCounter(s.state.ShardOf(r.Lock)); ctr != nil {
			ctr.Inc()
		}
		k := lockKey{table, r.Lock}
		ls := s.lock(k)
		// Refresh or add the waiter (idempotent retransmits).
		found := false
		for i := range ls.waiters {
			if ls.waiters[i].clerk == clerk {
				ls.waiters[i].mode = r.Mode
				if r.Epoch > ls.waiters[i].epoch {
					ls.waiters[i].epoch = r.Epoch
				}
				found = true
				break
			}
		}
		if !found {
			// Already holding at sufficient mode? Re-grant (lost grant).
			if held, ok := ls.holders[clerk]; ok && held >= r.Mode {
				outs = append(outs, outMsg{ClerkAddr(clerk), GrantMsg{Table: table, Lock: r.Lock, Mode: held, Ver: s.state.Version, Epoch: r.Epoch}})
				continue
			}
			ls.waiters = append(ls.waiters, waiter{clerk, r.Mode, r.Epoch})
			// A new conflict deserves an immediate revoke; the rate limit
			// only applies to retransmissions of the same conflict.
			ls.lastRevoke = 0
		}
		outs = append(outs, s.tryGrantLocked(k, ls)...)
	}
	s.mu.Unlock()
	if len(wrong) > 0 {
		s.nackWrongShard(clerk, table, epoch, mapEpoch, wrong)
	}
	s.send(outs)
}

// onReleaseBatch serves a vectored release/downgrade. Releases for
// locks we do not own are nacked like acquires: a release lost to a
// silent drop would leave the new owner believing the clerk holds the
// lock forever.
func (s *Server) onReleaseBatch(clerk, table string, mapEpoch int64, rels []BatchRel) {
	var outs []outMsg
	var wrong []uint64
	s.mu.Lock()
	epoch := s.state.Epoch
	for _, r := range rels {
		if s.state.ServerFor(r.Lock) != s.name {
			wrong = append(wrong, r.Lock)
			continue
		}
		if ctr := s.shardCounter(s.state.ShardOf(r.Lock)); ctr != nil {
			ctr.Inc()
		}
		k := lockKey{table, r.Lock}
		ls := s.locks[k]
		if ls == nil {
			continue
		}
		if r.NewMode == None {
			delete(ls.holders, clerk)
		} else if _, ok := ls.holders[clerk]; ok {
			ls.holders[clerk] = r.NewMode
		}
		// Holder state changed: if a conflict persists, revoke the
		// remaining holders without waiting out the retransmit limiter.
		ls.lastRevoke = 0
		outs = append(outs, s.tryGrantLocked(k, ls)...)
		if len(ls.holders) == 0 && len(ls.waiters) == 0 {
			delete(s.locks, k)
		}
	}
	s.mu.Unlock()
	if len(wrong) > 0 {
		s.nackWrongShard(clerk, table, epoch, mapEpoch, wrong)
	}
	s.send(outs)
}

// nackWrongShard tells a clerk its routing was stale for the listed
// locks, quoting our shard-map epoch.
func (s *Server) nackWrongShard(clerk, table string, epoch, clerkEpoch int64, locks []uint64) {
	s.wrongC.Add(int64(len(locks)))
	for _, lk := range locks {
		s.jr.Record("lockservice", "shard", "wrongshard", lk, epoch,
			fmt.Sprintf("%s routed with epoch %d", clerk, clerkEpoch))
	}
	s.trace("wrong-shard nack to %s: %d locks (epoch %d, clerk had %d)", clerk, len(locks), epoch, clerkEpoch)
	_ = s.ep.Cast(ClerkAddr(clerk), WrongShard{Server: s.name, Table: table, Epoch: epoch, Locks: locks})
}

// tryGrantLocked grants as many head waiters as compatibility allows
// (strict FIFO for fairness: "Our distributed lock manager has been
// designed to be fair in granting locks") and emits revokes toward
// the holders blocking the head waiter.
func (s *Server) tryGrantLocked(k lockKey, ls *lockState) []outMsg {
	if s.pendingGrp[s.state.ShardOf(k.Lock)] != nil {
		return nil // shard state still being recovered from clerks
	}
	var outs []outMsg
	for len(ls.waiters) > 0 {
		w := ls.waiters[0]
		if s.sessionDead(w.clerk, k.Table) {
			ls.waiters = ls.waiters[1:]
			continue
		}
		if !s.compatibleLocked(ls, w) {
			break
		}
		ls.holders[w.clerk] = w.mode
		ls.waiters = ls.waiters[1:]
		s.jr.Record("lockservice", "grant", "sent", k.Lock, int64(w.mode), w.clerk)
		outs = append(outs, outMsg{ClerkAddr(w.clerk), GrantMsg{Table: k.Table, Lock: k.Lock, Mode: w.mode, Ver: s.state.Version, Epoch: w.epoch}})
	}
	if len(ls.waiters) > 0 {
		outs = append(outs, s.revokesFor(k, ls)...)
	}
	return outs
}

func (s *Server) compatibleLocked(ls *lockState, w waiter) bool {
	for clerk, mode := range ls.holders {
		if clerk == w.clerk {
			continue // upgrade/re-grant for the same clerk
		}
		if mode == Exclusive || w.mode == Exclusive {
			return false
		}
	}
	return true
}

// revokesFor emits revocations to the holders conflicting with the
// head waiter, rate-limited by RevokeRetry. Dead clerks are skipped:
// their locks stay frozen until recovery releases them.
func (s *Server) revokesFor(k lockKey, ls *lockState) []outMsg {
	now := s.w.Clock.Now()
	if sim.Duration(now-ls.lastRevoke) < s.cfg.RevokeRetry {
		return nil
	}
	ls.lastRevoke = now
	w := ls.waiters[0]
	var outs []outMsg
	for clerk, mode := range ls.holders {
		if clerk == w.clerk || s.sessionDead(clerk, k.Table) {
			continue
		}
		target := None
		if w.mode == Shared && mode == Exclusive {
			target = Shared // downgrade suffices
		} else if w.mode == Shared && mode == Shared {
			continue // not conflicting
		}
		s.revC.Inc()
		s.jr.Record("lockservice", "revoke", "sent", k.Lock, int64(target), clerk)
		outs = append(outs, outMsg{ClerkAddr(clerk), RevokeMsg{Table: k.Table, Lock: k.Lock, NewMode: target}})
	}
	return outs
}

func (s *Server) sessionDead(clerk, table string) bool {
	sess, ok := s.state.Sessions[sessionKey(clerk, table)]
	return ok && sess.Dead
}

// retryRevokes re-emits revokes for locks with blocked waiters.
func (s *Server) retryRevokes() {
	if s.isDown() {
		return
	}
	s.mu.Lock()
	var outs []outMsg
	for k, ls := range s.locks {
		if len(ls.waiters) > 0 {
			outs = append(outs, s.tryGrantLocked(k, ls)...)
		}
	}
	s.mu.Unlock()
	s.send(outs)
}

func (s *Server) onOpen(m OpenReq) OpenResp {
	if err := s.px.Submit(CmdOpenSession{Clerk: m.Clerk, Table: m.Table}, 120*time.Second); err != nil {
		return OpenResp{Err: err.Error()}
	}
	s.mu.Lock()
	sess, ok := s.state.Sessions[sessionKey(m.Clerk, m.Table)]
	s.renewals[m.Clerk] = s.w.Clock.Now()
	s.mu.Unlock()
	if !ok {
		return OpenResp{Err: "session vanished"}
	}
	return OpenResp{OK: true, LeaseID: sess.LeaseID, LogSlot: sess.LogSlot}
}

func (s *Server) onClose(m CloseReq) {
	_ = s.px.Submit(CmdCloseSession{Clerk: m.Clerk, Table: m.Table}, 120*time.Second)
}

// majorityRenewals aggregates the renewal tables of all reachable
// lock servers and returns, per clerk, the k-th freshest renewal
// time with k = majority — mirroring the clerk's own lease rule.
func (s *Server) majorityRenewals() map[string]sim.Time {
	peers := s.det.Members()
	tables := make([]map[string]int64, 0, len(peers))
	s.mu.Lock()
	own := make(map[string]int64, len(s.renewals))
	for c, t := range s.renewals {
		own[c] = int64(t)
	}
	s.mu.Unlock()
	tables = append(tables, own)
	for _, p := range peers {
		if p == s.name || !s.det.Alive(p) {
			continue
		}
		resp, err := s.ep.Call(Addr(p), RenewalsReq{}, 5*time.Second)
		if err != nil {
			continue
		}
		if rr, ok := resp.(RenewalsResp); ok && rr.OK {
			tables = append(tables, rr.Times)
		}
	}
	quorum := len(peers)/2 + 1
	if len(tables) < quorum {
		// Not enough evidence: an unreachable lock server is NOT
		// evidence that a clerk stopped renewing. Skip expiry.
		return nil
	}
	out := make(map[string]sim.Time)
	clerks := make(map[string]bool)
	for _, tab := range tables {
		for c := range tab {
			clerks[c] = true
		}
	}
	for c := range clerks {
		var times []int64
		for _, tab := range tables {
			times = append(times, tab[c]) // zero = this server never heard c
		}
		// Descending selection of the quorum-th freshest among the
		// RESPONDING servers: a session expires only when at least a
		// quorum of servers each positively report prolonged silence.
		for i := 0; i < len(times); i++ {
			for j := i + 1; j < len(times); j++ {
				if times[j] > times[i] {
					times[i], times[j] = times[j], times[i]
				}
			}
		}
		out[c] = sim.Time(times[quorum-1])
	}
	return out
}

// sweep runs on every server but acts only on the coordinator: expire
// leases, mark their sessions dead, and drive recovery jobs.
func (s *Server) sweep() {
	if s.isDown() || !s.amCoordinator() || !s.det.QuorumAlive() {
		return
	}
	now := s.w.Clock.Now()
	renewed := s.majorityRenewals()
	if renewed == nil {
		return // cannot reach a quorum of renewal tables; judge later
	}
	type expiredSess struct{ clerk, table string }
	var expired []expiredSess
	var jobs []recoveryJob
	s.mu.Lock()
	for key, sess := range s.state.Sessions {
		last, ok := renewed[sess.Clerk]
		if !ok || last == 0 {
			// Never renewed anywhere yet (fresh session after a
			// coordinator change): give it a full window, tracked
			// locally.
			if _, seen := s.renewals[sess.Clerk]; !seen {
				s.renewals[sess.Clerk] = now
			}
			last = s.renewals[sess.Clerk]
		}
		if !sess.Dead && sim.Duration(now-last) > s.cfg.LeaseDuration {
			expired = append(expired, expiredSess{sess.Clerk, sess.Table})
		}
		if sess.Dead {
			job := s.recoveries[key]
			if job == nil {
				job = &recoveryJob{dead: sess.Clerk, table: sess.Table, slot: sess.LogSlot}
				s.recoveries[key] = job
			}
			// (Re)assign a recoverer if missing or itself expired.
			rl := renewed[job.recoverer]
			stale := rl == 0 || sim.Duration(now-rl) > s.cfg.LeaseDuration
			if job.recoverer == "" || stale || sim.Duration(now-job.lastSent) > 4*s.cfg.SweepEvery {
				if r := s.pickRecoverer(sess, renewed, now); r != "" {
					if r != job.recoverer {
						s.nextSeq++
						job.seq = s.nextSeq
						job.recoverer = r
					}
					job.lastSent = now
					jobs = append(jobs, *job)
				}
			}
		}
	}
	s.mu.Unlock()

	for _, e := range expired {
		s.trace("EXPIRE session %s/%s", e.clerk, e.table)
		s.jr.Record("lockservice", "lease", "expire", 0, 0, e.clerk+"/"+e.table)
		_ = s.px.Submit(CmdMarkDead{Clerk: e.clerk, Table: e.table}, 120*time.Second)
	}
	for _, j := range jobs {
		s.trace("RECOVER %s by %s", j.dead, j.recoverer)
		s.jr.Record("lockservice", "recovery", "assign", 0, int64(j.slot), j.dead+" by "+j.recoverer)
		_ = s.ep.Cast(ClerkAddr(j.recoverer), RecoverReq{
			Server: s.name, Table: j.table, Dead: j.dead, DeadSlot: j.slot, Seq: j.seq,
		})
	}
}

// pickRecoverer chooses a live clerk of the same table, judged by
// the majority renewal view. Called with s.mu held.
func (s *Server) pickRecoverer(dead Session, renewed map[string]sim.Time, now sim.Time) string {
	best := ""
	var bestSeen sim.Time
	for _, sess := range s.state.Sessions {
		if sess.Table != dead.Table || sess.Dead || sess.Clerk == dead.Clerk {
			continue
		}
		seen := renewed[sess.Clerk]
		if seen == 0 || sim.Duration(now-seen) > s.cfg.LeaseDuration {
			continue
		}
		if best == "" || seen > bestSeen {
			best, bestSeen = sess.Clerk, seen
		}
	}
	return best
}

func (s *Server) onRecoveryDone(m RecoveryDone) {
	s.mu.Lock()
	key := sessionKey(m.Dead, m.Table)
	job := s.recoveries[key]
	valid := job != nil && job.seq == m.Seq
	s.mu.Unlock()
	if !valid {
		return
	}
	s.jr.Record("lockservice", "recovery", "closed", 0, 0, m.Dead)
	_ = s.px.Submit(CmdCloseSession{Clerk: m.Dead, Table: m.Table}, 120*time.Second)
}

// syncShards reconstructs gained shards' lock state from the clerks
// (phase two of reassignment): "lock servers that gain locks contact
// the clerks that have the relevant lock tables open. The servers
// recover the state of their new locks from the clerks."
func (s *Server) syncShards(shards []int) {
	s.mu.Lock()
	s.nextSeq++
	seq := s.nextSeq
	waiting := make(map[string]bool)
	for _, sess := range s.state.Sessions {
		if !sess.Dead {
			waiting[sess.Clerk] = true
		}
	}
	gs := &shardSync{seq: seq, shards: shards, waiting: waiting}
	for _, sh := range shards {
		s.pendingGrp[sh] = gs
	}
	var clerks []string
	tables := make(map[string]bool)
	for _, sess := range s.state.Sessions {
		if !sess.Dead {
			clerks = append(clerks, sess.Clerk)
			tables[sess.Table] = true
		}
	}
	ver := s.state.Version
	nshards := s.state.Shards
	s.jr.Record("lockservice", "handoff", "begin", 0, int64(len(shards)),
		fmt.Sprintf("shards %v seq %d, syncing %d clerks", shards, seq, len(clerks)))
	s.mu.Unlock()

	for _, clerk := range clerks {
		for table := range tables {
			_ = s.ep.Cast(ClerkAddr(clerk), SyncReq{Server: s.name, Table: table, Shards: shards, NumShards: nshards, Seq: seq, Ver: ver})
		}
	}
	if len(clerks) == 0 {
		s.finishSync(seq)
	}
	// Laggards are re-asked by the syncRetry ticker; the shards stay
	// pending (no grants) until every live clerk has answered or its
	// session has died.
}

// syncRetry re-sends SyncReqs for pending shards and prunes clerks
// whose sessions are gone.
func (s *Server) syncRetry() {
	if s.isDown() {
		return
	}
	s.mu.Lock()
	type ask struct {
		clerk  string
		table  string
		shards []int
		seq    uint64
		ver    int64
	}
	var asks []ask
	var finished []uint64
	seen := make(map[uint64]bool)
	nshards := s.state.Shards
	for _, gs := range s.pendingGrp {
		if seen[gs.seq] {
			continue
		}
		seen[gs.seq] = true
		for clerk := range gs.waiting {
			alive := false
			table := ""
			for _, sess := range s.state.Sessions {
				if sess.Clerk == clerk && !sess.Dead {
					alive = true
					table = sess.Table
					break
				}
			}
			if !alive {
				delete(gs.waiting, clerk)
				continue
			}
			asks = append(asks, ask{clerk, table, gs.shards, gs.seq, s.state.Version})
		}
		if len(gs.waiting) == 0 {
			finished = append(finished, gs.seq)
		}
	}
	s.mu.Unlock()
	for _, a := range asks {
		_ = s.ep.Cast(ClerkAddr(a.clerk), SyncReq{Server: s.name, Table: a.table, Shards: a.shards, NumShards: nshards, Seq: a.seq, Ver: a.ver})
	}
	for _, seq := range finished {
		s.finishSync(seq)
	}
}

func (s *Server) onSyncResp(m SyncResp) {
	s.mu.Lock()
	var gs *shardSync
	for _, p := range s.pendingGrp {
		if p.seq == m.Seq {
			gs = p
			break
		}
	}
	if gs == nil || !gs.waiting[m.Clerk] {
		s.mu.Unlock()
		return
	}
	delete(gs.waiting, m.Clerk)
	for _, h := range m.Locks {
		// Table comes from the session; clerk reports per its table.
		table := ""
		for _, sess := range s.state.Sessions {
			if sess.Clerk == m.Clerk {
				table = sess.Table
				break
			}
		}
		if table == "" {
			continue
		}
		k := lockKey{table, h.Lock}
		ls := s.lock(k)
		ls.holders[m.Clerk] = h.Mode
	}
	done := len(gs.waiting) == 0
	s.mu.Unlock()
	if done {
		s.finishSync(m.Seq)
	}
}

// finishSync marks shards with the given sync sequence ready and
// kicks granting.
func (s *Server) finishSync(seq uint64) {
	s.mu.Lock()
	var ready []int
	for sh, p := range s.pendingGrp {
		if p.seq == seq {
			ready = append(ready, sh)
		}
	}
	for _, sh := range ready {
		delete(s.pendingGrp, sh)
	}
	var outs []outMsg
	if len(ready) > 0 {
		s.jr.Record("lockservice", "handoff", "end", 0, int64(len(ready)),
			fmt.Sprintf("shards %v recovered, granting resumes", ready))
		for k, ls := range s.locks {
			sh := s.state.ShardOf(k.Lock)
			for _, r := range ready {
				if sh == r {
					outs = append(outs, s.tryGrantLocked(k, ls)...)
					break
				}
			}
		}
	}
	s.mu.Unlock()
	s.send(outs)
}

// Stats reports the paper's lock memory model applied to this
// server's current state.
func (s *Server) Stats() (locks int, bytes int64) {
	s.mu.Lock()
	for _, ls := range s.locks {
		locks++
		bytes += ServerBytesPerLock
		bytes += int64((len(ls.holders) + len(ls.waiters))) * ServerBytesPerClerk
	}
	s.mu.Unlock()
	// Mirror the computed values into the registry so snapshots see
	// them without calling Stats.
	s.locksG.Set(int64(locks))
	s.memBytes.Set(bytes)
	return locks, bytes
}
