package lockservice

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// TestLockServiceOverTCP runs the complete lock protocol — Paxos,
// heartbeats, leases, grants, and revocations — over real TCP
// connections instead of the simulated network, demonstrating that
// the stack is transport-agnostic and deployable across processes.
func TestLockServiceOverTCP(t *testing.T) {
	carrier := rpc.NewTCPCarrier()
	defer carrier.Close()
	// Real time (compression 1) since TCP is real.
	w := sim.NewWorld(1, 5)
	defer w.Stop()

	cfg := DefaultConfig()
	cfg.LeaseDuration = 5 * time.Second
	cfg.HeartbeatEvery = 200 * time.Millisecond
	cfg.SuspectAfter = 2 * time.Second
	cfg.RevokeRetry = 200 * time.Millisecond
	cfg.SweepEvery = 500 * time.Millisecond
	cfg.SyncTimeout = time.Second

	names := []string{"tls0", "tls1", "tls2"}
	var servers []*Server
	for _, n := range names {
		servers = append(servers, NewServerWithCarrier(w, n, names, cfg, carrier))
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	mk := func(machine string) *Clerk {
		c := NewClerkWithCarrier(w, machine, "tcpfs", names, cfg, carrier)
		c.SetCallbacks(func(lock uint64, to Mode) {}, nil, nil)
		if err := c.Open(); err != nil {
			t.Fatalf("open %s: %v", machine, err)
		}
		return c
	}
	c1 := mk("tws1")
	defer c1.Close()
	c2 := mk("tws2")
	defer c2.Close()

	if c1.LogSlot() == c2.LogSlot() {
		t.Fatal("log slots collide over TCP")
	}

	// Mutual exclusion across real sockets.
	var inside, violations int32
	var wg sync.WaitGroup
	for _, c := range []*Clerk{c1, c2} {
		wg.Add(1)
		go func(c *Clerk) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if err := c.Lock(9, Exclusive); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if atomic.AddInt32(&inside, 1) != 1 {
					atomic.AddInt32(&violations, 1)
				}
				time.Sleep(5 * time.Millisecond)
				atomic.AddInt32(&inside, -1)
				c.Unlock(9)
			}
		}(c)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations over TCP", violations)
	}

	// Shared locks coexist; sticky grants persist.
	if err := c1.Lock(10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := c2.Lock(10, Shared); err != nil {
		t.Fatal(err)
	}
	c1.Unlock(10)
	c2.Unlock(10)
	if c1.Held(10) != Shared || c2.Held(10) != Shared {
		t.Fatal("sticky shared grants lost")
	}
}
