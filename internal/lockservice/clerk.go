package lockservice

import (
	"sync"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// clkLock is the clerk-side state of one lock.
type clkLock struct {
	mode          Mode // granted mode
	want          Mode // highest mode local waiters need
	users         int  // FS operations currently inside the lock
	revokePending bool
	revokeTo      Mode
	revoking      bool // flush callback in flight
	lastReq       sim.Time
	lastReqMode   Mode // mode of the last transmitted request
	lastUsed      sim.Time
	// epoch advances on every release/downgrade; grants echoing an
	// older epoch answered a request from a previous tenancy of this
	// lock and must be ignored.
	epoch int64
}

// Clerk is the lock service module linked into each Frangipani
// server ("a clerk module linked into each Frangipani server", §6).
// Locks are sticky: Unlock releases the caller's use but the clerk
// keeps the grant until some other clerk needs a conflicting lock,
// at which point the revoke callback (cache flush / invalidate) runs
// and the lock is downgraded or released.
type Clerk struct {
	machine string
	table   string
	w       *sim.World
	cfg     Config
	ep      *rpc.Endpoint
	servers []string

	mu        sync.Mutex
	cond      *sync.Cond
	locks     map[uint64]*clkLock
	epochGen  int64         // source of per-lock request epochs
	groupVer  map[int]int64 // fencing floor per lock group
	state     GState
	stateOK   bool
	leaseID   uint64
	logSlot   int
	acks      map[string]sim.Time
	opened    bool
	closed    bool
	leaseLost bool
	cancels   []func()

	// onRevoke runs before a lock is downgraded (to Shared) or
	// released (to None): flush dirty data, then invalidate on full
	// release. It must not call back into the clerk for this lock.
	onRevoke func(lock uint64, to Mode)
	// onRecover replays a dead server's log; see paper §4.
	onRecover func(dead string, deadSlot int) error
	// onLeaseLost poisons the file system (paper §6: "Frangipani
	// turns on an internal flag that causes all subsequent requests
	// from user programs to return an error").
	onLeaseLost func()

	// Trace, when set, receives debug events.
	Trace func(format string, args ...any)

	// Observability; set once at construction.
	now    obs.NowFunc
	tr     *obs.Tracer
	acqLat *obs.Histogram
	revLat *obs.Histogram
	relLat *obs.Histogram
	resTab *obs.ResourceTable // per-lock contention (hot-lock table)
	jr     *obs.Journal       // flight recorder (nil-safe)
}

func (c *Clerk) trace(format string, args ...any) {
	if c.Trace != nil {
		c.Trace(format, args...)
	}
}

// NewClerk creates a clerk for one machine and lock table on the
// world's simulated network. Callbacks must be installed before Open.
func NewClerk(w *sim.World, machine, table string, servers []string, cfg Config) *Clerk {
	return NewClerkWithCarrier(w, machine, table, servers, cfg, rpc.SimCarrier{Net: w.Net})
}

// NewClerkWithCarrier creates a clerk on an arbitrary message carrier.
func NewClerkWithCarrier(w *sim.World, machine, table string, servers []string, cfg Config, carrier rpc.Carrier) *Clerk {
	c := &Clerk{
		machine:  machine,
		table:    table,
		w:        w,
		cfg:      cfg,
		servers:  append([]string(nil), servers...),
		locks:    make(map[uint64]*clkLock),
		acks:     make(map[string]sim.Time),
		groupVer: make(map[int]int64),
	}
	c.cond = sync.NewCond(&c.mu)
	if reg := w.Obs; reg != nil {
		c.now = reg.Now
		c.tr = reg.Tracer()
		c.acqLat = reg.Histogram("lockservice.acquire.latency#" + machine)
		c.revLat = reg.Histogram("lockservice.revoke.latency#" + machine)
		c.relLat = reg.Histogram("lockservice.release.latency#" + machine)
		c.resTab = reg.Resources("lockservice.locks")
		c.jr = reg.Journal(machine)
	}
	c.ep = rpc.NewEndpoint(ClerkAddr(machine), carrier, w.Clock, c.handle)
	return c
}

// SetCallbacks installs the FS integration hooks.
func (c *Clerk) SetCallbacks(onRevoke func(lock uint64, to Mode),
	onRecover func(dead string, deadSlot int) error, onLeaseLost func()) {
	c.mu.Lock()
	c.onRevoke = onRevoke
	c.onRecover = onRecover
	c.onLeaseLost = onLeaseLost
	c.mu.Unlock()
}

// Machine returns the clerk's machine name (its identity to the lock
// service).
func (c *Clerk) Machine() string { return c.machine }

// Open contacts the lock service, opens the table, and starts lease
// renewal. It returns the assigned log slot.
func (c *Clerk) Open() error {
	var resp OpenResp
	ok := false
	for _, s := range c.servers {
		r, err := c.ep.Call(Addr(s), OpenReq{Clerk: c.machine, Table: c.table}, 180*time.Second)
		if err != nil {
			continue
		}
		if or, isOpen := r.(OpenResp); isOpen && or.OK {
			resp = or
			ok = true
			break
		}
	}
	if !ok {
		return ErrNoServer
	}
	now := c.w.Clock.Now()
	c.mu.Lock()
	c.leaseID = resp.LeaseID
	c.logSlot = resp.LogSlot
	c.opened = true
	for _, s := range c.servers {
		c.acks[s] = now
	}
	c.mu.Unlock()
	_ = c.refreshState()
	idle := c.cfg.IdleDiscard
	if idle <= 0 {
		idle = DefaultIdleDiscard
	}
	c.cancels = append(c.cancels,
		c.w.Clock.Tick(c.cfg.LeaseDuration/3, c.renew),
		c.w.Clock.Tick(c.cfg.RevokeRetry, c.retryRequests),
		c.w.Clock.Tick(idle/4, func() { c.discardIdle(idle) }),
	)
	return nil
}

// discardIdle releases sticky grants unused for longer than idle,
// bounding lock memory (§6). Discard runs through the same path as a
// server revoke, so covered dirty data is flushed first.
func (c *Clerk) discardIdle(idle sim.Duration) {
	now := c.w.Clock.Now()
	c.mu.Lock()
	if c.closed || c.leaseLost {
		c.mu.Unlock()
		return
	}
	var victims []uint64
	for id, l := range c.locks {
		idleLong := sim.Duration(now-l.lastUsed) > idle
		quiet := l.users == 0 && l.want <= l.mode && !l.revokePending && !l.revoking
		if l.mode > None && quiet && idleLong {
			victims = append(victims, id)
		} else if l.mode == None && quiet && idleLong {
			// Fully released and forgotten: reclaim the entry itself.
			delete(c.locks, id)
		}
	}
	for _, id := range victims {
		l := c.locks[id]
		l.revokePending = true
		l.revokeTo = None
		l.revoking = true
	}
	c.mu.Unlock()
	for _, id := range victims {
		go c.processRevoke(id)
	}
}

// LeaseID returns the lease identifier from Open.
func (c *Clerk) LeaseID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseID
}

// LogSlot returns the private log slot assigned at Open; Frangipani
// derives its log location from it (§7).
func (c *Clerk) LogSlot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logSlot
}

// Close cleanly closes the table (unmount).
func (c *Clerk) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	for _, cancel := range c.cancels {
		cancel()
	}
	for _, s := range c.servers {
		_ = c.ep.Cast(Addr(s), CloseReq{Clerk: c.machine, Table: c.table})
	}
	c.ep.Close()
}

// Abandon simulates a crash of the clerk's machine: tickers stop and
// the endpoint goes silent WITHOUT closing the session, so the lock
// service sees the lease expire and initiates recovery.
func (c *Clerk) Abandon() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.jr.Record("lockservice", "session", "abandon", 0, 0, "crash: lease left to expire")
	c.cond.Broadcast()
	for _, cancel := range c.cancels {
		cancel()
	}
	c.ep.Close()
}

// refreshState fetches the lock-group assignment.
func (c *Clerk) refreshState() error {
	for _, s := range c.servers {
		r, err := c.ep.Call(Addr(s), StateReq{}, 60*time.Second)
		if err != nil {
			continue
		}
		if sr, ok := r.(StateResp); ok && sr.OK {
			c.mu.Lock()
			if !c.stateOK || sr.State.Version > c.state.Version {
				c.state = sr.State
				c.stateOK = true
			}
			c.mu.Unlock()
			return nil
		}
	}
	return ErrNoServer
}

func (c *Clerk) serverFor(lock uint64) string {
	c.mu.Lock()
	ok := c.stateOK
	srv := ""
	if ok {
		srv = c.state.ServerFor(lock)
	}
	c.mu.Unlock()
	if !ok {
		if c.refreshState() != nil {
			return ""
		}
		c.mu.Lock()
		srv = c.state.ServerFor(lock)
		c.mu.Unlock()
	}
	return srv
}

// Lock acquires the lock in the given mode, blocking until granted.
// It returns ErrLeaseLost if the clerk's lease expires meanwhile.
func (c *Clerk) Lock(lock uint64, mode Mode) error {
	if c.now == nil {
		return c.lockWait(lock, mode)
	}
	start := c.now()
	var err error
	if sp := c.tr.Child("lockservice", "acquire"); sp != nil {
		obs.With(sp, func() { err = c.lockWait(lock, mode) })
		sp.Done()
	} else {
		err = c.lockWait(lock, mode)
	}
	// Per-lock contention: the whole acquire latency counts as wait
	// (an uncontended sticky hit is ~0, so hot locks dominate).
	wait := c.now() - start
	c.resTab.Acquire(lock, wait)
	c.acqLat.Record(wait)
	// Journal only acquires that blocked or failed: uncontended sticky
	// hits are the overwhelming common case and would churn the ring.
	if err != nil {
		c.jr.Record("lockservice", "acquire", "fail", lock, wait, err.Error())
	} else if wait > 0 {
		c.jr.Record("lockservice", "acquire", "ok", lock, wait, "")
	}
	return err
}

func (c *Clerk) lockWait(lock uint64, mode Mode) error {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		if c.leaseLost {
			c.mu.Unlock()
			return ErrLeaseLost
		}
		l := c.lockLocked(lock)
		if l.mode >= mode && !l.revokePending && !l.revoking {
			l.users++
			l.lastUsed = c.w.Clock.Now()
			c.mu.Unlock()
			return nil
		}
		if l.want < mode {
			l.want = mode
		}
		// While a revoke is pending or in flight, no request may be
		// sent: a request racing ahead of our release would make the
		// server re-grant from stale holder state.
		if !l.revokePending && !l.revoking && c.requestLocked(lock, l) {
			// The lock was dropped to send the request; re-check the
			// grant condition before sleeping so a grant that raced
			// the send is not missed.
			continue
		}
		c.cond.Wait()
	}
}

// TryLock acquires without blocking on the network: it succeeds only
// if the clerk already holds a sufficient sticky grant.
func (c *Clerk) TryLock(lock uint64, mode Mode) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.leaseLost {
		return false
	}
	l := c.lockLocked(lock)
	if l.mode >= mode && !l.revokePending && !l.revoking {
		l.users++
		l.lastUsed = c.w.Clock.Now()
		return true
	}
	return false
}

// Unlock releases the caller's use. The grant itself remains cached
// (sticky) until revoked.
func (c *Clerk) Unlock(lock uint64) {
	if c.now != nil {
		start := c.now()
		defer func() { c.relLat.Record(c.now() - start) }()
	}
	c.mu.Lock()
	l := c.locks[lock]
	if l == nil || l.users == 0 {
		c.mu.Unlock()
		return
	}
	l.users--
	start := l.users == 0 && l.revokePending && !l.revoking
	if start {
		l.revoking = true
	}
	c.mu.Unlock()
	if start {
		go c.processRevoke(lock)
	}
	c.cond.Broadcast()
}

// Held reports the clerk's current granted mode for a lock.
func (c *Clerk) Held(lock uint64) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.locks[lock]; l != nil {
		return l.mode
	}
	return None
}

// HeldCount returns the number of sticky grants currently cached.
func (c *Clerk) HeldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, l := range c.locks {
		if l.mode > None {
			n++
		}
	}
	return n
}

func (c *Clerk) lockLocked(lock uint64) *clkLock {
	l := c.locks[lock]
	if l == nil {
		c.epochGen++
		l = &clkLock{epoch: c.epochGen}
		c.locks[lock] = l
	}
	return l
}

// requestLocked (re)sends the lock request, rate-limited. The send
// happens with the clerk lock held: the network assigns its FIFO
// sequence synchronously inside Send, so holding the lock guarantees
// that requests and releases reach the wire in state-machine order.
func (c *Clerk) requestLocked(lock uint64, l *clkLock) bool {
	now := c.w.Clock.Now()
	// Rate-limit retransmissions — but never suppress the FIRST
	// request (lastReq == 0 means "never sent") or an UPGRADE (a
	// request for a stronger mode than the last one transmitted).
	if l.lastReq != 0 && l.want <= l.lastReqMode &&
		sim.Duration(now-l.lastReq) < c.cfg.RevokeRetry/2 {
		return false
	}
	if !c.stateOK {
		c.trace("request lock=%x suppressed: no routing state", lock)
		return false // routing unknown; retry ticker will refresh
	}
	l.lastReq = now
	l.lastReqMode = l.want
	srv := c.state.ServerFor(lock)
	c.trace("request lock=%x mode=%v -> %s", lock, l.want, srv)
	c.jr.Record("lockservice", "acquire", "wait", lock, int64(l.want), srv)
	_ = c.ep.Cast(Addr(srv), ReqMsg{Clerk: c.machine, Table: c.table, Lock: lock, Mode: l.want, Epoch: l.epoch})
	return true
}

// sendReleaseLocked transmits a release/downgrade with the clerk lock
// held, for the same ordering reason as requestLocked.
func (c *Clerk) sendReleaseLocked(lock uint64, newMode Mode) {
	if !c.stateOK {
		return // server will re-revoke; we will answer then
	}
	srv := c.state.ServerFor(lock)
	_ = c.ep.Cast(Addr(srv), RelMsg{Clerk: c.machine, Table: c.table, Lock: lock, NewMode: newMode})
}

// retryRequests retransmits wants that have not been granted and
// refreshes routing state occasionally.
func (c *Clerk) retryRequests() {
	c.mu.Lock()
	if c.closed || c.leaseLost {
		c.mu.Unlock()
		return
	}
	anyPending := false
	for _, l := range c.locks {
		if l.want > l.mode && !l.revoking && !l.revokePending {
			anyPending = true
			break
		}
	}
	c.mu.Unlock()
	if !anyPending {
		return
	}
	_ = c.refreshState() // routing may have changed under us
	c.mu.Lock()
	for id, l := range c.locks {
		if l.want > l.mode && !l.revoking && !l.revokePending {
			l.lastReq = 0 // force through the rate limit
			c.requestLocked(id, l)
		}
	}
	c.mu.Unlock()
}

// processRevoke runs the FS flush callback and then complies with the
// pending revoke.
func (c *Clerk) processRevoke(lock uint64) {
	c.trace("processRevoke lock=%x", lock)
	c.resTab.Event(lock) // count the revoke against the lock
	var start int64
	if c.now != nil {
		start = c.now()
		defer func() { c.revLat.Record(c.now() - start) }()
	}
	c.mu.Lock()
	l := c.locks[lock]
	if l == nil {
		c.mu.Unlock()
		return
	}
	target := l.revokeTo
	cb := c.onRevoke
	c.mu.Unlock()

	if cb != nil {
		// Revokes run on their own goroutine, so this roots a fresh
		// trace: the flush it triggers (wal + petal spans) is
		// followable like any foreground op.
		sp := c.tr.Start("lockservice", "revoke")
		if sp == nil {
			cb(lock, target)
		} else {
			obs.With(sp, func() { cb(lock, target) })
			sp.Done()
		}
	}

	c.mu.Lock()
	c.trace("revoke done lock=%x -> %v", lock, target)
	l.mode = target
	l.want = None // local waiters re-establish their wants
	// New tenancy: grants answering requests from before this
	// release/downgrade are void, and the retransmission rate limiter
	// must not throttle the tenancy's first request.
	c.epochGen++
	l.epoch = c.epochGen
	l.lastReq = 0
	l.lastReqMode = None
	// Transmit the release before clearing the revoking flag, with
	// the clerk lock held: no request of ours can overtake it.
	c.jr.Record("lockservice", "release", "sent", lock, int64(target), "")
	c.sendReleaseLocked(lock, target)
	l.revokePending = false
	l.revoking = false
	c.mu.Unlock()
	c.cond.Broadcast()
}

// handle serves server-to-clerk messages.
func (c *Clerk) handle(from string, body any) any {
	switch m := body.(type) {
	case GrantMsg:
		c.onGrant(m)
	case RevokeMsg:
		c.onRevokeMsg(m)
	case SyncReq:
		return c.onSync(m)
	case RecoverReq:
		c.onRecoverReq(m)
	case RenewAck:
		c.mu.Lock()
		c.acks[m.Server] = c.w.Clock.Now()
		c.mu.Unlock()
	}
	return nil
}

func (c *Clerk) onGrant(m GrantMsg) {
	if m.Table != c.table {
		return
	}
	c.mu.Lock()
	if c.leaseLost || c.closed {
		c.sendReleaseLocked(m.Lock, None)
		c.mu.Unlock()
		return
	}
	c.trace("grant lock=%x mode=%v ver=%d epoch=%d floor=%d", m.Lock, m.Mode, m.Ver, m.Epoch, c.groupVer[Group(m.Lock)])
	if m.Ver != 0 && m.Ver < c.groupVer[Group(m.Lock)] {
		// Grant from a deposed lock server that has not yet applied
		// the reassignment; the new server's sync is authoritative.
		c.mu.Unlock()
		return
	}
	l := c.lockLocked(m.Lock)
	if m.Epoch != 0 && m.Epoch != l.epoch {
		// This grant answers a retransmitted request from before our
		// last release/downgrade; the server's re-grant raced our
		// release and is void.
		c.trace("grant lock=%x stale epoch %d != %d, ignored", m.Lock, m.Epoch, l.epoch)
		c.mu.Unlock()
		return
	}
	if l.revokePending || l.revoking {
		// A grant crossing our in-progress release is stale; our
		// release corrects the server's view and the want will be
		// re-requested afterwards.
		c.mu.Unlock()
		return
	}
	if m.Mode > l.mode {
		l.mode = m.Mode
	}
	c.jr.Record("lockservice", "grant", "recv", m.Lock, int64(m.Mode), "")
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *Clerk) onRevokeMsg(m RevokeMsg) {
	if m.Table != c.table {
		return
	}
	c.trace("revokeMsg lock=%x to=%v", m.Lock, m.NewMode)
	c.mu.Lock()
	l := c.locks[m.Lock]
	if l == nil || l.mode <= m.NewMode {
		mode := None
		wanting := false
		if l != nil {
			mode = l.mode
			wanting = l.want > l.mode || l.revokePending || l.revoking
		}
		// Already compliant. Refresh the server's view in case our
		// release was lost — but never while a request of ours is
		// outstanding: this release could overtake that request's
		// grant and cancel it on the server.
		if !wanting {
			c.sendReleaseLocked(m.Lock, mode)
		}
		c.mu.Unlock()
		return
	}
	if l.revokePending && l.revokeTo <= m.NewMode {
		c.mu.Unlock()
		return // already working on an equal-or-stronger revoke
	}
	c.jr.Record("lockservice", "revoke", "recv", m.Lock, int64(m.NewMode), "")
	l.revokePending = true
	if !l.revoking || m.NewMode < l.revokeTo {
		l.revokeTo = m.NewMode
	}
	start := l.users == 0 && !l.revoking
	if start {
		l.revoking = true
	}
	c.mu.Unlock()
	if start {
		go c.processRevoke(m.Lock)
	}
}

func (c *Clerk) onSync(m SyncReq) any {
	if m.Table != c.table {
		return nil
	}
	groups := make(map[int]bool, len(m.Groups))
	for _, g := range m.Groups {
		groups[g] = true
	}
	c.mu.Lock()
	for g := range groups {
		if m.Ver > c.groupVer[g] {
			c.groupVer[g] = m.Ver
		}
	}
	var held []HeldLock
	for id, l := range c.locks {
		if l.mode > None && groups[Group(id)] {
			held = append(held, HeldLock{Lock: id, Mode: l.mode})
		}
	}
	c.mu.Unlock()
	go func() { _ = c.refreshState() }() // assignment changed; relearn routing
	_ = c.ep.Cast(Addr(m.Server), SyncResp{Clerk: c.machine, Seq: m.Seq, Locks: held})
	return nil
}

func (c *Clerk) onRecoverReq(m RecoverReq) {
	if m.Table != c.table {
		return
	}
	c.mu.Lock()
	cb := c.onRecover
	c.mu.Unlock()
	c.jr.Record("lockservice", "recovery", "asked", 0, int64(m.DeadSlot), m.Dead)
	go func() {
		if cb != nil {
			if err := cb(m.Dead, m.DeadSlot); err != nil {
				c.jr.Record("lockservice", "recovery", "fail", 0, int64(m.DeadSlot), m.Dead+": "+err.Error())
				return // coordinator will retry or reassign
			}
		}
		c.jr.Record("lockservice", "recovery", "done", 0, int64(m.DeadSlot), m.Dead)
		_ = c.ep.Cast(Addr(m.Server), RecoveryDone{
			Clerk: c.machine, Table: c.table, Dead: m.Dead, Seq: m.Seq,
		})
	}()
}

// renew broadcasts lease renewals and checks expiry. The lease is
// considered valid while a majority of lock servers acknowledged a
// renewal within the lease window, which keeps the clerk's view
// conservative across partitions.
func (c *Clerk) renew() {
	c.mu.Lock()
	if c.closed || c.leaseLost || !c.opened {
		c.mu.Unlock()
		return
	}
	lease := c.leaseID
	c.mu.Unlock()

	// Fan out to every server concurrently and settle as soon as the
	// outcome is decided at majority rank: ExpiresAt is fixed once a
	// majority of fresh acks has landed, whatever the stragglers do,
	// so one slow or dead server no longer holds the renewal loop for
	// its full timeout. Stragglers keep running in the background and
	// still record their acks (each goroutine updates c.acks before
	// reporting, so acks counted here are visible to ExpiresAt below).
	type result struct{ acked, invalid bool }
	results := make(chan result, len(c.servers))
	for _, s := range c.servers {
		go func(s string) {
			r, err := c.ep.Call(Addr(s), RenewMsg{Clerk: c.machine, LeaseID: lease}, c.cfg.LeaseDuration/3)
			if err != nil {
				results <- result{}
				return
			}
			if ack, ok := r.(RenewAck); ok && ack.LeaseID == lease {
				if !ack.Valid {
					results <- result{invalid: true}
					return
				}
				c.mu.Lock()
				c.acks[ack.Server] = c.w.Clock.Now()
				c.mu.Unlock()
				results <- result{acked: true}
				return
			}
			results <- result{}
		}(s)
	}
	majority := len(c.servers)/2 + 1
	acked, invalid := 0, 0
	for done := 0; done < len(c.servers) && acked < majority && invalid < majority; done++ {
		r := <-results
		if r.acked {
			acked++
		}
		if r.invalid {
			invalid++
		}
	}

	// A majority of servers positively disowning the session means it
	// was expired and recovered while we were stalled: the lease is
	// gone, whatever our ack arithmetic says.
	if invalid >= majority {
		c.trace("lease invalidated by majority")
		c.jr.Record("lockservice", "lease", "invalid", 0, int64(invalid), "majority disowned session")
		c.loseLease()
		return
	}
	if c.ExpiresAt() <= int64(c.w.Clock.Now()) {
		c.loseLease()
		return
	}
	c.jr.Record("lockservice", "lease", "renew", 0, int64(acked), "")
}

// ExpiresAt returns the simulated time (ns) at which the lease
// expires: the majority-rank renewal ack plus the lease duration.
func (c *Clerk) ExpiresAt() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.servers)
	times := make([]sim.Time, 0, n)
	for _, s := range c.servers {
		times = append(times, c.acks[s])
	}
	// k-th largest with k = majority: the newest time at which a
	// majority had acked.
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if times[j] > times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	k := n/2 + 1
	base := times[k-1]
	return int64(base) + int64(c.cfg.LeaseDuration)
}

// LeaseValid reports whether the lease will still be valid margin
// from now; Frangipani checks this "before attempting any write to
// Petal" (§6).
func (c *Clerk) LeaseValid(margin sim.Duration) bool {
	c.mu.Lock()
	lost := c.leaseLost
	c.mu.Unlock()
	if lost {
		return false
	}
	return c.ExpiresAt() > int64(c.w.Clock.Now())+int64(margin)
}

// loseLease discards all lock and triggers the FS poison callback.
func (c *Clerk) loseLease() {
	c.mu.Lock()
	if c.leaseLost {
		c.mu.Unlock()
		return
	}
	c.leaseLost = true
	held := int64(len(c.locks))
	c.locks = make(map[uint64]*clkLock)
	cb := c.onLeaseLost
	c.mu.Unlock()
	c.jr.Record("lockservice", "lease", "lost", 0, held, "all cached grants discarded")
	c.cond.Broadcast()
	if cb != nil {
		cb()
	}
}

// LeaseLost reports whether the lease has been lost.
func (c *Clerk) LeaseLost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseLost
}

// MemoryBytes reports the paper's clerk-side lock memory model (232
// bytes per cached lock).
func (c *Clerk) MemoryBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.locks)) * ClerkBytesPerLock
}
