package lockservice

import (
	"sync"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// clkLock is the clerk-side state of one lock.
type clkLock struct {
	mode          Mode // granted mode
	want          Mode // highest mode local waiters need
	users         int  // FS operations currently inside the lock
	revokePending bool
	revokeTo      Mode
	revoking      bool // flush callback in flight
	lastReq       sim.Time
	lastReqMode   Mode // mode of the last transmitted request
	lastUsed      sim.Time
	// epoch advances on every release/downgrade; grants echoing an
	// older epoch answered a request from a previous tenancy of this
	// lock and must be ignored.
	epoch int64
}

// sendOp is one queued outbound lock operation, drained by the sender
// demon into per-shard-server batches.
type sendOp struct {
	release bool
	lock    uint64
	mode    Mode  // release: the new mode; acquire: recomputed at flush
	epoch   int64 // acquire: tenancy epoch at enqueue time
}

// Clerk is the lock service module linked into each Frangipani
// server ("a clerk module linked into each Frangipani server", §6).
// Locks are sticky: Unlock releases the caller's use but the clerk
// keeps the grant until some other clerk needs a conflicting lock,
// at which point the revoke callback (cache flush / invalidate) runs
// and the lock is downgraded or released.
//
// Outbound acquires and releases are not transmitted inline: they are
// enqueued on a FIFO and drained by a sender demon that groups
// consecutive operations per owning shard server into AcquireBatch /
// ReleaseBatch messages, so a burst of lock traffic costs one network
// message per server rather than one per lock.
type Clerk struct {
	machine string
	table   string
	w       *sim.World
	cfg     Config
	ep      *rpc.Endpoint
	servers []string

	mu        sync.Mutex
	cond      *sync.Cond
	locks     map[uint64]*clkLock
	epochGen  int64         // source of per-lock request epochs
	shardVer  map[int]int64 // fencing floor per lock shard
	state     GState
	stateOK   bool
	leaseID   uint64
	logSlot   int
	acks      map[string]sim.Time
	// renewSent is the last time a renewal (standalone or piggybacked
	// on a batch) was transmitted to each server; flushLocked uses it
	// to stamp Renew on batches no more often than needed.
	renewSent map[string]sim.Time
	opened    bool
	closed    bool
	leaseLost bool
	cancels   []func()

	// Outbound op queue, drained by the sender demon.
	outq     []sendOp
	sendCond *sync.Cond
	// renewing guards against renewal-tick pileup: a slow shard server
	// must not consume the whole renewal window by stacking ticks.
	renewing bool
	// refreshing single-flights shard-map refetches triggered by
	// wrong-shard nacks and epoch piggybacks.
	refreshing bool

	// onRevoke runs before a lock is downgraded (to Shared) or
	// released (to None): flush dirty data, then invalidate on full
	// release. It must not call back into the clerk for this lock.
	onRevoke func(lock uint64, to Mode)
	// onRecover replays a dead server's log; see paper §4.
	onRecover func(dead string, deadSlot int) error
	// onLeaseLost poisons the file system (paper §6: "Frangipani
	// turns on an internal flag that causes all subsequent requests
	// from user programs to return an error").
	onLeaseLost func()

	// Trace, when set, receives debug events.
	Trace func(format string, args ...any)

	// Observability; set once at construction.
	now        obs.NowFunc
	tr         *obs.Tracer
	acqLat     *obs.Histogram
	revLat     *obs.Histogram
	relLat     *obs.Histogram
	batchC     *obs.Counter       // outbound batch messages
	batchOpsC  *obs.Counter       // lock ops carried in those batches
	renewSkipC *obs.Counter       // renew ticks skipped (predecessor in flight)
	renewStdC  *obs.Counter       // standalone RenewMsg calls issued
	renewPigC  *obs.Counter       // renewals piggybacked on batches
	renewElidC *obs.Counter       // per-server standalone calls elided (fresh ack)
	resTab     *obs.ResourceTable // per-lock contention (hot-lock table)
	acct       *obs.AccountTable  // per-principal lock-wait attribution
	jr         *obs.Journal       // flight recorder (nil-safe)
}

func (c *Clerk) trace(format string, args ...any) {
	if c.Trace != nil {
		c.Trace(format, args...)
	}
}

// NewClerk creates a clerk for one machine and lock table on the
// world's simulated network. Callbacks must be installed before Open.
func NewClerk(w *sim.World, machine, table string, servers []string, cfg Config) *Clerk {
	return NewClerkWithCarrier(w, machine, table, servers, cfg, rpc.SimCarrier{Net: w.Net})
}

// NewClerkWithCarrier creates a clerk on an arbitrary message carrier.
func NewClerkWithCarrier(w *sim.World, machine, table string, servers []string, cfg Config, carrier rpc.Carrier) *Clerk {
	c := &Clerk{
		machine:  machine,
		table:    table,
		w:        w,
		cfg:      cfg,
		servers:  append([]string(nil), servers...),
		locks:     make(map[uint64]*clkLock),
		acks:      make(map[string]sim.Time),
		renewSent: make(map[string]sim.Time),
		shardVer:  make(map[int]int64),
	}
	c.cond = sync.NewCond(&c.mu)
	c.sendCond = sync.NewCond(&c.mu)
	if reg := w.Obs; reg != nil {
		c.now = reg.Now
		c.tr = reg.Tracer()
		c.acqLat = reg.Histogram("lockservice.acquire.latency#" + machine)
		c.revLat = reg.Histogram("lockservice.revoke.latency#" + machine)
		c.relLat = reg.Histogram("lockservice.release.latency#" + machine)
		c.batchC = reg.Counter("lockservice.clerk.batches#" + machine)
		c.batchOpsC = reg.Counter("lockservice.clerk.batched_ops#" + machine)
		c.renewSkipC = reg.Counter("lockservice.renew.skipped#" + machine)
		c.renewStdC = reg.Counter("lockservice.renew.standalone#" + machine)
		c.renewPigC = reg.Counter("lockservice.renew.piggyback#" + machine)
		c.renewElidC = reg.Counter("lockservice.renew.elided#" + machine)
		c.resTab = reg.Resources("lockservice.locks")
		c.acct = reg.Accounts()
		c.jr = reg.Journal(machine)
	}
	c.ep = rpc.NewEndpoint(ClerkAddr(machine), carrier, w.Clock, c.handle)
	return c
}

// SetCallbacks installs the FS integration hooks.
func (c *Clerk) SetCallbacks(onRevoke func(lock uint64, to Mode),
	onRecover func(dead string, deadSlot int) error, onLeaseLost func()) {
	c.mu.Lock()
	c.onRevoke = onRevoke
	c.onRecover = onRecover
	c.onLeaseLost = onLeaseLost
	c.mu.Unlock()
}

// Machine returns the clerk's machine name (its identity to the lock
// service).
func (c *Clerk) Machine() string { return c.machine }

// Open contacts the lock service, opens the table, and starts lease
// renewal. It returns the assigned log slot.
func (c *Clerk) Open() error {
	var resp OpenResp
	ok := false
	for _, s := range c.servers {
		r, err := c.ep.Call(Addr(s), OpenReq{Clerk: c.machine, Table: c.table}, 180*time.Second)
		if err != nil {
			continue
		}
		if or, isOpen := r.(OpenResp); isOpen && or.OK {
			resp = or
			ok = true
			break
		}
	}
	if !ok {
		return ErrNoServer
	}
	now := c.w.Clock.Now()
	c.mu.Lock()
	c.leaseID = resp.LeaseID
	c.logSlot = resp.LogSlot
	c.opened = true
	for _, s := range c.servers {
		c.acks[s] = now
	}
	c.mu.Unlock()
	_ = c.refreshState()
	go c.sender()
	idle := c.cfg.IdleDiscard
	if idle <= 0 {
		idle = DefaultIdleDiscard
	}
	c.cancels = append(c.cancels,
		c.w.Clock.Tick(c.cfg.LeaseDuration/3, c.renew),
		c.w.Clock.Tick(c.cfg.RevokeRetry, c.retryRequests),
		c.w.Clock.Tick(idle/4, func() { c.discardIdle(idle) }),
	)
	return nil
}

// discardIdle releases sticky grants unused for longer than idle,
// bounding lock memory (§6). Discard runs through the same path as a
// server revoke, so covered dirty data is flushed first.
func (c *Clerk) discardIdle(idle sim.Duration) {
	now := c.w.Clock.Now()
	c.mu.Lock()
	if c.closed || c.leaseLost {
		c.mu.Unlock()
		return
	}
	var victims []uint64
	for id, l := range c.locks {
		idleLong := sim.Duration(now-l.lastUsed) > idle
		quiet := l.users == 0 && l.want <= l.mode && !l.revokePending && !l.revoking
		if l.mode > None && quiet && idleLong {
			victims = append(victims, id)
		} else if l.mode == None && quiet && idleLong {
			// Fully released and forgotten: reclaim the entry itself.
			delete(c.locks, id)
		}
	}
	for _, id := range victims {
		l := c.locks[id]
		l.revokePending = true
		l.revokeTo = None
		l.revoking = true
	}
	c.mu.Unlock()
	for _, id := range victims {
		go c.processRevoke(id)
	}
}

// LeaseID returns the lease identifier from Open.
func (c *Clerk) LeaseID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseID
}

// LogSlot returns the private log slot assigned at Open; Frangipani
// derives its log location from it (§7).
func (c *Clerk) LogSlot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logSlot
}

// Close cleanly closes the table (unmount).
func (c *Clerk) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	c.sendCond.Broadcast()
	for _, cancel := range c.cancels {
		cancel()
	}
	for _, s := range c.servers {
		_ = c.ep.Cast(Addr(s), CloseReq{Clerk: c.machine, Table: c.table})
	}
	c.ep.Close()
}

// Abandon simulates a crash of the clerk's machine: tickers stop and
// the endpoint goes silent WITHOUT closing the session, so the lock
// service sees the lease expire and initiates recovery.
func (c *Clerk) Abandon() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.jr.Record("lockservice", "session", "abandon", 0, 0, "crash: lease left to expire")
	c.cond.Broadcast()
	c.sendCond.Broadcast()
	for _, cancel := range c.cancels {
		cancel()
	}
	c.ep.Close()
}

// refreshState fetches the shard map.
func (c *Clerk) refreshState() error {
	for _, s := range c.servers {
		r, err := c.ep.Call(Addr(s), StateReq{}, 60*time.Second)
		if err != nil {
			continue
		}
		if sr, ok := r.(StateResp); ok && sr.OK {
			c.mu.Lock()
			if !c.stateOK || sr.State.Version > c.state.Version {
				c.state = sr.State
				c.stateOK = true
			}
			c.mu.Unlock()
			return nil
		}
	}
	return ErrNoServer
}

// noteNewEpoch reacts to a server advertising a shard-map epoch newer
// than ours (piggybacked on RenewAck or quoted by a WrongShard nack):
// refetch the map once, single-flighted. Called with c.mu held.
func (c *Clerk) noteNewEpochLocked(epoch int64) {
	if !c.stateOK || epoch <= c.state.Epoch || c.refreshing || c.closed || c.leaseLost {
		return
	}
	c.refreshing = true
	go func() {
		_ = c.refreshState()
		c.mu.Lock()
		c.refreshing = false
		c.mu.Unlock()
	}()
}

func (c *Clerk) serverFor(lock uint64) string {
	c.mu.Lock()
	ok := c.stateOK
	srv := ""
	if ok {
		srv = c.state.ServerFor(lock)
	}
	c.mu.Unlock()
	if !ok {
		if c.refreshState() != nil {
			return ""
		}
		c.mu.Lock()
		srv = c.state.ServerFor(lock)
		c.mu.Unlock()
	}
	return srv
}

// shardOfLocked maps a lock to its shard under the current map (or
// the default shard count if the map is not yet known — before the
// first refreshState completes no grants are in flight anyway).
func (c *Clerk) shardOfLocked(lock uint64) int {
	if c.stateOK {
		return c.state.ShardOf(lock)
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	return ShardOf(lock, shards)
}

// Lock acquires the lock in the given mode, blocking until granted.
// It returns ErrLeaseLost if the clerk's lease expires meanwhile.
func (c *Clerk) Lock(lock uint64, mode Mode) error {
	if c.now == nil {
		return c.lockWait(lock, mode)
	}
	start := c.now()
	var err error
	if sp := c.tr.Child("lockservice", "acquire"); sp != nil {
		obs.With(sp, func() { err = c.lockWait(lock, mode) })
		sp.Done()
	} else {
		err = c.lockWait(lock, mode)
	}
	// Per-lock contention: the whole acquire latency counts as wait
	// (an uncontended sticky hit is ~0, so hot locks dominate).
	wait := c.now() - start
	c.resTab.Acquire(lock, wait)
	c.acqLat.Record(wait)
	// Lock blocks on the operation's own goroutine, so the caller's
	// principal binding is in scope to charge the wait.
	c.acct.LockWait(obs.CurrentPrincipal(), wait)
	// Journal only acquires that blocked or failed: uncontended sticky
	// hits are the overwhelming common case and would churn the ring.
	if err != nil {
		c.jr.Record("lockservice", "acquire", "fail", lock, wait, err.Error())
	} else if wait > 0 {
		c.jr.Record("lockservice", "acquire", "ok", lock, wait, "")
	}
	return err
}

func (c *Clerk) lockWait(lock uint64, mode Mode) error {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		if c.leaseLost {
			c.mu.Unlock()
			return ErrLeaseLost
		}
		l := c.lockLocked(lock)
		if l.mode >= mode && !l.revokePending && !l.revoking {
			l.users++
			l.lastUsed = c.w.Clock.Now()
			c.mu.Unlock()
			return nil
		}
		if l.want < mode {
			l.want = mode
		}
		// While a revoke is pending or in flight, no request may be
		// sent: a request racing ahead of our release would make the
		// server re-grant from stale holder state.
		if !l.revokePending && !l.revoking {
			c.requestLocked(lock, l)
		}
		c.cond.Wait()
	}
}

// TryLock acquires without blocking on the network: it succeeds only
// if the clerk already holds a sufficient sticky grant.
func (c *Clerk) TryLock(lock uint64, mode Mode) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.leaseLost {
		return false
	}
	l := c.lockLocked(lock)
	if l.mode >= mode && !l.revokePending && !l.revoking {
		l.users++
		l.lastUsed = c.w.Clock.Now()
		return true
	}
	return false
}

// Unlock releases the caller's use. The grant itself remains cached
// (sticky) until revoked.
func (c *Clerk) Unlock(lock uint64) {
	if c.now != nil {
		start := c.now()
		defer func() { c.relLat.Record(c.now() - start) }()
	}
	c.mu.Lock()
	l := c.locks[lock]
	if l == nil || l.users == 0 {
		c.mu.Unlock()
		return
	}
	l.users--
	start := l.users == 0 && l.revokePending && !l.revoking
	if start {
		l.revoking = true
	}
	c.mu.Unlock()
	if start {
		go c.processRevoke(lock)
	}
	c.cond.Broadcast()
}

// InjectStaleShardMap is a fault-injection hook: it deliberately
// corrupts this clerk's view of the shard map — every shard's owner
// is rotated to the next server and the view is marked older than the
// authoritative one — so the clerk's next batches are misrouted until
// a wrong-shard nack forces a refetch. Tests and experiments use it
// to exercise the stale-map retry path deterministically: a real
// reassignment refreshes clerks almost immediately (the new owner's
// sync request triggers a refetch), so racing one only nacks by luck.
func (c *Clerk) InjectStaleShardMap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stateOK || len(c.servers) < 2 {
		return
	}
	idx := make(map[string]int, len(c.servers))
	for i, s := range c.servers {
		idx[s] = i
	}
	for sh, srv := range c.state.Assignment {
		c.state.Assignment[sh] = c.servers[(idx[srv]+1)%len(c.servers)]
	}
	c.state.Version--
}

// Held reports the clerk's current granted mode for a lock.
func (c *Clerk) Held(lock uint64) Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.locks[lock]; l != nil {
		return l.mode
	}
	return None
}

// HeldCount returns the number of sticky grants currently cached.
func (c *Clerk) HeldCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, l := range c.locks {
		if l.mode > None {
			n++
		}
	}
	return n
}

func (c *Clerk) lockLocked(lock uint64) *clkLock {
	l := c.locks[lock]
	if l == nil {
		c.epochGen++
		l = &clkLock{epoch: c.epochGen}
		c.locks[lock] = l
	}
	return l
}

// enqueueLocked appends an outbound op for the sender demon. Queue
// order is wire order per lock: a release enqueued during a revoke
// always precedes any request of the next tenancy (which carries a
// newer epoch), so the server never sees them inverted.
func (c *Clerk) enqueueLocked(op sendOp) {
	c.outq = append(c.outq, op)
	c.sendCond.Signal()
}

// requestLocked enqueues a (re)send of the lock request, rate-limited.
func (c *Clerk) requestLocked(lock uint64, l *clkLock) {
	now := c.w.Clock.Now()
	// Rate-limit retransmissions — but never suppress the FIRST
	// request (lastReq == 0 means "never sent") or an UPGRADE (a
	// request for a stronger mode than the last one transmitted).
	if l.lastReq != 0 && l.want <= l.lastReqMode &&
		sim.Duration(now-l.lastReq) < c.cfg.RevokeRetry/2 {
		return
	}
	l.lastReq = now
	l.lastReqMode = l.want
	c.trace("request lock=%x mode=%v enqueued", lock, l.want)
	c.jr.Record("lockservice", "acquire", "wait", lock, int64(l.want), "")
	c.enqueueLocked(sendOp{lock: lock, mode: l.want, epoch: l.epoch})
}

// sendReleaseLocked enqueues a release/downgrade.
func (c *Clerk) sendReleaseLocked(lock uint64, newMode Mode) {
	c.enqueueLocked(sendOp{release: true, lock: lock, mode: newMode})
}

// sender is the clerk's outbound demon: it drains the op queue and
// transmits per-shard-server batches. It exits when the clerk closes.
func (c *Clerk) sender() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for len(c.outq) == 0 && !c.closed {
			c.sendCond.Wait()
		}
		if c.closed {
			return
		}
		if !c.stateOK {
			c.mu.Unlock()
			err := c.refreshState()
			c.mu.Lock()
			if err != nil || !c.stateOK {
				// Routing unknown: drop the drain. Pending wants are
				// re-enqueued by the retry ticker and lost releases are
				// re-asked-for by the server's revoke retry.
				c.outq = nil
				continue
			}
		}
		ops := c.outq
		c.outq = nil
		c.flushLocked(ops)
	}
}

// flushLocked groups a drain of the op queue into per-server batches
// and transmits them with c.mu held: the network assigns its FIFO
// sequence synchronously inside Send, so holding the lock guarantees
// batches reach the wire in state-machine order.
//
// Releases are sent before acquires. Within one drain that inversion
// is safe: a queued acquire older than a queued release of the same
// lock carries a pre-release tenancy epoch and is discarded by the
// revalidation below, so the only surviving same-lock order is
// release-then-reacquire — exactly the order the batches transmit.
func (c *Clerk) flushLocked(ops []sendOp) {
	mapEpoch := c.state.Epoch
	relBySrv := make(map[string][]BatchRel)
	acqBySrv := make(map[string][]BatchReq)
	var order []string
	seen := make(map[string]bool)
	for _, op := range ops {
		srv := c.state.ServerFor(op.lock)
		if !seen[srv] {
			seen[srv] = true
			order = append(order, srv)
		}
		if op.release {
			relBySrv[srv] = append(relBySrv[srv], BatchRel{Lock: op.lock, NewMode: op.mode})
			continue
		}
		// Revalidate acquires at flush time: the want may have been
		// granted, released, or superseded since it was enqueued.
		l := c.locks[op.lock]
		if l == nil || l.epoch != op.epoch || l.revokePending || l.revoking || l.want <= l.mode {
			continue
		}
		acqBySrv[srv] = append(acqBySrv[srv], BatchReq{Lock: op.lock, Mode: l.want, Epoch: l.epoch})
	}
	now := c.w.Clock.Now()
	for _, srv := range order {
		// Piggyback a lease renewal on the first batch of this drain
		// when one is due for srv: busy clerks renew as a side effect
		// of traffic they send anyway, keeping their standalone
		// RenewMsg rate at zero (O(1)-in-N control chatter).
		renew := c.opened && !c.leaseLost && c.renewDueLocked(srv, now)
		if rels := relBySrv[srv]; len(rels) > 0 {
			c.batchC.Inc()
			c.batchOpsC.Add(int64(len(rels)))
			m := ReleaseBatch{Clerk: c.machine, Table: c.table, MapEpoch: mapEpoch, Rels: rels}
			if renew {
				m.Renew, m.LeaseID = true, c.leaseID
				c.noteRenewSentLocked(srv, now, true)
				renew = false
			}
			_ = c.ep.Cast(Addr(srv), m)
		}
		if reqs := acqBySrv[srv]; len(reqs) > 0 {
			c.batchC.Inc()
			c.batchOpsC.Add(int64(len(reqs)))
			m := AcquireBatch{Clerk: c.machine, Table: c.table, MapEpoch: mapEpoch, Reqs: reqs}
			if renew {
				m.Renew, m.LeaseID = true, c.leaseID
				c.noteRenewSentLocked(srv, now, true)
			}
			_ = c.ep.Cast(Addr(srv), m)
		}
	}
}

// renewDueLocked reports whether a renewal should ride on a batch to
// srv: the last renewal we transmitted to it (standalone or
// piggybacked) is at least half a renewal tick old. Piggybacking at
// ~2x the standalone cadence keeps the server's ack fresh enough that
// the renew() tick never needs a standalone call while traffic flows.
func (c *Clerk) renewDueLocked(srv string, now sim.Time) bool {
	return sim.Duration(now-c.renewSent[srv]) >= c.cfg.LeaseDuration/6
}

// noteRenewSentLocked records a transmitted renewal to srv.
func (c *Clerk) noteRenewSentLocked(srv string, now sim.Time, piggyback bool) {
	c.renewSent[srv] = now
	if piggyback {
		c.renewPigC.Inc()
	} else {
		c.renewStdC.Inc()
	}
}

// retryRequests retransmits wants that have not been granted and
// refreshes routing state occasionally.
func (c *Clerk) retryRequests() {
	c.mu.Lock()
	if c.closed || c.leaseLost {
		c.mu.Unlock()
		return
	}
	anyPending := false
	for _, l := range c.locks {
		if l.want > l.mode && !l.revoking && !l.revokePending {
			anyPending = true
			break
		}
	}
	c.mu.Unlock()
	if !anyPending {
		return
	}
	_ = c.refreshState() // routing may have changed under us
	c.mu.Lock()
	for id, l := range c.locks {
		if l.want > l.mode && !l.revoking && !l.revokePending {
			l.lastReq = 0 // force through the rate limit
			c.requestLocked(id, l)
		}
	}
	c.mu.Unlock()
}

// processRevoke runs the FS flush callback and then complies with the
// pending revoke.
func (c *Clerk) processRevoke(lock uint64) {
	c.trace("processRevoke lock=%x", lock)
	c.resTab.Event(lock) // count the revoke against the lock
	var start int64
	if c.now != nil {
		start = c.now()
		defer func() { c.revLat.Record(c.now() - start) }()
	}
	c.mu.Lock()
	l := c.locks[lock]
	if l == nil {
		c.mu.Unlock()
		return
	}
	target := l.revokeTo
	cb := c.onRevoke
	c.mu.Unlock()

	if cb != nil {
		// Revokes run on their own goroutine, so this roots a fresh
		// trace: the flush it triggers (wal + petal spans) is
		// followable like any foreground op.
		sp := c.tr.Start("lockservice", "revoke")
		if sp == nil {
			cb(lock, target)
		} else {
			obs.With(sp, func() { cb(lock, target) })
			sp.Done()
		}
	}

	c.mu.Lock()
	c.trace("revoke done lock=%x -> %v", lock, target)
	l.mode = target
	l.want = None // local waiters re-establish their wants
	// New tenancy: grants answering requests from before this
	// release/downgrade are void, and the retransmission rate limiter
	// must not throttle the tenancy's first request.
	c.epochGen++
	l.epoch = c.epochGen
	l.lastReq = 0
	l.lastReqMode = None
	// Enqueue the release before clearing the revoking flag, with the
	// clerk lock held: no request of ours can overtake it in the
	// sender's FIFO.
	c.jr.Record("lockservice", "release", "sent", lock, int64(target), "")
	c.sendReleaseLocked(lock, target)
	l.revokePending = false
	l.revoking = false
	c.mu.Unlock()
	c.cond.Broadcast()
}

// handle serves server-to-clerk messages.
func (c *Clerk) handle(from string, body any) any {
	switch m := body.(type) {
	case GrantMsg:
		c.onGrant(m)
	case RevokeMsg:
		c.onRevokeMsg(m)
	case WrongShard:
		c.onWrongShard(m)
	case SyncReq:
		return c.onSync(m)
	case RecoverReq:
		c.onRecoverReq(m)
	case RenewAck:
		// Piggyback ack cast back by a lock server that saw our
		// Renew-stamped batch. An ack for a dead session (Valid false)
		// must NOT advance the lease arithmetic: the acks age out,
		// standalone renewals resume, and the majority-invalid check
		// there delivers the zombie verdict.
		c.mu.Lock()
		if m.Valid && m.LeaseID == c.leaseID {
			c.acks[m.Server] = c.w.Clock.Now()
		}
		c.noteNewEpochLocked(m.MapEpoch)
		c.mu.Unlock()
	}
	return nil
}

func (c *Clerk) onGrant(m GrantMsg) {
	if m.Table != c.table {
		return
	}
	c.mu.Lock()
	if c.leaseLost || c.closed {
		c.sendReleaseLocked(m.Lock, None)
		c.mu.Unlock()
		return
	}
	c.trace("grant lock=%x mode=%v ver=%d epoch=%d floor=%d", m.Lock, m.Mode, m.Ver, m.Epoch, c.shardVer[c.shardOfLocked(m.Lock)])
	if m.Ver != 0 && m.Ver < c.shardVer[c.shardOfLocked(m.Lock)] {
		// Grant from a deposed lock server that has not yet applied
		// the reassignment; the new server's sync is authoritative.
		c.mu.Unlock()
		return
	}
	l := c.lockLocked(m.Lock)
	if m.Epoch != 0 && m.Epoch != l.epoch {
		// This grant answers a retransmitted request from before our
		// last release/downgrade; the server's re-grant raced our
		// release and is void.
		c.trace("grant lock=%x stale epoch %d != %d, ignored", m.Lock, m.Epoch, l.epoch)
		c.mu.Unlock()
		return
	}
	if l.revokePending || l.revoking {
		// A grant crossing our in-progress release is stale; our
		// release corrects the server's view and the want will be
		// re-requested afterwards.
		c.mu.Unlock()
		return
	}
	if m.Mode > l.mode {
		l.mode = m.Mode
	}
	c.jr.Record("lockservice", "grant", "recv", m.Lock, int64(m.Mode), "")
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *Clerk) onRevokeMsg(m RevokeMsg) {
	if m.Table != c.table {
		return
	}
	c.trace("revokeMsg lock=%x to=%v", m.Lock, m.NewMode)
	c.mu.Lock()
	l := c.locks[m.Lock]
	if l == nil || l.mode <= m.NewMode {
		mode := None
		wanting := false
		if l != nil {
			mode = l.mode
			wanting = l.want > l.mode || l.revokePending || l.revoking
		}
		// Already compliant. Refresh the server's view in case our
		// release was lost — but never while a request of ours is
		// outstanding: this release could overtake that request's
		// grant and cancel it on the server.
		if !wanting {
			c.sendReleaseLocked(m.Lock, mode)
		}
		c.mu.Unlock()
		return
	}
	if l.revokePending && l.revokeTo <= m.NewMode {
		c.mu.Unlock()
		return // already working on an equal-or-stronger revoke
	}
	c.jr.Record("lockservice", "revoke", "recv", m.Lock, int64(m.NewMode), "")
	l.revokePending = true
	if !l.revoking || m.NewMode < l.revokeTo {
		l.revokeTo = m.NewMode
	}
	start := l.users == 0 && !l.revoking
	if start {
		l.revoking = true
	}
	c.mu.Unlock()
	if start {
		go c.processRevoke(m.Lock)
	}
}

// onWrongShard handles a stale-routing nack: refetch the shard map,
// then re-drive every nacked lock against its new owner — re-request
// if we still want it, or re-send the compliant release if the nacked
// message was a release (so no acknowledged release is ever lost to a
// handoff). The refetch runs on its own goroutine: handlers execute
// on the delivery lane and must not issue blocking Calls.
func (c *Clerk) onWrongShard(m WrongShard) {
	if m.Table != c.table || len(m.Locks) == 0 {
		return
	}
	c.trace("wrong-shard nack from %s: %d locks, epoch %d", m.Server, len(m.Locks), m.Epoch)
	c.jr.Record("lockservice", "shard", "wrongshard", m.Locks[0], int64(len(m.Locks)), "nack from "+m.Server)
	locks := append([]uint64(nil), m.Locks...)
	go func() {
		_ = c.refreshState()
		c.mu.Lock()
		if c.closed || c.leaseLost {
			c.mu.Unlock()
			return
		}
		for _, lk := range locks {
			l := c.locks[lk]
			if l == nil {
				continue
			}
			if l.want > l.mode && !l.revokePending && !l.revoking {
				l.lastReq = 0 // force the retry past the rate limit
				c.requestLocked(lk, l)
			} else if l.want <= l.mode && !l.revokePending && !l.revoking {
				// The nacked message was (or might have been) a release;
				// refresh the new owner's view of our hold. Guarded by
				// the same not-wanting rule as the compliant-refresh in
				// onRevokeMsg.
				c.sendReleaseLocked(lk, l.mode)
			}
		}
		c.mu.Unlock()
	}()
}

func (c *Clerk) onSync(m SyncReq) any {
	if m.Table != c.table {
		return nil
	}
	shards := make(map[int]bool, len(m.Shards))
	for _, sh := range m.Shards {
		shards[sh] = true
	}
	nshards := m.NumShards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	c.mu.Lock()
	for sh := range shards {
		if m.Ver > c.shardVer[sh] {
			c.shardVer[sh] = m.Ver
		}
	}
	var held []HeldLock
	for id, l := range c.locks {
		if l.mode > None && shards[ShardOf(id, nshards)] {
			held = append(held, HeldLock{Lock: id, Mode: l.mode})
		}
	}
	c.mu.Unlock()
	go func() { _ = c.refreshState() }() // assignment changed; relearn routing
	_ = c.ep.Cast(Addr(m.Server), SyncResp{Clerk: c.machine, Seq: m.Seq, Locks: held})
	return nil
}

func (c *Clerk) onRecoverReq(m RecoverReq) {
	if m.Table != c.table {
		return
	}
	c.mu.Lock()
	cb := c.onRecover
	c.mu.Unlock()
	c.jr.Record("lockservice", "recovery", "asked", 0, int64(m.DeadSlot), m.Dead)
	go func() {
		if cb != nil {
			if err := cb(m.Dead, m.DeadSlot); err != nil {
				c.jr.Record("lockservice", "recovery", "fail", 0, int64(m.DeadSlot), m.Dead+": "+err.Error())
				return // coordinator will retry or reassign
			}
		}
		c.jr.Record("lockservice", "recovery", "done", 0, int64(m.DeadSlot), m.Dead)
		_ = c.ep.Cast(Addr(m.Server), RecoveryDone{
			Clerk: c.machine, Table: c.table, Dead: m.Dead, Seq: m.Seq,
		})
	}()
}

// renew broadcasts lease renewals and checks expiry. The lease is
// considered valid while a majority of lock servers acknowledged a
// renewal within the lease window, which keeps the clerk's view
// conservative across partitions. One renewal is ever in flight: a
// tick arriving while its predecessor still waits on a slow server is
// skipped (and journaled), so a straggler cannot stack renewal rounds
// and consume the whole window.
func (c *Clerk) renew() {
	c.mu.Lock()
	if c.closed || c.leaseLost || !c.opened {
		c.mu.Unlock()
		return
	}
	if c.renewing {
		c.renewSkipC.Inc()
		c.jr.Record("lockservice", "lease", "renew.skipped", 0, 0, "previous renewal still in flight")
		c.mu.Unlock()
		return
	}
	c.renewing = true
	lease := c.leaseID
	mapEpoch := int64(0)
	if c.stateOK {
		mapEpoch = c.state.Epoch
	}
	// Elide the standalone call to every server whose ack is fresh —
	// a piggybacked renewal on recent batch traffic already advanced
	// its slot in the lease arithmetic. A fresh ack is one younger
	// than the renewal tick (LeaseDuration/3): even if it stops being
	// refreshed the moment we skip, two more ticks fire before the
	// lease can lapse, so safety is untouched. A fully busy clerk
	// therefore sends ZERO standalone RenewMsg RPCs, and renewal load
	// per lock server is O(1) in cluster size.
	now := c.w.Clock.Now()
	majority := len(c.servers)/2 + 1
	var stale []string
	freshCnt := 0
	for _, s := range c.servers {
		if sim.Duration(now-c.acks[s]) < c.cfg.LeaseDuration/3 {
			freshCnt++
			c.renewElidC.Inc()
			continue
		}
		stale = append(stale, s)
	}
	// A stale minority does not make renewal urgent: expiry is the
	// majority-rank ack, so while a majority is piggyback-fresh and
	// more than half the lease window remains, the stragglers can
	// wait for batch traffic to reach them — or for the majority
	// itself to sag, which fans out on a later tick with two full
	// ticks of headroom. Without this, one quiet machine-to-server
	// pairing (a clerk that happens to send no batch to one server
	// for a few seconds) costs a standalone RPC per tick, adding back
	// a slice of the O(N) renewal fan-out piggybacking removes.
	if len(stale) > 0 && freshCnt >= majority &&
		c.expiresAtLocked() > int64(now)+int64(c.cfg.LeaseDuration/2) {
		for range stale {
			c.renewElidC.Inc()
		}
		stale = nil
	}
	for _, s := range stale {
		c.noteRenewSentLocked(s, now, false)
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.renewing = false
		c.mu.Unlock()
	}()

	// Fan out to every server concurrently and settle as soon as the
	// outcome is decided at majority rank: ExpiresAt is fixed once a
	// majority of fresh acks has landed, whatever the stragglers do,
	// so one slow or dead server no longer holds the renewal loop for
	// its full timeout. Stragglers keep running in the background and
	// still record their acks (each goroutine updates c.acks before
	// reporting, so acks counted here are visible to ExpiresAt below).
	type result struct{ acked, invalid bool }
	results := make(chan result, len(stale))
	for _, s := range stale {
		go func(s string) {
			r, err := c.ep.Call(Addr(s), RenewMsg{Clerk: c.machine, LeaseID: lease, MapEpoch: mapEpoch}, c.cfg.LeaseDuration/3)
			if err != nil {
				results <- result{}
				return
			}
			if ack, ok := r.(RenewAck); ok && ack.LeaseID == lease {
				if !ack.Valid {
					results <- result{invalid: true}
					return
				}
				c.mu.Lock()
				c.acks[ack.Server] = c.w.Clock.Now()
				c.noteNewEpochLocked(ack.MapEpoch)
				c.mu.Unlock()
				results <- result{acked: true}
				return
			}
			results <- result{}
		}(s)
	}
	// Fresh (elided) servers count as acked: their renewal evidence
	// is the piggyback ack already recorded in c.acks.
	acked, invalid := freshCnt, 0
	for done := 0; done < len(stale) && acked < majority && invalid < majority; done++ {
		r := <-results
		if r.acked {
			acked++
		}
		if r.invalid {
			invalid++
		}
	}

	// A majority of servers positively disowning the session means it
	// was expired and recovered while we were stalled: the lease is
	// gone, whatever our ack arithmetic says.
	if invalid >= majority {
		c.trace("lease invalidated by majority")
		c.jr.Record("lockservice", "lease", "invalid", 0, int64(invalid), "majority disowned session")
		c.loseLease()
		return
	}
	if c.ExpiresAt() <= int64(c.w.Clock.Now()) {
		c.loseLease()
		return
	}
	c.jr.Record("lockservice", "lease", "renew", 0, int64(acked), "")
}

// ExpiresAt returns the simulated time (ns) at which the lease
// expires: the majority-rank renewal ack plus the lease duration.
func (c *Clerk) ExpiresAt() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expiresAtLocked()
}

func (c *Clerk) expiresAtLocked() int64 {
	n := len(c.servers)
	times := make([]sim.Time, 0, n)
	for _, s := range c.servers {
		times = append(times, c.acks[s])
	}
	// k-th largest with k = majority: the newest time at which a
	// majority had acked.
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if times[j] > times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	k := n/2 + 1
	base := times[k-1]
	return int64(base) + int64(c.cfg.LeaseDuration)
}

// LeaseValid reports whether the lease will still be valid margin
// from now; Frangipani checks this "before attempting any write to
// Petal" (§6).
func (c *Clerk) LeaseValid(margin sim.Duration) bool {
	c.mu.Lock()
	lost := c.leaseLost
	c.mu.Unlock()
	if lost {
		return false
	}
	return c.ExpiresAt() > int64(c.w.Clock.Now())+int64(margin)
}

// loseLease discards all lock and triggers the FS poison callback.
func (c *Clerk) loseLease() {
	c.mu.Lock()
	if c.leaseLost {
		c.mu.Unlock()
		return
	}
	c.leaseLost = true
	held := int64(len(c.locks))
	c.locks = make(map[uint64]*clkLock)
	cb := c.onLeaseLost
	c.mu.Unlock()
	c.jr.Record("lockservice", "lease", "lost", 0, held, "all cached grants discarded")
	c.cond.Broadcast()
	if cb != nil {
		cb()
	}
}

// LeaseLost reports whether the lease has been lost.
func (c *Clerk) LeaseLost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseLost
}

// MemoryBytes reports the paper's clerk-side lock memory model (232
// bytes per cached lock).
func (c *Clerk) MemoryBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.locks)) * ClerkBytesPerLock
}
