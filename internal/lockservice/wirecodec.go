package lockservice

import (
	"encoding/binary"
	"fmt"

	"frangipani/internal/rpc"
)

// Hand-rolled wire framing for the vectored lock messages — the
// high-volume clerk<->server traffic. The type-tag namespace is
// global to the codec; petal owns 1-8, the lock service owns 9-11.
// Everything else in this package (grants, revokes, session control)
// stays on the gob escape hatch: those messages are per-event, not
// per-batch, and their cost is noise.
//
// All three types are header-only (no zero-copy payload sections):
// they carry small fixed-width fields per lock, not bulk data.
const (
	TagAcquireBatch byte = 9
	TagReleaseBatch byte = 10
	TagWrongShard   byte = 11
)

func init() {
	rpc.RegisterWireDecoder(TagAcquireBatch, decodeAcquireBatch)
	rpc.RegisterWireDecoder(TagReleaseBatch, decodeReleaseBatch)
	rpc.RegisterWireDecoder(TagWrongShard, decodeWrongShard)
}

// WireTag implements rpc.WireMessage.
func (m AcquireBatch) WireTag() byte { return TagAcquireBatch }

// AppendWireHeader implements rpc.WireMessage.
func (m AcquireBatch) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, m.Clerk)
	dst = rpc.AppendString(dst, m.Table)
	dst = binary.AppendVarint(dst, m.MapEpoch)
	dst = binary.AppendUvarint(dst, uint64(len(m.Reqs)))
	for _, r := range m.Reqs {
		dst = binary.AppendUvarint(dst, r.Lock)
		dst = append(dst, byte(r.Mode))
		dst = binary.AppendVarint(dst, r.Epoch)
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage (header-only type).
func (m AcquireBatch) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

// uvarintLen returns the encoded length of a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen returns the encoded length of a zigzag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// WireSize reports the encoded size so the simulated network charges
// a batch for its real bytes: vectoring N requests into one message
// costs one base-message overhead, not N.
func (m AcquireBatch) WireSize() int {
	n := 2 + len(m.Clerk) + len(m.Table) + varintLen(m.MapEpoch) + uvarintLen(uint64(len(m.Reqs)))
	for _, r := range m.Reqs {
		n += uvarintLen(r.Lock) + 1 + varintLen(r.Epoch)
	}
	return n
}

func decodeAcquireBatch(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	m := AcquireBatch{
		Clerk:    hc.String(),
		Table:    hc.String(),
		MapEpoch: hc.Varint(),
	}
	n := hc.Count(3) // lock uvarint + mode byte + epoch varint
	if n > 0 {
		m.Reqs = make([]BatchReq, 0, n)
	}
	for i := 0; i < n; i++ {
		m.Reqs = append(m.Reqs, BatchReq{
			Lock:  hc.Uvarint(),
			Mode:  Mode(hc.Byte()),
			Epoch: hc.Varint(),
		})
	}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: acquire batch", rpc.ErrBadMessage)
	}
	return m, false, nil
}

// WireTag implements rpc.WireMessage.
func (m ReleaseBatch) WireTag() byte { return TagReleaseBatch }

// AppendWireHeader implements rpc.WireMessage.
func (m ReleaseBatch) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, m.Clerk)
	dst = rpc.AppendString(dst, m.Table)
	dst = binary.AppendVarint(dst, m.MapEpoch)
	dst = binary.AppendUvarint(dst, uint64(len(m.Rels)))
	for _, r := range m.Rels {
		dst = binary.AppendUvarint(dst, r.Lock)
		dst = append(dst, byte(r.NewMode))
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage (header-only type).
func (m ReleaseBatch) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

// WireSize reports the encoded size (see AcquireBatch).
func (m ReleaseBatch) WireSize() int {
	n := 2 + len(m.Clerk) + len(m.Table) + varintLen(m.MapEpoch) + uvarintLen(uint64(len(m.Rels)))
	for _, r := range m.Rels {
		n += uvarintLen(r.Lock) + 1
	}
	return n
}

func decodeReleaseBatch(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	m := ReleaseBatch{
		Clerk:    hc.String(),
		Table:    hc.String(),
		MapEpoch: hc.Varint(),
	}
	n := hc.Count(2) // lock uvarint + mode byte
	if n > 0 {
		m.Rels = make([]BatchRel, 0, n)
	}
	for i := 0; i < n; i++ {
		m.Rels = append(m.Rels, BatchRel{
			Lock:    hc.Uvarint(),
			NewMode: Mode(hc.Byte()),
		})
	}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: release batch", rpc.ErrBadMessage)
	}
	return m, false, nil
}

// WireTag implements rpc.WireMessage.
func (m WrongShard) WireTag() byte { return TagWrongShard }

// AppendWireHeader implements rpc.WireMessage.
func (m WrongShard) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, m.Server)
	dst = rpc.AppendString(dst, m.Table)
	dst = binary.AppendVarint(dst, m.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(m.Locks)))
	for _, lk := range m.Locks {
		dst = binary.AppendUvarint(dst, lk)
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage (header-only type).
func (m WrongShard) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

// WireSize reports the encoded size (see AcquireBatch).
func (m WrongShard) WireSize() int {
	n := 2 + len(m.Server) + len(m.Table) + varintLen(m.Epoch) + uvarintLen(uint64(len(m.Locks)))
	for _, lk := range m.Locks {
		n += uvarintLen(lk)
	}
	return n
}

func decodeWrongShard(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	m := WrongShard{
		Server: hc.String(),
		Table:  hc.String(),
		Epoch:  hc.Varint(),
	}
	n := hc.Count(1)
	if n > 0 {
		m.Locks = make([]uint64, 0, n)
	}
	for i := 0; i < n; i++ {
		m.Locks = append(m.Locks, hc.Uvarint())
	}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: wrong-shard nack", rpc.ErrBadMessage)
	}
	return m, false, nil
}
