package lockservice

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frangipani/internal/sim"
)

type testLS struct {
	w       *sim.World
	servers []*Server
	names   []string
	cfg     Config
}

func newTestLS(t *testing.T, nServers int) *testLS {
	t.Helper()
	w := sim.NewWorld(300, 17)
	cfg := DefaultConfig()
	ls := &testLS{w: w, cfg: cfg}
	for i := 0; i < nServers; i++ {
		ls.names = append(ls.names, fmt.Sprintf("ls%d", i))
	}
	for _, n := range ls.names {
		ls.servers = append(ls.servers, NewServer(w, n, ls.names, cfg))
	}
	t.Cleanup(func() {
		for _, s := range ls.servers {
			s.Close()
		}
		w.Stop()
	})
	return ls
}

func (ls *testLS) clerk(t *testing.T, machine string) *Clerk {
	t.Helper()
	c := NewClerk(ls.w, machine, "fs", ls.names, ls.cfg)
	c.SetCallbacks(func(lock uint64, to Mode) {}, nil, nil)
	if err := c.Open(); err != nil {
		t.Fatalf("open clerk %s: %v", machine, err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitUntil(t *testing.T, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestLockAcquireRelease(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "ws0")
	if err := c.Lock(7, Exclusive); err != nil {
		t.Fatal(err)
	}
	if got := c.Held(7); got != Exclusive {
		t.Fatalf("held = %v, want exclusive", got)
	}
	c.Unlock(7)
	// Sticky: still held after unlock, and TryLock succeeds locally.
	if got := c.Held(7); got != Exclusive {
		t.Fatalf("after unlock held = %v, want exclusive (sticky)", got)
	}
	if !c.TryLock(7, Exclusive) {
		t.Fatal("TryLock on sticky grant failed")
	}
	c.Unlock(7)
}

func TestExclusiveLockMutualExclusion(t *testing.T) {
	ls := newTestLS(t, 3)
	c1 := ls.clerk(t, "ws1")
	c2 := ls.clerk(t, "ws2")
	var inside int32
	var violations int32
	var wg sync.WaitGroup
	for _, c := range []*Clerk{c1, c2} {
		wg.Add(1)
		go func(c *Clerk) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := c.Lock(42, Exclusive); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if atomic.AddInt32(&inside, 1) != 1 {
					atomic.AddInt32(&violations, 1)
				}
				ls.w.Clock.Sleep(50 * time.Millisecond)
				atomic.AddInt32(&inside, -1)
				c.Unlock(42)
			}
		}(c)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	ls := newTestLS(t, 3)
	c1 := ls.clerk(t, "ws1")
	c2 := ls.clerk(t, "ws2")
	if err := c1.Lock(9, Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c2.Lock(9, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second shared lock blocked")
	}
	c1.Unlock(9)
	c2.Unlock(9)
}

func TestRevokeDowngradesWriter(t *testing.T) {
	ls := newTestLS(t, 3)
	var mu sync.Mutex
	var revoked []Mode
	c1 := NewClerk(ls.w, "ws1", "fs", ls.names, ls.cfg)
	c1.SetCallbacks(func(lock uint64, to Mode) {
		mu.Lock()
		revoked = append(revoked, to)
		mu.Unlock()
	}, nil, nil)
	if err := c1.Open(); err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2 := ls.clerk(t, "ws2")

	// Writer holds exclusive (sticky after unlock).
	if err := c1.Lock(5, Exclusive); err != nil {
		t.Fatal(err)
	}
	c1.Unlock(5)

	// A reader request must downgrade the writer to shared, not
	// release it entirely.
	if err := c2.Lock(5, Shared); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]Mode(nil), revoked...)
	mu.Unlock()
	if len(got) != 1 || got[0] != Shared {
		t.Fatalf("revoke callbacks = %v, want [shared]", got)
	}
	if c1.Held(5) != Shared {
		t.Fatalf("writer holds %v after downgrade, want shared", c1.Held(5))
	}

	// Now the reader wants exclusive: both sharers conflict; writer
	// must be fully released.
	c2.Unlock(5)
	if err := c2.Lock(5, Exclusive); err != nil {
		t.Fatal(err)
	}
	if c1.Held(5) != None {
		t.Fatalf("writer holds %v after exclusive grant elsewhere", c1.Held(5))
	}
	c2.Unlock(5)
}

func TestRevokeWaitsForActiveUser(t *testing.T) {
	ls := newTestLS(t, 3)
	c1 := ls.clerk(t, "ws1")
	c2 := ls.clerk(t, "ws2")
	if err := c1.Lock(3, Exclusive); err != nil {
		t.Fatal(err)
	}
	// c1 is inside the critical section; c2's acquire must not
	// complete until c1 unlocks.
	acquired := make(chan struct{})
	go func() {
		if err := c2.Lock(3, Exclusive); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("lock granted while another clerk was inside")
	case <-time.After(300 * time.Millisecond):
	}
	c1.Unlock(3)
	select {
	case <-acquired:
	case <-time.After(20 * time.Second):
		t.Fatal("lock never granted after release")
	}
	c2.Unlock(3)
}

func TestManyClerksCounter(t *testing.T) {
	ls := newTestLS(t, 3)
	const clerks, iters = 4, 6
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < clerks; i++ {
		c := ls.clerk(t, fmt.Sprintf("ws%d", i))
		wg.Add(1)
		go func(c *Clerk) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := c.Lock(77, Exclusive); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				counter++ // protected by lock 77
				c.Unlock(77)
			}
		}(c)
	}
	wg.Wait()
	if counter != clerks*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, clerks*iters)
	}
}

func TestLeaseExpiryTriggersRecovery(t *testing.T) {
	ls := newTestLS(t, 3)

	var deadMu sync.Mutex
	recoveredDead := ""
	recoveredSlot := -1

	c1 := NewClerk(ls.w, "ws1", "fs", ls.names, ls.cfg)
	lost := make(chan struct{})
	c1.SetCallbacks(func(lock uint64, to Mode) {}, nil, func() { close(lost) })
	if err := c1.Open(); err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	c2 := NewClerk(ls.w, "ws2", "fs", ls.names, ls.cfg)
	c2.SetCallbacks(func(lock uint64, to Mode) {}, func(dead string, slot int) error {
		deadMu.Lock()
		recoveredDead, recoveredSlot = dead, slot
		deadMu.Unlock()
		return nil
	}, nil)
	if err := c2.Open(); err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	slot1 := c1.LogSlot()
	if slot1 == c2.LogSlot() {
		t.Fatal("two sessions share a log slot")
	}

	// c1 takes an exclusive lock, then is partitioned away.
	if err := c1.Lock(11, Exclusive); err != nil {
		t.Fatal(err)
	}
	c1.Unlock(11)
	ls.w.Net.Isolate(ClerkAddr("ws1"))

	// c1 must eventually observe its own lease loss...
	select {
	case <-lost:
	case <-time.After(30 * time.Second):
		t.Fatal("partitioned clerk never lost its lease")
	}
	if c1.LeaseValid(0) {
		t.Fatal("lease still reported valid after loss")
	}
	// ...and the service must run recovery on another machine, then
	// release the dead clerk's locks so c2 can take them.
	if err := c2.Lock(11, Exclusive); err != nil {
		t.Fatal(err)
	}
	c2.Unlock(11)
	deadMu.Lock()
	defer deadMu.Unlock()
	if recoveredDead != "ws1" || recoveredSlot != slot1 {
		t.Fatalf("recovery ran for %q slot %d, want ws1 slot %d", recoveredDead, recoveredSlot, slot1)
	}
}

func TestLockServerCrashReassignsAndRecovers(t *testing.T) {
	ls := newTestLS(t, 3)
	c1 := ls.clerk(t, "ws1")
	c2 := ls.clerk(t, "ws2")

	// Take a bunch of locks spanning many groups.
	for id := uint64(0); id < 50; id++ {
		if err := c1.Lock(id, Exclusive); err != nil {
			t.Fatal(err)
		}
		c1.Unlock(id)
	}
	// Crash one lock server; its groups are reassigned and the new
	// servers rebuild state from the clerks.
	ls.servers[1].Crash()
	waitUntil(t, func() bool {
		st := ls.servers[0].State()
		if st.Alive["ls1"] {
			return false
		}
		for _, s := range st.Assignment {
			if s == "ls1" {
				return false
			}
		}
		return true
	})

	// c1 must still hold its locks, and conflicts must be detected
	// via the rebuilt state: c2's acquire triggers a revoke of c1.
	for id := uint64(0); id < 50; id += 10 {
		if err := c2.Lock(id, Exclusive); err != nil {
			t.Fatalf("lock %d after reassignment: %v", id, err)
		}
		c2.Unlock(id)
		if c1.Held(id) != None {
			t.Fatalf("lock %d still held by c1 after c2 exclusive", id)
		}
	}

	// Restart: groups flow back and service keeps working.
	ls.servers[1].Restart()
	waitUntil(t, func() bool {
		st := ls.servers[0].State()
		return st.Alive["ls1"]
	})
	if err := c1.Lock(999, Exclusive); err != nil {
		t.Fatal(err)
	}
	c1.Unlock(999)
}

func TestGStateReassignBalancedMinimalMovement(t *testing.T) {
	g := NewGState([]string{"a", "b", "c", "d"}, 0)
	count := func() map[string]int {
		m := make(map[string]int)
		for _, s := range g.Assignment {
			m[s]++
		}
		return m
	}
	for s, n := range count() {
		if n != DefaultShards/4 {
			t.Fatalf("initial balance: %s has %d shards", s, n)
		}
	}
	before := append([]string(nil), g.Assignment...)
	epochBefore := g.Epoch
	g.Apply(CmdSetAlive{Server: "d", Alive: false})
	if g.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance on reassignment: %d -> %d", epochBefore, g.Epoch)
	}
	moved := 0
	for i := range before {
		if before[i] != g.Assignment[i] {
			moved++
			if before[i] != "d" {
				t.Fatalf("shard %d moved from live server %s", i, before[i])
			}
		}
		if g.Assignment[i] == "d" {
			t.Fatalf("shard %d still on dead server", i)
		}
	}
	if moved != DefaultShards/4 {
		t.Fatalf("moved %d shards, want exactly the dead server's %d", moved, DefaultShards/4)
	}
	for s, n := range count() {
		if n < DefaultShards/3-1 || n > DefaultShards/3+2 {
			t.Fatalf("post-crash balance: %s has %d shards", s, n)
		}
	}
	// A command that does not change the assignment must not bump the
	// epoch: clerks refetch on every epoch change, so spurious bumps
	// are pure churn.
	epochBefore = g.Epoch
	g.Apply(CmdSetAlive{Server: "d", Alive: false}) // already dead
	g.Apply(CmdOpenSession{Clerk: "ws1", Table: "fs"})
	if g.Epoch != epochBefore {
		t.Fatalf("epoch bumped without assignment change: %d -> %d", epochBefore, g.Epoch)
	}
}

func TestGStateSessions(t *testing.T) {
	g := NewGState([]string{"a"}, 0)
	g.Apply(CmdOpenSession{Clerk: "ws1", Table: "fs"})
	g.Apply(CmdOpenSession{Clerk: "ws2", Table: "fs"})
	s1 := g.Sessions["ws1/fs"]
	s2 := g.Sessions["ws2/fs"]
	if s1.LeaseID == s2.LeaseID {
		t.Fatal("lease ids not unique")
	}
	if s1.LogSlot == s2.LogSlot {
		t.Fatal("log slots not unique per table")
	}
	// Idempotent re-open keeps lease.
	g.Apply(CmdOpenSession{Clerk: "ws1", Table: "fs"})
	if g.Sessions["ws1/fs"].LeaseID != s1.LeaseID {
		t.Fatal("re-open changed lease")
	}
	// Close frees the slot for reuse.
	g.Apply(CmdCloseSession{Clerk: "ws1", Table: "fs"})
	g.Apply(CmdOpenSession{Clerk: "ws3", Table: "fs"})
	if g.Sessions["ws3/fs"].LogSlot != s1.LogSlot {
		t.Fatalf("slot %d not reused, got %d", s1.LogSlot, g.Sessions["ws3/fs"].LogSlot)
	}
	// MarkDead flags without removing.
	g.Apply(CmdMarkDead{Clerk: "ws2", Table: "fs"})
	if !g.Sessions["ws2/fs"].Dead {
		t.Fatal("MarkDead did not flag session")
	}
}

func TestShardMapping(t *testing.T) {
	seen := make(map[int]bool)
	for id := uint64(0); id < 1000; id++ {
		sh := ShardOf(id, DefaultShards)
		if sh < 0 || sh >= DefaultShards {
			t.Fatalf("shard %d out of range", sh)
		}
		if sh != ShardOf(id, DefaultShards) {
			t.Fatalf("ShardOf not deterministic for id %d", id)
		}
		seen[sh] = true
	}
	// The hash must spread structured ids (dense low integers, like
	// inode numbers) across essentially all shards; a modulus would
	// trivially pass this too, but the hash must not regress it.
	if len(seen) < DefaultShards*9/10 {
		t.Fatalf("only %d/%d shards used by first 1000 ids", len(seen), DefaultShards)
	}
	// Degenerate shard counts stay in range.
	if ShardOf(12345, 1) != 0 || ShardOf(12345, 0) != 0 {
		t.Fatal("ShardOf with <=1 shards must return 0")
	}
}

func TestClerkMemoryAccounting(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "ws1")
	if err := c.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	c.Unlock(1)
	if got := c.MemoryBytes(); got != ClerkBytesPerLock {
		t.Fatalf("clerk memory = %d, want %d", got, ClerkBytesPerLock)
	}
	waitUntil(t, func() bool {
		for _, s := range ls.servers {
			if n, b := s.Stats(); n > 0 && b > 0 {
				return true
			}
		}
		return false
	})
}

func TestGStateReassignProperty(t *testing.T) {
	// Property: after any sequence of liveness flips, every group is
	// served by exactly one server; if any server is alive, every
	// group is on an alive server and load is balanced within 2.
	servers := []string{"a", "b", "c", "d", "e"}
	g := NewGState(servers, 0)
	rng := []int{3, 1, 4, 1, 0, 2, 2, 4, 0, 3, 1, 2}
	alive := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true}
	for step, pick := range rng {
		s := servers[pick]
		alive[s] = !alive[s]
		g.Apply(CmdSetAlive{Server: s, Alive: alive[s]})
		nAlive := 0
		for _, v := range alive {
			if v {
				nAlive++
			}
		}
		if nAlive == 0 {
			continue
		}
		load := map[string]int{}
		for grp, srv := range g.Assignment {
			if !alive[srv] {
				t.Fatalf("step %d: group %d on dead server %s", step, grp, srv)
			}
			load[srv]++
		}
		min, max := DefaultShards, 0
		for _, s := range servers {
			if !alive[s] {
				continue
			}
			if load[s] < min {
				min = load[s]
			}
			if load[s] > max {
				max = load[s]
			}
		}
		if max-min > 2 {
			t.Fatalf("step %d: unbalanced load %v", step, load)
		}
	}
}

func TestClerkEpochFencing(t *testing.T) {
	// A grant echoing a stale epoch must be ignored by the clerk.
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsE")
	if err := c.Lock(5, Exclusive); err != nil {
		t.Fatal(err)
	}
	c.Unlock(5)
	// Simulate a stale re-grant from a confused server: epoch far in
	// the past.
	c.handle("ls0", GrantMsg{Table: "fs", Lock: 123, Mode: Exclusive, Ver: 1, Epoch: -99})
	if got := c.Held(123); got != None {
		t.Fatalf("stale-epoch grant accepted: held=%v", got)
	}
}

func TestIdleLocksDiscarded(t *testing.T) {
	ls := newTestLS(t, 3)
	cfg := ls.cfg
	cfg.IdleDiscard = 20 * time.Second // short for the test
	c := NewClerk(ls.w, "wsIdle", "fs", ls.names, cfg)
	c.Trace = func(format string, args ...any) {
		t.Logf("[t=%ds] "+format, append([]any{int(ls.w.Clock.Now() / 1e9)}, args...)...)
	}
	flushed := make(chan uint64, 16)
	lost := false
	c.SetCallbacks(func(lock uint64, to Mode) { flushed <- lock }, nil, func() { lost = true; t.Log("LEASE LOST") })
	_ = lost
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for id := uint64(1); id <= 4; id++ {
		if err := c.Lock(id, Exclusive); err != nil {
			t.Fatal(err)
		}
		c.Unlock(id)
	}
	if c.HeldCount() != 4 {
		t.Fatalf("held %d, want 4", c.HeldCount())
	}
	// After the idle window, the sticky grants go away — through the
	// revoke path, so the flush callback runs for each.
	waitUntil(t, func() bool { return c.HeldCount() == 0 })
	if len(flushed) < 4 {
		t.Fatalf("only %d flush callbacks ran", len(flushed))
	}
	// Memory is reclaimed too (entries deleted on a later pass).
	waitUntil(t, func() bool { return c.MemoryBytes() == 0 })
	// Locks still work after discard.
	if err := c.Lock(1, Shared); err != nil {
		t.Fatal(err)
	}
	c.Unlock(1)
}
