package lockservice

import (
	"testing"
	"time"

	"frangipani/internal/sim"
)

// TestBusyClerkRenewsViaPiggyback checks the big-N renewal contract:
// a clerk whose lock batches already reach every server must keep its
// lease alive from the RenewAcks riding on those batches alone, with
// ZERO standalone renew RPCs — the per-clerk renewal fan-out is what
// made lease traffic O(clients x servers) at scale.
func TestBusyClerkRenewsViaPiggyback(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsb")

	std := ls.w.Obs.Counter("lockservice.renew.standalone#wsb")
	pig := ls.w.Obs.Counter("lockservice.renew.piggyback#wsb")
	elid := ls.w.Obs.Counter("lockservice.renew.elided#wsb")

	// Let Open's initial handshake settle before drawing the line.
	ls.w.Clock.Sleep(time.Second)
	std0 := std.Value()

	// Busy clerk: acquire a fresh lock id every 200 ms (simulated)
	// for 2.5 lease durations, so several renewal ticks elapse while
	// batch traffic flows. The odd stride spreads ids across shards
	// so every server sees batches within each ack window.
	end := ls.w.Clock.Now() + sim.Time(5*ls.cfg.LeaseDuration/2)
	id := uint64(1 << 20)
	for ls.w.Clock.Now() < end {
		if err := c.Lock(id, Exclusive); err != nil {
			t.Fatalf("lock %d: %v", id, err)
		}
		c.Unlock(id)
		id += 7919
		ls.w.Clock.Sleep(200 * time.Millisecond)
	}

	if got := std.Value() - std0; got != 0 {
		t.Fatalf("busy clerk sent %d standalone renew RPCs, want 0 (all piggybacked)", got)
	}
	if pig.Value() == 0 {
		t.Fatal("no piggybacked renewals recorded on batch traffic")
	}
	if elid.Value() == 0 {
		t.Fatal("no renewal ticks elided: ticks should find fresh piggyback acks")
	}
	if !c.LeaseValid(0) {
		t.Fatal("lease expired despite continuous piggybacked renewal")
	}
}

// TestIdleClerkStillRenewsStandalone is the piggyback scheme's
// fallback: with no batch traffic carrying acks, the renewal tick
// must keep sending real renew RPCs or the lease dies.
func TestIdleClerkStillRenewsStandalone(t *testing.T) {
	ls := newTestLS(t, 3)
	c := ls.clerk(t, "wsi")

	ls.w.Clock.Sleep(ls.cfg.LeaseDuration + ls.cfg.LeaseDuration/2)

	if got := ls.w.Obs.Counter("lockservice.renew.standalone#wsi").Value(); got == 0 {
		t.Fatal("idle clerk never sent a standalone renewal")
	}
	if !c.LeaseValid(0) {
		t.Fatal("idle clerk's lease expired")
	}
	if c.LeaseLost() {
		t.Fatal("idle clerk lost its lease")
	}
}
