package workload

import (
	"fmt"
	"io"
	"sync"

	"frangipani/internal/sim"
)

// Connectathon is a Connectathon-style operation suite: nine tests
// each hammering one class of file system operation, as used for the
// paper's Table 2.
type Connectathon struct {
	Files int // objects per test
}

// DefaultConnectathon mirrors the classic basic-ops counts.
func DefaultConnectathon() Connectathon { return Connectathon{Files: 60} }

// ConnectathonTests names the phases.
var ConnectathonTests = []string{
	"create/remove files", "mkdir/rmdir tree", "lookup across dirs",
	"getattr repeated", "setattr (truncate)", "write small files",
	"read small files", "readdir", "rename+symlink",
}

// Run executes the suite under root and returns per-test durations.
func (c Connectathon) Run(f FS, clock *sim.Clock, root string) ([9]sim.Duration, error) {
	var out [9]sim.Duration
	if err := f.Mkdir(root); err != nil {
		return out, err
	}
	timeIt := func(i int, fn func() error) error {
		start := clock.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", ConnectathonTests[i], err)
		}
		out[i] = sim.Duration(clock.Now() - start)
		return nil
	}

	// 1: create/remove.
	if err := timeIt(0, func() error {
		for i := 0; i < c.Files; i++ {
			if err := f.Create(fmt.Sprintf("%s/t1-%d", root, i)); err != nil {
				return err
			}
		}
		for i := 0; i < c.Files; i++ {
			if err := f.Remove(fmt.Sprintf("%s/t1-%d", root, i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 2: mkdir/rmdir a small tree.
	if err := timeIt(1, func() error {
		for i := 0; i < c.Files/4; i++ {
			d := fmt.Sprintf("%s/d%d", root, i)
			if err := f.Mkdir(d); err != nil {
				return err
			}
			if err := f.Mkdir(d + "/sub"); err != nil {
				return err
			}
		}
		for i := 0; i < c.Files/4; i++ {
			d := fmt.Sprintf("%s/d%d", root, i)
			if err := f.Rmdir(d + "/sub"); err != nil {
				return err
			}
			if err := f.Rmdir(d); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// Setup a tree for lookups.
	for i := 0; i < 4; i++ {
		if err := f.Mkdir(fmt.Sprintf("%s/lk%d", root, i)); err != nil {
			return out, err
		}
		for j := 0; j < c.Files/4; j++ {
			if err := f.Create(fmt.Sprintf("%s/lk%d/f%d", root, i, j)); err != nil {
				return out, err
			}
		}
	}

	// 3: lookups across directories.
	if err := timeIt(2, func() error {
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 4; i++ {
				for j := 0; j < c.Files/4; j++ {
					if _, _, err := f.Stat(fmt.Sprintf("%s/lk%d/f%d", root, i, j)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 4: getattr repeated on one file (hot attribute cache).
	if err := timeIt(3, func() error {
		for i := 0; i < c.Files*5; i++ {
			if _, _, err := f.Stat(root + "/lk0/f0"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 5: setattr via truncate.
	if err := timeIt(4, func() error {
		h, err := f.Open(root+"/lk0/f0", false)
		if err != nil {
			return err
		}
		for i := 0; i < c.Files; i++ {
			if err := h.Truncate(int64(i % 7 * 512)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 6: write small files.
	if err := timeIt(5, func() error {
		for i := 0; i < c.Files; i++ {
			if err := writeAll(f, fmt.Sprintf("%s/w%d", root, i), content(4096, i)); err != nil {
				return err
			}
		}
		return f.Sync()
	}); err != nil {
		return out, err
	}

	// 7: read them back.
	if err := timeIt(6, func() error {
		for i := 0; i < c.Files; i++ {
			if _, err := readAll(f, fmt.Sprintf("%s/w%d", root, i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 8: readdir.
	if err := timeIt(7, func() error {
		for i := 0; i < 20; i++ {
			if _, err := f.ReadDirNames(root); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}

	// 9: rename + symlink + readlink.
	if err := timeIt(8, func() error {
		for i := 0; i < c.Files/2; i++ {
			src := fmt.Sprintf("%s/w%d", root, i)
			dst := fmt.Sprintf("%s/r%d", root, i)
			if err := f.Rename(src, dst); err != nil {
				return err
			}
			ln := fmt.Sprintf("%s/ln%d", root, i)
			if err := f.Symlink(dst, ln); err != nil {
				return err
			}
			if _, err := f.Readlink(ln); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return out, err
	}
	return out, nil
}

// SeqWrite writes a file of total bytes in recSize records and
// returns the simulated duration (fsync'd at the end so the bytes
// actually move).
func SeqWrite(f FS, clock *sim.Clock, path string, total int64, recSize int) (sim.Duration, error) {
	h, err := f.Open(path, true)
	if err != nil {
		return 0, err
	}
	buf := content(recSize, 42)
	start := clock.Now()
	for off := int64(0); off < total; off += int64(recSize) {
		n := int64(recSize)
		if off+n > total {
			n = total - off
		}
		if _, err := h.WriteAt(buf[:n], off); err != nil {
			return 0, err
		}
	}
	if err := h.Sync(); err != nil {
		return 0, err
	}
	return sim.Duration(clock.Now() - start), nil
}

// SeqRead reads the file sequentially in recSize records.
func SeqRead(f FS, clock *sim.Clock, path string, recSize int) (int64, sim.Duration, error) {
	h, err := f.Open(path, false)
	if err != nil {
		return 0, 0, err
	}
	buf := make([]byte, recSize)
	start := clock.Now()
	var total int64
	for off := int64(0); ; {
		n, err := h.ReadAt(buf, off)
		total += int64(n)
		off += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, 0, err
		}
		if n == 0 {
			break
		}
	}
	return total, sim.Duration(clock.Now() - start), nil
}

// SmallReadSwarm runs `readers` concurrent goroutines each reading
// its own small file once with a cold cache: the files are written
// through prep (typically a different machine, so the reading
// server's cache starts empty). This is §9.2's "30 processes on a
// single Frangipani machine tried to read separate 8 KB files after
// invalidating the buffer cache" experiment.
func SmallReadSwarm(prep, f FS, clock *sim.Clock, dir string, readers, fileSize int) (int64, sim.Duration, error) {
	if err := prep.Mkdir(dir); err != nil {
		return 0, 0, err
	}
	for i := 0; i < readers; i++ {
		if err := writeAll(prep, fmt.Sprintf("%s/s%d", dir, i), content(fileSize, i)); err != nil {
			return 0, 0, err
		}
	}
	if err := prep.Sync(); err != nil {
		return 0, 0, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	start := clock.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := readAll(f, fmt.Sprintf("%s/s%d", dir, i))
			errs <- err
		}(i)
	}
	wg.Wait()
	elapsed := sim.Duration(clock.Now() - start)
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return int64(readers) * int64(fileSize), elapsed, nil
}
