// Package workload implements the benchmark workloads of the paper's
// evaluation (§9) against a common file system interface, so the same
// driver runs over Frangipani and over the AdvFS-like baseline:
//
//   - the Modified Andrew Benchmark (Table 1, Figure 5),
//   - a Connectathon-style operation suite (Table 2),
//   - large-file sequential read/write (Table 3, Figures 6 and 7),
//   - a small-file read swarm (§9.2's 30-process 8 KB experiment),
//   - reader/writer and writer/writer contention rigs (Figures 8, 9
//     and the third lock-contention experiment).
package workload

import (
	"fmt"
	"io"

	"frangipani/internal/fs"
	"frangipani/internal/localfs"
)

// File is an open file handle.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
}

// FS is the surface the workloads need; both file systems provide it
// through thin adapters.
type FS interface {
	Create(path string) error
	Mkdir(path string) error
	Remove(path string) error
	Rmdir(path string) error
	Rename(src, dst string) error
	Symlink(target, path string) error
	Readlink(path string) (string, error)
	Stat(path string) (size int64, isDir bool, err error)
	ReadDirNames(path string) ([]string, error)
	Open(path string, create bool) (File, error)
	Sync() error
}

// Frangipani adapts *fs.FS to the workload interface.
type Frangipani struct{ FS *fs.FS }

// Create implements FS.
func (a Frangipani) Create(path string) error { return a.FS.Create(path) }

// Mkdir implements FS.
func (a Frangipani) Mkdir(path string) error { return a.FS.Mkdir(path) }

// Remove implements FS.
func (a Frangipani) Remove(path string) error { return a.FS.Remove(path) }

// Rmdir implements FS.
func (a Frangipani) Rmdir(path string) error { return a.FS.Rmdir(path) }

// Rename implements FS.
func (a Frangipani) Rename(src, dst string) error { return a.FS.Rename(src, dst) }

// Symlink implements FS.
func (a Frangipani) Symlink(target, path string) error { return a.FS.Symlink(target, path) }

// Readlink implements FS.
func (a Frangipani) Readlink(path string) (string, error) { return a.FS.Readlink(path) }

// Stat implements FS.
func (a Frangipani) Stat(path string) (int64, bool, error) {
	info, err := a.FS.Stat(path)
	if err != nil {
		return 0, false, err
	}
	return info.Size, info.Type == fs.TypeDir, nil
}

// ReadDirNames implements FS.
func (a Frangipani) ReadDirNames(path string) ([]string, error) {
	ents, err := a.FS.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// Open implements FS.
func (a Frangipani) Open(path string, create bool) (File, error) {
	return a.FS.OpenFile(path, create)
}

// Sync implements FS.
func (a Frangipani) Sync() error { return a.FS.Sync() }

// Local adapts *localfs.FS to the workload interface.
type Local struct{ FS *localfs.FS }

// Create implements FS.
func (a Local) Create(path string) error { return a.FS.Create(path) }

// Mkdir implements FS.
func (a Local) Mkdir(path string) error { return a.FS.Mkdir(path) }

// Remove implements FS.
func (a Local) Remove(path string) error { return a.FS.Remove(path) }

// Rmdir implements FS.
func (a Local) Rmdir(path string) error { return a.FS.Rmdir(path) }

// Rename implements FS.
func (a Local) Rename(src, dst string) error { return a.FS.Rename(src, dst) }

// Symlink implements FS.
func (a Local) Symlink(target, path string) error { return a.FS.Symlink(target, path) }

// Readlink implements FS.
func (a Local) Readlink(path string) (string, error) { return a.FS.Readlink(path) }

// Stat implements FS.
func (a Local) Stat(path string) (int64, bool, error) {
	info, err := a.FS.Stat(path)
	if err != nil {
		return 0, false, err
	}
	return info.Size, info.IsDir, nil
}

// ReadDirNames implements FS.
func (a Local) ReadDirNames(path string) ([]string, error) {
	ents, err := a.FS.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// Open implements FS.
func (a Local) Open(path string, create bool) (File, error) {
	return a.FS.OpenFile(path, create)
}

// Sync implements FS.
func (a Local) Sync() error { return a.FS.Sync() }

// content fills a deterministic pseudo-random buffer.
func content(n int, seed int) []byte {
	b := make([]byte, n)
	x := uint32(seed)*2654435761 + 1
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

// writeAll writes data to a (new) file.
func writeAll(f FS, path string, data []byte) error {
	h, err := f.Open(path, true)
	if err != nil {
		return err
	}
	_, err = h.WriteAt(data, 0)
	return err
}

// readAll reads a whole file.
func readAll(f FS, path string) ([]byte, error) {
	h, err := f.Open(path, false)
	if err != nil {
		return nil, err
	}
	size, err := h.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := h.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// walk visits every path under root, calling fn with (path, isDir).
func walk(f FS, root string, fn func(path string, isDir bool) error) error {
	names, err := f.ReadDirNames(root)
	if err != nil {
		return err
	}
	for _, name := range names {
		p := root + "/" + name
		if root == "/" {
			p = "/" + name
		}
		_, isDir, err := f.Stat(p)
		if err != nil {
			return err
		}
		if err := fn(p, isDir); err != nil {
			return err
		}
		if isDir {
			if err := walk(f, p, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// mustNoErr panics on error; workload phases treat any FS error as a
// harness bug.
func mustNoErr(err error, op string) {
	if err != nil {
		panic(fmt.Sprintf("workload: %s: %v", op, err))
	}
}
