package workload

import (
	"io"
	"sync"
	"sync/atomic"

	"frangipani/internal/sim"
)

// ContentionResult reports one run of a lock-contention rig.
type ContentionResult struct {
	ReaderBytes int64        // bytes delivered to the readers
	WriterOps   int64        // writer passes completed
	Elapsed     sim.Duration // simulated run time
}

// ReadMBps returns aggregate reader throughput in MB/s of simulated
// time.
func (r ContentionResult) ReadMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ReaderBytes) / (1 << 20) / r.Elapsed.Seconds()
}

// ReaderWriterContention is the Figure 8/9 rig: one writer keeps
// rewriting the first writeBytes of a shared file while each reader
// reads the file sequentially in a loop. "As a result, the writer
// repeatedly acquires the write lock, then gets a callback to
// downgrade it so that the readers can get the read lock" (§9.4).
// The file (of fileSize bytes) must already exist with its contents
// written; duration is the measurement window in simulated time.
func ReaderWriterContention(clock *sim.Clock, writer FS, readers []FS, path string,
	fileSize int64, writeBytes int, duration sim.Duration) (ContentionResult, error) {

	wh, err := writer.Open(path, false)
	if err != nil {
		return ContentionResult{}, err
	}
	var rhs []File
	for _, r := range readers {
		h, err := r.Open(path, false)
		if err != nil {
			return ContentionResult{}, err
		}
		rhs = append(rhs, h)
	}

	var stop atomic.Bool
	var readerBytes, writerOps int64
	var wg sync.WaitGroup
	errCh := make(chan error, len(rhs)+1)

	start := clock.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := content(writeBytes, 1)
		for !stop.Load() {
			if _, err := wh.WriteAt(buf, 0); err != nil {
				errCh <- err
				return
			}
			atomic.AddInt64(&writerOps, 1)
		}
	}()
	for _, h := range rhs {
		wg.Add(1)
		go func(h File) {
			defer wg.Done()
			buf := make([]byte, 64<<10)
			off := int64(0)
			for !stop.Load() {
				n, err := h.ReadAt(buf, off)
				atomic.AddInt64(&readerBytes, int64(n))
				off += int64(n)
				if err == io.EOF || off >= fileSize {
					off = 0
				} else if err != nil {
					errCh <- err
					return
				}
			}
		}(h)
	}
	clock.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := sim.Duration(clock.Now() - start)
	select {
	case err := <-errCh:
		return ContentionResult{}, err
	default:
	}
	return ContentionResult{
		ReaderBytes: atomic.LoadInt64(&readerBytes),
		WriterOps:   atomic.LoadInt64(&writerOps),
		Elapsed:     elapsed,
	}, nil
}

// WriteSharing is the third §9.4 experiment: N writers all rewriting
// the same region of one file. The write lock ping-pongs between the
// servers; each handoff forces a flush. Returns aggregate write
// operations completed.
func WriteSharing(clock *sim.Clock, writers []FS, path string, writeBytes int,
	duration sim.Duration) (ContentionResult, error) {

	var hs []File
	for _, w := range writers {
		h, err := w.Open(path, false)
		if err != nil {
			return ContentionResult{}, err
		}
		hs = append(hs, h)
	}
	var stop atomic.Bool
	var ops int64
	var wg sync.WaitGroup
	errCh := make(chan error, len(hs))
	start := clock.Now()
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h File) {
			defer wg.Done()
			buf := content(writeBytes, i)
			for !stop.Load() {
				if _, err := h.WriteAt(buf, 0); err != nil {
					errCh <- err
					return
				}
				atomic.AddInt64(&ops, 1)
			}
		}(i, h)
	}
	clock.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := sim.Duration(clock.Now() - start)
	select {
	case err := <-errCh:
		return ContentionResult{}, err
	default:
	}
	return ContentionResult{WriterOps: atomic.LoadInt64(&ops), Elapsed: elapsed}, nil
}
