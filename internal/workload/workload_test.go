package workload

import (
	"bytes"
	"testing"
	"time"

	"frangipani/internal/localfs"
	"frangipani/internal/sim"
)

// The workload drivers are exercised end-to-end over Frangipani by
// the bench suite; these tests validate them cheaply over the local
// baseline, plus the pure helpers.

func newLocal(t *testing.T) (*sim.World, FS) {
	t.Helper()
	w := sim.NewWorld(1000, 9)
	cfg := localfs.DefaultConfig()
	cfg.DiskParams = sim.DefaultDiskParams(128 << 20)
	lf := localfs.New(w, "adv", cfg)
	t.Cleanup(func() {
		lf.Close()
		w.Stop()
	})
	return w, Local{FS: lf}
}

func TestMABRunsCleanly(t *testing.T) {
	w, f := newLocal(t)
	m := MAB{Dirs: 3, FilesPerDir: 2, FileSize: 2048}
	phases, err := m.Run(f, w.Clock, "/mab")
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range phases {
		if d <= 0 {
			t.Fatalf("phase %d (%s) has non-positive duration %v", i, MABPhases[i], d)
		}
	}
	// The tree must actually exist: dirs, sources, objects, binary.
	names, err := f.ReadDirNames("/mab")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != m.Dirs+1 { // dirs + a.out
		t.Fatalf("mab tree has %d entries, want %d", len(names), m.Dirs+1)
	}
	if err := m.Cleanup(f, "/mab"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Stat("/mab"); err == nil {
		t.Fatal("cleanup left the tree")
	}
}

func TestConnectathonRunsCleanly(t *testing.T) {
	w, f := newLocal(t)
	c := Connectathon{Files: 12}
	times, err := c.Run(f, w.Clock, "/cthon")
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range times {
		if d <= 0 {
			t.Fatalf("test %d (%s) has non-positive duration %v", i, ConnectathonTests[i], d)
		}
	}
}

func TestSeqWriteReadRoundTrip(t *testing.T) {
	w, f := newLocal(t)
	const total = 1 << 20
	if _, err := SeqWrite(f, w.Clock, "/seq", total, 64<<10); err != nil {
		t.Fatal(err)
	}
	n, dur, err := SeqRead(f, w.Clock, "/seq", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("read %d bytes, want %d", n, total)
	}
	if dur <= 0 {
		t.Fatal("non-positive read duration")
	}
}

func TestSmallReadSwarm(t *testing.T) {
	w, f := newLocal(t)
	bytes_, dur, err := SmallReadSwarm(f, f, w.Clock, "/swarm", 8, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if bytes_ != 8*8<<10 || dur <= 0 {
		t.Fatalf("swarm: bytes=%d dur=%v", bytes_, dur)
	}
}

func TestContentionRigsOnBaseline(t *testing.T) {
	w, f := newLocal(t)
	if err := writeAll(f, "/hot", content(256<<10, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := ReaderWriterContention(w.Clock, f, []FS{f, f}, "/hot",
		256<<10, 16<<10, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReaderBytes == 0 || res.WriterOps == 0 {
		t.Fatalf("rig idle: %+v", res)
	}
	ws, err := WriteSharing(w.Clock, []FS{f, f}, "/hot", 8<<10, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ws.WriterOps == 0 {
		t.Fatal("write-sharing rig idle")
	}
}

func TestContentDeterministic(t *testing.T) {
	a := content(1024, 7)
	b := content(1024, 7)
	c := content(1024, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, different content")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds, same content")
	}
}
