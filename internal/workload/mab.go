package workload

import (
	"fmt"

	"frangipani/internal/sim"
)

// MAB is the Modified Andrew Benchmark: five phases over a small
// source tree — create the directory hierarchy, copy the source
// files in, stat every file (directory status), read every file
// (scan), and "compile" (read sources, write outputs). The paper
// uses it for Table 1 and Figure 5.
type MAB struct {
	// Dirs is the number of directories in the tree.
	Dirs int
	// FilesPerDir is the number of source files per directory.
	FilesPerDir int
	// FileSize is the size of each source file.
	FileSize int
}

// DefaultMAB sizes the benchmark like the original: ~70 files of a
// few KB across a handful of directories.
func DefaultMAB() MAB {
	return MAB{Dirs: 10, FilesPerDir: 7, FileSize: 4 << 10}
}

// MABPhases names the five phases.
var MABPhases = []string{"Create Directories", "Copy Files", "Directory Status", "Scan Files", "Compile"}

// Run executes the benchmark under root (which must not exist yet)
// and returns the five phase durations in simulated time.
func (m MAB) Run(f FS, clock *sim.Clock, root string) ([5]sim.Duration, error) {
	var phases [5]sim.Duration
	dir := func(i int) string { return fmt.Sprintf("%s/dir%02d", root, i) }
	file := func(i, j int) string { return fmt.Sprintf("%s/src%02d.c", dir(i), j) }

	if err := f.Mkdir(root); err != nil {
		return phases, err
	}

	// Phase 1: create directories.
	start := clock.Now()
	for i := 0; i < m.Dirs; i++ {
		if err := f.Mkdir(dir(i)); err != nil {
			return phases, err
		}
	}
	phases[0] = sim.Duration(clock.Now() - start)

	// Phase 2: copy files (write the source tree).
	start = clock.Now()
	for i := 0; i < m.Dirs; i++ {
		for j := 0; j < m.FilesPerDir; j++ {
			if err := writeAll(f, file(i, j), content(m.FileSize, i*100+j)); err != nil {
				return phases, err
			}
		}
	}
	phases[1] = sim.Duration(clock.Now() - start)

	// Phase 3: directory status (recursive stat).
	start = clock.Now()
	if err := walk(f, root, func(path string, isDir bool) error {
		_, _, err := f.Stat(path)
		return err
	}); err != nil {
		return phases, err
	}
	phases[2] = sim.Duration(clock.Now() - start)

	// Phase 4: scan files (read every byte).
	start = clock.Now()
	if err := walk(f, root, func(path string, isDir bool) error {
		if isDir {
			return nil
		}
		_, err := readAll(f, path)
		return err
	}); err != nil {
		return phases, err
	}
	phases[3] = sim.Duration(clock.Now() - start)

	// Phase 5: compile — read every source, emit one object file per
	// directory plus a final "binary".
	start = clock.Now()
	for i := 0; i < m.Dirs; i++ {
		var objSize int
		for j := 0; j < m.FilesPerDir; j++ {
			data, err := readAll(f, file(i, j))
			if err != nil {
				return phases, err
			}
			objSize += len(data) / 2
		}
		if err := writeAll(f, fmt.Sprintf("%s/out%02d.o", dir(i), i), content(objSize, i)); err != nil {
			return phases, err
		}
	}
	if err := writeAll(f, root+"/a.out", content(m.Dirs*m.FileSize, 7)); err != nil {
		return phases, err
	}
	phases[4] = sim.Duration(clock.Now() - start)
	return phases, nil
}

// Cleanup removes the benchmark tree.
func (m MAB) Cleanup(f FS, root string) error {
	return removeTree(f, root)
}

func removeTree(f FS, root string) error {
	names, err := f.ReadDirNames(root)
	if err != nil {
		return err
	}
	for _, name := range names {
		p := root + "/" + name
		_, isDir, err := f.Stat(p)
		if err != nil {
			return err
		}
		if isDir {
			if err := removeTree(f, p); err != nil {
				return err
			}
		} else if err := f.Remove(p); err != nil {
			return err
		}
	}
	return f.Rmdir(root)
}
