package localfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"frangipani/internal/sim"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	w := sim.NewWorld(1000, 3)
	cfg := DefaultConfig()
	cfg.DiskParams = sim.DefaultDiskParams(64 << 20)
	f := New(w, "adv", cfg)
	t.Cleanup(func() {
		f.Close()
		w.Stop()
	})
	return f
}

func TestNamespaceOps(t *testing.T) {
	f := newFS(t)
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Create("/d/x"); !errors.Is(err, ErrExist) {
		t.Fatalf("dup create: %v", err)
	}
	info, err := f.Stat("/d/x")
	if err != nil || info.IsDir {
		t.Fatalf("stat: %+v %v", info, err)
	}
	ents, err := f.ReadDir("/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "x" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := f.Rename("/d/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/d/x"); !errors.Is(err, ErrNotExist) {
		t.Fatal("rename left source")
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("/y"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rmdir missing: %v", err)
	}
}

func TestFileIO(t *testing.T) {
	f := newFS(t)
	h, err := f.OpenFile("/f", true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200<<10) // spans several stripe units
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := h.ReadAt(got, 0); err != nil && err != io.EOF || n != len(data) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Durability through cache eviction: force a sync, drop pages by
	// overfilling, then re-read.
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAt(got[:100], int64(len(data))); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}
}

func TestEvictionWriteback(t *testing.T) {
	w := sim.NewWorld(2000, 3)
	defer w.Stop()
	cfg := DefaultConfig()
	cfg.DiskParams = sim.DefaultDiskParams(64 << 20)
	cfg.CacheCap = 8 // tiny cache forces eviction
	f := New(w, "adv", cfg)
	defer f.Close()
	h, err := f.OpenFile("/f", true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost through eviction")
	}
}

func TestStripingSpreadsDisks(t *testing.T) {
	f := newFS(t)
	h, _ := f.OpenFile("/big", true)
	data := make([]byte, 8*StripeSize)
	if _, err := h.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, d := range f.disks {
		if _, w, _, _ := d.Stats(); w > 0 {
			used++
		}
	}
	if used < 4 {
		t.Fatalf("writes hit only %d disks; striping ineffective", used)
	}
}

func TestManySmallFiles(t *testing.T) {
	f := newFS(t)
	for i := 0; i < 100; i++ {
		path := fmt.Sprintf("/s%d", i)
		h, err := f.OpenFile(path, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt([]byte("tiny"), 0); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := f.ReadDir("/")
	if err != nil || len(ents) != 100 {
		t.Fatalf("readdir: %d err=%v", len(ents), err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
