// Package localfs implements the comparison baseline for the paper's
// evaluation: a single-node, well-tuned local file system standing in
// for DIGITAL's AdvFS. Like AdvFS it journals metadata through a
// write-ahead log (so file creation is fast), stripes file data
// across multiple local disks attached through a fixed number of
// SCSI controller strings, and read-ahead prefetches sequential
// reads. Unlike Frangipani it has no distribution: no Petal, no lock
// service, no coherence machinery.
//
// The performance envelope mirrors the paper's AdvFS testbed: 8 RZ29
// disks on two 10 MB/s fast SCSI strings (~17 MB/s raw), a unified
// buffer cache, and optional PrestoServe NVRAM in front of the
// disks.
package localfs

import (
	"errors"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"frangipani/internal/sim"
	"frangipani/internal/wal"
)

// Errors (mirroring the fs package's).
var (
	ErrNotExist = errors.New("localfs: no such file or directory")
	ErrExist    = errors.New("localfs: file exists")
	ErrNotDir   = errors.New("localfs: not a directory")
	ErrIsDir    = errors.New("localfs: is a directory")
	ErrNotEmpty = errors.New("localfs: directory not empty")
	ErrInval    = errors.New("localfs: invalid argument")
)

// PageSize is the buffer-cache page size.
const PageSize = 4096

// StripeSize is the striping unit across disks (AdvFS-like 64 KB).
const StripeSize = 64 << 10

// Config sizes the baseline to the paper's AdvFS machine.
type Config struct {
	NumDisks       int
	DiskParams     sim.DiskParams
	Controllers    int   // SCSI strings
	ControllerRate int64 // bytes/s per string
	NVRAM          int   // bytes per disk; 0 = none
	CPUPerOp       sim.Duration
	CPUPerKB       sim.Duration
	SyncEvery      sim.Duration
	SyncLog        bool
	ReadAhead      int // pages
	CacheCap       int // pages
	LogSize        int64
}

// DefaultConfig is the paper's AdvFS box: 8 RZ29s on two 10 MB/s
// strings. The CPU costs are calibrated from Table 3 (write 13.3
// MB/s at 80%, read 13.2 MB/s at 50%).
func DefaultConfig() Config {
	return Config{
		NumDisks:       8,
		DiskParams:     sim.DefaultDiskParams(4 << 30),
		Controllers:    2,
		ControllerRate: 10 << 20,
		CPUPerOp:       200 * time.Microsecond,
		CPUPerKB:       55 * time.Microsecond,
		SyncEvery:      30 * time.Second,
		ReadAhead:      16,
		CacheCap:       8192, // 32 MB
		LogSize:        wal.DefaultLogSize,
	}
}

// inode is the in-memory metadata of one object.
type inode struct {
	ino     int64
	isDir   bool
	symlink string
	size    int64
	nlink   int
	mtime   int64
	extents []extent // data location, one per stripe unit
}

// extent locates one stripe unit.
type extent struct {
	disk int
	off  int64
}

// page is one cached data page.
type page struct {
	data  []byte
	dirty bool
}

type pageKey struct {
	ino  int64
	page int64
}

// Info mirrors fs.Info for the workload drivers.
type Info struct {
	Size  int64
	IsDir bool
	Nlink int
	Mtime int64
}

// DirEntry is one directory listing element.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FS is the single-node baseline file system.
type FS struct {
	w     *sim.World
	cfg   Config
	cpu   *sim.CPU
	disks []*sim.Disk
	devs  []sim.BlockDev
	ctrl  []*sim.Resource
	log   *wal.Log

	mu       sync.Mutex
	inodes   map[int64]*inode
	dirs     map[int64]map[string]int64
	nextIno  int64
	alloc    []int64 // per-disk bump allocator
	cache    map[pageKey]*page
	lruTick  int64
	lruStamp map[pageKey]int64
	raNext   map[int64]int64
	raOn     bool

	cancel func()
}

// New builds the baseline on the given machine name.
func New(w *sim.World, machine string, cfg Config) *FS {
	f := &FS{
		w:        w,
		cfg:      cfg,
		cpu:      w.CPU(machine),
		inodes:   make(map[int64]*inode),
		dirs:     make(map[int64]map[string]int64),
		nextIno:  2,
		cache:    make(map[pageKey]*page),
		lruStamp: make(map[pageKey]int64),
		raNext:   make(map[int64]int64),
		raOn:     cfg.ReadAhead > 0,
	}
	for i := 0; i < cfg.Controllers; i++ {
		f.ctrl = append(f.ctrl, sim.NewResource(w.Clock, machine+"/scsi"))
	}
	for i := 0; i < cfg.NumDisks; i++ {
		d := sim.NewDisk(w.Clock, machine, cfg.DiskParams)
		f.disks = append(f.disks, d)
		if cfg.NVRAM > 0 {
			f.devs = append(f.devs, sim.NewNVRAM(w.Clock, d, cfg.NVRAM, 50*time.Microsecond))
		} else {
			f.devs = append(f.devs, d)
		}
		f.alloc = append(f.alloc, cfg.LogSize) // reserve the log at the front of disk 0
	}
	f.inodes[1] = &inode{ino: 1, isDir: true, nlink: 2}
	f.dirs[1] = make(map[string]int64)
	f.log = wal.New(&diskRegion{fs: f, disk: 0}, cfg.LogSize)
	f.log.SetReclaim(func(through int64) {
		_ = f.log.Flush()
		f.log.Release(through)
	})
	f.cancel = w.Clock.Tick(cfg.SyncEvery, func() { _ = f.Sync() })
	return f
}

// Close stops the sync demon.
func (f *FS) Close() { f.cancel() }

// diskRegion adapts disk 0 (through its controller) for the WAL.
type diskRegion struct {
	fs   *FS
	disk int
}

func (r *diskRegion) ReadAt(p []byte, off int64) error {
	return r.fs.diskRead(r.disk, p, off)
}

func (r *diskRegion) WriteAt(p []byte, off int64) error {
	return r.fs.diskWrite(r.disk, p, off)
}

// diskRead performs a disk read through the disk's controller string.
func (f *FS) diskRead(disk int, p []byte, off int64) error {
	c := f.ctrl[disk%len(f.ctrl)]
	c.Use(sim.Duration(float64(len(p)) / float64(f.cfg.ControllerRate) * 1e9))
	return f.devs[disk].ReadAt(p, off)
}

func (f *FS) diskWrite(disk int, p []byte, off int64) error {
	c := f.ctrl[disk%len(f.ctrl)]
	c.Use(sim.Duration(float64(len(p)) / float64(f.cfg.ControllerRate) * 1e9))
	return f.devs[disk].WriteAt(p, off)
}

func (f *FS) chargeOp(bytes int) {
	f.cpu.Use(f.cfg.CPUPerOp + sim.Duration(bytes/1024)*f.cfg.CPUPerKB)
}

// logMeta appends a metadata journal record. The record content is a
// compact opaque description — the baseline never replays it (we do
// not crash AdvFS in any experiment), but the I/O cost of journaling
// is modelled faithfully.
func (f *FS) logMeta(desc string) {
	data := []byte(desc)
	if len(data) > 100 {
		data = data[:100]
	}
	if len(data) == 0 {
		data = []byte{0}
	}
	_, _ = f.log.Append([]wal.Update{{Addr: 0, Off: 0, Data: data, Ver: uint64(f.w.Clock.Now())}})
	if f.cfg.SyncLog {
		_ = f.log.Flush()
	}
}

// SetReadAhead toggles prefetching.
func (f *FS) SetReadAhead(pages int) {
	f.mu.Lock()
	f.cfg.ReadAhead = pages
	f.raOn = pages > 0
	f.mu.Unlock()
}

// ---- namespace ----

func splitPath(path string) ([]string, error) {
	if path == "" {
		return nil, ErrInval
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(parts) == 0 {
				return nil, ErrInval
			}
			parts = parts[:len(parts)-1]
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// resolve walks to the inode for path; mu held.
func (f *FS) resolve(path string) (*inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := f.inodes[1]
	for _, name := range parts {
		if !cur.isDir {
			return nil, ErrNotDir
		}
		ino, ok := f.dirs[cur.ino][name]
		if !ok {
			return nil, ErrNotExist
		}
		cur = f.inodes[ino]
	}
	return cur, nil
}

func (f *FS) resolveParent(path string) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrInval
	}
	dir, err := f.resolve("/" + strings.Join(parts[:len(parts)-1], "/"))
	if err != nil {
		return nil, "", err
	}
	if !dir.isDir {
		return nil, "", ErrNotDir
	}
	return dir, parts[len(parts)-1], nil
}

func (f *FS) create(path string, isDir bool, symlink string) error {
	f.chargeOp(0)
	f.mu.Lock()
	dir, name, err := f.resolveParent(path)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if _, ok := f.dirs[dir.ino][name]; ok {
		f.mu.Unlock()
		return ErrExist
	}
	ino := f.nextIno
	f.nextIno++
	in := &inode{ino: ino, isDir: isDir, symlink: symlink, nlink: 1, mtime: int64(f.w.Clock.Now())}
	if isDir {
		in.nlink = 2
		f.dirs[ino] = make(map[string]int64)
		dir.nlink++
	}
	f.inodes[ino] = in
	f.dirs[dir.ino][name] = ino
	f.mu.Unlock()
	f.logMeta("create " + path)
	return nil
}

// Create makes an empty file.
func (f *FS) Create(path string) error { return f.create(path, false, "") }

// Mkdir makes a directory.
func (f *FS) Mkdir(path string) error { return f.create(path, true, "") }

// Symlink records a symbolic link (resolution is intentionally
// minimal in the baseline; workloads only create and stat them).
func (f *FS) Symlink(target, path string) error { return f.create(path, false, target) }

// Readlink returns a symlink's target.
func (f *FS) Readlink(path string) (string, error) {
	f.chargeOp(0)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, err := f.resolve(path)
	if err != nil {
		return "", err
	}
	if in.symlink == "" {
		return "", ErrInval
	}
	return in.symlink, nil
}

// Stat returns metadata.
func (f *FS) Stat(path string) (Info, error) {
	f.chargeOp(0)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, err := f.resolve(path)
	if err != nil {
		return Info{}, err
	}
	return Info{Size: in.size, IsDir: in.isDir, Nlink: in.nlink, Mtime: in.mtime}, nil
}

// ReadDir lists a directory.
func (f *FS) ReadDir(path string) ([]DirEntry, error) {
	f.chargeOp(0)
	f.mu.Lock()
	defer f.mu.Unlock()
	in, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if !in.isDir {
		return nil, ErrNotDir
	}
	var out []DirEntry
	for name, ino := range f.dirs[in.ino] {
		out = append(out, DirEntry{Name: name, IsDir: f.inodes[ino].isDir})
	}
	return out, nil
}

// Remove unlinks a file or symlink.
func (f *FS) Remove(path string) error { return f.remove(path, false) }

// Rmdir removes an empty directory.
func (f *FS) Rmdir(path string) error { return f.remove(path, true) }

func (f *FS) remove(path string, wantDir bool) error {
	f.chargeOp(0)
	f.mu.Lock()
	dir, name, err := f.resolveParent(path)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	ino, ok := f.dirs[dir.ino][name]
	if !ok {
		f.mu.Unlock()
		return ErrNotExist
	}
	in := f.inodes[ino]
	if wantDir {
		if !in.isDir {
			f.mu.Unlock()
			return ErrNotDir
		}
		if len(f.dirs[ino]) > 0 {
			f.mu.Unlock()
			return ErrNotEmpty
		}
		dir.nlink--
		delete(f.dirs, ino)
	} else if in.isDir {
		f.mu.Unlock()
		return ErrIsDir
	}
	delete(f.dirs[dir.ino], name)
	in.nlink--
	if in.nlink <= 0 || (wantDir && in.nlink <= 1) {
		f.dropPagesLocked(ino)
		delete(f.inodes, ino)
	}
	f.mu.Unlock()
	f.logMeta("remove " + path)
	return nil
}

// Rename moves src to dst (replacing files).
func (f *FS) Rename(src, dst string) error {
	f.chargeOp(0)
	f.mu.Lock()
	sdir, sname, err := f.resolveParent(src)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	ino, ok := f.dirs[sdir.ino][sname]
	if !ok {
		f.mu.Unlock()
		return ErrNotExist
	}
	ddir, dname, err := f.resolveParent(dst)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if old, ok := f.dirs[ddir.ino][dname]; ok {
		oin := f.inodes[old]
		if oin.isDir {
			f.mu.Unlock()
			return ErrIsDir
		}
		f.dropPagesLocked(old)
		delete(f.inodes, old)
	}
	delete(f.dirs[sdir.ino], sname)
	f.dirs[ddir.ino][dname] = ino
	if f.inodes[ino].isDir && sdir != ddir {
		sdir.nlink--
		ddir.nlink++
	}
	f.mu.Unlock()
	f.logMeta("rename " + src)
	return nil
}

func (f *FS) dropPagesLocked(ino int64) {
	for k := range f.cache {
		if k.ino == ino {
			delete(f.cache, k)
			delete(f.lruStamp, k)
		}
	}
}

// ---- file I/O ----

// File is an open handle.
type File struct {
	fs  *FS
	ino int64
}

// Open opens an existing file.
func (f *FS) Open(path string) (*File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	in, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if in.isDir {
		return nil, ErrIsDir
	}
	return &File{fs: f, ino: in.ino}, nil
}

// OpenFile opens, optionally creating.
func (f *FS) OpenFile(path string, create bool) (*File, error) {
	h, err := f.Open(path)
	if err == ErrNotExist && create {
		if err := f.Create(path); err != nil && err != ErrExist {
			return nil, err
		}
		return f.Open(path)
	}
	return h, err
}

// Size returns the file size.
func (h *File) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	in, ok := h.fs.inodes[h.ino]
	if !ok {
		return 0, ErrNotExist
	}
	return in.size, nil
}

// ensureExtent allocates the stripe unit containing off, striping
// round-robin across disks (AdvFS "can stripe files across multiple
// disks, thereby achieving nearly double the throughput of UFS").
func (f *FS) ensureExtent(in *inode, off int64) extent {
	idx := off / StripeSize
	for int64(len(in.extents)) <= idx {
		disk := (int(in.ino) + len(in.extents)) % len(f.disks)
		e := extent{disk: disk, off: f.alloc[disk]}
		f.alloc[disk] += StripeSize
		in.extents = append(in.extents, e)
	}
	return in.extents[idx]
}

// pageLocked returns the cached page, loading it from disk when
// load is set.
func (f *FS) pageLocked(in *inode, pg int64, load bool) (*page, error) {
	key := pageKey{in.ino, pg}
	if p, ok := f.cache[key]; ok {
		f.lruTick++
		f.lruStamp[key] = f.lruTick
		return p, nil
	}
	p := &page{data: make([]byte, PageSize)}
	if load && pg*PageSize < in.size {
		e := f.ensureExtent(in, pg*PageSize)
		inExt := pg * PageSize % StripeSize
		f.mu.Unlock()
		err := f.diskRead(e.disk, p.data, e.off+inExt)
		f.mu.Lock()
		if err != nil {
			return nil, err
		}
		// Another operation may have installed the page while the
		// lock was dropped for I/O; keep theirs (it may be dirty).
		if racer, ok := f.cache[key]; ok {
			return racer, nil
		}
	}
	f.cache[key] = p
	f.lruTick++
	f.lruStamp[key] = f.lruTick
	f.evictLocked()
	return p, nil
}

// evictLocked keeps the cache within capacity, writing back dirty
// victims.
func (f *FS) evictLocked() {
	for len(f.cache) > f.cfg.CacheCap {
		var victim pageKey
		best := int64(1 << 62)
		for k := range f.cache {
			if f.lruStamp[k] < best {
				best = f.lruStamp[k]
				victim = k
			}
		}
		p := f.cache[victim]
		delete(f.cache, victim)
		delete(f.lruStamp, victim)
		if p.dirty {
			if in, ok := f.inodes[victim.ino]; ok {
				e := f.ensureExtent(in, victim.page*PageSize)
				inExt := victim.page * PageSize % StripeSize
				f.mu.Unlock()
				_ = f.diskWrite(e.disk, p.data, e.off+inExt)
				f.mu.Lock()
			}
		}
	}
}

// WriteAt writes p at off.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	f := h.fs
	f.chargeOp(len(p))
	f.mu.Lock()
	in, ok := f.inodes[h.ino]
	if !ok {
		f.mu.Unlock()
		return 0, ErrNotExist
	}
	pos := 0
	for pos < len(p) {
		cur := off + int64(pos)
		pg := cur / PageSize
		inPage := int(cur % PageSize)
		n := PageSize - inPage
		if n > len(p)-pos {
			n = len(p) - pos
		}
		load := !(inPage == 0 && n == PageSize)
		cp, err := f.pageLocked(in, pg, load)
		if err != nil {
			f.mu.Unlock()
			return pos, err
		}
		copy(cp.data[inPage:], p[pos:pos+n])
		cp.dirty = true
		pos += n
	}
	if off+int64(len(p)) > in.size {
		in.size = off + int64(len(p))
	}
	in.mtime = int64(f.w.Clock.Now())
	f.mu.Unlock()
	f.logMeta("write")
	return len(p), nil
}

// ReadAt reads into p from off, with read-ahead on sequential
// access.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	f := h.fs
	f.chargeOp(len(p))
	f.mu.Lock()
	in, ok := f.inodes[h.ino]
	if !ok {
		f.mu.Unlock()
		return 0, ErrNotExist
	}
	if off >= in.size {
		f.mu.Unlock()
		return 0, io.EOF
	}
	want := int64(len(p))
	var readErr error
	if off+want > in.size {
		want = in.size - off
		readErr = io.EOF
	}
	sequential := f.raNext[h.ino] == off && off > 0
	n := 0
	for int64(n) < want {
		cur := off + int64(n)
		pg := cur / PageSize
		inPage := int(cur % PageSize)
		chunk := PageSize - inPage
		if int64(chunk) > want-int64(n) {
			chunk = int(want - int64(n))
		}
		cp, err := f.pageLocked(in, pg, true)
		if err != nil {
			f.mu.Unlock()
			return n, err
		}
		copy(p[n:n+chunk], cp.data[inPage:])
		n += chunk
	}
	// Synchronous read-ahead of the next pages (the single-node
	// baseline has no locks to lose; prefetching just fills cache).
	if sequential && f.raOn {
		last := (off + int64(n)) / PageSize
		for i := int64(1); i <= int64(f.cfg.ReadAhead); i++ {
			if (last+i)*PageSize >= in.size {
				break
			}
			if _, err := f.pageLocked(in, last+i, true); err != nil {
				break
			}
		}
	}
	f.raNext[h.ino] = off + int64(n)
	f.mu.Unlock()
	return n, readErr
}

// Truncate adjusts size (page bookkeeping only; extents are
// bump-allocated and not reclaimed in the baseline).
func (h *File) Truncate(size int64) error {
	f := h.fs
	f.chargeOp(0)
	f.mu.Lock()
	in, ok := f.inodes[h.ino]
	if !ok {
		f.mu.Unlock()
		return ErrNotExist
	}
	in.size = size
	for k := range f.cache {
		if k.ino == h.ino && k.page*PageSize >= size {
			delete(f.cache, k)
			delete(f.lruStamp, k)
		}
	}
	f.mu.Unlock()
	f.logMeta("truncate")
	return nil
}

// flushItem is one dirty page bound for disk.
type flushItem struct {
	disk int
	off  int64
	data []byte
}

// writeCoalesced writes dirty pages, merging per-disk contiguous runs
// into single transfers (one I/O per stripe unit instead of one per
// page — per-page I/O would be dominated by modelled seeks).
func (f *FS) writeCoalesced(items []flushItem) error {
	sort.Slice(items, func(a, b int) bool {
		if items[a].disk != items[b].disk {
			return items[a].disk < items[b].disk
		}
		return items[a].off < items[b].off
	})
	i := 0
	for i < len(items) {
		j := i + 1
		for j < len(items) && items[j].disk == items[i].disk &&
			items[j].off == items[j-1].off+int64(len(items[j-1].data)) {
			j++
		}
		buf := make([]byte, 0, (j-i)*PageSize)
		for k := i; k < j; k++ {
			buf = append(buf, items[k].data...)
		}
		if err := f.diskWrite(items[i].disk, buf, items[i].off); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// Sync flushes this file's dirty pages and the log.
func (h *File) Sync() error {
	f := h.fs
	_ = f.log.Flush()
	f.mu.Lock()
	var items []flushItem
	for k, p := range f.cache {
		if k.ino == h.ino && p.dirty {
			in := f.inodes[k.ino]
			e := f.ensureExtent(in, k.page*PageSize)
			items = append(items, flushItem{e.disk, e.off + k.page*PageSize%StripeSize,
				append([]byte(nil), p.data...)})
			p.dirty = false
		}
	}
	f.mu.Unlock()
	return f.writeCoalesced(items)
}

// Sync flushes all dirty state (the update demon body).
func (f *FS) Sync() error {
	_ = f.log.Flush()
	f.mu.Lock()
	var items []flushItem
	for k, p := range f.cache {
		if !p.dirty {
			continue
		}
		in, ok := f.inodes[k.ino]
		if !ok {
			continue
		}
		e := f.ensureExtent(in, k.page*PageSize)
		items = append(items, flushItem{e.disk, e.off + k.page*PageSize%StripeSize,
			append([]byte(nil), p.data...)})
		p.dirty = false
	}
	f.mu.Unlock()
	if err := f.writeCoalesced(items); err != nil {
		return err
	}
	f.log.Release(1 << 62)
	return nil
}

// CPUUtilization reports the busy fraction of the machine's CPU.
func (f *FS) CPUUtilization() float64 { return f.cpu.Utilization() }
