package petal

import (
	"sort"
)

// Command is a Petal global-state command, decided through Paxos and
// applied deterministically on every server.
type Command any

// Global-state commands.
type (
	// CmdCreateVDisk creates an empty writable virtual disk.
	CmdCreateVDisk struct{ ID VDiskID }
	// CmdDeleteVDisk removes a virtual disk (and its snapshots' view
	// of it remains until they are deleted too; chunk GC is lazy).
	CmdDeleteVDisk struct{ ID VDiskID }
	// CmdSnapshot creates a read-only snapshot of Parent as Snap,
	// freezing Parent's current epoch and advancing it.
	CmdSnapshot struct {
		Parent VDiskID
		Snap   VDiskID
	}
	// CmdSetAlive records a server's liveness transition. Placement
	// never changes, but clients and replicas route around servers
	// that are not alive, and a rejoining server resyncs before
	// proposing itself alive again.
	CmdSetAlive struct {
		Server string
		Alive  bool
	}
)

// VDiskMeta describes one virtual disk in the directory.
type VDiskMeta struct {
	ID       VDiskID
	Epoch    int64 // current write epoch
	ReadOnly bool
	// For snapshots: the disk whose chunks are read, and the epoch
	// ceiling frozen at snapshot time.
	Parent     VDiskID
	Parentance int64 // highest epoch visible to this snapshot
}

// GlobalState is the Paxos-replicated directory: the fixed server
// list, per-server liveness, and the virtual-disk table. It is a
// plain value; Clone before mutating a copy.
type GlobalState struct {
	Servers []string
	Alive   map[string]bool
	VDisks  map[VDiskID]VDiskMeta
	Version int64 // bumps on every applied command
}

// NewGlobalState returns the initial state: all servers alive, no
// virtual disks.
func NewGlobalState(servers []string) GlobalState {
	alive := make(map[string]bool, len(servers))
	for _, s := range servers {
		alive[s] = true
	}
	sorted := append([]string(nil), servers...)
	sort.Strings(sorted)
	return GlobalState{
		Servers: sorted,
		Alive:   alive,
		VDisks:  make(map[VDiskID]VDiskMeta),
	}
}

// Clone returns a deep copy.
func (g GlobalState) Clone() GlobalState {
	out := g
	out.Servers = append([]string(nil), g.Servers...)
	out.Alive = make(map[string]bool, len(g.Alive))
	for k, v := range g.Alive {
		out.Alive[k] = v
	}
	out.VDisks = make(map[VDiskID]VDiskMeta, len(g.VDisks))
	for k, v := range g.VDisks {
		out.VDisks[k] = v
	}
	return out
}

// Apply executes one command, returning an error string for commands
// that are no-ops (already satisfied) or invalid. Apply must stay
// deterministic: it is run independently on every server.
func (g *GlobalState) Apply(cmd Command) error {
	g.Version++
	switch c := cmd.(type) {
	case CmdCreateVDisk:
		if _, ok := g.VDisks[c.ID]; ok {
			return ErrVDiskExists
		}
		g.VDisks[c.ID] = VDiskMeta{ID: c.ID, Epoch: 1}
	case CmdDeleteVDisk:
		if _, ok := g.VDisks[c.ID]; !ok {
			return ErrNoSuchVDisk
		}
		delete(g.VDisks, c.ID)
	case CmdSnapshot:
		parent, ok := g.VDisks[c.Parent]
		if !ok {
			return ErrNoSuchVDisk
		}
		if parent.ReadOnly {
			return ErrReadOnly
		}
		if _, ok := g.VDisks[c.Snap]; ok {
			return ErrVDiskExists
		}
		base := c.Parent
		if parent.Parent != "" {
			base = parent.Parent
		}
		g.VDisks[c.Snap] = VDiskMeta{
			ID:         c.Snap,
			ReadOnly:   true,
			Parent:     base,
			Parentance: parent.Epoch,
		}
		parent.Epoch++
		g.VDisks[c.Parent] = parent
	case CmdSetAlive:
		if _, ok := g.Alive[c.Server]; ok {
			g.Alive[c.Server] = c.Alive
		}
	}
	return nil
}

// replicas returns the two servers holding a chunk, by rendezvous of
// a fixed hash over the fixed server list. Placement is independent
// of liveness so that it never silently changes under failures; the
// missed-write sets handle divergence instead.
func (g *GlobalState) replicas(v VDiskID, chunk int64) (primary, backup string) {
	n := len(g.Servers)
	if n == 0 {
		return "", ""
	}
	// Snapshot chunks live where the parent's chunks live.
	base := v
	if m, ok := g.VDisks[v]; ok && m.Parent != "" {
		base = m.Parent
	}
	i := int(fnv64(base, chunk) % uint64(n))
	if n == 1 {
		return g.Servers[i], ""
	}
	return g.Servers[i], g.Servers[(i+1)%n]
}

// Replicas exposes the placement function: the (primary, backup)
// pair holding a chunk. Placement-aware tooling and benchmarks (e.g.
// crafting a worst-case hot-primary chunk set) use it; the data path
// goes through the unexported form.
func (g *GlobalState) Replicas(v VDiskID, chunk int64) (primary, backup string) {
	return g.replicas(v, chunk)
}

// resolve maps a vdisk to the (base vdisk, epoch ceiling, writable)
// triple used by the storage layer. For an ordinary disk the ceiling
// is its current epoch; for a snapshot it is the frozen epoch of its
// parent.
func (g *GlobalState) resolve(v VDiskID) (base VDiskID, ceiling int64, writable bool, err error) {
	m, ok := g.VDisks[v]
	if !ok {
		return "", 0, false, ErrNoSuchVDisk
	}
	if m.ReadOnly {
		return m.Parent, m.Parentance, false, nil
	}
	return m.ID, m.Epoch, true, nil
}
