package petal

import (
	"testing"
	"time"
)

// TestIncrementalRefresh pins the version-aware refresh contract that
// keeps directory-state traffic off the O(N) path: refreshes for
// versions the cache already covers cost zero RPCs, probes against an
// unchanged server ship no state, and only a real version bump moves
// the client forward.
func TestIncrementalRefresh(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	c := tc.client

	if err := c.CreateVDisk("v0"); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	ok, v := c.stateOK, c.state.Version
	c.mu.Unlock()
	if !ok || v <= 0 {
		t.Fatalf("no global state adopted after admin op (version %d)", v)
	}

	// A refresh demanded for a view the cache already supersedes must
	// short-circuit without touching the network.
	rpc0 := c.refreshRPCs.Value()
	skip0 := c.refreshSkipped.Value()
	if err := c.refreshSince(v - 1); err != nil {
		t.Fatal(err)
	}
	if got := c.refreshRPCs.Value(); got != rpc0 {
		t.Fatalf("satisfied-from-cache refresh issued %d RPCs", got-rpc0)
	}
	if got := c.refreshSkipped.Value(); got != skip0+1 {
		t.Fatalf("refresh.skipped = %d, want %d", got, skip0+1)
	}

	// Demanding strictly newer than the cache forces a probe; no
	// admin op has run, so the server answers Unchanged and the
	// (potentially large at big N) state payload stays home.
	unch0 := c.refreshUnch.Value()
	rpc1 := c.refreshRPCs.Value()
	if err := c.refreshSince(v); err != nil {
		t.Fatal(err)
	}
	if got := c.refreshRPCs.Value(); got != rpc1+1 {
		t.Fatalf("probe issued %d RPCs, want 1", got-rpc1)
	}
	if got := c.refreshUnch.Value(); got != unch0+1 {
		t.Fatalf("refresh.unchanged = %d, want %d", got, unch0+1)
	}
	c.mu.Lock()
	v2 := c.state.Version
	c.mu.Unlock()
	if v2 != v {
		t.Fatalf("Unchanged probe moved the cached version %d -> %d", v, v2)
	}

	// A real version bump must propagate. Servers apply Paxos
	// decisions asynchronously, so poll: each refreshSince(v) probes
	// (the cache is not past v) until some server ships the new view.
	if err := c.CreateVDisk("v1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		c.mu.Lock()
		v3 := c.state.Version
		c.mu.Unlock()
		if v3 > v {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("version never advanced past %d after admin op", v)
		}
		if err := c.refreshSince(v); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
