package petal

import (
	"bytes"
	"testing"
	"time"
)

// TestNoReplicateAblation: with NoReplicate set, a write lands on
// exactly one server (the Figure 7 ablation knob).
func TestNoReplicateAblation(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *ServerConfig) {
		cfg.NoReplicate = true
	})
	// Single-copy writes leave the backup replica empty; balanced
	// reads would see its holes. Primary-only reads, as the knob's
	// users (the Figure 7 ablation) configure.
	tc.client.SetReadBalance(false)
	d := tc.mustCreate(t, "vol")
	if err := d.WriteAt(patternBuf(ChunkSize, 4), 0); err != nil {
		t.Fatal(err)
	}
	// Give any (erroneous) forwarding a moment, then count copies.
	tc.w.Clock.Sleep(2 * time.Second)
	holders := 0
	total := int64(0)
	for _, s := range tc.servers {
		total += s.CommittedBytes()
		if s.CommittedBytes() > 0 {
			holders++
		}
	}
	if holders != 1 || total != ChunkSize {
		t.Fatalf("NoReplicate: %d holders, %d bytes committed; want 1 holder, %d bytes",
			holders, total, ChunkSize)
	}
	// Round trip still works.
	got := make([]byte, ChunkSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patternBuf(ChunkSize, 4)) {
		t.Fatal("round trip mismatch without replication")
	}
}

// TestListChunksEnumeratesCommitted covers the restore-path helper.
func TestListChunksEnumeratesCommitted(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	for _, chunk := range []int64{0, 5, 1000} {
		if err := d.WriteAt([]byte{1}, chunk*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	chunks, err := tc.client.ListChunks("vol")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 5, 1000}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %v, want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunks = %v, want %v", chunks, want)
		}
	}
	// Snapshots enumerate their frozen view.
	if err := tc.client.Snapshot("vol", "s"); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte{1}, 7*ChunkSize); err != nil {
		t.Fatal(err)
	}
	snapChunks, err := tc.client.ListChunks("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(snapChunks) != 3 {
		t.Fatalf("snapshot chunks = %v, want the 3 pre-snapshot chunks", snapChunks)
	}
}
