package petal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"frangipani/internal/sim"
)

// TestReadVRoundTripBatchesRPCs: a scatter-gather read of many chunk
// extents collapses into at most one RPC per Petal server, and the
// data round-trips.
func TestReadVRoundTripBatchesRPCs(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	const chunks = 24
	want := make([][]byte, chunks)
	for i := 0; i < chunks; i++ {
		want[i] = patternBuf(1024, byte(i+1))
		if err := d.WriteAt(want[i], int64(i)*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	before := tc.client.Stats()
	exts := make([]ReadExtent, chunks)
	for i := range exts {
		exts[i] = ReadExtent{Off: int64(i) * ChunkSize, Dst: make([]byte, 1024)}
	}
	if err := d.ReadV(exts); err != nil {
		t.Fatal(err)
	}
	for i := range exts {
		if !bytes.Equal(exts[i].Dst, want[i]) {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	after := tc.client.Stats()
	if got := after.ReadRPCs - before.ReadRPCs; got != 0 {
		t.Fatalf("ReadV fell back to %d per-chunk reads", got)
	}
	if got := after.ReadVRPCs - before.ReadVRPCs; got < 1 || got > 3 {
		t.Fatalf("ReadV used %d RPCs for %d extents on 3 servers; want 1..3", got, chunks)
	}
	if got := after.ReadVExtents - before.ReadVExtents; got != chunks {
		t.Fatalf("ReadV carried %d extents, want %d", got, chunks)
	}
}

// TestReadVHolesReadAsZeros: uncommitted extents fill their
// destination with zeros, never leaving prefill garbage behind.
func TestReadVHolesReadAsZeros(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	if err := d.WriteAt(patternBuf(512, 9), 0); err != nil {
		t.Fatal(err)
	}
	exts := []ReadExtent{
		{Off: 0, Dst: make([]byte, 1024)},                  // committed head, short data
		{Off: 10 * ChunkSize, Dst: make([]byte, 2048)},     // hole
		{Off: 11*ChunkSize - 512, Dst: make([]byte, 1024)}, // hole straddling a chunk edge
	}
	for _, e := range exts {
		for i := range e.Dst {
			e.Dst[i] = 0xAA
		}
	}
	if err := d.ReadV(exts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exts[0].Dst[:512], patternBuf(512, 9)) {
		t.Fatal("committed prefix mismatch")
	}
	for n, e := range exts {
		from := 0
		if n == 0 {
			from = 512
		}
		for i := from; i < len(e.Dst); i++ {
			if e.Dst[i] != 0 {
				t.Fatalf("extent %d byte %d: stale 0x%02x, want zero", n, i, e.Dst[i])
			}
		}
	}
}

// TestReadVPerExtentFailover is the regression test for the
// acceptance criterion: a ReadV whose extents fail on one replica
// (every disk on that server is failed) completes via per-extent
// failover to the other copy, with no stale bytes left in any
// destination buffer.
func TestReadVPerExtentFailover(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	const chunks = 16
	want := make([][]byte, chunks)
	for i := 0; i < chunks; i++ {
		want[i] = patternBuf(2048, byte(i+3))
		if err := d.WriteAt(want[i], int64(i)*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	// Fail every disk on one server: its store errors all chunk reads
	// while heartbeats keep it "alive", so routing still selects it
	// and only the per-extent fallback can recover.
	for _, disk := range tc.servers[1].Disks() {
		disk.Fail()
	}
	exts := make([]ReadExtent, chunks+1)
	for i := 0; i < chunks; i++ {
		exts[i] = ReadExtent{Off: int64(i) * ChunkSize, Dst: make([]byte, 2048)}
	}
	// One hole extent too: failover must zero it, not skip it.
	exts[chunks] = ReadExtent{Off: 100 * ChunkSize, Dst: make([]byte, 2048)}
	for _, e := range exts {
		for i := range e.Dst {
			e.Dst[i] = 0xAA
		}
	}
	before := tc.client.Stats()
	if err := d.ReadV(exts); err != nil {
		t.Fatalf("ReadV with one failed replica: %v", err)
	}
	for i := 0; i < chunks; i++ {
		if !bytes.Equal(exts[i].Dst, want[i]) {
			t.Fatalf("extent %d mismatch after failover", i)
		}
	}
	for i, b := range exts[chunks].Dst {
		if b != 0 {
			t.Fatalf("hole extent byte %d: stale 0x%02x after failover", i, b)
		}
	}
	after := tc.client.Stats()
	if after.ReadRPCs == before.ReadRPCs {
		t.Fatal("expected per-extent fallback reads against the surviving replica")
	}
}

// TestReadBalanceSplitsAcrossReplicas: with balancing on (the
// default), first-choice read routing uses both replicas; switched
// off, it reverts to primary-only.
func TestReadBalanceSplitsAcrossReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	buf := patternBuf(4096, 5)
	for i := 0; i < 8; i++ {
		if err := d.WriteAt(buf, int64(i)*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, 4096)
	for r := 0; r < 8; r++ {
		for i := 0; i < 8; i++ {
			if err := d.ReadAt(got, int64(i)*ChunkSize); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := tc.client.Stats()
	if st.ReadPrimary == 0 || st.ReadBackup == 0 {
		t.Fatalf("balanced routing used primary %d / backup %d times; want both > 0",
			st.ReadPrimary, st.ReadBackup)
	}
	tc.client.SetReadBalance(false)
	mid := tc.client.Stats()
	for i := 0; i < 8; i++ {
		if err := d.ReadAt(got, int64(i)*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	end := tc.client.Stats()
	if end.ReadBackup != mid.ReadBackup || end.ReadPrimary != mid.ReadPrimary {
		t.Fatal("primary-only mode still recorded balanced routing decisions")
	}
}

// TestReadBalancePrefersLessLoadedReplica: with one replica's
// outstanding gauge pinned high, least-outstanding routing sends
// first-choice reads to the other copy.
func TestReadBalancePrefersLessLoadedReplica(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	st, err := tc.client.getState()
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := st.Replicas("vol", 0)
	if p1 == "" || p2 == "" {
		t.Fatalf("placement gave (%q, %q)", p1, p2)
	}
	tc.client.infl[p1].Set(10) // p1 looks busy
	var tl targetList
	for i := 0; i < 4; i++ {
		tc.client.readTargets(&st, "vol", 0, &tl)
		if tl.srv[0] != p2 {
			t.Fatalf("round %d routed to loaded replica %q, want %q", i, tl.srv[0], p2)
		}
	}
	tc.client.infl[p1].Set(0)
	firsts := map[string]int{}
	for i := 0; i < 10; i++ {
		tc.client.readTargets(&st, "vol", 0, &tl)
		firsts[tl.srv[0]]++
	}
	if len(firsts) != 2 {
		t.Fatalf("tied replicas should alternate round-robin, got %v", firsts)
	}
}

// TestTargetsAllocationFree verifies the routing hot path does not
// allocate (satellite: targets used to build a fresh slice per chunk
// read).
func TestTargetsAllocationFree(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.mustCreate(t, "vol")
	st, err := tc.client.getState()
	if err != nil {
		t.Fatal(err)
	}
	var tl targetList
	allocs := testing.AllocsPerRun(200, func() {
		tc.client.targets(&st, "vol", 7, &tl)
		tc.client.readTargets(&st, "vol", 11, &tl)
	})
	if allocs != 0 {
		t.Fatalf("targets/readTargets allocate %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkReadTargets measures the routing decision on the chunk
// read hot path; run with -benchmem to confirm 0 allocs/op.
func BenchmarkReadTargets(b *testing.B) {
	w := sim.NewWorld(200, 3)
	defer w.Stop()
	names := []string{"p0", "p1", "p2"}
	c := NewClient(w, "ws0", names)
	defer c.Close()
	st := NewGlobalState(names)
	var tl targetList
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.readTargets(&st, "vol", int64(i), &tl)
	}
}

// TestBackoffDelayShape pins the retry backoff: exponential doubling
// from retryBase, capped at retryCap, jitter confined to [d/2, d).
func TestBackoffDelayShape(t *testing.T) {
	// Without jitter the ramp is exactly base << attempt, capped.
	want := []sim.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		640 * time.Millisecond, 640 * time.Millisecond, 640 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := backoffDelay(attempt, nil); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
	// Jitter stays in [d/2, d): the low edge with rand()=0, one short
	// of d with rand()=n-1.
	if got := backoffDelay(3, func(n int) int { return 0 }); got != 40*time.Millisecond {
		t.Fatalf("low jitter edge = %v, want 40ms", got)
	}
	if got := backoffDelay(3, func(n int) int { return n - 1 }); got != 80*time.Millisecond-1 {
		t.Fatalf("high jitter edge = %v, want 80ms-1ns", got)
	}
	// Very large attempt numbers must not overflow past the cap.
	if got := backoffDelay(1000, nil); got != retryCap {
		t.Fatalf("attempt 1000: delay %v, want cap %v", got, retryCap)
	}
}

// TestRetriesRespectOpDeadline: a chunk op against a vdisk that never
// materializes retries with backoff until the op deadline and gives
// up promptly — the final pause is clamped to the deadline, so the
// op cannot overshoot by a full backoff step.
func TestRetriesRespectOpDeadline(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.client.opDeadline = 2 * time.Second
	start := tc.w.Clock.Now()
	err := tc.client.Read("never-created", 0, make([]byte, 256))
	if err == nil {
		t.Fatal("read of a nonexistent vdisk succeeded")
	}
	elapsed := sim.Duration(tc.w.Clock.Now() - start)
	if elapsed < 2*time.Second {
		t.Fatalf("gave up after %v, before the 2s op deadline", elapsed)
	}
	if elapsed > 2*time.Second+1500*time.Millisecond {
		t.Fatalf("overshot the 2s op deadline by %v", elapsed-2*time.Second)
	}
}

// TestSpansEdgeCases covers the chunk splitter's boundary behaviour.
func TestSpansEdgeCases(t *testing.T) {
	if got := spans(0, 0); len(got) != 0 {
		t.Fatalf("zero-length read produced %d spans", len(got))
	}
	if got := spans(12345, 0); len(got) != 0 {
		t.Fatalf("zero-length read at offset produced %d spans", len(got))
	}
	// Exactly one whole chunk.
	got := spans(0, ChunkSize)
	if len(got) != 1 || got[0] != (span{chunk: 0, off: 0, length: ChunkSize, bufOff: 0}) {
		t.Fatalf("whole-chunk spans = %+v", got)
	}
	// Starting exactly on a chunk boundary.
	got = spans(3*ChunkSize, 10)
	if len(got) != 1 || got[0] != (span{chunk: 3, off: 0, length: 10, bufOff: 0}) {
		t.Fatalf("boundary-start spans = %+v", got)
	}
	// Straddling a boundary by one byte each side.
	got = spans(ChunkSize-1, 2)
	want := []span{
		{chunk: 0, off: ChunkSize - 1, length: 1, bufOff: 0},
		{chunk: 1, off: 0, length: 1, bufOff: 1},
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("straddle spans = %+v, want %+v", got, want)
	}
	// Ending exactly on a boundary must not emit an empty tail span.
	got = spans(ChunkSize/2, ChunkSize/2)
	if len(got) != 1 || got[0].length != ChunkSize/2 {
		t.Fatalf("boundary-end spans = %+v", got)
	}
	// Two exact chunks.
	got = spans(ChunkSize, 2*ChunkSize)
	if len(got) != 2 || got[0].chunk != 1 || got[1].chunk != 2 ||
		got[0].length != ChunkSize || got[1].length != ChunkSize ||
		got[1].bufOff != ChunkSize {
		t.Fatalf("two-chunk spans = %+v", got)
	}
}

// TestBoundedParEdgeCases covers the fan-out helper: empty input,
// serial limit, limit coercion, and error propagation from a middle
// item without losing the others' completion.
func TestBoundedParEdgeCases(t *testing.T) {
	if err := boundedPar(4, nil, func(int) error { return nil }); err != nil {
		t.Fatalf("empty items: %v", err)
	}
	// parallelism=1 runs items serially, in order.
	var mu sync.Mutex
	var order []int
	items := []int{0, 1, 2, 3, 4}
	err := boundedPar(1, items, func(i int) error {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(items) {
		t.Fatalf("ran %d items, want %d", len(order), len(items))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("parallelism=1 ran out of order: %v", order)
		}
	}
	// A middle item's error propagates; every item still runs.
	boom := fmt.Errorf("boom")
	var ran int
	err = boundedPar(2, items, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("middle-item error = %v, want boom", err)
	}
	mu.Lock()
	if ran != len(items) {
		t.Fatalf("error cancelled siblings: ran %d of %d", ran, len(items))
	}
	mu.Unlock()
	// limit < 1 is coerced, not deadlocked.
	if err := boundedPar(0, items, func(int) error { return nil }); err != nil {
		t.Fatalf("limit 0: %v", err)
	}
	// Single-item fast path propagates errors too.
	if err := boundedPar(8, []int{7}, func(int) error { return boom }); err != boom {
		t.Fatalf("single-item error = %v, want boom", err)
	}
}

// TestZeroLengthReadIssuesNoRPCs: the degenerate I/O sizes short-cut
// before touching the network.
func TestZeroLengthReadIssuesNoRPCs(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	before := tc.client.Stats()
	if err := d.ReadAt(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadV(nil); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadV([]ReadExtent{{Off: 5, Dst: nil}}); err != nil {
		t.Fatal(err)
	}
	after := tc.client.Stats()
	if after.ReadRPCs != before.ReadRPCs || after.ReadVRPCs != before.ReadVRPCs {
		t.Fatalf("zero-length reads issued RPCs: %+v -> %+v", before, after)
	}
}
