package petal

import (
	"bytes"
	"testing"
	"time"
)

func TestWriteVScatteredRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	// Scattered extents: same chunk, different chunks, one spanning a
	// chunk boundary.
	exts := []Extent{
		{Off: 0, Data: patternBuf(4096, 1)},
		{Off: 16 * 1024, Data: patternBuf(512, 2)},
		{Off: int64(ChunkSize) - 300, Data: patternBuf(1000, 3)}, // crosses into chunk 1
		{Off: 3 * int64(ChunkSize), Data: patternBuf(8192, 4)},
	}
	if err := d.WriteV(exts); err != nil {
		t.Fatal(err)
	}
	for i, e := range exts {
		got := make([]byte, len(e.Data))
		if err := d.ReadAt(got, e.Off); err != nil {
			t.Fatalf("extent %d read: %v", i, err)
		}
		if !bytes.Equal(got, e.Data) {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	// Untouched gaps still read zero.
	gap := make([]byte, 100)
	if err := d.ReadAt(gap, 8192); err != nil {
		t.Fatal(err)
	}
	for _, b := range gap {
		if b != 0 {
			t.Fatal("WriteV disturbed a hole")
		}
	}
}

func TestWriteVBatchesRPCs(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	// 32 small extents inside one chunk: the per-extent path would
	// cost 32 write RPCs; scatter-gather should need far fewer (one
	// per replica-server batch).
	var exts []Extent
	for i := 0; i < 32; i++ {
		exts = append(exts, Extent{Off: int64(i) * 1024, Data: patternBuf(256, byte(i))})
	}
	before := tc.client.Stats()
	if err := d.WriteV(exts); err != nil {
		t.Fatal(err)
	}
	after := tc.client.Stats()
	vRPCs := after.WriteVRPCs - before.WriteVRPCs
	vExts := after.WriteVExtents - before.WriteVExtents
	singles := after.WriteRPCs - before.WriteRPCs
	if vExts != 32 {
		t.Fatalf("WriteV carried %d extents, want 32", vExts)
	}
	if vRPCs >= 32/4 {
		t.Fatalf("WriteV used %d RPCs for 32 extents; batching ineffective", vRPCs)
	}
	if singles != 0 {
		t.Fatalf("%d extents fell back to per-chunk writes on the happy path", singles)
	}
}

func TestWriteVSingleExtentUsesPlainWrite(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	before := tc.client.Stats()
	if err := d.WriteV([]Extent{{Off: 100, Data: patternBuf(300, 7)}}); err != nil {
		t.Fatal(err)
	}
	after := tc.client.Stats()
	if after.WriteVRPCs != before.WriteVRPCs {
		t.Fatal("single-extent WriteV should take the plain write path")
	}
	got := make([]byte, 300)
	if err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patternBuf(300, 7)) {
		t.Fatal("single-extent round trip mismatch")
	}
}

func TestWriteVFailoverOnCrash(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	// Crash one server; batches routed to it must fall back to the
	// per-chunk path, which retries against the survivors.
	tc.servers[1].Crash()
	waitUntil(t, 20*time.Second, func() bool {
		return !tc.servers[0].State().Alive["p1"]
	})
	var exts []Extent
	for i := 0; i < 8; i++ {
		exts = append(exts, Extent{Off: int64(i) * int64(ChunkSize), Data: patternBuf(2048, byte(i + 1))})
	}
	if err := d.WriteV(exts); err != nil {
		t.Fatal(err)
	}
	for i, e := range exts {
		got := make([]byte, len(e.Data))
		if err := d.ReadAt(got, e.Off); err != nil {
			t.Fatalf("extent %d read: %v", i, err)
		}
		if !bytes.Equal(got, e.Data) {
			t.Fatalf("extent %d mismatch after failover", i)
		}
	}
}

func TestWriteVReplicatesAcrossCrash(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	var exts []Extent
	for i := 0; i < 6; i++ {
		exts = append(exts, Extent{Off: int64(i) * int64(ChunkSize), Data: patternBuf(4096, byte(0x40 + i))})
	}
	if err := d.WriteV(exts); err != nil {
		t.Fatal(err)
	}
	// Every chunk must survive the loss of any single server: the
	// batched path must have replicated exactly like per-chunk writes.
	tc.servers[0].Crash()
	waitUntil(t, 20*time.Second, func() bool {
		return !tc.servers[1].State().Alive["p0"]
	})
	for i, e := range exts {
		got := make([]byte, len(e.Data))
		if err := d.ReadAt(got, e.Off); err != nil {
			t.Fatalf("extent %d read after crash: %v", i, err)
		}
		if !bytes.Equal(got, e.Data) {
			t.Fatalf("extent %d lost its replica", i)
		}
	}
}
