package petal

import (
	"fmt"
	"sort"
	"sync"

	"frangipani/internal/sim"
)

// extent locates one committed chunk on a server's local disks. A
// negative dev marks a decommit tombstone: the chunk is explicitly
// absent at that epoch, hiding older-epoch data from newer views.
type extent struct {
	dev int
	off int64
}

const tombstoneDev = -1

// vchunk indexes the epochs present for one (vdisk, chunk) pair.
type vchunk struct {
	VDisk VDiskID
	Chunk int64
}

// store is one Petal server's physical storage: a set of local disks
// (optionally fronted by NVRAM) carved into 64 KB extents, plus the
// chunk directory mapping chunkKeys to extents.
type store struct {
	devs  []sim.BlockDev
	disks []*sim.Disk // raw disks, for fault injection and capacity
	caps  []int64

	mu        sync.Mutex
	extents   map[chunkKey]extent
	epochs    map[vchunk][]int64 // sorted ascending
	free      [][]int64          // per-dev free extent offsets
	next      []int64            // per-dev bump allocator
	committed int64              // bytes of committed physical space
	initing   map[chunkKey]*sync.WaitGroup
}

// newStore builds a store over the given disks. If nvram is non-nil
// it must be parallel to disks and is used for all I/O.
func newStore(disks []*sim.Disk, nvram []*sim.NVRAM) *store {
	s := &store{
		extents: make(map[chunkKey]extent),
		epochs:  make(map[vchunk][]int64),
		free:    make([][]int64, len(disks)),
		next:    make([]int64, len(disks)),
		initing: make(map[chunkKey]*sync.WaitGroup),
	}
	for i, d := range disks {
		s.disks = append(s.disks, d)
		s.caps = append(s.caps, d.Params().Capacity)
		if nvram != nil && nvram[i] != nil {
			s.devs = append(s.devs, nvram[i])
		} else {
			s.devs = append(s.devs, d)
		}
	}
	return s
}

// alloc finds a free extent, preferring the least-loaded disk.
func (s *store) alloc() (extent, error) {
	best, bestFreeBytes := -1, int64(-1)
	for i := range s.devs {
		freeBytes := s.caps[i] - s.next[i] + int64(len(s.free[i]))*ChunkSize
		if freeBytes >= ChunkSize && freeBytes > bestFreeBytes {
			best, bestFreeBytes = i, freeBytes
		}
	}
	if best < 0 {
		return extent{}, fmt.Errorf("petal: server out of physical space")
	}
	if n := len(s.free[best]); n > 0 {
		off := s.free[best][n-1]
		s.free[best] = s.free[best][:n-1]
		return extent{dev: best, off: off}, nil
	}
	off := s.next[best]
	s.next[best] += ChunkSize
	return extent{dev: best, off: off}, nil
}

func (s *store) indexInsert(key chunkKey) {
	vc := vchunk{key.VDisk, key.Chunk}
	eps := s.epochs[vc]
	i := sort.Search(len(eps), func(i int) bool { return eps[i] >= key.Epoch })
	if i < len(eps) && eps[i] == key.Epoch {
		return
	}
	eps = append(eps, 0)
	copy(eps[i+1:], eps[i:])
	eps[i] = key.Epoch
	s.epochs[vc] = eps
}

// latest returns the highest epoch <= ceiling at which (v, chunk) has
// an entry, or 0 if none.
func (s *store) latest(v VDiskID, chunk, ceiling int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latestLocked(v, chunk, ceiling)
}

func (s *store) latestLocked(v VDiskID, chunk, ceiling int64) int64 {
	eps := s.epochs[vchunk{v, chunk}]
	i := sort.Search(len(eps), func(i int) bool { return eps[i] > ceiling })
	if i == 0 {
		return 0
	}
	return eps[i-1]
}

// readChunk reads length bytes at off within the chunk visible at
// epoch ceiling. Missing or decommitted chunks read as zeros (ok is
// false then, letting the caller skip network payload for holes).
func (s *store) readChunk(v VDiskID, chunk, ceiling int64, off, length int) (data []byte, committed bool, err error) {
	s.mu.Lock()
	e := s.latestLocked(v, chunk, ceiling)
	if e == 0 {
		s.mu.Unlock()
		return nil, false, nil
	}
	key := chunkKey{v, chunk, e}
	ext := s.extents[key]
	wg := s.initing[key]
	s.mu.Unlock()
	if wg != nil {
		wg.Wait() // COW seed copy in progress; read after it lands
	}
	if ext.dev == tombstoneDev {
		return nil, false, nil
	}
	// Read the covering sector-aligned range, then slice.
	lo := int64(off) &^ (sim.SectorSize - 1)
	hi := (int64(off+length) + sim.SectorSize - 1) &^ (sim.SectorSize - 1)
	buf := make([]byte, hi-lo)
	if err := s.devs[ext.dev].ReadAt(buf, ext.off+lo); err != nil {
		return nil, false, err
	}
	return buf[int64(off)-lo : int64(off)-lo+int64(length)], true, nil
}

// writeChunk applies data at off within (v, chunk) at exactly epoch.
// If the chunk has no extent at that epoch, one is allocated and
// seeded copy-on-write from the latest older epoch, preserving
// snapshot contents.
func (s *store) writeChunk(v VDiskID, chunk, epoch int64, off int, data []byte) error {
	key := chunkKey{v, chunk, epoch}
	s.mu.Lock()
	ext, ok := s.extents[key]
	var seed *extent
	var initWG *sync.WaitGroup
	if !ok || ext.dev == tombstoneDev {
		if prev := s.latestLocked(v, chunk, epoch-1); prev != 0 && !ok {
			pe := s.extents[chunkKey{v, chunk, prev}]
			if pe.dev != tombstoneDev {
				seed = &pe
			}
		}
		newExt, err := s.alloc()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		ext = newExt
		s.extents[key] = ext
		s.indexInsert(key)
		s.committed += ChunkSize
		if seed != nil {
			// Publish an init barrier so concurrent writers to other
			// parts of this chunk wait for the COW seed copy.
			initWG = &sync.WaitGroup{}
			initWG.Add(1)
			s.initing[key] = initWG
		}
	} else if wg := s.initing[key]; wg != nil {
		s.mu.Unlock()
		wg.Wait()
		s.mu.Lock()
	}
	s.mu.Unlock()

	if seed != nil {
		buf := make([]byte, ChunkSize)
		err := s.devs[seed.dev].ReadAt(buf, seed.off)
		if err == nil {
			err = s.devs[ext.dev].WriteAt(buf, ext.off)
		}
		s.mu.Lock()
		delete(s.initing, key)
		s.mu.Unlock()
		initWG.Done()
		if err != nil {
			return err
		}
	}
	// Sector-align the user write with read-modify-write at the edges.
	lo := int64(off) &^ (sim.SectorSize - 1)
	hi := (int64(off+len(data)) + sim.SectorSize - 1) &^ (sim.SectorSize - 1)
	if lo == int64(off) && hi == int64(off+len(data)) {
		return s.devs[ext.dev].WriteAt(data, ext.off+lo)
	}
	buf := make([]byte, hi-lo)
	if err := s.devs[ext.dev].ReadAt(buf, ext.off+lo); err != nil {
		return err
	}
	copy(buf[int64(off)-lo:], data)
	return s.devs[ext.dev].WriteAt(buf, ext.off+lo)
}

// putRaw installs a whole chunk image at an exact key, used by rejoin
// resynchronization.
func (s *store) putRaw(key chunkKey, data []byte) error {
	s.mu.Lock()
	ext, ok := s.extents[key]
	if !ok || ext.dev == tombstoneDev {
		newExt, err := s.alloc()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		ext = newExt
		s.extents[key] = ext
		s.indexInsert(key)
		s.committed += ChunkSize
	}
	s.mu.Unlock()
	return s.devs[ext.dev].WriteAt(data, ext.off)
}

// getRaw reads a whole chunk image at an exact key.
func (s *store) getRaw(key chunkKey) ([]byte, bool, error) {
	s.mu.Lock()
	ext, ok := s.extents[key]
	s.mu.Unlock()
	if !ok || ext.dev == tombstoneDev {
		return nil, false, nil
	}
	buf := make([]byte, ChunkSize)
	err := s.devs[ext.dev].ReadAt(buf, ext.off)
	return buf, err == nil, err
}

// decommit hides (v, chunk) from views at epoch and frees physical
// space not needed by older epochs (which snapshots may still see).
// When no older epoch exists the tombstone itself is elided.
func (s *store) decommit(v VDiskID, chunk, epoch int64) {
	key := chunkKey{v, chunk, epoch}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ext, ok := s.extents[key]; ok && ext.dev != tombstoneDev {
		// Free the extent at this epoch.
		s.free[ext.dev] = append(s.free[ext.dev], ext.off)
		s.committed -= ChunkSize
		if s.latestLocked(v, chunk, epoch-1) == 0 {
			// Nothing older: remove the entry entirely.
			delete(s.extents, key)
			s.removeEpoch(v, chunk, epoch)
			return
		}
		s.extents[key] = extent{dev: tombstoneDev}
		return
	}
	if s.latestLocked(v, chunk, epoch-1) != 0 {
		// Older data exists (possibly snapshot-visible): mask it.
		s.extents[key] = extent{dev: tombstoneDev}
		s.indexInsert(key)
	}
}

func (s *store) removeEpoch(v VDiskID, chunk, epoch int64) {
	vc := vchunk{v, chunk}
	eps := s.epochs[vc]
	i := sort.Search(len(eps), func(i int) bool { return eps[i] >= epoch })
	if i < len(eps) && eps[i] == epoch {
		s.epochs[vc] = append(eps[:i], eps[i+1:]...)
	}
	if len(s.epochs[vc]) == 0 {
		delete(s.epochs, vc)
	}
}

// decommitRange decommits every committed chunk of v in
// [first, last] at the given epoch. Cost is proportional to the
// chunks actually committed, not the (possibly huge, sparse) range.
func (s *store) decommitRange(v VDiskID, first, last, epoch int64) {
	s.mu.Lock()
	var hits []int64
	for vc := range s.epochs {
		if vc.VDisk == v && vc.Chunk >= first && vc.Chunk <= last {
			hits = append(hits, vc.Chunk)
		}
	}
	s.mu.Unlock()
	for _, ch := range hits {
		s.decommit(v, ch, epoch)
	}
}

// committedBytes reports physical space committed on this server.
func (s *store) committedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed
}

// visibleChunks returns the chunk indexes of a vdisk that are
// committed (non-tombstone) at the given epoch ceiling.
func (s *store) visibleChunks(v VDiskID, ceiling int64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int64
	for vc := range s.epochs {
		if vc.VDisk != v {
			continue
		}
		e := s.latestLocked(v, vc.Chunk, ceiling)
		if e == 0 {
			continue
		}
		if s.extents[chunkKey{v, vc.Chunk, e}].dev == tombstoneDev {
			continue
		}
		out = append(out, vc.Chunk)
	}
	return out
}

// keys returns all chunk keys present (including tombstones), for
// tests and the consistency checker.
func (s *store) keys() []chunkKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]chunkKey, 0, len(s.extents))
	for k := range s.extents {
		out = append(out, k)
	}
	return out
}
