package petal

import (
	"fmt"

	"frangipani/internal/rpc"
)

// Hand-rolled wire codec for the Petal data path. The eight
// high-volume message types — Read/Write/ReadV/WriteV requests and
// replies — implement rpc.WireMessage and register rpc decoders, so
// on the TCP carrier they bypass gob entirely: headers are appended
// into a small pooled buffer, payload []byte fields are handed to the
// carrier as the caller's own slices (zero-copy encode), and decode
// slices them back out of the single pooled receive buffer
// (zero-copy decode). Everything else (admin, rejoin, Paxos) stays on
// the gob escape hatch.
//
// Data fields encode their length as uvarint(len<<1 | present) so a
// nil slice (a hole in a sparse read) round-trips distinct from an
// empty one. Decoded payload-carrying messages hold the pooled
// receive buffer and return it via ReleaseWire once the consumer has
// copied the data out.

// Wire type tags (tag 0 is rpc's gob escape hatch).
const (
	TagReadReq byte = iota + 1
	TagReadResp
	TagReadVReq
	TagReadVResp
	TagWriteReq
	TagWriteResp
	TagWriteVReq
	TagWriteVResp
)

// appendDataLen appends uvarint(len<<1 | present) for a data slice.
func appendDataLen(dst []byte, data []byte, present bool) []byte {
	bits := uint64(len(data)) << 1
	if present {
		bits |= 1
	}
	return appendUvarint(dst, bits)
}

// takeData reads a presence-tagged data length from the header cursor
// and slices the bytes from the payload cursor. A nil slice comes
// back for absent data.
func takeData(hc, pc *rpc.Cursor) []byte {
	bits := hc.Uvarint()
	if hc.Bad {
		return nil
	}
	if bits&1 == 0 {
		if bits != 0 {
			hc.Bad = true // length without presence is malformed
		}
		return nil
	}
	return pc.Take(int(bits >> 1))
}

// Tiny local wrappers keep the encoder call sites readable.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendVarint(dst []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return appendUvarint(dst, uv)
}

// ---- ReadReq ----

// WireTag implements rpc.WireMessage.
func (r ReadReq) WireTag() byte { return TagReadReq }

// AppendWireHeader implements rpc.WireMessage.
func (r ReadReq) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, string(r.VDisk))
	dst = appendVarint(dst, r.Chunk)
	dst = appendUvarint(dst, uint64(r.Off))
	return appendUvarint(dst, uint64(r.Len))
}

// AppendWirePayloads implements rpc.WireMessage.
func (r ReadReq) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

func decodeReadReq(header, payload []byte, _ *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	r := ReadReq{VDisk: VDiskID(hc.String())}
	r.Chunk = hc.Varint()
	r.Off = int(hc.Uvarint())
	r.Len = int(hc.Uvarint())
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: ReadReq", rpc.ErrBadMessage)
	}
	return r, false, nil
}

// ---- ReadResp ----

// WireTag implements rpc.WireMessage.
func (r ReadResp) WireTag() byte { return TagReadResp }

// AppendWireHeader implements rpc.WireMessage.
func (r ReadResp) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendBool(dst, r.OK)
	dst = rpc.AppendString(dst, r.Err)
	return appendDataLen(dst, r.Data, r.Data != nil)
}

// AppendWirePayloads implements rpc.WireMessage.
func (r ReadResp) AppendWirePayloads(dst [][]byte) ([][]byte, int) {
	if len(r.Data) == 0 {
		return dst, 0
	}
	return append(dst, r.Data), len(r.Data)
}

func decodeReadResp(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	pc := rpc.Cursor{Data: payload}
	r := ReadResp{OK: hc.Bool(), Err: hc.String()}
	r.Data = takeData(&hc, &pc)
	if !hc.Done() || !pc.Done() {
		return nil, false, fmt.Errorf("%w: ReadResp", rpc.ErrBadMessage)
	}
	if len(payload) > 0 {
		r.wb = rb
		return r, true, nil
	}
	return r, false, nil
}

// ReleaseWire implements rpc.WireReleaser: it returns the pooled
// receive buffer the Data field aliases. Idempotent.
func (r ReadResp) ReleaseWire() { r.wb.Release() }

// ---- ReadVReq ----

// WireTag implements rpc.WireMessage.
func (r ReadVReq) WireTag() byte { return TagReadVReq }

// AppendWireHeader implements rpc.WireMessage.
func (r ReadVReq) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, string(r.VDisk))
	dst = appendUvarint(dst, uint64(len(r.Extents)))
	for _, e := range r.Extents {
		dst = appendVarint(dst, e.Chunk)
		dst = appendUvarint(dst, uint64(e.Off))
		dst = appendUvarint(dst, uint64(e.Len))
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage.
func (r ReadVReq) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

func decodeReadVReq(header, payload []byte, _ *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	r := ReadVReq{VDisk: VDiskID(hc.String())}
	n := hc.Count(3)
	if !hc.Bad && n > 0 {
		r.Extents = make([]ReadVExtent, n)
		for i := range r.Extents {
			r.Extents[i].Chunk = hc.Varint()
			r.Extents[i].Off = int(hc.Uvarint())
			r.Extents[i].Len = int(hc.Uvarint())
		}
	}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: ReadVReq", rpc.ErrBadMessage)
	}
	return r, false, nil
}

// ---- ReadVResp ----

// WireTag implements rpc.WireMessage.
func (r ReadVResp) WireTag() byte { return TagReadVResp }

// AppendWireHeader implements rpc.WireMessage.
func (r ReadVResp) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendBool(dst, r.OK)
	dst = rpc.AppendString(dst, r.Err)
	dst = appendUvarint(dst, uint64(len(r.Results)))
	for _, e := range r.Results {
		dst = rpc.AppendBool(dst, e.OK)
		dst = rpc.AppendString(dst, e.Err)
		dst = appendDataLen(dst, e.Data, e.Data != nil)
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage.
func (r ReadVResp) AppendWirePayloads(dst [][]byte) ([][]byte, int) {
	total := 0
	for _, e := range r.Results {
		if len(e.Data) > 0 {
			dst = append(dst, e.Data)
			total += len(e.Data)
		}
	}
	return dst, total
}

func decodeReadVResp(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	pc := rpc.Cursor{Data: payload}
	r := ReadVResp{OK: hc.Bool(), Err: hc.String()}
	n := hc.Count(3)
	if !hc.Bad && n > 0 {
		r.Results = make([]ReadVExtentResult, n)
		for i := range r.Results {
			r.Results[i].OK = hc.Bool()
			r.Results[i].Err = hc.String()
			r.Results[i].Data = takeData(&hc, &pc)
		}
	}
	if !hc.Done() || !pc.Done() {
		return nil, false, fmt.Errorf("%w: ReadVResp", rpc.ErrBadMessage)
	}
	if len(payload) > 0 {
		r.wb = rb
		return r, true, nil
	}
	return r, false, nil
}

// ReleaseWire implements rpc.WireReleaser: it returns the pooled
// receive buffer the per-extent Data fields alias. Idempotent.
func (r ReadVResp) ReleaseWire() { r.wb.Release() }

// ---- WriteReq ----

// WireTag implements rpc.WireMessage.
func (w WriteReq) WireTag() byte { return TagWriteReq }

// AppendWireHeader implements rpc.WireMessage.
func (w WriteReq) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, string(w.VDisk))
	dst = appendVarint(dst, w.Chunk)
	dst = appendUvarint(dst, uint64(w.Off))
	dst = rpc.AppendBool(dst, w.Forwarded)
	dst = appendVarint(dst, w.ExpireAt)
	dst = appendUvarint(dst, w.LeaseID)
	dst = appendVarint(dst, w.Epoch)
	return appendDataLen(dst, w.Data, w.Data != nil)
}

// AppendWirePayloads implements rpc.WireMessage.
func (w WriteReq) AppendWirePayloads(dst [][]byte) ([][]byte, int) {
	if len(w.Data) == 0 {
		return dst, 0
	}
	return append(dst, w.Data), len(w.Data)
}

func decodeWriteReq(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	pc := rpc.Cursor{Data: payload}
	w := WriteReq{VDisk: VDiskID(hc.String())}
	w.Chunk = hc.Varint()
	w.Off = int(hc.Uvarint())
	w.Forwarded = hc.Bool()
	w.ExpireAt = hc.Varint()
	w.LeaseID = hc.Uvarint()
	w.Epoch = hc.Varint()
	w.Data = takeData(&hc, &pc)
	if !hc.Done() || !pc.Done() {
		return nil, false, fmt.Errorf("%w: WriteReq", rpc.ErrBadMessage)
	}
	if len(payload) > 0 {
		w.wb = rb
		return w, true, nil
	}
	return w, false, nil
}

// ReleaseWire implements rpc.WireReleaser: it returns the pooled
// receive buffer the Data field aliases. Idempotent.
func (w WriteReq) ReleaseWire() { w.wb.Release() }

// ---- WriteResp ----

// WireTag implements rpc.WireMessage.
func (w WriteResp) WireTag() byte { return TagWriteResp }

// AppendWireHeader implements rpc.WireMessage.
func (w WriteResp) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendBool(dst, w.OK)
	return rpc.AppendString(dst, w.Err)
}

// AppendWirePayloads implements rpc.WireMessage.
func (w WriteResp) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

func decodeWriteResp(header, payload []byte, _ *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	w := WriteResp{OK: hc.Bool(), Err: hc.String()}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: WriteResp", rpc.ErrBadMessage)
	}
	return w, false, nil
}

// ---- WriteVReq ----

// WireTag implements rpc.WireMessage.
func (w WriteVReq) WireTag() byte { return TagWriteVReq }

// AppendWireHeader implements rpc.WireMessage.
func (w WriteVReq) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendString(dst, string(w.VDisk))
	dst = rpc.AppendBool(dst, w.Forwarded)
	dst = appendVarint(dst, w.ExpireAt)
	dst = appendUvarint(dst, w.LeaseID)
	dst = appendVarint(dst, w.Epoch)
	dst = appendUvarint(dst, uint64(len(w.Extents)))
	for _, e := range w.Extents {
		dst = appendVarint(dst, e.Chunk)
		dst = appendUvarint(dst, uint64(e.Off))
		dst = appendDataLen(dst, e.Data, e.Data != nil)
	}
	return dst
}

// AppendWirePayloads implements rpc.WireMessage.
func (w WriteVReq) AppendWirePayloads(dst [][]byte) ([][]byte, int) {
	total := 0
	for _, e := range w.Extents {
		if len(e.Data) > 0 {
			dst = append(dst, e.Data)
			total += len(e.Data)
		}
	}
	return dst, total
}

func decodeWriteVReq(header, payload []byte, rb *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	pc := rpc.Cursor{Data: payload}
	w := WriteVReq{VDisk: VDiskID(hc.String())}
	w.Forwarded = hc.Bool()
	w.ExpireAt = hc.Varint()
	w.LeaseID = hc.Uvarint()
	w.Epoch = hc.Varint()
	n := hc.Count(3)
	if !hc.Bad && n > 0 {
		w.Extents = make([]WriteVExtent, n)
		for i := range w.Extents {
			w.Extents[i].Chunk = hc.Varint()
			w.Extents[i].Off = int(hc.Uvarint())
			w.Extents[i].Data = takeData(&hc, &pc)
		}
	}
	if !hc.Done() || !pc.Done() {
		return nil, false, fmt.Errorf("%w: WriteVReq", rpc.ErrBadMessage)
	}
	if len(payload) > 0 {
		w.wb = rb
		return w, true, nil
	}
	return w, false, nil
}

// ReleaseWire implements rpc.WireReleaser: it returns the pooled
// receive buffer the per-extent Data fields alias. Idempotent.
func (w WriteVReq) ReleaseWire() { w.wb.Release() }

// ---- WriteVResp ----

// WireTag implements rpc.WireMessage.
func (w WriteVResp) WireTag() byte { return TagWriteVResp }

// AppendWireHeader implements rpc.WireMessage.
func (w WriteVResp) AppendWireHeader(dst []byte) []byte {
	dst = rpc.AppendBool(dst, w.OK)
	return rpc.AppendString(dst, w.Err)
}

// AppendWirePayloads implements rpc.WireMessage.
func (w WriteVResp) AppendWirePayloads(dst [][]byte) ([][]byte, int) { return dst, 0 }

func decodeWriteVResp(header, payload []byte, _ *rpc.RecvBuf) (any, bool, error) {
	hc := rpc.Cursor{Data: header}
	w := WriteVResp{OK: hc.Bool(), Err: hc.String()}
	if !hc.Done() || len(payload) != 0 {
		return nil, false, fmt.Errorf("%w: WriteVResp", rpc.ErrBadMessage)
	}
	return w, false, nil
}

func init() {
	rpc.RegisterWireDecoder(TagReadReq, decodeReadReq)
	rpc.RegisterWireDecoder(TagReadResp, decodeReadResp)
	rpc.RegisterWireDecoder(TagReadVReq, decodeReadVReq)
	rpc.RegisterWireDecoder(TagReadVResp, decodeReadVResp)
	rpc.RegisterWireDecoder(TagWriteReq, decodeWriteReq)
	rpc.RegisterWireDecoder(TagWriteResp, decodeWriteResp)
	rpc.RegisterWireDecoder(TagWriteVReq, decodeWriteVReq)
	rpc.RegisterWireDecoder(TagWriteVResp, decodeWriteVResp)
}
