package petal

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"frangipani/internal/bufpool"
	"frangipani/internal/obs"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// Client is the Petal device driver: it "hides the distributed nature
// of Petal, making Petal look like an ordinary local disk to higher
// layers" (§2.1). It routes chunk operations to replicas, fails over
// when a server is down, and refreshes its view of the global state
// when routing goes stale.
type Client struct {
	name    string
	ep      *rpc.Endpoint
	clock   *sim.Clock
	servers []string

	mu      sync.Mutex
	state   GlobalState
	stateOK bool
	// refreshWait single-flights state refreshes: concurrent callers
	// wait on the in-flight probe instead of stampeding every server.
	refreshWait chan struct{}
	// refreshRR rotates the single-probe target so repeated refreshes
	// sample different servers (a lagging server cannot pin us to a
	// stale view forever).
	refreshRR atomic.Uint64

	// leaseInfo, when set, stamps writes with the holder's lease
	// expiration and id so guarded Petal servers can reject writes
	// from expired leases (§6's hazard fix).
	leaseInfo func() (expireAt int64, leaseID uint64)

	// opDeadline bounds one logical chunk operation including retries.
	opDeadline sim.Duration
	// parallelism bounds concurrent chunk transfers for large I/Os.
	parallelism int

	// balanceReads spreads first-choice read routing across both alive
	// replicas (Petal serves reads from either copy, §4 of the Petal
	// paper). Benchmarks switch it off to measure the primary-only
	// baseline. 0 = off, 1 = on.
	balanceReads atomic.Int32
	// rr breaks least-outstanding ties round-robin so equally loaded
	// replicas alternate instead of sticking to the primary.
	rr atomic.Uint64
	// randIntn supplies deterministic jitter for retry backoff.
	randIntn func(int) int

	// Data-path statistics (benchmarks compare the scatter-gather
	// paths against per-chunk RPCs by count, and read balancing by the
	// primary/backup split).
	writeRPCs     *obs.Counter // WriteReq calls issued
	writeVRPCs    *obs.Counter // WriteVReq calls issued
	writeVExtents *obs.Counter // extents carried by WriteVReq calls
	readRPCs      *obs.Counter // ReadReq calls issued
	readVRPCs     *obs.Counter // ReadVReq calls issued
	readVExtents  *obs.Counter // extents carried by ReadVReq calls
	readPrimary   *obs.Counter // first-choice read routings to the primary
	readBackup    *obs.Counter // first-choice read routings to the backup
	balancePct    *obs.Gauge   // percent of first-choice reads sent to the backup

	// Control-plane refresh statistics: at big N the O(N) full-state
	// sweep was itself a scaling cost, so the incremental path's hit
	// rates are first-class observables.
	refreshRPCs    *obs.Counter // StateReq calls issued
	refreshSkipped *obs.Counter // refreshes short-circuited (version already advanced / coalesced)
	refreshFanout  *obs.Counter // probe failures that forced a bounded fan-out
	refreshUnch    *obs.Counter // probes answered Unchanged (no state shipped)

	// infl tracks this client's outstanding data-path RPCs per server,
	// the load signal for least-outstanding read routing.
	infl map[string]*obs.Gauge

	// Observability; set once at construction.
	now    obs.NowFunc
	tr     *obs.Tracer
	opLats map[string]*obs.Histogram // read/readv/write/writev latency
	acct   *obs.AccountTable         // per-principal RPC attribution
	jr     *obs.Journal              // flight recorder (nil-safe)
}

// ClientStats counts data-path RPC traffic.
type ClientStats struct {
	// WriteRPCs is the number of single-extent WriteReq calls issued
	// (including retries and fallbacks).
	WriteRPCs int64
	// WriteVRPCs is the number of scatter-gather WriteVReq calls.
	WriteVRPCs int64
	// WriteVExtents is the total extents carried by those calls.
	WriteVExtents int64
	// ReadRPCs is the number of single-extent ReadReq calls issued
	// (including retries and per-extent failovers).
	ReadRPCs int64
	// ReadVRPCs is the number of scatter-gather ReadVReq calls.
	ReadVRPCs int64
	// ReadVExtents is the total extents carried by those calls.
	ReadVExtents int64
	// ReadPrimary/ReadBackup split first-choice read routing decisions
	// between the two replicas of each chunk.
	ReadPrimary int64
	ReadBackup  int64
}

// Stats snapshots the client's data-path counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		WriteRPCs:     c.writeRPCs.Value(),
		WriteVRPCs:    c.writeVRPCs.Value(),
		WriteVExtents: c.writeVExtents.Value(),
		ReadRPCs:      c.readRPCs.Value(),
		ReadVRPCs:     c.readVRPCs.Value(),
		ReadVExtents:  c.readVExtents.Value(),
		ReadPrimary:   c.readPrimary.Value(),
		ReadBackup:    c.readBackup.Value(),
	}
}

// ReadRPCTotal is the total Petal read round trips this client has
// issued, counting a scatter-gather batch as one RPC.
func (s ClientStats) ReadRPCTotal() int64 { return s.ReadRPCs + s.ReadVRPCs }

// ClientAddr returns the network name of a machine's Petal driver.
func ClientAddr(machine string) string { return machine + ".petalc" }

// NewClient creates a Petal driver on the named machine. servers is
// the Petal server list.
func NewClient(w *sim.World, machine string, servers []string) *Client {
	return NewClientWithCarrier(w, machine, servers, rpc.SimCarrier{Net: w.Net})
}

// NewClientWithCarrier creates a Petal driver on an explicit message
// carrier (TCP for daemon deployments, sim for tests).
func NewClientWithCarrier(w *sim.World, machine string, servers []string, carrier rpc.Carrier) *Client {
	c := &Client{
		name:          machine,
		clock:         w.Clock,
		servers:       append([]string(nil), servers...),
		opDeadline:    30 * time.Second,
		parallelism:   8,
		randIntn:      w.RandIntn,
		writeRPCs:     obs.NewCounter(),
		writeVRPCs:    obs.NewCounter(),
		writeVExtents: obs.NewCounter(),
		readRPCs:      obs.NewCounter(),
		readVRPCs:     obs.NewCounter(),
		readVExtents:  obs.NewCounter(),
		readPrimary:    obs.NewCounter(),
		readBackup:     obs.NewCounter(),
		balancePct:     obs.NewGauge(),
		refreshRPCs:    obs.NewCounter(),
		refreshSkipped: obs.NewCounter(),
		refreshFanout:  obs.NewCounter(),
		refreshUnch:    obs.NewCounter(),
		infl:           make(map[string]*obs.Gauge, len(servers)),
	}
	c.balanceReads.Store(1)
	if reg := w.Obs; reg != nil {
		c.writeRPCs = reg.Counter("petal.write.rpcs#" + machine)
		c.writeVRPCs = reg.Counter("petal.writev.rpcs#" + machine)
		c.writeVExtents = reg.Counter("petal.writev.extents#" + machine)
		c.readRPCs = reg.Counter("petal.read.rpcs#" + machine)
		c.readVRPCs = reg.Counter("petal.readv.rpcs#" + machine)
		c.readVExtents = reg.Counter("petal.readv.extents#" + machine)
		c.readPrimary = reg.Counter("petal.read.primary#" + machine)
		c.readBackup = reg.Counter("petal.read.backup#" + machine)
		c.balancePct = reg.Gauge("petal.read.balance.pct#" + machine)
		c.refreshRPCs = reg.Counter("petal.refresh.rpcs#" + machine)
		c.refreshSkipped = reg.Counter("petal.refresh.skipped#" + machine)
		c.refreshFanout = reg.Counter("petal.refresh.fanout#" + machine)
		c.refreshUnch = reg.Counter("petal.refresh.unchanged#" + machine)
		for _, s := range servers {
			c.infl[s] = reg.Gauge("petal.client.inflight#" + machine + "." + s)
		}
		c.now = reg.Now
		c.tr = reg.Tracer()
		c.acct = reg.Accounts()
		c.jr = reg.Journal(machine)
		c.opLats = map[string]*obs.Histogram{
			"read":   reg.Histogram("petal.read.latency#" + machine),
			"readv":  reg.Histogram("petal.readv.latency#" + machine),
			"write":  reg.Histogram("petal.write.latency#" + machine),
			"writev": reg.Histogram("petal.writev.latency#" + machine),
		}
	} else {
		for _, s := range servers {
			c.infl[s] = obs.NewGauge()
		}
	}
	c.ep = rpc.NewEndpoint(ClientAddr(machine), carrier, w.Clock, nil)
	return c
}

// instr wraps one client operation in a latency histogram and — when
// the caller is inside a traced operation — a child span, so the
// operation appears in cross-layer trace trees and the rpc layer
// propagates its context to the Petal servers.
func (c *Client) instr(op string, fn func() error) error {
	if c.now == nil {
		return fn()
	}
	start := c.now()
	var err error
	if sp := c.tr.Child("petal", op); sp != nil {
		obs.With(sp, func() { err = fn() })
		sp.Done()
	} else {
		err = fn()
	}
	c.opLats[op].Record(c.now() - start)
	return err
}

// SetLeaseInfo installs the callback used to stamp writes with lease
// information. Pass nil to disable stamping.
func (c *Client) SetLeaseInfo(f func() (expireAt int64, leaseID uint64)) {
	c.mu.Lock()
	c.leaseInfo = f
	c.mu.Unlock()
}

// Close releases the client's endpoint.
func (c *Client) Close() { c.ep.Close() }

// refreshState refreshes the routing view unconditionally (legacy
// entry point; admin paths use it after mutating the directory).
func (c *Client) refreshState() error { return c.refreshSince(-1) }

// refreshSince refreshes the global-state view, version-aware and
// incremental. usedVersion is the version the caller routed with when
// it hit trouble (-1 for "just refresh"):
//
//   - If the cached view has already advanced past usedVersion —
//     another caller refreshed first — skip the network entirely.
//   - Concurrent refreshes coalesce onto one in-flight probe.
//   - The probe itself asks ONE server (rotating round-robin) with
//     HaveVersion, so the common answer is a tiny Unchanged reply;
//     only a failed or unusable probe falls back to a bounded
//     parallel fan-out over the remaining servers.
//
// The old implementation swept every server sequentially on every
// refresh — an O(N) wall-clock and message cost per failover that
// dominated control traffic at big N.
func (c *Client) refreshSince(usedVersion int64) error {
	c.mu.Lock()
	for {
		if c.stateOK && c.state.Version > usedVersion {
			c.mu.Unlock()
			c.refreshSkipped.Add(1)
			return nil
		}
		ch := c.refreshWait
		if ch == nil {
			break
		}
		// A refresh is in flight: wait for it, then re-judge. The
		// waiters coalesce rather than stampeding the servers.
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
		if c.stateOK {
			c.mu.Unlock()
			c.refreshSkipped.Add(1)
			return nil
		}
		// The in-flight refresh failed and we never had a view; fall
		// through to run our own probe (refreshWait is nil again, or
		// someone else started one and we wait again).
	}
	ch := make(chan struct{})
	c.refreshWait = ch
	have := int64(-1)
	if c.stateOK {
		have = c.state.Version
	}
	c.mu.Unlock()

	err := c.doRefresh(have)

	c.mu.Lock()
	c.refreshWait = nil
	c.mu.Unlock()
	close(ch)
	return err
}

// doRefresh runs one refresh: a single version-aware probe, then a
// bounded fan-out only if the probe fails.
func (c *Client) doRefresh(have int64) error {
	n := len(c.servers)
	if n == 0 {
		return ErrUnavailable
	}
	probe := c.servers[int(c.refreshRR.Add(1)-1)%n]
	c.refreshRPCs.Add(1)
	resp, err := c.ep.Call(DataAddr(probe), StateReq{HaveVersion: have}, dataTimeout)
	if err == nil {
		if sr, ok := resp.(StateResp); ok && sr.OK {
			if sr.Unchanged {
				// Server is no newer than us; nothing to adopt. Retry
				// loops that still fail will rotate to other servers.
				c.refreshUnch.Add(1)
				return nil
			}
			c.adoptState(sr.State)
			return nil
		}
	}
	// Probe failed: bounded parallel fan-out over the remaining
	// servers, adopting the best view any of them returns. Servers
	// apply Paxos decisions asynchronously, so keeping the highest
	// version guards against a lagging straggler.
	c.refreshFanout.Add(1)
	rest := make([]string, 0, n-1)
	for _, s := range c.servers {
		if s != probe {
			rest = append(rest, s)
		}
	}
	if len(rest) == 0 {
		return ErrUnavailable
	}
	var rmu sync.Mutex
	got, gotState := false, false
	var best GlobalState
	_ = boundedPar(4, rest, func(s string) error {
		c.refreshRPCs.Add(1)
		resp, err := c.ep.Call(DataAddr(s), StateReq{HaveVersion: have}, dataTimeout)
		if err != nil {
			return nil
		}
		sr, ok := resp.(StateResp)
		if !ok || !sr.OK {
			return nil
		}
		rmu.Lock()
		got = true // a server current with us still counts as an answer
		if !sr.Unchanged && (!gotState || sr.State.Version > best.Version) {
			best = sr.State
			gotState = true
		}
		rmu.Unlock()
		return nil
	})
	if !got {
		return ErrUnavailable
	}
	if gotState {
		c.adoptState(best)
	}
	return nil
}

// adoptState installs a fetched view unless the cached one is newer.
func (c *Client) adoptState(st GlobalState) {
	c.mu.Lock()
	if !c.stateOK || st.Version >= c.state.Version {
		c.state = st
		c.stateOK = true
	}
	c.mu.Unlock()
}

func (c *Client) getState() (GlobalState, error) {
	c.mu.Lock()
	ok := c.stateOK
	st := c.state
	c.mu.Unlock()
	if ok {
		return st, nil
	}
	if err := c.refreshState(); err != nil {
		return GlobalState{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state, nil
}

// targetList holds replica routing candidates without heap
// allocation: a chunk has at most two replicas, each of which can
// appear once alive-filtered and once unconditionally.
type targetList struct {
	srv [4]string
	n   int
}

func (t *targetList) add(s string, alive map[string]bool, mustBeAlive bool) {
	if s == "" {
		return
	}
	if mustBeAlive && !alive[s] {
		return
	}
	for i := 0; i < t.n; i++ {
		if t.srv[i] == s {
			return
		}
	}
	t.srv[t.n] = s
	t.n++
}

// list returns the candidates in preference order.
func (t *targetList) list() []string { return t.srv[:t.n] }

// targets fills tl with the replica servers for a chunk in write and
// failover preference order: alive primary, then alive backup, then
// both regardless (the state may be stale). The caller supplies the
// targetList so the hot path stays allocation-free.
func (c *Client) targets(st *GlobalState, v VDiskID, chunk int64, tl *targetList) {
	p1, p2 := st.replicas(v, chunk)
	tl.n = 0
	tl.add(p1, st.Alive, true)
	tl.add(p2, st.Alive, true)
	tl.add(p1, st.Alive, false)
	tl.add(p2, st.Alive, false)
}

// SetReadBalance toggles read load balancing across replicas. On (the
// default), first-choice read routing spreads over both alive copies;
// off, reads always prefer the primary — the pre-optimization
// behaviour, kept as a benchmark baseline.
func (c *Client) SetReadBalance(on bool) {
	var v int32
	if on {
		v = 1
	}
	c.balanceReads.Store(v)
}

// readTargets fills tl with replica candidates for a read. When both
// replicas are alive and balancing is on, the first choice is the
// replica with fewer of this client's RPCs outstanding (Petal serves
// reads from either copy); ties alternate round-robin. The losing
// replica stays second, so per-extent failover still reaches every
// copy, and writes keep the primary-first order from targets.
func (c *Client) readTargets(st *GlobalState, v VDiskID, chunk int64, tl *targetList) {
	p1, p2 := st.replicas(v, chunk)
	if c.balanceReads.Load() == 0 || p1 == "" || p2 == "" || p1 == p2 ||
		!st.Alive[p1] || !st.Alive[p2] {
		c.targets(st, v, chunk, tl)
		return
	}
	first, second := p1, p2
	o1, o2 := c.infl[p1].Value(), c.infl[p2].Value()
	if o2 < o1 || (o1 == o2 && c.rr.Add(1)%2 == 1) {
		first, second = p2, p1
	}
	if first == p1 {
		c.readPrimary.Add(1)
	} else {
		c.readBackup.Add(1)
	}
	if p, b := c.readPrimary.Value(), c.readBackup.Value(); p+b > 0 {
		c.balancePct.Set(b * 100 / (p + b))
	}
	tl.n = 0
	tl.add(first, st.Alive, false)
	tl.add(second, st.Alive, false)
}

// Retry backoff for chunk operations: exponential from retryBase,
// capped at retryCap, with jitter in [d/2, d) so clients hammering a
// recovering server decorrelate. The fixed 100 ms pause this replaces
// both overloaded servers during short outages (every client retried
// in lockstep) and wasted most of the window when routing recovered
// quickly.
const (
	retryBase = 10 * time.Millisecond
	retryCap  = 640 * time.Millisecond
)

// backoffDelay computes the pause before retry number attempt
// (0-based): exponential growth capped at retryCap, jittered into
// [d/2, d) when a randomness source is supplied.
func backoffDelay(attempt int, randIntn func(int) int) sim.Duration {
	d := retryBase
	for i := 0; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	if randIntn != nil {
		d = d/2 + sim.Duration(randIntn(int(d/2)))
	}
	return d
}

// retryPause sleeps before retry number attempt, never past deadline.
func (c *Client) retryPause(attempt int, deadline sim.Time) {
	d := backoffDelay(attempt, c.randIntn)
	left := sim.Duration(deadline - c.clock.Now())
	if left <= 0 {
		return
	}
	if d > left {
		d = left
	}
	c.jr.Record("petal", "io", "backoff", uint64(attempt), int64(d), "")
	c.clock.Sleep(d)
}

// call issues one data-path RPC, tracking the per-server outstanding
// gauge that read routing balances on.
func (c *Client) call(srv string, req any, timeout sim.Duration) (any, error) {
	g := c.infl[srv]
	g.Add(1)
	// Every data-path RPC (including retries and failovers) is charged
	// to the principal whose operation issued it.
	c.acct.RPC(obs.CurrentPrincipal(), 1)
	resp, err := c.ep.Call(DataAddr(srv), req, timeout)
	g.Add(-1)
	return resp, err
}

// readChunk performs one intra-chunk read with failover and state
// refresh until the op deadline.
func (c *Client) readChunk(v VDiskID, chunk int64, off, length int, dst []byte) error {
	deadline := c.clock.Now() + sim.Time(c.opDeadline)
	var lastErr error
	var tl targetList
	routedVer := int64(-1)
	for attempt := 0; ; attempt++ {
		st, err := c.getState()
		if err == nil {
			routedVer = st.Version
			c.readTargets(&st, v, chunk, &tl)
			for _, srv := range tl.list() {
				c.readRPCs.Add(1)
				resp, err := c.call(srv, ReadReq{VDisk: v, Chunk: chunk, Off: off, Len: length}, dataTimeout)
				if err != nil {
					lastErr = err
					c.jr.Record("petal", "read", "failover", uint64(chunk), 0, srv)
					continue
				}
				rr, ok := resp.(ReadResp)
				if !ok {
					continue
				}
				if !rr.OK {
					rpc.Release(rr)
					if rr.Err == ErrNoSuchVDisk.Error() {
						// Possibly stale directory: refresh and retry.
						break
					}
					// Replica-local failure (e.g. a CRC error): fall
					// over to the other replica, which "can ordinarily
					// recover it" (§4).
					lastErr = fmt.Errorf("petal read: %s", rr.Err)
					c.jr.Record("petal", "read", "replica-fail", uint64(chunk), 0, srv)
					continue
				}
				// A short (or nil, for a hole) response must not leave
				// stale bytes in the tail of dst.
				n := copy(dst, rr.Data)
				clear(dst[n:])
				// On TCP the data aliases a pooled receive buffer;
				// recycle it now that it has been copied out.
				rpc.Release(rr)
				return nil
			}
		}
		if c.clock.Now() >= deadline {
			if lastErr != nil {
				return lastErr
			}
			return ErrUnavailable
		}
		// Version-aware: if another caller already refreshed past the
		// view we routed with, the retry reuses it without touching
		// the network (petal.refresh.skipped counts these).
		_ = c.refreshSince(routedVer)
		c.retryPause(attempt, deadline)
	}
}

// writeChunk performs one intra-chunk write with failover.
func (c *Client) writeChunk(v VDiskID, chunk int64, off int, data []byte) error {
	// The in-memory transport passes payloads by reference and the
	// caller may keep mutating its buffer (e.g. a cache page) after we
	// return; snapshot the bytes here, where a real driver would DMA.
	// The snapshot comes from the shared size-classed pool, so the
	// write path recycles a small working set of chunk buffers.
	bufp := bufpool.Get(len(data))
	snap := *bufp
	copy(snap, data)
	leaked := false
	err := c.writeChunkSnap(v, chunk, off, snap, &leaked)
	if !leaked {
		// No call attempt timed out, so no in-flight message can still
		// reference the snapshot; safe to recycle.
		bufpool.Put(bufp)
	}
	return err
}

func (c *Client) writeChunkSnap(v VDiskID, chunk int64, off int, snap []byte, leaked *bool) error {
	c.mu.Lock()
	li := c.leaseInfo
	c.mu.Unlock()
	req := WriteReq{VDisk: v, Chunk: chunk, Off: off, Data: snap}
	if li != nil {
		req.ExpireAt, req.LeaseID = li()
	}
	deadline := c.clock.Now() + sim.Time(c.opDeadline)
	var tl targetList
	routedVer := int64(-1)
	for attempt := 0; ; attempt++ {
		st, err := c.getState()
		if err == nil {
			routedVer = st.Version
			// Stamp the epoch we are writing at so replicas lagging a
			// snapshot wait for Paxos catch-up instead of writing into
			// the frozen epoch.
			if meta, ok := st.VDisks[v]; ok && !meta.ReadOnly {
				req.Epoch = meta.Epoch
			} else {
				req.Epoch = 0
			}
			c.targets(&st, v, chunk, &tl)
			for _, srv := range tl.list() {
				c.writeRPCs.Add(1)
				resp, err := c.call(srv, req, dataTimeout)
				if err != nil {
					// The message may still be queued at the carrier and
					// delivered later; the snapshot cannot be recycled.
					*leaked = true
					c.jr.Record("petal", "write", "failover", uint64(chunk), 0, srv)
					continue
				}
				wr, ok := resp.(WriteResp)
				if !ok {
					continue
				}
				if wr.OK {
					return nil
				}
				switch wr.Err {
				case ErrNoSuchVDisk.Error(), ErrStaleEpoch.Error():
					// stale directory or epoch; refresh below
				case ErrLeaseExpired.Error():
					c.jr.Record("petal", "write", "lease-rejected", uint64(chunk), 0, srv)
					return ErrLeaseExpired
				default:
					return fmt.Errorf("petal write: %s", wr.Err)
				}
				break
			}
		}
		if c.clock.Now() >= deadline {
			return ErrUnavailable
		}
		_ = c.refreshSince(routedVer)
		c.retryPause(attempt, deadline)
	}
}

// span describes one chunk-aligned piece of a larger I/O.
type span struct {
	chunk  int64
	off    int
	length int
	bufOff int
}

func spans(off int64, length int) []span {
	var out []span
	bufOff := 0
	for length > 0 {
		chunk := off / ChunkSize
		inOff := int(off % ChunkSize)
		n := ChunkSize - inOff
		if n > length {
			n = length
		}
		out = append(out, span{chunk: chunk, off: inOff, length: n, bufOff: bufOff})
		off += int64(n)
		bufOff += n
		length -= n
	}
	return out
}

// boundedPar runs f over items with at most limit in flight,
// returning the first error.
func boundedPar[T any](limit int, items []T, f func(T) error) error {
	if len(items) == 1 {
		return f(items[0])
	}
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	errCh := make(chan error, len(items))
	// Span and principal bindings are per-goroutine: carry the
	// caller's trace context and principal into the workers so
	// fanned-out RPCs stay in the tree and stay attributed.
	cur := obs.Current()
	who := obs.CurrentPrincipal()
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(it T) {
			defer wg.Done()
			obs.With(cur, func() {
				obs.WithPrincipal(who, func() { errCh <- f(it) })
			})
			<-sem
		}(it)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachSpan runs f over the spans with bounded parallelism,
// returning the first error.
func (c *Client) forEachSpan(sp []span, f func(span) error) error {
	return boundedPar(c.parallelism, sp, f)
}

// Read fills p from the virtual disk at byte offset off. Uncommitted
// ranges read as zeros. Reads spanning several chunks go through the
// scatter-gather engine, so chunk spans that route to the same server
// collapse into one ReadVReq.
func (c *Client) Read(v VDiskID, off int64, p []byte) error {
	if off < 0 {
		return ErrBounds
	}
	return c.instr("read", func() error {
		sp := spans(off, len(p))
		if len(sp) <= 1 {
			if len(sp) == 0 {
				return nil
			}
			return c.readChunk(v, sp[0].chunk, sp[0].off, sp[0].length, p[:sp[0].length])
		}
		all := make([]rspan, len(sp))
		for i, s := range sp {
			all[i] = rspan{chunk: s.chunk, off: s.off, dst: p[s.bufOff : s.bufOff+s.length]}
		}
		return c.readRspans(v, all)
	})
}

// ReadExtent is one destination range of a scatter-gather read: Dst
// is filled from byte offset Off of the virtual disk.
type ReadExtent struct {
	Off int64
	Dst []byte
}

// rspan is one chunk-local piece of a scatter-gather read.
type rspan struct {
	chunk int64
	off   int
	dst   []byte
}

// Per-request caps for batched reads, mirroring the write-path caps:
// bound one RPC's simulated transfer time well under its timeout and
// keep message sizes sane.
const (
	readVMaxBytes   = 1 << 20
	readVMaxExtents = 256
	readVTimeout    = 15 * time.Second
)

// ReadV fills every extent's Dst, batching the reads into as few
// server round trips as possible: extents are split at chunk
// boundaries, grouped by their balanced read target, and dispatched
// with bounded parallelism. Extents a batch could not serve (replica
// failure, stale routing) fall over individually through the
// per-chunk read path, so ReadV is exactly as robust as issuing the
// extents through Read, and a failed extent never leaves stale bytes
// in its destination.
func (c *Client) ReadV(v VDiskID, extents []ReadExtent) error {
	for _, e := range extents {
		if e.Off < 0 {
			return ErrBounds
		}
	}
	return c.instr("readv", func() error {
		var all []rspan
		for _, e := range extents {
			for _, s := range spans(e.Off, len(e.Dst)) {
				all = append(all, rspan{chunk: s.chunk, off: s.off, dst: e.Dst[s.bufOff : s.bufOff+s.length]})
			}
		}
		return c.readRspans(v, all)
	})
}

// readRspans is the scatter-gather read engine shared by Read and
// ReadV.
func (c *Client) readRspans(v VDiskID, all []rspan) error {
	if len(all) == 0 {
		return nil
	}
	if len(all) == 1 {
		return c.readChunk(v, all[0].chunk, all[0].off, len(all[0].dst), all[0].dst)
	}
	st, err := c.getState()
	if err != nil {
		// No routing state: the per-chunk path refreshes and retries.
		return c.readFallback(v, all)
	}
	// Group spans by their balanced read target, splitting oversized
	// groups into size-capped batches.
	groups := make(map[string][]rspan)
	var tl targetList
	for _, sp := range all {
		c.readTargets(&st, v, sp.chunk, &tl)
		if tl.n == 0 {
			return ErrUnavailable
		}
		groups[tl.srv[0]] = append(groups[tl.srv[0]], sp)
	}
	type batch struct {
		srv string
		sps []rspan
	}
	var batches []batch
	for srv, sps := range groups {
		cur := batch{srv: srv}
		bytes := 0
		for _, sp := range sps {
			if len(cur.sps) > 0 && (bytes+len(sp.dst) > readVMaxBytes || len(cur.sps) >= readVMaxExtents) {
				batches = append(batches, cur)
				cur = batch{srv: srv}
				bytes = 0
			}
			cur.sps = append(cur.sps, sp)
			bytes += len(sp.dst)
		}
		batches = append(batches, cur)
	}
	return boundedPar(c.parallelism, batches, func(b batch) error {
		exts := make([]ReadVExtent, len(b.sps))
		for i, sp := range b.sps {
			exts[i] = ReadVExtent{Chunk: sp.chunk, Off: sp.off, Len: len(sp.dst)}
		}
		c.readVRPCs.Add(1)
		c.readVExtents.Add(int64(len(exts)))
		resp, err := c.call(b.srv, ReadVReq{VDisk: v, Extents: exts}, readVTimeout)
		if err == nil {
			if rr, ok := resp.(ReadVResp); ok {
				if rr.OK && len(rr.Results) == len(b.sps) {
					var failed []rspan
					for i, res := range rr.Results {
						if !res.OK {
							// Leave dst untouched here; the fallback fills
							// (or zeroes) it from the other replica.
							failed = append(failed, b.sps[i])
							continue
						}
						n := copy(b.sps[i].dst, res.Data)
						clear(b.sps[i].dst[n:])
					}
					// All extent data has been copied out; recycle the
					// pooled receive buffer it aliased on TCP.
					rpc.Release(rr)
					if len(failed) == 0 {
						return nil
					}
					// Per-extent failover: only the damaged extents retry
					// through the per-chunk path; served data is kept.
					return c.readFallback(v, failed)
				}
				rpc.Release(rr)
			}
		}
		// Server down, lagging, or unknown vdisk: per-chunk reads sort
		// it out with the usual failover and state refresh.
		return c.readFallback(v, b.sps)
	})
}

// readFallback reads chunk spans one by one through the failover
// path, with bounded parallelism.
func (c *Client) readFallback(v VDiskID, sps []rspan) error {
	return boundedPar(c.parallelism, sps, func(sp rspan) error {
		return c.readChunk(v, sp.chunk, sp.off, len(sp.dst), sp.dst)
	})
}

// Write stores p at byte offset off, committing chunks as needed.
func (c *Client) Write(v VDiskID, off int64, p []byte) error {
	if off < 0 {
		return ErrBounds
	}
	return c.instr("write", func() error {
		return c.forEachSpan(spans(off, len(p)), func(s span) error {
			return c.writeChunk(v, s.chunk, s.off, p[s.bufOff:s.bufOff+s.length])
		})
	})
}

// Extent is one contiguous byte range of a scatter-gather write.
type Extent struct {
	Off  int64
	Data []byte
}

// wspan is one chunk-local piece of a scatter-gather write.
type wspan struct {
	chunk int64
	off   int
	data  []byte
}

// Per-request caps for batched writes: bound the simulated transfer
// time of one RPC (network ~17 MB/s, disks ~6 MB/s) well under the
// data-path timeout, and keep message sizes sane.
const (
	writeVMaxBytes   = 1 << 20
	writeVMaxExtents = 256
	writeVTimeout    = 15 * time.Second
)

// WriteV stores every extent, batching them into as few server round
// trips as possible: extents are split at chunk boundaries, grouped
// by their primary replica, and dispatched with bounded parallelism —
// ideally one WriteVReq per primary. Each batch is applied under a
// single lease/epoch check at the server. A batch that fails (server
// down, stale routing) falls back to per-chunk writes with the usual
// failover, so WriteV is exactly as robust as issuing the extents
// through Write. The caller must not mutate extent data until WriteV
// returns.
func (c *Client) WriteV(v VDiskID, extents []Extent) error {
	return c.instr("writev", func() error { return c.writeV(v, extents) })
}

func (c *Client) writeV(v VDiskID, extents []Extent) error {
	var all []wspan
	for _, e := range extents {
		if e.Off < 0 {
			return ErrBounds
		}
		for _, s := range spans(e.Off, len(e.Data)) {
			all = append(all, wspan{chunk: s.chunk, off: s.off, data: e.Data[s.bufOff : s.bufOff+s.length]})
		}
	}
	if len(all) == 0 {
		return nil
	}
	if len(all) == 1 {
		return c.writeChunk(v, all[0].chunk, all[0].off, all[0].data)
	}
	st, err := c.getState()
	if err != nil {
		// No routing state: the per-chunk path refreshes and retries.
		return c.writeWspans(v, all)
	}
	c.mu.Lock()
	li := c.leaseInfo
	c.mu.Unlock()
	var expireAt int64
	var leaseID uint64
	if li != nil {
		expireAt, leaseID = li()
	}
	var epoch int64
	if meta, ok := st.VDisks[v]; ok && !meta.ReadOnly {
		epoch = meta.Epoch
	}
	// Group spans by primary replica, splitting oversized groups into
	// size-capped batches.
	groups := make(map[string][]wspan)
	var tl targetList
	for _, sp := range all {
		c.targets(&st, v, sp.chunk, &tl)
		if tl.n == 0 {
			return ErrUnavailable
		}
		groups[tl.srv[0]] = append(groups[tl.srv[0]], sp)
	}
	type batch struct {
		srv string
		sps []wspan
	}
	var batches []batch
	for srv, sps := range groups {
		cur := batch{srv: srv}
		bytes := 0
		for _, sp := range sps {
			if len(cur.sps) > 0 && (bytes+len(sp.data) > writeVMaxBytes || len(cur.sps) >= writeVMaxExtents) {
				batches = append(batches, cur)
				cur = batch{srv: srv}
				bytes = 0
			}
			cur.sps = append(cur.sps, sp)
			bytes += len(sp.data)
		}
		batches = append(batches, cur)
	}
	return boundedPar(c.parallelism, batches, func(b batch) error {
		exts := make([]WriteVExtent, len(b.sps))
		for i, sp := range b.sps {
			exts[i] = WriteVExtent{Chunk: sp.chunk, Off: sp.off, Data: sp.data}
		}
		req := WriteVReq{VDisk: v, Extents: exts, ExpireAt: expireAt, LeaseID: leaseID, Epoch: epoch}
		c.writeVRPCs.Add(1)
		c.writeVExtents.Add(int64(len(exts)))
		resp, err := c.call(b.srv, req, writeVTimeout)
		if err == nil {
			if wr, ok := resp.(WriteVResp); ok {
				if wr.OK {
					return nil
				}
				if wr.Err == ErrLeaseExpired.Error() {
					return ErrLeaseExpired
				}
			}
		}
		// Server down, lagging, or mid-batch failure: per-chunk writes
		// sort out partial progress (chunk replays are idempotent).
		return c.writeWspans(v, b.sps)
	})
}

// writeWspans writes chunk spans one by one through the failover
// path, with bounded parallelism.
func (c *Client) writeWspans(v VDiskID, sps []wspan) error {
	return boundedPar(c.parallelism, sps, func(sp wspan) error {
		return c.writeChunk(v, sp.chunk, sp.off, sp.data)
	})
}

// admin submits a global-state command via any answering server.
func (c *Client) admin(cmd Command) error {
	var lastErr error = ErrUnavailable
	for _, s := range c.servers {
		resp, err := c.ep.Call(DataAddr(s), AdminReq{Cmd: cmd}, 120*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		ar, ok := resp.(AdminResp)
		if !ok {
			continue
		}
		if !ar.OK {
			return fmt.Errorf("petal admin: %s", ar.Err)
		}
		// The command advanced the directory version: refresh past the
		// view we held going in (skips if a rival refresh already did).
		c.mu.Lock()
		cur := int64(-1)
		if c.stateOK {
			cur = c.state.Version
		}
		c.mu.Unlock()
		_ = c.refreshSince(cur)
		return nil
	}
	return lastErr
}

// CreateVDisk creates a new writable virtual disk.
func (c *Client) CreateVDisk(id VDiskID) error { return c.admin(CmdCreateVDisk{ID: id}) }

// DeleteVDisk removes a virtual disk.
func (c *Client) DeleteVDisk(id VDiskID) error { return c.admin(CmdDeleteVDisk{ID: id}) }

// Snapshot creates a read-only, crash-consistent snapshot of parent
// named snap: "Petal allows a client to create an exact copy of a
// virtual disk at any point in time ... using copy-on-write
// techniques" (§8).
func (c *Client) Snapshot(parent, snap VDiskID) error {
	return c.admin(CmdSnapshot{Parent: parent, Snap: snap})
}

// Decommit frees physical storage backing [off, off+length) of the
// virtual disk. Only whole chunks fully inside the range are freed,
// matching Petal's 64 KB decommit granularity.
func (c *Client) Decommit(v VDiskID, off int64, length int64) error {
	first := (off + ChunkSize - 1) / ChunkSize
	last := (off+length)/ChunkSize - 1
	if last < first {
		return nil
	}
	// Every server sweeps its own committed chunks in the range; the
	// request is O(1) on the wire and O(committed) at each server.
	any := false
	for _, srv := range c.servers {
		resp, err := c.ep.Call(DataAddr(srv), DecommitReq{VDisk: v, FirstChunk: first, LastChunk: last}, dataTimeout)
		if err != nil {
			continue
		}
		if ar, ok := resp.(AdminResp); ok {
			if !ar.OK {
				return fmt.Errorf("petal decommit: %s", ar.Err)
			}
			any = true
		}
	}
	if !any {
		return ErrUnavailable
	}
	return nil
}

// ListChunks enumerates the committed chunk indexes of a vdisk by
// querying every server; restore tooling uses it to copy only
// committed space.
func (c *Client) ListChunks(v VDiskID) ([]int64, error) {
	seen := make(map[int64]bool)
	any := false
	for _, s := range c.servers {
		resp, err := c.ep.Call(DataAddr(s), ListChunksReq{VDisk: v}, dataTimeout)
		if err != nil {
			continue
		}
		if lr, ok := resp.(ListChunksResp); ok {
			any = true
			for _, ch := range lr.Chunks {
				seen[ch] = true
			}
		}
	}
	if !any {
		return nil, ErrUnavailable
	}
	out := make([]int64, 0, len(seen))
	for ch := range seen {
		out = append(out, ch)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// State returns the client's (possibly refreshed) view of the global
// state.
func (c *Client) State() (GlobalState, error) { return c.getState() }

// VDisk binds a client and a disk id into a handle with a local-disk
// feel.
type VDisk struct {
	c  *Client
	id VDiskID
}

// Open returns a handle for the named virtual disk.
func (c *Client) Open(id VDiskID) *VDisk { return &VDisk{c: c, id: id} }

// ID returns the vdisk name.
func (d *VDisk) ID() VDiskID { return d.id }

// ReadAt fills p at byte offset off.
func (d *VDisk) ReadAt(p []byte, off int64) error { return d.c.Read(d.id, off, p) }

// WriteAt stores p at byte offset off.
func (d *VDisk) WriteAt(p []byte, off int64) error { return d.c.Write(d.id, off, p) }

// WriteV stores a set of extents with one scatter-gather call.
func (d *VDisk) WriteV(extents []Extent) error { return d.c.WriteV(d.id, extents) }

// ReadV fills a set of extents with one scatter-gather call.
func (d *VDisk) ReadV(extents []ReadExtent) error { return d.c.ReadV(d.id, extents) }
