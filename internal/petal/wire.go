package petal

import "frangipani/internal/rpc"

// Register every Petal wire type (and the Paxos command payloads the
// directory protocol submits) with the TCP carrier's codec, so the
// full Petal stack can run over real sockets as well as the
// simulated network.
func init() {
	for _, v := range []any{
		ReadReq{}, ReadResp{},
		ReadVExtent{}, ReadVExtentResult{}, ReadVReq{}, ReadVResp{},
		WriteReq{}, WriteResp{},
		WriteVExtent{}, WriteVReq{}, WriteVResp{},
		DecommitReq{},
		AdminReq{}, AdminResp{},
		StateReq{}, StateResp{},
		MissedListReq{}, MissedListResp{},
		ChunkFetchReq{}, ChunkFetchResp{},
		MissedAckReq{}, PushChunkReq{},
		ListChunksReq{}, ListChunksResp{},
		UsageReq{}, UsageResp{},
		CmdCreateVDisk{}, CmdDeleteVDisk{}, CmdSnapshot{}, CmdSetAlive{},
	} {
		rpc.RegisterType(v)
	}
}
