package petal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"frangipani/internal/sim"
)

// testCluster spins up n Petal servers plus one client on a fresh
// world.
type testCluster struct {
	w       *sim.World
	servers []*Server
	client  *Client
}

func newTestCluster(t *testing.T, n int, mutate func(*ServerConfig)) *testCluster {
	t.Helper()
	w := sim.NewWorld(200, 3)
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("p%d", i))
	}
	cfg := DefaultServerConfig(64 << 20) // 64 MB per disk
	cfg.NumDisks = 3
	// Timer granularity: at high compression, sub-millisecond real
	// periods are unreliable, so widen the detector timing in tests.
	cfg.HeartbeatEvery = 2 * time.Second
	cfg.SuspectAfter = 10 * time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	tc := &testCluster{w: w}
	for _, name := range names {
		tc.servers = append(tc.servers, NewServer(w, name, names, cfg))
	}
	tc.client = NewClient(w, "ws0", names)
	t.Cleanup(func() {
		tc.client.Close()
		for _, s := range tc.servers {
			s.Close()
		}
		w.Stop()
	})
	return tc
}

func (tc *testCluster) mustCreate(t *testing.T, id VDiskID) *VDisk {
	t.Helper()
	if err := tc.client.CreateVDisk(id); err != nil {
		t.Fatalf("create vdisk: %v", err)
	}
	return tc.client.Open(id)
}

func patternBuf(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*7)
	}
	return b
}

func TestVDiskReadWriteRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	data := patternBuf(10000, 1)
	if err := d.WriteAt(data, 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestVDiskCrossChunkIO(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	// Span 3 chunks.
	data := patternBuf(2*ChunkSize+1234, 9)
	off := int64(ChunkSize - 100)
	if err := d.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk round trip mismatch")
	}
}

func TestVDiskHolesReadZero(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	if err := d.WriteAt([]byte{0xFF}, 10*ChunkSize); err != nil {
		t.Fatal(err)
	}
	// A far-away hole, and the tail of the written chunk.
	got := make([]byte, 100)
	if err := d.ReadAt(got, 500*ChunkSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole did not read as zeros")
		}
	}
}

func TestSparseCommitAccounting(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	if err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	// One byte written: exactly one chunk committed on each of two
	// replicas ("physical storage allocated only on demand", §1).
	total := int64(0)
	for _, s := range tc.servers {
		total += s.CommittedBytes()
	}
	if total != 2*ChunkSize {
		t.Fatalf("committed %d bytes, want %d", total, 2*ChunkSize)
	}
	// Writing at a huge offset commits just one more chunk pair: the
	// 2^64 address space is sparse.
	if err := d.WriteAt([]byte{1}, int64(1)<<50); err != nil {
		t.Fatal(err)
	}
	// Anti-entropy may still be repairing a transiently-missed
	// forward; poll until both replicas of both chunks are committed.
	waitUntil(t, 60*time.Second, func() bool {
		total = 0
		for _, s := range tc.servers {
			total += s.CommittedBytes()
		}
		return total == 4*ChunkSize
	})
}

func TestDecommitFreesSpace(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	data := patternBuf(4*ChunkSize, 2)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	before := int64(0)
	for _, s := range tc.servers {
		before += s.CommittedBytes()
	}
	if err := tc.client.Decommit("vol", 0, 4*ChunkSize); err != nil {
		t.Fatal(err)
	}
	after := int64(0)
	for _, s := range tc.servers {
		after += s.CommittedBytes()
	}
	if after >= before {
		t.Fatalf("decommit freed nothing: before=%d after=%d", before, after)
	}
	// Decommitted range reads as zeros.
	got := make([]byte, 1000)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("decommitted range not zero")
		}
	}
}

func TestVDiskErrors(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	if err := tc.client.CreateVDisk("vol"); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.CreateVDisk("vol"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if err := tc.client.Read("ghost", 0, make([]byte, 10)); err == nil {
		t.Fatal("read of missing vdisk succeeded")
	}
	if err := tc.client.DeleteVDisk("vol"); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Write("vol", 0, []byte{1}); err == nil {
		t.Fatal("write to deleted vdisk succeeded")
	}
}

func TestReadFailoverOnCrash(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	data := patternBuf(3*ChunkSize, 5)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Crash one server; every chunk still has a live replica.
	tc.servers[1].Crash()
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read mismatch")
	}
}

func TestWriteFailoverAndRejoinSync(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")

	// Crash p1 and wait until the survivors have declared it dead so
	// writes are routed (and missed writes recorded) against fresh
	// state.
	tc.servers[1].Crash()
	waitUntil(t, 20*time.Second, func() bool {
		st := tc.servers[0].State()
		return !st.Alive["p1"]
	})

	data := patternBuf(8*ChunkSize, 7)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatalf("write with one server down: %v", err)
	}

	// Restart p1: it must resync missed chunks and come back alive.
	tc.servers[1].Restart()
	waitUntil(t, 60*time.Second, func() bool {
		st := tc.servers[0].State()
		return st.Alive["p1"]
	})

	// Now crash both OTHER servers. Chunks replicated on p1 must be
	// served — correct resync is the only way that read can succeed —
	// while chunks whose replica pair is (p0,p2) have no live copy
	// and must be unavailable, matching §6: "parts of the Petal
	// virtual disk will be inaccessible if there is no replica in the
	// majority partition".
	st := tc.servers[1].State()
	tc.servers[0].Crash()
	tc.servers[2].Crash()
	sawOnP1 := 0
	for c := int64(0); c < 8; c++ {
		r1, r2 := st.replicas("vol", c)
		got := make([]byte, ChunkSize)
		err := d.ReadAt(got, c*ChunkSize)
		if r1 == "p1" || r2 == "p1" {
			if err != nil {
				t.Fatalf("chunk %d on rejoined server unreadable: %v", c, err)
			}
			if !bytes.Equal(got, data[c*ChunkSize:(c+1)*ChunkSize]) {
				t.Fatalf("chunk %d stale after rejoin", c)
			}
			sawOnP1++
		} else if err == nil {
			t.Fatalf("chunk %d has no live replica but read succeeded", c)
		}
	}
	if sawOnP1 == 0 {
		t.Fatal("test vacuous: no chunk replicated on p1")
	}
}

func TestCRCErrorMaskedByReplication(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	data := patternBuf(ChunkSize, 3)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt every sector of every disk on the primary replica of
	// chunk 0.
	st := tc.servers[0].State()
	primary, _ := st.replicas("vol", 0)
	for _, s := range tc.servers {
		if s.Name() != primary {
			continue
		}
		for _, disk := range s.Disks() {
			for sec := int64(0); sec < ChunkSize/sim.SectorSize; sec++ {
				disk.CorruptSector(sec)
			}
		}
	}
	got := make([]byte, ChunkSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("read with corrupt primary: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned corrupt data")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	v1 := patternBuf(2*ChunkSize, 1)
	if err := d.WriteAt(v1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Snapshot("vol", "snap1"); err != nil {
		t.Fatal(err)
	}
	// Overwrite after the snapshot.
	v2 := patternBuf(2*ChunkSize, 99)
	if err := d.WriteAt(v2, 0); err != nil {
		t.Fatal(err)
	}
	// Parent sees new data; snapshot sees old data.
	got := make([]byte, len(v2))
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatal("parent does not see new data")
	}
	snap := tc.client.Open("snap1")
	if err := snap.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatal("snapshot does not see frozen data")
	}
	// Snapshots are read-only.
	if err := snap.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write to snapshot succeeded")
	}
	// Data written only after the snapshot is invisible to it.
	if err := d.WriteAt([]byte{0xEE}, 10*ChunkSize); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if err := snap.ReadAt(one, 10*ChunkSize); err != nil {
		t.Fatal(err)
	}
	if one[0] != 0 {
		t.Fatal("snapshot sees post-snapshot write")
	}
}

func TestSnapshotOfSnapshotAndChain(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	d := tc.mustCreate(t, "vol")
	for i := 1; i <= 3; i++ {
		if err := d.WriteAt(patternBuf(1000, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
		if err := tc.client.Snapshot("vol", VDiskID(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		got := make([]byte, 1000)
		if err := tc.client.Open(VDiskID(fmt.Sprintf("s%d", i))).ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, patternBuf(1000, byte(i))) {
			t.Fatalf("snapshot s%d does not hold generation %d", i, i)
		}
	}
	// Snapshotting a snapshot is rejected (read-only).
	if err := tc.client.Snapshot("s1", "s1s"); err == nil {
		t.Fatal("snapshot of a snapshot succeeded")
	}
}

func TestWriteGuardRejectsExpiredLease(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *ServerConfig) {
		cfg.WriteGuard = func(req WriteReq, now int64) bool {
			return req.ExpireAt == 0 || req.ExpireAt > now
		}
	})
	d := tc.mustCreate(t, "vol")
	// Unstamped writes pass.
	if err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	// Expired lease is rejected.
	tc.client.SetLeaseInfo(func() (int64, uint64) { return 1, 42 }) // ancient
	err := d.WriteAt([]byte{2}, 0)
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("err = %v, want ErrLeaseExpired", err)
	}
	// Valid lease passes.
	tc.client.SetLeaseInfo(func() (int64, uint64) {
		return int64(tc.w.Clock.Now()) + int64(time.Hour), 42
	})
	if err := d.WriteAt([]byte{3}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalStateApply(t *testing.T) {
	g := NewGlobalState([]string{"b", "a", "c"})
	if g.Servers[0] != "a" {
		t.Fatal("server list not sorted")
	}
	if err := g.Apply(CmdCreateVDisk{ID: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(CmdCreateVDisk{ID: "v"}); !errors.Is(err, ErrVDiskExists) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Apply(CmdSnapshot{Parent: "ghost", Snap: "s"}); !errors.Is(err, ErrNoSuchVDisk) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Apply(CmdSnapshot{Parent: "v", Snap: "s"}); err != nil {
		t.Fatal(err)
	}
	if g.VDisks["v"].Epoch != 2 {
		t.Fatalf("parent epoch = %d, want 2", g.VDisks["v"].Epoch)
	}
	if m := g.VDisks["s"]; !m.ReadOnly || m.Parent != "v" || m.Parentance != 1 {
		t.Fatalf("snapshot meta = %+v", m)
	}
	if err := g.Apply(CmdSnapshot{Parent: "s", Snap: "s2"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	g.Apply(CmdSetAlive{Server: "b", Alive: false})
	if g.Alive["b"] {
		t.Fatal("SetAlive not applied")
	}
	// Unknown server ignored.
	g.Apply(CmdSetAlive{Server: "zz", Alive: false})
	if _, ok := g.Alive["zz"]; ok {
		t.Fatal("unknown server added to liveness map")
	}
}

func TestReplicasStableAndDistinct(t *testing.T) {
	g := NewGlobalState([]string{"a", "b", "c", "d", "e"})
	g.Apply(CmdCreateVDisk{ID: "v"})
	counts := make(map[string]int)
	for c := int64(0); c < 1000; c++ {
		p1a, p2a := g.replicas("v", c)
		p1b, p2b := g.replicas("v", c)
		if p1a != p1b || p2a != p2b {
			t.Fatal("placement not deterministic")
		}
		if p1a == p2a {
			t.Fatal("replicas not distinct")
		}
		counts[p1a]++
	}
	// Placement must be reasonably balanced.
	for s, n := range counts {
		if n < 100 || n > 350 {
			t.Fatalf("server %s is primary for %d of 1000 chunks; badly unbalanced", s, n)
		}
	}
	// Snapshot chunks co-locate with the parent's.
	g.Apply(CmdSnapshot{Parent: "v", Snap: "s"})
	for c := int64(0); c < 50; c++ {
		pv, _ := g.replicas("v", c)
		ps, _ := g.replicas("s", c)
		if pv != ps {
			t.Fatal("snapshot placement differs from parent")
		}
	}
}

func TestSpansProperty(t *testing.T) {
	f := func(off uint32, length uint16) bool {
		o := int64(off)
		n := int(length)
		sp := spans(o, n)
		covered := 0
		pos := o
		for i, s := range sp {
			if s.length <= 0 || s.off < 0 || s.off+s.length > ChunkSize {
				return false
			}
			if s.chunk*ChunkSize+int64(s.off) != pos {
				return false
			}
			if s.bufOff != covered {
				return false
			}
			// Only the last span may end mid-chunk.
			if i < len(sp)-1 && s.off+s.length != ChunkSize {
				return false
			}
			covered += s.length
			pos += int64(s.length)
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCOWAndTombstones(t *testing.T) {
	c := sim.NewClock(5000)
	d := sim.NewDisk(c, "d", sim.DefaultDiskParams(16<<20))
	st := newStore([]*sim.Disk{d}, nil)

	// Epoch 1: write; epoch 2 write must COW and preserve epoch 1.
	if err := st.writeChunk("v", 0, 1, 0, []byte{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.writeChunk("v", 0, 2, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	old, ok, err := st.readChunk("v", 0, 1, 0, 3)
	if err != nil || !ok || !bytes.Equal(old, []byte{1, 1, 1}) {
		t.Fatalf("epoch-1 view = %v ok=%v err=%v", old, ok, err)
	}
	cur, ok, err := st.readChunk("v", 0, 2, 0, 3)
	if err != nil || !ok || !bytes.Equal(cur, []byte{1, 2, 1}) {
		t.Fatalf("epoch-2 view = %v ok=%v err=%v", cur, ok, err)
	}

	// Decommit at epoch 2 hides data from epoch >= 2 but epoch-1 views
	// still see it.
	st.decommit("v", 0, 2)
	if _, ok, _ := st.readChunk("v", 0, 2, 0, 3); ok {
		t.Fatal("decommitted chunk still visible at current epoch")
	}
	if got, ok, _ := st.readChunk("v", 0, 1, 0, 3); !ok || !bytes.Equal(got, []byte{1, 1, 1}) {
		t.Fatal("snapshot view lost after decommit")
	}

	// Decommit with no older epoch removes everything.
	if err := st.writeChunk("w", 5, 1, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	before := st.committedBytes()
	st.decommit("w", 5, 1)
	if st.committedBytes() != before-ChunkSize {
		t.Fatal("simple decommit did not free the chunk")
	}
	if _, ok, _ := st.readChunk("w", 5, 1, 0, 1); ok {
		t.Fatal("decommitted chunk still readable")
	}
}

func waitUntil(t *testing.T, simDeadline time.Duration, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second) // real-time backstop
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
