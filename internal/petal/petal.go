// Package petal implements the Petal distributed virtual disk service
// (Lee & Thekkath, ASPLOS 1996) that Frangipani is layered on. A
// Petal virtual disk provides a sparse 2^64-byte address space;
// physical space is committed in 64 KB chunks on first write and can
// be decommitted. Data is replicated on two servers chosen by a fixed
// placement function; reads and writes fail over when a replica is
// down, and a recovering server copies the writes it missed from its
// partners before rejoining. Copy-on-write epochs provide the
// crash-consistent snapshots that Frangipani's backup mechanism
// (paper §8) relies on.
//
// The rarely-changing global state — server liveness and the virtual
// disk directory — is replicated across the Petal servers with Paxos,
// mirroring the paper's note that the lock service "reuses an
// implementation of Paxos originally written for Petal".
package petal

import (
	"errors"
	"fmt"

	"frangipani/internal/rpc"
)

// ChunkSize is Petal's commit/decommit granularity: "To keep its
// internal data structures small, Petal commits and decommits space
// in fairly large chunks, currently 64 KB" (§3).
const ChunkSize = 64 << 10

// VDiskID names a virtual disk. Snapshots are virtual disks too.
type VDiskID string

// Errors returned by the Petal client and servers.
var (
	ErrNoSuchVDisk   = errors.New("petal: no such virtual disk")
	ErrVDiskExists   = errors.New("petal: virtual disk already exists")
	ErrReadOnly      = errors.New("petal: virtual disk is read-only (snapshot)")
	ErrUnavailable   = errors.New("petal: no replica reachable")
	ErrLeaseExpired  = errors.New("petal: write rejected, lease expired")
	ErrBounds        = errors.New("petal: I/O out of bounds")
	ErrNotReplicated = errors.New("petal: replica count unsatisfiable")
	ErrStaleEpoch    = errors.New("petal: write targets a pre-snapshot epoch")
)

// chunkKey identifies one replicated 64 KB chunk at one COW epoch.
type chunkKey struct {
	VDisk VDiskID
	Chunk int64
	Epoch int64
}

func (k chunkKey) String() string {
	return fmt.Sprintf("%s/%d@%d", k.VDisk, k.Chunk, k.Epoch)
}

// fnv64 hashes a vdisk/chunk pair for placement.
func fnv64(v VDiskID, chunk int64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(chunk >> (8 * i) & 0xff)
		h *= prime
	}
	return h
}

// Wire messages for the Petal data and control path.
type (
	// ReadReq reads Len bytes at Off within one chunk of a vdisk.
	ReadReq struct {
		VDisk VDiskID
		Chunk int64
		Off   int
		Len   int
	}
	// ReadResp carries data or an error string. When decoded from the
	// TCP carrier's fast codec, Data aliases a pooled receive buffer
	// (wb); the consumer releases it with rpc.Release after copying
	// the data out. gob ignores the unexported field.
	ReadResp struct {
		OK   bool
		Err  string
		Data []byte
		wb   *rpc.RecvBuf
	}
	// ReadVExtent asks for Len bytes at Off within one chunk — one
	// piece of a scatter-gather read.
	ReadVExtent struct {
		Chunk int64
		Off   int
		Len   int
	}
	// ReadVExtentResult is one extent's outcome: data, a hole (OK with
	// nil Data), or a replica-local error the client fails over
	// per-extent.
	ReadVExtentResult struct {
		OK   bool
		Err  string
		Data []byte
	}
	// ReadVReq is a multi-extent read: the server resolves the vdisk
	// once and serves every extent from its local store, so one round
	// trip carries a whole run of cache misses or a batch of inode
	// blocks.
	ReadVReq struct {
		VDisk   VDiskID
		Extents []ReadVExtent
	}
	// ReadVResp carries per-extent results, index-aligned with the
	// request. Batch-level Err is only set when the whole request could
	// not be served (e.g. unknown vdisk); extent-local failures (a CRC
	// error on one chunk) come back in Results so the other extents'
	// data is not thrown away.
	// Per-extent Data may alias a pooled receive buffer (wb), as in
	// ReadResp.
	ReadVResp struct {
		OK      bool
		Err     string
		Results []ReadVExtentResult
		wb      *rpc.RecvBuf
	}
	// WriteReq writes Data at Off within one chunk. Forwarded marks
	// replica-to-replica propagation. ExpireAt optionally carries the
	// writer's lease expiration (simulated ns); servers configured
	// with a write guard reject requests whose lease has expired —
	// the hazard fix proposed at the end of paper §6. LeaseID
	// optionally identifies the writer's lock-service lease for the
	// integrated validation variant.
	WriteReq struct {
		VDisk     VDiskID
		Chunk     int64
		Off       int
		Data      []byte
		Forwarded bool
		ExpireAt  int64
		LeaseID   uint64
		// Epoch, when non-zero, is the vdisk epoch the writer intends
		// to write at. A server lagging behind waits for its Paxos
		// apply loop to catch up; a writer lagging behind a snapshot
		// is told to refresh. Zero bypasses the check (server-local
		// resolution), used only by in-process tests.
		Epoch int64

		// wb is the pooled receive buffer Data aliases when the
		// request was decoded by the TCP fast codec.
		wb *rpc.RecvBuf
	}
	// WriteResp acknowledges a write.
	WriteResp struct {
		OK  bool
		Err string
	}
	// WriteVExtent is one piece of a scatter-gather write: Data lands
	// at Off within Chunk.
	WriteVExtent struct {
		Chunk int64
		Off   int
		Data  []byte
	}
	// WriteVReq is a multi-extent write: the server applies every
	// extent under a single lease/epoch check, so one cache-sync round
	// trip carries many coalesced dirty runs. Lease, epoch, and
	// forwarding semantics match WriteReq.
	// Per-extent Data may alias a pooled receive buffer (wb), as in
	// WriteReq.
	WriteVReq struct {
		VDisk     VDiskID
		Extents   []WriteVExtent
		Forwarded bool
		ExpireAt  int64
		LeaseID   uint64
		Epoch     int64
		wb        *rpc.RecvBuf
	}
	// WriteVResp acknowledges a scatter-gather write. All extents
	// applied (OK) or the batch failed at the first bad extent (Err);
	// the client falls back to per-chunk writes to sort out partial
	// progress — replays are idempotent at the store.
	WriteVResp struct {
		OK  bool
		Err string
	}
	// DecommitReq frees physical space for a chunk range of a vdisk.
	DecommitReq struct {
		VDisk      VDiskID
		FirstChunk int64
		LastChunk  int64
	}
	// AdminReq submits a global-state command (create/snapshot/...)
	// through any Petal server.
	AdminReq struct{ Cmd Command }
	// AdminResp reports the outcome.
	AdminResp struct {
		OK  bool
		Err string
	}
	// StateReq asks a server for the current global state.
	// HaveVersion is the version the client already holds: a server
	// whose state is no newer answers Unchanged instead of shipping
	// the full directory, making routine refreshes O(1) on the wire.
	StateReq struct{ HaveVersion int64 }
	// StateResp returns a copy of the global state, or Unchanged when
	// the server has nothing newer than the client's HaveVersion
	// (Version echoes the server's current version in that case).
	StateResp struct {
		OK        bool
		Unchanged bool
		Version   int64
		State     GlobalState
	}
	// MissedListReq asks a partner which chunks the named server
	// missed while it was down.
	MissedListReq struct{ For string }
	// MissedListResp lists the missed chunk keys.
	MissedListResp struct{ Keys []chunkKey }
	// ChunkFetchReq pulls a whole raw chunk during rejoin sync.
	ChunkFetchReq struct{ Key chunkKey }
	// ChunkFetchResp returns the chunk (nil if unknown).
	ChunkFetchResp struct {
		OK   bool
		Data []byte
	}
	// MissedAckReq tells a partner the named keys were resynced and
	// can be dropped from its missed set.
	MissedAckReq struct {
		For  string
		Keys []chunkKey
	}
	// PushChunkReq installs a whole raw chunk on the receiver; the
	// anti-entropy path uses it to repair replicas that missed
	// forwarded writes.
	PushChunkReq struct {
		Key  chunkKey
		Data []byte
	}
	// ListChunksReq asks a server which chunks of a vdisk it stores
	// as primary (restore tooling enumerates committed space with it).
	ListChunksReq struct{ VDisk VDiskID }
	// ListChunksResp lists committed chunk indexes at the current
	// epoch view.
	ListChunksResp struct{ Chunks []int64 }
	// UsageReq asks for committed physical bytes on a server.
	UsageReq struct{}
	// UsageResp reports committed bytes.
	UsageResp struct{ Bytes int64 }
)

// WireSize implementations so the simulated network charges the data
// path realistically.

// WireSize reports the payload size of a read response.
func (r ReadResp) WireSize() int { return len(r.Data) }

// WireSize reports the total payload size of a scatter-gather read
// response.
func (r ReadVResp) WireSize() int {
	n := 0
	for _, e := range r.Results {
		n += len(e.Data)
	}
	return n
}

// WireSize reports the payload size of a write request.
func (w WriteReq) WireSize() int { return len(w.Data) }

// WireSize reports the total payload size of a scatter-gather write.
func (w WriteVReq) WireSize() int {
	n := 0
	for _, e := range w.Extents {
		n += len(e.Data)
	}
	return n
}

// WireSize reports the payload size of a chunk fetch.
func (c ChunkFetchResp) WireSize() int { return len(c.Data) }

// WireSize reports the payload size of a chunk push.
func (p PushChunkReq) WireSize() int { return len(p.Data) }
