package petal

import (
	"sort"
	"sync"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/paxos"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// ServerConfig sizes one Petal server.
type ServerConfig struct {
	// Disks per server and per-disk parameters. The paper's servers
	// each had 9 RZ29 drives.
	NumDisks   int
	DiskParams sim.DiskParams
	// NVRAM, if > 0, places a PrestoServe-like write buffer of this
	// many bytes in front of every disk.
	NVRAM int
	// CPU cost model for the data path.
	CPUPerOp sim.Duration
	CPUPerKB sim.Duration
	// Heartbeat timing for the failure detector.
	HeartbeatEvery sim.Duration
	SuspectAfter   sim.Duration
	// WriteGuard, if non-nil, can reject writes (lease validation).
	// It receives the request and the current simulated time in ns.
	WriteGuard func(req WriteReq, now int64) bool
	// NoReplicate disables write forwarding to the partner replica —
	// an ablation knob for the Figure 7 replication-cost study. Only
	// safe in failure-free runs.
	NoReplicate bool
}

// DefaultServerConfig mirrors the paper's testbed per-server sizing,
// scaled to the given per-disk capacity.
func DefaultServerConfig(diskCapacity int64) ServerConfig {
	return ServerConfig{
		NumDisks:       9,
		DiskParams:     sim.DefaultDiskParams(diskCapacity),
		CPUPerOp:       30 * time.Microsecond,
		CPUPerKB:       1 * time.Microsecond,
		HeartbeatEvery: 250 * time.Millisecond,
		SuspectAfter:   1500 * time.Millisecond,
	}
}

// Server is one Petal storage server. Servers replicate chunk writes
// pairwise, share the virtual-disk directory via Paxos, and detect
// each other's failures by heartbeat.
type Server struct {
	name string
	w    *sim.World
	cfg  ServerConfig
	ep   *rpc.Endpoint
	px   *paxos.Node
	det  *paxos.Detector
	cpu  *sim.CPU
	st   *store

	mu      sync.Mutex
	state   GlobalState
	missed  map[string]map[chunkKey]bool // partner -> keys it missed
	crashed bool
	closed  bool

	rejoinMu sync.Mutex // serializes rejoin passes
	aeCancel func()
	nvs      []*sim.NVRAM

	tr       *obs.Tracer
	reqC     *obs.Counter
	inflight *obs.Gauge        // data-path requests currently being served
	depthHi  *obs.Gauge        // high-water mark of inflight (queue depth)
	missedG  *obs.Gauge        // replica-lag backlog: chunks partners missed
	acct     *obs.AccountTable // per-principal server-op attribution
	jr       *obs.Journal      // flight recorder (nil-safe)
}

const dataTimeout = 5 * time.Second

// DataAddr returns the network name of a server's data endpoint.
func DataAddr(name string) string { return name + ".petal" }

// NewServer creates (but does not interconnect) one Petal server.
// peers must list all Petal server names including this one; the set
// is fixed for the life of the cluster, as in our Paxos layer.
func NewServer(w *sim.World, name string, peers []string, cfg ServerConfig) *Server {
	return NewServerWithCarrier(w, name, peers, cfg, rpc.SimCarrier{Net: w.Net})
}

// NewServerWithCarrier creates a Petal server on an explicit message
// carrier (TCP for daemon deployments, sim for tests).
func NewServerWithCarrier(w *sim.World, name string, peers []string, cfg ServerConfig, carrier rpc.Carrier) *Server {
	s := &Server{
		name:   name,
		w:      w,
		cfg:    cfg,
		cpu:    w.CPU(name),
		state:  NewGlobalState(peers),
		missed: make(map[string]map[chunkKey]bool),
	}
	var disks []*sim.Disk
	var nvs []*sim.NVRAM
	for i := 0; i < cfg.NumDisks; i++ {
		d := sim.NewDisk(w.Clock, name, cfg.DiskParams)
		disks = append(disks, d)
		if cfg.NVRAM > 0 {
			nvs = append(nvs, sim.NewNVRAM(w.Clock, d, cfg.NVRAM, 50*time.Microsecond))
		} else {
			nvs = append(nvs, nil)
		}
	}
	s.nvs = nvs
	s.st = newStore(disks, nvs)
	s.tr = w.Obs.Tracer()
	if reg := w.Obs; reg != nil {
		s.reqC = reg.Counter("petal.server.requests#" + name)
		s.inflight = reg.Gauge("petal.server.inflight#" + name)
		s.depthHi = reg.Gauge("petal.server.inflight.peak#" + name)
		s.missedG = reg.Gauge("petal.server.missed#" + name)
		s.acct = reg.Accounts()
		s.jr = reg.Journal(name)
	}

	s.px = paxos.NewNode(name, peers, carrier, w.Clock, s.applyCmd)
	s.det = paxos.NewDetector(name, peers, carrier, w.Clock,
		cfg.HeartbeatEvery, cfg.SuspectAfter, s.onLiveness)
	s.ep = rpc.NewEndpoint(DataAddr(name), carrier, w.Clock, s.handle)
	s.aeCancel = w.Clock.Tick(cfg.SuspectAfter, s.antiEntropy)
	return s
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Disks exposes the server's raw disks for fault injection in tests.
func (s *Server) Disks() []*sim.Disk { return s.st.disks }

// CommittedBytes reports committed physical space on this server.
func (s *Server) CommittedBytes() int64 { return s.st.committedBytes() }

// State returns a copy of the server's view of the global state.
func (s *Server) State() GlobalState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone()
}

// applyCmd is the Paxos applier: all servers apply the same commands
// in the same order.
func (s *Server) applyCmd(seq int64, cmd paxos.Command) {
	s.mu.Lock()
	_ = s.state.Apply(cmd)
	s.mu.Unlock()
}

// onLiveness reacts to failure-detector transitions. The lowest-named
// live server proposes the liveness change into the global state;
// proposals are idempotent there.
func (s *Server) onLiveness(peer string, alive bool) {
	if s.isDown() {
		return
	}
	if alive {
		// The rejoiner proposes itself alive after resync; nothing to
		// do here.
		return
	}
	s.mu.Lock()
	already := !s.state.Alive[peer]
	s.mu.Unlock()
	if already || !s.amCoordinator() {
		return
	}
	s.jr.Record("petal", "replica", "death", 0, 0, peer)
	go func() {
		_ = s.px.Submit(CmdSetAlive{Server: peer, Alive: false}, 60*time.Second)
	}()
}

// amCoordinator reports whether this server is the lowest-named one
// it currently believes alive.
func (s *Server) amCoordinator() bool {
	for _, p := range s.det.Members() {
		if p == s.name {
			return true
		}
		if s.det.Alive(p) {
			return false
		}
	}
	return true
}

func (s *Server) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed || s.closed
}

// handle serves the Petal data and control protocol.
func (s *Server) handle(from string, body any) any {
	if s.isDown() {
		// The request will never be served; recycle any pooled
		// receive buffer its payload occupies.
		rpc.Release(body)
		return nil
	}
	s.reqC.Inc()
	// The rpc layer rebinds the sender's principal around handlers, so
	// server-side work is charged to the originating client.
	s.acct.ServerOp(obs.CurrentPrincipal())
	switch m := body.(type) {
	case ReadReq:
		return s.spanned("server.read", func() any { return s.onRead(m) })
	case ReadVReq:
		return s.spanned("server.readv", func() any { return s.onReadV(m) })
	case WriteReq:
		return s.spanned("server.write", func() any { return s.onWrite(m, from) })
	case WriteVReq:
		return s.spanned("server.writev", func() any { return s.onWriteV(m) })
	case DecommitReq:
		return s.onDecommit(m)
	case AdminReq:
		return s.onAdmin(m)
	case StateReq:
		s.mu.Lock()
		if s.state.Version <= m.HaveVersion {
			// Client is current: answer without cloning or shipping
			// the directory (incremental refresh fast path).
			v := s.state.Version
			s.mu.Unlock()
			return StateResp{OK: true, Unchanged: true, Version: v}
		}
		st := s.state.Clone()
		s.mu.Unlock()
		return StateResp{OK: true, Version: st.Version, State: st}
	case MissedListReq:
		s.mu.Lock()
		var keys []chunkKey
		for k := range s.missed[m.For] {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		return MissedListResp{Keys: keys}
	case ChunkFetchReq:
		data, ok, _ := s.st.getRaw(m.Key)
		return ChunkFetchResp{OK: ok, Data: data}
	case MissedAckReq:
		s.mu.Lock()
		for _, k := range m.Keys {
			delete(s.missed[m.For], k)
		}
		s.mu.Unlock()
		return AdminResp{OK: true}
	case PushChunkReq:
		if err := s.st.putRaw(m.Key, m.Data); err != nil {
			return AdminResp{Err: err.Error()}
		}
		return AdminResp{OK: true}
	case ListChunksReq:
		s.mu.Lock()
		base, ceiling, _, err := s.state.resolve(m.VDisk)
		s.mu.Unlock()
		if err != nil {
			return ListChunksResp{}
		}
		return ListChunksResp{Chunks: s.st.visibleChunks(base, ceiling)}
	case UsageReq:
		return UsageResp{Bytes: s.st.committedBytes()}
	}
	return nil
}

// spanned runs a data-path handler under a server-side child span
// when the request arrived with trace context (which the rpc layer
// binds to the handler goroutine), tracking the server's in-flight
// request count and its high-water mark.
func (s *Server) spanned(op string, fn func() any) any {
	s.inflight.Add(1)
	s.depthHi.SetMax(s.inflight.Value())
	defer s.inflight.Add(-1)
	sp := s.tr.Child("petal", op)
	if sp == nil {
		return fn()
	}
	var out any
	obs.With(sp, func() { out = fn() })
	sp.Done()
	return out
}

// MissedBacklog reports the number of chunk writes this server's
// partners have missed and not yet received via anti-entropy — the
// replica-lag signal for health probing. The mirror gauge
// "petal.server.missed#name" is refreshed as a side effect.
func (s *Server) MissedBacklog() int {
	s.mu.Lock()
	n := 0
	for _, keys := range s.missed {
		n += len(keys)
	}
	s.mu.Unlock()
	s.missedG.Set(int64(n))
	return n
}

// antiEntropy pushes missed chunks to partners that are reachable
// again, repairing replication broken by transient forward failures.
// It runs periodically; rejoin after a declared crash uses the pull
// path instead.
func (s *Server) antiEntropy() {
	if s.isDown() {
		return
	}
	s.mu.Lock()
	var partners []string
	for p, keys := range s.missed {
		if len(keys) > 0 && s.state.Alive[p] {
			partners = append(partners, p)
		}
	}
	s.mu.Unlock()
	for _, p := range partners {
		s.mu.Lock()
		var keys []chunkKey
		for k := range s.missed[p] {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		s.jr.Record("petal", "replica", "resync", 0, int64(len(keys)), p)
		for _, key := range keys {
			data, ok, err := s.st.getRaw(key)
			if err != nil || !ok {
				continue
			}
			resp, err := s.ep.Call(DataAddr(p), PushChunkReq{Key: key, Data: data}, dataTimeout)
			if err != nil {
				break // partner still unreachable; try next period
			}
			if ar, ok := resp.(AdminResp); ok && ar.OK {
				s.mu.Lock()
				delete(s.missed[p], key)
				s.mu.Unlock()
			}
		}
	}
}

func (s *Server) chargeCPU(bytes int) {
	s.cpu.Use(s.cfg.CPUPerOp + sim.Duration(bytes/1024)*s.cfg.CPUPerKB)
}

func (s *Server) onRead(m ReadReq) ReadResp {
	s.chargeCPU(m.Len)
	s.mu.Lock()
	base, ceiling, _, err := s.state.resolve(m.VDisk)
	s.mu.Unlock()
	if err != nil {
		return ReadResp{Err: err.Error()}
	}
	if m.Off < 0 || m.Len < 0 || m.Off+m.Len > ChunkSize {
		return ReadResp{Err: ErrBounds.Error()}
	}
	data, committed, err := s.st.readChunk(base, m.Chunk, ceiling, m.Off, m.Len)
	if err != nil {
		return ReadResp{Err: err.Error()}
	}
	if !committed {
		return ReadResp{OK: true, Data: nil} // hole: reads as zeros
	}
	return ReadResp{OK: true, Data: data}
}

// readVServePar bounds concurrent store reads while serving one
// scatter-gather read; the disk arms serialize actual media time.
const readVServePar = 16

// onReadV serves a scatter-gather read: the vdisk resolves once, then
// every extent is read from the local store with bounded parallelism.
// Reads don't modify anything, so unlike applyExtents no conflict
// chaining is needed. Extent failures (e.g. a CRC error) are reported
// per extent so the client can fail over only the damaged pieces.
func (s *Server) onReadV(m ReadVReq) ReadVResp {
	total := 0
	for _, e := range m.Extents {
		total += e.Len
	}
	s.chargeCPU(total)
	s.mu.Lock()
	base, ceiling, _, err := s.state.resolve(m.VDisk)
	s.mu.Unlock()
	if err != nil {
		return ReadVResp{Err: err.Error()}
	}
	results := make([]ReadVExtentResult, len(m.Extents))
	sem := make(chan struct{}, readVServePar)
	var wg sync.WaitGroup
	for i := range m.Extents {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			e := m.Extents[i]
			if e.Off < 0 || e.Len < 0 || e.Off+e.Len > ChunkSize {
				results[i] = ReadVExtentResult{Err: ErrBounds.Error()}
				return
			}
			data, committed, err := s.st.readChunk(base, e.Chunk, ceiling, e.Off, e.Len)
			if err != nil {
				results[i] = ReadVExtentResult{Err: err.Error()}
				return
			}
			if !committed {
				results[i] = ReadVExtentResult{OK: true} // hole: reads as zeros
				return
			}
			results[i] = ReadVExtentResult{OK: true, Data: data}
		}(i)
	}
	wg.Wait()
	return ReadVResp{OK: true, Results: results}
}

// resolveWriteEpoch maps a vdisk to its writable (base, ceiling)
// pair for a write stamped with epoch. If the writer's epoch is ahead
// the server waits for its Paxos apply loop to catch up; a writer
// behind a snapshot gets ErrStaleEpoch (refresh and retry).
func (s *Server) resolveWriteEpoch(v VDiskID, epoch int64) (base VDiskID, ceiling int64, st GlobalState, errStr string) {
	var writable bool
	waitLimit := s.w.Clock.Now() + sim.Time(dataTimeout)
	for {
		s.mu.Lock()
		var err error
		base, ceiling, writable, err = s.state.resolve(v)
		st = s.state
		s.mu.Unlock()
		if err != nil {
			return "", 0, st, err.Error()
		}
		if epoch == 0 || ceiling >= epoch {
			break
		}
		if s.w.Clock.Now() >= waitLimit || s.isDown() {
			return "", 0, st, ErrUnavailable.Error()
		}
		s.w.Clock.Sleep(20 * time.Millisecond)
	}
	if !writable {
		return "", 0, st, ErrReadOnly.Error()
	}
	if epoch != 0 && ceiling > epoch {
		return "", 0, st, ErrStaleEpoch.Error()
	}
	if epoch != 0 {
		ceiling = epoch
	}
	return base, ceiling, st, ""
}

func (s *Server) onWrite(m WriteReq, from string) WriteResp {
	// On TCP, m.Data aliases a pooled receive buffer. Once the store
	// has copied the bytes and any replica forward has completed, the
	// buffer is recycled — unless a forward timed out, in which case
	// the payload may still be queued at the carrier and the buffer
	// must leak to the garbage collector instead.
	leaked := false
	defer func() {
		if !leaked {
			rpc.Release(m)
		}
	}()
	s.chargeCPU(len(m.Data))
	if g := s.cfg.WriteGuard; g != nil && !m.Forwarded {
		if !g(m, int64(s.w.Clock.Now())) {
			return WriteResp{Err: ErrLeaseExpired.Error()}
		}
	}
	base, ceiling, st, errStr := s.resolveWriteEpoch(m.VDisk, m.Epoch)
	if errStr != "" {
		return WriteResp{Err: errStr}
	}
	if m.Off < 0 || m.Off+len(m.Data) > ChunkSize {
		return WriteResp{Err: ErrBounds.Error()}
	}
	if err := s.st.writeChunk(base, m.Chunk, ceiling, m.Off, m.Data); err != nil {
		return WriteResp{Err: err.Error()}
	}
	if !m.Forwarded && !s.cfg.NoReplicate {
		leaked = s.replicate(st, base, ceiling, m)
	}
	return WriteResp{OK: true}
}

// onWriteV applies a scatter-gather write: one lease check and one
// epoch resolution cover every extent, then the extents land on the
// local store in order. Replication forwards the extents grouped by
// partner so the batch stays batched on the replica hop too.
func (s *Server) onWriteV(m WriteVReq) WriteVResp {
	// Same pooled-buffer discipline as onWrite.
	leaked := false
	defer func() {
		if !leaked {
			rpc.Release(m)
		}
	}()
	total := 0
	for _, e := range m.Extents {
		total += len(e.Data)
	}
	s.chargeCPU(total)
	if g := s.cfg.WriteGuard; g != nil && !m.Forwarded {
		// The guard inspects lease fields only; hand it an equivalent
		// single-write request.
		probe := WriteReq{VDisk: m.VDisk, ExpireAt: m.ExpireAt, LeaseID: m.LeaseID, Epoch: m.Epoch}
		if !g(probe, int64(s.w.Clock.Now())) {
			return WriteVResp{Err: ErrLeaseExpired.Error()}
		}
	}
	base, ceiling, st, errStr := s.resolveWriteEpoch(m.VDisk, m.Epoch)
	if errStr != "" {
		return WriteVResp{Err: errStr}
	}
	for _, e := range m.Extents {
		if e.Off < 0 || e.Off+len(e.Data) > ChunkSize {
			return WriteVResp{Err: ErrBounds.Error()}
		}
	}
	if errStr := s.applyExtents(base, ceiling, m.Extents); errStr != "" {
		return WriteVResp{Err: errStr}
	}
	if !m.Forwarded && !s.cfg.NoReplicate {
		leaked = s.replicateV(st, base, ceiling, m)
	}
	return WriteVResp{OK: true}
}

// writeVApplyPar bounds concurrent store writes while applying one
// scatter-gather batch; the disk arms serialize actual media time.
const writeVApplyPar = 16

// applyExtents applies a batch's extents to the local store with
// bounded parallelism — the disk-level half of scatter-gather.
// Extents whose sector-aligned spans overlap are chained into one
// serial unit so read-modify-write at a shared edge sector stays
// ordered; everything else proceeds concurrently. Returns the first
// error string, or "".
func (s *Server) applyExtents(base VDiskID, ceiling int64, exts []WriteVExtent) string {
	units := conflictUnits(exts)
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		ferr string
	)
	sem := make(chan struct{}, writeVApplyPar)
	for _, u := range units {
		wg.Add(1)
		sem <- struct{}{}
		go func(u []WriteVExtent) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, e := range u {
				if err := s.st.writeChunk(base, e.Chunk, ceiling, e.Off, e.Data); err != nil {
					emu.Lock()
					if ferr == "" {
						ferr = err.Error()
					}
					emu.Unlock()
					return
				}
			}
		}(u)
	}
	wg.Wait()
	return ferr
}

// conflictUnits sorts extents by (chunk, offset) and chains those
// whose sector-aligned spans overlap into one serial unit.
func conflictUnits(exts []WriteVExtent) [][]WriteVExtent {
	sorted := append([]WriteVExtent(nil), exts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Chunk != sorted[b].Chunk {
			return sorted[a].Chunk < sorted[b].Chunk
		}
		return sorted[a].Off < sorted[b].Off
	})
	var units [][]WriteVExtent
	var unitChunk, unitHi int64 // current unit's chunk and aligned end
	for _, e := range sorted {
		lo := int64(e.Off) &^ (sim.SectorSize - 1)
		hi := (int64(e.Off+len(e.Data)) + sim.SectorSize - 1) &^ (sim.SectorSize - 1)
		if len(units) > 0 && e.Chunk == unitChunk && lo < unitHi {
			units[len(units)-1] = append(units[len(units)-1], e)
			if hi > unitHi {
				unitHi = hi
			}
			continue
		}
		units = append(units, []WriteVExtent{e})
		unitChunk, unitHi = e.Chunk, hi
	}
	return units
}

// replicateV forwards a scatter-gather write to partner replicas,
// grouped so each partner receives one batched request covering the
// extents it replicates. Extents whose partner misses the forward are
// recorded chunk-by-chunk for rejoin/anti-entropy repair. The
// returned leaked flag is true when a forward call errored — the
// request payload may still be queued at the carrier, so the caller
// must not recycle its buffer.
func (s *Server) replicateV(st GlobalState, base VDiskID, epoch int64, m WriteVReq) (leaked bool) {
	byPartner := make(map[string][]WriteVExtent)
	for _, e := range m.Extents {
		p1, p2 := st.replicas(base, e.Chunk)
		partner := p1
		if p1 == s.name {
			partner = p2
		}
		if partner == "" || partner == s.name {
			continue
		}
		byPartner[partner] = append(byPartner[partner], e)
	}
	for partner, exts := range byPartner {
		fw := WriteVReq{VDisk: m.VDisk, Extents: exts, Forwarded: true, Epoch: epoch}
		s.mu.Lock()
		partnerAlive := st.Alive[partner]
		s.mu.Unlock()
		if partnerAlive {
			resp, err := s.ep.Call(DataAddr(partner), fw, dataTimeout)
			if err == nil {
				if wr, ok := resp.(WriteVResp); ok && wr.OK {
					continue
				}
			} else {
				leaked = true
			}
		}
		s.mu.Lock()
		mm := s.missed[partner]
		if mm == nil {
			mm = make(map[chunkKey]bool)
			s.missed[partner] = mm
		}
		for _, e := range exts {
			mm[chunkKey{base, e.Chunk, epoch}] = true
		}
		s.mu.Unlock()
	}
	return leaked
}

// replicate forwards a client write to the partner replica, recording
// a missed write if the partner is down or unreachable. As with
// replicateV, leaked reports that the forwarded payload may still be
// queued at the carrier.
func (s *Server) replicate(st GlobalState, base VDiskID, epoch int64, m WriteReq) (leaked bool) {
	p1, p2 := st.replicas(base, m.Chunk)
	partner := p1
	if p1 == s.name {
		partner = p2
	}
	if partner == "" || partner == s.name {
		return false
	}
	fw := m
	fw.Forwarded = true
	fw.Epoch = epoch
	s.mu.Lock()
	partnerAlive := st.Alive[partner]
	s.mu.Unlock()
	if partnerAlive {
		resp, err := s.ep.Call(DataAddr(partner), fw, dataTimeout)
		if err == nil {
			if wr, ok := resp.(WriteResp); ok && wr.OK {
				return false
			}
		} else {
			leaked = true
		}
	}
	// Partner missed this write; remember the exact chunk key so
	// rejoin (or anti-entropy) can copy the whole chunk image.
	key := chunkKey{base, m.Chunk, epoch}
	s.mu.Lock()
	mm := s.missed[partner]
	if mm == nil {
		mm = make(map[chunkKey]bool)
		s.missed[partner] = mm
	}
	mm[key] = true
	s.mu.Unlock()
	return leaked
}

func (s *Server) onDecommit(m DecommitReq) AdminResp {
	s.chargeCPU(0)
	s.mu.Lock()
	base, ceiling, writable, err := s.state.resolve(m.VDisk)
	s.mu.Unlock()
	if err != nil {
		return AdminResp{Err: err.Error()}
	}
	if !writable {
		return AdminResp{Err: ErrReadOnly.Error()}
	}
	s.st.decommitRange(base, m.FirstChunk, m.LastChunk, ceiling)
	return AdminResp{OK: true}
}

func (s *Server) onAdmin(m AdminReq) AdminResp {
	// Pre-validate against our current state for a friendly error;
	// the authoritative application happens via Paxos on all servers.
	s.mu.Lock()
	probe := s.state.Clone()
	s.mu.Unlock()
	if err := probe.Apply(m.Cmd); err != nil {
		return AdminResp{Err: err.Error()}
	}
	if err := s.px.Submit(m.Cmd, 60*time.Second); err != nil {
		return AdminResp{Err: err.Error()}
	}
	return AdminResp{OK: true}
}

// Crash stops the server: data path, Paxos, and heartbeats all go
// silent. Disk contents are retained.
func (s *Server) Crash() {
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
	s.jr.Record("petal", "replica", "crash", 0, 0, "")
	s.px.Crash()
	s.det.Crash()
}

// Restart revives a crashed server. It resynchronizes the writes it
// missed from its partners and then proposes itself alive; clients
// route reads back to it only after that point.
func (s *Server) Restart() {
	s.mu.Lock()
	s.crashed = false
	s.mu.Unlock()
	s.jr.Record("petal", "replica", "restart", 0, 0, "resync from partners")
	s.px.Recover()
	s.det.Recover()
	go s.rejoin()
}

// rejoin pulls missed chunks from every partner, then proposes
// aliveness.
func (s *Server) rejoin() {
	s.rejoinMu.Lock()
	defer s.rejoinMu.Unlock()
	for _, p := range s.det.Members() {
		if p == s.name || s.isDown() {
			continue
		}
		resp, err := s.ep.Call(DataAddr(p), MissedListReq{For: s.name}, dataTimeout)
		if err != nil {
			continue
		}
		ml, ok := resp.(MissedListResp)
		if !ok {
			continue
		}
		var synced []chunkKey
		for _, key := range ml.Keys {
			fr, err := s.ep.Call(DataAddr(p), ChunkFetchReq{Key: key}, dataTimeout)
			if err != nil {
				continue
			}
			cf, ok := fr.(ChunkFetchResp)
			if !ok || !cf.OK {
				continue
			}
			if err := s.st.putRaw(key, cf.Data); err == nil {
				synced = append(synced, key)
			}
		}
		if len(synced) > 0 {
			_, _ = s.ep.Call(DataAddr(p), MissedAckReq{For: s.name, Keys: synced}, dataTimeout)
		}
	}
	_ = s.px.Submit(CmdSetAlive{Server: s.name, Alive: true}, 60*time.Second)
}

// DebugReadChunk reads length bytes at off within a chunk directly
// from this server's local store, bypassing routing — a diagnostic
// aid for replica-divergence investigations.
func (s *Server) DebugReadChunk(v VDiskID, chunk int64, off, length int) ([]byte, bool) {
	s.mu.Lock()
	base, ceiling, _, err := s.state.resolve(v)
	s.mu.Unlock()
	if err != nil {
		return nil, false
	}
	data, ok, err := s.st.readChunk(base, chunk, ceiling, off, length)
	if err != nil {
		return nil, false
	}
	return data, ok
}

// Close shuts the server down permanently.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.aeCancel()
	s.det.Stop()
	s.px.Close()
	s.ep.Close()
	for _, nv := range s.nvs {
		if nv != nil {
			go nv.Close() // drains asynchronously; the disks are dead anyway
		}
	}
}
