// Package bufpool is a size-classed []byte allocator shared by the
// hot data paths: the TCP carrier's frame reassembly buffers, the
// Petal client's write snapshots, the WAL's flush block assembly, and
// the file server's cache-fill scratch all draw from it, so steady
// state I/O recycles a small working set of buffers instead of
// allocating per operation.
//
// The discipline is leak-safe by construction: Put checks that a
// buffer's capacity still matches one of the pool's size classes, so
// grown or foreign slices are silently dropped to the garbage
// collector, and a caller that cannot prove a buffer is dead (e.g. a
// timed-out RPC whose payload may still be queued at the carrier)
// simply never calls Put. Forgetting to release costs an allocation,
// never correctness.
package bufpool

import "sync"

// classes are the pooled buffer capacities, chosen for the repo's
// traffic: sector/inode metadata (512 B), small control frames (4 KB),
// one Petal chunk (64 KB), a coalesced flush run (256 KB), and a
// size-capped scatter-gather batch (1 MB, plus header slack).
var classes = [...]int{512, 4 << 10, 64 << 10, 256 << 10, (1 << 20) + (64 << 10)}

var pools [len(classes)]sync.Pool

func init() {
	for i := range classes {
		n := classes[i]
		pools[i].New = func() any {
			b := make([]byte, n)
			return &b
		}
	}
}

// Get returns a pointer to a buffer with len(*p) == n. Requests
// larger than the biggest class fall through to a plain allocation
// (Put will drop them).
func Get(n int) *[]byte {
	for i, c := range classes {
		if n <= c {
			p := pools[i].Get().(*[]byte)
			*p = (*p)[:n]
			return p
		}
	}
	b := make([]byte, n)
	return &b
}

// Put recycles a buffer obtained from Get. Buffers whose capacity no
// longer matches a size class (grown by append, or never pooled) are
// dropped. The caller must not touch *p after Put.
func Put(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	for i := range classes {
		if c == classes[i] {
			*p = (*p)[:c]
			pools[i].Put(p)
			return
		}
	}
}
