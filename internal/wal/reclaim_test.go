package wal

import (
	"testing"
	"time"
)

// TestPacedAsyncReclaim checks the high-water pacing that replaces
// log-full stalls at scale: crossing 3/4 occupancy kicks ONE
// background reclaim of the oldest quarter, and a writer that keeps
// inside the paced regime never hits the synchronous stall backstop.
func TestPacedAsyncReclaim(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	l := New(region, DefaultLogSize)

	released := make(chan int64, 16)
	l.SetReclaim(func(through int64) {
		// A real reclaimer flushes the covered updates to their home
		// locations first; for pacing semantics, releasing is enough.
		l.Release(through)
		released <- through
	})

	// Fill toward the high-water mark with records far smaller than
	// the reclaim quarter. The first crossing must come from the
	// paced path, not the log-full backstop.
	data := make([]byte, 400)
	for l.Stats().AsyncReclaims == 0 {
		if _, err := l.Append([]Update{{Addr: 0, Off: 0, Data: data, Ver: 1}}); err != nil {
			t.Fatal(err)
		}
		if st := l.Stats(); st.StallReclaims != 0 {
			t.Fatal("hit the stall backstop before the paced reclaim fired")
		}
	}
	select {
	case through := <-released:
		if through <= 0 {
			t.Fatalf("reclaim callback got through=%d", through)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("async reclaim callback never ran")
	}
	// The release must actually advance the tail (drop occupancy).
	deadline := time.Now().Add(10 * time.Second)
	for {
		l.mu.Lock()
		tail, reclaiming := l.tail, l.reclaiming
		l.mu.Unlock()
		if tail > 0 && !reclaiming {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail never advanced after async reclaim")
		}
		time.Sleep(time.Millisecond)
	}

	// Sustained writing at this rhythm — append, let any kicked
	// reclaim drain before pressing into the wall — stays entirely on
	// the paced path: more async reclaims, still zero stalls.
	for i := 0; i < 300; i++ {
		if _, err := l.Append([]Update{{Addr: int64(i) * 512, Off: 0, Data: data, Ver: 2}}); err != nil {
			t.Fatal(err)
		}
		for {
			l.mu.Lock()
			occ := l.head - l.tail
			cap34 := l.streamCapacity() * 3 / 4
			l.mu.Unlock()
			if occ <= cap34 {
				break
			}
			select {
			case <-released:
			case <-time.After(10 * time.Second):
				t.Fatal("reclaim stopped keeping pace")
			}
		}
	}
	st := l.Stats()
	if st.StallReclaims != 0 {
		t.Fatalf("paced writer hit %d stall reclaims, want 0", st.StallReclaims)
	}
	if st.AsyncReclaims < 2 {
		t.Fatalf("async reclaims = %d, want >= 2 under sustained load", st.AsyncReclaims)
	}
}
