package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// memRegion is an in-memory BlockRegion for tests.
type memRegion struct{ b []byte }

func newMemRegion(size int64) *memRegion { return &memRegion{b: make([]byte, size)} }

func (m *memRegion) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.b)) {
		return fmt.Errorf("memRegion: out of range off=%d len=%d", off, len(p))
	}
	copy(p, m.b[off:])
	return nil
}

func (m *memRegion) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.b)) {
		return fmt.Errorf("memRegion: out of range off=%d len=%d", off, len(p))
	}
	copy(m.b[off:], p)
	return nil
}

func upd(addr int64, off int, ver uint64, data ...byte) Update {
	return Update{Addr: addr, Off: off, Data: data, Ver: ver}
}

func TestAppendFlushScanRoundTrip(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	l := New(region, DefaultLogSize)
	var want []RecoveredRecord
	for i := 0; i < 10; i++ {
		ups := []Update{
			upd(int64(i)*512, i, uint64(i+1), byte(i), byte(i+1)),
			upd(int64(i+100)*512, 0, uint64(i+1), 0xAB),
		}
		seq, err := l.Append(ups)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, RecoveredRecord{Seq: seq, Updates: ups})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(region, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || len(got[i].Updates) != len(want[i].Updates) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
		for j := range want[i].Updates {
			w, g := want[i].Updates[j], got[i].Updates[j]
			if w.Addr != g.Addr || w.Off != g.Off || w.Ver != g.Ver || !bytes.Equal(w.Data, g.Data) {
				t.Fatalf("record %d update %d mismatch: %+v vs %+v", i, j, g, w)
			}
		}
	}
}

func TestUnflushedRecordsNotScanned(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	l := New(region, DefaultLogSize)
	if _, err := l.Append([]Update{upd(0, 0, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(region, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("scanned %d records before flush", len(got))
	}
}

func TestReplayVersionGating(t *testing.T) {
	dev := newMemRegion(1 << 20)
	// Block at addr 1024 already at version 5.
	blk := make([]byte, BlockSize)
	SetBlockVersion(blk, 5)
	if err := dev.WriteAt(blk, 1024); err != nil {
		t.Fatal(err)
	}
	records := []RecoveredRecord{
		{Seq: 1, Updates: []Update{upd(1024, 0, 4, 0xAA)}}, // stale: skipped
		{Seq: 2, Updates: []Update{upd(1024, 1, 6, 0xBB)}}, // newer: applied
		{Seq: 3, Updates: []Update{upd(2048, 2, 1, 0xCC)}}, // fresh block: applied
		{Seq: 4, Updates: []Update{upd(1024, 3, 6, 0xDD)}}, // same ver as block now: skipped
	}
	applied, err := Replay(records, dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied %d updates, want 2", applied)
	}
	got := make([]byte, BlockSize)
	if err := dev.ReadAt(got, 1024); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0xBB || got[3] != 0 {
		t.Fatalf("block state %v: stale or duplicate update applied", got[:4])
	}
	if BlockVersion(got) != 6 {
		t.Fatalf("version = %d, want 6", BlockVersion(got))
	}
}

func TestIdempotentReplay(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	dev := newMemRegion(1 << 20)
	l := New(region, DefaultLogSize)
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]Update{upd(int64(i)*512, 0, uint64(i+1), byte(0xF0+i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Scan(region, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(recs, dev); err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), dev.b...)
	// Replaying again (e.g. two recovery attempts) changes nothing.
	if n, err := Replay(recs, dev); err != nil || n != 0 {
		t.Fatalf("second replay applied %d updates, err=%v", n, err)
	}
	if !bytes.Equal(snapshot, dev.b) {
		t.Fatal("second replay changed device state")
	}
}

func TestCircularWrapAndReclaim(t *testing.T) {
	const size = 8 << 10 // small log: 16 blocks
	region := newMemRegion(size)
	l := New(region, size)
	released := int64(0)
	l.SetReclaim(func(through int64) {
		_ = l.Flush()
		l.Release(through)
		released = through
	})
	// Append far more than capacity; reclaim must be driven.
	data := bytes.Repeat([]byte{0xEE}, 100)
	var lastSeq int64
	for i := 0; i < 500; i++ {
		seq, err := l.Append([]Update{{Addr: int64(i) * 512, Off: 0, Data: data, Ver: uint64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = seq
	}
	if released == 0 {
		t.Fatal("reclaim callback never ran")
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Scanning must at least see the most recent records, in order.
	recs, err := Scan(region, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records after wrap")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("records out of order after wrap")
		}
	}
	if recs[len(recs)-1].Seq != lastSeq {
		t.Fatalf("newest record %d missing (got %d)", lastSeq, recs[len(recs)-1].Seq)
	}
}

func TestTornLogRecordSkipped(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	l := New(region, DefaultLogSize)
	big := bytes.Repeat([]byte{7}, 400) // record spans blocks
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]Update{{Addr: int64(i) * 512, Off: 0, Data: big, Ver: uint64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle of record 2's body (flip bytes in block 1).
	region.b[BlockSize+100] ^= 0xFF
	recs, err := Scan(region, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	seqs := map[int64]bool{}
	for _, r := range recs {
		seqs[r.Seq] = true
	}
	if seqs[0] {
		t.Fatal("impossible seq 0")
	}
	// The corrupted record must be absent; later records must survive
	// via re-anchoring.
	corruptSurvived := 0
	for _, r := range recs {
		for _, u := range r.Updates {
			if !bytes.Equal(u.Data, big) {
				corruptSurvived++
			}
		}
	}
	if corruptSurvived != 0 {
		t.Fatal("corrupted record decoded with wrong data")
	}
	if len(recs) < 2 {
		t.Fatalf("only %d records survived; re-anchoring failed", len(recs))
	}
}

func TestBadUpdateRejected(t *testing.T) {
	l := New(newMemRegion(DefaultLogSize), DefaultLogSize)
	// Touching the version trailer region is rejected.
	_, err := l.Append([]Update{upd(0, MaxUpdateOffset-1, 1, 1, 2)})
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err = %v, want ErrBadUpdate", err)
	}
	_, err = l.Append([]Update{{Addr: 0, Off: 0, Data: nil, Ver: 1}})
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("empty data: err = %v, want ErrBadUpdate", err)
	}
}

func TestRecordTooLarge(t *testing.T) {
	const size = 4 << 10
	l := New(newMemRegion(size), size)
	var ups []Update
	for i := 0; i < 10; i++ {
		ups = append(ups, Update{Addr: int64(i) * 512, Off: 0, Data: bytes.Repeat([]byte{1}, 400), Ver: 1})
	}
	if _, err := l.Append(ups); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestGroupCommit(t *testing.T) {
	region := newMemRegion(DefaultLogSize)
	l := New(region, DefaultLogSize)
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]Update{upd(int64(i)*512, 0, uint64(i+1), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 20 || st.Flushes != 1 {
		t.Fatalf("appends=%d flushes=%d, want 20/1 (group commit)", st.Appends, st.Flushes)
	}
	// 20 small records (~50 bytes) fit in ~3 blocks; far fewer than 20
	// block writes must have happened.
	if st.BytesWritten > 5*BlockSize {
		t.Fatalf("wrote %d bytes for 20 records; group commit ineffective", st.BytesWritten)
	}
}

// syncedRegion is a memRegion safe for concurrent WriteAt/ReadAt,
// with a per-write delay standing in for device latency so flushes
// genuinely overlap with appends.
type syncedRegion struct {
	mu sync.Mutex
	m  *memRegion
}

func (s *syncedRegion) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.ReadAt(p, off)
}

func (s *syncedRegion) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(200 * time.Microsecond)
	return s.m.WriteAt(p, off)
}

func TestConcurrentFlushGroupCommit(t *testing.T) {
	mem := newMemRegion(DefaultLogSize)
	region := &syncedRegion{m: mem}
	l := New(region, DefaultLogSize)
	const (
		workers   = 8
		perWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				_, err := l.Append([]Update{upd(int64(n)*512, 0, uint64(n+1), byte(n), byte(n >> 8))})
				if err != nil {
					errs <- err
					return
				}
				// Every caller demands durability, like fsync-heavy
				// clients; group commit must merge them.
				if err := l.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	total := int64(workers * perWorker)
	if st.Appends != total {
		t.Fatalf("appends = %d, want %d", st.Appends, total)
	}
	// With 8 concurrent committers every region write should carry
	// several callers: far fewer physical flushes than Flush calls.
	if st.Flushes >= total {
		t.Fatalf("flushes = %d for %d Flush calls; no group commit", st.Flushes, total)
	}
	if st.GroupMerges == 0 {
		t.Fatal("no Flush caller ever piggybacked on an in-flight write")
	}
	t.Logf("appends=%d flushes=%d merges=%d maxFlushBlocks=%d",
		st.Appends, st.Flushes, st.GroupMerges, st.MaxFlushBlocks)

	// Durability: every record must be recoverable, in order, and
	// replay onto a fresh device must apply each exactly once.
	recs, err := Scan(mem, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != total {
		t.Fatalf("scanned %d records, want %d", len(recs), total)
	}
	seen := make(map[int64]bool)
	for i, r := range recs {
		if i > 0 && r.Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order at %d: %d after %d", i, r.Seq, recs[i-1].Seq)
		}
		if len(r.Updates) != 1 {
			t.Fatalf("record %d has %d updates, want 1", i, len(r.Updates))
		}
		seen[r.Updates[0].Addr] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("recovered %d distinct updates, want %d", len(seen), total)
	}
	dev := newMemRegion(int64(total+10) * 512)
	applied, err := Replay(recs, dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != int(total) {
		t.Fatalf("replay applied %d updates, want %d", applied, total)
	}
}

func TestFlushErrorKeepsRecordsBuffered(t *testing.T) {
	mem := newMemRegion(DefaultLogSize)
	fr := &failingRegion{m: mem, failWrites: true}
	l := New(fr, DefaultLogSize)
	if _, err := l.Append([]Update{upd(0, 0, 1, 0xAA)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err == nil {
		t.Fatal("flush succeeded against failing region")
	}
	// The storage came back; a retried Flush must still write the
	// record that failed the first time.
	fr.failWrites = false
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Scan(mem, DefaultLogSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Updates[0].Data[0] != 0xAA {
		t.Fatalf("record lost across transient flush failure: %+v", recs)
	}
}

type failingRegion struct {
	m          *memRegion
	failWrites bool
}

func (f *failingRegion) ReadAt(p []byte, off int64) error { return f.m.ReadAt(p, off) }

func (f *failingRegion) WriteAt(p []byte, off int64) error {
	if f.failWrites {
		return errors.New("injected write failure")
	}
	return f.m.WriteAt(p, off)
}

func TestBlockVersionHelpers(t *testing.T) {
	blk := make([]byte, BlockSize)
	SetBlockVersion(blk, 0xDEADBEEF)
	if BlockVersion(blk) != 0xDEADBEEF {
		t.Fatal("version round trip failed")
	}
	if binary.LittleEndian.Uint64(blk[MaxUpdateOffset:]) != 0xDEADBEEF {
		t.Fatal("version not in trailer")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(addr int64, off uint16, ver uint64, data []byte) bool {
		o := int(off) % (MaxUpdateOffset - 1)
		if len(data) == 0 {
			data = []byte{1}
		}
		if len(data) > MaxUpdateOffset-o {
			data = data[:MaxUpdateOffset-o]
		}
		u := Update{Addr: addr &^ 511, Off: o, Data: data, Ver: ver}
		rec, err := encodeRecord(7, []Update{u})
		if err != nil {
			return false
		}
		got, err := decodeBody(7, rec[recHdrLen:])
		if err != nil || len(got.Updates) != 1 {
			return false
		}
		g := got.Updates[0]
		return g.Addr == u.Addr && g.Off == u.Off && g.Ver == u.Ver && bytes.Equal(g.Data, u.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScanEmptyLog(t *testing.T) {
	recs, err := Scan(newMemRegion(DefaultLogSize), DefaultLogSize)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log scan: %d records, err=%v", len(recs), err)
	}
}
