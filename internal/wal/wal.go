// Package wal implements Frangipani's per-server write-ahead redo
// log (paper §4). Each Frangipani server owns a private, bounded
// (128 KB), circular log stored inside Petal. Metadata updates are
// described by log records carrying, for each affected 512-byte
// metadata block, the byte changes and a new version number. A
// record is written to the log (group-committed) before the metadata
// blocks themselves are updated in place.
//
// Recovery reads the log, finds its end by the monotonically
// increasing sequence number attached to each 512-byte log block, and
// replays records in order. A change is applied only if the on-disk
// block's version is older than the record's ("recovery never replays
// a log record describing an update that has already been
// completed"). Records are protected by a CRC so a torn or
// half-reclaimed region is skipped rather than misapplied.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Geometry constants.
const (
	// BlockSize is the log block size; each carries an 10-byte header.
	BlockSize = 512
	// blockHdr is LSN (8 bytes) + first-record anchor offset (2).
	blockHdr = 10
	// payloadPerBlock is the record stream capacity per log block.
	payloadPerBlock = BlockSize - blockHdr
	// MaxUpdateOffset bounds update data within a metadata block: the
	// last 8 bytes of every 512-byte metadata block hold its version
	// number and may only change through the version mechanism.
	MaxUpdateOffset = 512 - 8
	// DefaultLogSize is the paper's per-server log size.
	DefaultLogSize = 128 << 10
	// recHdrLen is magic(2) + len(4) + seq(8) + crc(4).
	recHdrLen = 18
	recMagic  = 0x4C52 // "LR"
	noAnchor  = 0xFFFF
)

// Errors.
var (
	ErrTooLarge  = errors.New("wal: record exceeds log capacity")
	ErrBadUpdate = errors.New("wal: update touches version trailer or out of bounds")
)

// BlockRegion is the storage a log lives on: a byte range addressed
// from 0, sector-aligned I/O (a window of a Petal virtual disk).
type BlockRegion interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
}

// BlockDev is the device holding the metadata blocks that replay
// writes to (the whole Petal virtual disk).
type BlockDev = BlockRegion

// Update describes one sub-block metadata change.
type Update struct {
	Addr int64  // byte address of the 512-byte metadata block
	Off  int    // offset of the change within the block (< 504)
	Data []byte // new bytes
	Ver  uint64 // new version number for the block
}

// BlockVersion reads the version trailer of a 512-byte metadata
// block.
func BlockVersion(block []byte) uint64 {
	return binary.LittleEndian.Uint64(block[MaxUpdateOffset:])
}

// SetBlockVersion writes the version trailer.
func SetBlockVersion(block []byte, v uint64) {
	binary.LittleEndian.PutUint64(block[MaxUpdateOffset:], v)
}

// Log is one server's in-memory view of its private log region.
type Log struct {
	region BlockRegion
	size   int64 // bytes
	blocks int64 // log blocks

	flushMu  sync.Mutex // serializes Flush bodies (shared boundary blocks)
	mu       sync.Mutex
	nextSeq  int64
	head     int64 // stream position of next byte to write
	tail     int64 // stream position of oldest unreleased record
	buf      []byte
	bufStart int64 // stream position of buf[0]
	pending  []recSpan
	reclaim  func(throughSeq int64)

	appends int64
	flushes int64
	wrote   int64
}

type recSpan struct {
	seq        int64
	start, end int64 // stream positions
}

// New opens a fresh (logically empty) log over the region. The
// region is not zeroed; sequence numbers distinguish old blocks.
func New(region BlockRegion, size int64) *Log {
	return &Log{
		region: region,
		size:   size,
		blocks: size / BlockSize,
	}
}

// SetReclaim registers the callback invoked when the log fills: the
// owner must make the metadata covered by records up to throughSeq
// durable (writing dirty blocks to Petal) and then call Release.
// Per the paper, "Frangipani reclaims the oldest 25% of the log
// space for new log entries" at that point.
func (l *Log) SetReclaim(f func(throughSeq int64)) {
	l.mu.Lock()
	l.reclaim = f
	l.mu.Unlock()
}

// streamCapacity is the usable byte capacity of the circular record
// stream.
func (l *Log) streamCapacity() int64 { return l.blocks * payloadPerBlock }

// encode serializes a record.
func encodeRecord(seq int64, ups []Update) ([]byte, error) {
	body := make([]byte, 0, 128)
	var tmp [10]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(ups)))
	body = append(body, tmp[:2]...)
	for _, u := range ups {
		if u.Off < 0 || len(u.Data) == 0 || u.Off+len(u.Data) > MaxUpdateOffset {
			return nil, fmt.Errorf("%w: off=%d len=%d", ErrBadUpdate, u.Off, len(u.Data))
		}
		var h [20]byte
		binary.LittleEndian.PutUint64(h[0:8], uint64(u.Addr))
		binary.LittleEndian.PutUint64(h[8:16], u.Ver)
		binary.LittleEndian.PutUint16(h[16:18], uint16(u.Off))
		binary.LittleEndian.PutUint16(h[18:20], uint16(len(u.Data)))
		body = append(body, h[:]...)
		body = append(body, u.Data...)
	}
	rec := make([]byte, recHdrLen+len(body))
	binary.LittleEndian.PutUint16(rec[0:2], recMagic)
	binary.LittleEndian.PutUint32(rec[2:6], uint32(len(body)))
	binary.LittleEndian.PutUint64(rec[6:14], uint64(seq))
	binary.LittleEndian.PutUint32(rec[14:18], crc32.ChecksumIEEE(body))
	copy(rec[recHdrLen:], body)
	return rec, nil
}

// Append buffers a record describing the updates and returns its
// sequence number. The record is durable only after Flush. If the
// log is too full, the reclaim callback runs synchronously first.
func (l *Log) Append(ups []Update) (int64, error) {
	l.mu.Lock()
	seq := l.nextSeq + 1
	rec, err := encodeRecord(seq, ups)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	need := int64(len(rec))
	if need > l.streamCapacity()/2 {
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, need)
	}
	for l.head+need-l.tail > l.streamCapacity() {
		// Log full: reclaim the oldest quarter.
		target := l.tail + l.streamCapacity()/4
		var through int64
		for _, sp := range l.pending {
			if sp.start < target {
				through = sp.seq
			}
		}
		cb := l.reclaim
		if cb == nil || through == 0 {
			// No reclaimer or nothing reclaimable: drop the oldest
			// quarter accounting anyway (records there must already
			// be released).
			l.dropThroughLocked(target)
			continue
		}
		l.mu.Unlock()
		cb(through)
		l.mu.Lock()
	}
	l.nextSeq = seq
	l.appends++
	l.pending = append(l.pending, recSpan{seq: seq, start: l.head, end: l.head + need})
	l.buf = append(l.buf, rec...)
	l.head += need
	l.mu.Unlock()
	return seq, nil
}

func (l *Log) dropThroughLocked(pos int64) {
	if pos > l.head {
		pos = l.head
	}
	if pos > l.tail {
		l.tail = pos
	}
	for len(l.pending) > 0 && l.pending[0].end <= l.tail {
		l.pending = l.pending[1:]
	}
}

// Release marks all records with seq <= throughSeq as reclaimable:
// their metadata updates have reached their permanent locations.
func (l *Log) Release(throughSeq int64) {
	l.mu.Lock()
	for len(l.pending) > 0 && l.pending[0].seq <= throughSeq {
		l.tail = l.pending[0].end
		l.pending = l.pending[1:]
	}
	if len(l.pending) == 0 {
		l.tail = l.head
	}
	// The flush buffer can shed bytes already released and flushed.
	l.mu.Unlock()
}

// Flush writes all buffered records to the region (group commit) and
// returns once they are durable there. Concurrent appends during the
// write land in the next flush.
func (l *Log) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if len(l.buf) == 0 {
		l.mu.Unlock()
		return nil
	}
	buf := l.buf
	start := l.bufStart
	l.buf = nil
	l.bufStart = l.head
	l.flushes++
	l.mu.Unlock()

	// Write the stream bytes into their log blocks. A block is
	// rewritten whole: LSN, anchor, payload.
	firstBlk := start / payloadPerBlock
	lastBlk := (start + int64(len(buf)) - 1) / payloadPerBlock
	for b := firstBlk; b <= lastBlk; b++ {
		blkStart := b * payloadPerBlock
		blkEnd := blkStart + payloadPerBlock
		blk := make([]byte, BlockSize)
		binary.LittleEndian.PutUint64(blk[0:8], uint64(b+1)) // LSN, monotone
		anchor := l.anchorFor(blkStart, blkEnd)
		binary.LittleEndian.PutUint16(blk[8:10], anchor)
		// Fill payload from buf where it overlaps, preserving prior
		// payload for the leading partial block.
		off := b % l.blocks * BlockSize
		if blkStart < start {
			if err := l.region.ReadAt(blk[blockHdr:], off+blockHdr); err != nil {
				return err
			}
			// Re-write header fields over what we read.
		}
		lo := max64(blkStart, start)
		hi := min64(blkEnd, start+int64(len(buf)))
		copy(blk[blockHdr+(lo-blkStart):], buf[lo-start:hi-start])
		if err := l.region.WriteAt(blk, off); err != nil {
			return err
		}
		l.mu.Lock()
		l.wrote += BlockSize
		l.mu.Unlock()
	}
	return nil
}

// anchorFor returns the payload offset of the first record starting
// inside the given stream range, or noAnchor.
func (l *Log) anchorFor(blkStart, blkEnd int64) uint16 {
	l.mu.Lock()
	defer l.mu.Unlock()
	best := int64(-1)
	for _, sp := range l.pending {
		if sp.start >= blkStart && sp.start < blkEnd {
			if best == -1 || sp.start < best {
				best = sp.start
			}
		}
	}
	if best == -1 {
		return noAnchor
	}
	return uint16(best - blkStart)
}

// Stats returns counters for benchmarks: records appended, flushes
// (group commits), and log bytes written.
func (l *Log) Stats() (appends, flushes, bytesWritten int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.flushes, l.wrote
}

// Pending returns the sequence range of records not yet released,
// and whether any exist.
func (l *Log) Pending() (low, high int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return 0, 0, false
	}
	return l.pending[0].seq, l.pending[len(l.pending)-1].seq, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RecoveredRecord is one decoded log record.
type RecoveredRecord struct {
	Seq     int64
	Updates []Update
}

// Scan reads a log region and returns the valid records found, in
// sequence order. It tolerates torn and wrapped logs: blocks are
// ordered by LSN, the end of the log is where the LSN sequence
// breaks, parsing starts at record anchors, and CRC-invalid records
// are skipped with a re-anchor at the next block.
func Scan(region BlockRegion, size int64) ([]RecoveredRecord, error) {
	blocks := size / BlockSize
	type blkInfo struct {
		lsn    int64
		anchor uint16
		data   []byte
	}
	// One bulk read of the whole region: a log is only 128 KB, and
	// per-block round trips to Petal would dominate recovery time.
	whole := make([]byte, blocks*BlockSize)
	if err := region.ReadAt(whole, 0); err != nil {
		return nil, err
	}
	var infos []blkInfo
	for i := int64(0); i < blocks; i++ {
		blk := whole[i*BlockSize : (i+1)*BlockSize]
		lsn := int64(binary.LittleEndian.Uint64(blk[0:8]))
		if lsn == 0 {
			continue // never written
		}
		infos = append(infos, blkInfo{
			lsn:    lsn,
			anchor: binary.LittleEndian.Uint16(blk[8:10]),
			data:   blk[blockHdr:],
		})
	}
	if len(infos) == 0 {
		return nil, nil
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].lsn < infos[b].lsn })
	// Keep only the contiguous LSN run ending at the maximum: older
	// detached runs are fully-reclaimed space.
	end := len(infos) - 1
	start := end
	for start > 0 && infos[start-1].lsn == infos[start].lsn-1 {
		start--
	}
	infos = infos[start:]

	// Parse the concatenated payload stream from the first anchor.
	stream := make([]byte, 0, len(infos)*payloadPerBlock)
	anchors := []int{} // stream offsets where records may start
	for i, inf := range infos {
		if inf.anchor != noAnchor && int(inf.anchor) < payloadPerBlock {
			anchors = append(anchors, i*payloadPerBlock+int(inf.anchor))
		}
		stream = append(stream, inf.data...)
	}
	var out []RecoveredRecord
	seen := make(map[int64]bool)
	for ai := 0; ai < len(anchors); ai++ {
		pos := anchors[ai]
		for pos+recHdrLen <= len(stream) {
			if binary.LittleEndian.Uint16(stream[pos:pos+2]) != recMagic {
				break
			}
			blen := int(binary.LittleEndian.Uint32(stream[pos+2 : pos+6]))
			seq := int64(binary.LittleEndian.Uint64(stream[pos+6 : pos+14]))
			crc := binary.LittleEndian.Uint32(stream[pos+14 : pos+18])
			if blen < 2 || pos+recHdrLen+blen > len(stream) {
				break
			}
			body := stream[pos+recHdrLen : pos+recHdrLen+blen]
			if crc32.ChecksumIEEE(body) != crc {
				break // torn record; re-anchor at a later block
			}
			if !seen[seq] {
				rec, err := decodeBody(seq, body)
				if err == nil {
					out = append(out, rec)
					seen[seq] = true
				}
			}
			pos += recHdrLen + blen
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, nil
}

func decodeBody(seq int64, body []byte) (RecoveredRecord, error) {
	rec := RecoveredRecord{Seq: seq}
	n := int(binary.LittleEndian.Uint16(body[0:2]))
	pos := 2
	for i := 0; i < n; i++ {
		if pos+20 > len(body) {
			return rec, errors.New("wal: truncated update header")
		}
		u := Update{
			Addr: int64(binary.LittleEndian.Uint64(body[pos : pos+8])),
			Ver:  binary.LittleEndian.Uint64(body[pos+8 : pos+16]),
			Off:  int(binary.LittleEndian.Uint16(body[pos+16 : pos+18])),
		}
		dlen := int(binary.LittleEndian.Uint16(body[pos+18 : pos+20]))
		pos += 20
		if pos+dlen > len(body) {
			return rec, errors.New("wal: truncated update data")
		}
		u.Data = append([]byte(nil), body[pos:pos+dlen]...)
		pos += dlen
		rec.Updates = append(rec.Updates, u)
	}
	return rec, nil
}

// Replay applies recovered records to the metadata device: for each
// block a record updates, the changes land only if the block's
// on-disk version is older than the record's, preserving the paper's
// "at most one log can hold an uncompleted update for any given
// block" invariant. All of one record's updates to a block share a
// version and are applied together (a record is atomic per block).
// It returns how many blocks were updated.
func Replay(records []RecoveredRecord, dev BlockDev) (applied int, err error) {
	for _, rec := range records {
		// Group this record's updates by block, preserving order.
		byBlock := make(map[int64][]Update)
		var order []int64
		for _, u := range rec.Updates {
			if _, seen := byBlock[u.Addr]; !seen {
				order = append(order, u.Addr)
			}
			byBlock[u.Addr] = append(byBlock[u.Addr], u)
		}
		for _, addr := range order {
			ups := byBlock[addr]
			blk := make([]byte, BlockSize)
			if err := dev.ReadAt(blk, addr); err != nil {
				return applied, err
			}
			if BlockVersion(blk) >= ups[0].Ver {
				continue // already completed
			}
			for _, u := range ups {
				copy(blk[u.Off:], u.Data)
			}
			SetBlockVersion(blk, ups[0].Ver)
			if err := dev.WriteAt(blk, addr); err != nil {
				return applied, err
			}
			applied++
		}
	}
	return applied, nil
}
