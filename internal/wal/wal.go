// Package wal implements Frangipani's per-server write-ahead redo
// log (paper §4). Each Frangipani server owns a private, bounded
// (128 KB), circular log stored inside Petal. Metadata updates are
// described by log records carrying, for each affected 512-byte
// metadata block, the byte changes and a new version number. A
// record is written to the log (group-committed) before the metadata
// blocks themselves are updated in place.
//
// Recovery reads the log, finds its end by the monotonically
// increasing sequence number attached to each 512-byte log block, and
// replays records in order. A change is applied only if the on-disk
// block's version is older than the record's ("recovery never replays
// a log record describing an update that has already been
// completed"). Records are protected by a CRC so a torn or
// half-reclaimed region is skipped rather than misapplied.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"frangipani/internal/bufpool"
	"frangipani/internal/obs"
)

// Geometry constants.
const (
	// BlockSize is the log block size; each carries an 10-byte header.
	BlockSize = 512
	// blockHdr is LSN (8 bytes) + first-record anchor offset (2).
	blockHdr = 10
	// payloadPerBlock is the record stream capacity per log block.
	payloadPerBlock = BlockSize - blockHdr
	// MaxUpdateOffset bounds update data within a metadata block: the
	// last 8 bytes of every 512-byte metadata block hold its version
	// number and may only change through the version mechanism.
	MaxUpdateOffset = 512 - 8
	// DefaultLogSize is the paper's per-server log size.
	DefaultLogSize = 128 << 10
	// recHdrLen is magic(2) + len(4) + seq(8) + crc(4).
	recHdrLen = 18
	recMagic  = 0x4C52 // "LR"
	noAnchor  = 0xFFFF
)

// Errors.
var (
	ErrTooLarge  = errors.New("wal: record exceeds log capacity")
	ErrBadUpdate = errors.New("wal: update touches version trailer or out of bounds")
)

// BlockRegion is the storage a log lives on: a byte range addressed
// from 0, sector-aligned I/O (a window of a Petal virtual disk).
type BlockRegion interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
}

// BlockDev is the device holding the metadata blocks that replay
// writes to (the whole Petal virtual disk).
type BlockDev = BlockRegion

// Update describes one sub-block metadata change.
type Update struct {
	Addr int64  // byte address of the 512-byte metadata block
	Off  int    // offset of the change within the block (< 504)
	Data []byte // new bytes
	Ver  uint64 // new version number for the block
}

// BlockVersion reads the version trailer of a 512-byte metadata
// block.
func BlockVersion(block []byte) uint64 {
	return binary.LittleEndian.Uint64(block[MaxUpdateOffset:])
}

// SetBlockVersion writes the version trailer.
func SetBlockVersion(block []byte, v uint64) {
	binary.LittleEndian.PutUint64(block[MaxUpdateOffset:], v)
}

// Log is one server's in-memory view of its private log region.
type Log struct {
	region BlockRegion
	size   int64 // bytes
	blocks int64 // log blocks

	mu       sync.Mutex
	nextSeq  int64
	head     int64 // stream position of next byte to write
	tail     int64 // stream position of oldest unreleased record
	buf      []byte
	bufStart int64 // stream position of buf[0]
	pending  []recSpan
	reclaim  func(throughSeq int64)
	// reclaiming single-flights the paced background reclaim kicked
	// when occupancy crosses the high-water mark, so writers stop
	// hitting the synchronous log-full wall in the first place.
	reclaiming bool

	// Group commit: at most one region write is in flight; concurrent
	// Flush callers whose bytes it covers piggyback on it instead of
	// issuing their own.
	flushing  bool
	flushDone chan struct{} // closed when the in-flight write completes
	durable   int64         // stream position known durable in the region
	lastFlush int64         // ns timestamp of the last successful flush

	appends        *obs.Counter
	flushes        *obs.Counter
	wrote          *obs.Counter
	groupMerges    *obs.Counter
	asyncReclaims  *obs.Counter // paced reclaims kicked in the background
	stallReclaims  *obs.Counter // appends that hit the synchronous log-full wall
	maxFlushBlocks *obs.Gauge

	// Observability; set once by SetObs before concurrent use, or
	// left nil/standalone for unwired logs.
	now       obs.NowFunc
	tr        *obs.Tracer
	appendLat *obs.Histogram
	flushLat  *obs.Histogram
	groupLat  *obs.Histogram
	jr        *obs.Journal      // flight recorder (nil-safe)
	acct      *obs.AccountTable // per-principal accounting (nil-safe)
}

type recSpan struct {
	seq        int64
	start, end int64 // stream positions
}

// New opens a fresh (logically empty) log over the region. The
// region is not zeroed; sequence numbers distinguish old blocks.
func New(region BlockRegion, size int64) *Log {
	return &Log{
		region:         region,
		size:           size,
		blocks:         size / BlockSize,
		appends:        obs.NewCounter(),
		flushes:        obs.NewCounter(),
		wrote:          obs.NewCounter(),
		groupMerges:    obs.NewCounter(),
		asyncReclaims:  obs.NewCounter(),
		stallReclaims:  obs.NewCounter(),
		maxFlushBlocks: obs.NewGauge(),
	}
}

// SetObs attaches the log's metrics to a registry under
// "wal.<metric>#<instance>" and enables latency histograms and flush
// spans. Call right after New, before concurrent use; a nil registry
// keeps the standalone counters.
func (l *Log) SetObs(reg *obs.Registry, instance string) {
	if reg == nil {
		return
	}
	l.mu.Lock()
	l.appends = reg.Counter("wal.appends#" + instance)
	l.flushes = reg.Counter("wal.flushes#" + instance)
	l.wrote = reg.Counter("wal.wrote.bytes#" + instance)
	l.groupMerges = reg.Counter("wal.groupcommit.merges#" + instance)
	l.asyncReclaims = reg.Counter("wal.reclaim.async#" + instance)
	l.stallReclaims = reg.Counter("wal.reclaim.stall#" + instance)
	l.maxFlushBlocks = reg.Gauge("wal.flush.maxblocks#" + instance)
	l.now = reg.Now
	l.tr = reg.Tracer()
	l.appendLat = reg.Histogram("wal.append.latency#" + instance)
	l.flushLat = reg.Histogram("wal.flush.latency#" + instance)
	l.groupLat = reg.Histogram("wal.groupcommit.latency#" + instance)
	l.jr = reg.Journal(instance)
	l.acct = reg.Accounts()
	l.mu.Unlock()
}

// SetReclaim registers the callback invoked when the log fills: the
// owner must make the metadata covered by records up to throughSeq
// durable (writing dirty blocks to Petal) and then call Release.
// Per the paper, "Frangipani reclaims the oldest 25% of the log
// space for new log entries" at that point.
func (l *Log) SetReclaim(f func(throughSeq int64)) {
	l.mu.Lock()
	l.reclaim = f
	l.mu.Unlock()
}

// streamCapacity is the usable byte capacity of the circular record
// stream.
func (l *Log) streamCapacity() int64 { return l.blocks * payloadPerBlock }

// encode serializes a record.
func encodeRecord(seq int64, ups []Update) ([]byte, error) {
	body := make([]byte, 0, 128)
	var tmp [10]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(ups)))
	body = append(body, tmp[:2]...)
	for _, u := range ups {
		if u.Off < 0 || len(u.Data) == 0 || u.Off+len(u.Data) > MaxUpdateOffset {
			return nil, fmt.Errorf("%w: off=%d len=%d", ErrBadUpdate, u.Off, len(u.Data))
		}
		var h [20]byte
		binary.LittleEndian.PutUint64(h[0:8], uint64(u.Addr))
		binary.LittleEndian.PutUint64(h[8:16], u.Ver)
		binary.LittleEndian.PutUint16(h[16:18], uint16(u.Off))
		binary.LittleEndian.PutUint16(h[18:20], uint16(len(u.Data)))
		body = append(body, h[:]...)
		body = append(body, u.Data...)
	}
	rec := make([]byte, recHdrLen+len(body))
	binary.LittleEndian.PutUint16(rec[0:2], recMagic)
	binary.LittleEndian.PutUint32(rec[2:6], uint32(len(body)))
	binary.LittleEndian.PutUint64(rec[6:14], uint64(seq))
	binary.LittleEndian.PutUint32(rec[14:18], crc32.ChecksumIEEE(body))
	copy(rec[recHdrLen:], body)
	return rec, nil
}

// Append buffers a record describing the updates and returns its
// sequence number. The record is durable only after Flush. If the
// log is too full, the reclaim callback runs synchronously first.
func (l *Log) Append(ups []Update) (int64, error) {
	l.mu.Lock()
	var start int64
	if l.now != nil {
		start = l.now()
	}
	seq := l.nextSeq + 1
	rec, err := encodeRecord(seq, ups)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	need := int64(len(rec))
	if need > l.streamCapacity()/2 {
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, need)
	}
	for l.head+need-l.tail > l.streamCapacity() {
		// Log full: reclaim the oldest quarter. This is the stall
		// backstop — the paced background reclaim below aims to keep
		// writers from ever reaching it.
		l.stallReclaims.Inc()
		target := l.tail + l.streamCapacity()/4
		var through int64
		for _, sp := range l.pending {
			if sp.start < target {
				through = sp.seq
			}
		}
		cb := l.reclaim
		l.jr.Record("wal", "reclaim", "full", uint64(through), l.head-l.tail, "")
		if cb == nil || through == 0 {
			// No reclaimer or nothing reclaimable: drop the oldest
			// quarter accounting anyway (records there must already
			// be released).
			l.dropThroughLocked(target)
			continue
		}
		l.mu.Unlock()
		cb(through)
		l.mu.Lock()
	}
	l.nextSeq = seq
	l.appends.Inc()
	// Append runs on the operation's own goroutine, so the caller's
	// principal binding is in scope to charge the log bytes.
	l.acct.WAL(obs.CurrentPrincipal(), need)
	l.jr.Record("wal", "append", "ok", uint64(seq), need, "")
	l.pending = append(l.pending, recSpan{seq: seq, start: l.head, end: l.head + need})
	l.buf = append(l.buf, rec...)
	l.head += need
	l.maybeReclaimLocked()
	if l.now != nil {
		l.appendLat.Record(l.now() - start)
	}
	l.mu.Unlock()
	return seq, nil
}

// maybeReclaimLocked paces log reclamation: when occupancy crosses
// three quarters of capacity, kick ONE background reclaim of the
// oldest quarter instead of waiting for the log to fill and stalling
// the appender synchronously. At high server counts the synchronous
// stalls serialize — every server's writers park behind its own
// log-full flush at roughly the same fill rate — so reclaiming ahead
// of the wall converts a stop-the-world pause into overlapped
// background write-back. Caller holds l.mu.
func (l *Log) maybeReclaimLocked() {
	if l.reclaiming || l.reclaim == nil {
		return
	}
	if l.head-l.tail <= l.streamCapacity()*3/4 {
		return
	}
	target := l.tail + l.streamCapacity()/4
	var through int64
	for _, sp := range l.pending {
		if sp.start < target {
			through = sp.seq
		}
	}
	if through == 0 {
		return
	}
	l.reclaiming = true
	l.asyncReclaims.Inc()
	l.jr.Record("wal", "reclaim", "async", uint64(through), l.head-l.tail, "")
	cb := l.reclaim
	go func() {
		cb(through)
		l.mu.Lock()
		l.reclaiming = false
		l.mu.Unlock()
	}()
}

func (l *Log) dropThroughLocked(pos int64) {
	if pos > l.head {
		pos = l.head
	}
	if pos > l.tail {
		l.tail = pos
	}
	for len(l.pending) > 0 && l.pending[0].end <= l.tail {
		l.pending = l.pending[1:]
	}
}

// Release marks all records with seq <= throughSeq as reclaimable:
// their metadata updates have reached their permanent locations.
func (l *Log) Release(throughSeq int64) {
	l.mu.Lock()
	for len(l.pending) > 0 && l.pending[0].seq <= throughSeq {
		l.tail = l.pending[0].end
		l.pending = l.pending[1:]
	}
	if len(l.pending) == 0 {
		l.tail = l.head
	}
	// The flush buffer can shed bytes already released and flushed.
	l.mu.Unlock()
}

// Flush writes all buffered records to the region (group commit) and
// returns once every record appended before the call is durable
// there. Concurrent callers merge: while one write is in flight,
// later callers wait for it and piggyback if it covered their bytes,
// so N concurrent Flushes cost far fewer than N region writes.
func (l *Log) Flush() error {
	l.mu.Lock()
	target := l.head
	l.mu.Unlock()
	return l.flushTo(target)
}

func (l *Log) flushTo(target int64) error {
	for {
		l.mu.Lock()
		if l.durable >= target {
			l.mu.Unlock()
			return nil
		}
		if l.flushing {
			// Piggyback: wait for the in-flight write, then re-check.
			ch := l.flushDone
			l.groupMerges.Inc()
			l.jr.Record("wal", "groupcommit", "merge", 0, target-l.durable, "")
			now := l.now
			l.mu.Unlock()
			var gstart int64
			if now != nil {
				gstart = now()
			}
			<-ch
			if now != nil {
				l.groupLat.Record(now() - gstart)
			}
			continue
		}
		if len(l.buf) == 0 {
			// Nothing buffered and no write in flight: everything
			// appended before the call is already durable.
			l.mu.Unlock()
			return nil
		}
		buf, start := l.buf, l.bufStart
		l.buf = nil
		l.bufStart = l.head
		l.flushing = true
		l.flushDone = make(chan struct{})
		l.flushes.Inc()
		pend := append([]recSpan(nil), l.pending...)
		now, tr := l.now, l.tr
		l.mu.Unlock()

		sp := tr.Child("wal", "flush")
		var fstart int64
		if now != nil {
			fstart = now()
		}
		err := l.writeStream(buf, start, pend)
		sp.Done()
		if now != nil {
			l.flushLat.Record(now() - fstart)
		}
		if err != nil {
			l.jr.Record("wal", "flush", "fail", uint64(start), int64(len(buf)), err.Error())
		} else {
			l.jr.Record("wal", "flush", "ok", uint64(start), int64(len(buf)), "")
		}

		l.mu.Lock()
		if err == nil {
			if end := start + int64(len(buf)); end > l.durable {
				l.durable = end
			}
			if l.now != nil {
				l.lastFlush = l.now()
			}
		} else {
			// Put the unwritten bytes back so a retry (after a
			// transient Petal failure) rewrites them; appends during
			// the attempt extended l.buf from start+len(buf).
			l.buf = append(buf, l.buf...)
			l.bufStart = start
		}
		l.flushing = false
		close(l.flushDone)
		l.mu.Unlock()
		if err != nil {
			return err
		}
		// Records appended during the write may still be below target;
		// loop to cover them.
	}
}

// writeStream makes the stream bytes [start, start+len(buf)) durable.
// Affected log blocks are assembled in memory — LSN, anchor, payload —
// and written with one WriteAt per physically contiguous run (at most
// two when the circular log wraps) instead of per-block I/O.
func (l *Log) writeStream(buf []byte, start int64, pend []recSpan) error {
	firstBlk := start / payloadPerBlock
	lastBlk := (start + int64(len(buf)) - 1) / payloadPerBlock
	nBlks := lastBlk - firstBlk + 1
	// Assemble the run in a pooled buffer: every layer below copies
	// synchronously (the Petal client snapshots write payloads before
	// they reach the carrier), so the buffer is dead once WriteAt
	// returns and steady-state flushing recycles a small working set.
	// Recovery treats zero bytes past the stream end as a clean stop,
	// so the recycled buffer is cleared like a fresh allocation.
	bigp := bufpool.Get(int(nBlks * BlockSize))
	defer bufpool.Put(bigp)
	big := *bigp
	clear(big)
	// Preserve the prior payload of a leading partial block.
	if start%payloadPerBlock != 0 {
		off := firstBlk % l.blocks * BlockSize
		if err := l.region.ReadAt(big[blockHdr:BlockSize], off+blockHdr); err != nil {
			return err
		}
	}
	for b := firstBlk; b <= lastBlk; b++ {
		blk := big[(b-firstBlk)*BlockSize : (b-firstBlk+1)*BlockSize]
		blkStart := b * payloadPerBlock
		blkEnd := blkStart + payloadPerBlock
		binary.LittleEndian.PutUint64(blk[0:8], uint64(b+1)) // LSN, monotone
		binary.LittleEndian.PutUint16(blk[8:10], anchorIn(pend, blkStart, blkEnd))
		lo := max64(blkStart, start)
		hi := min64(blkEnd, start+int64(len(buf)))
		copy(blk[blockHdr+(lo-blkStart):], buf[lo-start:hi-start])
	}
	var written int64
	for idx := int64(0); idx < nBlks; {
		phys := (firstBlk + idx) % l.blocks
		runLen := min64(nBlks-idx, l.blocks-phys)
		if err := l.region.WriteAt(big[idx*BlockSize:(idx+runLen)*BlockSize], phys*BlockSize); err != nil {
			return err
		}
		written += runLen * BlockSize
		idx += runLen
	}
	l.wrote.Add(written)
	l.maxFlushBlocks.SetMax(nBlks)
	return nil
}

// anchorIn returns the payload offset of the first record starting
// inside the given stream range, or noAnchor.
func anchorIn(pend []recSpan, blkStart, blkEnd int64) uint16 {
	best := int64(-1)
	for _, sp := range pend {
		if sp.start >= blkStart && sp.start < blkEnd {
			if best == -1 || sp.start < best {
				best = sp.start
			}
		}
	}
	if best == -1 {
		return noAnchor
	}
	return uint16(best - blkStart)
}

// Stats aggregates the log's counters for benchmarks.
type Stats struct {
	// Appends is the number of records appended.
	Appends int64
	// Flushes is the number of group-commit region writes issued.
	Flushes int64
	// BytesWritten is the log bytes written to the region.
	BytesWritten int64
	// GroupMerges counts Flush callers that piggybacked on another
	// caller's in-flight write instead of issuing their own.
	GroupMerges int64
	// AsyncReclaims counts paced reclaims kicked in the background at
	// the high-water mark; StallReclaims counts appends that still hit
	// the synchronous log-full wall (the pacing's failure mode).
	AsyncReclaims int64
	StallReclaims int64
	// MaxFlushBlocks is the largest single flush, in log blocks.
	MaxFlushBlocks int64
}

// Stats returns a snapshot of the log's counters. The counters are
// individually race-safe, so no lock is needed (the old
// implementation read several fields under the log mutex; the
// registry-backed counters made that unnecessary).
func (l *Log) Stats() Stats {
	return Stats{
		Appends:        l.appends.Value(),
		Flushes:        l.flushes.Value(),
		BytesWritten:   l.wrote.Value(),
		GroupMerges:    l.groupMerges.Value(),
		AsyncReclaims:  l.asyncReclaims.Value(),
		StallReclaims:  l.stallReclaims.Value(),
		MaxFlushBlocks: l.maxFlushBlocks.Value(),
	}
}

// FlushHealth reports the write-stall signals for health probing:
// how many stream bytes sit buffered but not yet durable, and the
// timestamp (registry clock, ns) of the last successful flush — 0
// until the first one.
func (l *Log) FlushHealth() (backlogBytes int64, lastFlushNs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head - l.durable, l.lastFlush
}

// Pending returns the sequence range of records not yet released,
// and whether any exist.
func (l *Log) Pending() (low, high int64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return 0, 0, false
	}
	return l.pending[0].seq, l.pending[len(l.pending)-1].seq, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RecoveredRecord is one decoded log record.
type RecoveredRecord struct {
	Seq     int64
	Updates []Update
}

// Scan reads a log region and returns the valid records found, in
// sequence order. It tolerates torn and wrapped logs: blocks are
// ordered by LSN, the end of the log is where the LSN sequence
// breaks, parsing starts at record anchors, and CRC-invalid records
// are skipped with a re-anchor at the next block.
func Scan(region BlockRegion, size int64) ([]RecoveredRecord, error) {
	blocks := size / BlockSize
	type blkInfo struct {
		lsn    int64
		anchor uint16
		data   []byte
	}
	// One bulk read of the whole region: a log is only 128 KB, and
	// per-block round trips to Petal would dominate recovery time.
	whole := make([]byte, blocks*BlockSize)
	if err := region.ReadAt(whole, 0); err != nil {
		return nil, err
	}
	var infos []blkInfo
	for i := int64(0); i < blocks; i++ {
		blk := whole[i*BlockSize : (i+1)*BlockSize]
		lsn := int64(binary.LittleEndian.Uint64(blk[0:8]))
		if lsn == 0 {
			continue // never written
		}
		infos = append(infos, blkInfo{
			lsn:    lsn,
			anchor: binary.LittleEndian.Uint16(blk[8:10]),
			data:   blk[blockHdr:],
		})
	}
	if len(infos) == 0 {
		return nil, nil
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].lsn < infos[b].lsn })
	// Keep only the contiguous LSN run ending at the maximum: older
	// detached runs are fully-reclaimed space.
	end := len(infos) - 1
	start := end
	for start > 0 && infos[start-1].lsn == infos[start].lsn-1 {
		start--
	}
	infos = infos[start:]

	// Parse the concatenated payload stream from the first anchor.
	stream := make([]byte, 0, len(infos)*payloadPerBlock)
	anchors := []int{} // stream offsets where records may start
	for i, inf := range infos {
		if inf.anchor != noAnchor && int(inf.anchor) < payloadPerBlock {
			anchors = append(anchors, i*payloadPerBlock+int(inf.anchor))
		}
		stream = append(stream, inf.data...)
	}
	var out []RecoveredRecord
	seen := make(map[int64]bool)
	for ai := 0; ai < len(anchors); ai++ {
		pos := anchors[ai]
		for pos+recHdrLen <= len(stream) {
			if binary.LittleEndian.Uint16(stream[pos:pos+2]) != recMagic {
				break
			}
			blen := int(binary.LittleEndian.Uint32(stream[pos+2 : pos+6]))
			seq := int64(binary.LittleEndian.Uint64(stream[pos+6 : pos+14]))
			crc := binary.LittleEndian.Uint32(stream[pos+14 : pos+18])
			if blen < 2 || pos+recHdrLen+blen > len(stream) {
				break
			}
			body := stream[pos+recHdrLen : pos+recHdrLen+blen]
			if crc32.ChecksumIEEE(body) != crc {
				break // torn record; re-anchor at a later block
			}
			if !seen[seq] {
				rec, err := decodeBody(seq, body)
				if err == nil {
					out = append(out, rec)
					seen[seq] = true
				}
			}
			pos += recHdrLen + blen
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, nil
}

func decodeBody(seq int64, body []byte) (RecoveredRecord, error) {
	rec := RecoveredRecord{Seq: seq}
	n := int(binary.LittleEndian.Uint16(body[0:2]))
	pos := 2
	for i := 0; i < n; i++ {
		if pos+20 > len(body) {
			return rec, errors.New("wal: truncated update header")
		}
		u := Update{
			Addr: int64(binary.LittleEndian.Uint64(body[pos : pos+8])),
			Ver:  binary.LittleEndian.Uint64(body[pos+8 : pos+16]),
			Off:  int(binary.LittleEndian.Uint16(body[pos+16 : pos+18])),
		}
		dlen := int(binary.LittleEndian.Uint16(body[pos+18 : pos+20]))
		pos += 20
		if pos+dlen > len(body) {
			return rec, errors.New("wal: truncated update data")
		}
		u.Data = append([]byte(nil), body[pos:pos+dlen]...)
		pos += dlen
		rec.Updates = append(rec.Updates, u)
	}
	return rec, nil
}

// Replay applies recovered records to the metadata device: for each
// block a record updates, the changes land only if the block's
// on-disk version is older than the record's, preserving the paper's
// "at most one log can hold an uncompleted update for any given
// block" invariant. All of one record's updates to a block share a
// version and are applied together (a record is atomic per block).
// It returns how many blocks were updated.
func Replay(records []RecoveredRecord, dev BlockDev) (applied int, err error) {
	for _, rec := range records {
		// Group this record's updates by block, preserving order.
		byBlock := make(map[int64][]Update)
		var order []int64
		for _, u := range rec.Updates {
			if _, seen := byBlock[u.Addr]; !seen {
				order = append(order, u.Addr)
			}
			byBlock[u.Addr] = append(byBlock[u.Addr], u)
		}
		for _, addr := range order {
			ups := byBlock[addr]
			blk := make([]byte, BlockSize)
			if err := dev.ReadAt(blk, addr); err != nil {
				return applied, err
			}
			if BlockVersion(blk) >= ups[0].Ver {
				continue // already completed
			}
			for _, u := range ups {
				copy(blk[u.Off:], u.Data)
			}
			SetBlockVersion(blk, ups[0].Ver)
			if err := dev.WriteAt(blk, addr); err != nil {
				return applied, err
			}
			applied++
		}
	}
	return applied, nil
}
