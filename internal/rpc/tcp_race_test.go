package rpc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frangipani/internal/sim"
)

// TestTCPReconnectRace hammers one (from, to) pair with concurrent
// senders while the receiver repeatedly unregisters and re-registers
// (changing its port each time), so senders race connection teardown
// and the redial path. Run under -race this exercises the carrier's
// connection table, writer shutdown, and in-flight stream cleanup;
// the final delivery check proves the carrier recovers.
func TestTCPReconnectRace(t *testing.T) {
	carrier := NewTCPCarrier()
	defer carrier.Close()
	var delivered atomic.Int64
	register := func() {
		carrier.Register("rx", func(from string, body any, size int) {
			if size <= 0 {
				t.Errorf("recv reported size %d, want > 0", size)
			}
			delivered.Add(1)
			Release(envBody(body))
		})
	}
	register()
	clock := sim.NewClock(1)
	tx := NewEndpoint("tx", carrier, clock, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Best-effort: sends racing a teardown may fail or be
				// dropped; the carrier just must not deadlock or race.
				_ = tx.Cast("rx", tcpEcho{N: g*1000 + i})
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		carrier.Unregister("rx")
		time.Sleep(5 * time.Millisecond)
		register()
	}
	close(stop)
	wg.Wait()

	// After the churn settles, delivery must work again.
	before := delivered.Load()
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("no delivery after reconnect churn")
		}
		_ = tx.Cast("rx", tcpEcho{N: -1})
		time.Sleep(5 * time.Millisecond)
	}
}
