package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCPCarrier implements Carrier over real TCP connections, so the
// Petal, lock service, and Frangipani protocols can run between
// actual processes instead of the simulated network. Each registered
// host gets a listener; senders keep one persistent connection per
// (from, to) pair, which preserves the per-pair FIFO ordering the
// lock protocol depends on. Message bodies travel as gob; every
// concrete wire type must be registered with RegisterType (the
// protocol packages do so in their init functions).
//
// The name directory maps logical host names to TCP addresses. In a
// single process (tests) it fills itself as hosts register; across
// processes, seed it with SetAddr.
type TCPCarrier struct {
	mu        sync.Mutex
	dir       map[string]string // logical name -> host:port
	listeners map[string]net.Listener
	recvs     map[string]func(from string, body any, size int)
	conns     map[string]*tcpConn // from|to -> connection
	closed    bool
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// tcpFrame is the wire envelope.
type tcpFrame struct {
	From string
	Body any
}

// RegisterType makes a concrete message type encodable on TCP
// carriers (a thin wrapper over gob.Register).
func RegisterType(v any) { gob.Register(v) }

func init() {
	gob.Register(envelope{})
}

// NewTCPCarrier returns an empty carrier.
func NewTCPCarrier() *TCPCarrier {
	return &TCPCarrier{
		dir:       make(map[string]string),
		listeners: make(map[string]net.Listener),
		recvs:     make(map[string]func(string, any, int)),
		conns:     make(map[string]*tcpConn),
	}
}

// SetAddr seeds the name directory (for cross-process deployments).
func (t *TCPCarrier) SetAddr(name, addr string) {
	t.mu.Lock()
	t.dir[name] = addr
	t.mu.Unlock()
}

// Addr reports the listen address of a registered host.
func (t *TCPCarrier) Addr(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dir[name]
}

// Register implements Carrier: it opens a listener for the host and
// serves incoming frames to recv.
func (t *TCPCarrier) Register(name string, recv func(from string, body any, size int)) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("rpc: tcp listen: %v", err))
	}
	t.mu.Lock()
	t.dir[name] = ln.Addr().String()
	t.listeners[name] = ln
	t.recvs[name] = recv
	t.mu.Unlock()
	go t.acceptLoop(name, ln)
}

func (t *TCPCarrier) acceptLoop(name string, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.serveConn(name, conn)
	}
}

func (t *TCPCarrier) serveConn(name string, conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f tcpFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		t.mu.Lock()
		recv := t.recvs[name]
		t.mu.Unlock()
		if recv != nil {
			recv(f.From, f.Body, 0)
		}
	}
}

// Unregister implements Carrier.
func (t *TCPCarrier) Unregister(name string) {
	t.mu.Lock()
	if ln, ok := t.listeners[name]; ok {
		ln.Close()
		delete(t.listeners, name)
	}
	delete(t.recvs, name)
	t.mu.Unlock()
}

// Send implements Carrier: one persistent gob stream per (from, to)
// pair.
func (t *TCPCarrier) Send(from, to string, body any, size int) error {
	key := from + "|" + to
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[key]
	addr := t.dir[to]
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("rpc: no address for host %q", to)
	}
	if conn == nil {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("rpc: dial %s: %w", to, err)
		}
		conn = &tcpConn{c: c, enc: gob.NewEncoder(c)}
		t.mu.Lock()
		if existing := t.conns[key]; existing != nil {
			t.mu.Unlock()
			c.Close()
			conn = existing
		} else {
			t.conns[key] = conn
			t.mu.Unlock()
		}
	}
	conn.mu.Lock()
	err := conn.enc.Encode(tcpFrame{From: from, Body: body})
	conn.mu.Unlock()
	if err != nil {
		// Drop the broken connection; the caller's retry redials.
		t.mu.Lock()
		if t.conns[key] == conn {
			delete(t.conns, key)
		}
		t.mu.Unlock()
		conn.c.Close()
		return fmt.Errorf("rpc: send %s->%s: %w", from, to, err)
	}
	return nil
}

// Close shuts down every listener and connection.
func (t *TCPCarrier) Close() {
	t.mu.Lock()
	t.closed = true
	for _, ln := range t.listeners {
		ln.Close()
	}
	for _, c := range t.conns {
		c.c.Close()
	}
	t.listeners = make(map[string]net.Listener)
	t.conns = make(map[string]*tcpConn)
	t.mu.Unlock()
}
