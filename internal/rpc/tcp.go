package rpc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"frangipani/internal/bufpool"
	"frangipani/internal/obs"
)

// TCPCarrier implements Carrier over real TCP connections, so the
// Petal, lock service, and Frangipani protocols can run between
// actual processes instead of the simulated network. Each registered
// host gets a listener; senders keep one persistent connection per
// (from, to) pair.
//
// Messages travel in the hand-rolled framing from codec.go (gob only
// for types without a registered wire codec), multiplexed: every
// message gets a stream id and is cut into frames of at most
// maxChunk bytes, and a dedicated writer goroutine per connection
// interleaves the frames of concurrent messages. A 1 MB WriteV no
// longer holds an encoder mutex while it marshals — senders encode
// headers concurrently, enqueue, and the payload bytes are written
// writev-style straight from the caller's buffers. The receiver keeps
// an in-flight table of partially-arrived streams, reassembling each
// message into one pooled buffer and delivering it on its final
// frame, so small RPCs overtake bulk transfers instead of
// head-of-line blocking behind them.
//
// Messages with a correlation id (Call requests and replies) complete
// out of order by design; casts — the lock protocol's asynchronous
// messages, which rely on per-pair FIFO ordering — are confined to a
// single ordered lane per connection: at most one cast is in flight
// at a time and later casts queue behind it, so their delivery order
// is exactly their send order.
//
// The name directory maps logical host names to TCP addresses. In a
// single process (tests) it fills itself as hosts register; across
// processes, seed it with SetAddr.
type TCPCarrier struct {
	mu        sync.Mutex
	dir       map[string]string // logical name -> host:port
	listeners map[string]net.Listener
	recvs     map[string]func(from string, body any, size int)
	conns     map[string]*muxConn // from|to -> connection
	closed    bool

	obsv atomic.Pointer[tcpObs]
}

// tcpObs holds the carrier's wire accounting: real bytes and frames
// on the sockets, message counts per codec path, and the
// receiver-side high-water mark of concurrently open (partially
// received) streams per connection — the direct evidence of
// multiplexing. It sits behind an atomic pointer so SetObs can re-home
// the counters in a registry without racing live connections.
type tcpObs struct {
	bytesSent   *obs.Counter
	bytesRecv   *obs.Counter
	framesSent  *obs.Counter
	framesRecv  *obs.Counter
	msgsFast    *obs.Counter
	msgsGob     *obs.Counter
	decodeErrs  *obs.Counter
	streamsPeak *obs.Gauge
	sendRedials *obs.Counter
	// reg, when wired, feeds connection lifecycle events (connect,
	// drop, redial) into the per-host flight-recorder journals. Nil on
	// an unwired carrier; Journal() on a nil registry no-ops.
	reg *obs.Registry
}

// journal records one connection-lifecycle event into host's journal.
func (o *tcpObs) journal(host, kind string, detail string) {
	o.reg.Journal(host).Record("rpc", "conn", kind, 0, 0, detail)
}

// TCPStats is a snapshot of a carrier's wire accounting.
type TCPStats struct {
	// BytesSent/BytesRecv are real socket bytes including frame
	// headers and connection preambles.
	BytesSent, BytesRecv int64
	// FramesSent/FramesRecv count mux frames.
	FramesSent, FramesRecv int64
	// MsgsFast/MsgsGob split sent messages between the hand-rolled
	// codec and the gob escape hatch.
	MsgsFast, MsgsGob int64
	// DecodeErrs counts inbound messages the codec rejected.
	DecodeErrs int64
	// StreamsPeak is the highest number of concurrently open inbound
	// streams observed on any single connection — a value >= 2 means
	// the carrier really interleaved messages on one socket.
	StreamsPeak int64
	// SendRedials counts sends that found a dead connection and
	// re-dialed.
	SendRedials int64
}

// Stats snapshots the carrier's wire accounting.
func (t *TCPCarrier) Stats() TCPStats {
	o := t.obsv.Load()
	return TCPStats{
		BytesSent:   o.bytesSent.Value(),
		BytesRecv:   o.bytesRecv.Value(),
		FramesSent:  o.framesSent.Value(),
		FramesRecv:  o.framesRecv.Value(),
		MsgsFast:    o.msgsFast.Value(),
		MsgsGob:     o.msgsGob.Value(),
		DecodeErrs:  o.decodeErrs.Value(),
		StreamsPeak: o.streamsPeak.Value(),
		SendRedials: o.sendRedials.Value(),
	}
}

// SetObs re-homes the carrier's counters in a metrics registry under
// rpc.tcp.* so daemon deployments export bytes-on-wire alongside the
// rest of the cluster metrics. Counts accumulated before the call are
// not migrated.
func (t *TCPCarrier) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.obsv.Store(&tcpObs{
		bytesSent:   reg.Counter("rpc.tcp.bytes.sent"),
		bytesRecv:   reg.Counter("rpc.tcp.bytes.recv"),
		framesSent:  reg.Counter("rpc.tcp.frames.sent"),
		framesRecv:  reg.Counter("rpc.tcp.frames.recv"),
		msgsFast:    reg.Counter("rpc.tcp.msgs.fast"),
		msgsGob:     reg.Counter("rpc.tcp.msgs.gob"),
		decodeErrs:  reg.Counter("rpc.tcp.decode.errors"),
		streamsPeak: reg.Gauge("rpc.tcp.streams.peak"),
		sendRedials: reg.Counter("rpc.tcp.send.redials"),
		reg:         reg,
	})
}

// Wire framing constants. Each frame is
//
//	u32 chunkLen | u32 streamID | u8 flags | [u32 msgLen if FIRST] | chunk
//
// and a new connection opens with a preamble: magic, then the
// sender's uvarint-length-prefixed logical name (constant for the
// connection, so it is not repeated per message).
const (
	frameHdrLen = 9
	flagFirst   = 1
	flagFin     = 2

	// maxChunk bounds one frame's chunk so a bulk transfer yields the
	// socket to concurrent messages every 64 KB.
	maxChunk = 64 << 10
	// maxMsg bounds a whole reassembled message — far above the 1 MB
	// scatter-gather cap, low enough to reject corrupt lengths before
	// they allocate.
	maxMsg = 16 << 20
	// sendQueue is the per-connection backpressure depth.
	sendQueue = 256
)

var muxMagic = [6]byte{'F', 'R', 'G', 'P', '2', '\n'}

// RegisterType makes a concrete message type encodable on TCP
// carriers' gob escape hatch (a thin wrapper over gob.Register).
func RegisterType(v any) { gob.Register(v) }

func init() {
	gob.Register(Envelope{})
}

// NewTCPCarrier returns an empty carrier.
func NewTCPCarrier() *TCPCarrier {
	t := &TCPCarrier{
		dir:       make(map[string]string),
		listeners: make(map[string]net.Listener),
		recvs:     make(map[string]func(string, any, int)),
		conns:     make(map[string]*muxConn),
	}
	t.obsv.Store(&tcpObs{
		bytesSent:   obs.NewCounter(),
		bytesRecv:   obs.NewCounter(),
		framesSent:  obs.NewCounter(),
		framesRecv:  obs.NewCounter(),
		msgsFast:    obs.NewCounter(),
		msgsGob:     obs.NewCounter(),
		decodeErrs:  obs.NewCounter(),
		streamsPeak: obs.NewGauge(),
		sendRedials: obs.NewCounter(),
	})
	return t
}

// SetAddr seeds the name directory (for cross-process deployments).
func (t *TCPCarrier) SetAddr(name, addr string) {
	t.mu.Lock()
	t.dir[name] = addr
	t.mu.Unlock()
}

// Addr reports the listen address of a registered host.
func (t *TCPCarrier) Addr(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dir[name]
}

// Register implements Carrier: it opens a listener for the host and
// serves incoming frames to recv.
func (t *TCPCarrier) Register(name string, recv func(from string, body any, size int)) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("rpc: tcp listen: %v", err))
	}
	t.mu.Lock()
	t.dir[name] = ln.Addr().String()
	t.listeners[name] = ln
	t.recvs[name] = recv
	t.mu.Unlock()
	go t.acceptLoop(name, ln)
}

func (t *TCPCarrier) acceptLoop(name string, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.serveConn(name, conn)
	}
}

// inStream is one partially received message in the receiver's
// in-flight table.
type inStream struct {
	buf *[]byte
	off int
}

func (t *TCPCarrier) serveConn(name string, conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, maxChunk)

	// Preamble: magic + sender name.
	var magic [len(muxMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != muxMagic {
		return
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > 4096 {
		return
	}
	fromBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, fromBuf); err != nil {
		return
	}
	from := string(fromBuf)
	t.obsv.Load().bytesRecv.Add(int64(len(muxMagic)) + 1 + int64(nameLen))

	streams := make(map[uint32]*inStream)
	defer func() {
		// Connection died mid-message: the partial buffers were never
		// delivered, so they can go straight back to the pool.
		for _, st := range streams {
			bufpool.Put(st.buf)
		}
		t.obsv.Load().journal(name, "drop", "inbound from "+from)
	}()
	var hdr [frameHdrLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		o := t.obsv.Load()
		chunkLen := int(binary.BigEndian.Uint32(hdr[0:4]))
		streamID := binary.BigEndian.Uint32(hdr[4:8])
		flags := hdr[8]
		if chunkLen > maxChunk {
			return // corrupt frame; drop the connection
		}
		wire := int64(frameHdrLen + chunkLen)
		st := streams[streamID]
		if flags&flagFirst != 0 {
			var tl [4]byte
			if _, err := io.ReadFull(br, tl[:]); err != nil {
				return
			}
			wire += 4
			total := int(binary.BigEndian.Uint32(tl[:]))
			if total > maxMsg || chunkLen > total || st != nil {
				return
			}
			st = &inStream{buf: bufpool.Get(total)}
			streams[streamID] = st
			o.streamsPeak.SetMax(int64(len(streams)))
		}
		if st == nil || st.off+chunkLen > len(*st.buf) {
			return // frame for an unknown stream, or overflow
		}
		if _, err := io.ReadFull(br, (*st.buf)[st.off:st.off+chunkLen]); err != nil {
			return
		}
		st.off += chunkLen
		o.bytesRecv.Add(wire)
		o.framesRecv.Inc()
		if flags&flagFin == 0 {
			continue
		}
		delete(streams, streamID)
		if st.off != len(*st.buf) {
			return // short message; drop the connection
		}
		rb := NewRecvBuf(st.buf)
		body, retained, err := DecodeMessage(*st.buf, rb)
		if !retained {
			rb.Release()
		}
		if err != nil {
			o.decodeErrs.Inc()
			continue
		}
		t.mu.Lock()
		recv := t.recvs[name]
		t.mu.Unlock()
		if recv != nil {
			recv(from, body, st.off)
		} else {
			Release(envBody(body))
		}
	}
}

// envBody unwraps an Envelope so Release reaches the payload body.
func envBody(body any) any {
	if env, ok := body.(Envelope); ok {
		return env.Body
	}
	return body
}

// Unregister implements Carrier.
func (t *TCPCarrier) Unregister(name string) {
	t.mu.Lock()
	if ln, ok := t.listeners[name]; ok {
		ln.Close()
		delete(t.listeners, name)
	}
	delete(t.recvs, name)
	t.mu.Unlock()
}

// outMsg is one encoded message queued at a connection's writer.
type outMsg struct {
	hdrp     *[]byte  // pooled buffer the header was built in
	hdr      []byte   // message prefix (tag + envelope + type header)
	payloads [][]byte // zero-copy payload slices
	total    int
	ordered  bool
}

// muxConn is the sender side of one (from, to) connection: an
// encode-free queue drained by a writer goroutine that interleaves
// message frames.
type muxConn struct {
	c    net.Conn
	ch   chan outMsg
	done chan struct{} // closed when the connection dies
	once sync.Once
}

func (mc *muxConn) kill() {
	mc.once.Do(func() {
		close(mc.done)
		mc.c.Close()
	})
}

// Send implements Carrier: encode in the caller, enqueue on the
// pair's connection, and let the writer goroutine interleave the
// bytes. A send that finds a dead connection re-dials; errors are
// returned only for immediately detectable failures (unknown host,
// dial refused) — a message accepted into the queue is best-effort,
// exactly like the simulated network after its Send returns.
func (t *TCPCarrier) Send(from, to string, body any, size int) error {
	m, err := encodeOut(body)
	if err != nil {
		return err
	}
	key := from + "|" + to
	for attempt := 0; ; attempt++ {
		mc, err := t.getConn(key, from, to)
		if err != nil {
			bufpool.Put(m.hdrp)
			return err
		}
		select {
		case mc.ch <- m:
			return nil
		case <-mc.done:
			t.dropConn(key, mc)
			if attempt >= 2 {
				bufpool.Put(m.hdrp)
				t.obsv.Load().journal(from, "drop", "to "+to+": connection lost")
				return fmt.Errorf("rpc: send %s->%s: connection lost", from, to)
			}
			t.obsv.Load().sendRedials.Inc()
			t.obsv.Load().journal(from, "redial", "to "+to)
		}
	}
}

// encodeOut serializes body into an outMsg: the message prefix in a
// pooled buffer, payload slices zero-copy. Casts (and raw bodies)
// are marked ordered so the writer preserves their FIFO order.
func encodeOut(body any) (outMsg, error) {
	hdrp := bufpool.Get(512)
	env, isEnv := body.(Envelope)
	if !isEnv {
		// Raw non-envelope body (direct carrier use in tests): gob it
		// and deliver as-is on the far side.
		hdr := append((*hdrp)[:0], TagGob)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobMsg{Body: body}); err != nil {
			bufpool.Put(hdrp)
			return outMsg{}, fmt.Errorf("rpc: gob encode: %w", err)
		}
		hdr = append(hdr, buf.Bytes()...)
		return outMsg{hdrp: hdrp, hdr: hdr, total: len(hdr), ordered: true}, nil
	}
	hdr, payloads, _, err := AppendMessageHeader((*hdrp)[:0], nil, env)
	if err != nil {
		bufpool.Put(hdrp)
		return outMsg{}, err
	}
	total := len(hdr)
	for _, p := range payloads {
		total += len(p)
	}
	return outMsg{hdrp: hdrp, hdr: hdr, payloads: payloads, total: total, ordered: env.ID == 0}, nil
}

func (t *TCPCarrier) getConn(key, from, to string) (*muxConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	mc := t.conns[key]
	addr := t.dir[to]
	t.mu.Unlock()
	if mc != nil {
		return mc, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("rpc: no address for host %q", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.obsv.Load().journal(from, "dial-fail", "to "+to+": "+err.Error())
		return nil, fmt.Errorf("rpc: dial %s: %w", to, err)
	}
	t.obsv.Load().journal(from, "connect", "to "+to)
	// Preamble before any frame.
	pre := make([]byte, 0, len(muxMagic)+1+len(from))
	pre = append(pre, muxMagic[:]...)
	pre = binary.AppendUvarint(pre, uint64(len(from)))
	pre = append(pre, from...)
	if _, err := c.Write(pre); err != nil {
		c.Close()
		return nil, fmt.Errorf("rpc: preamble %s: %w", to, err)
	}
	t.obsv.Load().bytesSent.Add(int64(len(pre)))
	mc = &muxConn{c: c, ch: make(chan outMsg, sendQueue), done: make(chan struct{})}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, ErrClosed
	}
	if existing := t.conns[key]; existing != nil {
		// Lost the dial race; use the winner.
		t.mu.Unlock()
		c.Close()
		return existing, nil
	}
	t.conns[key] = mc
	t.mu.Unlock()
	go t.writeLoop(key, mc)
	return mc, nil
}

func (t *TCPCarrier) dropConn(key string, mc *muxConn) {
	t.mu.Lock()
	if t.conns[key] == mc {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	mc.kill()
}

// sendStream is one message in flight at the writer: its unwritten
// byte slices plus mux bookkeeping.
type sendStream struct {
	id      uint32
	m       outMsg
	vecs    [][]byte
	left    int
	started bool
}

// writeLoop drains a connection's queue, interleaving the frames of
// concurrent messages (round-robin, one chunk each) so no message
// head-of-line blocks the others. Ordered messages (casts) are
// admitted one at a time in FIFO order.
func (t *TCPCarrier) writeLoop(key string, mc *muxConn) {
	defer t.dropConn(key, mc)
	var (
		active     []*sendStream
		orderedQ   []outMsg // casts waiting for the ordered lane
		orderedOn  bool     // a cast is currently in flight
		nextStream uint32
		rr         int // round-robin index into active
		iov        net.Buffers
	)
	var admit func(m outMsg)
	admit = func(m outMsg) {
		if m.ordered {
			if orderedOn {
				orderedQ = append(orderedQ, m)
				return
			}
			orderedOn = true
		}
		nextStream++
		st := &sendStream{id: nextStream, m: m, left: m.total}
		st.vecs = append(st.vecs, m.hdr)
		st.vecs = append(st.vecs, m.payloads...)
		active = append(active, st)
	}
	finish := func(i int) {
		st := active[i]
		bufpool.Put(st.m.hdrp)
		active = append(active[:i], active[i+1:]...)
		if st.m.ordered {
			orderedOn = false
			if len(orderedQ) > 0 {
				m := orderedQ[0]
				orderedQ = orderedQ[:copy(orderedQ, orderedQ[1:])]
				admit(m)
			}
		}
	}
	o := t.obsv.Load()
	for {
		if len(active) == 0 {
			select {
			case m := <-mc.ch:
				admit(m)
			case <-mc.done:
				return
			}
		}
		// Pick up everything already queued so concurrent messages
		// interleave rather than run back to back.
	drain:
		for {
			select {
			case m := <-mc.ch:
				admit(m)
			default:
				break drain
			}
		}
		if rr >= len(active) {
			rr = 0
		}
		st := active[rr]
		// Assemble one frame: header plus up to maxChunk bytes of the
		// stream, gathered writev-style from the original slices.
		chunk := st.left
		if chunk > maxChunk {
			chunk = maxChunk
		}
		var fh [frameHdrLen + 4]byte
		binary.BigEndian.PutUint32(fh[0:4], uint32(chunk))
		binary.BigEndian.PutUint32(fh[4:8], st.id)
		flags := byte(0)
		n := frameHdrLen
		if !st.started {
			st.started = true
			flags |= flagFirst
			binary.BigEndian.PutUint32(fh[frameHdrLen:], uint32(st.m.total))
			n += 4
			if st.m.hdr[0] == TagGob {
				o.msgsGob.Inc()
			} else {
				o.msgsFast.Inc()
			}
		}
		if chunk == st.left {
			flags |= flagFin
		}
		fh[8] = flags
		iov = iov[:0]
		iov = append(iov, fh[:n])
		rem := chunk
		for rem > 0 {
			v := st.vecs[0]
			if len(v) <= rem {
				iov = append(iov, v)
				rem -= len(v)
				st.vecs = st.vecs[1:]
			} else {
				iov = append(iov, v[:rem])
				st.vecs[0] = v[rem:]
				rem = 0
			}
		}
		st.left -= chunk
		wire := int64(n + chunk)
		if _, err := iov.WriteTo(mc.c); err != nil {
			return
		}
		o.bytesSent.Add(wire)
		o.framesSent.Inc()
		if st.left == 0 {
			finish(rr)
		} else {
			rr++
		}
	}
}

// Close shuts down every listener and connection.
func (t *TCPCarrier) Close() {
	t.mu.Lock()
	t.closed = true
	lns := t.listeners
	conns := t.conns
	t.listeners = make(map[string]net.Listener)
	t.conns = make(map[string]*muxConn)
	t.recvs = make(map[string]func(string, any, int))
	t.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, mc := range conns {
		mc.kill()
	}
}
