package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync/atomic"

	"frangipani/internal/bufpool"
)

// Wire codec: hand-rolled, length-prefixed binary framing for the
// high-volume message types, with gob kept as an escape hatch for
// rare control and bootstrap traffic.
//
// One message (the reassembled bytes of one mux stream) looks like:
//
//	u8      tag        type tag; 0 = gob escape hatch
//	-- tag 0 --
//	gob     gobMsg{Body}   (self-describing; any registered type)
//	-- tag != 0 --
//	uvarint id<<1 | isReply
//	uvarint trace
//	uvarint span
//	string  principal  (uvarint length + bytes; usually empty)
//	uvarint headerLen
//	[]byte  header     type-specific fields (AppendWireHeader)
//	[]byte  payload    raw payload bytes, zero-copy on encode
//
// Hot types implement WireMessage for encode and register a
// WireDecoderFunc for decode; everything else transparently falls
// back to gob. Payload bytes never pass through an intermediate
// marshal buffer: the encoder hands the carrier the original slices
// (written writev-style after the header), and the decoder hands the
// protocol layer subslices of the pooled receive buffer.

// Codec errors. Decoders must return errors — never panic — on
// malformed input; the fuzz tests enforce this.
var (
	ErrBadMessage = errors.New("rpc: malformed wire message")
	ErrUnknownTag = errors.New("rpc: unknown wire type tag")
)

// TagGob is the type tag of the gob escape hatch.
const TagGob byte = 0

// WireMessage is implemented by message types with a hand-rolled
// binary encoding. The encoder writes AppendWireHeader's bytes
// followed by the raw payload slices, so payload []byte fields travel
// zero-copy; the header must encode enough (e.g. per-extent lengths)
// for the decoder to slice the payload back apart.
type WireMessage interface {
	// WireTag returns the type tag (never 0).
	WireTag() byte
	// AppendWireHeader appends the non-payload fields to dst.
	AppendWireHeader(dst []byte) []byte
	// AppendWirePayloads appends the raw payload slices to dst and
	// returns it along with the total payload byte count.
	AppendWirePayloads(dst [][]byte) ([][]byte, int)
}

// WireDecoderFunc reconstructs a message body from its header and
// payload sections. Payload subslices may alias payload (and thus the
// pooled receive buffer rb); a decoder that does so must retain rb in
// the body (so the consumer can release it) and return retained=true.
// Header-derived fields (strings, integers) must be copies.
type WireDecoderFunc func(header, payload []byte, rb *RecvBuf) (body any, retained bool, err error)

var wireDecoders [256]atomic.Pointer[WireDecoderFunc]

// RegisterWireDecoder installs the decoder for a type tag. Protocol
// packages call it from init; tag 0 is reserved for gob.
func RegisterWireDecoder(tag byte, fn WireDecoderFunc) {
	if tag == TagGob {
		panic("rpc: tag 0 is reserved for the gob escape hatch")
	}
	wireDecoders[tag].Store(&fn)
}

// RecvBuf is the pooled buffer one decoded message lives in. Release
// returns it to the pool; it is idempotent and safe to race, so a
// stray double release can never hand the same buffer out twice.
type RecvBuf struct {
	p atomic.Pointer[[]byte]
}

// NewRecvBuf wraps a pooled buffer (from bufpool.Get) for release
// tracking.
func NewRecvBuf(p *[]byte) *RecvBuf {
	rb := &RecvBuf{}
	rb.p.Store(p)
	return rb
}

// Release returns the buffer to the pool. Only the first call acts;
// nil receivers are no-ops so value copies of undecoded messages are
// harmless.
func (b *RecvBuf) Release() {
	if b == nil {
		return
	}
	if p := b.p.Swap(nil); p != nil {
		bufpool.Put(p)
	}
}

// WireReleaser is implemented by decoded bodies that hold a pooled
// receive buffer.
type WireReleaser interface{ ReleaseWire() }

// Release returns body's pooled receive buffer, if it holds one.
// Safe on any value; bodies without pooled storage are no-ops.
func Release(body any) {
	if r, ok := body.(WireReleaser); ok {
		r.ReleaseWire()
	}
}

// gobMsg wraps the escape-hatch payload so any registered concrete
// type — including Envelope itself — round-trips.
type gobMsg struct{ Body any }

func init() { gob.Register(gobMsg{}) }

// AppendMessageHeader encodes env's message prefix — everything
// before the raw payload bytes — appending it to dst, and appends the
// zero-copy payload slices to payloads. fast reports whether the
// hand-rolled path was taken; on the gob path the whole message is in
// the returned header and payloads is untouched.
func AppendMessageHeader(dst []byte, payloads [][]byte, env Envelope) (hdr []byte, pl [][]byte, fast bool, err error) {
	if wm, ok := env.Body.(WireMessage); ok {
		if tag := wm.WireTag(); tag != TagGob {
			dst = append(dst, tag)
			idBits := env.ID << 1
			if env.IsReply {
				idBits |= 1
			}
			dst = binary.AppendUvarint(dst, idBits)
			dst = binary.AppendUvarint(dst, env.Trace)
			dst = binary.AppendUvarint(dst, env.Span)
			dst = AppendString(dst, env.Principal)
			mark := len(dst)
			// Reserve a fixed 4-byte spot for headerLen so the header
			// can be appended in place, then patch it.
			dst = append(dst, 0, 0, 0, 0)
			dst = wm.AppendWireHeader(dst)
			hl := len(dst) - mark - 4
			binary.BigEndian.PutUint32(dst[mark:], uint32(hl))
			payloads, _ = wm.AppendWirePayloads(payloads)
			return dst, payloads, true, nil
		}
	}
	dst = append(dst, TagGob)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobMsg{Body: env}); err != nil {
		return dst, payloads, false, fmt.Errorf("rpc: gob encode: %w", err)
	}
	return append(dst, buf.Bytes()...), payloads, false, nil
}

// AppendMessage appends the complete serialized message (prefix plus
// payload bytes) to dst — the reference form used by tests, fuzzing,
// and benchmarks. The carrier itself writes the same bytes without
// copying the payloads.
func AppendMessage(dst []byte, env Envelope) ([]byte, error) {
	hdr, payloads, _, err := AppendMessageHeader(dst, nil, env)
	if err != nil {
		return dst, err
	}
	for _, p := range payloads {
		hdr = append(hdr, p...)
	}
	return hdr, nil
}

// DecodeMessage parses one serialized message. The returned body is
// the value a carrier delivers to its receive callback (normally an
// Envelope). Payload fields alias data — and therefore rb, which the
// consumer must Release once done — when retained is true; rb may be
// nil when the caller manages the buffer itself.
func DecodeMessage(data []byte, rb *RecvBuf) (body any, retained bool, err error) {
	if len(data) < 1 {
		return nil, false, fmt.Errorf("%w: empty", ErrBadMessage)
	}
	tag := data[0]
	if tag == TagGob {
		var gm gobMsg
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&gm); err != nil {
			return nil, false, fmt.Errorf("%w: gob: %v", ErrBadMessage, err)
		}
		return gm.Body, false, nil
	}
	fp := wireDecoders[tag].Load()
	if fp == nil {
		return nil, false, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	c := Cursor{Data: data, Off: 1}
	idBits := c.Uvarint()
	trace := c.Uvarint()
	span := c.Uvarint()
	principal := c.String()
	if c.Bad || c.Off+4 > len(data) {
		return nil, false, fmt.Errorf("%w: truncated envelope", ErrBadMessage)
	}
	hl := int(binary.BigEndian.Uint32(data[c.Off:]))
	c.Off += 4
	if hl < 0 || hl > len(data)-c.Off {
		return nil, false, fmt.Errorf("%w: header length %d exceeds message", ErrBadMessage, hl)
	}
	header := data[c.Off : c.Off+hl]
	payload := data[c.Off+hl:]
	inner, retained, err := (*fp)(header, payload, rb)
	if err != nil {
		return nil, false, err
	}
	return Envelope{
		ID:        idBits >> 1,
		IsReply:   idBits&1 != 0,
		Trace:     trace,
		Span:      span,
		Principal: principal,
		Body:      inner,
	}, retained, nil
}

// Cursor is a bounds-checked reader over one message section.
// Malformed input sets Bad instead of panicking; check Bad (or use
// Done) after reading.
type Cursor struct {
	Data []byte
	Off  int
	Bad  bool
}

// Uvarint reads an unsigned varint.
func (c *Cursor) Uvarint() uint64 {
	if c.Bad {
		return 0
	}
	v, n := binary.Uvarint(c.Data[c.Off:])
	if n <= 0 {
		c.Bad = true
		return 0
	}
	c.Off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (c *Cursor) Varint() int64 {
	if c.Bad {
		return 0
	}
	v, n := binary.Varint(c.Data[c.Off:])
	if n <= 0 {
		c.Bad = true
		return 0
	}
	c.Off += n
	return v
}

// Len reads a uvarint and validates it as a byte length that still
// fits in the unread remainder of the section.
func (c *Cursor) Len() int {
	v := c.Uvarint()
	if c.Bad {
		return 0
	}
	if v > uint64(len(c.Data)-c.Off) {
		c.Bad = true
		return 0
	}
	return int(v)
}

// Count reads a uvarint element count, bounded by the bytes left in
// the section (each element needs at least minBytes of header), so a
// hostile count cannot force a huge allocation.
func (c *Cursor) Count(minBytes int) int {
	v := c.Uvarint()
	if c.Bad {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64((len(c.Data)-c.Off)/minBytes) {
		c.Bad = true
		return 0
	}
	return int(v)
}

// Byte reads one byte.
func (c *Cursor) Byte() byte {
	if c.Bad || c.Off >= len(c.Data) {
		c.Bad = true
		return 0
	}
	b := c.Data[c.Off]
	c.Off++
	return b
}

// Bool reads one byte as a boolean.
func (c *Cursor) Bool() bool { return c.Byte() != 0 }

// Take returns the next n bytes as a subslice (aliasing Data).
func (c *Cursor) Take(n int) []byte {
	if c.Bad || n < 0 || n > len(c.Data)-c.Off {
		c.Bad = true
		return nil
	}
	b := c.Data[c.Off : c.Off+n : c.Off+n]
	c.Off += n
	return b
}

// String reads a uvarint-length-prefixed string (copied, never
// aliasing Data).
func (c *Cursor) String() string {
	n := c.Len()
	if c.Bad {
		return ""
	}
	return string(c.Take(n))
}

// Done reports a fully-consumed, well-formed section. Decoders should
// require Done on the header so trailing garbage is rejected.
func (c *Cursor) Done() bool { return !c.Bad && c.Off == len(c.Data) }

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends a boolean as one byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}
