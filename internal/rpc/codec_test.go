// Codec tests live in the external rpc_test package so they can
// exercise the hand-rolled framing against the real hot-path message
// types from internal/petal (petal imports rpc, so the internal test
// package could not).
package rpc_test

import (
	"reflect"
	"testing"

	"frangipani/internal/petal"
	"frangipani/internal/rpc"
)

// sampleEnvelopes covers every fast-codec type plus the gob escape
// hatch, with presence edge cases (nil vs empty data, holes).
func sampleEnvelopes() []rpc.Envelope {
	return []rpc.Envelope{
		{ID: 1, Body: petal.ReadReq{VDisk: "vd", Chunk: 7, Off: 512, Len: 4096}},
		{ID: 1, IsReply: true, Trace: 99, Span: 7, Principal: "tenant-7", Body: petal.ReadResp{OK: true, Data: []byte("hello")}},
		{ID: 2, IsReply: true, Body: petal.ReadResp{OK: true, Data: nil}},           // hole
		{ID: 3, IsReply: true, Body: petal.ReadResp{OK: true, Data: []byte{}}},      // present, empty
		{ID: 4, IsReply: true, Body: petal.ReadResp{OK: false, Err: "petal: boom"}}, // error
		{ID: 5, Body: petal.ReadVReq{VDisk: "vd", Extents: []petal.ReadVExtent{{Chunk: 1, Off: 0, Len: 8}, {Chunk: 2, Off: 100, Len: 9}}}},
		{ID: 5, IsReply: true, Body: petal.ReadVResp{OK: true, Results: []petal.ReadVExtentResult{
			{OK: true, Data: []byte("abc")},
			{OK: true},                        // hole
			{OK: false, Err: "crc"},           // extent-local failure
			{OK: true, Data: []byte{1, 2, 3}}, // more data after failure
		}}},
		{ID: 6, Trace: 1, Span: 2, Body: petal.WriteReq{VDisk: "vd", Chunk: 9, Off: 1024, Data: []byte("payload"), Forwarded: true, ExpireAt: -5, LeaseID: 42, Epoch: 3}},
		{ID: 6, IsReply: true, Body: petal.WriteResp{OK: true}},
		{ID: 7, Body: petal.WriteVReq{VDisk: "vd", ExpireAt: 11, LeaseID: 5, Epoch: 2, Extents: []petal.WriteVExtent{
			{Chunk: 0, Off: 0, Data: []byte("aa")},
			{Chunk: 1, Off: 512, Data: nil},
			{Chunk: 1, Off: 600, Data: []byte{9}},
		}}},
		{ID: 7, IsReply: true, Body: petal.WriteVResp{OK: false, Err: "petal: write rejected, lease expired"}},
		// gob escape hatch: a control message with no fast codec.
		{ID: 8, Body: petal.StateReq{}},
		{Body: petal.AdminResp{OK: true}}, // cast (ID 0)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, env := range sampleEnvelopes() {
		msg, err := rpc.AppendMessage(nil, env)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		body, _, err := rpc.DecodeMessage(msg, nil)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		got, ok := body.(rpc.Envelope)
		if !ok {
			t.Fatalf("case %d: decoded %T, want Envelope", i, body)
		}
		if got.ID != env.ID || got.IsReply != env.IsReply || got.Trace != env.Trace ||
			got.Span != env.Span || got.Principal != env.Principal {
			t.Fatalf("case %d: envelope mismatch: got %+v want %+v", i, got, env)
		}
		if !reflect.DeepEqual(got.Body, env.Body) {
			t.Fatalf("case %d: body mismatch:\n got %#v\nwant %#v", i, got.Body, env.Body)
		}
	}
}

// TestCodecTruncation checks every prefix of every valid message
// either decodes cleanly or errors — never panics, never reads out of
// bounds.
func TestCodecTruncation(t *testing.T) {
	for i, env := range sampleEnvelopes() {
		msg, err := rpc.AppendMessage(nil, env)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		for n := 0; n < len(msg); n++ {
			if _, _, err := rpc.DecodeMessage(msg[:n], nil); err == nil {
				// A strict prefix decoding successfully would mean the
				// framing is ambiguous.
				t.Fatalf("case %d: truncated message (%d/%d bytes) decoded without error", i, n, len(msg))
			}
		}
	}
}

func TestCodecUnknownTag(t *testing.T) {
	if _, _, err := rpc.DecodeMessage([]byte{0xC8, 1, 2, 3}, nil); err == nil {
		t.Fatal("unknown tag decoded without error")
	}
}

// FuzzCodecRoundTrip throws arbitrary bytes at the decoder: malformed
// input (truncated frames, oversized lengths, unknown type tags) must
// error, never panic; input that does decode must re-encode and
// decode to the same value.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, env := range sampleEnvelopes() {
		msg, err := rpc.AppendMessage(nil, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg)
		if len(msg) > 3 {
			f.Add(msg[:len(msg)-3]) // truncated frame
		}
	}
	f.Add([]byte{})                                                              // empty
	f.Add([]byte{0xC8, 0xFF, 0xFF})                                              // unknown tag
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // oversized varint
	f.Add([]byte{5, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})                            // oversized header length
	f.Fuzz(func(t *testing.T, data []byte) {
		body, _, err := rpc.DecodeMessage(data, nil)
		if err != nil {
			return // malformed input rejected: the property we want
		}
		env, ok := body.(rpc.Envelope)
		if !ok {
			return // gob escape hatch can carry arbitrary registered values
		}
		if _, ok := env.Body.(rpc.WireMessage); !ok {
			return
		}
		// Accepted fast-path input must round-trip.
		msg, err := rpc.AppendMessage(nil, env)
		if err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		body2, _, err := rpc.DecodeMessage(msg, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(body2, body) {
			t.Fatalf("round trip changed value:\n got %#v\nwant %#v", body2, body)
		}
	})
}
