package rpc_test

import (
	"bytes"
	"encoding/gob"
	"os"
	"testing"

	"frangipani/internal/petal"
	"frangipani/internal/rpc"
)

// The benchmark workload is the acceptance-criteria shape: a 1 MB
// scatter-gather transfer as 16 chunk-sized extents, the way the
// cache flusher and the read engine actually batch them.

func benchWriteVReq() petal.WriteVReq {
	exts := make([]petal.WriteVExtent, 16)
	for i := range exts {
		data := make([]byte, petal.ChunkSize)
		for j := range data {
			data[j] = byte(i + j)
		}
		exts[i] = petal.WriteVExtent{Chunk: int64(i), Data: data}
	}
	return petal.WriteVReq{VDisk: "bench", Extents: exts, ExpireAt: 12345, LeaseID: 7, Epoch: 3}
}

func benchReadVResp() petal.ReadVResp {
	res := make([]petal.ReadVExtentResult, 16)
	for i := range res {
		data := make([]byte, petal.ChunkSize)
		for j := range data {
			data[j] = byte(i ^ j)
		}
		res[i] = petal.ReadVExtentResult{OK: true, Data: data}
	}
	return petal.ReadVResp{OK: true, Results: res}
}

// BenchmarkCodecWriteVEncode measures the sender-side hot path: the
// message prefix is appended into a reused buffer and the 1 MB of
// payload travels as the caller's own slices — zero copies, zero
// allocations at steady state.
func BenchmarkCodecWriteVEncode(b *testing.B) {
	env := rpc.Envelope{ID: 9, Body: benchWriteVReq()}
	hdr, pl, _, err := rpc.AppendMessageHeader(nil, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdr, pl, _, err = rpc.AppendMessageHeader(hdr[:0], pl[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecWriteVDecode measures the receiver-side hot path:
// one pass over the reassembled message, slicing extents out of the
// receive buffer without copying the payload.
func BenchmarkCodecWriteVDecode(b *testing.B) {
	msg, err := rpc.AppendMessage(nil, rpc.Envelope{ID: 9, Body: benchWriteVReq()})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rpc.DecodeMessage(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecReadVEncode(b *testing.B) {
	env := rpc.Envelope{ID: 9, IsReply: true, Body: benchReadVResp()}
	hdr, pl, _, err := rpc.AppendMessageHeader(nil, nil, env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdr, pl, _, err = rpc.AppendMessageHeader(hdr[:0], pl[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecReadVDecode(b *testing.B) {
	msg, err := rpc.AppendMessage(nil, rpc.Envelope{ID: 9, IsReply: true, Body: benchReadVResp()})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rpc.DecodeMessage(msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Gob baselines: the transport this PR replaced. Encode reuses one
// encoder per connection (buffer reset per message), matching the old
// carrier's persistent gob.Encoder; decode runs a decoder over a
// self-describing message, matching what each message cost on a
// fresh connection.

func BenchmarkGobWriteVEncode(b *testing.B) {
	env := rpc.Envelope{ID: 9, Body: benchWriteVReq()}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobWriteVDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rpc.Envelope{ID: 9, Body: benchWriteVReq()}); err != nil {
		b.Fatal(err)
	}
	msg := buf.Bytes()
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var env rpc.Envelope
		if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(&env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobReadVEncode(b *testing.B) {
	env := rpc.Envelope{ID: 9, IsReply: true, Body: benchReadVResp()}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobReadVDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rpc.Envelope{ID: 9, IsReply: true, Body: benchReadVResp()}); err != nil {
		b.Fatal(err)
	}
	msg := buf.Bytes()
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var env rpc.Envelope
		if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(&env); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCodecBudget is the CI assertion behind `make bench-smoke`: the
// hand-rolled codec must beat the gob baseline by at least 5x on
// allocs/op and 2x on ns/op for the 1 MB WriteV/ReadV shapes, and the
// steady-state encode path must not allocate at all. Gated behind
// CODEC_BUDGET=1 so ordinary `go test` stays fast.
func TestCodecBudget(t *testing.T) {
	if os.Getenv("CODEC_BUDGET") != "1" {
		t.Skip("set CODEC_BUDGET=1 to run the codec budget assertions")
	}
	type pair struct {
		name     string
		fast     func(*testing.B)
		base     func(*testing.B)
		zeroEnc  bool
	}
	pairs := []pair{
		{"WriteVEncode", BenchmarkCodecWriteVEncode, BenchmarkGobWriteVEncode, true},
		{"WriteVDecode", BenchmarkCodecWriteVDecode, BenchmarkGobWriteVDecode, false},
		{"ReadVEncode", BenchmarkCodecReadVEncode, BenchmarkGobReadVEncode, true},
		{"ReadVDecode", BenchmarkCodecReadVDecode, BenchmarkGobReadVDecode, false},
	}
	for _, p := range pairs {
		fast := testing.Benchmark(p.fast)
		base := testing.Benchmark(p.base)
		t.Logf("%s: codec %d ns/op %d allocs/op | gob %d ns/op %d allocs/op",
			p.name, fast.NsPerOp(), fast.AllocsPerOp(), base.NsPerOp(), base.AllocsPerOp())
		if p.zeroEnc && fast.AllocsPerOp() != 0 {
			t.Errorf("%s: steady-state encode allocates (%d allocs/op, want 0)", p.name, fast.AllocsPerOp())
		}
		if fast.AllocsPerOp()*5 > base.AllocsPerOp() {
			t.Errorf("%s: allocs/op budget: codec %d, gob %d (need >= 5x fewer)",
				p.name, fast.AllocsPerOp(), base.AllocsPerOp())
		}
		if fast.NsPerOp()*2 > base.NsPerOp() {
			t.Errorf("%s: ns/op budget: codec %d, gob %d (need >= 2x faster)",
				p.name, fast.NsPerOp(), base.NsPerOp())
		}
	}
}
