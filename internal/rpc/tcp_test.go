package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/sim"
)

type tcpEcho struct{ N int }
type tcpEchoResp struct{ N int }

func init() {
	RegisterType(tcpEcho{})
	RegisterType(tcpEchoResp{})
}

func newTCPPair(t *testing.T) (*Endpoint, *Endpoint, *TCPCarrier) {
	t.Helper()
	carrier := NewTCPCarrier()
	clock := sim.NewClock(1)
	a := NewEndpoint("a", carrier, clock, nil)
	b := NewEndpoint("b", carrier, clock, func(from string, body any) any {
		if r, ok := body.(tcpEcho); ok {
			return tcpEchoResp{N: r.N * 2}
		}
		return nil
	})
	t.Cleanup(func() {
		a.Close()
		b.Close()
		carrier.Close()
	})
	return a, b, carrier
}

func TestTCPCallRoundTrip(t *testing.T) {
	a, _, _ := newTCPPair(t)
	got, err := a.Call("b", tcpEcho{N: 21}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.(tcpEchoResp).N != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	a, _, _ := newTCPPair(t)
	var wg sync.WaitGroup
	for i := 1; i <= 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			got, err := a.Call("b", tcpEcho{N: n}, 10*time.Second)
			if err != nil {
				t.Errorf("call %d: %v", n, err)
				return
			}
			if got.(tcpEchoResp).N != n*2 {
				t.Errorf("call %d: got %v", n, got)
			}
		}(i)
	}
	wg.Wait()
}

// TestTCPPrincipalPropagates checks the principal tag survives the
// real wire: framed by the codec on send, rebound around the handler
// on the receiving side.
func TestTCPPrincipalPropagates(t *testing.T) {
	a, b, _ := newTCPPair(t)
	seen := make(chan string, 1)
	b.Handle(func(from string, body any) any {
		seen <- obs.CurrentPrincipal()
		return tcpEchoResp{}
	})
	obs.WithPrincipal("tenant-tcp", func() {
		if _, err := a.Call("b", tcpEcho{N: 1}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	select {
	case got := <-seen:
		if got != "tenant-tcp" {
			t.Fatalf("handler saw principal %q, want tenant-tcp", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call not delivered")
	}
}

func TestTCPCast(t *testing.T) {
	carrier := NewTCPCarrier()
	clock := sim.NewClock(1)
	got := make(chan any, 1)
	NewEndpoint("rx", carrier, clock, func(from string, body any) any {
		got <- body
		return nil
	})
	tx := NewEndpoint("tx", carrier, clock, nil)
	defer carrier.Close()
	if err := tx.Cast("rx", tcpEcho{N: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v.(tcpEcho).N != 7 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cast not delivered")
	}
}

func TestTCPOrderingPerPair(t *testing.T) {
	carrier := NewTCPCarrier()
	clock := sim.NewClock(1)
	var mu sync.Mutex
	var seen []int
	done := make(chan struct{}, 64)
	NewEndpoint("rx", carrier, clock, func(from string, body any) any {
		if m, ok := body.(tcpEcho); ok {
			mu.Lock()
			seen = append(seen, m.N)
			mu.Unlock()
			done <- struct{}{}
		}
		return nil
	})
	tx := NewEndpoint("tx", carrier, clock, nil)
	defer carrier.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := tx.Cast("rx", tcpEcho{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("timed out")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if seen[i] != i {
			t.Fatalf("message %d arrived out of order (%d)", i, seen[i])
		}
	}
}

func TestTCPUnknownHost(t *testing.T) {
	carrier := NewTCPCarrier()
	clock := sim.NewClock(1)
	a := NewEndpoint("a", carrier, clock, nil)
	defer carrier.Close()
	if err := a.Cast("ghost", tcpEcho{}); err == nil {
		t.Fatal("cast to unknown host succeeded")
	}
	// Calls to a dead-but-known address time out cleanly.
	carrier.SetAddr("zombie", "127.0.0.1:1")
	if _, err := a.Call("zombie", tcpEcho{}, 500*time.Millisecond); err == nil {
		t.Fatal("call to dead address succeeded")
	} else if errors.Is(err, ErrClosed) {
		t.Fatal("wrong error kind")
	}
}
