// Package rpc provides the message transport used by Petal, the lock
// service, and the Frangipani servers. It offers two primitives on a
// common Endpoint type:
//
//   - Cast: a one-way asynchronous message (the lock service's
//     request/grant/revoke/release messages are casts, per §6 of the
//     paper, which notes that clerks and lock servers communicate "via
//     asynchronous messages rather than RPC").
//   - Call: a request/response exchange with a timeout, used for the
//     Petal data path.
//
// The default carrier is the in-memory simulated network
// (sim.Network), which charges link bandwidth and latency; a TCP
// carrier with the same interface lives in tcp.go for the daemon
// binaries.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/sim"
)

// Errors returned by calls.
var (
	ErrTimeout = errors.New("rpc: call timed out")
	ErrClosed  = errors.New("rpc: endpoint closed")
)

// Envelope frames every message on the wire. Trace and Span carry
// the sender's active trace context (obs), so one operation can be
// followed across layers and machines; both are 0 when the sender
// was not inside a traced operation. Principal carries the sender's
// bound client/tenant tag the same way, so server-side work is
// charged to the client it serves. It is exported so the wire codec's
// tests and benchmarks can drive the exact carrier format.
type Envelope struct {
	ID        uint64 // correlation id; 0 for casts
	IsReply   bool
	Trace     uint64
	Span      uint64
	Principal string
	Body      any
}

// HandlerFunc serves an incoming message. For messages sent with
// Call, the returned value (if non-nil) is sent back as the reply.
// For casts the return value is ignored. Handlers run on dedicated
// goroutines; they may block.
type HandlerFunc func(from string, body any) (reply any)

// Carrier abstracts the underlying datagram network so Endpoint works
// over both sim.Network and TCP.
type Carrier interface {
	// Send transmits body (already enveloped) to the named host,
	// charging the modelled wire size.
	Send(from, to string, body any, size int) error
	// Register installs the receive function for a host.
	Register(name string, recv func(from string, body any, size int))
	// Unregister removes the host.
	Unregister(name string)
}

// SimCarrier adapts sim.Network to the Carrier interface.
type SimCarrier struct{ Net *sim.Network }

// Send implements Carrier.
func (c SimCarrier) Send(from, to string, body any, size int) error {
	return c.Net.Send(from, to, body, size)
}

// Register implements Carrier.
func (c SimCarrier) Register(name string, recv func(from string, body any, size int)) {
	c.Net.Register(name, func(m sim.Message) { recv(m.From, m.Payload, m.Size) })
}

// Unregister implements Carrier.
func (c SimCarrier) Unregister(name string) { c.Net.Unregister(name) }

// Endpoint is one named party on the network. It dispatches incoming
// requests to its handler and routes replies back to waiting callers.
type Endpoint struct {
	addr    string
	carrier Carrier
	clock   *sim.Clock
	handler atomic.Value // HandlerFunc

	mu      sync.Mutex
	pending map[uint64]chan any
	nextID  uint64
	closed  bool
}

// NewEndpoint registers addr on the carrier and returns the endpoint.
// The handler may be nil initially and installed later with Handle.
func NewEndpoint(addr string, carrier Carrier, clock *sim.Clock, h HandlerFunc) *Endpoint {
	e := &Endpoint{
		addr:    addr,
		carrier: carrier,
		clock:   clock,
		pending: make(map[uint64]chan any),
	}
	if h != nil {
		e.handler.Store(h)
	}
	carrier.Register(addr, e.receive)
	return e
}

// Addr returns this endpoint's network name.
func (e *Endpoint) Addr() string { return e.addr }

// Handle replaces the request handler.
func (e *Endpoint) Handle(h HandlerFunc) { e.handler.Store(h) }

func (e *Endpoint) receive(from string, body any, size int) {
	env, ok := body.(Envelope)
	if !ok {
		return
	}
	if env.IsReply {
		e.mu.Lock()
		ch := e.pending[env.ID]
		delete(e.pending, env.ID)
		e.mu.Unlock()
		if ch != nil {
			ch <- env.Body
		} else {
			// Caller gave up (timeout): return any pooled payload
			// buffer the decoded reply still holds.
			Release(env.Body)
		}
		return
	}
	hv := e.handler.Load()
	if hv == nil {
		Release(env.Body)
		return
	}
	h := hv.(HandlerFunc)
	if env.ID == 0 {
		// Casts run synchronously on the delivery goroutine so that
		// per-pair FIFO network ordering extends to handler execution;
		// the lock protocol depends on a release sent before a request
		// being processed before it.
		withEnvContext(env, func() { h(from, env.Body) })
		return
	}
	go func() {
		var reply any
		withEnvContext(env, func() { reply = h(from, env.Body) })
		if reply != nil {
			_ = e.carrier.Send(e.addr, from, Envelope{ID: env.ID, IsReply: true, Body: reply}, sizeOf(reply))
		}
	}()
}

// withEnvContext runs fn under the envelope's remote trace span and
// principal bindings, skipping whichever is absent, so handler-side
// spans join the sender's trace and handler-side work is charged to
// the sender's principal.
func withEnvContext(env Envelope, fn func()) {
	if env.Trace != 0 {
		inner := fn
		fn = func() { obs.With(obs.Remote(env.Trace, env.Span), inner) }
	}
	if env.Principal != "" {
		inner := fn
		fn = func() { obs.WithPrincipal(env.Principal, inner) }
	}
	fn()
}

// Cast sends a one-way message. Delivery is best-effort: an error is
// returned only for immediately-detectable failures (unknown or
// unreachable destination).
func (e *Endpoint) Cast(to string, body any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	env := Envelope{Body: body}
	if sp := obs.Current(); sp != nil {
		env.Trace, env.Span = sp.TraceID, sp.ID
	}
	env.Principal = obs.CurrentPrincipal()
	return e.carrier.Send(e.addr, to, env, sizeOf(body))
}

// Call sends a request and waits up to timeout (simulated time) for
// the reply.
func (e *Endpoint) Call(to string, req any, timeout time.Duration) (any, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.nextID++
	id := e.nextID
	ch := make(chan any, 1)
	e.pending[id] = ch
	e.mu.Unlock()

	env := Envelope{ID: id, Body: req}
	if sp := obs.Current(); sp != nil {
		env.Trace, env.Span = sp.TraceID, sp.ID
	}
	env.Principal = obs.CurrentPrincipal()
	err := e.carrier.Send(e.addr, to, env, sizeOf(req))
	if err != nil {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
		return nil, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-e.clock.After(timeout):
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
		// The reply may have been buffered in the same instant the
		// timer fired; recycle its pooled payload buffer if so.
		select {
		case reply := <-ch:
			Release(reply)
		default:
		}
		return nil, fmt.Errorf("%w: %s -> %s", ErrTimeout, e.addr, to)
	}
}

// Close unregisters the endpoint; outstanding calls time out.
func (e *Endpoint) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.carrier.Unregister(e.addr)
}

// Sizer lets message types report their modelled wire size so the
// simulated network charges realistic bandwidth. Types that do not
// implement it are charged a small fixed header size.
type Sizer interface{ WireSize() int }

// DefaultMsgSize is the modelled size of a message that does not
// implement Sizer: a typical small control message.
const DefaultMsgSize = 128

func sizeOf(body any) int {
	if s, ok := body.(Sizer); ok {
		return s.WireSize() + DefaultMsgSize
	}
	return DefaultMsgSize
}
