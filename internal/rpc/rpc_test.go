package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"frangipani/internal/obs"
	"frangipani/internal/sim"
)

type echoReq struct{ N int }
type echoResp struct{ N int }

type bigMsg struct{ bytes int }

func (b bigMsg) WireSize() int { return b.bytes }

func newPair(t *testing.T) (*sim.World, *Endpoint, *Endpoint) {
	t.Helper()
	w := sim.NewWorld(2000, 7)
	w.AddMachine("a", sim.DefaultLinkParams())
	w.AddMachine("b", sim.DefaultLinkParams())
	carrier := SimCarrier{Net: w.Net}
	a := NewEndpoint("a", carrier, w.Clock, nil)
	b := NewEndpoint("b", carrier, w.Clock, func(from string, body any) any {
		if r, ok := body.(echoReq); ok {
			return echoResp{N: r.N + 1}
		}
		return nil
	})
	t.Cleanup(func() { a.Close(); b.Close() })
	return w, a, b
}

func TestCallRoundTrip(t *testing.T) {
	_, a, _ := newPair(t)
	got, err := a.Call("b", echoReq{N: 41}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.(echoResp).N != 42 {
		t.Fatalf("got %v, want 42", got)
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	_, a, _ := newPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			got, err := a.Call("b", echoReq{N: n}, 10*time.Second)
			if err != nil {
				t.Errorf("call %d: %v", n, err)
				return
			}
			if got.(echoResp).N != n+1 {
				t.Errorf("call %d got %v", n, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallTimeout(t *testing.T) {
	w, a, b := newPair(t)
	b.Handle(func(from string, body any) any {
		w.Clock.Sleep(time.Hour) // never answer in time
		return echoResp{}
	})
	_, err := a.Call("b", echoReq{}, 200*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCallUnreachable(t *testing.T) {
	w, a, _ := newPair(t)
	w.Net.Isolate("b")
	_, err := a.Call("b", echoReq{}, time.Second)
	if !errors.Is(err, sim.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestCast(t *testing.T) {
	_, a, b := newPair(t)
	got := make(chan any, 1)
	b.Handle(func(from string, body any) any {
		got <- body
		return nil
	})
	if err := a.Cast("b", "ping"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "ping" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cast not delivered")
	}
}

// TestPrincipalPropagatesSim checks the sender's bound principal is
// rebound around the handler for both Call (fresh goroutine) and Cast
// (delivery goroutine), and absent when the sender was unbound.
func TestPrincipalPropagatesSim(t *testing.T) {
	_, a, b := newPair(t)
	seen := make(chan string, 1)
	b.Handle(func(from string, body any) any {
		seen <- obs.CurrentPrincipal()
		if _, ok := body.(echoReq); ok {
			return echoResp{}
		}
		return nil
	})
	obs.WithPrincipal("tenant-a", func() {
		if _, err := a.Call("b", echoReq{N: 1}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if got := <-seen; got != "tenant-a" {
		t.Fatalf("call handler saw principal %q, want tenant-a", got)
	}
	obs.WithPrincipal("tenant-b", func() {
		if err := a.Cast("b", "ping"); err != nil {
			t.Fatal(err)
		}
	})
	select {
	case got := <-seen:
		if got != "tenant-b" {
			t.Fatalf("cast handler saw principal %q, want tenant-b", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cast not delivered")
	}
	// Unbound sender: the handler must see no principal.
	if _, err := a.Call("b", echoReq{N: 2}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got != "" {
		t.Fatalf("unbound call leaked principal %q", got)
	}
	if n := obs.BoundPrincipals(); n != 0 {
		t.Fatalf("%d principal bindings leaked", n)
	}
}

func TestClosedEndpoint(t *testing.T) {
	_, a, _ := newPair(t)
	a.Close()
	if err := a.Cast("b", "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("cast after close: %v", err)
	}
	if _, err := a.Call("b", echoReq{}, time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestReplyToClosedCallerDoesNotBlock(t *testing.T) {
	w, a, b := newPair(t)
	release := make(chan struct{})
	b.Handle(func(from string, body any) any {
		<-release
		return echoResp{N: 1}
	})
	done := make(chan struct{})
	go func() {
		_, _ = a.Call("b", echoReq{}, 50*time.Millisecond)
		close(done)
	}()
	<-done // call timed out
	close(release)
	// The late reply must be dropped without blocking the network.
	w.Clock.Sleep(time.Second)
}

func TestSizerChargesBandwidth(t *testing.T) {
	w := sim.NewWorld(200, 7)
	p := sim.LinkParams{Latency: 0, Bandwidth: 1 << 20}
	w.AddMachine("a", p)
	w.AddMachine("b", p)
	carrier := SimCarrier{Net: w.Net}
	a := NewEndpoint("a", carrier, w.Clock, nil)
	got := make(chan struct{}, 1)
	NewEndpoint("b", carrier, w.Clock, func(string, any) any {
		got <- struct{}{}
		return nil
	})
	start := w.Clock.Now()
	if err := a.Cast("b", bigMsg{bytes: 512 << 10}); err != nil { // 512 KB at 1 MB/s
		t.Fatal(err)
	}
	<-got
	elapsed := time.Duration(w.Clock.Now() - start)
	if elapsed < 400*time.Millisecond {
		t.Fatalf("512KB over 1MB/s took %v simulated, want >= ~0.5s", elapsed)
	}
}
