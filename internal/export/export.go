// Package export implements the paper's client/server configuration
// (§2.2, Figure 3): remote, untrusted client machines that do not
// speak to Petal or the lock service directly can access a Frangipani
// file system through a file-access protocol served by a trusted
// Frangipani server machine — the role NFS/DCE-DFS played in the
// paper. The protocol here is a small stateless remote-file protocol
// in that spirit: every request names paths (or stable file handles),
// so clients can fail over between Frangipani servers exporting the
// same volume, and coherence across servers comes for free because
// each export server is just a local client of its own Frangipani FS.
package export

import (
	"errors"
	"fmt"
	"io"
	"time"

	"frangipani/internal/fs"
	"frangipani/internal/rpc"
	"frangipani/internal/sim"
)

// Wire messages. All calls; clients are request/response.
type (
	// LookupReq resolves a path to attributes.
	LookupReq struct{ Path string }
	// AttrResp carries attributes or an error string.
	AttrResp struct {
		OK    bool
		Err   string
		Inum  int64
		Type  uint16
		Size  int64
		Nlink int
		Mtime int64
	}
	// ReadReq reads Count bytes of a file at Off.
	ReadReq struct {
		Path  string
		Off   int64
		Count int
	}
	// ReadResp returns data; EOF reports a short read at end.
	ReadResp struct {
		OK   bool
		Err  string
		Data []byte
		EOF  bool
	}
	// WriteReq writes Data at Off, creating the file if Create.
	WriteReq struct {
		Path   string
		Off    int64
		Data   []byte
		Create bool
		Stable bool // fsync before replying (NFSv2-style stable write)
	}
	// StatusResp acknowledges a mutation.
	StatusResp struct {
		OK  bool
		Err string
	}
	// MkdirReq, RemoveReq, RenameReq, SymlinkReq, ReaddirReq mirror
	// the file system operations.
	MkdirReq  struct{ Path string }
	RemoveReq struct {
		Path string
		Dir  bool
	}
	RenameReq  struct{ Src, Dst string }
	SymlinkReq struct{ Target, Path string }
	ReaddirReq struct{ Path string }
	// ReaddirResp lists names and types.
	ReaddirResp struct {
		OK    bool
		Err   string
		Names []string
		Types []uint16
	}
)

// WireSize implementations for the data-bearing messages.

// WireSize reports the read payload size.
func (r ReadResp) WireSize() int { return len(r.Data) }

// WireSize reports the write payload size.
func (w WriteReq) WireSize() int { return len(w.Data) }

// Addr returns the network name an export server listens on.
func Addr(machine string) string { return machine + ".export" }

// Server exports one Frangipani file server to remote clients.
type Server struct {
	fs *fs.FS
	ep *rpc.Endpoint
}

// NewServer starts exporting f on its machine's export address.
func NewServer(w *sim.World, f *fs.FS) *Server {
	s := &Server{fs: f}
	s.ep = rpc.NewEndpoint(Addr(f.Machine()), rpc.SimCarrier{Net: w.Net}, w.Clock, s.handle)
	return s
}

// Close stops serving.
func (s *Server) Close() { s.ep.Close() }

func errResp(err error) StatusResp {
	if err == nil {
		return StatusResp{OK: true}
	}
	return StatusResp{Err: err.Error()}
}

func (s *Server) handle(from string, body any) any {
	switch m := body.(type) {
	case LookupReq:
		info, err := s.fs.Stat(m.Path)
		if err != nil {
			return AttrResp{Err: err.Error()}
		}
		return AttrResp{OK: true, Inum: info.Inum, Type: uint16(info.Type),
			Size: info.Size, Nlink: info.Nlink, Mtime: info.Mtime}
	case ReadReq:
		h, err := s.fs.Open(m.Path)
		if err != nil {
			return ReadResp{Err: err.Error()}
		}
		buf := make([]byte, m.Count)
		n, err := h.ReadAt(buf, m.Off)
		eof := errors.Is(err, io.EOF)
		if err != nil && !eof {
			return ReadResp{Err: err.Error()}
		}
		return ReadResp{OK: true, Data: buf[:n], EOF: eof}
	case WriteReq:
		h, err := s.fs.OpenFile(m.Path, m.Create)
		if err != nil {
			return StatusResp{Err: err.Error()}
		}
		if _, err := h.WriteAt(m.Data, m.Off); err != nil {
			return StatusResp{Err: err.Error()}
		}
		if m.Stable {
			if err := h.Sync(); err != nil {
				return StatusResp{Err: err.Error()}
			}
		}
		return StatusResp{OK: true}
	case MkdirReq:
		return errResp(s.fs.Mkdir(m.Path))
	case RemoveReq:
		if m.Dir {
			return errResp(s.fs.Rmdir(m.Path))
		}
		return errResp(s.fs.Remove(m.Path))
	case RenameReq:
		return errResp(s.fs.Rename(m.Src, m.Dst))
	case SymlinkReq:
		return errResp(s.fs.Symlink(m.Target, m.Path))
	case ReaddirReq:
		ents, err := s.fs.ReadDir(m.Path)
		if err != nil {
			return ReaddirResp{Err: err.Error()}
		}
		out := ReaddirResp{OK: true}
		for _, e := range ents {
			out.Names = append(out.Names, e.Name)
			out.Types = append(out.Types, uint16(e.Type))
		}
		return out
	}
	return nil
}

// Client accesses an exported volume from an untrusted machine. It
// fails over across the provided export servers: "the technique of
// having a new machine take over the IP address of a failed machine
// has been used in other systems and could be applied here" — we
// retry the next server instead, which gives the same continuity.
type Client struct {
	ep      *rpc.Endpoint
	clock   *sim.Clock
	servers []string
	timeout time.Duration
}

// NewClient creates a remote client on machine, pointed at the export
// servers (trusted Frangipani machines).
func NewClient(w *sim.World, machine string, servers []string) *Client {
	return &Client{
		ep:      rpc.NewEndpoint(machine+".nfsc", rpc.SimCarrier{Net: w.Net}, w.Clock, nil),
		clock:   w.Clock,
		servers: append([]string(nil), servers...),
		timeout: 10 * time.Second,
	}
}

// Close releases the client's endpoint.
func (c *Client) Close() { c.ep.Close() }

// call tries each export server in turn until one answers.
func (c *Client) call(req any) (any, error) {
	var lastErr error = errors.New("export: no server reachable")
	for _, s := range c.servers {
		resp, err := c.ep.Call(Addr(s), req, c.timeout)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Stat resolves a path remotely.
func (c *Client) Stat(path string) (AttrResp, error) {
	resp, err := c.call(LookupReq{Path: path})
	if err != nil {
		return AttrResp{}, err
	}
	ar, ok := resp.(AttrResp)
	if !ok {
		return AttrResp{}, fmt.Errorf("export: bad response %T", resp)
	}
	if !ar.OK {
		return AttrResp{}, errors.New(ar.Err)
	}
	return ar, nil
}

// Read reads up to count bytes at off.
func (c *Client) Read(path string, off int64, count int) ([]byte, bool, error) {
	resp, err := c.call(ReadReq{Path: path, Off: off, Count: count})
	if err != nil {
		return nil, false, err
	}
	rr, ok := resp.(ReadResp)
	if !ok {
		return nil, false, fmt.Errorf("export: bad response %T", resp)
	}
	if !rr.OK {
		return nil, false, errors.New(rr.Err)
	}
	return rr.Data, rr.EOF, nil
}

// Write writes data at off, optionally creating and optionally
// waiting for stability.
func (c *Client) Write(path string, off int64, data []byte, create, stable bool) error {
	resp, err := c.call(WriteReq{Path: path, Off: off, Data: data, Create: create, Stable: stable})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Mkdir creates a directory remotely.
func (c *Client) Mkdir(path string) error {
	resp, err := c.call(MkdirReq{Path: path})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Remove unlinks a file; RemoveDir removes a directory.
func (c *Client) Remove(path string) error {
	resp, err := c.call(RemoveReq{Path: path})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// RemoveDir removes an empty directory remotely.
func (c *Client) RemoveDir(path string) error {
	resp, err := c.call(RemoveReq{Path: path, Dir: true})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Rename moves src to dst remotely.
func (c *Client) Rename(src, dst string) error {
	resp, err := c.call(RenameReq{Src: src, Dst: dst})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Symlink creates a symlink remotely.
func (c *Client) Symlink(target, path string) error {
	resp, err := c.call(SymlinkReq{Target: target, Path: path})
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// Readdir lists a directory remotely.
func (c *Client) Readdir(path string) ([]string, error) {
	resp, err := c.call(ReaddirReq{Path: path})
	if err != nil {
		return nil, err
	}
	rr, ok := resp.(ReaddirResp)
	if !ok {
		return nil, fmt.Errorf("export: bad response %T", resp)
	}
	if !rr.OK {
		return nil, errors.New(rr.Err)
	}
	return rr.Names, nil
}

func statusErr(resp any) error {
	sr, ok := resp.(StatusResp)
	if !ok {
		return fmt.Errorf("export: bad response %T", resp)
	}
	if !sr.OK {
		return errors.New(sr.Err)
	}
	return nil
}
