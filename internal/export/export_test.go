package export

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"frangipani/internal/fs"
	"frangipani/internal/lockservice"
	"frangipani/internal/petal"
	"frangipani/internal/sim"
)

// rig builds petal + locks + n Frangipani servers, each exporting.
type rig struct {
	w       *sim.World
	servers []*Server
	fss     []*fs.FS
	names   []string
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	w := sim.NewWorld(200, 21)
	r := &rig{w: w}
	var petals []string
	for i := 0; i < 3; i++ {
		petals = append(petals, fmt.Sprintf("p%d", i))
	}
	pcfg := petal.DefaultServerConfig(128 << 20)
	pcfg.NumDisks = 2
	pcfg.HeartbeatEvery = 2 * time.Second
	pcfg.SuspectAfter = 10 * time.Second
	var pservers []*petal.Server
	for _, name := range petals {
		pservers = append(pservers, petal.NewServer(w, name, petals, pcfg))
	}
	var locks []string
	for i := 0; i < 3; i++ {
		locks = append(locks, fmt.Sprintf("ls%d", i))
	}
	lcfg := lockservice.DefaultConfig()
	lcfg.HeartbeatEvery = 2 * time.Second
	lcfg.SuspectAfter = 10 * time.Second
	var lservers []*lockservice.Server
	for _, name := range locks {
		lservers = append(lservers, lockservice.NewServer(w, name, locks, lcfg))
	}
	admin := petal.NewClient(w, "admin", petals)
	if err := admin.CreateVDisk("vol"); err != nil {
		t.Fatal(err)
	}
	lay := fs.DefaultLayout()
	if err := fs.Mkfs(admin, "vol", lay); err != nil {
		t.Fatal(err)
	}
	fscfg := fs.DefaultConfig()
	fscfg.Lock = lcfg
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("srv%d", i)
		f, err := fs.Mount(w, name, petal.NewClient(w, name, petals), "vol", locks, lay, fscfg)
		if err != nil {
			t.Fatal(err)
		}
		r.fss = append(r.fss, f)
		r.servers = append(r.servers, NewServer(w, f))
		r.names = append(r.names, name)
	}
	t.Cleanup(func() {
		for i, s := range r.servers {
			s.Close()
			_ = r.fss[i].Unmount()
		}
		for _, s := range lservers {
			s.Close()
		}
		for _, s := range pservers {
			s.Close()
		}
		w.Stop()
	})
	return r
}

func TestRemoteClientFullWorkflow(t *testing.T) {
	r := newRig(t, 1)
	c := NewClient(r.w, "laptop", r.names)
	defer c.Close()

	if err := c.Mkdir("/remote"); err != nil {
		t.Fatal(err)
	}
	data := []byte("written from an untrusted client")
	if err := c.Write("/remote/file", 0, data, true, true); err != nil {
		t.Fatal(err)
	}
	got, eof, err := c.Read("/remote/file", 0, 1024)
	if err != nil || !eof || !bytes.Equal(got, data) {
		t.Fatalf("read=%q eof=%v err=%v", got, eof, err)
	}
	attr, err := c.Stat("/remote/file")
	if err != nil || attr.Size != int64(len(data)) {
		t.Fatalf("stat: %+v err=%v", attr, err)
	}
	if err := c.Symlink("/remote/file", "/remote/ln"); err != nil {
		t.Fatal(err)
	}
	names, err := c.Readdir("/remote")
	if err != nil || len(names) != 2 {
		t.Fatalf("readdir: %v err=%v", names, err)
	}
	if err := c.Rename("/remote/file", "/remote/moved"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/remote/moved"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/remote/ln"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveDir("/remote"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/remote"); err == nil {
		t.Fatal("removed dir still visible")
	}
}

func TestRemoteClientsShareCoherentView(t *testing.T) {
	r := newRig(t, 2)
	// Client A talks to srv0, client B to srv1: coherence across the
	// export layer comes from Frangipani underneath (Figure 3's whole
	// point: the protocol "should support coherent access").
	a := NewClient(r.w, "clientA", r.names[:1])
	defer a.Close()
	b := NewClient(r.w, "clientB", r.names[1:])
	defer b.Close()

	if err := a.Write("/shared.txt", 0, []byte("from A"), true, true); err != nil {
		t.Fatal(err)
	}
	got, _, err := b.Read("/shared.txt", 0, 64)
	if err != nil || string(got) != "from A" {
		t.Fatalf("B reads %q err=%v", got, err)
	}
	if err := b.Write("/shared.txt", 0, []byte("from B"), false, true); err != nil {
		t.Fatal(err)
	}
	got, _, err = a.Read("/shared.txt", 0, 64)
	if err != nil || string(got) != "from B" {
		t.Fatalf("A reads %q err=%v", got, err)
	}
}

func TestClientFailsOverAcrossExportServers(t *testing.T) {
	r := newRig(t, 2)
	c := NewClient(r.w, "laptop", r.names) // both servers listed
	defer c.Close()
	if err := c.Write("/ha.txt", 0, []byte("still here"), true, true); err != nil {
		t.Fatal(err)
	}
	// Kill the first export server (just the export endpoint — the
	// Frangipani server beneath would be recovered separately).
	r.servers[0].Close()
	got, _, err := c.Read("/ha.txt", 0, 64)
	if err != nil || string(got) != "still here" {
		t.Fatalf("after failover: %q err=%v", got, err)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	r := newRig(t, 1)
	c := NewClient(r.w, "laptop", r.names)
	defer c.Close()
	if _, err := c.Stat("/nope"); err == nil {
		t.Fatal("stat of missing file succeeded")
	}
	if err := c.Write("/nope/deep", 0, []byte("x"), true, false); err == nil {
		t.Fatal("write under missing dir succeeded")
	}
	if err := c.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/d"); err == nil {
		t.Fatal("duplicate mkdir succeeded")
	}
}
