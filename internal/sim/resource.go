package sim

import (
	"sync"
)

// Resource models a serially-reusable hardware component — a disk arm,
// one direction of a network link, a CPU — as a FIFO queue in virtual
// time. Each use occupies the resource for a caller-computed service
// time; concurrent callers are serialized, which is what produces
// saturation behaviour (the flat top of the paper's Figures 6 and 7)
// without any explicit queue data structure: the resource tracks the
// virtual time at which it next becomes free.
type Resource struct {
	clock *Clock
	name  string

	mu    sync.Mutex
	free  Time // virtual time at which the resource is next idle
	busy  Duration
	uses  int64
	since Time // start of the current accounting window
}

// NewResource returns an idle resource on the given clock. name is
// used only for diagnostics.
func NewResource(clock *Clock, name string) *Resource {
	return &Resource{clock: clock, name: name, since: clock.Now()}
}

// Use occupies the resource for cost of simulated time and blocks the
// caller until its service completes. It returns the virtual time at
// which service finished.
func (r *Resource) Use(cost Duration) Time {
	if cost < 0 {
		cost = 0
	}
	now := r.clock.Now()
	r.mu.Lock()
	start := r.free
	if now > start {
		start = now
	}
	end := start + Time(cost)
	r.free = end
	r.busy += cost
	r.uses++
	r.mu.Unlock()
	r.clock.SleepUntil(end)
	return end
}

// TryUse occupies the resource only if it is currently idle; it
// reports whether the use was admitted. Used by background scrubbers
// that must not delay foreground traffic.
func (r *Resource) TryUse(cost Duration) bool {
	now := r.clock.Now()
	r.mu.Lock()
	if r.free > now {
		r.mu.Unlock()
		return false
	}
	end := now + Time(cost)
	r.free = end
	r.busy += cost
	r.uses++
	r.mu.Unlock()
	r.clock.SleepUntil(end)
	return true
}

// Utilization reports the fraction of virtual time this resource has
// been busy since the last call to ResetStats (or creation), along
// with the number of uses.
func (r *Resource) Utilization() (frac float64, uses int64) {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	window := Duration(now - r.since)
	if window <= 0 {
		return 0, r.uses
	}
	f := float64(r.busy) / float64(window)
	if f > 1 {
		f = 1
	}
	return f, r.uses
}

// BusyTime reports the accumulated busy time since the last reset.
func (r *Resource) BusyTime() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// ResetStats zeroes the utilization accounting window.
func (r *Resource) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.busy = 0
	r.uses = 0
	r.since = r.clock.Now()
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// CPU models a machine's processor as a Resource plus convenience
// accounting in "CPU seconds". Operations charge a cost; utilization
// is CPU-busy virtual time over elapsed virtual time, matching the
// CPU-utilization columns in the paper's Table 3.
type CPU struct {
	res *Resource
}

// NewCPU returns a CPU on the given clock.
func NewCPU(clock *Clock, name string) *CPU {
	return &CPU{res: NewResource(clock, name)}
}

// Use charges d of CPU time, blocking through the queue.
func (c *CPU) Use(d Duration) { c.res.Use(d) }

// Utilization reports the busy fraction since the last reset.
func (c *CPU) Utilization() float64 {
	f, _ := c.res.Utilization()
	return f
}

// BusyTime reports accumulated CPU-busy time since the last reset.
func (c *CPU) BusyTime() Duration { return c.res.BusyTime() }

// ResetStats zeroes the accounting window.
func (c *CPU) ResetStats() { c.res.ResetStats() }
