package sim

import (
	"errors"
	"fmt"
	"sync"
)

// SectorSize is the atomic unit of disk I/O. The paper's recovery
// scheme assumes "a disk write failure leaves the contents of a single
// sector in either the old state or the new state but never in a
// combination of both"; the simulated disk enforces exactly that.
const SectorSize = 512

// Errors returned by Disk operations.
var (
	ErrDiskFailed = errors.New("sim: disk failed")
	ErrBadSector  = errors.New("sim: CRC error reading sector")
	ErrDiskBounds = errors.New("sim: I/O beyond end of disk")
)

// DiskParams describes the performance envelope of a simulated drive.
// The defaults in DefaultDiskParams are the paper's DIGITAL RZ29:
// 4.3 GB, 9 ms average seek, 6 MB/s sustained transfer.
type DiskParams struct {
	Capacity     int64    // bytes
	SeekTime     Duration // charged per I/O that moves the arm
	TransferRate int64    // bytes per simulated second
}

// DefaultDiskParams returns RZ29-like parameters scaled to the given
// capacity.
func DefaultDiskParams(capacity int64) DiskParams {
	return DiskParams{
		Capacity:     capacity,
		SeekTime:     9 * msec,
		TransferRate: 6 << 20,
	}
}

const msec = Duration(1e6)

// Disk is a simulated physical drive: a sparse sector store behind a
// single arm (a Resource). Sequential I/O pays only transfer time;
// an I/O that moves the arm pays a seek. Writes are atomic per
// sector. Fault injection supports whole-disk failure, torn
// multi-sector writes (a prefix of sectors is applied), and per-sector
// CRC read errors.
type Disk struct {
	params DiskParams
	arm    *Resource
	clock  *Clock

	mu        sync.Mutex
	sectors   map[int64][]byte // sector index -> 512 bytes
	head      int64            // sector index under the arm
	failed    bool
	badSector map[int64]bool // sectors that return CRC errors
	tornAfter int64          // if >= 0, apply only this many sectors of the next write, then fail the disk
	reads     int64
	writes    int64
	bytesRead int64
	bytesWr   int64
}

// NewDisk returns an empty simulated disk.
func NewDisk(clock *Clock, name string, params DiskParams) *Disk {
	if params.TransferRate <= 0 {
		params.TransferRate = 6 << 20
	}
	return &Disk{
		params:    params,
		arm:       NewResource(clock, name),
		clock:     clock,
		sectors:   make(map[int64][]byte),
		badSector: make(map[int64]bool),
		tornAfter: -1,
		head:      -1,
	}
}

// Params returns the disk's performance parameters.
func (d *Disk) Params() DiskParams { return d.params }

// serviceTime computes the virtual-time cost of an I/O of n bytes
// starting at sector s, and updates the head position. Arm movement
// costs the full average seek only for long hops; short hops pay a
// track-to-track seek (1/8 of average, floor 1 ms), matching how
// real drives behave on mostly-sequential workloads.
func (d *Disk) serviceTime(s int64, n int) Duration {
	cost := Duration(float64(n) / float64(d.params.TransferRate) * 1e9)
	if d.head != s { // arm movement
		gap := s - d.head
		if gap < 0 {
			gap = -gap
		}
		if gap*SectorSize <= 2<<20 {
			short := d.params.SeekTime / 8
			if short < msec {
				short = msec
			}
			cost += short
		} else {
			cost += d.params.SeekTime
		}
	}
	d.head = s + int64((n+SectorSize-1)/SectorSize)
	return cost
}

func (d *Disk) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.params.Capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrDiskBounds, off, n, d.params.Capacity)
	}
	if off%SectorSize != 0 || n%SectorSize != 0 {
		return fmt.Errorf("sim: unaligned I/O off=%d len=%d", off, n)
	}
	return nil
}

// ReadAt reads len(p) bytes at byte offset off. Unwritten sectors
// read as zero. Both off and len(p) must be sector-aligned.
func (d *Disk) ReadAt(p []byte, off int64) error {
	if err := d.checkRange(off, len(p)); err != nil {
		return err
	}
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrDiskFailed
	}
	s := off / SectorSize
	cost := d.serviceTime(s, len(p))
	var bad error
	for i := 0; i < len(p)/SectorSize; i++ {
		idx := s + int64(i)
		if d.badSector[idx] {
			bad = fmt.Errorf("%w: sector %d", ErrBadSector, idx)
			break
		}
		dst := p[i*SectorSize : (i+1)*SectorSize]
		if sec, ok := d.sectors[idx]; ok {
			copy(dst, sec)
		} else {
			clear(dst)
		}
	}
	d.reads++
	d.bytesRead += int64(len(p))
	d.mu.Unlock()
	d.arm.Use(cost)
	return bad
}

// WriteAt writes len(p) bytes at byte offset off, sector-atomically.
// If a torn write has been injected, only a prefix of the sectors is
// applied and the disk fails.
func (d *Disk) WriteAt(p []byte, off int64) error {
	if err := d.checkRange(off, len(p)); err != nil {
		return err
	}
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrDiskFailed
	}
	s := off / SectorSize
	cost := d.serviceTime(s, len(p))
	n := len(p) / SectorSize
	torn := false
	if d.tornAfter >= 0 {
		if int64(n) > d.tornAfter {
			n = int(d.tornAfter)
			torn = true
		}
		d.tornAfter -= int64(n)
	}
	for i := 0; i < n; i++ {
		idx := s + int64(i)
		sec := d.sectors[idx]
		if sec == nil {
			sec = make([]byte, SectorSize)
			d.sectors[idx] = sec
		}
		copy(sec, p[i*SectorSize:(i+1)*SectorSize])
	}
	d.writes++
	d.bytesWr += int64(n * SectorSize)
	if torn {
		d.failed = true
		d.mu.Unlock()
		return ErrDiskFailed
	}
	d.mu.Unlock()
	d.arm.Use(cost)
	return nil
}

// Fail marks the disk dead: all subsequent I/O returns ErrDiskFailed.
func (d *Disk) Fail() {
	d.mu.Lock()
	d.failed = true
	d.mu.Unlock()
}

// Revive clears a failure, preserving whatever sectors survived.
func (d *Disk) Revive() {
	d.mu.Lock()
	d.failed = false
	d.tornAfter = -1
	d.mu.Unlock()
}

// Failed reports whether the disk is currently failed.
func (d *Disk) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// InjectTornWrite arranges for the disk to apply only the next n
// sectors written and then fail, simulating a power loss mid-write.
func (d *Disk) InjectTornWrite(n int) {
	d.mu.Lock()
	d.tornAfter = int64(n)
	d.mu.Unlock()
}

// CorruptSector marks one sector as returning CRC errors on read,
// simulating media damage. Petal's replication is expected to mask it.
func (d *Disk) CorruptSector(idx int64) {
	d.mu.Lock()
	d.badSector[idx] = true
	d.mu.Unlock()
}

// RepairSector clears an injected CRC error.
func (d *Disk) RepairSector(idx int64) {
	d.mu.Lock()
	delete(d.badSector, idx)
	d.mu.Unlock()
}

// Stats reports cumulative I/O counters.
func (d *Disk) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.bytesRead, d.bytesWr
}
