// Package sim provides the simulation substrate used throughout the
// Frangipani reproduction: a compressible virtual clock, FIFO-queued
// rate-limited resources (disk arms, network links, CPUs), simulated
// physical disks with sector-atomic failure semantics, a switched
// point-to-point network with partition and fault injection, and an
// NVRAM write buffer.
//
// The paper's testbed (DEC Alphas, 155 Mbit/s ATM, RZ29 SCSI disks,
// PrestoServe NVRAM) is unavailable, so every performance-relevant
// hardware component is modelled here with the published parameters.
// All durations handed to this package are in *simulated* time; the
// clock compresses them onto the wall clock so that a 30-second lease
// period costs a fraction of a second of real time in tests.
package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Time is an instant in simulated time, expressed as a duration since
// the start of the simulation.
type Time time.Duration

// Duration re-exports time.Duration for readability at call sites that
// deal in simulated durations.
type Duration = time.Duration

// Clock maps simulated time onto the wall clock with a compression
// factor. With Compression = 20, one simulated second takes 50 ms of
// real time. A Clock is safe for concurrent use.
type Clock struct {
	compression float64 // simulated seconds per real second
	start       time.Time
	stopped     atomic.Bool
}

// NewClock returns a clock that runs compression× faster than real
// time. Compression below 1 DILATES time — useful when many
// concurrent simulated machines would otherwise saturate the host
// CPU and pollute wall-derived simulated timings.
func NewClock(compression float64) *Clock {
	if compression <= 0 {
		panic("sim: clock compression must be > 0")
	}
	return &Clock{compression: compression, start: time.Now()}
}

// Compression reports the configured compression factor.
func (c *Clock) Compression() float64 { return c.compression }

// Now returns the current simulated time.
func (c *Clock) Now() Time {
	real := time.Since(c.start)
	return Time(float64(real) * c.compression)
}

// Sleep blocks the calling goroutine for d of simulated time.
func (c *Clock) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(c.real(d))
}

// SleepUntil blocks until the simulated clock reads at least t.
func (c *Clock) SleepUntil(t Time) {
	now := c.Now()
	if t <= now {
		return
	}
	c.Sleep(Duration(t - now))
}

// After returns a channel that fires once d of simulated time has
// elapsed, mirroring time.After.
func (c *Clock) After(d Duration) <-chan time.Time {
	return time.After(c.real(d))
}

// Stop marks the clock stopped. Tickers started from this clock exit
// at their next wakeup. Sleeps are unaffected (they are short under
// compression).
func (c *Clock) Stop() { c.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (c *Clock) Stopped() bool { return c.stopped.Load() }

// Tick calls fn every period of simulated time until either the clock
// is stopped or the returned cancel function is invoked. fn runs on a
// dedicated goroutine; overlapping invocations never occur.
func (c *Clock) Tick(period Duration, fn func()) (cancel func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(c.real(period))
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if c.stopped.Load() {
					return
				}
				fn()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (c *Clock) real(d Duration) time.Duration {
	r := time.Duration(float64(d) / c.compression)
	if r <= 0 && d > 0 {
		r = time.Nanosecond
	}
	return r
}
