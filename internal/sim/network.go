package sim

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the network.
var (
	ErrUnreachable = errors.New("sim: host unreachable")
	ErrNoSuchHost  = errors.New("sim: no such host")
)

// LinkParams describes one machine's point-to-point link to the
// switch. The defaults mirror the paper's 155 Mbit/s ATM links, which
// after UDP/IP overhead delivered about 16-17 MB/s of payload.
type LinkParams struct {
	Latency   Duration // one-way propagation + protocol latency
	Bandwidth int64    // payload bytes per simulated second, each direction
}

// DefaultLinkParams returns ATM-like link parameters.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		Latency:   200 * 1000, // 200 us
		Bandwidth: 17 << 20,   // ~17 MB/s payload
	}
}

// link is one machine's full-duplex attachment to the switch. Egress
// and ingress are independent FIFO resources, so a host can saturate
// in one direction while the other stays idle — exactly the asymmetry
// between the paper's read and write scaling experiments.
type link struct {
	params  LinkParams
	egress  *Resource
	ingress *Resource
}

// Message is what a registered handler receives. Payload is the Go
// value sent; Size is the modelled wire size in bytes.
type Message struct {
	From    string
	To      string
	Payload any
	Size    int
}

// Handler consumes delivered messages. Handlers run on the delivering
// goroutine and must not block for long; long work should be handed
// off.
type Handler func(Message)

// Network is a switched network of named hosts. Every Send pays the
// sender's egress and the receiver's ingress bandwidth plus latency,
// and is then delivered asynchronously to the destination handler.
// Partitions are expressed as a set of unreachable (from,to) pairs or
// whole-host isolation.
type Network struct {
	clock *Clock

	mu        sync.Mutex
	pairCond  *sync.Cond
	links     map[string]*link
	handlers  map[string]Handler
	isolated  map[string]bool
	cut       map[[2]string]bool
	pairSeq   map[[2]string]uint64 // FIFO sequencing per (from,to)
	pairDone  map[[2]string]uint64
	dropEvery int64 // drop one message in N (0 = never); deterministic
	sent      int64
	delivered int64
	bytes     int64
}

// NewNetwork returns an empty network on the given clock.
func NewNetwork(clock *Clock) *Network {
	n := &Network{
		clock:    clock,
		links:    make(map[string]*link),
		handlers: make(map[string]Handler),
		isolated: make(map[string]bool),
		cut:      make(map[[2]string]bool),
		pairSeq:  make(map[[2]string]uint64),
		pairDone: make(map[[2]string]uint64),
	}
	n.pairCond = sync.NewCond(&n.mu)
	return n
}

// AddHost attaches a host with the given link parameters. Adding an
// existing host replaces its link (and resets its counters) but keeps
// its handler.
func (n *Network) AddHost(name string, p LinkParams) {
	if p.Bandwidth <= 0 {
		p.Bandwidth = DefaultLinkParams().Bandwidth
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[name] = &link{
		params:  p,
		egress:  NewResource(n.clock, name+"/tx"),
		ingress: NewResource(n.clock, name+"/rx"),
	}
}

// Register installs the message handler for a host. It replaces any
// previous handler.
func (n *Network) Register(name string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.links[name]; !ok {
		n.links[name] = &link{
			params:  DefaultLinkParams(),
			egress:  NewResource(n.clock, name+"/tx"),
			ingress: NewResource(n.clock, name+"/rx"),
		}
	}
	n.handlers[name] = h
}

// Unregister removes a host's handler; messages to it are dropped.
func (n *Network) Unregister(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, name)
}

// Isolate makes a host unreachable in both directions (a partition of
// one). Heal reverses it.
func (n *Network) Isolate(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[name] = true
}

// Heal reconnects an isolated host.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, name)
}

// Cut severs the directed pair from->to; CutBoth severs both
// directions. Reconnect restores a pair.
func (n *Network) Cut(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]string{from, to}] = true
}

// CutBoth severs both directions between a and b.
func (n *Network) CutBoth(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]string{a, b}] = true
	n.cut[[2]string{b, a}] = true
}

// Reconnect restores both directions between a and b.
func (n *Network) Reconnect(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]string{a, b})
	delete(n.cut, [2]string{b, a})
}

// SetDropEvery makes the network silently drop one message in every k
// sends (k <= 0 disables). Used by fault-injection tests; the lock
// service's messages must tolerate loss.
func (n *Network) SetDropEvery(k int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropEvery = k
}

// Reachable reports whether a message from->to would currently be
// deliverable.
func (n *Network) Reachable(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reachableLocked(from, to)
}

func (n *Network) reachableLocked(from, to string) bool {
	if n.isolated[from] || n.isolated[to] {
		return false
	}
	if n.cut[[2]string{from, to}] {
		return false
	}
	return true
}

// Send transmits payload of modelled wire size bytes from one host to
// another. It blocks the caller through the sender's egress resource
// (backpressure), then delivers asynchronously after the receiver's
// ingress service and link latency. Send returns an error immediately
// if the destination is unknown or unreachable; delivery failures
// after that point are silent, like a real datagram network.
func (n *Network) Send(from, to string, payload any, size int) error {
	if size < 0 {
		size = 0
	}
	n.mu.Lock()
	lf, ok := n.links[from]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchHost, from)
	}
	lt, ok := n.links[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchHost, to)
	}
	if !n.reachableLocked(from, to) {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	n.sent++
	n.bytes += int64(size)
	drop := n.dropEvery > 0 && n.sent%n.dropEvery == 0
	pair := [2]string{from, to}
	var seq uint64
	if !drop {
		// Messages between one (from,to) pair are delivered in send
		// order, like a switched network with per-flow FIFO queues.
		// Drops are allowed (handlers are idempotent) but reordering
		// between a release and a subsequent request would break the
		// lock protocol's state machine.
		n.pairSeq[pair]++
		seq = n.pairSeq[pair]
	}
	n.mu.Unlock()

	txCost := Duration(float64(size) / float64(lf.params.Bandwidth) * 1e9)
	rxCost := Duration(float64(size) / float64(lt.params.Bandwidth) * 1e9)
	lf.egress.Use(txCost)
	if drop {
		return nil
	}
	go func() {
		lt.ingress.Use(rxCost)
		n.clock.Sleep(lf.params.Latency + lt.params.Latency)
		n.mu.Lock()
		for n.pairDone[pair] != seq-1 {
			n.pairCond.Wait()
		}
		// Re-check reachability at delivery time so a partition that
		// forms while the message is in flight loses it.
		h := n.handlers[to]
		ok := n.reachableLocked(from, to)
		if ok && h != nil {
			n.delivered++
		}
		n.mu.Unlock()
		if ok && h != nil {
			h(Message{From: from, To: to, Payload: payload, Size: size})
		}
		n.mu.Lock()
		n.pairDone[pair] = seq
		n.pairCond.Broadcast()
		n.mu.Unlock()
	}()
	return nil
}

// LinkUtilization reports the busy fraction of a host's egress and
// ingress since the last ResetStats.
func (n *Network) LinkUtilization(name string) (tx, rx float64) {
	n.mu.Lock()
	l := n.links[name]
	n.mu.Unlock()
	if l == nil {
		return 0, 0
	}
	tx, _ = l.egress.Utilization()
	rx, _ = l.ingress.Utilization()
	return tx, rx
}

// ResetStats zeroes per-link utilization windows and message counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.egress.ResetStats()
		l.ingress.ResetStats()
	}
	n.sent, n.delivered, n.bytes = 0, 0, 0
}

// Stats reports cumulative message counters since the last reset.
func (n *Network) Stats() (sent, delivered, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.bytes
}
