package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"frangipani/internal/obs"
)

// World bundles the shared simulation state — clock, network, seeded
// randomness, and per-machine CPUs — that every layer of the stack is
// constructed against. One World is one cluster.
type World struct {
	Clock *Clock
	Net   *Network
	// Obs is the cluster-wide metrics registry and tracer, timed on
	// the simulated clock. Setting it to nil before constructing the
	// stack disables span tracing and latency histograms (counters
	// fall back to standalone collectors) — used by the overhead
	// ablation benchmark.
	Obs *obs.Registry

	mu   sync.Mutex
	rng  *rand.Rand
	cpus map[string]*CPU
}

// NewWorld creates a world with the given clock compression and
// deterministic random seed.
func NewWorld(compression float64, seed int64) *World {
	clock := NewClock(compression)
	return &World{
		Clock: clock,
		Net:   NewNetwork(clock),
		Obs:   obs.NewRegistry(func() int64 { return int64(clock.Now()) }),
		rng:   rand.New(rand.NewSource(seed)),
		cpus:  make(map[string]*CPU),
	}
}

// AddMachine registers a machine: a host on the network plus a CPU.
func (w *World) AddMachine(name string, link LinkParams) *CPU {
	w.Net.AddHost(name, link)
	cpu := NewCPU(w.Clock, name+"/cpu")
	w.mu.Lock()
	w.cpus[name] = cpu
	w.mu.Unlock()
	return cpu
}

// CPU returns the CPU of a machine, creating the machine with default
// link parameters if it does not exist yet.
func (w *World) CPU(name string) *CPU {
	w.mu.Lock()
	cpu, ok := w.cpus[name]
	w.mu.Unlock()
	if ok {
		return cpu
	}
	return w.AddMachine(name, DefaultLinkParams())
}

// Rand returns a deterministic pseudo-random int63 from the world's
// seeded source.
func (w *World) Rand() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rng.Int63()
}

// RandIntn returns a deterministic pseudo-random int in [0, n).
func (w *World) RandIntn(n int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rng.Intn(n)
}

// Stop halts the clock, which winds down tickers across the stack.
func (w *World) Stop() { w.Clock.Stop() }

// String summarizes the world for diagnostics.
func (w *World) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return fmt.Sprintf("sim.World{machines=%d, t=%v}", len(w.cpus), Duration(w.Clock.Now()))
}
