package sim

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testClock() *Clock { return NewClock(1000) }

func TestClockCompression(t *testing.T) {
	c := NewClock(100)
	start := time.Now()
	c.Sleep(1 * time.Second) // 1 simulated second = 10ms real
	real := time.Since(start)
	if real < 5*time.Millisecond || real > 500*time.Millisecond {
		t.Fatalf("compressed sleep took %v real, want ~10ms", real)
	}
	if got := c.Now(); got < Time(500*time.Millisecond) {
		t.Fatalf("Now() = %v, want >= ~1s simulated", Duration(got))
	}
}

func TestClockSleepUntilPast(t *testing.T) {
	c := testClock()
	c.Sleep(10 * time.Millisecond)
	start := time.Now()
	c.SleepUntil(0) // in the past: returns immediately
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("SleepUntil in the past blocked")
	}
}

func TestClockTickCancel(t *testing.T) {
	c := NewClock(10) // low compression: real ticker granularity matters here
	var mu sync.Mutex
	n := 0
	cancel := c.Tick(10*time.Millisecond, func() {
		mu.Lock()
		n++
		mu.Unlock()
	})
	c.Sleep(200 * time.Millisecond)
	cancel()
	mu.Lock()
	got := n
	mu.Unlock()
	if got < 2 {
		t.Fatalf("ticker fired %d times, want >= 2", got)
	}
	cancel() // double-cancel must be safe
}

func TestResourceSerializes(t *testing.T) {
	c := testClock()
	r := NewResource(c, "test")
	const workers = 8
	const cost = 10 * time.Millisecond
	var wg sync.WaitGroup
	start := c.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Use(cost)
		}()
	}
	wg.Wait()
	elapsed := Duration(c.Now() - start)
	if elapsed < workers*cost {
		t.Fatalf("8 concurrent uses of a serial resource finished in %v, want >= %v", elapsed, workers*cost)
	}
	if busy := r.BusyTime(); busy != workers*cost {
		t.Fatalf("busy time %v, want %v", busy, workers*cost)
	}
}

func TestResourceUtilization(t *testing.T) {
	c := testClock()
	r := NewResource(c, "u")
	r.ResetStats()
	r.Use(50 * time.Millisecond)
	f, uses := r.Utilization()
	if uses != 1 {
		t.Fatalf("uses = %d, want 1", uses)
	}
	if f <= 0 || f > 1.0 {
		t.Fatalf("utilization %v out of range (0, 1]", f)
	}
	if busy := r.BusyTime(); busy != 50*time.Millisecond {
		t.Fatalf("busy = %v, want 50ms", busy)
	}
}

func TestDiskReadWriteRoundTrip(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(1<<20))
	data := make([]byte, 4*SectorSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := d.WriteAt(data, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back different data")
	}
	// Unwritten space reads as zero.
	zero := make([]byte, SectorSize)
	if err := d.ReadAt(zero, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range zero {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
}

func TestDiskBounds(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(4*SectorSize))
	buf := make([]byte, SectorSize)
	if err := d.WriteAt(buf, 4*SectorSize); !errors.Is(err, ErrDiskBounds) {
		t.Fatalf("write past end: err = %v, want ErrDiskBounds", err)
	}
	if err := d.ReadAt(buf, -512); !errors.Is(err, ErrDiskBounds) {
		t.Fatalf("negative read: err = %v, want ErrDiskBounds", err)
	}
	if err := d.WriteAt(buf[:100], 0); err == nil {
		t.Fatal("unaligned write succeeded")
	}
}

func TestDiskFailAndRevive(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(1<<20))
	buf := make([]byte, SectorSize)
	d.Fail()
	if err := d.WriteAt(buf, 0); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("err = %v, want ErrDiskFailed", err)
	}
	if !d.Failed() {
		t.Fatal("Failed() = false after Fail()")
	}
	d.Revive()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("write after revive: %v", err)
	}
}

func TestDiskTornWrite(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(1<<20))
	old := bytes.Repeat([]byte{0xAA}, 4*SectorSize)
	if err := d.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	d.InjectTornWrite(2)
	next := bytes.Repeat([]byte{0xBB}, 4*SectorSize)
	if err := d.WriteAt(next, 0); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("torn write err = %v, want ErrDiskFailed", err)
	}
	d.Revive()
	got := make([]byte, 4*SectorSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	// Exactly a prefix of sectors is new; each sector is all-old or all-new.
	for s := 0; s < 4; s++ {
		sec := got[s*SectorSize : (s+1)*SectorSize]
		want := byte(0xAA)
		if s < 2 {
			want = 0xBB
		}
		for _, b := range sec {
			if b != want {
				t.Fatalf("sector %d mixes old and new data", s)
			}
		}
	}
}

func TestDiskCorruptSector(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(1<<20))
	buf := make([]byte, SectorSize)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	d.CorruptSector(0)
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrBadSector) {
		t.Fatalf("err = %v, want ErrBadSector", err)
	}
	d.RepairSector(0)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
}

func TestDiskSectorAtomicityProperty(t *testing.T) {
	// Property: after a torn write of k sectors into a region of known
	// old content, every sector is either fully old or fully new, and
	// the new sectors form a prefix.
	c := NewClock(100000)
	f := func(k uint8, total uint8) bool {
		n := int(total%6) + 2
		cut := int(k) % (n + 1)
		d := NewDisk(c, "p", DefaultDiskParams(int64(n)*SectorSize))
		old := bytes.Repeat([]byte{1}, n*SectorSize)
		if err := d.WriteAt(old, 0); err != nil {
			return false
		}
		d.InjectTornWrite(cut)
		_ = d.WriteAt(bytes.Repeat([]byte{2}, n*SectorSize), 0)
		d.Revive()
		got := make([]byte, n*SectorSize)
		if err := d.ReadAt(got, 0); err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			want := byte(1)
			if s < cut {
				want = 2
			}
			for _, b := range got[s*SectorSize : (s+1)*SectorSize] {
				if b != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkDelivery(t *testing.T) {
	w := NewWorld(1000, 1)
	w.AddMachine("a", DefaultLinkParams())
	w.AddMachine("b", DefaultLinkParams())
	got := make(chan Message, 1)
	w.Net.Register("b", func(m Message) { got <- m })
	if err := w.Net.Send("a", "b", "hello", 100); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Payload.(string) != "hello" || m.From != "a" {
			t.Fatalf("bad message %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestNetworkPartition(t *testing.T) {
	w := NewWorld(1000, 1)
	w.AddMachine("a", DefaultLinkParams())
	w.AddMachine("b", DefaultLinkParams())
	got := make(chan Message, 8)
	w.Net.Register("b", func(m Message) { got <- m })

	w.Net.Isolate("b")
	if err := w.Net.Send("a", "b", "x", 10); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send to isolated host: err = %v", err)
	}
	w.Net.Heal("b")
	w.Net.CutBoth("a", "b")
	if err := w.Net.Send("a", "b", "x", 10); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send over cut: err = %v", err)
	}
	w.Net.Reconnect("a", "b")
	if err := w.Net.Send("a", "b", "y", 10); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered after reconnect")
	}
}

func TestNetworkUnknownHost(t *testing.T) {
	w := NewWorld(1000, 1)
	w.AddMachine("a", DefaultLinkParams())
	if err := w.Net.Send("a", "ghost", "x", 1); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost", err)
	}
	if err := w.Net.Send("ghost", "a", "x", 1); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v, want ErrNoSuchHost", err)
	}
}

func TestNetworkBandwidthSaturation(t *testing.T) {
	// Two senders into one receiver must share the receiver's ingress:
	// total time >= bytes/bandwidth.
	w := NewWorld(200, 1)
	p := LinkParams{Latency: 0, Bandwidth: 1 << 20} // 1 MB/s
	w.AddMachine("rx", p)
	w.AddMachine("s1", LinkParams{Latency: 0, Bandwidth: 8 << 20})
	w.AddMachine("s2", LinkParams{Latency: 0, Bandwidth: 8 << 20})
	var wg sync.WaitGroup
	done := make(chan struct{}, 64)
	w.Net.Register("rx", func(m Message) { done <- struct{}{} })
	start := w.Clock.Now()
	const msgs, size = 8, 128 << 10 // 1 MB total into a 1 MB/s ingress
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		sender := "s1"
		if i%2 == 1 {
			sender = "s2"
		}
		go func(s string) {
			defer wg.Done()
			_ = w.Net.Send(s, "rx", "data", size)
		}(sender)
	}
	wg.Wait()
	for i := 0; i < msgs; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for deliveries")
		}
	}
	elapsed := Duration(w.Clock.Now() - start)
	if elapsed < 900*time.Millisecond {
		t.Fatalf("1 MB through a 1 MB/s ingress took %v simulated, want >= ~1s", elapsed)
	}
}

func TestNVRAMWriteThrough(t *testing.T) {
	c := testClock()
	d := NewDisk(c, "d0", DefaultDiskParams(1<<20))
	nv := NewNVRAM(c, d, 64<<10, 50*time.Microsecond)
	defer nv.Close()
	data := bytes.Repeat([]byte{7}, 4*SectorSize)
	if err := nv.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Read-through sees the data immediately, before destage.
	got := make([]byte, len(data))
	if err := nv.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-through mismatch")
	}
	nv.Flush()
	// Now the raw disk has it too.
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("destaged data mismatch")
	}
}

func TestNVRAMAbsorbsLatency(t *testing.T) {
	// Compression 1 (sim == real) so scheduling overhead cannot
	// inflate the simulated elapsed time (matters under -race).
	c := NewClock(1)
	slow := DiskParams{Capacity: 1 << 20, SeekTime: 50 * time.Millisecond, TransferRate: 1 << 20}
	d := NewDisk(c, "slow", slow)
	nv := NewNVRAM(c, d, 1<<20, 100*time.Microsecond)
	defer nv.Close()
	buf := make([]byte, SectorSize)
	start := c.Now()
	for i := 0; i < 10; i++ {
		if err := nv.WriteAt(buf, int64(i)*SectorSize); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := Duration(c.Now() - start)
	// 10 writes hitting the raw disk would pay >= one 50ms seek; via
	// NVRAM they should cost ~1ms total.
	if elapsed > 40*time.Millisecond {
		t.Fatalf("NVRAM writes took %v simulated; latency not absorbed", elapsed)
	}
}

func TestWorldDeterministicRand(t *testing.T) {
	a := NewWorld(1000, 42)
	b := NewWorld(1000, 42)
	for i := 0; i < 100; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("same seed produced different sequences")
		}
	}
	if a.RandIntn(10) < 0 || a.RandIntn(10) > 9 {
		t.Fatal("RandIntn out of range")
	}
}

func TestWorldCPUAccounting(t *testing.T) {
	w := NewWorld(1000, 1)
	cpu := w.AddMachine("m", DefaultLinkParams())
	cpu.ResetStats()
	cpu.Use(20 * time.Millisecond)
	if u := cpu.Utilization(); u <= 0 {
		t.Fatalf("utilization %v, want > 0", u)
	}
	if w.CPU("m") != cpu {
		t.Fatal("CPU() did not return the registered CPU")
	}
	if w.CPU("auto") == nil {
		t.Fatal("CPU() did not auto-create machine")
	}
}

func TestResourceTryUse(t *testing.T) {
	c := testClock()
	r := NewResource(c, "try")
	if !r.TryUse(10 * time.Millisecond) {
		t.Fatal("TryUse on idle resource failed")
	}
	// Saturate, then TryUse must refuse while busy.
	done := make(chan struct{})
	go func() {
		r.Use(20 * time.Second) // 20 ms real at compression 1000
		close(done)
	}()
	time.Sleep(2 * time.Millisecond) // let Use claim the resource
	if r.TryUse(10 * time.Millisecond) {
		t.Fatal("TryUse admitted during busy period")
	}
	<-done
}

func TestNetworkDirectedCut(t *testing.T) {
	w := NewWorld(1000, 1)
	w.AddMachine("a", DefaultLinkParams())
	w.AddMachine("b", DefaultLinkParams())
	got := make(chan Message, 4)
	w.Net.Register("a", func(m Message) { got <- m })
	w.Net.Register("b", func(m Message) { got <- m })
	w.Net.Cut("a", "b") // one direction only
	if err := w.Net.Send("a", "b", "x", 1); err == nil {
		t.Fatal("send over directed cut succeeded")
	}
	if err := w.Net.Send("b", "a", "y", 1); err != nil {
		t.Fatalf("reverse direction cut too: %v", err)
	}
	select {
	case m := <-got:
		if m.Payload != "y" {
			t.Fatalf("got %v", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reverse message not delivered")
	}
}

func TestNetworkDropEvery(t *testing.T) {
	w := NewWorld(1000, 1)
	w.AddMachine("a", DefaultLinkParams())
	w.AddMachine("b", DefaultLinkParams())
	var mu sync.Mutex
	n := 0
	w.Net.Register("b", func(m Message) { mu.Lock(); n++; mu.Unlock() })
	w.Net.SetDropEvery(2) // drop every second message
	for i := 0; i < 10; i++ {
		_ = w.Net.Send("a", "b", i, 1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		v := n
		mu.Unlock()
		if v == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("delivered %d of 10 with drop-every-2, want 5", n)
}
