package sim

import (
	"sync"
)

// BlockDev is the interface shared by Disk, NVRAM, and Petal's client
// driver: sector-aligned random-access block storage.
type BlockDev interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
}

// nvEntry is one staged sector. epoch distinguishes rewrites so the
// destager only evicts an entry if the disk write it completed still
// reflects the latest staged data.
type nvEntry struct {
	data   []byte
	epoch  int64
	queued bool // present in the destage order queue
}

// NVRAM is a battery-backed write buffer placed in front of a disk,
// modelling the paper's PrestoServe cards (8 MB). Writes complete as
// soon as they are staged in NVRAM; a background thread destages them
// to the disk. Reads see the union of NVRAM and disk contents. The
// paper treats NVRAM failure as equivalent to failure of the Petal
// server it fronts, and so do we: there is no separate NVRAM fault
// mode.
type NVRAM struct {
	disk     *Disk
	clock    *Clock
	capacity int
	latency  Duration

	mu      sync.Mutex
	cond    *sync.Cond
	dirty   map[int64]*nvEntry // sector index -> staged data
	order   []int64            // FIFO destage order (queued entries)
	epoch   int64
	stopped bool
}

// NewNVRAM wraps disk with capacity bytes of write buffer. Writes
// complete after latency (the DMA cost of staging into the card).
func NewNVRAM(clock *Clock, disk *Disk, capacity int, latency Duration) *NVRAM {
	n := &NVRAM{
		disk:     disk,
		clock:    clock,
		capacity: capacity / SectorSize,
		latency:  latency,
		dirty:    make(map[int64]*nvEntry),
	}
	n.cond = sync.NewCond(&n.mu)
	go n.destager()
	return n
}

// WriteAt stages the write into NVRAM, blocking only if the buffer is
// full (destage backpressure).
func (n *NVRAM) WriteAt(p []byte, off int64) error {
	if err := n.disk.checkRange(off, len(p)); err != nil {
		return err
	}
	if n.disk.Failed() {
		return ErrDiskFailed
	}
	s := off / SectorSize
	count := len(p) / SectorSize
	n.mu.Lock()
	for len(n.dirty)+count > n.capacity && !n.stopped {
		n.cond.Wait()
	}
	n.epoch++
	for i := 0; i < count; i++ {
		idx := s + int64(i)
		e := n.dirty[idx]
		if e == nil {
			e = &nvEntry{data: make([]byte, SectorSize)}
			n.dirty[idx] = e
		}
		copy(e.data, p[i*SectorSize:(i+1)*SectorSize])
		e.epoch = n.epoch
		if !e.queued {
			e.queued = true
			n.order = append(n.order, idx)
		}
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	n.clock.Sleep(n.latency)
	return nil
}

// ReadAt reads through the NVRAM overlay: staged sectors come from
// the buffer, the rest from disk. The overlay is snapshotted before
// the disk read so a concurrent destage (which removes entries after
// writing them) cannot leave a window where the data is in neither
// place.
func (n *NVRAM) ReadAt(p []byte, off int64) error {
	s := off / SectorSize
	count := len(p) / SectorSize
	overlay := make(map[int][]byte)
	n.mu.Lock()
	for i := 0; i < count; i++ {
		if e, ok := n.dirty[s+int64(i)]; ok {
			buf := make([]byte, SectorSize)
			copy(buf, e.data)
			overlay[i] = buf
		}
	}
	n.mu.Unlock()
	if err := n.disk.ReadAt(p, off); err != nil {
		return err
	}
	for i, buf := range overlay {
		copy(p[i*SectorSize:(i+1)*SectorSize], buf)
	}
	return nil
}

// destager drains staged sectors to the disk in FIFO order, batching
// contiguous runs into single disk writes. Entries stay readable in
// the overlay until the disk write completes, and survive if they are
// re-dirtied while in flight.
func (n *NVRAM) destager() {
	for {
		n.mu.Lock()
		for len(n.order) == 0 && !n.stopped {
			n.cond.Wait()
		}
		if len(n.order) == 0 && n.stopped {
			n.mu.Unlock()
			return
		}
		// Take a contiguous run starting at the oldest queued sector.
		start := n.order[0]
		var run []byte
		var epochs []int64
		taken := 0
		for taken < len(n.order) && n.order[taken] == start+int64(taken) {
			e := n.dirty[n.order[taken]]
			run = append(run, e.data...)
			epochs = append(epochs, e.epoch)
			e.queued = false
			taken++
		}
		n.order = n.order[taken:]
		n.mu.Unlock()

		err := n.disk.WriteAt(run, start*SectorSize)

		n.mu.Lock()
		for i := 0; i < taken; i++ {
			idx := start + int64(i)
			e := n.dirty[idx]
			if e == nil || e.queued || e.epoch != epochs[i] {
				continue // re-dirtied while in flight; keep it
			}
			if err == nil {
				delete(n.dirty, idx)
			} else {
				// Disk write failed (disk dead): drop anyway; the
				// machine fronted by this NVRAM is considered failed.
				delete(n.dirty, idx)
			}
		}
		n.cond.Broadcast()
		n.mu.Unlock()
	}
}

// Flush blocks until all staged sectors have reached the disk.
func (n *NVRAM) Flush() {
	n.mu.Lock()
	for len(n.dirty) > 0 && !n.stopped {
		n.cond.Broadcast()
		n.mu.Unlock()
		n.clock.Sleep(msec)
		n.mu.Lock()
	}
	n.mu.Unlock()
}

// Close stops the destager after draining.
func (n *NVRAM) Close() {
	n.Flush()
	n.mu.Lock()
	n.stopped = true
	n.cond.Broadcast()
	n.mu.Unlock()
}
