// Command frangick is the offline metadata consistency checker (the
// fsck analog the paper lists as future work in §4). Since the whole
// reproduction runs on a simulated cluster, frangick demonstrates the
// checker by building a cluster, populating a file system, then
// verifying it — and, with -corrupt, injecting damage first to show
// the detector firing.
//
// In library use, call frangipani.Check against a quiesced or
// snapshotted virtual disk.
package main

import (
	"flag"
	"fmt"
	"os"

	"frangipani"
)

func main() {
	corrupt := flag.Bool("corrupt", false, "inject metadata damage before checking")
	flag.Parse()

	cluster, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.AddServer("ws1")
	if err != nil {
		fatal(err)
	}
	// Populate a small tree.
	must(fs.Mkdir("/src"))
	must(fs.Mkdir("/src/pkg"))
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/src/pkg/file%d.go", i)
		must(fs.Create(path))
		h, err := fs.Open(path)
		if err != nil {
			fatal(err)
		}
		if _, err := h.WriteAt([]byte("package pkg\n"), 0); err != nil {
			fatal(err)
		}
	}
	must(fs.Symlink("/src/pkg/file0.go", "/link"))
	must(fs.Sync())

	if *corrupt {
		// Clobber a random inode's nlink behind the file system's back.
		info, err := fs.Stat("/src/pkg/file2.go")
		if err != nil {
			fatal(err)
		}
		pc := cluster.Client("corruptor")
		lay := cluster.Layout()
		sec := make([]byte, 512)
		must(pc.Read("fs0", lay.InodeAddr(info.Inum), sec))
		sec[2] = 77 // nlink
		must(pc.Write("fs0", lay.InodeAddr(info.Inum), sec))
		fmt.Println("injected: inode nlink corrupted for /src/pkg/file2.go")
	}

	rep, err := cluster.Fsck()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checked: %d inodes (%d dirs, %d files, %d symlinks), %d blocks\n",
		rep.Inodes, rep.Dirs, rep.Files, rep.Symlinks, rep.Blocks)
	if rep.OK() {
		fmt.Println("clean: no inconsistencies found")
		return
	}
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM [%s] %s\n", p.Kind, p.Msg)
	}
	os.Exit(1)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frangick:", err)
	os.Exit(1)
}
